// Ablation: isolates the contribution of each optimization Section IV/V
// describes, at a fixed (n, k). Rows progress from the baseline to the full
// optimized configuration, plus the "arguments-against" variants (atomic
// histogram, bitonic sort, unbatched FFT, no index mapping at a small n).
#include <iostream>

#include "common.hpp"
#include "sfft/serial.hpp"

using namespace cusfft;
using namespace cusfft::bench;

namespace {

std::vector<std::string> row(const std::string& label, const RunResult& r,
                             const std::map<std::string, double>& steps,
                             double baseline_ms) {
  auto step = [&](const char* s) {
    auto it = steps.find(s);
    return ResultTable::num(it == steps.end() ? 0.0 : it->second);
  };
  return {label,
          ResultTable::num(r.model_ms),
          step(sfft::step::kPermFilter),
          step(sfft::step::kSubFft),
          step(sfft::step::kCutoff),
          ResultTable::num(baseline_ms / r.model_ms)};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOpts o = BenchOpts::parse(argc, argv);
  const std::size_t n = 1ULL << o.fixed_logn;
  const std::size_t k = std::min(o.k, n / 8);
  const cvec x = make_signal(n, k, o.seed);
  std::cout << "Ablation at n=2^" << o.fixed_logn << ", k=" << k << "\n\n";

  ResultTable t({"configuration", "total_ms", "perm+filter_ms", "subfft_ms",
                 "cutoff_ms", "speedup_vs_baseline"});

  std::map<std::string, double> steps;
  const auto base = run_cusfft(n, k, gpu::Options::baseline(), o.seed, x,
                               &steps);
  const double base_ms = base.model_ms;
  t.add_row(row("baseline (Section IV)", base, steps, base_ms));

  {
    gpu::Options v = gpu::Options::baseline();
    v.fast_selection = true;
    const auto r = run_cusfft(n, k, v, o.seed, x, &steps);
    t.add_row(row("+ fast k-selection (V.B)", r, steps, base_ms));
  }
  {
    gpu::Options v = gpu::Options::baseline();
    v.binning = gpu::Binning::kAsyncTransform;
    const auto r = run_cusfft(n, k, v, o.seed, x, &steps);
    t.add_row(row("+ async layout transform (V.A)", r, steps, base_ms));
  }
  {
    const auto r =
        run_cusfft(n, k, gpu::Options::optimized(), o.seed, x, &steps);
    t.add_row(row("optimized (V.A + V.B)", r, steps, base_ms));
  }
  {
    gpu::Options v = gpu::Options::baseline();
    v.batched_fft = false;
    const auto r = run_cusfft(n, k, v, o.seed, x, &steps);
    t.add_row(row("- batched cuFFT (per-loop FFTs)", r, steps, base_ms));
  }
  {
    gpu::Options v = gpu::Options::baseline();
    v.binning = gpu::Binning::kGlobalAtomicHist;
    const auto r = run_cusfft(n, k, v, o.seed, x, &steps);
    t.add_row(row("- loop partition (atomic histogram)", r, steps, base_ms));
  }
  {
    gpu::Options v = gpu::Options::baseline();
    v.sort_algo = custhrust::SortAlgo::kBitonic;
    const auto r = run_cusfft(n, k, v, o.seed, x, &steps);
    t.add_row(row("bitonic sort instead of radix", r, steps, base_ms));
  }
  {
    // Section IV.C: the shared-memory sub-histogram usually cannot hold B
    // complex doubles — expect a rejection at realistic sizes.
    gpu::Options v = gpu::Options::baseline();
    v.binning = gpu::Binning::kSharedHist;
    try {
      const auto r = run_cusfft(n, k, v, o.seed, x, &steps);
      t.add_row(row("shared-memory sub-histograms", r, steps, base_ms));
    } catch (const std::invalid_argument&) {
      t.add_row({"shared-memory sub-histograms",
                 "rejected: B doesn't fit 48 KB (Section IV.C)", "-", "-",
                 "-", "-"});
    }
  }
  emit(o, "ablation_optimizations", t);

  // Index mapping needs a small n (the chained variant is deliberately
  // serial and would take forever functionally at full size).
  {
    const std::size_t sn = 1ULL << std::min<std::size_t>(o.fixed_logn, 16);
    const std::size_t sk = std::min<std::size_t>(k, sn / 8);
    const cvec sx = make_signal(sn, sk, o.seed);
    ResultTable ti({"configuration", "total_ms", "perm+filter_ms"});
    std::map<std::string, double> s2;
    const auto with = run_cusfft(sn, sk, gpu::Options::baseline(), o.seed,
                                 sx, &s2);
    ti.add_row({"index mapping on", ResultTable::num(with.model_ms),
                ResultTable::num(s2.at(sfft::step::kPermFilter))});
    gpu::Options v = gpu::Options::baseline();
    v.binning = gpu::Binning::kSerialChain;
    const auto without = run_cusfft(sn, sk, v, o.seed, sx, &s2);
    ti.add_row({"index mapping off (dependent chain)",
                ResultTable::num(without.model_ms),
                ResultTable::num(s2.at(sfft::step::kPermFilter))});
    emit(o, "ablation_index_mapping", ti);
  }
  return 0;
}
