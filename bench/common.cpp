#include "common.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "cufftsim/cufftsim.hpp"
#include "cusfft/autopick.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "cusim/metrics.hpp"
#include "psfft/fftw_baseline.hpp"
#include "psfft/psfft.hpp"
#include "sfft/serial.hpp"
#include "signal/generate.hpp"

namespace cusfft::bench {

namespace {

[[noreturn]] void usage_exit(const std::string& msg) {
  std::cerr << "bench: " << msg << "\n"
            << "usage: bench [--min-logn N] [--max-logn N] [--k N]\n"
               "             [--fixed-logn N] [--seed N]\n"
               "             [--algo cusfft|ffast|auto] [--devices N]\n"
               "             [--nodes N] [--nic-gbps G] [--mixed]\n"
               "             [--out-dir DIR] [--profile PATH]\n"
               "             [--json PATH] [--metrics PATH]\n"
               "             [--serve] [--serve-in PATH] [--serve-out "
               "PATH]\n"
               "env: CUSFFT_MIN_LOGN CUSFFT_MAX_LOGN CUSFFT_K "
               "CUSFFT_FIXED_LOGN CUSFFT_SEED\n"
               "     CUSFFT_ALGO CUSFFT_AUTOPICK\n"
               "     CUSFFT_DEVICES CUSFFT_NODES CUSFFT_NIC_GBPS "
               "CUSFFT_MIXED CUSFFT_OUT_DIR\n"
               "     CUSFFT_PROFILE CUSFFT_JSON\n"
               "     CUSFFT_METRICS CUSFFT_SERVE CUSFFT_SERVE_IN "
               "CUSFFT_SERVE_OUT\n"
               "     CUSFFT_SERVE_DEVICES CUSFFT_SERVE_MAX_BATCH "
               "CUSFFT_SERVE_MAX_WAIT_MS\n"
               "     CUSFFT_SERVE_MAX_WAIT_LAT_MS "
               "CUSFFT_SERVE_QUEUE_DEPTH\n";
  std::exit(2);
}

/// Strict unsigned parse: the whole token must be a decimal number.
/// strtoull's silent 0-on-failure (CUSFFT_K=abc -> k=0) degenerated whole
/// bench runs; malformed input is now a usage error instead.
std::size_t parse_u64(const std::string& what, const char* v) {
  if (v == nullptr || *v == '\0' || *v == '-')
    usage_exit(what + ": expected a non-negative integer, got '" +
               (v ? v : "") + "'");
  char* end = nullptr;
  errno = 0;
  const unsigned long long x = std::strtoull(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0')
    usage_exit(what + ": expected a non-negative integer, got '" +
               std::string(v) + "'");
  return static_cast<std::size_t>(x);
}

double parse_double(const std::string& what, const char* v) {
  if (v == nullptr || *v == '\0')
    usage_exit(what + ": expected a number, got ''");
  char* end = nullptr;
  errno = 0;
  const double x = std::strtod(v, &end);
  if (errno != 0 || end == v || *end != '\0')
    usage_exit(what + ": expected a number, got '" + std::string(v) + "'");
  return x;
}

double env_or_d(const char* name, double def) {
  const char* v = std::getenv(name);
  return v ? parse_double(name, v) : def;
}

sfft::Algorithm parse_algo(const std::string& what, const char* v) {
  const auto a = sfft::parse_algorithm(v == nullptr ? "" : v);
  if (!a)
    usage_exit(what + ": expected 'cusfft', 'ffast' or 'auto', got '" +
               (v ? std::string(v) : "") + "'");
  return *a;
}

/// Strict path value: set-but-empty is a usage error, not a silent
/// disable (CUSFFT_METRICS= would otherwise look like metrics were
/// requested and produce nothing).
std::string parse_path(const std::string& what, const char* v) {
  if (v == nullptr || *v == '\0')
    usage_exit(what + ": expected a non-empty path, got ''");
  return v;
}

// Profile artifact path registered by BenchOpts::parse (process-wide so
// run_cusfft can emit without threading BenchOpts through every helper).
std::string g_profile_path;

// The benches run the paper's parameter regime: B = sqrt(nk/log2 n) with
// unit constant (Section III step 2), 1e-6 filter tolerance and L =
// 4 location + 8 estimation loops (reference-implementation-scale
// constants). The library defaults are more conservative (tuned for exact
// recovery at small n in the tests); override via CUSFFT_BCST /
// CUSFFT_LOOPS_LOC / CUSFFT_LOOPS_EST / CUSFFT_TOL.
}  // namespace

std::size_t env_or(const char* name, std::size_t def) {
  const char* v = std::getenv(name);
  return v ? parse_u64(name, v) : def;
}

sfft::Params paper_params(std::size_t n, std::size_t k, u64 seed) {
  sfft::Params p;
  p.n = n;
  p.k = k;
  p.seed = seed;
  p.bcst = env_or_d("CUSFFT_BCST", 1.0);
  p.loops_loc = env_or("CUSFFT_LOOPS_LOC", 4);
  p.loops_est = env_or("CUSFFT_LOOPS_EST", 8);
  p.filter.tolerance = env_or_d("CUSFFT_TOL", 1e-6);
  return p;
}

BenchOpts BenchOpts::parse(int argc, char** argv) {
  BenchOpts o;
  o.min_logn = env_or("CUSFFT_MIN_LOGN", o.min_logn);
  o.max_logn = env_or("CUSFFT_MAX_LOGN", o.max_logn);
  o.k = env_or("CUSFFT_K", o.k);
  o.fixed_logn = env_or("CUSFFT_FIXED_LOGN", o.fixed_logn);
  o.seed = env_or("CUSFFT_SEED", o.seed);
  // Re-read per call like everything else — the library applies
  // CUSFFT_ALGO itself at resolution time; the bench parses it here so a
  // malformed value is a startup usage error, not a mid-sweep throw. Same
  // for CUSFFT_AUTOPICK (parsed for validation only).
  if (const char* a = std::getenv("CUSFFT_ALGO"))
    o.algo = parse_algo("CUSFFT_ALGO", a);
  try {
    (void)gpu::autopick_mode_from_env();
  } catch (const std::invalid_argument& e) {
    usage_exit(e.what());
  }
  o.devices = env_or("CUSFFT_DEVICES", o.devices);
  o.nodes = env_or("CUSFFT_NODES", o.nodes);
  o.nic_gbps = env_or_d("CUSFFT_NIC_GBPS", o.nic_gbps);
  o.mixed = env_or("CUSFFT_MIXED", o.mixed ? 1 : 0) != 0;
  if (const char* d = std::getenv("CUSFFT_OUT_DIR")) o.out_dir = d;
  if (const char* p = std::getenv("CUSFFT_PROFILE")) o.profile = p;
  if (const char* p = std::getenv("CUSFFT_JSON")) o.json = p;
  if (const char* p = std::getenv("CUSFFT_METRICS"))
    o.metrics = parse_path("CUSFFT_METRICS", p);
  o.serve = env_or("CUSFFT_SERVE", o.serve ? 1 : 0) != 0;
  if (const char* p = std::getenv("CUSFFT_SERVE_IN"))
    o.serve_in = parse_path("CUSFFT_SERVE_IN", p);
  if (const char* p = std::getenv("CUSFFT_SERVE_OUT"))
    o.serve_out = parse_path("CUSFFT_SERVE_OUT", p);
  // Every argv token must be consumed: a trailing flag with no value or
  // an unknown flag is a usage error, not a silent no-op (the old
  // two-at-a-time loop dropped both).
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_exit(key + ": missing value");
      return argv[++i];
    };
    if (key == "--mixed") o.mixed = true;
    else if (key == "--min-logn") o.min_logn = parse_u64(key, value());
    else if (key == "--max-logn") o.max_logn = parse_u64(key, value());
    else if (key == "--k") o.k = parse_u64(key, value());
    else if (key == "--fixed-logn") o.fixed_logn = parse_u64(key, value());
    else if (key == "--seed") o.seed = parse_u64(key, value());
    else if (key == "--algo") o.algo = parse_algo(key, value());
    else if (key == "--devices") o.devices = parse_u64(key, value());
    else if (key == "--nodes") o.nodes = parse_u64(key, value());
    else if (key == "--nic-gbps") o.nic_gbps = parse_double(key, value());
    else if (key == "--out-dir") o.out_dir = value();
    else if (key == "--profile") o.profile = value();
    else if (key == "--json") o.json = value();
    else if (key == "--metrics") o.metrics = parse_path(key, value());
    else if (key == "--serve") o.serve = true;
    else if (key == "--serve-in") o.serve_in = parse_path(key, value());
    else if (key == "--serve-out") o.serve_out = parse_path(key, value());
    else usage_exit("unknown flag '" + key + "'");
  }
  if (o.max_logn < o.min_logn) o.max_logn = o.min_logn;
  if (o.devices == 0) o.devices = 1;
  if (o.nodes == 0) o.nodes = 1;
  // 0 means "model default"; an explicit NIC bandwidth must be usable.
  if (o.nic_gbps < 0 || (o.nic_gbps != o.nic_gbps))
    usage_exit("--nic-gbps/CUSFFT_NIC_GBPS: expected a positive number");
  g_profile_path = o.profile;
  return o;
}

const std::string& profile_path() { return g_profile_path; }

serve::ServerConfig serve_config_or_exit(serve::ServerConfig base) {
  try {
    return serve::ServerConfig::from_env(std::move(base));
  } catch (const std::invalid_argument& e) {
    usage_exit(e.what());
  }
}

bool write_results_json(const std::string& path, const std::string& bench,
                        const std::vector<JsonRow>& rows,
                        const std::string& metrics_json) {
  std::ofstream f(path);
  if (!f) {
    std::cout << "[json] failed to write " << path << "\n";
    return false;
  }
  f << "{\n  \"bench\": \"" << bench << "\",\n  \"results\": [\n";
  char buf[64];
  for (std::size_t i = 0; i < rows.size(); ++i) {
    f << "    {\"name\": \"" << rows[i].name << "\", ";
    std::snprintf(buf, sizeof(buf), "%.6f", rows[i].host_ms);
    f << "\"host_ms\": " << buf << ", ";
    std::snprintf(buf, sizeof(buf), "%.6f", rows[i].model_ms);
    f << "\"model_ms\": " << buf << "}";
    f << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  f << "  ]";
  if (!metrics_json.empty()) {
    // The snapshot document is already valid JSON; embed it verbatim
    // (minus its trailing newline) so the bench summary and the metrics
    // come from one artifact.
    std::string doc = metrics_json;
    while (!doc.empty() && doc.back() == '\n') doc.pop_back();
    f << ",\n  \"metrics\": " << doc;
  }
  f << "\n}\n";
  std::cout << "[json] " << path << "\n";
  return f.good();
}

bool write_metrics_json(const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    std::cout << "[metrics] failed to write " << path << "\n";
    return false;
  }
  f << cusim::MetricsRegistry::global().expose_json();
  return f.good();
}

bool write_metrics_artifacts(const std::string& path) {
  const auto snap = cusim::MetricsRegistry::global().snapshot();
  bool ok = true;
  {
    std::ofstream f(path);
    if (f) f << snap.to_json();
    ok = ok && f.good();
  }
  {
    std::ofstream f(path + ".prom");
    if (f) f << snap.to_prometheus();
    ok = ok && f.good();
  }
  if (ok)
    std::cout << "[metrics] " << path << " (+.prom)\n";
  else
    std::cout << "[metrics] failed to write " << path << "\n";
  return ok;
}

void write_profile_artifact(const cusim::CaptureProfile& p,
                            const std::string& path) {
  if (p.write(path))
    std::cout << "[profile] " << path << "\n";
  else
    std::cout << "[profile] failed to write " << path << "\n";
  if (!p.to_table().write_csv(path + ".csv"))
    std::cout << "[profile] failed to write " << path << ".csv\n";
}

cvec make_signal(std::size_t n, std::size_t k, u64 seed) {
  Rng rng(seed ^ (n * 2654435761ULL) ^ k);
  return signal::make_sparse_signal(n, k, rng).x;
}

RunResult run_cusfft(std::size_t n, std::size_t k, const gpu::Options& opts,
                     u64 seed, const cvec& x,
                     std::map<std::string, double>* steps) {
  cusim::Device dev;
  gpu::GpuPlan plan(dev, paper_params(n, k, seed), opts);
  gpu::GpuExecStats stats;
  plan.execute(x, &stats);
  if (steps) *steps = stats.step_model_ms;
  // Registered --profile / CUSFFT_PROFILE path: emit this capture's
  // artifact (sweeps overwrite; the file ends up holding the last run).
  if (!g_profile_path.empty())
    write_profile_artifact(dev.end_capture(), g_profile_path);
  return {stats.model_ms, stats.host_ms};
}

RunResult run_cufft_dense(std::size_t n, const cvec& x) {
  cusim::Device dev;
  cufftsim::Plan plan(dev, n);
  cusim::DeviceBuffer<cplx> data(n);
  std::copy(x.begin(), x.end(), data.host().begin());  // GPU-resident input
  WallTimer wall;
  dev.begin_capture();
  plan.execute(data, cufftsim::Direction::kForward);
  return {dev.elapsed_model_ms(), wall.ms()};
}

RunResult run_fftw_parallel(std::size_t n, const cvec& x) {
  cvec out(n);
  const auto r = psfft::dense_fft_parallel(x, out, ThreadPool::global());
  return {r.model_ms, r.host_ms};
}

RunResult run_psfft(std::size_t n, std::size_t k, u64 seed, const cvec& x) {
  psfft::PsfftPlan plan(paper_params(n, k, seed), ThreadPool::global());
  psfft::CpuExecStats stats;
  plan.execute(x, &stats);
  return {stats.model_ms, stats.host_ms};
}

RunResult run_serial_sfft(std::size_t n, std::size_t k, u64 seed,
                          const cvec& x, StepTimers* timers) {
  sfft::SerialPlan plan(paper_params(n, k, seed));
  WallTimer wall;
  plan.execute(x, timers);
  return {0.0, wall.ms()};
}

void emit(const BenchOpts& o, const std::string& name,
          const ResultTable& t) {
  std::cout << "== " << name << " ==\n" << t.to_ascii() << "\n";
  std::error_code ec;
  std::filesystem::create_directories(o.out_dir, ec);
  const std::string path = o.out_dir + "/" + name + ".csv";
  if (t.write_csv(path))
    std::cout << "[csv] " << path << "\n\n";
  else
    std::cout << "[csv] failed to write " << path << "\n\n";
}

}  // namespace cusfft::bench
