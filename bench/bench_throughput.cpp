// Throughput bench: signals/sec of the optimized GPU backend when many
// same-shape signals flow through one plan. Three configurations at
// n = 2^min_logn (CUSFFT_MIN_LOGN / --min-logn), batch size CUSFFT_BATCH:
//   cold_plan    — a fresh GpuPlan per signal (what a naive caller pays;
//                  with the filter cache and buffer pool warm, plan cost is
//                  permutation setup + filter upload, not two length-n FFTs);
//   execute      — one plan, N independent execute() calls;
//   execute_many — one plan, one batched call (no per-call capture reset).
// host_sps is functional-simulation wall throughput on this container;
// model_ms_per_signal is the modeled device time and must not depend on
// which configuration ran.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <span>
#include <vector>

#include "common.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "cusim/pool.hpp"
#include "signal/filter.hpp"

using namespace cusfft;
using namespace cusfft::bench;

int main(int argc, char** argv) {
  const BenchOpts o = BenchOpts::parse(argc, argv);
  const char* batch_env = std::getenv("CUSFFT_BATCH");
  const std::size_t batch =
      batch_env ? std::strtoull(batch_env, nullptr, 10) : 8;
  const std::size_t n = 1ULL << o.min_logn;
  const std::size_t k = std::min(o.k, n / 8);
  std::cout << "Throughput: optimized GPU backend, n=2^" << o.min_logn
            << " k=" << k << " batch=" << batch << "\n\n";

  std::vector<cvec> signals;
  std::vector<std::span<const cplx>> views;
  for (std::size_t i = 0; i < batch; ++i)
    signals.push_back(make_signal(n, k, o.seed + i));
  for (const cvec& s : signals) views.emplace_back(s);

  const sfft::Params params = paper_params(n, k, o.seed);
  const gpu::Options opts = gpu::Options::optimized();

  ResultTable t({"mode", "signals", "host_ms", "host_sps",
                 "model_ms_per_signal"});
  auto add = [&](const char* mode, double host_ms, double model_ms) {
    t.add_row({mode, std::to_string(batch), ResultTable::num(host_ms),
               ResultTable::num(host_ms > 0
                                    ? 1e3 * static_cast<double>(batch) /
                                          host_ms
                                    : 0),
               ResultTable::num(batch > 0
                                    ? model_ms / static_cast<double>(batch)
                                    : 0)});
  };

  {  // cold_plan: plan + execute per signal (pool/filter-cache warm-up run
     // first so the row measures the recycled steady state).
    cusim::Device dev;
    { gpu::GpuPlan warm(dev, params, opts); }
    WallTimer wall;
    double model_ms = 0;
    for (std::size_t i = 0; i < batch; ++i) {
      gpu::GpuPlan plan(dev, params, opts);
      gpu::GpuExecStats st;
      plan.execute(views[i], &st);
      model_ms += st.model_ms;
    }
    add("cold_plan", wall.ms(), model_ms);
  }

  {  // execute: one plan, N captures.
    cusim::Device dev;
    gpu::GpuPlan plan(dev, params, opts);
    WallTimer wall;
    double model_ms = 0;
    for (std::size_t i = 0; i < batch; ++i) {
      gpu::GpuExecStats st;
      plan.execute(views[i], &st);
      model_ms += st.model_ms;
    }
    add("execute", wall.ms(), model_ms);
  }

  // A/B the two batch schedules: same plan shape, fresh device each so the
  // modeled timelines are independent. Outputs must be bit-identical —
  // the pipeline only reorders the modeled timeline.
  std::vector<SparseSpectrum> out_serial, out_pipe;
  double serial_ms = 0, pipe_ms = 0;

  {  // many_serialized: one capture, signals one at a time.
    cusim::Device dev;
    gpu::GpuPlan plan(dev, params, opts);
    WallTimer wall;
    gpu::GpuBatchStats st;
    out_serial =
        plan.execute_many(views, &st, gpu::BatchMode::kSerialized);
    add("many_serialized", wall.ms(), st.model_ms);
    serial_ms = st.model_ms;
  }

  {  // many_pipelined: signal i+1's transfer+binning overlaps signal i's
     // selection/estimation across two home streams.
    cusim::Device dev;
    gpu::GpuPlan plan(dev, params, opts);
    WallTimer wall;
    gpu::GpuBatchStats st;
    out_pipe = plan.execute_many(views, &st, gpu::BatchMode::kPipelined);
    add("many_pipelined", wall.ms(), st.model_ms);
    pipe_ms = st.model_ms;
    // The overlapped capture is the interesting timeline (per-stream phase
    // tracks, warm pool): emit it as the bench's profile artifact.
    if (!o.profile.empty())
      write_profile_artifact(dev.end_capture(), o.profile);
  }

  bool identical = out_serial.size() == out_pipe.size();
  for (std::size_t i = 0; identical && i < out_serial.size(); ++i) {
    identical = out_serial[i].size() == out_pipe[i].size();
    for (std::size_t j = 0; identical && j < out_serial[i].size(); ++j)
      identical = out_serial[i][j].loc == out_pipe[i][j].loc &&
                  out_serial[i][j].val == out_pipe[i][j].val;
  }
  std::printf(
      "\npipelined vs serialized: %.3f ms vs %.3f ms modeled "
      "(%.2fx), spectra %s\n",
      pipe_ms, serial_ms, pipe_ms > 0 ? serial_ms / pipe_ms : 0.0,
      identical ? "bit-identical" : "MISMATCH");

  const auto pool = cusim::BufferPool::global().stats();
  const auto fc = signal::flat_filter_cache_stats();
  std::cout << "\nbuffer pool: " << pool.allocations << " allocations, "
            << pool.reuses << " reuses, "
            << pool.bytes_allocated / (1024 * 1024) << " MiB allocated\n"
            << "filter cache: " << fc.hits << " hits, " << fc.misses
            << " misses\n\n";

  emit(o, "throughput", t);
  return 0;
}
