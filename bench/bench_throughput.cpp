// Throughput bench: signals/sec of the optimized GPU backend when many
// same-shape signals flow through one plan. Three configurations at
// n = 2^min_logn (CUSFFT_MIN_LOGN / --min-logn), batch size CUSFFT_BATCH:
//   cold_plan    — a fresh GpuPlan per signal (what a naive caller pays;
//                  with the filter cache and buffer pool warm, plan cost is
//                  permutation setup + filter upload, not two length-n FFTs);
//   execute      — one plan, N independent execute() calls;
//   execute_many — one plan, one batched call (no per-call capture reset).
// host_sps is functional-simulation wall throughput on this container;
// model_ms_per_signal is the modeled device time and must not depend on
// which configuration ran.
//
// --serve switches to the serving-tier replay instead: a multi-tenant
// arrival trace (canned or --serve-in) is driven through
// cusfft::serve::Server twice (the decision traces must match — the
// deterministic-replay gate) plus once in single-request mode
// (max_batch=1, zero wait), and the bench reports per-SLO-class p50/p99
// modeled latency and sustained QPS. Exit is nonzero unless the replay is
// reproducible and batched serving beats per-request execution on QPS.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <vector>

#include "common.hpp"
#include "cusfft/autopick.hpp"
#include "cusfft/cluster_plan.hpp"
#include "cusfft/multi_plan.hpp"
#include "cusfft/plan.hpp"
#include "cusim/cluster.hpp"
#include "cusim/device.hpp"
#include "cusim/device_group.hpp"
#include "cusim/metrics.hpp"
#include "cusim/pool.hpp"
#include "sfft/serial.hpp"
#include "signal/filter.hpp"

using namespace cusfft;
using namespace cusfft::bench;

namespace {

std::string slurp_or_exit(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "bench_throughput: cannot read " << path << "\n";
    std::exit(2);
  }
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

struct ServeRun {
  serve::GpuServeStats stats;
  std::string decisions;
  std::string schedule;
  double host_ms = 0;
};

ServeRun run_trace(const serve::ServerConfig& cfg, const serve::Trace& tr,
                   u64 seed) {
  serve::Server s(cfg);
  WallTimer wall;
  serve::replay(s, tr, seed);
  ServeRun r;
  r.host_ms = wall.ms();
  r.stats = s.stats();
  r.decisions = s.decision_trace();
  r.schedule = s.schedule_trace();
  return r;
}

int run_serve(const BenchOpts& o) {
  const std::size_t n = 1ULL << o.min_logn;
  const std::size_t k = std::min(o.k, n / 8);

  serve::ServerConfig base;
  base.devices = o.devices;
  // Small enough that the canned trace's charlie bursts overflow it, so
  // the replay exercises the rejection path (CUSFFT_SERVE_QUEUE_DEPTH
  // overrides).
  base.tenant_queue_depth = 4;
  const serve::ServerConfig cfg = serve_config_or_exit(base);

  serve::Trace tr;
  if (!o.serve_in.empty()) {
    try {
      tr = serve::Trace::parse(slurp_or_exit(o.serve_in));
    } catch (const std::invalid_argument& e) {
      std::cerr << "bench_throughput: " << o.serve_in << ": " << e.what()
                << "\n";
      return 2;
    }
  } else {
    tr = serve::canned_trace(n, k, o.seed);
  }

  std::cout << "Serve: " << tr.events.size()
            << " arrivals, devices=" << cfg.devices
            << " max_batch=" << cfg.max_batch << " wait_ms="
            << cfg.max_wait_latency_ms << "/" << cfg.max_wait_throughput_ms
            << " queue_depth=" << cfg.tenant_queue_depth << "\n\n";

  const ServeRun run1 = run_trace(cfg, tr, o.seed);
  // Mid-run snapshot between the two (drained) replays: the serve
  // counters are published incrementally, so tools/metrics_check can
  // verify monotonicity against the final snapshot.
  if (!o.metrics.empty()) write_metrics_json(o.metrics + ".snap1.json");
  const ServeRun run2 = run_trace(cfg, tr, o.seed);

  // Per-request baseline: same trace and fleet, but every request
  // launches as its own batch the moment the device frees up.
  serve::ServerConfig single = cfg;
  single.max_batch = 1;
  single.max_wait_latency_ms = 0;
  single.max_wait_throughput_ms = 0;
  const ServeRun solo = run_trace(single, tr, o.seed);

  const bool deterministic =
      run1.decisions == run2.decisions && run1.schedule == run2.schedule;
  const bool faster = run1.stats.sustained_qps > solo.stats.sustained_qps;

  ResultTable t(
      {"mode", "class", "completed", "p50_ms", "p99_ms", "mean_ms", "qps"});
  auto add_class = [&](const char* mode, const ServeRun& r, const char* cls,
                       const serve::ClassLatency& l) {
    t.add_row({mode, cls, std::to_string(l.count), ResultTable::num(l.p50_ms),
               ResultTable::num(l.p99_ms), ResultTable::num(l.mean_ms),
               ResultTable::num(r.stats.sustained_qps)});
  };
  add_class("serve_batched", run1, "latency", run1.stats.latency);
  add_class("serve_batched", run1, "throughput", run1.stats.throughput);
  add_class("serve_single", solo, "latency", solo.stats.latency);
  add_class("serve_single", solo, "throughput", solo.stats.throughput);

  auto show = [](const char* name, const serve::GpuServeStats& s) {
    std::printf("%-9s %3zu completed / %zu shed / %zu rejected in %zu "
                "batches, fill %.2f, horizon %.3f ms, %.1f qps\n",
                name, s.completed, s.shed, s.rejected, s.batches,
                s.mean_batch_fill, s.virtual_ms, s.sustained_qps);
  };
  show("batched:", run1.stats);
  show("single:", solo.stats);
  std::printf("batched vs single: %.1f vs %.1f sustained qps (%.2fx), "
              "replay %s\n\n",
              run1.stats.sustained_qps, solo.stats.sustained_qps,
              solo.stats.sustained_qps > 0
                  ? run1.stats.sustained_qps / solo.stats.sustained_qps
                  : 0.0,
              deterministic ? "deterministic" : "MISMATCH");

  if (!o.serve_out.empty()) {
    std::ofstream f(o.serve_out);
    if (!f) {
      std::cerr << "bench_throughput: cannot write " << o.serve_out << "\n";
      return 2;
    }
    f << run1.decisions;
    std::cout << "wrote decision trace: " << o.serve_out << "\n";
  }

  emit(o, "serve", t);
  run1.stats.to_metrics(cusim::MetricsRegistry::global());
  if (!o.json.empty())
    write_results_json(o.json, "serve",
                       {{"serve_batched", run1.host_ms, run1.stats.virtual_ms},
                        {"serve_single", solo.host_ms, solo.stats.virtual_ms}},
                       cusim::MetricsRegistry::global().expose_json());
  if (!o.metrics.empty()) write_metrics_artifacts(o.metrics);
  return deterministic && faster ? 0 : 1;
}

// --algo auto: crossover sweep. Calibrates a (n, k, noise) grid — each
// cell runs BOTH backends once (the oracle) — then asks the picker for
// its choice and checks the picked backend's modeled time against the
// oracle's best. Emits <out-dir>/crossover.csv; exit is nonzero unless
// the picker matches the faster backend (within 5%) on >= 90% of cells.
int run_crossover(const BenchOpts& o) {
  const gpu::Options opts = gpu::Options::optimized();
  const perfmodel::GpuSpec spec = perfmodel::GpuSpec::k20x();
  const double noises[] = {0.0, 0.01};
  std::vector<std::size_t> ks;
  for (std::size_t k = 4; k <= o.k; k *= 4) ks.push_back(k);
  if (ks.empty()) ks.push_back(o.k);

  std::cout << "Crossover sweep: n=2^" << o.min_logn << "..2^" << o.max_logn
            << ", k in {4,16,...," << ks.back() << "}, noise in {0, 0.01}, "
            << "picker=" << gpu::to_string(gpu::autopick_mode_from_env())
            << " on " << spec.name << "\n\n";

  ResultTable t({"n", "k", "noise", "cusfft_ms", "ffast_ms", "oracle",
                 "picked", "match"});
  std::size_t cells = 0, matched = 0;
  double auto_total_ms = 0, oracle_total_ms = 0;
  for (std::size_t logn = o.min_logn; logn <= o.max_logn; logn += 2) {
    const std::size_t n = 1ULL << logn;
    for (const std::size_t k : ks) {
      if (k > n / 8) continue;
      for (const double noise : noises) {
        const sfft::Params p = paper_params(n, k, o.seed);
        const gpu::CrossoverCell cell =
            gpu::calibrate_cell(p, spec, opts, noise);
        sfft::Params pa = p;
        pa.algo = sfft::Algorithm::kAuto;
        const sfft::Algorithm picked =
            gpu::resolve_algorithm(pa, spec, opts);
        const double auto_ms = picked == sfft::Algorithm::kFfast
                                   ? cell.ffast_ms
                                   : cell.cusfft_ms;
        const double best_ms = std::min(cell.cusfft_ms, cell.ffast_ms);
        const bool match = auto_ms <= 1.05 * best_ms;
        ++cells;
        matched += match ? 1 : 0;
        auto_total_ms += auto_ms;
        oracle_total_ms += best_ms;
        t.add_row({std::to_string(n), std::to_string(k),
                   ResultTable::num(noise, 2), ResultTable::num(cell.cusfft_ms),
                   ResultTable::num(cell.ffast_ms),
                   sfft::to_string(cell.winner), sfft::to_string(picked),
                   match ? "yes" : "NO"});
      }
    }
  }
  if (!o.metrics.empty()) write_metrics_json(o.metrics + ".snap1.json");

  // Drive the picker through the real execution path too: a small kAuto
  // batch through the fleet. execute_mixed resolves each signal against
  // device 0's spec and records the chosen backend per signal (and in
  // cusfft_algo_signals_total / cusfft_algo_picks_total).
  const std::size_t n_demo = 1ULL << o.min_logn;
  const std::size_t k_hi = std::max<std::size_t>(4, std::min(o.k, n_demo / 8));
  std::vector<cvec> demo_store;
  std::vector<gpu::MixedSignal> demo;
  sfft::Params p_auto = paper_params(n_demo, k_hi, o.seed);
  p_auto.algo = sfft::Algorithm::kAuto;
  for (std::size_t i = 0; i < 8; ++i) {
    sfft::Params p = p_auto;
    p.k = (i % 2) == 0 ? k_hi : 4;
    demo_store.push_back(make_signal(n_demo, p.k, o.seed + 200 + i));
    demo.push_back({demo_store.back(), p});
  }
  cusim::DeviceGroup group(o.devices);
  gpu::MultiGpuPlan mplan(group, p_auto, opts);
  gpu::GpuFleetStats fs;
  mplan.execute_mixed(demo, &fs, gpu::BatchMode::kPipelined);
  std::size_t picks_ffast = 0;
  for (const auto& s : fs.per_signal)
    picks_ffast += s.algo == sfft::Algorithm::kFfast ? 1 : 0;
  std::printf("auto batch: %zu signals -> %zu ffast / %zu cusfft, "
              "makespan %.3f ms\n\n",
              fs.per_signal.size(), picks_ffast,
              fs.per_signal.size() - picks_ffast, fs.model_ms);

  // The 90% gate binds in measured mode, where the picker shares the
  // oracle's calibration table and a miss means picker plumbing broke.
  // CUSFFT_AUTOPICK=modeled prices both backends off the roofline model
  // (no launch-latency floors), so its agreement with the *measured*
  // oracle is reported but informational.
  const bool gated =
      gpu::autopick_mode_from_env() == gpu::AutopickMode::kMeasured;
  const bool ok =
      cells > 0 && (!gated || matched * 10 >= cells * 9);
  std::printf("picker vs oracle: %zu/%zu cells on the faster backend "
              "(auto %.3f ms vs oracle %.3f ms total) -> %s\n\n",
              matched, cells, auto_total_ms, oracle_total_ms,
              !gated ? "informational (modeled mode)"
                     : ok ? "PASS (>= 90%)"
                          : "FAIL (< 90%)");

  emit(o, "crossover", t);
  if (!o.json.empty())
    write_results_json(o.json, "crossover",
                       {{"crossover_auto", 0.0, auto_total_ms},
                        {"crossover_oracle", 0.0, oracle_total_ms}},
                       cusim::MetricsRegistry::global().expose_json());
  if (!o.metrics.empty()) write_metrics_artifacts(o.metrics);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOpts o = BenchOpts::parse(argc, argv);
  if (o.serve) return run_serve(o);
  if (o.algo == sfft::Algorithm::kAuto) return run_crossover(o);
  const std::size_t batch = env_or("CUSFFT_BATCH", 8);
  const std::size_t n = 1ULL << o.min_logn;
  const std::size_t k = std::min(o.k, n / 8);
  std::cout << "Throughput: optimized GPU backend, algo="
            << sfft::to_string(o.algo) << ", n=2^" << o.min_logn
            << " k=" << k << " batch=" << batch << " devices=" << o.devices
            << " nodes=" << o.nodes << "\n\n";

  std::vector<cvec> signals;
  std::vector<std::span<const cplx>> views;
  for (std::size_t i = 0; i < batch; ++i)
    signals.push_back(make_signal(n, k, o.seed + i));
  for (const cvec& s : signals) views.emplace_back(s);

  sfft::Params params = paper_params(n, k, o.seed);
  params.algo = o.algo;  // kCusfft or kFfast (kAuto took the branch above)
  const gpu::Options opts = gpu::Options::optimized();

  ResultTable t({"mode", "signals", "host_ms", "host_sps",
                 "model_ms_per_signal"});
  std::vector<JsonRow> json_rows;
  auto add = [&](const char* mode, double host_ms, double model_ms) {
    t.add_row({mode, std::to_string(batch), ResultTable::num(host_ms),
               ResultTable::num(host_ms > 0
                                    ? 1e3 * static_cast<double>(batch) /
                                          host_ms
                                    : 0),
               ResultTable::num(batch > 0
                                    ? model_ms / static_cast<double>(batch)
                                    : 0)});
    json_rows.push_back({mode, host_ms, model_ms});
  };

  {  // cold_plan: plan + execute per signal (pool/filter-cache warm-up run
     // first so the row measures the recycled steady state).
    cusim::Device dev;
    { gpu::GpuPlan warm(dev, params, opts); }
    WallTimer wall;
    double model_ms = 0;
    for (std::size_t i = 0; i < batch; ++i) {
      gpu::GpuPlan plan(dev, params, opts);
      gpu::GpuExecStats st;
      plan.execute(views[i], &st);
      model_ms += st.model_ms;
    }
    add("cold_plan", wall.ms(), model_ms);
  }

  {  // execute: one plan, N captures.
    cusim::Device dev;
    gpu::GpuPlan plan(dev, params, opts);
    WallTimer wall;
    double model_ms = 0;
    for (std::size_t i = 0; i < batch; ++i) {
      gpu::GpuExecStats st;
      plan.execute(views[i], &st);
      model_ms += st.model_ms;
    }
    add("execute", wall.ms(), model_ms);
  }

  // A/B the two batch schedules: same plan shape, fresh device each so the
  // modeled timelines are independent. Outputs must be bit-identical —
  // the pipeline only reorders the modeled timeline.
  std::vector<SparseSpectrum> out_serial, out_pipe;
  double serial_ms = 0, pipe_ms = 0;

  {  // many_serialized: one capture, signals one at a time.
    cusim::Device dev;
    gpu::GpuPlan plan(dev, params, opts);
    WallTimer wall;
    gpu::GpuBatchStats st;
    out_serial =
        plan.execute_many(views, &st, gpu::BatchMode::kSerialized);
    add("many_serialized", wall.ms(), st.model_ms);
    serial_ms = st.model_ms;
  }

  {  // many_pipelined: signal i+1's transfer+binning overlaps signal i's
     // selection/estimation across two home streams.
    cusim::Device dev;
    gpu::GpuPlan plan(dev, params, opts);
    WallTimer wall;
    gpu::GpuBatchStats st;
    out_pipe = plan.execute_many(views, &st, gpu::BatchMode::kPipelined);
    add("many_pipelined", wall.ms(), st.model_ms);
    pipe_ms = st.model_ms;
    // The overlapped capture is the interesting timeline (per-stream phase
    // tracks, warm pool): emit it as the bench's profile artifact. With a
    // fleet the merged multi-device trace below supersedes it.
    if (!o.profile.empty() && o.devices <= 1)
      write_profile_artifact(dev.end_capture(), o.profile);
  }

  std::vector<SparseSpectrum> out_shard;
  double shard_ms = 0;
  if (o.devices > 1) {
    // many_sharded: the batch split across the fleet, the pipeline live
    // inside each shard, per-device timelines merged on one clock with
    // PCIe root-complex contention.
    cusim::DeviceGroup group(o.devices);
    gpu::MultiGpuPlan mplan(group, params, opts);
    WallTimer wall;
    gpu::GpuFleetStats fs;
    out_shard = mplan.execute_many(views, &fs, gpu::BatchMode::kPipelined);
    add("many_sharded", wall.ms(), fs.model_ms);
    shard_ms = fs.model_ms;

    std::printf("fleet: %zu devices, makespan %.3f ms, imbalance %.3f, "
                "pcie stalls %.3f ms\n",
                fs.devices, fs.model_ms, fs.imbalance, fs.pcie_stall_ms);
    for (const auto& d : fs.per_device)
      std::printf("  dev%zu %-8s %3zu signals  finish %8.3f ms  "
                  "util %5.1f%%  stall %.3f ms\n",
                  &d - fs.per_device.data(), d.device.c_str(), d.signals,
                  d.model_ms, 100.0 * d.utilization, d.pcie_stall_ms);
    std::printf("sharded vs pipelined: %.3f ms vs %.3f ms modeled (%.2fx)\n",
                shard_ms, pipe_ms, shard_ms > 0 ? pipe_ms / shard_ms : 0.0);

    if (!o.profile.empty())
      write_profile_artifact(group.end_capture(), o.profile);
  }

  auto same = [](const std::vector<SparseSpectrum>& a,
                 const std::vector<SparseSpectrum>& b) {
    bool eq = a.size() == b.size();
    for (std::size_t i = 0; eq && i < a.size(); ++i) {
      eq = a[i].size() == b[i].size();
      for (std::size_t j = 0; eq && j < a[i].size(); ++j)
        eq = a[i][j].loc == b[i][j].loc && a[i][j].val == b[i][j].val;
    }
    return eq;
  };
  bool identical = same(out_serial, out_pipe) &&
                   (o.devices <= 1 || same(out_serial, out_shard));
  std::printf(
      "\npipelined vs serialized: %.3f ms vs %.3f ms modeled "
      "(%.2fx), spectra %s\n",
      pipe_ms, serial_ms, pipe_ms > 0 ? serial_ms / pipe_ms : 0.0,
      identical ? "bit-identical" : "MISMATCH");

  bool cluster_ok = true;
  if (o.nodes > 1) {
    // Cluster A/B: the same batch through ClusterPlan at 1 node vs
    // o.nodes nodes, o.devices devices per node. Spectra must stay
    // bit-identical to the single-device run (node sharding only
    // partitions the batch) and the multi-node makespan must beat the
    // single node by >= 1.5x — the scale-out gate CI pins.
    auto run_cluster = [&](std::size_t nodes, const char* name,
                           std::vector<SparseSpectrum>& out,
                           gpu::GpuFleetStats& fs) {
      cusim::Cluster cluster(nodes, o.devices);
      if (o.nic_gbps > 0)
        cluster.set_nic(cusim::NicModel::FromGbps(o.nic_gbps));
      gpu::ClusterPlan cplan(cluster, params, opts);
      WallTimer wall;
      out = cplan.execute_many(views, &fs, gpu::BatchMode::kPipelined);
      add(name, wall.ms(), fs.model_ms);
      // The node-grouped trace is the headline artifact once a real
      // cluster ran; single-node traces above are superseded.
      if (!o.profile.empty() && nodes > 1)
        write_profile_artifact(cluster.end_capture(), o.profile);
    };
    std::vector<SparseSpectrum> out_c1, out_cm;
    gpu::GpuFleetStats fs1, fsm;
    run_cluster(1, "cluster_1node", out_c1, fs1);
    const std::string mname = "cluster_" + std::to_string(o.nodes) + "node";
    run_cluster(o.nodes, mname.c_str(), out_cm, fsm);

    std::printf("\ncluster: %zu nodes x %zu devices, NIC %.1f Gbit/s\n",
                fsm.nodes, o.devices,
                8e-9 * (o.nic_gbps > 0 ? o.nic_gbps * 1e9 / 8
                                       : cusim::NicModel{}.bandwidth_Bps));
    for (std::size_t m = 0; m < fsm.per_node.size(); ++m) {
      const auto& nd = fsm.per_node[m];
      std::printf("  node%zu %3zu signals  finish %8.3f ms  util %5.1f%%  "
                  "nic %.0f B (stall %.3f ms, queue %.3f ms)\n",
                  m, nd.signals, nd.model_ms, 100.0 * nd.utilization,
                  nd.nic_bytes, nd.nic_stall_ms, nd.nic_queue_ms);
    }
    const double speedup = fsm.model_ms > 0 ? fs1.model_ms / fsm.model_ms : 0;
    const bool cluster_identical =
        same(out_serial, out_c1) && same(out_serial, out_cm);
    cluster_ok = cluster_identical && speedup >= 1.5;
    std::printf("cluster %zu-node vs 1-node: %.3f ms vs %.3f ms modeled "
                "(%.2fx, %zu NIC transfers, %.0f B), spectra %s\n",
                o.nodes, fsm.model_ms, fs1.model_ms, speedup,
                fsm.nic_transfers, fsm.nic_bytes,
                cluster_identical ? "bit-identical" : "MISMATCH");

    // Oversized-signal demo: shrink the modeled device memory below the
    // single-signal working set — the run is impossible at one node and
    // only the slab decomposition (comb/bin per slice, NIC gather to the
    // head node) completes it. The demo signal is grown until a slice
    // genuinely fits where the whole shape does not (at small n the
    // per-loop bins dominate both footprints).
    std::size_t n_slab = std::max<std::size_t>(n, 1ULL << 18);
    sfft::Params p_slab = paper_params(n_slab, std::min(o.k, n_slab / 8),
                                       o.seed);
    while (n_slab < (1ULL << 24) &&
           gpu::ClusterPlan::slab_node_working_set_bytes(p_slab, o.nodes) >=
               gpu::ClusterPlan::slab_working_set_bytes(p_slab)) {
      n_slab <<= 1;
      p_slab = paper_params(n_slab, std::min(o.k, n_slab / 8), o.seed);
    }
    const std::size_t ws = gpu::ClusterPlan::slab_working_set_bytes(p_slab);
    perfmodel::GpuSpec tiny = perfmodel::GpuSpec::k20x();
    tiny.global_mem_bytes = ws - 1;
    const cvec x_slab = make_signal(n_slab, p_slab.k, o.seed + 777);
    std::printf("\nslab demo: n=%zu, working set %zu B, modeled device "
                "memory %zu B\n", n_slab, ws, tiny.global_mem_bytes);
    bool slab_refused = false;
    try {
      cusim::Cluster one(1, o.devices, tiny);
      gpu::ClusterPlan cp1(one, p_slab, opts);
      cp1.execute_slab(x_slab);
    } catch (const std::runtime_error& e) {
      slab_refused = true;
      std::printf("  1 node: refused as expected (%s)\n", e.what());
    }
    cusim::Cluster wide(o.nodes, o.devices, tiny);
    if (o.nic_gbps > 0)
      wide.set_nic(cusim::NicModel::FromGbps(o.nic_gbps));
    gpu::ClusterPlan cpw(wide, p_slab, opts);
    gpu::GpuFleetStats slab_fs;
    const SparseSpectrum slab = cpw.execute_slab(x_slab, &slab_fs);
    const SparseSpectrum serial_ref = sfft::SerialPlan(p_slab).execute(x_slab);
    bool slab_locs = slab.size() == serial_ref.size();
    for (std::size_t i = 0; slab_locs && i < slab.size(); ++i)
      slab_locs = slab[i].loc == serial_ref[i].loc;
    std::printf("  %zu nodes: %.3f ms modeled, %zu NIC transfers "
                "(%.0f B, stall %.3f ms), %zu coefficients, locations %s "
                "serial reference\n",
                o.nodes, slab_fs.model_ms, slab_fs.nic_transfers,
                slab_fs.nic_bytes, slab_fs.nic_stall_ms, slab.size(),
                slab_locs ? "match" : "MISMATCH vs");
    cluster_ok = cluster_ok && slab_refused && slab_locs;
  }

  // Mid-run metrics snapshot: tools/metrics_check compares it against the
  // final snapshot to prove the counters are monotonic within one process
  // (counters reset at process start, so two separate runs can't check
  // this).
  if (!o.metrics.empty()) write_metrics_json(o.metrics + ".snap1.json");

  bool mixed_identical = true;
  if (o.mixed) {
    // Mixed-shape fleet sweep: a skewed batch (expensive shape on even
    // indices, cheap shape on odd) A/B'd across {unit-greedy, cost-LPT}
    // x {unlimited, round-robin staging}. The skew is adversarial for the
    // legacy scheduler: unit-greedy's round-robin lands every expensive
    // signal on device 0 while cost-LPT splits them by modeled cost.
    // Transfers are modeled so the staging policies have copies to stage.
    gpu::Options mopts = opts;
    mopts.include_transfer = true;
    const std::size_t n_big = n, k_big = k;
    const std::size_t n_small = std::max<std::size_t>(1 << 10, n >> 2);
    const std::size_t k_small = std::max<std::size_t>(4, k / 4);
    sfft::Params p_big = paper_params(n_big, k_big, o.seed);
    sfft::Params p_small = paper_params(n_small, k_small, o.seed);
    p_big.algo = o.algo;
    p_small.algo = o.algo;
    std::cout << "\nMixed-shape sweep: " << batch << " signals, big n=2^"
              << o.min_logn << " k=" << k_big << " (even) / small n="
              << n_small << " k=" << k_small << " (odd), devices="
              << o.devices << "\n";

    std::vector<cvec> mix_store;
    std::vector<gpu::MixedSignal> mix;
    for (std::size_t i = 0; i < batch; ++i) {
      const bool big = (i % 2) == 0;
      mix_store.push_back(make_signal(big ? n_big : n_small,
                                      big ? k_big : k_small,
                                      o.seed + 100 + i));
    }
    for (std::size_t i = 0; i < batch; ++i)
      mix.push_back({mix_store[i], (i % 2) == 0 ? p_big : p_small});

    // Per-signal single-device reference: the fleet must reproduce these
    // spectra bit for bit whatever the assignment or staging policy.
    std::vector<SparseSpectrum> mix_expected;
    {
      cusim::Device dev;
      gpu::GpuPlan plan_big(dev, p_big, mopts);
      gpu::GpuPlan plan_small(dev, p_small, mopts);
      for (std::size_t i = 0; i < batch; ++i)
        mix_expected.push_back(
            ((i % 2) == 0 ? plan_big : plan_small).execute(mix[i].x));
    }

    struct Cfg {
      const char* name;
      gpu::ShardPolicy pol;
      cusim::PcieStaging st;
    };
    const Cfg cfgs[] = {
        {"mixed_greedy_unlimited", gpu::ShardPolicy::kUnitGreedy,
         cusim::PcieStaging::Unlimited()},
        {"mixed_greedy_staged", gpu::ShardPolicy::kUnitGreedy,
         cusim::PcieStaging::RoundRobin()},
        {"mixed_lpt_unlimited", gpu::ShardPolicy::kCostLpt,
         cusim::PcieStaging::Unlimited()},
        {"mixed_lpt_staged", gpu::ShardPolicy::kCostLpt,
         cusim::PcieStaging::RoundRobin()},
    };
    double greedy_unlim_ms = 0, lpt_staged_ms = 0;
    for (const Cfg& cfg : cfgs) {
      cusim::DeviceGroup group(o.devices);
      group.set_staging(cfg.st);
      gpu::MultiGpuPlan mplan(group, p_big, mopts);
      mplan.set_shard_policy(cfg.pol);
      WallTimer wall;
      gpu::GpuFleetStats fs;
      const auto got =
          mplan.execute_mixed(mix, &fs, gpu::BatchMode::kPipelined);
      add(cfg.name, wall.ms(), fs.model_ms);
      mixed_identical = mixed_identical && same(mix_expected, got);
      std::printf("  %-22s makespan %8.3f ms  imbalance %.3f  "
                  "stall %7.3f ms  queue %7.3f ms  [%s]\n",
                  cfg.name, fs.model_ms, fs.imbalance, fs.pcie_stall_ms,
                  fs.pcie_queue_ms, fs.staging.c_str());
      if (cfg.pol == gpu::ShardPolicy::kUnitGreedy &&
          cfg.st.kind == cusim::PcieStaging::Kind::kUnlimited)
        greedy_unlim_ms = fs.model_ms;
      if (cfg.pol == gpu::ShardPolicy::kCostLpt &&
          cfg.st.kind == cusim::PcieStaging::Kind::kRoundRobin) {
        lpt_staged_ms = fs.model_ms;
        if (!o.profile.empty())
          write_profile_artifact(group.end_capture(), o.profile);
      }
    }
    std::printf(
        "mixed fleet: LPT+staging %.3f ms vs unit-greedy+unlimited %.3f ms "
        "(%.2fx), spectra %s\n",
        lpt_staged_ms, greedy_unlim_ms,
        lpt_staged_ms > 0 ? greedy_unlim_ms / lpt_staged_ms : 0.0,
        mixed_identical ? "bit-identical" : "MISMATCH");
  }

  const auto pool = cusim::BufferPool::global().stats();
  const auto fc = signal::flat_filter_cache_stats();
  std::cout << "\nbuffer pool: " << pool.allocations << " allocations, "
            << pool.reuses << " reuses, "
            << pool.bytes_allocated / (1024 * 1024) << " MiB allocated\n"
            << "filter cache: " << fc.hits << " hits, " << fc.misses
            << " misses\n\n";

  emit(o, "throughput", t);
  // The always-on registry has been recording the whole run; the --json
  // summary embeds the snapshot so bench_gate baselines and metrics come
  // from one artifact.
  if (!o.json.empty())
    write_results_json(o.json, "throughput", json_rows,
                       cusim::MetricsRegistry::global().expose_json());
  if (!o.metrics.empty()) write_metrics_artifacts(o.metrics);
  // Spectra equivalence (and the cluster scale-out gate when --nodes > 1)
  // is the bench's correctness gate (CI runs it).
  return identical && mixed_identical && cluster_ok ? 0 : 1;
}
