// Architecture sensitivity (the paper's conclusion gestures at "other
// emerging parallel architectures"): re-run cusFFT-optimized on simulated
// devices with scaled memory bandwidth, PCIe bandwidth, and SM count to
// show which resource actually bounds the algorithm. On the K20x the
// binning is DRAM-bound, so bandwidth scales the runtime almost linearly
// while extra SMs do nearly nothing.
#include <iostream>

#include "common.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"

using namespace cusfft;
using namespace cusfft::bench;

namespace {

RunResult run_on(const perfmodel::GpuSpec& spec, std::size_t n,
                 std::size_t k, u64 seed, const cvec& x, bool transfer) {
  cusim::Device dev(spec);
  gpu::Options opts = gpu::Options::optimized();
  opts.include_transfer = transfer;
  gpu::GpuPlan plan(dev, paper_params(n, k, seed), opts);
  gpu::GpuExecStats stats;
  plan.execute(x, &stats);
  return {stats.model_ms, stats.host_ms};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOpts o = BenchOpts::parse(argc, argv);
  const std::size_t n = 1ULL << std::min<std::size_t>(o.fixed_logn, 22);
  const std::size_t k = std::min(o.k, n / 8);
  const cvec x = make_signal(n, k, o.seed);
  std::cout << "Architecture sweep at n=2^"
            << std::min<std::size_t>(o.fixed_logn, 22) << ", k=" << k
            << " (cusFFT optimized)\n\n";

  const perfmodel::GpuSpec base = perfmodel::GpuSpec::k20x();
  ResultTable t({"device variant", "no-transfer ms", "with-transfer ms"});

  auto row = [&](const char* name, const perfmodel::GpuSpec& s) {
    const auto plain = run_on(s, n, k, o.seed, x, false);
    const auto xfer = run_on(s, n, k, o.seed, x, true);
    t.add_row({name, ResultTable::num(plain.model_ms),
               ResultTable::num(xfer.model_ms)});
    std::cerr << "  [arch] " << name << " done\n";
  };

  row("Tesla K20x (Table I)", base);
  {
    perfmodel::GpuSpec s = base;
    s.mem_bandwidth_Bps *= 2;
    s.name = "2x memory bandwidth";
    row("2x memory bandwidth", s);
  }
  {
    perfmodel::GpuSpec s = base;
    s.mem_bandwidth_Bps /= 2;
    row("1/2 memory bandwidth", s);
  }
  {
    perfmodel::GpuSpec s = base;
    s.sm_count *= 2;
    s.max_resident_warps *= 2;
    row("2x SMs (same bandwidth)", s);
  }
  {
    perfmodel::GpuSpec s = base;
    s.pcie_bandwidth_Bps = 12e9;  // Gen3-class link
    row("PCIe Gen3 (12 GB/s)", s);
  }
  {
    perfmodel::GpuSpec s = base;
    s.random_bw_efficiency = s.coalesced_bw_efficiency;
    row("perfect scatter coalescing", s);
  }
  emit(o, "arch_sensitivity", t);
  return 0;
}
