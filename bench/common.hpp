// Shared harness for the figure-regeneration benches: CLI/env options, the
// five measured implementations (cusFFT baseline/optimized, simulated cuFFT,
// parallel FFTW stand-in, PsFFT), and CSV output.
//
// Times reported:
//   model_ms — modeled on the paper's hardware (Table I GPU / Table II CPU)
//              from counters of the functionally executed code; this is the
//              column the figure shapes are judged on (DESIGN.md §1).
//   host_ms  — wall time of the functional run on this machine, for
//              transparency.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "core/table.hpp"
#include "core/timer.hpp"
#include "core/types.hpp"
#include "cusfft/options.hpp"
#include "sfft/params.hpp"

namespace cusfft::bench {

struct BenchOpts {
  std::size_t min_logn = 18;
  std::size_t max_logn = 22;  // paper sweeps to 27; env CUSFFT_MAX_LOGN
  std::size_t k = 1000;       // the paper's fixed sparsity for Fig. 5(a)
  std::size_t fixed_logn = 22;  // paper uses 2^27 for Fig. 5(b)/(f)
  u64 seed = 20160523;          // IPDPS'16 vintage
  std::string out_dir = "bench_results";

  /// Reads CUSFFT_MIN_LOGN / CUSFFT_MAX_LOGN / CUSFFT_K / CUSFFT_FIXED_LOGN
  /// / CUSFFT_SEED / CUSFFT_OUT_DIR, then applies simple --key value args.
  static BenchOpts parse(int argc, char** argv);
};

struct RunResult {
  double model_ms = 0;
  double host_ms = 0;
};

/// Deterministic k-sparse benchmark signal (unit magnitudes, the reference
/// implementations' workload).
cvec make_signal(std::size_t n, std::size_t k, u64 seed);

/// The sparse-FFT configuration all benches run (the paper's parameter
/// regime; overridable via CUSFFT_BCST / CUSFFT_LOOPS_LOC /
/// CUSFFT_LOOPS_EST / CUSFFT_TOL).
sfft::Params paper_params(std::size_t n, std::size_t k, u64 seed);

RunResult run_cusfft(std::size_t n, std::size_t k, const gpu::Options& opts,
                     u64 seed, const cvec& x,
                     std::map<std::string, double>* steps = nullptr);
RunResult run_cufft_dense(std::size_t n, const cvec& x);
RunResult run_fftw_parallel(std::size_t n, const cvec& x);
RunResult run_psfft(std::size_t n, std::size_t k, u64 seed, const cvec& x);
RunResult run_serial_sfft(std::size_t n, std::size_t k, u64 seed,
                          const cvec& x, StepTimers* timers = nullptr);

/// Prints the table, writes <out_dir>/<name>.csv, and reports the path.
void emit(const BenchOpts& o, const std::string& name, const ResultTable& t);

}  // namespace cusfft::bench
