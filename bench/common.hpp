// Shared harness for the figure-regeneration benches: CLI/env options, the
// five measured implementations (cusFFT baseline/optimized, simulated cuFFT,
// parallel FFTW stand-in, PsFFT), and CSV output.
//
// Times reported:
//   model_ms — modeled on the paper's hardware (Table I GPU / Table II CPU)
//              from counters of the functionally executed code; this is the
//              column the figure shapes are judged on (DESIGN.md §1).
//   host_ms  — wall time of the functional run on this machine, for
//              transparency.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "core/timer.hpp"
#include "core/types.hpp"
#include "cusfft/options.hpp"
#include "cusfft/server.hpp"
#include "cusim/profiler.hpp"
#include "sfft/params.hpp"

namespace cusfft::bench {

struct BenchOpts {
  std::size_t min_logn = 18;
  std::size_t max_logn = 22;  // paper sweeps to 27; env CUSFFT_MAX_LOGN
  std::size_t k = 1000;       // the paper's fixed sparsity for Fig. 5(a)
  std::size_t fixed_logn = 22;  // paper uses 2^27 for Fig. 5(b)/(f)
  u64 seed = 20160523;          // IPDPS'16 vintage
  /// Which sparse-FFT backend bench_throughput runs: the paper's bucket
  /// hashing (kCusfft, the default), the FFAST aliasing/peeling backend
  /// (kFfast), or the crossover auto-picker (kAuto). kAuto also turns on
  /// the crossover sweep: bench_throughput calibrates a (n, k, noise)
  /// grid, checks the picker against an oracle that runs both backends,
  /// and emits bench_results/crossover.csv. Env CUSFFT_ALGO / --algo.
  sfft::Algorithm algo = sfft::Algorithm::kCusfft;
  /// Simulated device count for fleet-aware benches (bench_throughput adds
  /// a sharded row and emits the merged multi-device trace when > 1). Env
  /// CUSFFT_DEVICES / --devices.
  std::size_t devices = 1;
  /// Simulated node count for cluster-aware benches. bench_throughput with
  /// --nodes > 1 runs the cluster A/B (1 node vs N nodes at `devices`
  /// devices per node, bit-identical spectra, >= 1.5x modeled speedup
  /// gate) plus the oversized-signal slab demo. Env CUSFFT_NODES /
  /// --nodes.
  std::size_t nodes = 1;
  /// Modeled NIC fabric bandwidth in Gbit/s for the cluster interconnect;
  /// 0 keeps cusim::NicModel's default (~100 Gbit/s). Must be positive
  /// when given. Env CUSFFT_NIC_GBPS / --nic-gbps.
  double nic_gbps = 0;
  /// bench_throughput: add the mixed-shape fleet sweep (skewed per-signal
  /// shapes, LPT-vs-unit-greedy and staging A/B). Env CUSFFT_MIXED /
  /// --mixed.
  bool mixed = false;
  std::string out_dir = "bench_results";
  /// When non-empty, the bench writes a chrome-trace profile artifact of
  /// its last cusFFT capture to this path (plus the profile's CSV next to
  /// it). parse() also registers the path process-wide so run_cusfft()
  /// emits it without per-bench wiring (docs/PROFILING.md).
  std::string profile;
  /// When non-empty, benches that support it (bench_throughput) write a
  /// machine-readable summary — host_ms and modeled ms per configuration —
  /// to this path. Env CUSFFT_JSON / --json.
  std::string json;
  /// When non-empty, benches that support it (bench_throughput) write the
  /// always-on MetricsRegistry snapshot to this path (JSON), the same
  /// snapshot in Prometheus text format to `<path>.prom`, and a mid-run
  /// snapshot to `<path>.snap1.json` for tools/metrics_check's
  /// monotonicity gate. Env CUSFFT_METRICS / --metrics.
  std::string metrics;
  /// bench_throughput: replay a multi-tenant arrival trace through the
  /// serving tier (cusfft::serve::Server) instead of the batch sweeps,
  /// reporting per-SLO-class latency percentiles and sustained QPS. Env
  /// CUSFFT_SERVE / --serve.
  bool serve = false;
  /// --serve: read the arrival trace from this file (serve::Trace text
  /// format) instead of the canned three-tenant trace. Env
  /// CUSFFT_SERVE_IN / --serve-in.
  std::string serve_in;
  /// --serve: write the run's float-free decision trace (batch
  /// composition + shed/reject decisions) to this path — the golden
  /// scheduling artifact CI diffs. Env CUSFFT_SERVE_OUT / --serve-out.
  std::string serve_out;

  /// Reads CUSFFT_MIN_LOGN / CUSFFT_MAX_LOGN / CUSFFT_K / CUSFFT_FIXED_LOGN
  /// / CUSFFT_SEED / CUSFFT_ALGO / CUSFFT_DEVICES / CUSFFT_NODES /
  /// CUSFFT_NIC_GBPS / CUSFFT_MIXED / CUSFFT_OUT_DIR / CUSFFT_PROFILE /
  /// CUSFFT_METRICS, then applies --key value args (--profile <path>,
  /// --algo cusfft|ffast|auto, --devices <N>, --nodes <N>, --nic-gbps <G>)
  /// and the boolean --mixed flag. CUSFFT_AUTOPICK (measured|modeled) is
  /// validated here too so a typo fails at startup, not mid-sweep.
  /// The environment is re-read on every call — no latching.
  /// Malformed numbers, empty path values, a flag missing its value, and
  /// unknown flags are usage errors: the process prints usage to stderr
  /// and exits with status 2 instead of silently running a degenerate
  /// configuration.
  static BenchOpts parse(int argc, char** argv);
};

struct RunResult {
  double model_ms = 0;
  double host_ms = 0;
};

/// Strict numeric environment read: returns `def` when `name` is unset,
/// exits with the usage message when the value is malformed (the old
/// strtoull-based read silently turned CUSFFT_K=abc into 0).
std::size_t env_or(const char* name, std::size_t def);

/// serve::ServerConfig::from_env(base) with bench error semantics: a
/// malformed CUSFFT_SERVE_* value (the library's typed
/// std::invalid_argument) becomes the usual exit-2 usage error. Re-reads
/// the environment on every call, like the library.
serve::ServerConfig serve_config_or_exit(serve::ServerConfig base);

/// Deterministic k-sparse benchmark signal (unit magnitudes, the reference
/// implementations' workload).
cvec make_signal(std::size_t n, std::size_t k, u64 seed);

/// The sparse-FFT configuration all benches run (the paper's parameter
/// regime; overridable via CUSFFT_BCST / CUSFFT_LOOPS_LOC /
/// CUSFFT_LOOPS_EST / CUSFFT_TOL).
sfft::Params paper_params(std::size_t n, std::size_t k, u64 seed);

RunResult run_cusfft(std::size_t n, std::size_t k, const gpu::Options& opts,
                     u64 seed, const cvec& x,
                     std::map<std::string, double>* steps = nullptr);
RunResult run_cufft_dense(std::size_t n, const cvec& x);
RunResult run_fftw_parallel(std::size_t n, const cvec& x);
RunResult run_psfft(std::size_t n, std::size_t k, u64 seed, const cvec& x);
RunResult run_serial_sfft(std::size_t n, std::size_t k, u64 seed,
                          const cvec& x, StepTimers* timers = nullptr);

/// Prints the table, writes <out_dir>/<name>.csv, and reports the path.
void emit(const BenchOpts& o, const std::string& name, const ResultTable& t);

/// Writes `p` as a chrome-trace JSON artifact to `path` and its structured
/// table as CSV to `path + ".csv"`. Used by run_cusfft() when a profile
/// path is registered, and directly by benches that drive GpuPlan
/// themselves (bench_gpu_profile, bench_throughput).
void write_profile_artifact(const cusim::CaptureProfile& p,
                            const std::string& path);

/// The profile path registered by the last BenchOpts::parse() (empty when
/// profiling is off).
const std::string& profile_path();

/// One row of a --json bench summary.
struct JsonRow {
  std::string name;
  double host_ms = 0;
  double model_ms = 0;
};

/// Writes `{"bench": <bench>, "results": [{"name", "host_ms",
/// "model_ms"}...]}` to `path`. When `metrics_json` is non-empty (a
/// document from MetricsRegistry::expose_json) it is embedded verbatim
/// under a top-level "metrics" key, so bench_gate baselines and the
/// metrics snapshot come from one artifact. Returns false (and reports to
/// stdout) when the file cannot be written.
bool write_results_json(const std::string& path, const std::string& bench,
                        const std::vector<JsonRow>& rows,
                        const std::string& metrics_json = "");

/// Writes the current MetricsRegistry::global() snapshot to `path` (JSON,
/// schema "cusfft-metrics-v1") and to `path + ".prom"` (Prometheus text
/// exposition). Returns false when either file cannot be written.
bool write_metrics_artifacts(const std::string& path);

/// Writes only the JSON snapshot to `path` — used for the mid-run
/// `<metrics>.snap1.json` that tools/metrics_check compares against the
/// final snapshot for counter monotonicity.
bool write_metrics_json(const std::string& path);

}  // namespace cusfft::bench
