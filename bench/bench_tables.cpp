// Tables I and II: the experimental test benches. Our reproduction runs on
// simulated hardware, so these tables *are* the model configuration — they
// print the exact parameters every modeled time in the other benches uses.
#include <iostream>

#include "common.hpp"
#include "perfmodel/specs.hpp"

using namespace cusfft;
using namespace cusfft::bench;

int main(int argc, char** argv) {
  const BenchOpts o = BenchOpts::parse(argc, argv);
  const auto g = perfmodel::GpuSpec::k20x();
  const auto c = perfmodel::CpuSpec::e5_2640();

  ResultTable t1({"GPU Type", "CUDA Capability", "CUDA cores / SMs",
                  "Processor Clock", "Shared Memory", "Global Memory",
                  "Memory Bandwidth"});
  t1.add_row({g.name, ResultTable::num(g.cuda_capability),
              std::to_string(g.sm_count * g.cores_per_sm) + " cores / " +
                  std::to_string(g.sm_count) + " SMs",
              ResultTable::num(g.clock_hz / 1e6) + " MHz",
              std::to_string(g.shared_mem_per_sm / 1024) + " KB",
              std::to_string(g.global_mem_bytes >> 30) + " GB",
              ResultTable::num(g.mem_bandwidth_Bps / 1e9) + " GB/s"});
  emit(o, "table1_gpu_testbench", t1);

  ResultTable t2({"Processor", "Architecture", "Cores", "Processor Clock",
                  "L1 Cache", "L2 Cache", "L3 Cache", "DRAM"});
  t2.add_row({c.name, c.arch, std::to_string(c.cores),
              ResultTable::num(c.clock_hz / 1e9) + " GHz",
              std::to_string(c.cores) + " x " +
                  std::to_string(c.l1_data_bytes / 1024) + " KB D/I",
              std::to_string(c.cores) + " x " +
                  std::to_string(c.l2_bytes / 1024) + " KB",
              std::to_string(c.l3_bytes / (1024 * 1024)) + " MB",
              std::to_string(c.dram_bytes >> 30) + " GB"});
  emit(o, "table2_cpu_testbench", t2);

  ResultTable t3({"model constant", "value", "why"});
  t3.add_row({"GPU transaction size", "128 B", "Section IV.B coalescing"});
  t3.add_row({"coalesced BW efficiency",
              ResultTable::num(g.coalesced_bw_efficiency),
              "streaming fraction of peak (ECC on)"});
  t3.add_row({"random BW efficiency",
              ResultTable::num(g.random_bw_efficiency),
              "scattered 128B transactions (row misses)"});
  t3.add_row({"concurrent kernels", std::to_string(g.max_concurrent_kernels),
              "GK110 Hyper-Q (Section V.A)"});
  t3.add_row({"PCIe bandwidth", ResultTable::num(g.pcie_bandwidth_Bps / 1e9) +
                                   " GB/s",
              "Gen2 x16 effective"});
  t3.add_row({"CPU DRAM latency",
              ResultTable::num(c.dram_latency_s * 1e9) + " ns",
              "random access + TLB pressure"});
  t3.add_row({"CPU MLP/thread", ResultTable::num(c.mlp_per_thread),
              "dependent index chain in reference sFFT"});
  emit(o, "model_constants", t3);
  return 0;
}
