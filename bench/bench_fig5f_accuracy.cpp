// Figure 5(f): L1 error per large coefficient of cusFFT vs the dense-FFT
// oracle (the paper compares against FFTW output), at fixed n over a sweep
// of k. The paper's point: the GPU algorithm's speed does not cost
// accuracy — the error stays tiny.
#include <iostream>

#include "common.hpp"
#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "fft/fft.hpp"
#include "signal/generate.hpp"

using namespace cusfft;
using namespace cusfft::bench;

int main(int argc, char** argv) {
  const BenchOpts o = BenchOpts::parse(argc, argv);
  const std::size_t n = 1ULL << o.fixed_logn;
  std::cout << "Figure 5(f): cusFFT L1 error per large coefficient vs "
               "dense-FFT oracle, n=2^" << o.fixed_logn << "\n\n";

  ResultTable t({"k", "l1_error_per_coeff", "max_error_at_locs",
                 "location_recall"});
  for (std::size_t k = 100; k <= 1000; k += 150) {
    Rng rng(o.seed ^ k);
    const auto sig = signal::make_sparse_signal(n, k, rng);
    const cvec oracle = densify(sig.truth, n);

    cusim::Device dev;
    gpu::GpuPlan plan(dev, paper_params(n, k, o.seed),
                      gpu::Options::optimized());
    const auto got = plan.execute(sig.x);

    t.add_row({std::to_string(k),
               ResultTable::num(l1_error_per_coeff(got, oracle, k), 3),
               ResultTable::num(max_error_at_locs(got, oracle), 3),
               ResultTable::num(location_recall(got, oracle, k), 4)});
    std::cerr << "  [fig5f] k=" << k << " done\n";
  }
  emit(o, "fig5f_accuracy", t);
  return 0;
}
