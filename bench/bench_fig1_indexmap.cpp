// Figure 1 / Figure 3: the inner-loop index pattern and the index-mapping
// rewrite. Prints the dependent-chain sequence next to the closed form
// (they must match), then times the GPU binning with and without the
// mapping — the "without" case runs as one dependent chain and shows why
// the rewrite is what makes the kernel parallelizable at all.
#include <iostream>

#include "common.hpp"
#include "cusfft/plan.hpp"
#include "sfft/serial.hpp"

using namespace cusfft;
using namespace cusfft::bench;

int main(int argc, char** argv) {
  BenchOpts o = BenchOpts::parse(argc, argv);

  // The index pattern on a toy case (Fig. 1's illustration).
  const u64 n = 16, ai = 5, init_val = 3;
  ResultTable seq({"i", "chained index", "mapped (i*ai+init) mod n"});
  u64 chained = init_val;
  bool all_equal = true;
  for (u64 i = 0; i < 8; ++i) {
    const u64 mapped = (i * ai + init_val) % n;
    seq.add_row({std::to_string(i), std::to_string(chained),
                 std::to_string(mapped)});
    all_equal = all_equal && (chained == mapped);
    chained = (chained + ai) % n;
  }
  emit(o, "fig1_index_sequence", seq);
  std::cout << (all_equal ? "index mapping == chained sequence: OK"
                          : "MISMATCH between mapping and chain!")
            << "\n\n";

  // Modeled cost of the perm+filter step with and without the mapping.
  const std::size_t bn = 1ULL << std::min<std::size_t>(o.max_logn, 18);
  const std::size_t k = std::min<std::size_t>(o.k, bn / 8);
  const cvec x = make_signal(bn, k, o.seed);

  gpu::Options with = gpu::Options::baseline();
  gpu::Options without = gpu::Options::baseline();
  without.binning = gpu::Binning::kSerialChain;

  std::map<std::string, double> steps_with, steps_without;
  run_cusfft(bn, k, with, o.seed, x, &steps_with);
  run_cusfft(bn, k, without, o.seed, x, &steps_without);

  const char* pf = sfft::step::kPermFilter;
  ResultTable t({"variant", "perm+filter model_ms"});
  t.add_row({"index mapping (parallel, Algorithm 2)",
             ResultTable::num(steps_with.at(pf))});
  t.add_row({"loop-carried chain (one dependent thread)",
             ResultTable::num(steps_without.at(pf))});
  t.add_row({"speedup from index mapping",
             ResultTable::num(steps_without.at(pf) / steps_with.at(pf))});
  emit(o, "fig1_indexmap_effect", t);
  return 0;
}
