// Figure 5(b): average execution time vs sparsity k at fixed n for cusFFT
// (baseline & optimized), cuFFT, PsFFT, and parallel FFTW. The dense
// baselines are independent of k; sFFT grows slowly with k.
#include <iostream>

#include "common.hpp"

using namespace cusfft;
using namespace cusfft::bench;

int main(int argc, char** argv) {
  const BenchOpts o = BenchOpts::parse(argc, argv);
  const std::size_t n = 1ULL << o.fixed_logn;
  std::cout << "Figure 5(b): runtime vs k, n=2^" << o.fixed_logn << "\n\n";

  const cvec probe = make_signal(n, 100, o.seed);
  const auto cufft = run_cufft_dense(n, probe);
  const auto fftw = run_fftw_parallel(n, probe);

  ResultTable t({"k", "cusfft_base_ms", "cusfft_opt_ms", "cufft_ms",
                 "psfft_ms", "fftw_ms"});
  for (std::size_t k = 100; k <= 1000; k += 150) {
    const cvec x = make_signal(n, k, o.seed);
    const auto base = run_cusfft(n, k, gpu::Options::baseline(), o.seed, x);
    const auto opt = run_cusfft(n, k, gpu::Options::optimized(), o.seed, x);
    const auto psfft = run_psfft(n, k, o.seed, x);
    t.add_row({std::to_string(k), ResultTable::num(base.model_ms),
               ResultTable::num(opt.model_ms),
               ResultTable::num(cufft.model_ms),
               ResultTable::num(psfft.model_ms),
               ResultTable::num(fftw.model_ms)});
    std::cerr << "  [fig5b] k=" << k << " done\n";
  }
  emit(o, "fig5b_runtime_vs_k", t);
  return 0;
}
