// Figure 5(a): average execution time vs signal size n at fixed k=1000 for
// cusFFT (baseline & optimized), cuFFT, PsFFT, and parallel FFTW.
// GPU-resident comparison (no PCIe), as the paper's Fig. 5(a)-(d).
#include <cstdio>
#include <iostream>

#include "common.hpp"

using namespace cusfft;
using namespace cusfft::bench;

int main(int argc, char** argv) {
  const BenchOpts o = BenchOpts::parse(argc, argv);
  std::cout << "Figure 5(a): runtime vs n, k=" << o.k
            << " (model_ms on Table I/II hardware; host_ms = functional "
               "wall time on this container)\n\n";

  ResultTable t({"logn", "cusfft_base_ms", "cusfft_opt_ms", "cufft_ms",
                 "psfft_ms", "fftw_ms", "cusfft_opt_host_ms",
                 "cufft_host_ms"});
  for (std::size_t logn = o.min_logn; logn <= o.max_logn; ++logn) {
    const std::size_t n = 1ULL << logn;
    const std::size_t k = std::min(o.k, n / 8);
    const cvec x = make_signal(n, k, o.seed);

    const auto base =
        run_cusfft(n, k, gpu::Options::baseline(), o.seed, x);
    const auto opt =
        run_cusfft(n, k, gpu::Options::optimized(), o.seed, x);
    const auto cufft = run_cufft_dense(n, x);
    const auto psfft = run_psfft(n, k, o.seed, x);
    const auto fftw = run_fftw_parallel(n, x);

    t.add_row({std::to_string(logn), ResultTable::num(base.model_ms),
               ResultTable::num(opt.model_ms),
               ResultTable::num(cufft.model_ms),
               ResultTable::num(psfft.model_ms),
               ResultTable::num(fftw.model_ms),
               ResultTable::num(opt.host_ms),
               ResultTable::num(cufft.host_ms)});
    std::cerr << "  [fig5a] logn=" << logn << " done\n";
  }
  emit(o, "fig5a_runtime_vs_n", t);
  return 0;
}
