// google-benchmark microbenchmarks for the primitive layers: host FFT,
// binning, estimation, device sort/scan/select, and timeline simulation.
// These measure *this machine's* functional throughput (not modeled GPU
// time) — useful for tracking regressions in the hot loops.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/rng.hpp"
#include "cusim/cluster.hpp"
#include "cusim/device.hpp"
#include "custhrust/scan.hpp"
#include "custhrust/select.hpp"
#include "custhrust/sort.hpp"
#include "fft/fft.hpp"
#include "sfft/comb.hpp"
#include "sfft/ffast.hpp"
#include "sfft/serial.hpp"
#include "sfft/steps.hpp"
#include "signal/filter.hpp"
#include "signal/generate.hpp"

namespace {

using namespace cusfft;

cvec random_signal(std::size_t n, u64 seed) {
  Rng rng(seed);
  cvec x(n);
  for (auto& v : x) v = cplx{rng.next_normal(), rng.next_normal()};
  return x;
}

void BM_HostFft(benchmark::State& state) {
  const std::size_t n = 1ULL << state.range(0);
  cvec x = random_signal(n, 1);
  fft::Plan plan(n, fft::Direction::kForward);
  for (auto _ : state) {
    plan.execute(x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_HostFft)->Arg(10)->Arg(14)->Arg(18);

void BM_HostFftBluestein(benchmark::State& state) {
  const std::size_t n = 10000;  // non-power-of-two
  cvec x = random_signal(n, 2);
  fft::Plan plan(n, fft::Direction::kForward);
  for (auto _ : state) {
    plan.execute(x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_HostFftBluestein);

void BM_BinPermuted(benchmark::State& state) {
  const std::size_t n = 1ULL << 18, B = 1024;
  cvec x = random_signal(n, 3);
  auto filter = signal::make_flat_filter(n, B);
  sfft::LoopPerm perm{12345, mod_inverse(12345, n), 777};
  cvec z(B);
  for (auto _ : state) {
    sfft::bin_permuted(x, filter.time, perm, z);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(filter.time.size()));
}
BENCHMARK(BM_BinPermuted);

// Scalar reference loop (pre-SoA implementation) — kept benchmarked so the
// speedup of the blocked/SoA path above is visible in every bench run.
void BM_BinPermutedReference(benchmark::State& state) {
  const std::size_t n = 1ULL << 18, B = 1024;
  cvec x = random_signal(n, 3);
  auto filter = signal::make_flat_filter(n, B);
  sfft::LoopPerm perm{12345, mod_inverse(12345, n), 777};
  cvec z(B);
  for (auto _ : state) {
    sfft::bin_permuted_reference(x, filter.time, perm, z);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(filter.time.size()));
}
BENCHMARK(BM_BinPermutedReference);

void BM_EstimateCoef(benchmark::State& state) {
  const std::size_t n = 1ULL << 14, B = 256, L = 8;
  Rng rng(4);
  auto filter = signal::make_flat_filter(n, B);
  auto perms = sfft::draw_loop_perms(n, L, rng);
  std::vector<cvec> buckets(L, cvec(B, cplx{1.0, 0.5}));
  for (auto _ : state) {
    auto v = sfft::estimate_coef(1234, perms, buckets, filter.freq, n, B);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_EstimateCoef);

void BM_DeviceRadixSort(benchmark::State& state) {
  const std::size_t B = 1ULL << state.range(0);
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    cusim::Device dev;
    dev.begin_capture();
    cusim::DeviceBuffer<double> keys(B);
    cusim::DeviceBuffer<u32> vals(B);
    for (std::size_t i = 0; i < B; ++i) {
      keys.host()[i] = rng.next_normal();
      vals.host()[i] = static_cast<u32>(i);
    }
    state.ResumeTiming();
    custhrust::sort_pairs_desc(dev, keys, vals);
    benchmark::DoNotOptimize(keys.host().data());
  }
}
BENCHMARK(BM_DeviceRadixSort)->Arg(10)->Arg(14);

void BM_DeviceScan(benchmark::State& state) {
  const std::size_t m = 1ULL << 14;
  for (auto _ : state) {
    state.PauseTiming();
    cusim::Device dev;
    dev.begin_capture();
    cusim::DeviceBuffer<u64> data(m);
    for (std::size_t i = 0; i < m; ++i) data.host()[i] = i % 7;
    state.ResumeTiming();
    custhrust::exclusive_scan(dev, data);
    benchmark::DoNotOptimize(data.host().data());
  }
}
BENCHMARK(BM_DeviceScan);

void BM_DeviceSelect(benchmark::State& state) {
  const std::size_t B = 1ULL << 14;
  cusim::Device dev;
  cusim::DeviceBuffer<cplx> buckets(B);
  Rng rng(6);
  for (auto& v : buckets.host())
    v = cplx{rng.next_normal() * 1e-3, rng.next_normal() * 1e-3};
  buckets.host()[100] = {1.0, 0.0};
  for (auto _ : state) {
    dev.begin_capture();
    auto r = custhrust::threshold_select(dev, buckets);
    benchmark::DoNotOptimize(r.indices.data());
  }
}
BENCHMARK(BM_DeviceSelect);

void BM_TimelineSimulate(benchmark::State& state) {
  // Rebuild the event list every iteration: simulate() caches its result
  // while the timeline is unchanged, so submitting outside the loop would
  // only measure the cached-makespan fast path.
  for (auto _ : state) {
    cusim::Timeline tl(32);
    for (int i = 0; i < 512; ++i)
      tl.submit({"k", static_cast<cusim::StreamId>(i % 32),
                 cusim::Resource::kDeviceMemory, 1e-4, 1e-5});
    double t = tl.simulate();
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 512);
}
BENCHMARK(BM_TimelineSimulate);

void BM_ClusterSimulate(benchmark::State& state) {
  // The cluster merge path end to end: per-node device work, NIC ingress
  // staging, a cross-node exchange behind an exchange barrier, then the
  // two-phase NIC waterfill + schedule merge. Rebuilt every iteration
  // (like BM_TimelineSimulate) so the cached-makespan fast path is not
  // what gets measured.
  cusim::Cluster cluster(2, 2);
  const auto body = [](cusim::ThreadCtx&) {};
  for (auto _ : state) {
    cluster.begin_capture();
    for (std::size_t m = 0; m < cluster.nodes(); ++m) {
      cluster.add_ingress(static_cast<unsigned>(m), "stage", 1 << 16);
      for (std::size_t d = 0; d < cluster.node(m).size(); ++d) {
        cusim::Device& dev = cluster.node(m).device(d);
        for (int i = 0; i < 16; ++i)
          dev.launch(cusim::LaunchCfg::for_elements("k", 256), body);
      }
    }
    cluster.add_exchange(1, 0, "gather", 1 << 16);
    cluster.mark_exchange_barrier(0);
    cluster.node(0).device(0).sync_point();
    cluster.node(0).device(0).launch(
        cusim::LaunchCfg::for_elements("reduce", 256), body);
    auto s = cluster.simulate();
    benchmark::DoNotOptimize(s.makespan_s);
  }
  // 16 kernels x 4 devices + ingress/exchange/reduce items per iteration.
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 68);
}
BENCHMARK(BM_ClusterSimulate);

void BM_FlatFilterConstruction(benchmark::State& state) {
  const std::size_t n = 1ULL << 16, B = 512;
  for (auto _ : state) {
    auto f = signal::make_flat_filter(n, B);
    benchmark::DoNotOptimize(f.time.data());
  }
}
BENCHMARK(BM_FlatFilterConstruction);


void BM_ModMul(benchmark::State& state) {
  Rng rng(7);
  const u64 m = (1ULL << 61) - 1;
  u64 a = rng.next_u64() % m, b = rng.next_u64() % m;
  for (auto _ : state) {
    a = mod_mul(a, b, m);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ModMul);

void BM_VoteLocations(benchmark::State& state) {
  const std::size_t n = 1ULL << 18, B = 1024, cutoff = 64;
  sfft::LoopPerm perm{12345, mod_inverse(12345, n), 77};
  std::vector<u32> selected(cutoff);
  std::iota(selected.begin(), selected.end(), 0u);
  std::vector<std::uint8_t> score(n, 0);
  std::vector<u64> hits;
  for (auto _ : state) {
    std::fill(score.begin(), score.end(), 0);
    hits.clear();
    sfft::vote_locations(selected, perm, n, B, 1, score, hits);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(cutoff * (n / B)));
}
BENCHMARK(BM_VoteLocations);

void BM_CombFilter(benchmark::State& state) {
  const std::size_t n = 1ULL << 18, W = 1024;
  Rng rng(8);
  const auto sig = signal::make_sparse_signal(n, 32, rng);
  const u64 taus[] = {11, 222};
  for (auto _ : state) {
    auto c = sfft::run_comb_filter(sig.x, W, 64, taus);
    benchmark::DoNotOptimize(c.approved.data());
  }
}
BENCHMARK(BM_CombFilter);

void BM_SerialSfftEndToEnd(benchmark::State& state) {
  const std::size_t n = 1ULL << state.range(0), k = 16;
  Rng rng(9);
  const auto sig = signal::make_sparse_signal(n, k, rng);
  sfft::Params p;
  p.n = n;
  p.k = k;
  sfft::SerialPlan plan(p);
  for (auto _ : state) {
    auto out = plan.execute(sig.x);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SerialSfftEndToEnd)->Arg(14)->Arg(16);

void BM_Ffast(benchmark::State& state) {
  // The FFAST peeling backend end to end on the CPU reference plan —
  // tracked next to BM_SerialSfftEndToEnd so the crossover the auto
  // picker banks on (FFAST cheap at low k) stays visible in the gate.
  const std::size_t n = 1ULL << state.range(0), k = 16;
  Rng rng(9);
  const auto sig = signal::make_sparse_signal(n, k, rng);
  sfft::Params p;
  p.n = n;
  p.k = k;
  p.algo = sfft::Algorithm::kFfast;
  sfft::FfastPlan plan(p);
  for (auto _ : state) {
    auto out = plan.execute(sig.x);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Ffast)->Arg(14)->Arg(16);

void BM_MedianComplex(benchmark::State& state) {
  Rng rng(10);
  cvec v(15);
  for (auto& c : v) c = cplx{rng.next_normal(), rng.next_normal()};
  for (auto _ : state) {
    cvec copy = v;
    auto m = sfft::median_complex(copy);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MedianComplex);

}  // namespace

BENCHMARK_MAIN();
