// Figure 5(d): speedup of the optimized cusFFT over parallel FFTW on the
// Table-II CPU. The paper reports 0.5x (small n) to 29x (n = 2^27).
#include <iostream>

#include "common.hpp"

using namespace cusfft;
using namespace cusfft::bench;

int main(int argc, char** argv) {
  const BenchOpts o = BenchOpts::parse(argc, argv);
  std::cout << "Figure 5(d): cusFFT speedup over parallel FFTW, k=" << o.k
            << "\n\n";

  ResultTable t({"logn", "fftw_ms", "cusfft_opt_ms", "speedup"});
  for (std::size_t logn = o.min_logn; logn <= o.max_logn; ++logn) {
    const std::size_t n = 1ULL << logn;
    const std::size_t k = std::min(o.k, n / 8);
    const cvec x = make_signal(n, k, o.seed);
    const auto fftw = run_fftw_parallel(n, x);
    const auto opt = run_cusfft(n, k, gpu::Options::optimized(), o.seed, x);
    t.add_row({std::to_string(logn), ResultTable::num(fftw.model_ms),
               ResultTable::num(opt.model_ms),
               ResultTable::num(fftw.model_ms / opt.model_ms)});
    std::cerr << "  [fig5d] logn=" << logn << " done\n";
  }
  emit(o, "fig5d_speedup_over_fftw", t);
  return 0;
}
