// Figure 5(e): speedup of cusFFT over the multicore PsFFT. As the paper
// notes, this comparison charges cusFFT for the host-to-device transfer of
// the input (PsFFT reads host memory directly), which is what bends the
// curve back down at large n (paper: peak 6.6x at 2^24, average >4x).
#include <iostream>

#include "common.hpp"

using namespace cusfft;
using namespace cusfft::bench;

int main(int argc, char** argv) {
  const BenchOpts o = BenchOpts::parse(argc, argv);
  std::cout << "Figure 5(e): cusFFT (incl. H2D transfer) speedup over "
               "PsFFT, k=" << o.k << "\n\n";

  gpu::Options opt = gpu::Options::optimized();
  opt.include_transfer = true;

  ResultTable t({"logn", "psfft_ms", "cusfft_opt_ms(+h2d)", "speedup"});
  for (std::size_t logn = o.min_logn; logn <= o.max_logn; ++logn) {
    const std::size_t n = 1ULL << logn;
    const std::size_t k = std::min(o.k, n / 8);
    const cvec x = make_signal(n, k, o.seed);
    const auto psfft = run_psfft(n, k, o.seed, x);
    const auto gpu_run = run_cusfft(n, k, opt, o.seed, x);
    t.add_row({std::to_string(logn), ResultTable::num(psfft.model_ms),
               ResultTable::num(gpu_run.model_ms),
               ResultTable::num(psfft.model_ms / gpu_run.model_ms)});
    std::cerr << "  [fig5e] logn=" << logn << " done\n";
  }
  emit(o, "fig5e_speedup_over_psfft", t);
  return 0;
}
