// Figure 5(c): speedup of cusFFT (baseline and optimized) over cuFFT vs
// signal size. The paper reports the speedup growing with n, reaching >9x
// (baseline) and 15x (optimized) at n = 2^27. GPU-resident (no PCIe).
#include <iostream>

#include "common.hpp"

using namespace cusfft;
using namespace cusfft::bench;

int main(int argc, char** argv) {
  const BenchOpts o = BenchOpts::parse(argc, argv);
  std::cout << "Figure 5(c): cusFFT speedup over cuFFT, k=" << o.k << "\n\n";

  ResultTable t({"logn", "cufft_ms", "cusfft_base_ms", "cusfft_opt_ms",
                 "speedup_base", "speedup_opt"});
  for (std::size_t logn = o.min_logn; logn <= o.max_logn; ++logn) {
    const std::size_t n = 1ULL << logn;
    const std::size_t k = std::min(o.k, n / 8);
    const cvec x = make_signal(n, k, o.seed);
    const auto cufft = run_cufft_dense(n, x);
    const auto base = run_cusfft(n, k, gpu::Options::baseline(), o.seed, x);
    const auto opt = run_cusfft(n, k, gpu::Options::optimized(), o.seed, x);
    t.add_row({std::to_string(logn), ResultTable::num(cufft.model_ms),
               ResultTable::num(base.model_ms),
               ResultTable::num(opt.model_ms),
               ResultTable::num(cufft.model_ms / base.model_ms),
               ResultTable::num(cufft.model_ms / opt.model_ms)});
    std::cerr << "  [fig5c] logn=" << logn << " done\n";
  }
  emit(o, "fig5c_speedup_over_cufft", t);
  return 0;
}
