// Extension experiment (not a paper figure): accuracy of cusFFT-optimized
// as additive white Gaussian noise rises. The paper evaluates exactly-
// sparse signals only; practical deployments ("background noises add to
// the signal spectra", Section III step 4) care about the SNR at which
// location recall and L1 error degrade.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "signal/generate.hpp"

using namespace cusfft;
using namespace cusfft::bench;

int main(int argc, char** argv) {
  const BenchOpts o = BenchOpts::parse(argc, argv);
  const std::size_t n = 1ULL << std::min<std::size_t>(o.fixed_logn, 20);
  const std::size_t k = std::min<std::size_t>(o.k, 64);
  std::cout << "Noise robustness at n=2^"
            << std::min<std::size_t>(o.fixed_logn, 20) << ", k=" << k
            << " (cusFFT optimized)\n\n";

  // Per-sample tone amplitude is ~sqrt(k)/n; sweep noise sigma relative to
  // it and report the resulting spectral SNR.
  const double tone_rms = std::sqrt(static_cast<double>(k)) /
                          static_cast<double>(n);
  ResultTable t({"noise/tone_rms", "spectral_snr_db", "recall",
                 "l1_per_coeff", "candidates"});
  for (double rel : {0.0, 0.01, 0.03, 0.1, 0.3, 1.0}) {
    Rng rng(o.seed ^ static_cast<u64>(rel * 1000));
    signal::SparseSignalParams sp;
    sp.noise_sigma = rel * tone_rms;
    const auto sig = signal::make_sparse_signal(n, k, rng, sp);
    const cvec oracle = densify(sig.truth, n);

    cusim::Device dev;
    gpu::GpuPlan plan(dev, paper_params(n, k, o.seed),
                      gpu::Options::optimized());
    gpu::GpuExecStats stats;
    const auto got = plan.execute(sig.x, &stats);

    // Spectral SNR: per-coefficient signal power 1 vs noise power per bin
    // = 2*sigma^2*n.
    const double snr_db =
        rel == 0.0 ? 999.0
                   : 10.0 * std::log10(1.0 / (2.0 * sp.noise_sigma *
                                              sp.noise_sigma *
                                              static_cast<double>(n)));
    t.add_row({ResultTable::num(rel), ResultTable::num(snr_db, 3),
               ResultTable::num(location_recall(got, oracle, k), 4),
               ResultTable::num(l1_error_per_coeff(got, oracle, k), 3),
               std::to_string(stats.candidates)});
    std::cerr << "  [noise] rel=" << rel << " done\n";
  }
  emit(o, "noise_robustness", t);
  return 0;
}
