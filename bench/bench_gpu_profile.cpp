// GPU per-step profile — the device-side analog of Fig. 2: where the
// modeled K20x time goes per paper step as n grows, plus an nvprof-style
// per-kernel table at the largest size. Reported both as summed solo
// kernel durations (attribution) and as overlap-aware timeline phase spans.
#include <iostream>

#include "common.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "cusim/report.hpp"
#include "sfft/serial.hpp"

using namespace cusfft;
using namespace cusfft::bench;

int main(int argc, char** argv) {
  const BenchOpts o = BenchOpts::parse(argc, argv);
  std::cout << "GPU (modeled K20x) per-step profile, cusFFT optimized, k="
            << o.k << "\n\n";

  const std::vector<const char*> steps = {
      sfft::step::kPermFilter, sfft::step::kSubFft, sfft::step::kCutoff,
      sfft::step::kLocRecover, sfft::step::kEstimate};

  std::vector<std::string> header{"logn"};
  for (const char* s : steps) header.emplace_back(s);
  header.emplace_back("makespan_ms");
  ResultTable t(header);

  cusim::Device last_dev;  // keeps the largest run's report for the table
  for (std::size_t logn = o.min_logn; logn <= o.max_logn; ++logn) {
    const std::size_t n = 1ULL << logn;
    const std::size_t k = std::min(o.k, n / 8);
    const cvec x = make_signal(n, k, o.seed);

    cusim::Device dev;
    gpu::GpuPlan plan(dev, paper_params(n, k, o.seed),
                      gpu::Options::optimized());
    gpu::GpuExecStats stats;
    plan.execute(x, &stats);

    std::vector<std::string> row{std::to_string(logn)};
    for (const char* s : steps) {
      auto it = stats.step_model_ms.find(s);
      row.push_back(
          ResultTable::num(it == stats.step_model_ms.end() ? 0 : it->second));
    }
    row.push_back(ResultTable::num(stats.model_ms));
    t.add_row(row);
    std::cerr << "  [gpuprof] logn=" << logn << " done\n";

    if (logn == o.max_logn) {
      std::cout << "per-kernel counters at n=2^" << logn
                << " (nvprof-style):\n"
                << cusim::report_table(dev).to_ascii() << "\n";
      if (!o.profile.empty())
        write_profile_artifact(dev.end_capture(), o.profile);
    }
  }
  emit(o, "gpu_profile_vs_n", t);
  return 0;
}
