// Figure 2: per-step time breakdown of the sequential sFFT.
//  (a) sweep n at fixed k (paper: n = 2^18..2^27, k = 1000)
//  (b) sweep k at fixed n (paper: n = 2^27, k = 100..1000)
// Times are wall-clock of the serial reference on this machine — exactly
// what the paper profiled (its Fig. 2 is a host profile, not a GPU one).
#include <iostream>
#include <vector>

#include "common.hpp"
#include "sfft/serial.hpp"

using namespace cusfft;
using namespace cusfft::bench;

namespace {

const std::vector<const char*> kSteps = {
    sfft::step::kPermFilter, sfft::step::kSubFft, sfft::step::kCutoff,
    sfft::step::kLocRecover, sfft::step::kEstimate};

std::vector<std::string> row_for(const std::string& label,
                                 const StepTimers& t) {
  std::vector<std::string> row{label};
  double total = 0;
  for (const char* s : kSteps) total += t.get(s);
  for (const char* s : kSteps) row.push_back(ResultTable::num(t.get(s)));
  row.push_back(ResultTable::num(total));
  return row;
}

std::vector<std::string> header(const std::string& key) {
  std::vector<std::string> h{key};
  for (const char* s : kSteps) h.emplace_back(std::string(s) + " (ms)");
  h.push_back("total (ms)");
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOpts o = BenchOpts::parse(argc, argv);

  // (a) vary n, fixed k.
  ResultTable ta(header("logn"));
  for (std::size_t logn = o.min_logn; logn <= o.max_logn; ++logn) {
    const std::size_t n = 1ULL << logn;
    const std::size_t k = std::min(o.k, n / 8);
    const cvec x = make_signal(n, k, o.seed);
    StepTimers timers;
    run_serial_sfft(n, k, o.seed, x, &timers);
    ta.add_row(row_for(std::to_string(logn), timers));
    std::cerr << "  [fig2a] logn=" << logn << " done\n";
  }
  emit(o, "fig2a_profile_vs_n", ta);

  // (b) vary k, fixed n.
  const std::size_t n = 1ULL << o.fixed_logn;
  ResultTable tb(header("k"));
  for (std::size_t k = 100; k <= 1000; k += 150) {
    const cvec x = make_signal(n, k, o.seed);
    StepTimers timers;
    run_serial_sfft(n, k, o.seed, x, &timers);
    tb.add_row(row_for(std::to_string(k), timers));
    std::cerr << "  [fig2b] k=" << k << " done\n";
  }
  emit(o, "fig2b_profile_vs_k", tb);
  return 0;
}
