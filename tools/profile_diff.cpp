// Trace-driven model debugging: compares two profiler artifacts
// (chrome-trace JSON with the embedded structured "profile" block, as
// written by --profile / CUSFFT_PROFILE / cusfft_profile_write) kernel by
// kernel — per-kernel-name launch-count and total-solo-time deltas,
// per-phase-name span deltas, and the makespan — and prints the top-N
// movers. Exits nonzero when any regression (makespan, or a kernel above
// the noise floor) exceeds the threshold, so CI can gate on it.
//
//   profile_diff <base.json> <new.json> [--threshold 0.10] [--top 10]
//
// Exit codes: 0 within threshold, 1 regression above threshold,
// 2 usage/parse failure. Improvements (negative deltas) never fail.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "profile_check_lib.hpp"

namespace {

bool read_file(const char* path, std::string* out) {
  std::ifstream f(path);
  if (!f) return false;
  std::stringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

void print_rows(const char* kind,
                const std::vector<cusfft::tools::ProfileDiffRow>& rows,
                std::size_t top, bool launches) {
  std::size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ >= top) break;
    std::printf("  %-8s %-24s %10.4f -> %10.4f ms  %+9.4f ms ", kind,
                row.name.c_str(), row.base_ms, row.new_ms, row.delta_ms);
    if (row.frac >= 1e9)
      std::printf("(new)");
    else
      std::printf("(%+7.2f%%)", row.frac * 100.0);
    if (launches && row.base_launches != row.new_launches)
      std::printf("  launches %g -> %g", row.base_launches,
                  row.new_launches);
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.10;
  std::size_t top = 10;
  const char* paths[2] = {nullptr, nullptr};
  int npaths = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (arg == "--top" && i + 1 < argc) {
      top = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (npaths < 2) {
      paths[npaths++] = argv[i];
    } else {
      npaths = 3;  // too many positionals
      break;
    }
  }
  if (npaths != 2) {
    std::cerr << "usage: profile_diff <base.json> <new.json>"
                 " [--threshold frac] [--top N]\n";
    return 2;
  }

  std::string base_text, new_text;
  if (!read_file(paths[0], &base_text)) {
    std::cerr << "profile_diff: cannot open " << paths[0] << "\n";
    return 2;
  }
  if (!read_file(paths[1], &new_text)) {
    std::cerr << "profile_diff: cannot open " << paths[1] << "\n";
    return 2;
  }

  const cusfft::tools::ProfileSummary base =
      cusfft::tools::summarize_profile_json(base_text);
  if (!base.ok) {
    std::cerr << "profile_diff: " << paths[0] << ": " << base.error << "\n";
    return 2;
  }
  const cusfft::tools::ProfileSummary next =
      cusfft::tools::summarize_profile_json(new_text);
  if (!next.ok) {
    std::cerr << "profile_diff: " << paths[1] << ": " << next.error << "\n";
    return 2;
  }

  const cusfft::tools::ProfileDiff d =
      cusfft::tools::diff_profiles(base, next);
  std::printf("profile_diff: %s -> %s\n", paths[0], paths[1]);
  std::printf("  makespan %.4f -> %.4f ms  %+9.4f ms (%+7.2f%%)\n",
              d.base_model_ms, d.new_model_ms,
              d.new_model_ms - d.base_model_ms, d.makespan_frac * 100.0);
  std::printf("  top kernel deltas (noise floor %.4f ms):\n",
              d.noise_floor_ms);
  print_rows("kernel", d.kernels, top, /*launches=*/true);
  std::printf("  phase deltas:\n");
  print_rows("phase", d.phases, top, /*launches=*/false);

  if (d.worst_regression_frac > threshold) {
    std::printf(
        "profile_diff: FAIL: worst regression %+0.2f%% exceeds threshold "
        "%0.2f%%\n",
        d.worst_regression_frac * 100.0, threshold * 100.0);
    return 1;
  }
  std::printf("profile_diff: OK: worst regression %+0.2f%% within %0.2f%%\n",
              d.worst_regression_frac * 100.0, threshold * 100.0);
  return 0;
}
