#include "profile_check_lib.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "core/json_lite.hpp"

namespace cusfft::tools {
namespace {

struct Event {
  double ts = 0, dur = 0;
  double tid = 0;
  std::string name, cat;
};

ProfileCheckResult fail(ProfileCheckResult r, std::string msg) {
  r.ok = false;
  r.error = std::move(msg);
  return r;
}

}  // namespace

ProfileCheckResult check_profile_json(const std::string& text) {
  ProfileCheckResult r;

  json::Value doc;
  std::string err;
  if (!json::parse(text, doc, &err)) return fail(r, "invalid JSON: " + err);
  if (!doc.is_object()) return fail(r, "document is not an object");

  const json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array())
    return fail(r, "missing traceEvents array");

  std::vector<Event> durations;
  for (const json::Value& e : events->array) {
    if (!e.is_object()) return fail(r, "traceEvents entry is not an object");
    const std::string ph = e.string_or("ph", "");
    const json::Value* name = e.find("name");
    if (name == nullptr || !name->is_string())
      return fail(r, "event without a string name");
    if (ph == "M") {
      ++r.metadata_events;
      continue;
    }
    if (ph != "X") return fail(r, "unexpected event phase '" + ph + "'");
    Event ev;
    ev.name = name->string;
    ev.cat = e.string_or("cat", "");
    const json::Value* ts = e.find("ts");
    const json::Value* dur = e.find("dur");
    const json::Value* tid = e.find("tid");
    if (ts == nullptr || !ts->is_number() || dur == nullptr ||
        !dur->is_number() || tid == nullptr || !tid->is_number())
      return fail(r, "duration event missing numeric ts/dur/tid: " + ev.name);
    ev.ts = ts->number;
    ev.dur = dur->number;
    ev.tid = tid->number;
    if (ev.dur < 0) return fail(r, "negative duration on " + ev.name);
    durations.push_back(std::move(ev));
  }
  if (durations.empty()) return fail(r, "no duration events");

  // Per-stream FIFO: kernel events on one tid (one stream) must not
  // overlap. Phase spans cover many kernels and concurrent PCIe copies
  // share the wire (bandwidth split, not serialized), so only kernel
  // tracks carry the invariant.
  constexpr double kEpsUs = 1e-3;  // 1 ns; covers %.12g round-trip error
  std::map<double, std::vector<const Event*>> by_tid;
  for (const Event& e : durations)
    if (e.cat == "kernel") by_tid[e.tid].push_back(&e);
  for (auto& [tid, evs] : by_tid) {
    std::sort(evs.begin(), evs.end(), [](const Event* a, const Event* b) {
      return a->ts < b->ts;
    });
    for (std::size_t i = 1; i < evs.size(); ++i) {
      const double prev_end = evs[i - 1]->ts + evs[i - 1]->dur;
      if (evs[i]->ts < prev_end - kEpsUs)
        return fail(r, "track " + std::to_string(tid) + ": '" +
                           evs[i]->name + "' overlaps '" + evs[i - 1]->name +
                           "'");
    }
  }
  r.kernel_tracks = by_tid.size();

  // Device concurrency stays within the modeled Hyper-Q window.
  double max_kernels = 32;
  const json::Value* profile = doc.find("profile");
  if (profile != nullptr && profile->is_object())
    max_kernels = profile->number_or("max_concurrent_kernels", 32);
  r.max_kernels = static_cast<int>(max_kernels);
  // ts and dur are serialized separately at 12 significant digits, so at a
  // kernel-window handoff the reconstructed end (ts+dur) of a finishing
  // kernel can exceed its successor's start by ~1e-5 us. Snap edges to a
  // 1 ns grid so boundary edges coincide; the (time, delta) sort then
  // processes the end edge first (-1 < +1) — real kernels last >= 5 us, so
  // the grid cannot merge distinct events.
  const auto quantize = [](double t) { return std::round(t * 1e3) / 1e3; };
  std::vector<std::pair<double, int>> edges;
  for (const Event& e : durations) {
    if (e.cat == "copy") ++r.copy_events;
    if (e.cat != "kernel") continue;
    ++r.kernel_events;
    edges.emplace_back(quantize(e.ts), +1);
    edges.emplace_back(quantize(e.ts + e.dur), -1);
  }
  std::sort(edges.begin(), edges.end());
  int running = 0;
  for (const auto& [t, d] : edges) {
    running += d;
    r.peak_concurrency = std::max(r.peak_concurrency, running);
  }
  if (r.peak_concurrency > r.max_kernels)
    return fail(r, "concurrency " + std::to_string(r.peak_concurrency) +
                       " exceeds the modeled window of " +
                       std::to_string(r.max_kernels));

  r.ok = true;
  return r;
}

}  // namespace cusfft::tools
