#include "profile_check_lib.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/json_lite.hpp"

namespace cusfft::tools {
namespace {

struct Event {
  double ts = 0, dur = 0;
  double tid = 0;
  double pid = 0;  // device track group (0 for single-device traces)
  std::string name, cat;
};

ProfileCheckResult fail(ProfileCheckResult r, std::string msg) {
  r.ok = false;
  r.error = std::move(msg);
  return r;
}

}  // namespace

ProfileCheckResult check_profile_json(const std::string& text) {
  ProfileCheckResult r;

  json::Value doc;
  std::string err;
  if (!json::parse(text, doc, &err)) return fail(r, "invalid JSON: " + err);
  if (!doc.is_object()) return fail(r, "document is not an object");

  const json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array())
    return fail(r, "missing traceEvents array");

  std::vector<Event> durations;
  for (const json::Value& e : events->array) {
    if (!e.is_object()) return fail(r, "traceEvents entry is not an object");
    const std::string ph = e.string_or("ph", "");
    const json::Value* name = e.find("name");
    if (name == nullptr || !name->is_string())
      return fail(r, "event without a string name");
    if (ph == "M") {
      ++r.metadata_events;
      continue;
    }
    if (ph != "X") return fail(r, "unexpected event phase '" + ph + "'");
    Event ev;
    ev.name = name->string;
    ev.cat = e.string_or("cat", "");
    const json::Value* ts = e.find("ts");
    const json::Value* dur = e.find("dur");
    const json::Value* tid = e.find("tid");
    if (ts == nullptr || !ts->is_number() || dur == nullptr ||
        !dur->is_number() || tid == nullptr || !tid->is_number())
      return fail(r, "duration event missing numeric ts/dur/tid: " + ev.name);
    ev.ts = ts->number;
    ev.dur = dur->number;
    ev.tid = tid->number;
    ev.pid = e.number_or("pid", 0);
    if (ev.dur < 0) return fail(r, "negative duration on " + ev.name);
    durations.push_back(std::move(ev));
  }
  if (durations.empty()) return fail(r, "no duration events");

  // Per-stream FIFO: kernel events on one (pid, tid) — one device's one
  // stream — must not overlap. Fleet traces reuse tids across pids, so
  // the track key must include the device. Phase spans cover many kernels
  // and concurrent PCIe copies share the wire (bandwidth split, not
  // serialized), so only kernel tracks carry the invariant.
  constexpr double kEpsUs = 1e-3;  // 1 ns; covers %.12g round-trip error
  std::map<std::pair<double, double>, std::vector<const Event*>> by_track;
  for (const Event& e : durations)
    if (e.cat == "kernel") by_track[{e.pid, e.tid}].push_back(&e);
  for (auto& [track, evs] : by_track) {
    std::sort(evs.begin(), evs.end(), [](const Event* a, const Event* b) {
      return a->ts < b->ts;
    });
    for (std::size_t i = 1; i < evs.size(); ++i) {
      const double prev_end = evs[i - 1]->ts + evs[i - 1]->dur;
      if (evs[i]->ts < prev_end - kEpsUs)
        return fail(r, "track pid " + std::to_string(track.first) + " tid " +
                           std::to_string(track.second) + ": '" +
                           evs[i]->name + "' overlaps '" + evs[i - 1]->name +
                           "'");
    }
  }
  r.kernel_tracks = by_track.size();

  // Device concurrency stays within the modeled Hyper-Q window — per
  // device: a fleet trace's kernels may exceed one device's window in
  // aggregate, but never within a pid. Per-device windows come from the
  // embedded profile's "devices" array when present.
  double max_kernels = 32;
  const json::Value* profile = doc.find("profile");
  const json::Value* devices = nullptr;
  if (profile != nullptr && profile->is_object()) {
    max_kernels = profile->number_or("max_concurrent_kernels", 32);
    devices = profile->find("devices");
    if (devices != nullptr && !devices->is_array()) devices = nullptr;
  }
  r.max_kernels = static_cast<int>(max_kernels);
  auto window_of = [&](double pid) {
    if (devices != nullptr) {
      const std::size_t i = static_cast<std::size_t>(pid);
      if (pid >= 0 && i < devices->array.size() &&
          devices->array[i].is_object())
        return static_cast<int>(devices->array[i].number_or(
            "max_concurrent_kernels", max_kernels));
    }
    return static_cast<int>(max_kernels);
  };

  std::set<double> pids;
  for (const Event& e : durations) pids.insert(e.pid);
  r.device_groups =
      devices != nullptr ? devices->array.size() : pids.size();

  // ts and dur are serialized separately at 12 significant digits, so at a
  // kernel-window handoff the reconstructed end (ts+dur) of a finishing
  // kernel can exceed its successor's start by ~1e-5 us. Snap edges to a
  // 1 ns grid so boundary edges coincide; the (time, delta) sort then
  // processes the end edge first (-1 < +1) — real kernels last >= 5 us, so
  // the grid cannot merge distinct events.
  const auto quantize = [](double t) { return std::round(t * 1e3) / 1e3; };
  std::map<double, std::vector<std::pair<double, int>>> edges_by_pid;
  for (const Event& e : durations) {
    if (e.cat == "copy") ++r.copy_events;
    if (e.cat != "kernel") continue;
    ++r.kernel_events;
    auto& edges = edges_by_pid[e.pid];
    edges.emplace_back(quantize(e.ts), +1);
    edges.emplace_back(quantize(e.ts + e.dur), -1);
  }
  for (auto& [pid, edges] : edges_by_pid) {
    std::sort(edges.begin(), edges.end());
    int running = 0, peak = 0;
    for (const auto& [t, d] : edges) {
      running += d;
      peak = std::max(peak, running);
    }
    r.peak_concurrency = std::max(r.peak_concurrency, peak);
    const int window = window_of(pid);
    if (peak > window)
      return fail(r, "device " + std::to_string(static_cast<long>(pid)) +
                         ": concurrency " + std::to_string(peak) +
                         " exceeds the modeled window of " +
                         std::to_string(window));
  }

  r.ok = true;
  return r;
}

ProfileSummary summarize_profile_json(const std::string& text) {
  ProfileSummary s;
  json::Value doc;
  std::string err;
  if (!json::parse(text, doc, &err)) {
    s.error = "invalid JSON: " + err;
    return s;
  }
  const json::Value* profile =
      doc.is_object() ? doc.find("profile") : nullptr;
  // Accept a bare structured profile too (to_json() output).
  if (profile == nullptr && doc.is_object() && doc.find("kernels") != nullptr)
    profile = &doc;
  if (profile == nullptr || !profile->is_object()) {
    s.error = "no embedded \"profile\" block";
    return s;
  }
  s.model_ms = profile->number_or("model_ms", 0);
  if (const json::Value* kernels = profile->find("kernels");
      kernels != nullptr && kernels->is_array()) {
    for (const json::Value& k : kernels->array) {
      if (!k.is_object()) continue;
      const std::string name = k.string_or("name", "");
      if (name.empty()) continue;
      KernelAgg& agg = s.kernels[name];
      agg.launches += k.number_or("launches", 0);
      agg.solo_ms += k.number_or("solo_ms", 0);
    }
  }
  if (const json::Value* phases = profile->find("phases");
      phases != nullptr && phases->is_array()) {
    for (const json::Value& ph : phases->array) {
      if (!ph.is_object()) continue;
      const std::string name = ph.string_or("name", "");
      if (name.empty()) continue;
      // Phase names repeat per signal under execute_many; summing by name
      // gives the per-phase total the diff compares.
      s.phase_ms[name] += ph.number_or("span_ms", 0);
    }
  }
  s.ok = true;
  return s;
}

namespace {

constexpr double kHugeFrac = 1e9;  // "appeared from nothing" sentinel

double rel_frac(double base_ms, double delta_ms) {
  if (base_ms > 0) return delta_ms / base_ms;
  return delta_ms > 0 ? kHugeFrac : 0.0;
}

void sort_rows(std::vector<ProfileDiffRow>& rows) {
  std::sort(rows.begin(), rows.end(),
            [](const ProfileDiffRow& a, const ProfileDiffRow& b) {
              const double da = std::abs(a.delta_ms),
                           db = std::abs(b.delta_ms);
              if (da != db) return da > db;
              return a.name < b.name;
            });
}

}  // namespace

ProfileDiff diff_profiles(const ProfileSummary& base,
                          const ProfileSummary& next,
                          double noise_floor_ms) {
  ProfileDiff d;
  d.base_model_ms = base.model_ms;
  d.new_model_ms = next.model_ms;
  d.makespan_frac = rel_frac(base.model_ms, next.model_ms - base.model_ms);
  d.noise_floor_ms =
      noise_floor_ms >= 0 ? noise_floor_ms : 0.005 * base.model_ms;

  std::set<std::string> kernel_names;
  for (const auto& [name, agg] : base.kernels) kernel_names.insert(name);
  for (const auto& [name, agg] : next.kernels) kernel_names.insert(name);
  for (const std::string& name : kernel_names) {
    ProfileDiffRow row;
    row.name = name;
    if (const auto it = base.kernels.find(name); it != base.kernels.end()) {
      row.base_ms = it->second.solo_ms;
      row.base_launches = it->second.launches;
    }
    if (const auto it = next.kernels.find(name); it != next.kernels.end()) {
      row.new_ms = it->second.solo_ms;
      row.new_launches = it->second.launches;
    }
    row.delta_ms = row.new_ms - row.base_ms;
    row.frac = rel_frac(row.base_ms, row.delta_ms);
    d.kernels.push_back(std::move(row));
  }
  sort_rows(d.kernels);

  std::set<std::string> phase_names;
  for (const auto& [name, ms] : base.phase_ms) phase_names.insert(name);
  for (const auto& [name, ms] : next.phase_ms) phase_names.insert(name);
  for (const std::string& name : phase_names) {
    ProfileDiffRow row;
    row.name = name;
    if (const auto it = base.phase_ms.find(name); it != base.phase_ms.end())
      row.base_ms = it->second;
    if (const auto it = next.phase_ms.find(name); it != next.phase_ms.end())
      row.new_ms = it->second;
    row.delta_ms = row.new_ms - row.base_ms;
    row.frac = rel_frac(row.base_ms, row.delta_ms);
    d.phases.push_back(std::move(row));
  }
  sort_rows(d.phases);

  // The gate: the makespan always counts; kernels count when either side
  // clears the noise floor (so a new expensive kernel is a regression but
  // sub-floor jitter is not). Phases are reported, not gated — they
  // re-slice the same time the kernels already cover.
  d.worst_regression_frac = std::max(0.0, d.makespan_frac);
  for (const ProfileDiffRow& row : d.kernels) {
    if (row.base_ms < d.noise_floor_ms && row.new_ms < d.noise_floor_ms)
      continue;
    d.worst_regression_frac = std::max(d.worst_regression_frac, row.frac);
  }
  return d;
}

}  // namespace cusfft::tools
