// CLI wrapper over metrics_check_lib: validates the metrics artifacts
// bench_throughput --metrics emits (CI's metrics-smoke gate).
//
//   metrics_check <metrics.json> [--prev <snap.json>] [--prom <file>]
//                 [--devices N] [--serve] [--cluster N] [--algo]
//
// Always runs the schema/consistency check on <metrics.json>. --prev adds
// the counter-monotonicity check (prev must be an earlier snapshot from
// the same process), --prom cross-checks the Prometheus exposition,
// --devices N requires per-device signal-latency histograms for devices
// 0..N-1, --serve validates the serving-tier instruments (request
// accounting conservation, per-class latency histograms, batch-size
// coverage — the snapshot must come from a drained server), and
// --cluster N validates the cluster-tier instruments for an N-node run
// (cusfft_cluster_* coverage plus cross-node signal conservation), and
// --algo validates the algorithm-picker instruments from a crossover run
// (both backends calibrated, per-algo splits conserving their totals,
// picks recorded, non-empty calibration table). Exit 0 when every
// requested check passes, 1 on a failed check, 2 on usage/IO errors.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "metrics_check_lib.hpp"

namespace {

[[noreturn]] void usage(const char* msg) {
  std::cerr << "metrics_check: " << msg << "\n"
            << "usage: metrics_check <metrics.json> [--prev <snap.json>]\n"
               "                     [--prom <file>] [--devices N] "
               "[--serve] [--cluster N] [--algo]\n";
  std::exit(2);
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "metrics_check: cannot read " << path << "\n";
    std::exit(2);
  }
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

bool report(const char* what, const cusfft::tools::MetricsCheckResult& r) {
  if (r.ok) {
    std::cout << "[metrics_check] " << what << ": OK\n";
    return true;
  }
  for (const auto& e : r.errors)
    std::cout << "[metrics_check] " << what << ": FAIL: " << e << "\n";
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, prev_path, prom_path;
  std::size_t devices = 0;
  std::size_t cluster = 0;
  bool serve = false;
  bool algo = false;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage((key + ": missing value").c_str());
      return argv[++i];
    };
    if (key == "--prev") {
      prev_path = value();
    } else if (key == "--prom") {
      prom_path = value();
    } else if (key == "--devices") {
      char* end = nullptr;
      const char* v = value();
      devices = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0')
        usage("--devices: expected an integer");
    } else if (key == "--cluster") {
      char* end = nullptr;
      const char* v = value();
      cluster = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || cluster == 0)
        usage("--cluster: expected a positive integer");
    } else if (key == "--serve") {
      serve = true;
    } else if (key == "--algo") {
      algo = true;
    } else if (key.rfind("--", 0) == 0) {
      usage(("unknown flag '" + key + "'").c_str());
    } else if (json_path.empty()) {
      json_path = key;
    } else {
      usage("more than one metrics.json argument");
    }
  }
  if (json_path.empty()) usage("missing <metrics.json> argument");

  const std::string json_text = slurp(json_path);
  bool ok = true;
  const auto base = cusfft::tools::check_metrics_json(json_text);
  ok = report("schema+consistency", base) && ok;
  if (base.ok)
    std::cout << "[metrics_check] " << base.counters << " counters, "
              << base.gauges << " gauges, " << base.histograms
              << " histograms\n";

  if (!prev_path.empty())
    ok = report("monotonic vs --prev", cusfft::tools::check_metrics_monotonic(
                                           slurp(prev_path), json_text)) &&
         ok;
  if (!prom_path.empty())
    ok = report("prometheus cross-check",
                cusfft::tools::check_metrics_prometheus(
                    json_text, slurp(prom_path))) &&
         ok;
  if (devices > 0)
    ok = report("per-device histograms",
                cusfft::tools::check_device_histograms(json_text, devices)) &&
         ok;
  if (serve)
    ok = report("serve-tier coverage",
                cusfft::tools::check_serve_metrics(json_text)) &&
         ok;
  if (cluster > 0)
    ok = report("cluster-tier coverage",
                cusfft::tools::check_cluster_metrics(json_text, cluster)) &&
         ok;
  if (algo)
    ok = report("algo-picker coverage",
                cusfft::tools::check_algo_metrics(json_text)) &&
         ok;

  return ok ? 0 : 1;
}
