#include "bench_gate_lib.hpp"

#include <algorithm>
#include <map>

#include "core/json_lite.hpp"

namespace cusfft::tools {

namespace {

double unit_to_ns(const std::string& unit) {
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;  // google-benchmark default is ns
}

}  // namespace

BenchSummary summarize_benchmark_json(const std::string& text) {
  BenchSummary s;
  json::Value doc;
  std::string err;
  if (!json::parse(text, doc, &err)) {
    s.error = "JSON parse error: " + err;
    return s;
  }
  const json::Value* benchmarks = doc.find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    s.error = "missing \"benchmarks\" array (not a --benchmark_out file?)";
    return s;
  }

  bool has_aggregates = false;
  for (const json::Value& b : benchmarks->array)
    if (b.string_or("run_type", "iteration") == "aggregate")
      has_aggregates = true;

  for (const json::Value& b : benchmarks->array) {
    const std::string run_type = b.string_or("run_type", "iteration");
    std::string name = b.string_or("name", "");
    if (name.empty()) continue;
    if (has_aggregates) {
      // Repetition runs: keep the median aggregate only, under the plain
      // benchmark name.
      if (run_type != "aggregate" ||
          b.string_or("aggregate_name", "") != "median")
        continue;
      const std::string suffix = "_median";
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0)
        name.resize(name.size() - suffix.size());
    } else if (run_type != "iteration") {
      continue;
    }
    const double scale = unit_to_ns(b.string_or("time_unit", "ns"));
    BenchEntry e;
    e.name = name;
    e.real_time_ns = b.number_or("real_time", 0) * scale;
    e.cpu_time_ns = b.number_or("cpu_time", 0) * scale;
    e.iterations = static_cast<u64>(b.number_or("iterations", 0));
    s.entries.push_back(std::move(e));
  }
  if (s.entries.empty()) {
    s.error = "no benchmark entries found";
    return s;
  }
  s.ok = true;
  return s;
}

BenchGateResult gate_benchmarks(const BenchSummary& base,
                                const BenchSummary& next,
                                double noise_floor_ns) {
  BenchGateResult r;
  r.noise_floor_ns = noise_floor_ns;

  std::map<std::string, const BenchEntry*> base_by_name;
  for (const BenchEntry& e : base.entries) base_by_name[e.name] = &e;
  std::map<std::string, const BenchEntry*> new_by_name;
  for (const BenchEntry& e : next.entries) new_by_name[e.name] = &e;

  for (const auto& [name, be] : base_by_name) {
    const auto it = new_by_name.find(name);
    if (it == new_by_name.end()) {
      r.only_base.push_back(name);
      continue;
    }
    BenchGateRow row;
    row.name = name;
    row.base_ns = be->cpu_time_ns;
    row.new_ns = it->second->cpu_time_ns;
    row.frac = row.base_ns > 0
                   ? (row.new_ns - row.base_ns) / row.base_ns
                   : 0.0;
    row.gated = row.base_ns >= noise_floor_ns;
    if (row.gated)
      r.worst_regression_frac = std::max(r.worst_regression_frac, row.frac);
    r.rows.push_back(std::move(row));
  }
  for (const auto& [name, e] : new_by_name)
    if (base_by_name.find(name) == base_by_name.end())
      r.only_new.push_back(name);

  std::sort(r.rows.begin(), r.rows.end(),
            [](const BenchGateRow& a, const BenchGateRow& b) {
              return a.frac > b.frac;
            });
  return r;
}

}  // namespace cusfft::tools
