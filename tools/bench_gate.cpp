// bench_micro regression gate CLI:
//
//   bench_gate <base.json> <new.json> [--threshold 2.5]
//              [--noise-floor-ns 500]
//
// Both inputs are google-benchmark JSON exports
// (bench_micro --benchmark_out=x.json --benchmark_out_format=json).
// Compares cpu_time per benchmark name; exits 1 when any benchmark above
// the noise floor regresses by more than `threshold` (a fraction: 2.5 ==
// +250%, loose enough to absorb machine-to-machine variation against the
// checked-in baseline while still catching order-of-magnitude slips).
// Improvements and sub-noise-floor entries never fail.
//
// Exit codes: 0 within threshold, 1 regression above threshold,
// 2 usage/parse failure — same contract as profile_diff.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_gate_lib.hpp"

namespace {

bool read_file(const char* path, std::string* out) {
  std::ifstream f(path);
  if (!f) return false;
  std::stringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 2.5;
  double noise_floor_ns = 500.0;
  const char* paths[2] = {nullptr, nullptr};
  int npaths = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (arg == "--noise-floor-ns" && i + 1 < argc) {
      noise_floor_ns = std::strtod(argv[++i], nullptr);
    } else if (npaths < 2) {
      paths[npaths++] = argv[i];
    } else {
      npaths = 3;  // too many positionals
      break;
    }
  }
  if (npaths != 2) {
    std::cerr << "usage: bench_gate <base.json> <new.json>"
                 " [--threshold frac] [--noise-floor-ns ns]\n";
    return 2;
  }

  std::string base_text, new_text;
  if (!read_file(paths[0], &base_text)) {
    std::cerr << "bench_gate: cannot open " << paths[0] << "\n";
    return 2;
  }
  if (!read_file(paths[1], &new_text)) {
    std::cerr << "bench_gate: cannot open " << paths[1] << "\n";
    return 2;
  }

  const cusfft::tools::BenchSummary base =
      cusfft::tools::summarize_benchmark_json(base_text);
  if (!base.ok) {
    std::cerr << "bench_gate: " << paths[0] << ": " << base.error << "\n";
    return 2;
  }
  const cusfft::tools::BenchSummary next =
      cusfft::tools::summarize_benchmark_json(new_text);
  if (!next.ok) {
    std::cerr << "bench_gate: " << paths[1] << ": " << next.error << "\n";
    return 2;
  }

  const cusfft::tools::BenchGateResult r =
      cusfft::tools::gate_benchmarks(base, next, noise_floor_ns);
  std::printf("bench_gate: %s -> %s (noise floor %.0f ns)\n", paths[0],
              paths[1], r.noise_floor_ns);
  for (const auto& row : r.rows)
    std::printf("  %-32s %12.1f -> %12.1f ns  (%+7.2f%%)%s\n",
                row.name.c_str(), row.base_ns, row.new_ns, row.frac * 100.0,
                row.gated ? "" : "  [below noise floor]");
  for (const auto& name : r.only_base)
    std::printf("  %-32s missing in new run\n", name.c_str());
  for (const auto& name : r.only_new)
    std::printf("  %-32s new benchmark (not gated)\n", name.c_str());

  if (!r.only_base.empty()) {
    std::printf("bench_gate: FAIL: %zu benchmark(s) missing in new run\n",
                r.only_base.size());
    return 1;
  }
  if (r.worst_regression_frac > threshold) {
    std::printf(
        "bench_gate: FAIL: worst regression %+0.1f%% exceeds threshold "
        "%0.1f%%\n",
        r.worst_regression_frac * 100.0, threshold * 100.0);
    return 1;
  }
  std::printf("bench_gate: OK: worst regression %+0.1f%% within %0.1f%%\n",
              r.worst_regression_frac * 100.0, threshold * 100.0);
  return 0;
}
