// bench_micro regression gate: parses two google-benchmark JSON exports
// (--benchmark_out=<path> --benchmark_out_format=json), matches benchmarks
// by name, and flags regressions above a threshold. Entries faster than a
// noise floor are reported but never gate (sub-microsecond timings swing
// with machine load). Improvements never fail. The comparison library is
// separate from the CLI so tests can drive it on synthetic documents —
// same layout as profile_check_lib / profile_diff.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace cusfft::tools {

/// One benchmark measurement, normalized to nanoseconds.
struct BenchEntry {
  std::string name;
  double real_time_ns = 0;
  double cpu_time_ns = 0;
  u64 iterations = 0;
};

/// Parsed benchmark_out document. With --benchmark_repetitions, only the
/// *_median aggregates are kept (suffix stripped) so repeated and single
/// runs compare under the same names.
struct BenchSummary {
  bool ok = false;
  std::string error;
  std::vector<BenchEntry> entries;
};

BenchSummary summarize_benchmark_json(const std::string& text);

/// One matched benchmark in a gate comparison.
struct BenchGateRow {
  std::string name;
  double base_ns = 0;
  double new_ns = 0;
  double frac = 0;    // (new - base) / base; negative == improvement
  bool gated = true;  // false when base_ns is below the noise floor
};

struct BenchGateResult {
  std::vector<BenchGateRow> rows;  // sorted worst regression first
  std::vector<std::string> only_base;  // present in base, missing in new
  std::vector<std::string> only_new;   // new benchmarks (never gate)
  double worst_regression_frac = 0;    // max over gated rows, floored at 0
  double noise_floor_ns = 0;
};

/// Compares cpu_time per matched name. `noise_floor_ns` exempts benchmarks
/// whose base time is too small to gate reliably.
BenchGateResult gate_benchmarks(const BenchSummary& base,
                                const BenchSummary& next,
                                double noise_floor_ns);

}  // namespace cusfft::tools
