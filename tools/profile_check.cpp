// Validates a profiler artifact (chrome-trace JSON emitted by --profile /
// CUSFFT_PROFILE / cusfft_profile_write): parses the document, checks the
// trace-event invariants (required fields, per-track FIFO non-overlap,
// device concurrency within the modeled 32-kernel window), and prints a
// one-line summary. Exit 0 on a valid profile, 1 otherwise — CI runs this
// on the smoke artifact. The checks live in profile_check_lib so tests can
// run the same sweep in-process on a freshly captured trace.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "profile_check_lib.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: profile_check <trace.json>\n";
    return 2;
  }
  std::ifstream f(argv[1]);
  if (!f) {
    std::cerr << "profile_check: FAIL: cannot open " << argv[1] << "\n";
    return 1;
  }
  std::stringstream ss;
  ss << f.rdbuf();

  const cusfft::tools::ProfileCheckResult r =
      cusfft::tools::check_profile_json(ss.str());
  if (!r.ok) {
    std::cerr << "profile_check: FAIL: " << r.error << "\n";
    return 1;
  }
  std::printf(
      "profile_check: OK: %zu kernel events, %zu copies, %zu tracks, "
      "%zu metadata, peak concurrency %d/%d\n",
      r.kernel_events, r.copy_events, r.kernel_tracks, r.metadata_events,
      r.peak_concurrency, r.max_kernels);
  return 0;
}
