// Validates a profiler artifact (chrome-trace JSON emitted by --profile /
// CUSFFT_PROFILE / cusfft_profile_write): parses the document, checks the
// trace-event invariants (required fields, per-track FIFO non-overlap,
// device concurrency within the modeled 32-kernel window), and prints a
// one-line summary. Exit 0 on a valid profile, 1 otherwise — CI runs this
// on the smoke artifact.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/json_lite.hpp"

namespace {

struct Event {
  double ts = 0, dur = 0;
  double tid = 0;
  std::string name, cat;
};

int fail(const std::string& msg) {
  std::cerr << "profile_check: FAIL: " << msg << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: profile_check <trace.json>\n";
    return 2;
  }
  std::ifstream f(argv[1]);
  if (!f) return fail(std::string("cannot open ") + argv[1]);
  std::stringstream ss;
  ss << f.rdbuf();

  cusfft::json::Value doc;
  std::string err;
  if (!cusfft::json::parse(ss.str(), doc, &err))
    return fail("invalid JSON: " + err);
  if (!doc.is_object()) return fail("document is not an object");

  const cusfft::json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array())
    return fail("missing traceEvents array");

  std::vector<Event> durations;
  std::size_t meta = 0;
  for (const cusfft::json::Value& e : events->array) {
    if (!e.is_object()) return fail("traceEvents entry is not an object");
    const std::string ph = e.string_or("ph", "");
    const cusfft::json::Value* name = e.find("name");
    if (name == nullptr || !name->is_string())
      return fail("event without a string name");
    if (ph == "M") {
      ++meta;
      continue;
    }
    if (ph != "X") return fail("unexpected event phase '" + ph + "'");
    Event ev;
    ev.name = name->string;
    ev.cat = e.string_or("cat", "");
    const cusfft::json::Value* ts = e.find("ts");
    const cusfft::json::Value* dur = e.find("dur");
    const cusfft::json::Value* tid = e.find("tid");
    if (ts == nullptr || !ts->is_number() || dur == nullptr ||
        !dur->is_number() || tid == nullptr || !tid->is_number())
      return fail("duration event missing numeric ts/dur/tid: " + ev.name);
    ev.ts = ts->number;
    ev.dur = dur->number;
    ev.tid = tid->number;
    if (ev.dur < 0) return fail("negative duration on " + ev.name);
    durations.push_back(std::move(ev));
  }
  if (durations.empty()) return fail("no duration events");

  // Per-stream FIFO: kernel events on one tid (one stream) must not
  // overlap. Phase spans cover many kernels and concurrent PCIe copies
  // share the wire (bandwidth split, not serialized), so only kernel
  // tracks carry the invariant.
  constexpr double kEpsUs = 1e-3;  // 1 ns; covers %.12g round-trip error
  std::map<double, std::vector<const Event*>> by_tid;
  for (const Event& e : durations)
    if (e.cat == "kernel") by_tid[e.tid].push_back(&e);
  for (auto& [tid, evs] : by_tid) {
    std::sort(evs.begin(), evs.end(), [](const Event* a, const Event* b) {
      return a->ts < b->ts;
    });
    for (std::size_t i = 1; i < evs.size(); ++i) {
      const double prev_end = evs[i - 1]->ts + evs[i - 1]->dur;
      if (evs[i]->ts < prev_end - kEpsUs)
        return fail("track " + std::to_string(tid) + ": '" +
                    evs[i]->name + "' overlaps '" + evs[i - 1]->name + "'");
    }
  }

  // Device concurrency stays within the modeled Hyper-Q window.
  double max_kernels = 32;
  std::size_t kernels = 0, copies = 0;
  const cusfft::json::Value* profile = doc.find("profile");
  if (profile != nullptr && profile->is_object())
    max_kernels = profile->number_or("max_concurrent_kernels", 32);
  // ts and dur are serialized separately at 12 significant digits, so at a
  // kernel-window handoff the reconstructed end (ts+dur) of a finishing
  // kernel can exceed its successor's start by ~1e-5 us. Snap edges to a
  // 1 ns grid so boundary edges coincide; the (time, delta) sort then
  // processes the end edge first (-1 < +1) — real kernels last >= 5 us, so
  // the grid cannot merge distinct events.
  const auto quantize = [](double t) { return std::round(t * 1e3) / 1e3; };
  std::vector<std::pair<double, int>> edges;
  for (const Event& e : durations) {
    if (e.cat == "copy") ++copies;
    if (e.cat != "kernel") continue;
    ++kernels;
    edges.emplace_back(quantize(e.ts), +1);
    edges.emplace_back(quantize(e.ts + e.dur), -1);
  }
  std::sort(edges.begin(), edges.end());
  int running = 0, peak = 0;
  for (const auto& [t, d] : edges) {
    running += d;
    peak = std::max(peak, running);
  }
  if (peak > static_cast<int>(max_kernels))
    return fail("concurrency " + std::to_string(peak) +
                " exceeds the modeled window of " +
                std::to_string(static_cast<int>(max_kernels)));

  std::printf(
      "profile_check: OK: %zu kernel events, %zu copies, %zu tracks, "
      "%zu metadata, peak concurrency %d/%d\n",
      kernels, copies, by_tid.size(), meta, peak,
      static_cast<int>(max_kernels));
  return 0;
}
