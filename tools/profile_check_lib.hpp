// Profiler-artifact validation as a library: the invariants the
// profile_check CLI enforces on a chrome-trace JSON document (emitted by
// --profile / CUSFFT_PROFILE / cusfft_profile_write), callable in-process
// so tests can sweep a freshly captured trace through the exact checks CI
// runs on the smoke artifact. Also hosts the artifact-diff support behind
// tools/profile_diff (kernel-by-kernel deltas between two profiles).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace cusfft::tools {

/// Outcome of one document sweep. `ok` is the CLI's exit-0 condition;
/// `error` holds the first violated invariant (empty when ok). The
/// counters feed the CLI summary line and test assertions.
struct ProfileCheckResult {
  bool ok = false;
  std::string error;
  std::size_t kernel_events = 0;
  std::size_t copy_events = 0;
  std::size_t kernel_tracks = 0;  // distinct (pid, tid) kernel tracks
  std::size_t metadata_events = 0;
  std::size_t device_groups = 1;  // track groups (fleet traces: one/device)
  int peak_concurrency = 0;  // worst per-device in-flight kernel count
  int max_kernels = 32;  // modeled Hyper-Q window from the profile block
};

/// Parses `doc` (a full chrome-trace JSON document) and checks:
///   - traceEvents entries are M (metadata) or X (duration) with a string
///     name; X events carry numeric ts/dur/tid and dur >= 0;
///   - per-kernel-track FIFO: events on one (pid, tid) never overlap
///     (1 ns eps) — fleet traces put each device on its own pid;
///   - concurrency stays within the modeled kernel window PER DEVICE
///     (edge sweep on a 1 ns grid); a fleet trace's per-device windows
///     come from profile.devices[pid].max_concurrent_kernels, falling
///     back to the top-level profile.max_concurrent_kernels.
ProfileCheckResult check_profile_json(const std::string& doc);

/// Per-kernel-name aggregate read from the structured profile embedded
/// in a trace document (the top-level "profile" key).
struct KernelAgg {
  double launches = 0;
  double solo_ms = 0;
};

/// The comparable essence of one profile artifact, for profile_diff.
struct ProfileSummary {
  bool ok = false;
  std::string error;  // parse failure when !ok
  double model_ms = 0;
  std::map<std::string, KernelAgg> kernels;   // by kernel name
  std::map<std::string, double> phase_ms;     // span summed by phase name
};

/// Extracts the summary from a chrome-trace document with an embedded
/// "profile" block (every --profile artifact has one).
ProfileSummary summarize_profile_json(const std::string& doc);

/// One compared entity (kernel name or phase name).
struct ProfileDiffRow {
  std::string name;
  double base_ms = 0, new_ms = 0;
  double base_launches = 0, new_launches = 0;  // kernels only
  double delta_ms = 0;  // new_ms - base_ms
  double frac = 0;      // delta_ms / base_ms (huge when base is 0)
};

/// Kernel-by-kernel comparison of two profiles. Rows are sorted by
/// |delta_ms| descending (ties by name) so "top-N regressions" is a
/// prefix. `worst_regression_frac` is the largest relative slowdown over
/// the makespan and every kernel above the noise floor — the CLI's
/// threshold gate; improvements never contribute.
struct ProfileDiff {
  double base_model_ms = 0, new_model_ms = 0;
  double makespan_frac = 0;  // (new - base) / base
  double noise_floor_ms = 0;
  std::vector<ProfileDiffRow> kernels;
  std::vector<ProfileDiffRow> phases;
  double worst_regression_frac = 0;
};

/// noise_floor_ms < 0 picks the default: 0.5% of the base makespan —
/// sub-floor kernels are listed but cannot trip the regression gate.
ProfileDiff diff_profiles(const ProfileSummary& base,
                          const ProfileSummary& next,
                          double noise_floor_ms = -1.0);

}  // namespace cusfft::tools
