// Profiler-artifact validation as a library: the invariants the
// profile_check CLI enforces on a chrome-trace JSON document (emitted by
// --profile / CUSFFT_PROFILE / cusfft_profile_write), callable in-process
// so tests can sweep a freshly captured trace through the exact checks CI
// runs on the smoke artifact.
#pragma once

#include <cstddef>
#include <string>

namespace cusfft::tools {

/// Outcome of one document sweep. `ok` is the CLI's exit-0 condition;
/// `error` holds the first violated invariant (empty when ok). The
/// counters feed the CLI summary line and test assertions.
struct ProfileCheckResult {
  bool ok = false;
  std::string error;
  std::size_t kernel_events = 0;
  std::size_t copy_events = 0;
  std::size_t kernel_tracks = 0;
  std::size_t metadata_events = 0;
  int peak_concurrency = 0;
  int max_kernels = 32;  // modeled Hyper-Q window from the profile block
};

/// Parses `doc` (a full chrome-trace JSON document) and checks:
///   - traceEvents entries are M (metadata) or X (duration) with a string
///     name; X events carry numeric ts/dur/tid and dur >= 0;
///   - per-kernel-track FIFO: events on one tid never overlap (1 ns eps);
///   - device concurrency stays within profile.max_concurrent_kernels
///     (edge sweep on a 1 ns grid).
ProfileCheckResult check_profile_json(const std::string& doc);

}  // namespace cusfft::tools
