#include "metrics_check_lib.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>

#include "core/json_lite.hpp"

namespace cusfft::tools {

namespace {

void fail(MetricsCheckResult& r, std::string msg) {
  r.errors.push_back(std::move(msg));
}

bool parse_doc(const std::string& text, json::Value& doc,
               MetricsCheckResult& r) {
  std::string err;
  if (!json::parse(text, doc, &err)) {
    fail(r, "not valid JSON: " + err);
    return false;
  }
  if (doc.string_or("schema", "") != "cusfft-metrics-v1") {
    fail(r, "missing or wrong \"schema\" (expected cusfft-metrics-v1)");
    return false;
  }
  return true;
}

/// The +Inf overflow bucket serializes its bound as the string "+Inf";
/// every other bound is a JSON number.
double bucket_le(const json::Value& b) {
  const json::Value* le = b.find("le");
  if (le == nullptr) return std::numeric_limits<double>::quiet_NaN();
  if (le->is_string() && le->string == "+Inf")
    return std::numeric_limits<double>::infinity();
  if (le->is_number()) return le->number;
  return std::numeric_limits<double>::quiet_NaN();
}

struct HistDoc {
  u64 count = 0;
  double sum = 0, min = 0, max = 0, p50 = 0, p95 = 0, p99 = 0;
  std::vector<std::pair<double, u64>> buckets;  // (le, per-bucket count)
  bool ok = false;
};

HistDoc read_hist(const std::string& name, const json::Value& h,
                  MetricsCheckResult& r) {
  HistDoc d;
  if (!h.is_object()) {
    fail(r, "histogram " + name + ": not an object");
    return d;
  }
  d.count = static_cast<u64>(h.number_or("count", -1));
  d.sum = h.number_or("sum", 0);
  d.min = h.number_or("min", 0);
  d.max = h.number_or("max", 0);
  d.p50 = h.number_or("p50", 0);
  d.p95 = h.number_or("p95", 0);
  d.p99 = h.number_or("p99", 0);
  if (h.number_or("count", -1) < 0) {
    fail(r, "histogram " + name + ": missing count");
    return d;
  }
  const json::Value* buckets = h.find("buckets");
  if (buckets == nullptr || !buckets->is_array()) {
    fail(r, "histogram " + name + ": missing buckets array");
    return d;
  }
  for (const json::Value& b : buckets->array) {
    const double le = bucket_le(b);
    const double n = b.number_or("count", -1);
    if (std::isnan(le) || n < 0) {
      fail(r, "histogram " + name + ": malformed bucket entry");
      return d;
    }
    d.buckets.emplace_back(le, static_cast<u64>(n));
  }
  d.ok = true;
  return d;
}

void check_hist(const std::string& name, const HistDoc& d,
                MetricsCheckResult& r) {
  u64 total = 0;
  double prev_le = -std::numeric_limits<double>::infinity();
  for (const auto& [le, n] : d.buckets) {
    if (le <= prev_le) {
      fail(r, "histogram " + name + ": bucket bounds not ascending");
      return;
    }
    prev_le = le;
    total += n;
  }
  if (total != d.count) {
    std::ostringstream os;
    os << "histogram " << name << ": bucket counts sum to " << total
       << " but count is " << d.count;
    fail(r, os.str());
  }
  if (d.count == 0) return;
  if (!(d.min <= d.p50 && d.p50 <= d.p95 && d.p95 <= d.p99 &&
        d.p99 <= d.max))
    fail(r, "histogram " + name +
                ": percentiles not ordered (min <= p50 <= p95 <= p99 <= "
                "max)");
  // sum must be consistent with count observations in [min, max]; the
  // epsilon absorbs accumulated rounding in the sharded double adds.
  const double c = static_cast<double>(d.count);
  const double eps =
      1e-9 * std::max(1.0, std::abs(c * d.max)) + 1e-12;
  if (d.sum < c * d.min - eps || d.sum > c * d.max + eps)
    fail(r, "histogram " + name + ": sum outside [count*min, count*max]");
}

/// Collects name -> counter value and name -> histogram doc from one
/// parsed snapshot.
struct SnapshotDoc {
  std::map<std::string, u64> counters;
  std::map<std::string, HistDoc> hists;
};

bool read_snapshot(const json::Value& doc, SnapshotDoc& s,
                   MetricsCheckResult& r) {
  const json::Value* counters = doc.find("counters");
  const json::Value* gauges = doc.find("gauges");
  const json::Value* hists = doc.find("histograms");
  if (counters == nullptr || !counters->is_object() || gauges == nullptr ||
      !gauges->is_object() || hists == nullptr || !hists->is_object()) {
    fail(r, "missing counters/gauges/histograms objects");
    return false;
  }
  for (const auto& [name, v] : counters->object) {
    if (!v.is_number() || v.number < 0 ||
        v.number != std::floor(v.number)) {
      fail(r, "counter " + name + ": not a non-negative integer");
      continue;
    }
    s.counters[name] = static_cast<u64>(v.number);
  }
  for (const auto& [name, h] : hists->object)
    s.hists[name] = read_hist(name, h, r);
  return true;
}

}  // namespace

MetricsCheckResult check_metrics_json(const std::string& text) {
  MetricsCheckResult r;
  json::Value doc;
  if (!parse_doc(text, doc, r)) return r;
  SnapshotDoc s;
  if (!read_snapshot(doc, s, r)) return r;
  for (const auto& [name, h] : s.hists)
    if (h.ok) check_hist(name, h, r);
  r.counters = s.counters.size();
  r.gauges = doc.find("gauges")->object.size();
  r.histograms = s.hists.size();
  r.ok = r.errors.empty();
  return r;
}

MetricsCheckResult check_metrics_monotonic(const std::string& prev,
                                           const std::string& next) {
  MetricsCheckResult r;
  json::Value dp, dn;
  if (!parse_doc(prev, dp, r) || !parse_doc(next, dn, r)) return r;
  SnapshotDoc sp, sn;
  if (!read_snapshot(dp, sp, r) || !read_snapshot(dn, sn, r)) return r;
  for (const auto& [name, v] : sp.counters) {
    const auto it = sn.counters.find(name);
    if (it == sn.counters.end()) {
      fail(r, "counter " + name + ": present in prev, missing in next");
    } else if (it->second < v) {
      std::ostringstream os;
      os << "counter " << name << ": went backwards (" << v << " -> "
         << it->second << ")";
      fail(r, os.str());
    }
  }
  for (const auto& [name, h] : sp.hists) {
    const auto it = sn.hists.find(name);
    if (it == sn.hists.end()) {
      fail(r, "histogram " + name + ": present in prev, missing in next");
    } else if (it->second.count < h.count) {
      std::ostringstream os;
      os << "histogram " << name << ": count went backwards (" << h.count
         << " -> " << it->second.count << ")";
      fail(r, os.str());
    }
  }
  r.ok = r.errors.empty();
  return r;
}

MetricsCheckResult check_metrics_prometheus(const std::string& json_text,
                                            const std::string& prom_text) {
  MetricsCheckResult r;
  json::Value doc;
  if (!parse_doc(json_text, doc, r)) return r;
  SnapshotDoc s;
  if (!read_snapshot(doc, s, r)) return r;

  // Parse the exposition: `name{labels} value` lines (the whole series
  // name, labels included, is the key — matching the JSON convention).
  std::map<std::string, double> series;
  std::istringstream in(prom_text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const auto sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
      std::ostringstream os;
      os << "prometheus line " << lineno << ": expected 'name value'";
      fail(r, os.str());
      continue;
    }
    const std::string name = line.substr(0, sp);
    char* end = nullptr;
    const std::string val = line.substr(sp + 1);
    const double v = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0') {
      fail(r, "prometheus series " + name + ": malformed value '" + val +
                  "'");
      continue;
    }
    if (series.count(name) != 0)
      fail(r, "prometheus series " + name + ": duplicated");
    series[name] = v;
  }

  auto expect = [&](const std::string& name, double want,
                    const std::string& what) {
    const auto it = series.find(name);
    if (it == series.end()) {
      fail(r, "prometheus: missing series " + name + " (" + what + ")");
      return;
    }
    if (std::abs(it->second - want) >
        1e-9 * std::max(1.0, std::abs(want))) {
      std::ostringstream os;
      os << "prometheus series " << name << ": " << it->second
         << " != JSON " << want << " (" << what << ")";
      fail(r, os.str());
    }
  };

  for (const auto& [name, v] : s.counters)
    expect(name, static_cast<double>(v), "counter");

  for (const auto& [name, h] : s.hists) {
    if (!h.ok) continue;
    // name may carry labels: `base{labels}` -> `base_count{labels}` etc.
    const auto brace = name.find('{');
    const std::string base =
        brace == std::string::npos ? name : name.substr(0, brace);
    const std::string labels =
        brace == std::string::npos ? "" : name.substr(brace);
    auto suffixed = [&](const char* sfx) { return base + sfx + labels; };
    expect(suffixed("_count"), static_cast<double>(h.count),
           "histogram count");
    expect(suffixed("_sum"), h.sum, "histogram sum");
    // The +Inf bucket line must equal the count; cumulative ordering of
    // all emitted _bucket lines is checked over the whole exposition
    // below (avoiding a reformat of the writer's bound strings here).
    const std::string inf_name =
        base + "_bucket" +
        (labels.empty() ? std::string("{le=\"+Inf\"}")
                        : labels.substr(0, labels.size() - 1) +
                              ",le=\"+Inf\"}");
    expect(inf_name, static_cast<double>(h.count), "le=+Inf bucket");
  }

  // Every emitted _bucket series must be cumulative-consistent: group by
  // prefix before le=, check non-decreasing in le order.
  struct BucketSeries {
    double le;
    double value;
  };
  std::map<std::string, std::vector<BucketSeries>> grouped;
  for (const auto& [name, v] : series) {
    const auto pos = name.find("le=\"");
    if (pos == std::string::npos || name.find("_bucket") == std::string::npos)
      continue;
    const auto end_q = name.find('"', pos + 4);
    if (end_q == std::string::npos) continue;
    const std::string le_str = name.substr(pos + 4, end_q - pos - 4);
    const double le = le_str == "+Inf"
                          ? std::numeric_limits<double>::infinity()
                          : std::strtod(le_str.c_str(), nullptr);
    grouped[name.substr(0, pos)].push_back({le, v});
  }
  for (auto& [prefix, buckets] : grouped) {
    std::sort(buckets.begin(), buckets.end(),
              [](const BucketSeries& a, const BucketSeries& b) {
                return a.le < b.le;
              });
    for (std::size_t i = 1; i < buckets.size(); ++i)
      if (buckets[i].value < buckets[i - 1].value) {
        fail(r, "prometheus " + prefix +
                    "...: cumulative bucket values decreased");
        break;
      }
  }

  r.ok = r.errors.empty();
  return r;
}

MetricsCheckResult check_device_histograms(const std::string& json_text,
                                           std::size_t devices) {
  MetricsCheckResult r;
  json::Value doc;
  if (!parse_doc(json_text, doc, r)) return r;
  SnapshotDoc s;
  if (!read_snapshot(doc, s, r)) return r;
  for (std::size_t d = 0; d < devices; ++d) {
    const std::string name = "cusfft_signal_latency_ms{device=\"" +
                             std::to_string(d) + "\"}";
    const auto it = s.hists.find(name);
    if (it == s.hists.end()) {
      fail(r, "missing per-device histogram " + name);
    } else if (it->second.count == 0) {
      fail(r, "per-device histogram " + name + " has no observations");
    }
  }
  r.ok = r.errors.empty();
  return r;
}

MetricsCheckResult check_serve_metrics(const std::string& json_text) {
  MetricsCheckResult r;
  json::Value doc;
  if (!parse_doc(json_text, doc, r)) return r;
  SnapshotDoc s;
  if (!read_snapshot(doc, s, r)) return r;

  auto counter = [&](const std::string& name, bool required) -> u64 {
    const auto it = s.counters.find(name);
    if (it == s.counters.end()) {
      if (required) fail(r, "missing serve counter " + name);
      return 0;
    }
    return it->second;
  };
  const u64 req_lat =
      counter("cusfft_serve_requests_total{class=\"latency\"}", false);
  const u64 req_thr =
      counter("cusfft_serve_requests_total{class=\"throughput\"}", false);
  if (req_lat + req_thr == 0)
    fail(r,
         "no cusfft_serve_requests_total series with observations (neither "
         "class)");
  const u64 completed = counter("cusfft_serve_completed_total", true);
  const u64 shed = counter("cusfft_serve_shed_total", true);
  const u64 rejected = counter("cusfft_serve_rejected_total", true);
  const u64 batches = counter("cusfft_serve_batches_total", true);

  if (req_lat + req_thr != completed + shed + rejected) {
    std::ostringstream os;
    os << "serve accounting does not conserve: requests " << req_lat + req_thr
       << " != completed " << completed << " + shed " << shed
       << " + rejected " << rejected;
    fail(r, os.str());
  }
  if (completed > 0 && batches == 0)
    fail(r, "completed requests but cusfft_serve_batches_total is 0");

  u64 hist_completed = 0;
  for (const char* cls : {"latency", "throughput"}) {
    const std::string name =
        std::string("cusfft_serve_latency_ms{class=\"") + cls + "\"}";
    const auto it = s.hists.find(name);
    if (it == s.hists.end()) {
      fail(r, "missing serve histogram " + name);
      continue;
    }
    hist_completed += it->second.count;
  }
  if (hist_completed != completed) {
    std::ostringstream os;
    os << "serve latency histogram counts sum to " << hist_completed
       << " but cusfft_serve_completed_total is " << completed;
    fail(r, os.str());
  }
  const auto bs = s.hists.find("cusfft_serve_batch_size");
  if (bs == s.hists.end()) {
    fail(r, "missing serve histogram cusfft_serve_batch_size");
  } else if (bs->second.count != batches) {
    std::ostringstream os;
    os << "cusfft_serve_batch_size count " << bs->second.count
       << " != cusfft_serve_batches_total " << batches;
    fail(r, os.str());
  }

  r.ok = r.errors.empty();
  return r;
}

MetricsCheckResult check_cluster_metrics(const std::string& json_text,
                                         std::size_t nodes) {
  MetricsCheckResult r;
  json::Value doc;
  if (!parse_doc(json_text, doc, r)) return r;
  SnapshotDoc s;
  if (!read_snapshot(doc, s, r)) return r;

  auto counter = [&](const std::string& name) -> u64 {
    const auto it = s.counters.find(name);
    if (it == s.counters.end()) {
      fail(r, "missing cluster counter " + name);
      return 0;
    }
    return it->second;
  };
  const u64 batches = counter("cusfft_cluster_batches_total");
  const u64 signals = counter("cusfft_cluster_signals_total");
  const u64 transfers = counter("cusfft_cluster_nic_transfers_total");
  const u64 nic_bytes = counter("cusfft_cluster_nic_bytes_total");
  if (batches == 0) fail(r, "cusfft_cluster_batches_total is 0");
  if (signals == 0) fail(r, "cusfft_cluster_signals_total is 0");
  if (transfers > 0 && nic_bytes == 0)
    fail(r, "NIC transfers recorded but cusfft_cluster_nic_bytes_total is 0");

  // Per-node coverage + signal conservation: every node of the cluster
  // must expose its series, and the node split must sum to the cluster
  // total (no signal double-counted or dropped across nodes).
  u64 node_signals = 0;
  for (std::size_t m = 0; m < nodes; ++m) {
    const std::string node = std::to_string(m);
    node_signals +=
        counter("cusfft_node_signals_total{node=\"" + node + "\"}");
    const std::string bytes =
        "cusfft_node_nic_bytes_total{node=\"" + node + "\"}";
    if (s.counters.find(bytes) == s.counters.end())
      fail(r, "missing cluster counter " + bytes);
  }
  if (nodes > 0 && node_signals != signals) {
    std::ostringstream os;
    os << "node signal split does not conserve: sum over nodes "
       << node_signals << " != cusfft_cluster_signals_total " << signals;
    fail(r, os.str());
  }

  for (const char* name :
       {"cusfft_cluster_model_ms", "cusfft_cluster_nic_ms",
        "cusfft_cluster_nic_stall_ms", "cusfft_cluster_nic_queue_ms"}) {
    const auto it = s.hists.find(name);
    if (it == s.hists.end()) {
      fail(r, std::string("missing cluster histogram ") + name);
    } else if (it->second.count != batches) {
      std::ostringstream os;
      os << name << " count " << it->second.count
         << " != cusfft_cluster_batches_total " << batches;
      fail(r, os.str());
    }
  }

  r.ok = r.errors.empty();
  return r;
}

MetricsCheckResult check_algo_metrics(const std::string& json_text) {
  MetricsCheckResult r;
  json::Value doc;
  if (!parse_doc(json_text, doc, r)) return r;
  SnapshotDoc s;
  if (!read_snapshot(doc, s, r)) return r;

  auto counter_or = [&](const std::string& name) -> u64 {
    const auto it = s.counters.find(name);
    return it == s.counters.end() ? 0 : it->second;
  };
  // Sums a {algo="..."} family, rejecting labels that are not a backend.
  auto family_sum = [&](const std::string& family) -> u64 {
    u64 sum = 0;
    const std::string prefix = family + "{algo=\"";
    for (const auto& [name, v] : s.counters) {
      if (name.rfind(prefix, 0) != 0) continue;
      const std::string label =
          name.substr(prefix.size(), name.size() - prefix.size() - 2);
      if (label != "cusfft" && label != "ffast")
        fail(r, family + ": unknown algo label \"" + label + "\"");
      sum += v;
    }
    return sum;
  };

  // A crossover run calibrates both backends, so both execute series must
  // carry observations.
  for (const char* algo : {"cusfft", "ffast"}) {
    const std::string name =
        std::string("cusfft_algo_executes_total{algo=\"") + algo + "\"}";
    if (counter_or(name) == 0)
      fail(r, "missing or zero picker counter " + name);
  }

  // Per-algo splits must conserve the unlabeled totals: every execute and
  // every fleet/batch signal is attributed to exactly one backend.
  const u64 exec_split = family_sum("cusfft_algo_executes_total");
  const u64 execs = counter_or("cusfft_executes_total");
  if (exec_split != execs) {
    std::ostringstream os;
    os << "algo execute split does not conserve: sum over backends "
       << exec_split << " != cusfft_executes_total " << execs;
    fail(r, os.str());
  }
  const u64 sig_split = family_sum("cusfft_algo_signals_total");
  const u64 sigs = counter_or("cusfft_signals_total");
  if (sig_split != sigs) {
    std::ostringstream os;
    os << "algo signal split does not conserve: sum over backends "
       << sig_split << " != cusfft_signals_total " << sigs;
    fail(r, os.str());
  }

  if (family_sum("cusfft_algo_picks_total") == 0)
    fail(r,
         "cusfft_algo_picks_total has no observations — the auto picker "
         "never ran");
  const json::Value* gauges = doc.find("gauges");
  if (gauges == nullptr ||
      !(gauges->number_or("cusfft_algo_crossover_cells", 0) > 0))
    fail(r, "cusfft_algo_crossover_cells gauge is absent or zero");

  r.ok = r.errors.empty();
  return r;
}

}  // namespace cusfft::tools
