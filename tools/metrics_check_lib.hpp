// Validator for the always-on metrics artifacts (cusim::MetricsRegistry
// expositions). Four checks, each usable on its own:
//   - check_metrics_json: schema + internal consistency of one JSON
//     snapshot (bucket counts sum to the histogram count, percentiles are
//     ordered min <= p50 <= p95 <= p99 <= max, sum within [count*min,
//     count*max], bucket bounds ascending);
//   - check_metrics_monotonic: counters and histogram counts never
//     decrease between two snapshots of the same process;
//   - check_metrics_prometheus: the Prometheus text exposition agrees
//     with the JSON snapshot (same counter values, same histogram counts,
//     cumulative buckets non-decreasing and ending at the count);
//   - check_device_histograms: the per-device execute-latency
//     histograms exist with observations for every expected device.
// Library + CLI split so tests can feed synthetic documents — same layout
// as profile_check_lib / bench_gate_lib.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace cusfft::tools {

struct MetricsCheckResult {
  bool ok = false;
  std::vector<std::string> errors;

  // Summary counts for reporting (filled by check_metrics_json).
  std::size_t counters = 0;
  std::size_t gauges = 0;
  std::size_t histograms = 0;
};

/// Validates one "cusfft-metrics-v1" JSON document.
MetricsCheckResult check_metrics_json(const std::string& text);

/// Validates that every counter and histogram count in `prev` is <= its
/// value in `next` (both "cusfft-metrics-v1" documents from the same
/// process). Instruments present only in `next` are fine (registered
/// later); instruments that disappeared are errors.
MetricsCheckResult check_metrics_monotonic(const std::string& prev,
                                           const std::string& next);

/// Cross-checks a Prometheus text exposition against the JSON snapshot it
/// was taken with.
MetricsCheckResult check_metrics_prometheus(const std::string& json_text,
                                            const std::string& prom_text);

/// Requires `cusfft_signal_latency_ms{device="i"}` with count > 0 for
/// every i in [0, devices).
MetricsCheckResult check_device_histograms(const std::string& json_text,
                                           std::size_t devices);

/// Serving-tier coverage for a drained cusfft::serve::Server snapshot:
/// the cusfft_serve_* instruments must exist, request accounting must
/// conserve (requests_total summed over both SLO classes == completed +
/// shed + rejected — only valid between batches, which any drained
/// snapshot is), the per-class latency histogram counts must sum to the
/// completed count, and the batch-size histogram count must equal
/// batches_total.
MetricsCheckResult check_serve_metrics(const std::string& json_text);

/// Cluster-tier coverage for a cusfft::gpu::ClusterPlan snapshot: the
/// cusfft_cluster_* counters and histograms must exist (each histogram's
/// count equal to cusfft_cluster_batches_total), every node in
/// [0, nodes) must expose its cusfft_node_signals_total /
/// cusfft_node_nic_bytes_total series, and the per-node signal split must
/// sum to cusfft_cluster_signals_total (cross-node conservation — no
/// signal double-counted or dropped by the node sharding).
MetricsCheckResult check_cluster_metrics(const std::string& json_text,
                                         std::size_t nodes);

/// Algorithm-picker coverage for a crossover run (bench_throughput
/// --algo auto): both backends' cusfft_algo_executes_total series must
/// have observations (calibration runs both), the per-algo
/// executes/signals splits must conserve their unlabeled totals (every
/// execute attributed to exactly one backend), cusfft_algo_picks_total
/// must show the picker actually ran, and the
/// cusfft_algo_crossover_cells gauge must report a non-empty
/// calibration table.
MetricsCheckResult check_algo_metrics(const std::string& json_text);

}  // namespace cusfft::tools
