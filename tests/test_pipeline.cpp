// Stream-pipelined execute_many: equivalence, overlap, and determinism
// invariants.
//
// The pipelined batch schedule (BatchMode::kPipelined) is a modeled-
// timeline optimization only — functional kernel execution is eager and
// host-sequential — so its contract is sharp and fully testable:
//   1. outputs are bit-identical to per-signal execute() and to the
//      serialized batch schedule, for any shape;
//   2. the modeled timeline genuinely overlaps signal i+1's binning with
//      signal i's estimation, stays FIFO within each stream, and beats the
//      serialized makespan strictly;
//   3. results and modeled times are identical whichever host launch path
//      runs the kernels (parallel, forced-sequential, single-thread pool —
//      CI additionally sweeps CUSIM_SEQUENTIAL/CUSFFT_THREADS env configs);
//   4. GpuBatchStats::per_signal stays coherent under overlap: each
//      signal's spans come from its own stream events and tile its window.
// The overlap tests sweep the captured trace through the same checks CI's
// profile_check runs on the smoke artifact (tools/profile_check_lib).
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "cusim/profiler.hpp"
#include "profile_check_lib.hpp"
#include "signal/generate.hpp"

namespace cusfft {
namespace {

using cusim::CaptureProfile;
using cusim::Device;
using cusim::StreamId;
using cusim::TraceSpan;

cvec test_signal(std::size_t n, std::size_t k, u64 seed) {
  Rng rng(seed);
  return signal::make_sparse_signal(n, k, rng).x;
}

struct Batch {
  std::vector<cvec> signals;
  std::vector<std::span<const cplx>> views;

  Batch(std::size_t count, std::size_t n, std::size_t k, u64 seed0) {
    for (std::size_t i = 0; i < count; ++i)
      signals.push_back(test_signal(n, k, seed0 + i));
    for (const cvec& s : signals) views.emplace_back(s);
  }
};

void expect_identical(const std::vector<SparseSpectrum>& a,
                      const std::vector<SparseSpectrum>& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << what << ", signal " << i;
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j].loc, b[i][j].loc) << what << ", signal " << i;
      EXPECT_EQ(a[i][j].val.real(), b[i][j].val.real())
          << what << ", signal " << i;
      EXPECT_EQ(a[i][j].val.imag(), b[i][j].val.imag())
          << what << ", signal " << i;
    }
  }
}

// Whether resolve_batch_mode's environment override is active in this
// process (CI's serialized-baseline configuration exports it for ctest).
bool env_forces_serial() {
  const char* e = std::getenv("CUSFFT_PIPELINE");
  return e != nullptr && std::string(e) == "0";
}

// ---------------------------------------------------------------------------
// 1. Equivalence: pipelined output is bit-identical to per-signal execute()
//    and to the serialized batch, across randomized shapes and both the
//    baseline and optimized kernel configurations.
// ---------------------------------------------------------------------------

TEST(PipelineEquivalence, RandomizedShapesAreBitIdentical) {
  Rng shapes(9001);
  for (int iter = 0; iter < 6; ++iter) {
    const std::size_t n = std::size_t{1} << (10 + shapes.next_below(3));
    const std::size_t k = std::size_t{2} << shapes.next_below(3);
    const std::size_t batch = 2 + shapes.next_below(3);
    const u64 seed = shapes.next_u64();

    sfft::Params p;
    p.n = n;
    p.k = k;
    p.seed = 1 + shapes.next_below(1000);
    const gpu::Options opts =
        (iter % 2 == 0) ? gpu::Options::optimized() : gpu::Options::baseline();
    SCOPED_TRACE("n=" + std::to_string(n) + " k=" + std::to_string(k) +
                 " batch=" + std::to_string(batch) +
                 " optimized=" + std::to_string(iter % 2 == 0));

    Batch b(batch, n, k, seed);
    Device dev;
    gpu::GpuPlan plan(dev, p, opts);

    std::vector<SparseSpectrum> singles;
    for (const auto& v : b.views) singles.push_back(plan.execute(v));
    const auto serialized =
        plan.execute_many(b.views, nullptr, gpu::BatchMode::kSerialized);
    const auto pipelined =
        plan.execute_many(b.views, nullptr, gpu::BatchMode::kPipelined);

    expect_identical(singles, serialized, "execute vs serialized");
    expect_identical(serialized, pipelined, "serialized vs pipelined");
  }
}

TEST(PipelineEquivalence, TransferAndCombConfigsAreBitIdentical) {
  sfft::Params p;
  p.n = 1 << 12;
  p.k = 8;
  p.seed = 77;
  p.comb = true;  // exercises the double-buffered comb-approved flags

  gpu::Options opts = gpu::Options::optimized();
  opts.include_transfer = true;  // H2D copies join the pipelined timeline

  Batch b(4, p.n, p.k, 500);
  Device dev;
  gpu::GpuPlan plan(dev, p, opts);

  std::vector<SparseSpectrum> singles;
  for (const auto& v : b.views) singles.push_back(plan.execute(v));
  const auto serialized =
      plan.execute_many(b.views, nullptr, gpu::BatchMode::kSerialized);
  const auto pipelined =
      plan.execute_many(b.views, nullptr, gpu::BatchMode::kPipelined);

  expect_identical(singles, serialized, "execute vs serialized");
  expect_identical(serialized, pipelined, "serialized vs pipelined");
}

// ---------------------------------------------------------------------------
// 2. Overlap invariants on the modeled timeline.
// ---------------------------------------------------------------------------

struct OverlapRun {
  gpu::GpuBatchStats serial_stats, pipe_stats;
  std::vector<SparseSpectrum> serial_out, pipe_out;
  CaptureProfile pipe_profile;

  explicit OverlapRun(std::size_t batch = 8) {
    sfft::Params p;
    p.n = 1 << 13;
    p.k = 8;
    p.seed = 3;
    gpu::Options opts = gpu::Options::optimized();
    opts.include_transfer = true;
    Batch b(batch, p.n, p.k, 9000);

    Device dev_s;
    gpu::GpuPlan plan_s(dev_s, p, opts);
    serial_out =
        plan_s.execute_many(b.views, &serial_stats, gpu::BatchMode::kSerialized);

    Device dev_p;
    gpu::GpuPlan plan_p(dev_p, p, opts);
    pipe_out =
        plan_p.execute_many(b.views, &pipe_stats, gpu::BatchMode::kPipelined);
    pipe_profile = dev_p.end_capture();
  }
};

TEST(PipelineOverlap, BeatsSerializedStrictlyWithIdenticalOutput) {
  OverlapRun run;
  EXPECT_FALSE(run.serial_stats.pipelined);
  EXPECT_TRUE(run.pipe_stats.pipelined);
  // The back stage is launch-overhead bound while the front is memory
  // bound, so overlapping them must shorten the modeled batch makespan.
  EXPECT_LT(run.pipe_stats.model_ms, run.serial_stats.model_ms);
  expect_identical(run.serial_out, run.pipe_out, "serialized vs pipelined");
}

TEST(PipelineOverlap, BinningStartsBeforePreviousEstimateEnds) {
  OverlapRun run;
  // Spans are in submission order and signals are submitted one after the
  // other, so any span after an `estimate` span belongs to a later signal.
  // The pipeline's point: some later signal's front-stage work (transfer,
  // reset, or binning) starts on the modeled timeline before that estimate
  // finishes.
  const std::set<std::string> front = {"h2d",        "score_clear",
                                       "hits_reset", "pf_remap",
                                       "pf_execute", "pf_combine"};
  const auto& spans = run.pipe_profile.spans;
  bool overlapped = false;
  for (std::size_t e = 0; e < spans.size() && !overlapped; ++e) {
    if (spans[e].name != "estimate") continue;
    for (std::size_t j = e + 1; j < spans.size(); ++j)
      if (front.count(spans[j].name) != 0 &&
          spans[j].start_ms < spans[e].end_ms) {
        overlapped = true;
        break;
      }
  }
  EXPECT_TRUE(overlapped)
      << "no front-stage kernel of a later signal overlaps an estimate";
}

TEST(PipelineOverlap, TracePassesProfileCheckSweep) {
  OverlapRun run;
  // The same sweep CI runs on the smoke artifact: per-stream FIFO
  // non-overlap and device concurrency within the modeled Hyper-Q window
  // must hold for the overlapped schedule too.
  const tools::ProfileCheckResult r =
      tools::check_profile_json(run.pipe_profile.chrome_trace_json());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.kernel_events, 0u);
  EXPECT_GT(r.kernel_tracks, 1u);  // work really spread across streams
  EXPECT_LE(r.peak_concurrency, r.max_kernels);
}

// ---------------------------------------------------------------------------
// 3. GpuBatchStats under overlap: per-signal spans from each signal's own
//    events.
// ---------------------------------------------------------------------------

TEST(PipelineStats, SerializedPerSignalSpansTileTheBatch) {
  OverlapRun run(4);
  const gpu::GpuBatchStats& st = run.serial_stats;
  ASSERT_EQ(st.per_signal.size(), 4u);
  double total = 0;
  for (const gpu::GpuSignalStats& sig : st.per_signal) {
    double window = 0;
    for (const auto& [name, ms] : sig.phase_span_ms) window += ms;
    // Phases tile each signal's window exactly...
    EXPECT_NEAR(window, sig.end_ms - sig.start_ms, 1e-9);
    total += window;
  }
  // ...and serialized windows tile the whole capture (regression pin: the
  // per-signal numbers must sum to the batch makespan when nothing
  // overlaps).
  EXPECT_NEAR(total, st.model_ms, 1e-6 * st.model_ms);
}

TEST(PipelineStats, PipelinedPerSignalSpansStayCoherent) {
  OverlapRun run;
  const gpu::GpuBatchStats& st = run.pipe_stats;
  ASSERT_EQ(st.per_signal.size(), 8u);
  double window_sum = 0;
  double last_end = 0;
  for (const gpu::GpuSignalStats& sig : st.per_signal) {
    EXPECT_GT(sig.end_ms, sig.start_ms);
    double window = 0;
    for (const auto& [name, ms] : sig.phase_span_ms) {
      EXPECT_GE(ms, -1e-9) << name;
      window += ms;
    }
    // Each signal's phases still tile its own [start, end) window — the
    // spans come from that signal's stream events, not global phase marks.
    EXPECT_NEAR(window, sig.end_ms - sig.start_ms, 1e-9);
    window_sum += window;
    last_end = std::max(last_end, sig.end_ms);
  }
  // The last signal drains at the batch makespan.
  EXPECT_NEAR(last_end, st.model_ms, 1e-9 * st.model_ms);
  // Overlap means the per-signal windows over-cover the makespan.
  EXPECT_GT(window_sum, st.model_ms);
}

// ---------------------------------------------------------------------------
// 4. Determinism matrix: the host launch path must not leak into results
//    or modeled times. CI sweeps the CUSIM_SEQUENTIAL / CUSFFT_THREADS
//    environment configurations; in-process we pin the equivalent device
//    knobs.
// ---------------------------------------------------------------------------

TEST(PipelineDeterminism, LaunchPathsProduceIdenticalResultsAndTimes) {
  sfft::Params p;
  p.n = 1 << 12;
  p.k = 8;
  p.seed = 11;
  const gpu::Options opts = gpu::Options::optimized();
  Batch b(3, p.n, p.k, 321);

  struct Run {
    std::vector<SparseSpectrum> out;
    gpu::GpuBatchStats stats;
  };
  auto run_with = [&](void (*configure)(Device&)) {
    Device dev;
    configure(dev);
    gpu::GpuPlan plan(dev, p, opts);
    Run r;
    r.out = plan.execute_many(b.views, &r.stats, gpu::BatchMode::kPipelined);
    return r;
  };

  const Run def = run_with(+[](Device&) {});
  const Run seq = run_with(+[](Device& d) { d.set_parallel(false); });
  const Run par =
      run_with(+[](Device& d) { d.set_min_parallel_threads(1); });

  for (const Run* other : {&seq, &par}) {
    expect_identical(def.out, other->out, "launch-path variant");
    // Modeled times are a function of the submitted timeline only — they
    // must match bit-for-bit, not just approximately.
    EXPECT_EQ(def.stats.model_ms, other->stats.model_ms);
    ASSERT_EQ(def.stats.per_signal.size(), other->stats.per_signal.size());
    for (std::size_t i = 0; i < def.stats.per_signal.size(); ++i) {
      EXPECT_EQ(def.stats.per_signal[i].start_ms,
                other->stats.per_signal[i].start_ms);
      EXPECT_EQ(def.stats.per_signal[i].end_ms,
                other->stats.per_signal[i].end_ms);
      EXPECT_EQ(def.stats.per_signal[i].phase_span_ms,
                other->stats.per_signal[i].phase_span_ms);
    }
  }
}

// ---------------------------------------------------------------------------
// 5. kAuto resolution.
// ---------------------------------------------------------------------------

TEST(PipelineAuto, SingleSignalBatchesStaySerialized) {
  sfft::Params p;
  p.n = 1 << 12;
  p.k = 8;
  p.seed = 5;
  Batch b(1, p.n, p.k, 42);
  Device dev;
  gpu::GpuPlan plan(dev, p, gpu::Options::optimized());
  gpu::GpuBatchStats st;
  plan.execute_many(b.views, &st, gpu::BatchMode::kAuto);
  EXPECT_FALSE(st.pipelined);
}

TEST(PipelineAuto, RealBatchesPipelineUnlessEnvForbids) {
  sfft::Params p;
  p.n = 1 << 12;
  p.k = 8;
  p.seed = 5;
  Batch b(3, p.n, p.k, 42);
  Device dev;
  gpu::GpuPlan plan(dev, p, gpu::Options::optimized());
  gpu::GpuBatchStats st;
  plan.execute_many(b.views, &st, gpu::BatchMode::kAuto);
  EXPECT_EQ(st.pipelined, !env_forces_serial());
}

}  // namespace
}  // namespace cusfft
