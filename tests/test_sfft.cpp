// Tests for the serial sparse FFT: parameter derivation, the binning
// identity, hash/estimate consistency on planted tones, and end-to-end
// recovery sweeps (the algorithm's headline contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <thread>

#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "fft/dft.hpp"
#include "fft/fft.hpp"
#include "sfft/inverse.hpp"
#include "sfft/serial.hpp"
#include "sfft/steps.hpp"
#include "signal/generate.hpp"

namespace cusfft {
namespace {

using sfft::LoopPerm;
using sfft::Params;
using sfft::SerialPlan;

Params small_params(std::size_t n, std::size_t k) {
  Params p;
  p.n = n;
  p.k = k;
  p.seed = 99;
  return p;
}

TEST(SfftParams, BucketDerivation) {
  Params p = small_params(1 << 18, 1000);
  const std::size_t B = p.buckets();
  EXPECT_TRUE(is_pow2(B));
  EXPECT_LE(B, p.n);
  // Nearest power of two: within sqrt(2) of bcst*sqrt(nk/log2 n).
  const double raw = 4.0 * std::sqrt((1 << 18) * 1000.0 / 18.0);
  EXPECT_GE(static_cast<double>(B), raw / std::sqrt(2.0) - 1.0);
  EXPECT_LE(static_cast<double>(B), raw * std::sqrt(2.0) + 1.0);
}

TEST(SfftParams, ThresholdAndCutoffDefaults) {
  Params p = small_params(1 << 16, 10);
  p.loops_loc = 6;
  EXPECT_EQ(p.threshold(), 4u);  // 6/2 + 1
  p.loc_threshold = 5;
  EXPECT_EQ(p.threshold(), 5u);
  EXPECT_LE(p.cutoff(), p.buckets());
}

TEST(SfftParams, ValidationRejectsBadConfigs) {
  Params p = small_params(1 << 16, 10);
  p.n = 1000;  // not a power of two
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = small_params(1 << 16, 0);
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = small_params(1 << 16, 10);
  p.loops_loc = 2;
  p.loc_threshold = 3;  // threshold > loops
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(SfftSteps, DrawLoopPermsInvertible) {
  Rng rng(5);
  const std::size_t n = 1 << 12;
  auto perms = sfft::draw_loop_perms(n, 16, rng);
  ASSERT_EQ(perms.size(), 16u);
  for (const auto& p : perms) {
    EXPECT_EQ(mod_mul(p.ai, p.a, n), 1u);
    EXPECT_LT(p.tau, n);
  }
}

// The binning identity: FFT_B(bin_permuted(x)) must equal hat(y*g) sampled
// at multiples of n/B, where y is the permuted signal and g the filter taps.
TEST(SfftSteps, BinningMatchesConvolutionTheorem) {
  const std::size_t n = 1 << 10, B = 16;
  Rng rng(21);
  auto sig = signal::make_sparse_signal(n, 3, rng);
  auto filter = signal::make_flat_filter(n, B);

  LoopPerm perm;
  perm.ai = 77;  // odd
  perm.a = mod_inverse(77, n);
  perm.tau = 123;

  cvec z(B);
  sfft::bin_permuted(sig.x, filter.time, perm, z);
  cvec buckets = fft::fft(z);

  // Direct evaluation: y[t] = x[(tau + t*ai) % n]; yg = y .* g (g padded).
  cvec yg(n, cplx{});
  for (std::size_t t = 0; t < filter.time.size(); ++t)
    yg[t] = sig.x[(perm.tau + t * perm.ai) % n] * filter.time[t];
  cvec YG = fft::fft(yg);
  for (std::size_t m = 0; m < B; ++m)
    ASSERT_NEAR(std::abs(buckets[m] - YG[m * (n / B)]), 0.0, 1e-9) << m;
}

// The blocked/SoA inner loop must be bit-identical to the scalar reference
// (same adds in the same order, complex multiply lowered to the same
// (ac-bd, ad+bc) form), across shapes, strides, and non-zero accumulator
// starting states.
TEST(SfftSteps, BinPermutedSoaBitIdenticalToReference) {
  struct Shape {
    std::size_t n, B, w;
    u64 ai, tau, seed;
  };
  const Shape shapes[] = {
      {1 << 10, 16, 1 << 10, 77, 123, 21},
      {1 << 12, 64, 3000, 4097, 0, 22},       // w not a multiple of B
      {1 << 14, 256, 1 << 13, 12345, 999, 23},
      {1 << 10, 16, 17, 3, 5, 24},            // w < B tail-only case
  };
  for (const Shape& s : shapes) {
    Rng rng(s.seed);
    auto sig = signal::make_sparse_signal(s.n, 4, rng);
    auto filter = signal::make_flat_filter(s.n, s.B);
    cvec taps(filter.time.begin(),
              filter.time.begin() +
                  std::min<std::size_t>(s.w, filter.time.size()));

    LoopPerm perm;
    perm.ai = s.ai;
    perm.a = mod_inverse(s.ai, s.n);
    perm.tau = s.tau;

    // Non-zero accumulators: bin_permuted adds into z, so the starting
    // state must flow through both paths identically.
    cvec z_soa(s.B), z_ref(s.B);
    for (std::size_t i = 0; i < s.B; ++i)
      z_soa[i] = z_ref[i] =
          cplx{static_cast<double>(i) * 0.25, -static_cast<double>(i)};

    sfft::bin_permuted(sig.x, taps, perm, z_soa);
    sfft::bin_permuted_reference(sig.x, taps, perm, z_ref);
    ASSERT_EQ(z_soa.size(), z_ref.size());
    EXPECT_EQ(std::memcmp(z_soa.data(), z_ref.data(),
                          z_soa.size() * sizeof(cplx)),
              0)
        << "n=" << s.n << " B=" << s.B << " w=" << s.w;
  }
}

TEST(SfftSteps, TopBucketsFindsLargest) {
  cvec buckets(8, cplx{0.01, 0.0});
  buckets[2] = {5.0, 0.0};
  buckets[6] = {0.0, -4.0};
  auto top = sfft::top_buckets(buckets, 2);
  std::set<u32> got(top.begin(), top.end());
  EXPECT_EQ(got, (std::set<u32>{2, 6}));
  EXPECT_EQ(sfft::top_buckets(buckets, 100).size(), 8u);
}

TEST(SfftSteps, HashLocationRoundTripsThroughVoteRegion) {
  const std::size_t n = 1 << 12, B = 32;
  Rng rng(22);
  auto perms = sfft::draw_loop_perms(n, 8, rng);
  for (const auto& perm : perms) {
    for (u64 f : {u64{0}, u64{17}, u64{n / 2}, u64{n - 1}}) {
      const auto h = sfft::hash_location(f, perm, n, B);
      // Vote the region of the bucket f hashed to; f itself must be voted.
      std::vector<std::uint8_t> score(n, 0);
      std::vector<u64> hits;
      const u32 j = static_cast<u32>(h.bucket);
      sfft::vote_locations(std::span<const u32>(&j, 1), perm, n, B, 1, score,
                           hits);
      EXPECT_EQ(score[f], 1) << "f=" << f << " ai=" << perm.ai;
    }
  }
}

TEST(SfftSteps, VoteRegionWidthIsNdivB) {
  const std::size_t n = 1 << 10, B = 16;
  LoopPerm perm;
  perm.ai = 5;
  perm.a = mod_inverse(5, n);
  perm.tau = 0;
  std::vector<std::uint8_t> score(n, 0);
  std::vector<u64> hits;
  const u32 j = 3;
  sfft::vote_locations(std::span<const u32>(&j, 1), perm, n, B, 1, score,
                       hits);
  std::size_t votes = 0;
  for (auto s : score) votes += s;
  EXPECT_EQ(votes, n / B);
  EXPECT_EQ(hits.size(), n / B);  // threshold 1: every voted loc is a hit
}

TEST(SfftSteps, MedianComplexComponentwise) {
  cvec v{{1, 9}, {2, 8}, {3, 7}, {4, 6}, {5, 5}};
  EXPECT_EQ(sfft::median_complex(v), cplx(3, 7));
  cvec single{{2, -4}};
  EXPECT_EQ(sfft::median_complex(single), cplx(2, -4));
  cvec empty;
  EXPECT_EQ(sfft::median_complex(empty), cplx(0, 0));
}

// A single planted tone must be estimated to its exact value from the
// buckets of several random loops.
TEST(SfftSteps, EstimateRecoversPlantedTone) {
  const std::size_t n = 1 << 12, B = 64;
  auto filter = signal::make_flat_filter(n, B);
  Rng rng(23);
  const u64 f = 777;
  const cplx c{0.8, -1.1};
  SparseSpectrum truth{{f, c}};
  cvec x = signal::synthesize(truth, n);

  const std::size_t L = 5;
  auto perms = sfft::draw_loop_perms(n, L, rng);
  std::vector<cvec> bucket_sets(L, cvec(B));
  fft::Plan bfft(B, fft::Direction::kForward);
  for (std::size_t r = 0; r < L; ++r) {
    sfft::bin_permuted(x, filter.time, perms[r], bucket_sets[r]);
    bfft.execute(bucket_sets[r]);
  }
  const cplx est =
      sfft::estimate_coef(f, perms, bucket_sets, filter.freq, n, B);
  EXPECT_NEAR(std::abs(est - c), 0.0, 1e-3);
}

// ---------- End-to-end recovery ----------

struct EndToEndCase {
  std::size_t n;
  std::size_t k;
};

class SfftEndToEnd : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(SfftEndToEnd, RecoversExactlySparseSignal) {
  const auto [n, k] = GetParam();
  Params p = small_params(n, k);
  SerialPlan plan(p);
  Rng rng(1000 + n + k);
  auto sig = signal::make_sparse_signal(n, k, rng);
  auto got = plan.execute(sig.x);

  cvec oracle = densify(sig.truth, n);
  EXPECT_DOUBLE_EQ(location_recall(got, oracle, k), 1.0);
  EXPECT_LT(max_error_at_locs(got, oracle), 1e-2);
  EXPECT_LT(l1_error_per_coeff(got, oracle, k), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SfftEndToEnd,
    ::testing::Values(EndToEndCase{1 << 12, 4}, EndToEndCase{1 << 13, 8},
                      EndToEndCase{1 << 14, 16}, EndToEndCase{1 << 15, 32},
                      EndToEndCase{1 << 16, 50}, EndToEndCase{1 << 17, 64}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.k);
    });

TEST(SfftEndToEnd, DeterministicForFixedSeed) {
  Params p = small_params(1 << 13, 8);
  SerialPlan plan(p);
  Rng rng(77);
  auto sig = signal::make_sparse_signal(1 << 13, 8, rng);
  auto a = plan.execute(sig.x);
  auto b = plan.execute(sig.x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].loc, b[i].loc);
    EXPECT_EQ(a[i].val, b[i].val);
  }
}

TEST(SfftEndToEnd, ClusteredFrequenciesStillRecovered) {
  const std::size_t n = 1 << 14, k = 16;
  Params p = small_params(n, k);
  SerialPlan plan(p);
  Rng rng(31);
  auto sig = signal::make_clustered_signal(n, k, 4, rng);
  auto got = plan.execute(sig.x);
  cvec oracle = densify(sig.truth, n);
  EXPECT_GE(location_recall(got, oracle, k), 0.9);
  EXPECT_LT(l1_error_per_coeff(got, oracle, k), 0.2);
}

TEST(SfftEndToEnd, ToleratesModerateNoise) {
  const std::size_t n = 1 << 14, k = 8;
  Params p = small_params(n, k);
  SerialPlan plan(p);
  Rng rng(32);
  signal::SparseSignalParams sp;
  sp.noise_sigma = 1e-4;  // well below the per-tone time amplitude k/n
  auto sig = signal::make_sparse_signal(n, k, rng, sp);
  auto got = plan.execute(sig.x);
  cvec oracle = densify(sig.truth, n);
  EXPECT_GE(location_recall(got, oracle, k), 0.9);
}

TEST(SfftEndToEnd, StepTimersCoverAllSixSteps) {
  Params p = small_params(1 << 13, 8);
  SerialPlan plan(p);
  Rng rng(33);
  auto sig = signal::make_sparse_signal(1 << 13, 8, rng);
  StepTimers timers;
  plan.execute(sig.x, &timers);
  EXPECT_GT(timers.get(sfft::step::kPermFilter), 0.0);
  EXPECT_GT(timers.get(sfft::step::kSubFft), 0.0);
  EXPECT_GE(timers.get(sfft::step::kCutoff), 0.0);
  EXPECT_GE(timers.get(sfft::step::kLocRecover), 0.0);
  EXPECT_GE(timers.get(sfft::step::kEstimate), 0.0);
  EXPECT_EQ(timers.all().size(), 5u);
}

TEST(SfftEndToEnd, OutputSortedAndUnique) {
  Params p = small_params(1 << 14, 16);
  SerialPlan plan(p);
  Rng rng(34);
  auto sig = signal::make_sparse_signal(1 << 14, 16, rng);
  auto got = plan.execute(sig.x);
  for (std::size_t i = 1; i < got.size(); ++i)
    EXPECT_LT(got[i - 1].loc, got[i].loc);
}


// Sparse inverse: a dense frequency-domain input with few dominant
// time-domain components (the GPS-acquisition shape).
TEST(SparseInverse, RecoversTimeDomainPeaks) {
  const std::size_t n = 1 << 13;
  Rng rng(606);
  // Build the time-domain truth: 3 spikes.
  cvec x(n, cplx{});
  const u64 spikes[] = {100, 5000, 8000};
  for (u64 s : spikes)
    x[s] = cplx{1.0 + rng.next_double(), rng.next_double()};
  const cvec Y = fft::fft(x);  // dense frequency-domain signal

  Params p = small_params(n, 3);
  SerialPlan plan(p);
  const auto got = sfft::sparse_inverse(plan, Y);

  cvec oracle = x;  // "spectrum" of the inverse problem is x itself
  EXPECT_DOUBLE_EQ(location_recall(got, oracle, 3), 1.0);
  for (const auto& c : got) {
    if (c.loc == 100 || c.loc == 5000 || c.loc == 8000)
      EXPECT_NEAR(std::abs(c.val - x[c.loc]), 0.0, 1e-6) << c.loc;
  }
}


// Reproduction note (DESIGN.md §6): the paper's Algorithm 5 omits the tau
// phase correction. This test demonstrates why we added it: estimating the
// same planted tone *without* unrolling the phase gives loop-dependent
// rotated values whose component-wise median is badly wrong.
TEST(SfftSteps, EstimateWithoutTauPhaseIsWrong) {
  const std::size_t n = 1 << 12, B = 64;
  auto filter = signal::make_flat_filter(n, B);
  Rng rng(23);
  const u64 f = 777;
  const cplx c{0.8, -1.1};
  cvec x = signal::synthesize({{f, c}}, n);

  const std::size_t L = 7;
  auto perms = sfft::draw_loop_perms(n, L, rng);
  std::vector<cvec> bucket_sets(L, cvec(B));
  fft::Plan bfft(B, fft::Direction::kForward);
  for (std::size_t r = 0; r < L; ++r) {
    sfft::bin_permuted(x, filter.time, perms[r], bucket_sets[r]);
    bfft.execute(bucket_sets[r]);
  }
  // Correct estimator (with phase): exact.
  const cplx with_phase =
      sfft::estimate_coef(f, perms, bucket_sets, filter.freq, n, B);
  EXPECT_NEAR(std::abs(with_phase - c), 0.0, 1e-3);

  // Algorithm 5 as printed (no phase): median of rotated values.
  cvec vals(L);
  for (std::size_t r = 0; r < L; ++r) {
    const auto h = sfft::hash_location(f, perms[r], n, B);
    vals[r] = bucket_sets[r][h.bucket] * static_cast<double>(n) /
              filter.freq[h.freq_index];
  }
  const cplx without_phase = sfft::median_complex(vals);
  EXPECT_GT(std::abs(without_phase - c), 0.1);
}

TEST(SfftEndToEnd, ZeroSignalYieldsOnlyNegligibleValues) {
  const std::size_t n = 1 << 13, k = 8;
  Params p = small_params(n, k);
  SerialPlan plan(p);
  const cvec zeros(n, cplx{});
  const auto got = plan.execute(zeros);
  for (const auto& c : got)
    EXPECT_LT(std::abs(c.val), 1e-12) << c.loc;
}

TEST(SfftEndToEnd, ConstPlanIsThreadSafe) {
  // execute() is const and uses only locals: two threads sharing one plan
  // must produce identical, correct results.
  const std::size_t n = 1 << 13, k = 8;
  Params p = small_params(n, k);
  SerialPlan plan(p);
  Rng rng(808);
  auto sig_a = signal::make_sparse_signal(n, k, rng);
  auto sig_b = signal::make_sparse_signal(n, k, rng);
  SparseSpectrum ra, rb;
  {
    std::thread ta([&] { ra = plan.execute(sig_a.x); });
    std::thread tb([&] { rb = plan.execute(sig_b.x); });
    ta.join();
    tb.join();
  }
  EXPECT_DOUBLE_EQ(location_recall(ra, densify(sig_a.truth, n), k), 1.0);
  EXPECT_DOUBLE_EQ(location_recall(rb, densify(sig_b.truth, n), k), 1.0);
}

}  // namespace
}  // namespace cusfft
