// Deterministic driver for serving-tier tests: hand-build or script
// multi-tenant arrival traces, replay them on a fresh virtual-clock
// Server, and collect every terminal response plus the schedule/decision
// traces for golden assertions. Everything here is a pure function of
// (trace, config, seed) — no wall clock, no threads — which is what makes
// batch composition, shed decisions, and modeled latencies
// bit-reproducible across runs. Shared by test_server.cpp and the
// server-submission fuzzer in test_fuzz.cpp.
#pragma once

#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "cusfft/server.hpp"

namespace cusfft::serve_test {

/// One scripted arrival (deadline relative to arrival; default none).
inline serve::TraceEvent ev(
    double at, std::string tenant, std::size_t n, std::size_t k,
    serve::SloClass slo,
    double deadline = std::numeric_limits<double>::infinity()) {
  serve::TraceEvent e;
  e.arrival_ms = at;
  e.tenant = std::move(tenant);
  e.n = n;
  e.k = k;
  e.slo = slo;
  e.deadline_ms = deadline;
  return e;
}

/// Everything one replay produced, keyed for assertions.
struct ReplayResult {
  std::vector<u64> ids;                      ///< request ids in event order
  std::map<u64, serve::Response> responses;  ///< terminal records by id
  serve::GpuServeStats stats;
  std::string schedule;   ///< full trace (timestamps + modeled latencies)
  std::string decisions;  ///< float-free golden variant
};

/// Replays `tr` through a fresh virtual-clock Server (submit_at in arrival
/// order, then drain) and snapshots every observable output.
inline ReplayResult run_trace(const serve::ServerConfig& cfg,
                              const serve::Trace& tr, u64 seed) {
  serve::Server s(cfg);
  ReplayResult r;
  r.ids = serve::replay(s, tr, seed);
  for (u64 id : r.ids) r.responses.emplace(id, s.response(id));
  r.stats = s.stats();
  r.schedule = s.schedule_trace();
  r.decisions = s.decision_trace();
  return r;
}

/// Randomized-but-seeded multi-tenant trace: `events` arrivals spread over
/// tenants "t0".."t<tenants-1>" with random inter-arrival gaps, two
/// signal shapes (n and 2n), a ~1-in-4 latency-class mix, and ~1-in-8
/// tight deadlines — enough variety to exercise every close reason and
/// both terminal failure paths while staying a pure function of the seed.
inline serve::Trace scripted_trace(std::size_t events, std::size_t tenants,
                                   std::size_t n, std::size_t k, u64 seed) {
  serve::Trace t;
  Rng rng(seed);
  double now = 0;
  for (std::size_t i = 0; i < events; ++i) {
    now += 0.05 + 0.4 * rng.next_double();
    const bool big = (rng.next_u64() & 1) != 0;
    serve::TraceEvent e =
        ev(now, "t" + std::to_string(rng.next_below(tenants)),
           big ? 2 * n : n, k,
           rng.next_below(4) == 0 ? serve::SloClass::kLatency
                                  : serve::SloClass::kThroughput);
    if (rng.next_below(8) == 0) e.deadline_ms = 0.5 + rng.next_double();
    t.events.push_back(std::move(e));
  }
  return t;
}

}  // namespace cusfft::serve_test
