// FFAST backend contract: stage-chain construction, exact recovery on
// exactly-k-sparse signals (including residue-class collisions that only
// the Prony multi-ton solver can decode), CPU/GPU agreement (identical
// support, values to FFT rounding — the GPU stage FFTs run through
// cufftsim while the CPU plan uses fft::Plan), bit-reproducibility of the
// GPU path across runs, devices, and the sequential launch path, and
// bit-identity of the batch schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <complex>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "core/spectrum.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "sfft/ffast.hpp"
#include "signal/generate.hpp"

namespace cusfft {
namespace {

sfft::Params ffast_params(std::size_t n, std::size_t k, u64 seed = 7) {
  sfft::Params p;
  p.n = n;
  p.k = k;
  p.seed = seed;
  p.algo = sfft::Algorithm::kFfast;
  return p;
}

SparseSpectrum sorted_by_loc(SparseSpectrum s) {
  std::sort(s.begin(), s.end(),
            [](const SparseCoef& a, const SparseCoef& b) { return a.loc < b.loc; });
  return s;
}

void expect_recovers(const SparseSpectrum& got, const SparseSpectrum& truth,
                     double val_tol, const char* what) {
  const SparseSpectrum want = sorted_by_loc(truth);
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].loc, want[i].loc) << what << " coeff " << i;
    EXPECT_LT(std::abs(got[i].val - want[i].val), val_tol)
        << what << " coeff " << i;
  }
}

void expect_bitwise(const SparseSpectrum& a, const SparseSpectrum& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].loc, b[i].loc) << what << " coeff " << i;
    EXPECT_EQ(a[i].val, b[i].val) << what << " coeff " << i;
  }
}

TEST(FfastStageChain, GeometricDoublingClampsAndDedups) {
  const auto ch = sfft::ffast_stage_chain(1 << 12, 256, 3);
  ASSERT_EQ(ch.size(), 3u);
  EXPECT_EQ(ch[0].bins, 256u);
  EXPECT_EQ(ch[1].bins, 512u);
  EXPECT_EQ(ch[2].bins, 1024u);
  EXPECT_EQ(ch[0].offset, 0u);
  for (std::size_t s = 0; s + 1 < ch.size(); ++s)
    EXPECT_EQ(ch[s + 1].offset,
              ch[s].offset + sfft::kFfastShifts * ch[s].bins);

  // The clamp at n collapses the tail of the chain; collapsed neighbours
  // are deduplicated rather than repeated.
  const auto clamped = sfft::ffast_stage_chain(1 << 12, 2048, 3);
  ASSERT_EQ(clamped.size(), 2u);
  EXPECT_EQ(clamped[0].bins, 2048u);
  EXPECT_EQ(clamped[1].bins, 4096u);

  const auto full = sfft::ffast_stage_chain(1 << 10, 1 << 10, 4);
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full[0].bins, 1u << 10);
}

TEST(FfastPlan, RecoversExactlyKSparseSignals) {
  for (const std::size_t n : {std::size_t{1} << 10, std::size_t{1} << 13}) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{4},
                                std::size_t{32}}) {
      for (u64 seed = 1; seed <= 3; ++seed) {
        Rng rng(seed * 1000 + n + k);
        const auto sig = signal::make_sparse_signal(
            n, k, rng, {signal::MagnitudeDist::kUniform1to10, 0.0});
        const sfft::FfastPlan plan(ffast_params(n, k, seed));
        expect_recovers(plan.execute(sig.x), sig.truth, 1e-8,
                        "cpu exact-sparse");
      }
    }
  }
}

TEST(FfastPlan, PronyPeelsFullChainCollisions) {
  // Three frequencies congruent mod the largest stage's bin count collide
  // in EVERY stage — no singleton ever appears and only the 3-ton Prony
  // solve can open the bucket. ffast_bins(k=3) = 16, so the default
  // 3-stage chain tops out at 64 bins; plant the spikes 64 apart.
  const std::size_t n = 1 << 12;
  const sfft::Params p = ffast_params(n, 3);
  ASSERT_EQ(p.ffast_bins(), 16u);
  SparseSpectrum truth{{5, cplx(1.0, 0.5)},
                       {5 + 64 * 7, cplx(-0.75, 0.25)},
                       {5 + 64 * 31, cplx(0.0, -1.25)}};
  const cvec x = signal::synthesize(truth, n);
  const sfft::FfastPlan plan(p);
  expect_recovers(plan.execute(x), truth, 1e-8, "full-chain 3-ton");

  // Four congruent frequencies exceed kFfastMaxTon: the decoder must fail
  // soft (return a strict subset or nothing), never hallucinate support.
  SparseSpectrum four = truth;
  four.push_back({5 + 64 * 48, cplx(0.5, 0.5)});
  const cvec x4 = signal::synthesize(four, n);
  const SparseSpectrum got = sfft::FfastPlan(ffast_params(n, 4)).execute(x4);
  for (const auto& c : got) {
    const bool planted =
        std::any_of(four.begin(), four.end(),
                    [&](const SparseCoef& t) { return t.loc == c.loc; });
    EXPECT_TRUE(planted) << "hallucinated loc " << c.loc;
  }
}

TEST(FfastBackends, CpuAndGpuAgreeToFftRounding) {
  for (const std::size_t n : {std::size_t{1} << 11, std::size_t{1} << 14}) {
    const std::size_t k = 16;
    Rng rng(n);
    const auto sig = signal::make_sparse_signal(n, k, rng);
    const sfft::Params p = ffast_params(n, k);

    const SparseSpectrum cpu = sfft::FfastPlan(p).execute(sig.x);
    cusim::Device dev;
    gpu::GpuExecStats st;
    const SparseSpectrum gpu_out =
        gpu::GpuPlan(dev, p, gpu::Options::optimized()).execute(sig.x, &st);
    EXPECT_EQ(st.algo, sfft::Algorithm::kFfast);

    ASSERT_EQ(cpu.size(), gpu_out.size());
    for (std::size_t i = 0; i < cpu.size(); ++i) {
      EXPECT_EQ(cpu[i].loc, gpu_out[i].loc);
      EXPECT_LT(std::abs(cpu[i].val - gpu_out[i].val), 1e-9)
          << "value divergence beyond FFT rounding at " << i;
    }
  }
}

TEST(FfastBackends, CusfftAndFfastRecoverSameSupport) {
  const std::size_t n = 1 << 12, k = 8;
  Rng rng(99);
  const auto sig = signal::make_sparse_signal(n, k, rng);
  sfft::Params p = ffast_params(n, k);

  cusim::Device dev;
  const SparseSpectrum ffast =
      gpu::GpuPlan(dev, p, gpu::Options::optimized()).execute(sig.x);
  p.algo = sfft::Algorithm::kCusfft;
  // cusFFT keeps every surviving candidate (a superset with small spurious
  // tails at these sizes); its top-k by magnitude must be the FFAST
  // support exactly.
  const SparseSpectrum cusfft = trim_top_k(
      gpu::GpuPlan(dev, p, gpu::Options::optimized()).execute(sig.x), k);

  ASSERT_EQ(ffast.size(), k);
  ASSERT_EQ(ffast.size(), cusfft.size());
  for (std::size_t i = 0; i < ffast.size(); ++i)
    EXPECT_EQ(ffast[i].loc, cusfft[i].loc) << "support mismatch at " << i;
}

TEST(FfastGpu, BitReproducibleAcrossRunsDevicesAndLaunchPaths) {
  const std::size_t n = 1 << 12, k = 12;
  Rng rng(5);
  const auto sig = signal::make_sparse_signal(n, k, rng);
  const sfft::Params p = ffast_params(n, k);
  const gpu::Options opts = gpu::Options::optimized();

  auto run = [&](bool parallel) {
    cusim::Device dev;
    dev.set_parallel(parallel);  // false == the CUSIM_SEQUENTIAL=1 path
    return gpu::GpuPlan(dev, p, opts).execute(sig.x);
  };
  const SparseSpectrum first = run(true);
  expect_bitwise(first, run(true), "repeat run / fresh device");
  expect_bitwise(first, run(false), "sequential launch path");
}

TEST(FfastGpu, BatchSchedulesBitIdenticalToSoloExecutes) {
  const std::size_t n = 1 << 11, k = 8, batch = 5;
  const sfft::Params p = ffast_params(n, k);
  const gpu::Options opts = gpu::Options::optimized();

  std::vector<cvec> store;
  std::vector<std::span<const cplx>> views;
  for (std::size_t i = 0; i < batch; ++i) {
    Rng rng(300 + i);
    store.push_back(signal::make_sparse_signal(n, k, rng).x);
  }
  for (const cvec& s : store) views.emplace_back(s);

  std::vector<SparseSpectrum> solo;
  {
    cusim::Device dev;
    gpu::GpuPlan plan(dev, p, opts);
    for (const auto& v : views) solo.push_back(plan.execute(v));
  }
  auto run_batchmode = [&](gpu::BatchMode mode) {
    cusim::Device dev;
    gpu::GpuPlan plan(dev, p, opts);
    gpu::GpuBatchStats st;
    auto out = plan.execute_many(views, &st, mode);
    EXPECT_EQ(st.algo, sfft::Algorithm::kFfast);
    return out;
  };
  const auto serialized = run_batchmode(gpu::BatchMode::kSerialized);
  const auto pipelined = run_batchmode(gpu::BatchMode::kPipelined);
  ASSERT_EQ(serialized.size(), batch);
  ASSERT_EQ(pipelined.size(), batch);
  for (std::size_t i = 0; i < batch; ++i) {
    expect_bitwise(solo[i], serialized[i], "serialized vs solo");
    expect_bitwise(solo[i], pipelined[i], "pipelined vs solo");
  }
}

}  // namespace
}  // namespace cusfft
