// Randomized differential ("fuzz") tests: many random configurations per
// test, each checked against an independent oracle — std::sort for the
// device sorts, the host FFT for the simulated cuFFT, the dense-FFT
// spectrum for the sparse transforms, and the single-plan execute for the
// serving tier.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "cufftsim/cufftsim.hpp"
#include "custhrust/scan.hpp"
#include "custhrust/sort.hpp"
#include "fft/dft.hpp"
#include "fft/fft.hpp"
#include "serve_harness.hpp"
#include "sfft/serial.hpp"
#include "signal/generate.hpp"

namespace cusfft {
namespace {

TEST(Fuzz, DeviceSortsMatchStdSortManySizes) {
  Rng rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 2 + rng.next_below(3000);
    const auto algo = trial % 2 == 0 ? custhrust::SortAlgo::kRadix
                                     : custhrust::SortAlgo::kBitonic;
    cusim::Device dev;
    dev.begin_capture();
    cusim::DeviceBuffer<double> keys(n);
    cusim::DeviceBuffer<u32> vals(n);
    std::vector<double> ref(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix magnitudes, duplicates, negatives, zeros.
      const double v = rng.next_below(4) == 0
                           ? 0.0
                           : rng.next_normal() * std::pow(10.0, double(
                                 rng.next_below(7)) - 3.0);
      keys.host()[i] = ref[i] = v;
      vals.host()[i] = static_cast<u32>(i);
    }
    custhrust::sort_pairs_desc(dev, keys, vals, algo);
    std::sort(ref.begin(), ref.end(), std::greater<>());
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_DOUBLE_EQ(keys.host()[i], ref[i])
          << "trial=" << trial << " n=" << n << " i=" << i;
  }
}

TEST(Fuzz, DeviceScanMatchesStdManySizes) {
  Rng rng(2025);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 1 + rng.next_below(5000);
    cusim::Device dev;
    dev.begin_capture();
    cusim::DeviceBuffer<u64> data(n);
    for (auto& v : data.host()) v = rng.next_below(1000);
    std::vector<u64> expect(data.host().begin(), data.host().end());
    std::exclusive_scan(expect.begin(), expect.end(), expect.begin(),
                        u64{0});
    custhrust::exclusive_scan(dev, data);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(data.host()[i], expect[i]) << "trial=" << trial << " n=" << n;
  }
}

TEST(Fuzz, CufftsimMatchesHostFftRandomSizesAndBatches) {
  Rng rng(2026);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 1ULL << (1 + rng.next_below(11));
    const std::size_t batch = 1 + rng.next_below(4);
    cusim::Device dev;
    dev.begin_capture();
    cufftsim::Plan plan(dev, n, batch);
    cvec data(n * batch);
    for (auto& v : data) v = cplx{rng.next_normal(), rng.next_normal()};
    cusim::DeviceBuffer<cplx> buf(data.size());
    std::copy(data.begin(), data.end(), buf.host().begin());
    plan.execute(buf, cufftsim::Direction::kForward);
    for (std::size_t b = 0; b < batch; ++b) {
      const cvec expect =
          fft::fft(std::span<const cplx>(data).subspan(b * n, n));
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_NEAR(std::abs(buf.host()[b * n + i] - expect[i]), 0.0,
                    1e-8 * std::sqrt(double(n)))
            << "trial=" << trial << " n=" << n << " b=" << b;
    }
  }
}

TEST(Fuzz, SerialSfftRecoversAcrossRandomConfigs) {
  Rng rng(2027);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t logn = 12 + rng.next_below(4);
    const std::size_t n = 1ULL << logn;
    const std::size_t k = 2 + rng.next_below(24);
    sfft::Params p;
    p.n = n;
    p.k = k;
    p.seed = 9000 + trial;
    p.comb = trial % 3 == 0;
    auto sig = signal::make_sparse_signal(n, k, rng);
    const auto got = sfft::SerialPlan(p).execute(sig.x);
    const cvec oracle = densify(sig.truth, n);
    EXPECT_DOUBLE_EQ(location_recall(got, oracle, k), 1.0)
        << "trial=" << trial << " n=" << n << " k=" << k;
    EXPECT_LT(l1_error_per_coeff(got, oracle, k), 2e-2)
        << "trial=" << trial;
  }
}

TEST(Fuzz, ServerSubmissionsTerminateOnceAndMatchSinglePlan) {
  // Randomized tenants, shapes, SLO classes, deadlines, and cancellations
  // against the threaded serving tier. Invariants: every request reaches
  // exactly one of {completed, shed, rejected}; a cancellation that
  // reported success is terminal as shed; request accounting conserves;
  // and every completed spectrum is bit-identical to a standalone
  // GpuPlan::execute of the same params and samples — continuous batching
  // must never change results.
  Rng rng(2029);
  for (int trial = 0; trial < 3; ++trial) {
    serve::ServerConfig cfg;
    cfg.devices = 1 + rng.next_below(2);
    cfg.max_batch = 1 + rng.next_below(8);
    cfg.max_wait_latency_ms = 0.1 + rng.next_double();
    cfg.max_wait_throughput_ms = 0.5 + 2.0 * rng.next_double();
    cfg.tenant_queue_depth = 2 + rng.next_below(6);
    serve::Server s(cfg);
    s.start();

    struct Sub {
      u64 id;
      serve::TraceEvent e;
      std::size_t index;
      bool cancelled;
    };
    std::vector<Sub> subs;
    const std::size_t count = 40 + rng.next_below(40);
    for (std::size_t i = 0; i < count; ++i) {
      serve::TraceEvent e = serve_test::ev(
          0, "f" + std::to_string(rng.next_below(4)),
          std::size_t{256} << rng.next_below(2), 4,
          rng.next_below(3) == 0 ? serve::SloClass::kLatency
                                 : serve::SloClass::kThroughput);
      if (rng.next_below(6) == 0) e.deadline_ms = 0.05 + rng.next_double();
      serve::Request r;
      r.tenant = e.tenant;
      r.params = serve::trace_params(e, 2029);
      r.x = serve::trace_signal(e, 2029, i);
      r.slo = e.slo;
      r.deadline_ms = e.deadline_ms;
      const u64 id = s.submit(std::move(r));
      const bool cancelled = rng.next_below(8) == 0 && s.cancel(id);
      subs.push_back({id, std::move(e), i, cancelled});
    }
    s.stop();

    std::size_t completed = 0, shed = 0, rejected = 0;
    for (const Sub& sub : subs) {
      const serve::Response resp = s.response(sub.id);
      switch (resp.outcome) {
        case serve::Outcome::kCompleted: ++completed; break;
        case serve::Outcome::kShed: ++shed; break;
        case serve::Outcome::kRejected: ++rejected; break;
        case serve::Outcome::kPending:
          FAIL() << "trial=" << trial << " id=" << sub.id
                 << " never terminated";
      }
      if (sub.cancelled)
        EXPECT_EQ(resp.outcome, serve::Outcome::kShed)
            << "trial=" << trial << " id=" << sub.id;
      if (resp.outcome != serve::Outcome::kCompleted) continue;
      cusim::Device dev;
      gpu::GpuPlan plan(dev, serve::trace_params(sub.e, 2029), cfg.opts);
      const SparseSpectrum want =
          plan.execute(serve::trace_signal(sub.e, 2029, sub.index));
      ASSERT_EQ(resp.spectrum.size(), want.size())
          << "trial=" << trial << " id=" << sub.id;
      for (std::size_t j = 0; j < want.size(); ++j) {
        ASSERT_EQ(resp.spectrum[j].loc, want[j].loc)
            << "trial=" << trial << " id=" << sub.id;
        ASSERT_EQ(resp.spectrum[j].val, want[j].val)
            << "trial=" << trial << " id=" << sub.id;
      }
    }
    const auto st = s.stats();
    EXPECT_EQ(st.submitted, count) << "trial=" << trial;
    EXPECT_EQ(st.completed, completed) << "trial=" << trial;
    EXPECT_EQ(st.shed, shed) << "trial=" << trial;
    EXPECT_EQ(st.rejected, rejected) << "trial=" << trial;
    EXPECT_EQ(completed + shed + rejected, count) << "trial=" << trial;
    EXPECT_GT(completed, 0u) << "trial=" << trial;
  }
}

TEST(Fuzz, BluesteinMatchesNaiveDftOddSizes) {
  Rng rng(2028);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 3 + rng.next_below(500);
    cvec x(n);
    for (auto& v : x) v = cplx{rng.next_normal(), rng.next_normal()};
    const cvec got = fft::fft(x);
    const cvec expect = fft::dft_naive(x);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(std::abs(got[i] - expect[i]), 0.0,
                  1e-7 * std::sqrt(double(n)))
          << "trial=" << trial << " n=" << n << " i=" << i;
  }
}

}  // namespace
}  // namespace cusfft
