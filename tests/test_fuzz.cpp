// Randomized differential ("fuzz") tests: many random configurations per
// test, each checked against an independent oracle — std::sort for the
// device sorts, the host FFT for the simulated cuFFT, the dense-FFT
// spectrum for the sparse transforms, and the single-plan execute for the
// serving tier.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "cufftsim/cufftsim.hpp"
#include "custhrust/scan.hpp"
#include "custhrust/sort.hpp"
#include "fft/dft.hpp"
#include "fft/fft.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "serve_harness.hpp"
#include "sfft/ffast.hpp"
#include "sfft/serial.hpp"
#include "signal/generate.hpp"

namespace cusfft {
namespace {

TEST(Fuzz, DeviceSortsMatchStdSortManySizes) {
  Rng rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 2 + rng.next_below(3000);
    const auto algo = trial % 2 == 0 ? custhrust::SortAlgo::kRadix
                                     : custhrust::SortAlgo::kBitonic;
    cusim::Device dev;
    dev.begin_capture();
    cusim::DeviceBuffer<double> keys(n);
    cusim::DeviceBuffer<u32> vals(n);
    std::vector<double> ref(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix magnitudes, duplicates, negatives, zeros.
      const double v = rng.next_below(4) == 0
                           ? 0.0
                           : rng.next_normal() * std::pow(10.0, double(
                                 rng.next_below(7)) - 3.0);
      keys.host()[i] = ref[i] = v;
      vals.host()[i] = static_cast<u32>(i);
    }
    custhrust::sort_pairs_desc(dev, keys, vals, algo);
    std::sort(ref.begin(), ref.end(), std::greater<>());
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_DOUBLE_EQ(keys.host()[i], ref[i])
          << "trial=" << trial << " n=" << n << " i=" << i;
  }
}

TEST(Fuzz, DeviceScanMatchesStdManySizes) {
  Rng rng(2025);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 1 + rng.next_below(5000);
    cusim::Device dev;
    dev.begin_capture();
    cusim::DeviceBuffer<u64> data(n);
    for (auto& v : data.host()) v = rng.next_below(1000);
    std::vector<u64> expect(data.host().begin(), data.host().end());
    std::exclusive_scan(expect.begin(), expect.end(), expect.begin(),
                        u64{0});
    custhrust::exclusive_scan(dev, data);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(data.host()[i], expect[i]) << "trial=" << trial << " n=" << n;
  }
}

TEST(Fuzz, CufftsimMatchesHostFftRandomSizesAndBatches) {
  Rng rng(2026);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 1ULL << (1 + rng.next_below(11));
    const std::size_t batch = 1 + rng.next_below(4);
    cusim::Device dev;
    dev.begin_capture();
    cufftsim::Plan plan(dev, n, batch);
    cvec data(n * batch);
    for (auto& v : data) v = cplx{rng.next_normal(), rng.next_normal()};
    cusim::DeviceBuffer<cplx> buf(data.size());
    std::copy(data.begin(), data.end(), buf.host().begin());
    plan.execute(buf, cufftsim::Direction::kForward);
    for (std::size_t b = 0; b < batch; ++b) {
      const cvec expect =
          fft::fft(std::span<const cplx>(data).subspan(b * n, n));
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_NEAR(std::abs(buf.host()[b * n + i] - expect[i]), 0.0,
                    1e-8 * std::sqrt(double(n)))
            << "trial=" << trial << " n=" << n << " b=" << b;
    }
  }
}

TEST(Fuzz, SerialSfftRecoversAcrossRandomConfigs) {
  Rng rng(2027);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t logn = 12 + rng.next_below(4);
    const std::size_t n = 1ULL << logn;
    const std::size_t k = 2 + rng.next_below(24);
    sfft::Params p;
    p.n = n;
    p.k = k;
    p.seed = 9000 + trial;
    p.comb = trial % 3 == 0;
    auto sig = signal::make_sparse_signal(n, k, rng);
    const auto got = sfft::SerialPlan(p).execute(sig.x);
    const cvec oracle = densify(sig.truth, n);
    EXPECT_DOUBLE_EQ(location_recall(got, oracle, k), 1.0)
        << "trial=" << trial << " n=" << n << " k=" << k;
    EXPECT_LT(l1_error_per_coeff(got, oracle, k), 2e-2)
        << "trial=" << trial;
  }
}

TEST(Fuzz, ValidateRejectsDegenerateConfigs) {
  // Pinned rejections from the hostile-config sweep. The NaN cases are
  // regressions: validate()'s positivity checks were spelled `x <= 0.0`,
  // which NaN fails (every ordered comparison involving NaN is false), so
  // NaN constants sailed through into the derived-size math.
  auto reject = [](auto&& mutate, const char* what) {
    sfft::Params p;
    p.n = 4096;
    p.k = 8;
    mutate(p);
    EXPECT_THROW(p.validate(), std::invalid_argument) << what;
  };
  reject([](sfft::Params& p) { p.k = p.n; }, "k == n");
  reject([](sfft::Params& p) { p.k = p.n / 2 + 1; }, "k > n/2");
  reject([](sfft::Params& p) { p.k = 0; }, "k == 0");
  reject([](sfft::Params& p) { p.loops_loc = 0; p.loc_threshold = 0; },
         "loops_loc = 0 with loc_threshold = 0");
  reject([](sfft::Params& p) { p.loc_threshold = p.loops_loc + 1; },
         "vote threshold > location loops");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  reject([&](sfft::Params& p) { p.bcst = nan; }, "NaN bcst");
  reject([&](sfft::Params& p) { p.cutoff_mult = nan; }, "NaN cutoff_mult");
  reject([&](sfft::Params& p) { p.comb = true; p.comb_cst = nan; },
         "NaN comb_cst");
  reject([&](sfft::Params& p) { p.comb = true; p.comb_keep_mult = nan; },
         "NaN comb_keep_mult");
  reject([&](sfft::Params& p) { p.ffast_bin_mult = nan; },
         "NaN ffast_bin_mult");
}

TEST(Fuzz, DerivedSizesSaturateInsteadOfWrapping) {
  // Multipliers that push a derived size past 2^63 used to hit UB
  // double->u64 casts: bcst = 1e300 came back as buckets() == 8 instead
  // of n, and cutoff_mult = 1e300 as cutoff() == 0 — which silently
  // emptied every spectrum. The clamps now apply in the double domain.
  sfft::Params p;
  p.n = 4096;
  p.k = 4;
  p.bcst = 1e300;
  ASSERT_NO_THROW(p.validate());
  EXPECT_EQ(p.buckets(), p.n);

  sfft::Params q;
  q.n = 4096;
  q.k = 4;
  q.cutoff_mult = 1e300;
  ASSERT_NO_THROW(q.validate());
  EXPECT_EQ(q.cutoff(), q.buckets() / 2);
  EXPECT_GT(q.cutoff(), 0u);
  Rng rng(77);
  const auto sig = signal::make_sparse_signal(q.n, q.k, rng);
  EXPECT_FALSE(sfft::SerialPlan(q).execute(sig.x).empty())
      << "saturated cutoff must not silently empty the spectrum";

  sfft::Params c;
  c.n = 4096;
  c.k = 8;
  c.comb = true;
  c.comb_cst = 1e300;
  c.comb_keep_mult = 1e300;
  ASSERT_NO_THROW(c.validate());
  EXPECT_EQ(c.comb_w(), c.n / 2);
  EXPECT_EQ(c.comb_keep(), c.n);

  sfft::Params f;
  f.n = 4096;
  f.k = 8;
  f.ffast_bin_mult = 1e300;
  ASSERT_NO_THROW(f.validate());
  EXPECT_EQ(f.ffast_bins(), f.n);
}

TEST(Fuzz, DegenerateConfigsExecuteWithoutCrashing) {
  // Extreme-but-valid configs: the bucket count clamped to its floor of
  // 4, a comb keep far above the comb width (clamped inside the filter),
  // the smallest legal n at maximum density, and FFAST bin counts at both
  // extremes. None are useful configurations; all must run to completion
  // on every backend and return only finite coefficients.
  auto expect_finite = [](const SparseSpectrum& s, const char* what) {
    for (const auto& coef : s) {
      EXPECT_LT(coef.loc, std::size_t{1} << 20) << what;
      EXPECT_TRUE(std::isfinite(coef.val.real()) &&
                  std::isfinite(coef.val.imag()))
          << what << " loc " << coef.loc;
    }
  };
  auto run_all = [&](const sfft::Params& p, const char* what) {
    ASSERT_NO_THROW(p.validate()) << what;
    Rng rng(p.seed + p.n + p.k);
    const auto sig = signal::make_sparse_signal(p.n, p.k, rng);
    expect_finite(sfft::SerialPlan(p).execute(sig.x), what);
    cusim::Device dev;
    expect_finite(
        gpu::GpuPlan(dev, p, gpu::Options::optimized()).execute(sig.x), what);
  };

  sfft::Params floor_b;
  floor_b.n = 4096;
  floor_b.k = 4;
  floor_b.bcst = 1e-9;
  EXPECT_EQ(floor_b.buckets(), 4u);
  run_all(floor_b, "bucket floor B=4");

  sfft::Params keep_over_w;
  keep_over_w.n = 4096;
  keep_over_w.k = 8;
  keep_over_w.comb = true;
  keep_over_w.comb_keep_mult = 512.0;
  ASSERT_GT(keep_over_w.comb_keep(), keep_over_w.comb_w());
  run_all(keep_over_w, "comb keep > comb width");

  sfft::Params tiny;
  tiny.n = 16;
  tiny.k = 8;  // k == n/2, densest legal config at the smallest legal n
  run_all(tiny, "tiny n at k = n/2");

  for (const double mult : {1e-9, 1e300}) {
    sfft::Params fp;
    fp.n = 1 << 10;
    fp.k = 4;
    fp.algo = sfft::Algorithm::kFfast;
    fp.ffast_bin_mult = mult;
    fp.ffast_stages = 8;
    ASSERT_NO_THROW(fp.validate());
    Rng rng(55);
    const auto sig = signal::make_sparse_signal(fp.n, fp.k, rng);
    expect_finite(sfft::FfastPlan(fp).execute(sig.x), "ffast bin extremes");
  }
}

TEST(Fuzz, RandomHostileConfigsValidateOrExecute) {
  // Randomized sweep over hostile multiplier grids: every drawn config
  // either fails validate() with invalid_argument, or executes on the
  // serial backend without crashing.
  const double grid[] = {1e-9, 0.25, 1.0, 4.0, 1e9, 1e300,
                         std::numeric_limits<double>::quiet_NaN()};
  Rng rng(2031);
  int executed = 0;
  for (int trial = 0; trial < 40; ++trial) {
    sfft::Params p;
    p.n = 1ULL << (4 + rng.next_below(7));
    p.k = 1 + rng.next_below(p.n);  // deliberately allows illegal k > n/2
    p.seed = 8800 + trial;
    p.bcst = grid[rng.next_below(7)];
    p.cutoff_mult = grid[rng.next_below(7)];
    p.comb = rng.next_below(2) == 0;
    p.comb_cst = grid[rng.next_below(7)];
    p.comb_keep_mult = grid[rng.next_below(7)];
    p.loops_loc = rng.next_below(5);  // 0 is illegal
    p.loc_threshold = rng.next_below(8);
    try {
      p.validate();
    } catch (const std::invalid_argument&) {
      continue;
    }
    ++executed;
    Rng sig_rng(p.seed);
    const auto sig = signal::make_sparse_signal(p.n, p.k, sig_rng);
    const auto got = sfft::SerialPlan(p).execute(sig.x);
    for (const auto& coef : got)
      ASSERT_LT(coef.loc, p.n) << "trial=" << trial;
  }
  // The sweep must actually exercise the execute path, not reject 40/40.
  EXPECT_GT(executed, 0);
}

TEST(Fuzz, ServerSubmissionsTerminateOnceAndMatchSinglePlan) {
  // Randomized tenants, shapes, SLO classes, deadlines, and cancellations
  // against the threaded serving tier. Invariants: every request reaches
  // exactly one of {completed, shed, rejected}; a cancellation that
  // reported success is terminal as shed; request accounting conserves;
  // and every completed spectrum is bit-identical to a standalone
  // GpuPlan::execute of the same params and samples — continuous batching
  // must never change results.
  Rng rng(2029);
  for (int trial = 0; trial < 3; ++trial) {
    serve::ServerConfig cfg;
    cfg.devices = 1 + rng.next_below(2);
    cfg.max_batch = 1 + rng.next_below(8);
    cfg.max_wait_latency_ms = 0.1 + rng.next_double();
    cfg.max_wait_throughput_ms = 0.5 + 2.0 * rng.next_double();
    cfg.tenant_queue_depth = 2 + rng.next_below(6);
    serve::Server s(cfg);
    s.start();

    struct Sub {
      u64 id;
      serve::TraceEvent e;
      std::size_t index;
      bool cancelled;
    };
    std::vector<Sub> subs;
    const std::size_t count = 40 + rng.next_below(40);
    for (std::size_t i = 0; i < count; ++i) {
      serve::TraceEvent e = serve_test::ev(
          0, "f" + std::to_string(rng.next_below(4)),
          std::size_t{256} << rng.next_below(2), 4,
          rng.next_below(3) == 0 ? serve::SloClass::kLatency
                                 : serve::SloClass::kThroughput);
      if (rng.next_below(6) == 0) e.deadline_ms = 0.05 + rng.next_double();
      serve::Request r;
      r.tenant = e.tenant;
      r.params = serve::trace_params(e, 2029);
      r.x = serve::trace_signal(e, 2029, i);
      r.slo = e.slo;
      r.deadline_ms = e.deadline_ms;
      const u64 id = s.submit(std::move(r));
      const bool cancelled = rng.next_below(8) == 0 && s.cancel(id);
      subs.push_back({id, std::move(e), i, cancelled});
    }
    s.stop();

    std::size_t completed = 0, shed = 0, rejected = 0;
    for (const Sub& sub : subs) {
      const serve::Response resp = s.response(sub.id);
      switch (resp.outcome) {
        case serve::Outcome::kCompleted: ++completed; break;
        case serve::Outcome::kShed: ++shed; break;
        case serve::Outcome::kRejected: ++rejected; break;
        case serve::Outcome::kPending:
          FAIL() << "trial=" << trial << " id=" << sub.id
                 << " never terminated";
      }
      if (sub.cancelled)
        EXPECT_EQ(resp.outcome, serve::Outcome::kShed)
            << "trial=" << trial << " id=" << sub.id;
      if (resp.outcome != serve::Outcome::kCompleted) continue;
      cusim::Device dev;
      gpu::GpuPlan plan(dev, serve::trace_params(sub.e, 2029), cfg.opts);
      const SparseSpectrum want =
          plan.execute(serve::trace_signal(sub.e, 2029, sub.index));
      ASSERT_EQ(resp.spectrum.size(), want.size())
          << "trial=" << trial << " id=" << sub.id;
      for (std::size_t j = 0; j < want.size(); ++j) {
        ASSERT_EQ(resp.spectrum[j].loc, want[j].loc)
            << "trial=" << trial << " id=" << sub.id;
        ASSERT_EQ(resp.spectrum[j].val, want[j].val)
            << "trial=" << trial << " id=" << sub.id;
      }
    }
    const auto st = s.stats();
    EXPECT_EQ(st.submitted, count) << "trial=" << trial;
    EXPECT_EQ(st.completed, completed) << "trial=" << trial;
    EXPECT_EQ(st.shed, shed) << "trial=" << trial;
    EXPECT_EQ(st.rejected, rejected) << "trial=" << trial;
    EXPECT_EQ(completed + shed + rejected, count) << "trial=" << trial;
    EXPECT_GT(completed, 0u) << "trial=" << trial;
  }
}

TEST(Fuzz, BluesteinMatchesNaiveDftOddSizes) {
  Rng rng(2028);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 3 + rng.next_below(500);
    cvec x(n);
    for (auto& v : x) v = cplx{rng.next_normal(), rng.next_normal()};
    const cvec got = fft::fft(x);
    const cvec expect = fft::dft_naive(x);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(std::abs(got[i] - expect[i]), 0.0,
                  1e-7 * std::sqrt(double(n)))
          << "trial=" << trial << " n=" << n << " i=" << i;
  }
}

}  // namespace
}  // namespace cusfft
