// Tests for the GPU sparse FFT (the paper's contribution): end-to-end
// recovery, differential agreement with the serial reference, every
// optimization/ablation path, and stats plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "cusfft/plan.hpp"
#include "fft/fft.hpp"
#include "sfft/inverse.hpp"
#include "sfft/serial.hpp"
#include "signal/generate.hpp"

namespace cusfft::gpu {
namespace {

sfft::Params make_params(std::size_t n, std::size_t k) {
  sfft::Params p;
  p.n = n;
  p.k = k;
  p.seed = 4242;
  return p;
}

struct Workload {
  signal::SparseSignal sig;
  cvec oracle;
};

Workload make_workload(std::size_t n, std::size_t k, u64 seed) {
  Rng rng(seed);
  Workload w;
  w.sig = signal::make_sparse_signal(n, k, rng);
  w.oracle = densify(w.sig.truth, n);
  return w;
}

class GpuConfigs : public ::testing::TestWithParam<const char*> {
 protected:
  Options options() const {
    const std::string name = GetParam();
    if (name == "baseline") return Options::baseline();
    if (name == "optimized") return Options::optimized();
    if (name == "async_only") {
      Options o;
      o.binning = Binning::kAsyncTransform;
      return o;
    }
    if (name == "fastsel_only") {
      Options o;
      o.fast_selection = true;
      return o;
    }
    if (name == "unbatched") {
      Options o;
      o.batched_fft = false;
      return o;
    }
    if (name == "atomic_hist") {
      Options o;
      o.binning = Binning::kGlobalAtomicHist;
      return o;
    }
    if (name == "shared_hist") {
      Options o;
      o.binning = Binning::kSharedHist;
      return o;
    }
    if (name == "bitonic") {
      Options o;
      o.sort_algo = custhrust::SortAlgo::kBitonic;
      return o;
    }
    if (name == "with_transfer") {
      Options o = Options::optimized();
      o.include_transfer = true;
      return o;
    }
    throw std::runtime_error("unknown config");
  }
};

TEST_P(GpuConfigs, RecoversExactlySparseSignal) {
  const std::size_t n = 1 << 14, k = 16;
  auto w = make_workload(n, k, 99);
  cusim::Device dev;
  GpuPlan plan(dev, make_params(n, k), options());
  auto got = plan.execute(w.sig.x);
  EXPECT_DOUBLE_EQ(location_recall(got, w.oracle, k), 1.0) << GetParam();
  EXPECT_LT(max_error_at_locs(got, w.oracle), 1e-2) << GetParam();
  EXPECT_LT(l1_error_per_coeff(got, w.oracle, k), 1e-2) << GetParam();
}

TEST_P(GpuConfigs, AgreesWithSerialReference) {
  const std::size_t n = 1 << 13, k = 8;
  auto w = make_workload(n, k, 123);
  const sfft::Params p = make_params(n, k);

  sfft::SerialPlan serial(p);
  const auto cpu = serial.execute(w.sig.x);

  cusim::Device dev;
  GpuPlan plan(dev, p, options());
  const auto gpu = plan.execute(w.sig.x);

  if (!options().fast_selection) {
    // Same seed => same permutations and the same sort&select cutoff =>
    // identical candidate sets; values agree to FFT rounding.
    ASSERT_EQ(gpu.size(), cpu.size()) << GetParam();
    for (std::size_t i = 0; i < gpu.size(); ++i) {
      EXPECT_EQ(gpu[i].loc, cpu[i].loc) << GetParam() << " i=" << i;
      EXPECT_NEAR(std::abs(gpu[i].val - cpu[i].val), 0.0, 1e-6)
          << GetParam() << " i=" << i;
    }
  } else {
    // Fast selection picks a threshold-based (not top-c) bucket set, so
    // only the coefficients both backends report must agree.
    std::map<u64, cplx> by_loc;
    for (const auto& c : cpu) by_loc[c.loc] = c.val;
    std::size_t common = 0;
    for (const auto& g : gpu) {
      auto it = by_loc.find(g.loc);
      if (it == by_loc.end()) continue;
      ++common;
      EXPECT_NEAR(std::abs(g.val - it->second), 0.0, 1e-6)
          << GetParam() << " loc=" << g.loc;
    }
    EXPECT_GE(common, w.sig.truth.size()) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, GpuConfigs,
                         ::testing::Values("baseline", "optimized",
                                           "async_only", "fastsel_only",
                                           "unbatched", "atomic_hist",
                                           "shared_hist", "bitonic",
                                           "with_transfer"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(GpuPlan, StatsPopulated) {
  const std::size_t n = 1 << 13, k = 8;
  auto w = make_workload(n, k, 7);
  cusim::Device dev;
  GpuPlan plan(dev, make_params(n, k), Options::baseline());
  GpuExecStats stats;
  auto got = plan.execute(w.sig.x, &stats);
  EXPECT_GT(stats.model_ms, 0.0);
  EXPECT_GT(stats.host_ms, 0.0);
  EXPECT_GE(stats.candidates, got.size());
  // Every paper step shows up in the per-step profile.
  EXPECT_GT(stats.step_model_ms.at(sfft::step::kPermFilter), 0.0);
  EXPECT_GT(stats.step_model_ms.at(sfft::step::kSubFft), 0.0);
  EXPECT_GT(stats.step_model_ms.at(sfft::step::kCutoff), 0.0);
  EXPECT_GT(stats.step_model_ms.at(sfft::step::kLocRecover), 0.0);
  EXPECT_GT(stats.step_model_ms.at(sfft::step::kEstimate), 0.0);
}

TEST(GpuPlan, DeterministicAcrossExecutes) {
  const std::size_t n = 1 << 13, k = 8;
  auto w = make_workload(n, k, 11);
  cusim::Device dev;
  GpuPlan plan(dev, make_params(n, k), Options::optimized());
  const auto a = plan.execute(w.sig.x);
  const auto b = plan.execute(w.sig.x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].loc, b[i].loc);
    EXPECT_EQ(a[i].val, b[i].val);
  }
}

TEST(GpuPlan, TransferInclusionRaisesModelTime) {
  const std::size_t n = 1 << 14, k = 8;
  auto w = make_workload(n, k, 13);
  Options with = Options::optimized();
  with.include_transfer = true;
  Options without = Options::optimized();

  cusim::Device dev;
  GpuPlan pw(dev, make_params(n, k), with);
  GpuExecStats sw;
  pw.execute(w.sig.x, &sw);

  cusim::Device dev2;
  GpuPlan po(dev2, make_params(n, k), without);
  GpuExecStats so;
  po.execute(w.sig.x, &so);

  const double h2d_ms =
      (n * 16.0 / dev.spec().pcie_bandwidth_Bps) * 1e3;
  EXPECT_GT(sw.model_ms, so.model_ms + 0.5 * h2d_ms);
}

TEST(GpuPlan, IndexMappingAblationIsCatastrophicallySlow) {
  // Without index mapping the binning runs as one dependent chain — the
  // modeled time must blow up by orders of magnitude (the paper's Fig. 1/3
  // motivation).
  const std::size_t n = 1 << 13, k = 8;
  auto w = make_workload(n, k, 17);
  Options serial_chain;
  serial_chain.binning = Binning::kSerialChain;

  cusim::Device dev;
  GpuPlan chained(dev, make_params(n, k), serial_chain);
  GpuExecStats sc;
  const auto got = chained.execute(w.sig.x, &sc);
  EXPECT_DOUBLE_EQ(location_recall(got, w.oracle, k), 1.0);

  cusim::Device dev2;
  GpuPlan mapped(dev2, make_params(n, k), Options::baseline());
  GpuExecStats sm;
  mapped.execute(w.sig.x, &sm);

  EXPECT_GT(sc.step_model_ms.at(sfft::step::kPermFilter),
            20.0 * sm.step_model_ms.at(sfft::step::kPermFilter));
}

TEST(GpuPlan, FastSelectionCheaperThanSort) {
  const std::size_t n = 1 << 16, k = 32;
  auto w = make_workload(n, k, 19);
  cusim::Device dev;
  GpuPlan sorted(dev, make_params(n, k), Options::baseline());
  GpuExecStats ss;
  sorted.execute(w.sig.x, &ss);

  cusim::Device dev2;
  Options fast;
  fast.fast_selection = true;
  GpuPlan selected(dev2, make_params(n, k), fast);
  GpuExecStats sf;
  selected.execute(w.sig.x, &sf);

  EXPECT_LT(sf.step_model_ms.at(sfft::step::kCutoff),
            ss.step_model_ms.at(sfft::step::kCutoff));
}

TEST(GpuPlan, BatchedFftFewerLaunchesThanUnbatched) {
  const std::size_t n = 1 << 13, k = 8;
  auto w = make_workload(n, k, 23);
  cusim::Device dev;
  GpuPlan batched(dev, make_params(n, k), Options::baseline());
  batched.execute(w.sig.x);
  const std::size_t batched_launches =
      dev.report().at("cufft_stage").launches;

  cusim::Device dev2;
  Options ub;
  ub.batched_fft = false;
  GpuPlan unbatched(dev2, make_params(n, k), ub);
  unbatched.execute(w.sig.x);
  const std::size_t unbatched_launches =
      dev2.report().at("cufft_stage").launches;

  EXPECT_GT(unbatched_launches, 2 * batched_launches);
}

TEST(GpuPlan, SharedHistogramRejectedWhenBExceedsSharedMemory) {
  // Section IV.C: at n=2^18, k=1000 the paper computes B ~ 3816 buckets of
  // complex double — more than 48 KB of shared memory can hold. Our plan
  // must refuse exactly that configuration.
  cusim::Device dev;
  sfft::Params p = make_params(1 << 18, 1000);
  Options o;
  o.binning = Binning::kSharedHist;
  EXPECT_THROW(GpuPlan(dev, p, o), std::invalid_argument);
  // A small-B configuration fits and is accepted.
  GpuPlan ok(dev, make_params(1 << 14, 8), o);
  EXPECT_LE(ok.buckets() * sizeof(cplx), dev.spec().shared_mem_per_sm);
}

TEST(GpuPlan, RejectsPlansExceedingDeviceMemory) {
  // A 2^28-point plan needs > 8 GB of device buffers; the Table-I K20x has
  // 6 GB, so plan creation must fail like cudaMalloc would — and before
  // touching host memory (this test must not OOM the host).
  cusim::Device dev;
  EXPECT_THROW(GpuPlan(dev, make_params(1ULL << 28, 1000),
                       Options::optimized()),
               std::runtime_error);
}

TEST(GpuPlan, RejectsBadInput) {
  cusim::Device dev;
  GpuPlan plan(dev, make_params(1 << 13, 8), Options::baseline());
  cvec wrong(1 << 12);
  EXPECT_THROW(plan.execute(wrong), std::invalid_argument);
  sfft::Params too_many_loops = make_params(1 << 13, 8);
  too_many_loops.loops_loc = 20;
  too_many_loops.loops_est = 20;
  EXPECT_THROW(GpuPlan(dev, too_many_loops, Options::baseline()),
               std::invalid_argument);
}

TEST(GpuPlan, PhaseSpansCoverModelTime) {
  const std::size_t n = 1 << 13, k = 8;
  auto w = make_workload(n, k, 29);
  cusim::Device dev;
  GpuPlan plan(dev, make_params(n, k), Options::optimized());
  GpuExecStats stats;
  plan.execute(w.sig.x, &stats);
  ASSERT_EQ(stats.phase_span_ms.size(), 4u);
  double sum = 0;
  for (const auto& [name, ms] : stats.phase_span_ms) {
    EXPECT_GE(ms, -1e-9) << name;
    sum += ms;
  }
  EXPECT_NEAR(sum, stats.model_ms, stats.model_ms * 1e-6);
  // Binning + FFT dominates in this regime.
  EXPECT_GT(stats.phase_span_ms.at("b comb+bin+fft"),
            stats.phase_span_ms.at("a transfer+reset"));
}


TEST(GpuPlan, SparseInverseFindsTimePeaks) {
  const std::size_t n = 1 << 13;
  cvec x(n, cplx{});
  x[123] = {2.0, 0.0};
  x[4567] = {0.0, -1.5};
  const cvec Y = fft::fft(x);

  cusim::Device dev;
  GpuPlan plan(dev, make_params(n, 2), Options::optimized());
  const auto got = sfft::sparse_inverse_with(plan, n, Y);
  bool found_a = false, found_b = false;
  for (const auto& c : got) {
    if (c.loc == 123 && std::abs(c.val - x[123]) < 1e-6) found_a = true;
    if (c.loc == 4567 && std::abs(c.val - x[4567]) < 1e-6) found_b = true;
  }
  EXPECT_TRUE(found_a);
  EXPECT_TRUE(found_b);
}


TEST(StepOfKernel, MapsEveryFamily) {
  EXPECT_STREQ(step_of_kernel("pf_partition"), sfft::step::kPermFilter);
  EXPECT_STREQ(step_of_kernel("pf_remap"), sfft::step::kPermFilter);
  EXPECT_STREQ(step_of_kernel("cufft_stage"), sfft::step::kSubFft);
  EXPECT_STREQ(step_of_kernel("radix_scatter"), sfft::step::kCutoff);
  EXPECT_STREQ(step_of_kernel("fast_select"), sfft::step::kCutoff);
  EXPECT_STREQ(step_of_kernel("loc_recover"), sfft::step::kLocRecover);
  EXPECT_STREQ(step_of_kernel("estimate"), sfft::step::kEstimate);
  EXPECT_STREQ(step_of_kernel("h2d"), "0 transfer");
  EXPECT_STREQ(step_of_kernel("mystery"), "other");
}

}  // namespace
}  // namespace cusfft::gpu
