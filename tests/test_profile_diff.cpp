// profile_diff's library surface: summarize_profile_json aggregates a
// profiler artifact's embedded structured block per kernel/phase name, and
// diff_profiles turns two summaries into gated regression fractions (the
// contract tools/profile_diff and the CI smoke job rely on).
#include <gtest/gtest.h>

#include <string>

#include "profile_check_lib.hpp"

namespace cusfft::tools {
namespace {

std::string bare_profile(double model_ms, const std::string& kernels,
                         const std::string& phases = "") {
  return "{\"model_ms\":" + std::to_string(model_ms) +
         ",\"kernels\":[" + kernels + "],\"phases\":[" + phases + "]}";
}

std::string kernel(const char* name, double launches, double solo_ms) {
  return std::string("{\"name\":\"") + name +
         "\",\"launches\":" + std::to_string(launches) +
         ",\"solo_ms\":" + std::to_string(solo_ms) + "}";
}

TEST(ProfileSummary, ParsesBareProfileAndEmbeddedBlock) {
  const std::string bare =
      bare_profile(10.0, kernel("binning", 4, 2.5) + "," +
                             kernel("binning", 4, 1.5) + "," +
                             kernel("estimate", 2, 3.0),
                   "{\"name\":\"a transfer\",\"span_ms\":1.25},"
                   "{\"name\":\"a transfer\",\"span_ms\":0.75}");
  const ProfileSummary s = summarize_profile_json(bare);
  ASSERT_TRUE(s.ok) << s.error;
  EXPECT_DOUBLE_EQ(s.model_ms, 10.0);
  // Same-name kernels (per-device lanes, repeated phases) aggregate.
  EXPECT_DOUBLE_EQ(s.kernels.at("binning").solo_ms, 4.0);
  EXPECT_DOUBLE_EQ(s.kernels.at("binning").launches, 8.0);
  EXPECT_DOUBLE_EQ(s.kernels.at("estimate").solo_ms, 3.0);
  EXPECT_DOUBLE_EQ(s.phase_ms.at("a transfer"), 2.0);

  // Chrome-trace artifact shape: the block lives under "profile".
  const std::string trace =
      "{\"traceEvents\":[],\"profile\":" + bare + "}";
  const ProfileSummary s2 = summarize_profile_json(trace);
  ASSERT_TRUE(s2.ok) << s2.error;
  EXPECT_DOUBLE_EQ(s2.model_ms, 10.0);
  EXPECT_DOUBLE_EQ(s2.kernels.at("binning").solo_ms, 4.0);
}

TEST(ProfileSummary, RejectsDocumentsWithoutProfileBlock) {
  EXPECT_FALSE(summarize_profile_json("{\"traceEvents\":[]}").ok);
  EXPECT_FALSE(summarize_profile_json("not json").ok);
}

TEST(ProfileDiff, ImprovementNeverFails) {
  const ProfileSummary base = summarize_profile_json(
      bare_profile(10.0, kernel("binning", 4, 6.0)));
  const ProfileSummary next = summarize_profile_json(
      bare_profile(5.0, kernel("binning", 4, 3.0)));
  const ProfileDiff d = diff_profiles(base, next);
  EXPECT_LT(d.makespan_frac, 0);
  EXPECT_DOUBLE_EQ(d.worst_regression_frac, 0.0);
}

TEST(ProfileDiff, MakespanRegressionGates) {
  const ProfileSummary base = summarize_profile_json(
      bare_profile(10.0, kernel("binning", 4, 6.0)));
  const ProfileSummary next = summarize_profile_json(
      bare_profile(12.0, kernel("binning", 4, 6.0)));
  const ProfileDiff d = diff_profiles(base, next);
  EXPECT_NEAR(d.worst_regression_frac, 0.2, 1e-12);
}

TEST(ProfileDiff, KernelRegressionAboveFloorGates) {
  const ProfileSummary base = summarize_profile_json(bare_profile(
      10.0, kernel("binning", 4, 4.0) + "," + kernel("tiny", 1, 0.001)));
  const ProfileSummary next = summarize_profile_json(bare_profile(
      10.0, kernel("binning", 4, 6.0) + "," + kernel("tiny", 1, 0.002)));
  const ProfileDiff d = diff_profiles(base, next);
  // binning +50% gates; tiny doubled but sits under the 0.5% noise floor
  // (0.05 ms of the 10 ms makespan) so it never counts.
  EXPECT_NEAR(d.worst_regression_frac, 0.5, 1e-12);
  EXPECT_NEAR(d.noise_floor_ms, 0.05, 1e-12);
  ASSERT_FALSE(d.kernels.empty());
  EXPECT_EQ(d.kernels[0].name, "binning");  // sorted by |delta|
}

TEST(ProfileDiff, NewExpensiveKernelIsARegression) {
  const ProfileSummary base = summarize_profile_json(
      bare_profile(10.0, kernel("binning", 4, 6.0)));
  const ProfileSummary next = summarize_profile_json(bare_profile(
      10.0, kernel("binning", 4, 6.0) + "," + kernel("extra", 2, 1.0)));
  const ProfileDiff d = diff_profiles(base, next);
  // A kernel appearing from nothing has no base to scale by: sentinel frac
  // far above any threshold.
  EXPECT_GE(d.worst_regression_frac, 1e9);
}

TEST(ProfileDiff, ExplicitNoiseFloorOverrides) {
  const ProfileSummary base = summarize_profile_json(
      bare_profile(10.0, kernel("tiny", 1, 0.001)));
  const ProfileSummary next = summarize_profile_json(
      bare_profile(10.0, kernel("tiny", 1, 0.002)));
  // Floor 0: even the sub-floor kernel gates now.
  const ProfileDiff strict = diff_profiles(base, next, 0.0);
  EXPECT_NEAR(strict.worst_regression_frac, 1.0, 1e-9);
  const ProfileDiff lax = diff_profiles(base, next, 1.0);
  EXPECT_DOUBLE_EQ(lax.worst_regression_frac, 0.0);
}

TEST(ProfileDiff, PhasesReportedNotGated) {
  const ProfileSummary base = summarize_profile_json(bare_profile(
      10.0, kernel("binning", 4, 6.0),
      "{\"name\":\"a transfer\",\"span_ms\":1.0}"));
  const ProfileSummary next = summarize_profile_json(bare_profile(
      10.0, kernel("binning", 4, 6.0),
      "{\"name\":\"a transfer\",\"span_ms\":5.0}"));
  const ProfileDiff d = diff_profiles(base, next);
  ASSERT_EQ(d.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(d.phases[0].delta_ms, 4.0);
  // The phase quadrupled but phases re-slice time kernels already cover.
  EXPECT_DOUBLE_EQ(d.worst_regression_frac, 0.0);
}

}  // namespace
}  // namespace cusfft::tools
