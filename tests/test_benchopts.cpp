// Tests for the bench harness options: CLI parsing, env overrides, and the
// paper-regime parameter derivation the figure benches share.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common.hpp"
#include "core/json_lite.hpp"

namespace cusfft::bench {
namespace {

TEST(BenchOpts, DefaultsAndCliOverrides) {
  const char* argv[] = {"bench",      "--min-logn", "19", "--max-logn",
                        "21",         "--k",        "64", "--seed",
                        "777",        "--fixed-logn", "20"};
  const auto o = BenchOpts::parse(static_cast<int>(std::size(argv)),
                                  const_cast<char**>(argv));
  EXPECT_EQ(o.min_logn, 19u);
  EXPECT_EQ(o.max_logn, 21u);
  EXPECT_EQ(o.k, 64u);
  EXPECT_EQ(o.seed, 777u);
  EXPECT_EQ(o.fixed_logn, 20u);
}

TEST(BenchOpts, DevicesFlagEnvAndClamp) {
  ::unsetenv("CUSFFT_DEVICES");
  const char* none[] = {"bench"};
  EXPECT_EQ(BenchOpts::parse(1, const_cast<char**>(none)).devices, 1u);

  const char* argv[] = {"bench", "--devices", "4"};
  EXPECT_EQ(BenchOpts::parse(static_cast<int>(std::size(argv)),
                             const_cast<char**>(argv))
                .devices,
            4u);

  ::setenv("CUSFFT_DEVICES", "2", 1);
  EXPECT_EQ(BenchOpts::parse(1, const_cast<char**>(none)).devices, 2u);
  ::unsetenv("CUSFFT_DEVICES");

  // 0 devices is meaningless: clamp back to one.
  const char* zero[] = {"bench", "--devices", "0"};
  EXPECT_EQ(BenchOpts::parse(static_cast<int>(std::size(zero)),
                             const_cast<char**>(zero))
                .devices,
            1u);
}

TEST(BenchOpts, NodesFlagEnvAndClamp) {
  ::unsetenv("CUSFFT_NODES");
  const char* none[] = {"bench"};
  EXPECT_EQ(BenchOpts::parse(1, const_cast<char**>(none)).nodes, 1u);

  const char* argv[] = {"bench", "--nodes", "4"};
  EXPECT_EQ(BenchOpts::parse(static_cast<int>(std::size(argv)),
                             const_cast<char**>(argv))
                .nodes,
            4u);

  // The environment is re-read on every parse (no latching).
  ::setenv("CUSFFT_NODES", "2", 1);
  EXPECT_EQ(BenchOpts::parse(1, const_cast<char**>(none)).nodes, 2u);
  ::setenv("CUSFFT_NODES", "3", 1);
  EXPECT_EQ(BenchOpts::parse(1, const_cast<char**>(none)).nodes, 3u);
  ::unsetenv("CUSFFT_NODES");
  EXPECT_EQ(BenchOpts::parse(1, const_cast<char**>(none)).nodes, 1u);

  // 0 nodes is meaningless: clamp back to one.
  const char* zero[] = {"bench", "--nodes", "0"};
  EXPECT_EQ(BenchOpts::parse(static_cast<int>(std::size(zero)),
                             const_cast<char**>(zero))
                .nodes,
            1u);
}

TEST(BenchOpts, NicGbpsFlagAndEnv) {
  ::unsetenv("CUSFFT_NIC_GBPS");
  const char* none[] = {"bench"};
  EXPECT_DOUBLE_EQ(BenchOpts::parse(1, const_cast<char**>(none)).nic_gbps,
                   0.0);  // 0 = NicModel default

  const char* argv[] = {"bench", "--nic-gbps", "40"};
  EXPECT_DOUBLE_EQ(BenchOpts::parse(static_cast<int>(std::size(argv)),
                                    const_cast<char**>(argv))
                       .nic_gbps,
                   40.0);

  ::setenv("CUSFFT_NIC_GBPS", "12.5", 1);
  EXPECT_DOUBLE_EQ(BenchOpts::parse(1, const_cast<char**>(none)).nic_gbps,
                   12.5);
  // The flag wins over the environment (flags parse after env).
  EXPECT_DOUBLE_EQ(BenchOpts::parse(static_cast<int>(std::size(argv)),
                                    const_cast<char**>(argv))
                       .nic_gbps,
                   40.0);
  ::unsetenv("CUSFFT_NIC_GBPS");
}

TEST(BenchOpts, MaxClampedToMin) {
  const char* argv[] = {"bench", "--min-logn", "22", "--max-logn", "18"};
  const auto o = BenchOpts::parse(static_cast<int>(std::size(argv)),
                                  const_cast<char**>(argv));
  EXPECT_EQ(o.max_logn, o.min_logn);
}

TEST(BenchOpts, EnvOverrides) {
  ::setenv("CUSFFT_K", "123", 1);
  ::setenv("CUSFFT_OUT_DIR", "somewhere", 1);
  const char* argv[] = {"bench"};
  const auto o = BenchOpts::parse(1, const_cast<char**>(argv));
  EXPECT_EQ(o.k, 123u);
  EXPECT_EQ(o.out_dir, "somewhere");
  ::unsetenv("CUSFFT_K");
  ::unsetenv("CUSFFT_OUT_DIR");
}

TEST(BenchOpts, ProfileFlagRegistersPath) {
  ::unsetenv("CUSFFT_PROFILE");
  const char* argv[] = {"bench", "--profile", "/tmp/trace.json"};
  const auto o = BenchOpts::parse(static_cast<int>(std::size(argv)),
                                  const_cast<char**>(argv));
  EXPECT_EQ(o.profile, "/tmp/trace.json");
  EXPECT_EQ(profile_path(), "/tmp/trace.json");

  // No flag, no env: parse() clears the registered path again.
  const char* none[] = {"bench"};
  const auto o2 = BenchOpts::parse(1, const_cast<char**>(none));
  EXPECT_TRUE(o2.profile.empty());
  EXPECT_TRUE(profile_path().empty());
}

TEST(BenchOpts, JsonFlagAndEnv) {
  ::unsetenv("CUSFFT_JSON");
  const char* argv[] = {"bench", "--json", "/tmp/results.json"};
  EXPECT_EQ(BenchOpts::parse(static_cast<int>(std::size(argv)),
                             const_cast<char**>(argv))
                .json,
            "/tmp/results.json");

  ::setenv("CUSFFT_JSON", "/tmp/env_results.json", 1);
  const char* none[] = {"bench"};
  EXPECT_EQ(BenchOpts::parse(1, const_cast<char**>(none)).json,
            "/tmp/env_results.json");
  ::unsetenv("CUSFFT_JSON");

  const char* cleared[] = {"bench"};
  EXPECT_TRUE(BenchOpts::parse(1, const_cast<char**>(cleared)).json.empty());
}

TEST(BenchJson, WriteResultsRoundTripsThroughJsonLite) {
  const std::string path = "/tmp/cusfft_bench_json_test.json";
  ASSERT_TRUE(write_results_json(
      path, "throughput",
      {{"execute", 12.5, 3.25}, {"many_pipelined", 10.0, 2.5}}));

  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(ss.str(), doc, &err)) << err;
  EXPECT_EQ(doc.string_or("bench", ""), "throughput");
  const json::Value* results = doc.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array.size(), 2u);
  EXPECT_EQ(results->array[0].string_or("name", ""), "execute");
  EXPECT_DOUBLE_EQ(results->array[0].number_or("host_ms", 0), 12.5);
  EXPECT_DOUBLE_EQ(results->array[1].number_or("model_ms", 0), 2.5);
  std::remove(path.c_str());
}

TEST(BenchOpts, MetricsFlagAndEnv) {
  ::unsetenv("CUSFFT_METRICS");
  const char* none[] = {"bench"};
  EXPECT_TRUE(
      BenchOpts::parse(1, const_cast<char**>(none)).metrics.empty());

  const char* argv[] = {"bench", "--metrics", "/tmp/fleet_metrics.json"};
  EXPECT_EQ(BenchOpts::parse(static_cast<int>(std::size(argv)),
                             const_cast<char**>(argv))
                .metrics,
            "/tmp/fleet_metrics.json");

  ::setenv("CUSFFT_METRICS", "/tmp/env_metrics.json", 1);
  EXPECT_EQ(BenchOpts::parse(1, const_cast<char**>(none)).metrics,
            "/tmp/env_metrics.json");
  // The flag wins over the environment (flags parse after env).
  EXPECT_EQ(BenchOpts::parse(static_cast<int>(std::size(argv)),
                             const_cast<char**>(argv))
                .metrics,
            "/tmp/fleet_metrics.json");
  ::unsetenv("CUSFFT_METRICS");
}

TEST(BenchJson, WriteResultsEmbedsMetricsSnapshot) {
  const std::string path = "/tmp/cusfft_bench_metrics_embed.json";
  const std::string metrics =
      "{\"schema\": \"cusfft-metrics-v1\", \"counters\": "
      "{\"cusfft_executes_total\": 3}, \"gauges\": {}, \"histograms\": {}}";
  ASSERT_TRUE(
      write_results_json(path, "throughput", {{"execute", 1.0, 0.5}},
                         metrics));

  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(ss.str(), doc, &err)) << err;
  const json::Value* m = doc.find("metrics");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->string_or("schema", ""), "cusfft-metrics-v1");
  const json::Value* counters = m->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->number_or("cusfft_executes_total", 0), 3);
  std::remove(path.c_str());
}

TEST(BenchOpts, ProfileEnvIsOverriddenByFlag) {
  ::setenv("CUSFFT_PROFILE", "/tmp/env.json", 1);
  const char* envonly[] = {"bench"};
  EXPECT_EQ(BenchOpts::parse(1, const_cast<char**>(envonly)).profile,
            "/tmp/env.json");
  const char* argv[] = {"bench", "--profile", "/tmp/cli.json"};
  EXPECT_EQ(BenchOpts::parse(static_cast<int>(std::size(argv)),
                             const_cast<char**>(argv))
                .profile,
            "/tmp/cli.json");
  ::unsetenv("CUSFFT_PROFILE");
}

TEST(BenchOpts, MixedFlagAndEnv) {
  ::unsetenv("CUSFFT_MIXED");
  const char* none[] = {"bench"};
  EXPECT_FALSE(BenchOpts::parse(1, const_cast<char**>(none)).mixed);

  const char* argv[] = {"bench", "--mixed"};
  EXPECT_TRUE(BenchOpts::parse(static_cast<int>(std::size(argv)),
                               const_cast<char**>(argv))
                  .mixed);

  ::setenv("CUSFFT_MIXED", "1", 1);
  EXPECT_TRUE(BenchOpts::parse(1, const_cast<char**>(none)).mixed);
  ::setenv("CUSFFT_MIXED", "0", 1);
  EXPECT_FALSE(BenchOpts::parse(1, const_cast<char**>(none)).mixed);
  ::unsetenv("CUSFFT_MIXED");
}

// Malformed input is a usage error (exit 2 with the usage text on
// stderr), never a silently degenerate run. The old parser let strtoull
// turn CUSFFT_K=abc into k=0 and dropped unknown/misplaced flags.
using BenchOptsDeathTest = ::testing::Test;

TEST(BenchOptsDeathTest, MalformedEnvNumberExits) {
  ::setenv("CUSFFT_K", "abc", 1);
  const char* argv[] = {"bench"};
  EXPECT_EXIT(BenchOpts::parse(1, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "CUSFFT_K");
  ::unsetenv("CUSFFT_K");
}

TEST(BenchOptsDeathTest, MalformedCliValueExits) {
  const char* argv[] = {"bench", "--k", "12x"};
  EXPECT_EXIT(BenchOpts::parse(static_cast<int>(std::size(argv)),
                               const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "--k");
}

TEST(BenchOptsDeathTest, NegativeValueExits) {
  const char* argv[] = {"bench", "--devices", "-3"};
  EXPECT_EXIT(BenchOpts::parse(static_cast<int>(std::size(argv)),
                               const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "non-negative");
}

TEST(BenchOptsDeathTest, MalformedNodesEnvExits) {
  ::setenv("CUSFFT_NODES", "two", 1);
  const char* argv[] = {"bench"};
  EXPECT_EXIT(BenchOpts::parse(1, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "CUSFFT_NODES");
  ::unsetenv("CUSFFT_NODES");
}

TEST(BenchOptsDeathTest, NegativeNodesFlagExits) {
  const char* argv[] = {"bench", "--nodes", "-2"};
  EXPECT_EXIT(BenchOpts::parse(static_cast<int>(std::size(argv)),
                               const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "non-negative");
}

TEST(BenchOptsDeathTest, MalformedNicGbpsFlagExits) {
  const char* argv[] = {"bench", "--nic-gbps", "fast"};
  EXPECT_EXIT(BenchOpts::parse(static_cast<int>(std::size(argv)),
                               const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "--nic-gbps");
}

TEST(BenchOptsDeathTest, NegativeNicGbpsEnvExits) {
  ::setenv("CUSFFT_NIC_GBPS", "-100", 1);
  const char* argv[] = {"bench"};
  EXPECT_EXIT(BenchOpts::parse(1, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "positive number");
  ::unsetenv("CUSFFT_NIC_GBPS");
}

TEST(BenchOptsDeathTest, TrailingFlagMissingValueExits) {
  const char* argv[] = {"bench", "--seed"};
  EXPECT_EXIT(BenchOpts::parse(static_cast<int>(std::size(argv)),
                               const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "missing value");
}

TEST(BenchOptsDeathTest, UnknownFlagExits) {
  const char* argv[] = {"bench", "--frobnicate", "1"};
  EXPECT_EXIT(BenchOpts::parse(static_cast<int>(std::size(argv)),
                               const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(BenchOptsDeathTest, EmptyMetricsEnvExits) {
  ::setenv("CUSFFT_METRICS", "", 1);
  const char* argv[] = {"bench"};
  EXPECT_EXIT(BenchOpts::parse(1, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "CUSFFT_METRICS");
  ::unsetenv("CUSFFT_METRICS");
}

TEST(BenchOptsDeathTest, MetricsFlagMissingValueExits) {
  const char* argv[] = {"bench", "--metrics"};
  EXPECT_EXIT(BenchOpts::parse(static_cast<int>(std::size(argv)),
                               const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "missing value");
}

TEST(BenchOptsDeathTest, EmptyMetricsFlagValueExits) {
  const char* argv[] = {"bench", "--metrics", ""};
  EXPECT_EXIT(BenchOpts::parse(static_cast<int>(std::size(argv)),
                               const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "non-empty path");
}

TEST(BenchOpts, ServeFlagEnvAndPaths) {
  ::unsetenv("CUSFFT_SERVE");
  ::unsetenv("CUSFFT_SERVE_IN");
  ::unsetenv("CUSFFT_SERVE_OUT");
  const char* none[] = {"bench"};
  EXPECT_FALSE(BenchOpts::parse(1, const_cast<char**>(none)).serve);

  const char* argv[] = {"bench",      "--serve",     "--serve-in",
                        "/tmp/in.tr", "--serve-out", "/tmp/out.tr"};
  const auto o = BenchOpts::parse(static_cast<int>(std::size(argv)),
                                  const_cast<char**>(argv));
  EXPECT_TRUE(o.serve);
  EXPECT_EQ(o.serve_in, "/tmp/in.tr");
  EXPECT_EQ(o.serve_out, "/tmp/out.tr");

  ::setenv("CUSFFT_SERVE", "1", 1);
  ::setenv("CUSFFT_SERVE_IN", "/tmp/env_in.tr", 1);
  EXPECT_TRUE(BenchOpts::parse(1, const_cast<char**>(none)).serve);
  EXPECT_EQ(BenchOpts::parse(1, const_cast<char**>(none)).serve_in,
            "/tmp/env_in.tr");
  ::setenv("CUSFFT_SERVE", "0", 1);
  EXPECT_FALSE(BenchOpts::parse(1, const_cast<char**>(none)).serve);
  ::unsetenv("CUSFFT_SERVE");
  ::unsetenv("CUSFFT_SERVE_IN");
}

// CUSFFT_SERVE_* audit: serve_config_or_exit re-reads the environment on
// every call (no latching) and turns the library's typed parse error into
// the bench's exit-2 usage error.
TEST(ServeConfig, OrExitAppliesEnvUnlatched) {
  ::setenv("CUSFFT_SERVE_MAX_BATCH", "5", 1);
  EXPECT_EQ(serve_config_or_exit(serve::ServerConfig{}).max_batch, 5u);
  ::setenv("CUSFFT_SERVE_MAX_BATCH", "6", 1);
  EXPECT_EQ(serve_config_or_exit(serve::ServerConfig{}).max_batch, 6u);
  ::unsetenv("CUSFFT_SERVE_MAX_BATCH");
  EXPECT_EQ(serve_config_or_exit(serve::ServerConfig{}).max_batch,
            serve::ServerConfig{}.max_batch);
}

TEST(BenchOptsDeathTest, MalformedServeMaxBatchExits) {
  ::setenv("CUSFFT_SERVE_MAX_BATCH", "abc", 1);
  EXPECT_EXIT(serve_config_or_exit(serve::ServerConfig{}),
              ::testing::ExitedWithCode(2), "CUSFFT_SERVE_MAX_BATCH");
  ::unsetenv("CUSFFT_SERVE_MAX_BATCH");
}

TEST(BenchOptsDeathTest, NegativeServeWaitExits) {
  ::setenv("CUSFFT_SERVE_MAX_WAIT_MS", "-2", 1);
  EXPECT_EXIT(serve_config_or_exit(serve::ServerConfig{}),
              ::testing::ExitedWithCode(2), "CUSFFT_SERVE_MAX_WAIT_MS");
  ::unsetenv("CUSFFT_SERVE_MAX_WAIT_MS");
}

TEST(BenchOptsDeathTest, ZeroServeDevicesExits) {
  // The value parses but fails validate(): still a usage error, with the
  // library's message naming the rejected knob.
  ::setenv("CUSFFT_SERVE_DEVICES", "0", 1);
  EXPECT_EXIT(serve_config_or_exit(serve::ServerConfig{}),
              ::testing::ExitedWithCode(2), "devices must be >= 1");
  ::unsetenv("CUSFFT_SERVE_DEVICES");
}

TEST(BenchOptsDeathTest, MalformedServeQueueDepthExits) {
  ::setenv("CUSFFT_SERVE_QUEUE_DEPTH", "1.5", 1);
  EXPECT_EXIT(serve_config_or_exit(serve::ServerConfig{}),
              ::testing::ExitedWithCode(2), "CUSFFT_SERVE_QUEUE_DEPTH");
  ::unsetenv("CUSFFT_SERVE_QUEUE_DEPTH");
}

TEST(BenchOptsDeathTest, EmptyServeOutFlagValueExits) {
  const char* argv[] = {"bench", "--serve-out", ""};
  EXPECT_EXIT(BenchOpts::parse(static_cast<int>(std::size(argv)),
                               const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "non-empty path");
}

TEST(BenchOpts, AlgoFlagEnvAndUnlatchedReRead) {
  ::unsetenv("CUSFFT_ALGO");
  ::unsetenv("CUSFFT_AUTOPICK");
  const char* none[] = {"bench"};
  EXPECT_EQ(BenchOpts::parse(1, const_cast<char**>(none)).algo,
            sfft::Algorithm::kCusfft);

  const char* argv[] = {"bench", "--algo", "ffast"};
  EXPECT_EQ(BenchOpts::parse(static_cast<int>(std::size(argv)),
                             const_cast<char**>(argv))
                .algo,
            sfft::Algorithm::kFfast);

  // The environment is re-read on every parse (no latching), and the flag
  // wins over the environment.
  ::setenv("CUSFFT_ALGO", "auto", 1);
  EXPECT_EQ(BenchOpts::parse(1, const_cast<char**>(none)).algo,
            sfft::Algorithm::kAuto);
  ::setenv("CUSFFT_ALGO", "ffast", 1);
  EXPECT_EQ(BenchOpts::parse(1, const_cast<char**>(none)).algo,
            sfft::Algorithm::kFfast);
  const char* cli[] = {"bench", "--algo", "cusfft"};
  EXPECT_EQ(BenchOpts::parse(static_cast<int>(std::size(cli)),
                             const_cast<char**>(cli))
                .algo,
            sfft::Algorithm::kCusfft);
  ::unsetenv("CUSFFT_ALGO");
  EXPECT_EQ(BenchOpts::parse(1, const_cast<char**>(none)).algo,
            sfft::Algorithm::kCusfft);
}

TEST(BenchOptsDeathTest, MalformedAlgoEnvExits) {
  ::setenv("CUSFFT_ALGO", "fastest", 1);
  const char* argv[] = {"bench"};
  EXPECT_EXIT(BenchOpts::parse(1, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "CUSFFT_ALGO");
  ::unsetenv("CUSFFT_ALGO");
}

TEST(BenchOptsDeathTest, MalformedAlgoFlagExits) {
  const char* argv[] = {"bench", "--algo", "FFAST"};  // names are lowercase
  EXPECT_EXIT(BenchOpts::parse(static_cast<int>(std::size(argv)),
                               const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "--algo");
}

TEST(BenchOptsDeathTest, MalformedAutopickEnvExits) {
  // CUSFFT_AUTOPICK is consumed by the library picker, but the bench
  // validates it at parse time so a typo dies with usage instead of deep
  // inside the first auto-picked execute.
  ::setenv("CUSFFT_AUTOPICK", "guess", 1);
  const char* argv[] = {"bench"};
  EXPECT_EXIT(BenchOpts::parse(1, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "CUSFFT_AUTOPICK");
  ::unsetenv("CUSFFT_AUTOPICK");
}

TEST(BenchOpts, AutopickEnvAcceptedValuesParse) {
  const char* none[] = {"bench"};
  for (const char* v : {"measured", "modeled"}) {
    ::setenv("CUSFFT_AUTOPICK", v, 1);
    EXPECT_NO_FATAL_FAILURE(BenchOpts::parse(1, const_cast<char**>(none)))
        << v;
  }
  ::unsetenv("CUSFFT_AUTOPICK");
}

TEST(PaperParams, FollowsPaperRegimeByDefault) {
  ::unsetenv("CUSFFT_BCST");
  ::unsetenv("CUSFFT_LOOPS_LOC");
  ::unsetenv("CUSFFT_LOOPS_EST");
  ::unsetenv("CUSFFT_TOL");
  const auto p = paper_params(1 << 20, 100, 9);
  EXPECT_DOUBLE_EQ(p.bcst, 1.0);  // B = sqrt(nk / log2 n), unit constant
  EXPECT_EQ(p.loops_loc, 4u);
  EXPECT_EQ(p.loops_est, 8u);
  EXPECT_DOUBLE_EQ(p.filter.tolerance, 1e-6);
  EXPECT_EQ(p.seed, 9u);
  p.validate();  // must be a legal configuration
}

TEST(PaperParams, EnvTunesTheRegime) {
  ::setenv("CUSFFT_BCST", "2.5", 1);
  ::setenv("CUSFFT_LOOPS_EST", "6", 1);
  const auto p = paper_params(1 << 20, 100, 9);
  EXPECT_DOUBLE_EQ(p.bcst, 2.5);
  EXPECT_EQ(p.loops_est, 6u);
  ::unsetenv("CUSFFT_BCST");
  ::unsetenv("CUSFFT_LOOPS_EST");
}

TEST(MakeSignal, DeterministicPerParameters) {
  const auto a = make_signal(1 << 12, 8, 5);
  const auto b = make_signal(1 << 12, 8, 5);
  const auto c = make_signal(1 << 12, 8, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace cusfft::bench
