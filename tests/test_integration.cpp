// Cross-module integration and property tests:
//  * differential: serial == PsFFT == cusFFT across a (n, k, config) grid
//  * signal-variant robustness (magnitude distributions, clustered spectra)
//  * flat-filter quality invariants swept over B
//  * randomized timeline properties (makespan bounds)
//  * full-pipeline determinism across plan instances
#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "cusfft/plan.hpp"
#include "cusim/timeline.hpp"
#include "fft/fft.hpp"
#include "psfft/psfft.hpp"
#include "sfft/serial.hpp"
#include "signal/filter.hpp"
#include "signal/window.hpp"
#include "signal/generate.hpp"

namespace cusfft {
namespace {

struct GridCase {
  std::size_t logn;
  std::size_t k;
  bool comb;
};

class BackendGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(BackendGrid, AllBackendsAgree) {
  const auto [logn, k, comb] = GetParam();
  const std::size_t n = 1ULL << logn;
  Rng rng(logn * 1000 + k);
  const auto sig = signal::make_sparse_signal(n, k, rng);

  sfft::Params p;
  p.n = n;
  p.k = k;
  p.comb = comb;
  p.seed = 31 + logn;

  const auto serial = sfft::SerialPlan(p).execute(sig.x);

  ThreadPool pool(2);
  const auto parallel = psfft::PsfftPlan(p, pool).execute(sig.x);

  // The GPU baseline uses the same sort&select cutoff as the serial code,
  // so its candidate set matches exactly (the optimized fast selection
  // legitimately picks a different, threshold-based set — covered by the
  // oracle checks below).
  cusim::Device dev;
  const auto gpu_out =
      gpu::GpuPlan(dev, p, gpu::Options::baseline()).execute(sig.x);

  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), gpu_out.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].loc, parallel[i].loc) << i;
    EXPECT_EQ(serial[i].loc, gpu_out[i].loc) << i;
    EXPECT_NEAR(std::abs(serial[i].val - parallel[i].val), 0.0, 1e-12) << i;
    EXPECT_NEAR(std::abs(serial[i].val - gpu_out[i].val), 0.0, 1e-6) << i;
  }

  // And every backend, including the optimized GPU path, actually solves
  // the problem.
  cusim::Device dev2;
  const auto gpu_opt =
      gpu::GpuPlan(dev2, p, gpu::Options::optimized()).execute(sig.x);
  const cvec oracle = densify(sig.truth, n);
  EXPECT_DOUBLE_EQ(location_recall(serial, oracle, k), 1.0);
  EXPECT_DOUBLE_EQ(location_recall(gpu_opt, oracle, k), 1.0);
  EXPECT_LT(l1_error_per_coeff(serial, oracle, k), 1e-2);
  EXPECT_LT(l1_error_per_coeff(gpu_opt, oracle, k), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BackendGrid,
    ::testing::Values(GridCase{12, 4, false}, GridCase{13, 8, false},
                      GridCase{14, 8, true}, GridCase{14, 24, false},
                      GridCase{15, 16, true}, GridCase{16, 40, false}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.logn) + "_k" +
             std::to_string(info.param.k) +
             (info.param.comb ? "_comb" : "");
    });

TEST(SignalVariants, UniformMagnitudesRecovered) {
  const std::size_t n = 1 << 15, k = 20;
  Rng rng(71);
  signal::SparseSignalParams sp;
  sp.mags = signal::MagnitudeDist::kUniform1to10;
  const auto sig = signal::make_sparse_signal(n, k, rng, sp);
  sfft::Params p;
  p.n = n;
  p.k = k;
  const auto got = sfft::SerialPlan(p).execute(sig.x);
  const cvec oracle = densify(sig.truth, n);
  EXPECT_DOUBLE_EQ(location_recall(got, oracle, k), 1.0);
  // Relative error: magnitudes span [1, 10].
  EXPECT_LT(max_error_at_locs(got, oracle), 0.05);
}

TEST(SignalVariants, ClusteredSpectrumOnGpu) {
  const std::size_t n = 1 << 15, k = 24;
  Rng rng(72);
  const auto sig = signal::make_clustered_signal(n, k, 6, rng);
  sfft::Params p;
  p.n = n;
  p.k = k;
  cusim::Device dev;
  const auto got =
      gpu::GpuPlan(dev, p, gpu::Options::optimized()).execute(sig.x);
  const cvec oracle = densify(sig.truth, n);
  EXPECT_GE(location_recall(got, oracle, k), 0.9);
}

// The flat filter's two contracts, swept over bucket counts: inside its own
// bucket the response must dominate; two buckets away it must be tiny.
class FilterQuality : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FilterQuality, PassbandDominatesTail) {
  const std::size_t B = GetParam();
  const std::size_t n = 1 << 15;
  const auto f = signal::make_flat_filter(n, B);
  const std::size_t half_bucket = n / (2 * B);
  double min_pass = 1e300, max_far = 0.0;
  for (std::size_t d = 0; d <= half_bucket; ++d) {
    min_pass = std::min(min_pass, std::abs(f.freq[d]));
    min_pass = std::min(min_pass, std::abs(f.freq[(n - d) % n]));
  }
  for (std::size_t d = 4 * half_bucket; d <= n / 2; ++d)
    max_far = std::max(max_far, std::abs(f.freq[d]));
  EXPECT_GT(min_pass, 0.15) << "B=" << B;
  EXPECT_LT(max_far, 1e-4) << "B=" << B;
  EXPECT_GT(min_pass, 100.0 * max_far) << "B=" << B;
}

INSTANTIATE_TEST_SUITE_P(Buckets, FilterQuality,
                         ::testing::Values(16, 64, 256, 1024));

// Randomized timeline property: for any batch of items, the makespan is at
// least the largest single item and at most the serialized sum.
TEST(TimelineProperty, MakespanBounds) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    cusim::Timeline tl(1 + rng.next_below(32));
    const std::size_t items = 1 + rng.next_below(40);
    double sum = 0, largest = 0;
    for (std::size_t i = 0; i < items; ++i) {
      cusim::TimelineItem it;
      it.name = "k";
      it.stream = static_cast<cusim::StreamId>(rng.next_below(8));
      it.resource = rng.next_below(4) == 0 ? cusim::Resource::kPcie
                                           : cusim::Resource::kDeviceMemory;
      it.mem_s = rng.next_double() * 1e-3;
      it.compute_s = rng.next_double() * 1e-3;
      const double solo = std::max(it.mem_s, it.compute_s);
      sum += solo + it.mem_s;  // loose upper slack for bandwidth sharing
      largest = std::max(largest, solo);
      tl.submit(it);
    }
    const double makespan = tl.simulate();
    EXPECT_GE(makespan, largest - 1e-12) << trial;
    EXPECT_LE(makespan, sum + 1e-9) << trial;
    // Every item fits inside the makespan with start <= finish.
    for (const auto& s : tl.schedule()) {
      EXPECT_LE(s.start_s, s.finish_s + 1e-15);
      EXPECT_LE(s.finish_s, makespan + 1e-12);
    }
  }
}

TEST(Determinism, TwoPlanInstancesIdenticalOutputs) {
  const std::size_t n = 1 << 14, k = 12;
  Rng rng(1234);
  const auto sig = signal::make_sparse_signal(n, k, rng);
  sfft::Params p;
  p.n = n;
  p.k = k;
  p.seed = 5150;

  cusim::Device dev_a, dev_b;
  const auto a =
      gpu::GpuPlan(dev_a, p, gpu::Options::optimized()).execute(sig.x);
  const auto b =
      gpu::GpuPlan(dev_b, p, gpu::Options::optimized()).execute(sig.x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].loc, b[i].loc);
    EXPECT_EQ(a[i].val, b[i].val);  // bitwise: same kernels, same order
  }
}

TEST(Determinism, DifferentSeedsDifferentPermutations) {
  const std::size_t n = 1 << 13, k = 8;
  Rng rng(4321);
  const auto sig = signal::make_sparse_signal(n, k, rng);
  sfft::Params pa, pb;
  pa.n = pb.n = n;
  pa.k = pb.k = k;
  pa.seed = 1;
  pb.seed = 2;
  // Both must recover the same spectrum despite different randomness.
  const auto a = sfft::SerialPlan(pa).execute(sig.x);
  const auto b = sfft::SerialPlan(pb).execute(sig.x);
  const cvec oracle = densify(sig.truth, n);
  EXPECT_DOUBLE_EQ(location_recall(a, oracle, k), 1.0);
  EXPECT_DOUBLE_EQ(location_recall(b, oracle, k), 1.0);
}

// End-to-end linearity: sFFT(alpha * x) == alpha * sFFT(x) for exact-sparse
// inputs (all steps are linear except location voting, which is scale
// invariant).
TEST(Properties, ScaleEquivariance) {
  const std::size_t n = 1 << 13, k = 8;
  Rng rng(777);
  const auto sig = signal::make_sparse_signal(n, k, rng);
  cvec scaled(n);
  const cplx alpha{2.0, -1.0};
  for (std::size_t i = 0; i < n; ++i) scaled[i] = alpha * sig.x[i];

  sfft::Params p;
  p.n = n;
  p.k = k;
  sfft::SerialPlan plan(p);
  const auto base = plan.execute(sig.x);
  const auto scl = plan.execute(scaled);
  ASSERT_EQ(base.size(), scl.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].loc, scl[i].loc);
    EXPECT_NEAR(std::abs(scl[i].val - alpha * base[i].val), 0.0, 1e-9) << i;
  }
}

// Time-shift equivariance: shifting the signal rotates each coefficient's
// phase by e^{+2*pi*i*f*s/n} (forward-DFT convention).
TEST(Properties, TimeShiftPhase) {
  const std::size_t n = 1 << 13, k = 6, s = 37;
  Rng rng(888);
  const auto sig = signal::make_sparse_signal(n, k, rng);
  cvec shifted(n);
  for (std::size_t t = 0; t < n; ++t) shifted[t] = sig.x[(t + s) % n];

  sfft::Params p;
  p.n = n;
  p.k = k;
  sfft::SerialPlan plan(p);
  const auto base = plan.execute(sig.x);
  const auto shft = plan.execute(shifted);
  ASSERT_EQ(base.size(), shft.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    ASSERT_EQ(base[i].loc, shft[i].loc);
    const double ang = kTwoPi * static_cast<double>(base[i].loc % n) *
                       static_cast<double>(s) / static_cast<double>(n);
    const cplx phase{std::cos(ang), std::sin(ang)};
    EXPECT_NEAR(std::abs(shft[i].val - base[i].val * phase), 0.0, 1e-8) << i;
  }
}


// Alternative window kinds end to end (the paper names Gaussian and
// Dolph-Chebyshev; Kaiser is this library's extra).
class WindowKindE2E
    : public ::testing::TestWithParam<signal::WindowKind> {};

TEST_P(WindowKindE2E, FilterKindRecovers) {
  const std::size_t n = 1 << 14, k = 12;
  Rng rng(73);
  const auto sig = signal::make_sparse_signal(n, k, rng);
  sfft::Params p;
  p.n = n;
  p.k = k;
  p.filter.kind = GetParam();
  const auto got = sfft::SerialPlan(p).execute(sig.x);
  const cvec oracle = densify(sig.truth, n);
  EXPECT_DOUBLE_EQ(location_recall(got, oracle, k), 1.0);
  EXPECT_LT(l1_error_per_coeff(got, oracle, k), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Kinds, WindowKindE2E,
                         ::testing::Values(signal::WindowKind::kGaussian,
                                           signal::WindowKind::kKaiser));

// Graceful degradation under rising noise: recall must stay perfect while
// the noise is well under the per-tone bucket energy and never crash after.
TEST(SignalVariants, NoiseSweepDegradesGracefully) {
  const std::size_t n = 1 << 14, k = 8;
  sfft::Params p;
  p.n = n;
  p.k = k;
  sfft::SerialPlan plan(p);
  double last_recall = 1.0;
  for (double sigma : {0.0, 1e-6, 1e-5, 1e-4}) {
    Rng rng(74);
    signal::SparseSignalParams sp;
    sp.noise_sigma = sigma;
    const auto sig = signal::make_sparse_signal(n, k, rng, sp);
    const auto got = plan.execute(sig.x);
    const cvec oracle = densify(sig.truth, n);
    const double recall = location_recall(got, oracle, k);
    if (sigma <= 1e-5) EXPECT_DOUBLE_EQ(recall, 1.0) << sigma;
    last_recall = recall;
  }
  EXPECT_GE(last_recall, 0.5);  // even the noisiest case finds most tones
}

TEST(ParamsLimits, ScoreCounterOverflowGuard) {
  sfft::Params p;
  p.n = 1 << 14;
  p.k = 8;
  p.loops_loc = 300;  // would overflow the u8 score array
  p.loc_threshold = 200;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace cusfft
