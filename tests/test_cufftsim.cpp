// Tests for the simulated cuFFT: numerical agreement with the host FFT
// library, batched mode, pass structure, and modeled-cost sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "cufftsim/cufftsim.hpp"
#include "fft/fft.hpp"

namespace cusfft::cufftsim {
namespace {

using cusim::Device;
using cusim::DeviceBuffer;

cvec random_signal(std::size_t n, u64 seed) {
  Rng rng(seed);
  cvec x(n);
  for (auto& v : x) v = cplx{rng.next_normal(), rng.next_normal()};
  return x;
}

class CufftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CufftSizes, ForwardMatchesHostFft) {
  const std::size_t n = GetParam();
  Device dev;
  dev.begin_capture();
  Plan plan(dev, n);
  cvec x = random_signal(n, n + 1);
  DeviceBuffer<cplx> data(n);
  std::copy(x.begin(), x.end(), data.host().begin());
  plan.execute(data, Direction::kForward);
  cvec expect = fft::fft(x);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_NEAR(std::abs(data.host()[i] - expect[i]), 0.0,
                1e-9 * std::sqrt(static_cast<double>(n)))
        << "i=" << i << " n=" << n;
}

TEST_P(CufftSizes, InverseIsUnnormalizedAdjoint) {
  // cuFFT semantics: inverse(forward(x)) == n * x.
  const std::size_t n = GetParam();
  Device dev;
  dev.begin_capture();
  Plan plan(dev, n);
  cvec x = random_signal(n, 2 * n + 1);
  DeviceBuffer<cplx> data(n);
  std::copy(x.begin(), x.end(), data.host().begin());
  plan.execute(data, Direction::kForward);
  plan.execute(data, Direction::kInverse);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_NEAR(std::abs(data.host()[i] / static_cast<double>(n) - x[i]),
                0.0, 1e-9)
        << i;
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, CufftSizes,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256,
                                           1024, 4096, 1 << 14));

TEST(Cufft, BatchedMatchesPerTransform) {
  const std::size_t n = 256, batch = 7;
  Device dev;
  dev.begin_capture();
  Plan plan(dev, n, batch);
  cvec all = random_signal(n * batch, 5);
  DeviceBuffer<cplx> data(n * batch);
  std::copy(all.begin(), all.end(), data.host().begin());
  plan.execute(data, Direction::kForward);
  for (std::size_t b = 0; b < batch; ++b) {
    cvec expect =
        fft::fft(std::span<const cplx>(all).subspan(b * n, n));
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(std::abs(data.host()[b * n + i] - expect[i]), 0.0, 1e-8)
          << "b=" << b << " i=" << i;
  }
}

TEST(Cufft, PassCountIsMultiRadix) {
  Device dev;
  // 2^24 = 8 radix-8 passes; 2^10 = 3x radix-8 + 1 radix-2 -> 4 passes.
  EXPECT_EQ(Plan(dev, 1 << 24).passes(), 8u);
  EXPECT_EQ(Plan(dev, 1 << 10).passes(), 4u);
  EXPECT_EQ(Plan(dev, 1 << 9).passes(), 3u);
  EXPECT_EQ(Plan(dev, 8).passes(), 1u);
  EXPECT_EQ(Plan(dev, 4).passes(), 1u);
  EXPECT_EQ(Plan(dev, 2).passes(), 1u);
}

TEST(Cufft, RejectsBadArguments) {
  Device dev;
  EXPECT_THROW(Plan(dev, 1000), std::invalid_argument);
  EXPECT_THROW(Plan(dev, 64, 0), std::invalid_argument);
  Plan plan(dev, 64, 2);
  DeviceBuffer<cplx> wrong(64);
  EXPECT_THROW(plan.execute(wrong, Direction::kForward),
               std::invalid_argument);
}

TEST(Cufft, BatchedSharesLaunches) {
  // One batched execute must launch the same number of stage kernels as a
  // single transform (the Step-3 batching win), not batch x passes.
  Device dev;
  dev.begin_capture();
  Plan plan(dev, 1 << 12, 16);
  DeviceBuffer<cplx> data((1 << 12) * 16);
  plan.execute(data, Direction::kForward);
  const auto& rep = dev.report().at("cufft_stage");
  EXPECT_EQ(rep.launches, plan.passes());
}

TEST(Cufft, ModeledTimeGrowsWithN) {
  Device dev;
  auto time_for = [&](std::size_t n) {
    dev.begin_capture();
    Plan plan(dev, n);
    DeviceBuffer<cplx> data(n);
    plan.execute(data, Direction::kForward);
    return dev.elapsed_model_ms();
  };
  const double t14 = time_for(1 << 14);
  const double t18 = time_for(1 << 18);
  EXPECT_GT(t18, 2.0 * t14);
}

TEST(Cufft, StageTrafficIsCoalescedDominated) {
  Device dev;
  dev.set_max_traced_warps(1 << 20);
  dev.begin_capture();
  Plan plan(dev, 1 << 14);
  DeviceBuffer<cplx> data(1 << 14);
  plan.execute(data, Direction::kForward);
  const auto& c = dev.report().at("cufft_stage").counters;
  EXPECT_GT(c.coalesced_transactions, 5.0 * c.random_transactions);
}

}  // namespace
}  // namespace cusfft::cufftsim
