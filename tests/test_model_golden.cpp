// Golden-counter tests: pin the exact transaction/flop accounting of the
// paper's kernels on small fixed configurations, so any change to the
// tracer, the kernels, or the cost model that would silently shift the
// figure data fails a test instead.
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "signal/generate.hpp"

namespace cusfft::gpu {
namespace {

struct Golden {
  cusim::Device dev;
  std::unique_ptr<GpuPlan> plan;
  sfft::Params params;

  explicit Golden(Options opts) {
    params.n = 1 << 12;
    params.k = 8;
    params.seed = 1111;
    dev.set_max_traced_warps(1 << 20);  // exact tracing
    plan = std::make_unique<GpuPlan>(dev, params, opts);
    Rng rng(2222);
    const auto sig = signal::make_sparse_signal(params.n, params.k, rng);
    plan->execute(sig.x);
  }
};

TEST(GoldenCounters, PartitionKernelTraffic) {
  Golden g{Options::baseline()};
  const auto& c = g.dev.report().at("pf_partition").counters;
  // Geometry: n=4096, k=8 => B=256 buckets; filter taps pad to w_pad, with
  // rounds = w_pad / B per thread. L = 12 loops (bench defaults differ;
  // library defaults are 6+8=14 loops).
  const std::size_t B = g.plan->buckets();
  EXPECT_EQ(B, 256u);
  const std::size_t L = g.params.total_loops();
  EXPECT_EQ(g.dev.report().at("pf_partition").launches, L);
  // Each tap = one scattered signal load; with ai odd and large, nearly
  // every lane owns its own 128B segment: random_tx ~= taps. Filter loads
  // and bucket stores are coalesced.
  const auto [w, w_pad] =
      signal::flat_filter_sizes(g.params.n, B, g.params.filter);
  const double taps = static_cast<double>(w_pad) * static_cast<double>(L);
  EXPECT_GT(c.random_transactions, 0.80 * taps);
  EXPECT_LT(c.random_transactions, 1.05 * taps);
  // Useful bytes: signal load + filter load per tap, bucket store per
  // thread. (16 bytes per complex double.)
  const double expect_bytes = taps * 32.0 + static_cast<double>(L * B) * 16.0;
  EXPECT_NEAR(c.bytes_useful, expect_bytes, expect_bytes * 0.01);
}

TEST(GoldenCounters, ScoreClearIsPerfectlyCoalesced) {
  Golden g{Options::baseline()};
  const auto& c = g.dev.report().at("score_clear").counters;
  // n u32 stores = n*4 bytes = n*4/128 transactions exactly.
  EXPECT_DOUBLE_EQ(c.random_transactions, 0.0);
  EXPECT_NEAR(c.coalesced_transactions, (1 << 12) * 4.0 / 128.0, 1.0);
}

TEST(GoldenCounters, AsyncPathMovesSameSignalBytes) {
  Golden base{Options::baseline()};
  Options async;
  async.binning = Binning::kAsyncTransform;
  Golden opt{async};
  // The remap kernels collectively perform exactly the scattered loads the
  // monolithic kernel performed.
  const auto& pb = base.dev.report().at("pf_partition").counters;
  const auto& pr = opt.dev.report().at("pf_remap").counters;
  EXPECT_NEAR(pr.random_transactions, pb.random_transactions,
              pb.random_transactions * 0.02);
  // And the execute kernels are fully coalesced.
  const auto& pe = opt.dev.report().at("pf_execute").counters;
  EXPECT_DOUBLE_EQ(pe.random_transactions, 0.0);
}

TEST(GoldenCounters, LocRecoverAtomicsMatchVoteCount) {
  Golden g{Options::baseline()};
  const auto& c = g.dev.report().at("loc_recover").counters;
  // Each selected bucket votes exactly n/B locations; cutoff = 2k buckets
  // per location loop (library default cutoff_mult = 2), loops_loc = 6.
  const std::size_t B = g.plan->buckets();
  const double expected = static_cast<double>(g.params.loops_loc) *
                          static_cast<double>(g.params.cutoff()) *
                          static_cast<double>(g.params.n / B);
  // num_hits bookkeeping adds a few extra atomics.
  EXPECT_GE(c.atomic_ops, expected);
  EXPECT_LT(c.atomic_ops, expected * 1.2);
}

TEST(GoldenCounters, EstimateLaunchOncePerExecute) {
  Golden g{Options::baseline()};
  EXPECT_EQ(g.dev.report().at("estimate").launches, 1u);
  const auto& c = g.dev.report().at("estimate").counters;
  // Each candidate reads L buckets + L filter coefficients (scattered).
  EXPECT_GT(c.bytes_useful, 0.0);
}

TEST(GoldenCounters, BatchedFftStageGeometry) {
  Golden g{Options::baseline()};
  const auto& rep = g.dev.report().at("cufft_stage");
  // B = 256 = 8*8*4: 3 passes, launched once each thanks to batching.
  EXPECT_EQ(rep.launches, 3u);
  // Threads per pass: L transforms x B/R elements, rounded up to whole
  // 256-thread blocks (radix-8, radix-8, radix-4 for B=256).
  const double L = static_cast<double>(g.params.total_loops());
  auto launched = [L](double per_transform) {
    return std::ceil(L * per_transform / 256.0) * 256.0;
  };
  EXPECT_DOUBLE_EQ(rep.counters.threads,
                   launched(32) + launched(32) + launched(64));
}

}  // namespace
}  // namespace cusfft::gpu
