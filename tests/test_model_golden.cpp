// Golden-counter tests: pin the exact transaction/flop accounting of the
// paper's kernels on small fixed configurations, so any change to the
// tracer, the kernels, or the cost model that would silently shift the
// figure data fails a test instead. GoldenTimeline additionally pins the
// event/dependency scheduling semantics (record_event/wait_event) the
// pipelined batch path is built on, event by event.
#include <gtest/gtest.h>

#include <map>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "cusim/timeline.hpp"
#include "signal/generate.hpp"

namespace cusfft::gpu {
namespace {

struct Golden {
  cusim::Device dev;
  std::unique_ptr<GpuPlan> plan;
  sfft::Params params;

  explicit Golden(Options opts) {
    params.n = 1 << 12;
    params.k = 8;
    params.seed = 1111;
    dev.set_max_traced_warps(1 << 20);  // exact tracing
    plan = std::make_unique<GpuPlan>(dev, params, opts);
    Rng rng(2222);
    const auto sig = signal::make_sparse_signal(params.n, params.k, rng);
    plan->execute(sig.x);
  }
};

TEST(GoldenCounters, PartitionKernelTraffic) {
  Golden g{Options::baseline()};
  const auto& c = g.dev.report().at("pf_partition").counters;
  // Geometry: n=4096, k=8 => B=256 buckets; filter taps pad to w_pad, with
  // rounds = w_pad / B per thread. L = 12 loops (bench defaults differ;
  // library defaults are 6+8=14 loops).
  const std::size_t B = g.plan->buckets();
  EXPECT_EQ(B, 256u);
  const std::size_t L = g.params.total_loops();
  EXPECT_EQ(g.dev.report().at("pf_partition").launches, L);
  // Each tap = one scattered signal load; with ai odd and large, nearly
  // every lane owns its own 128B segment: random_tx ~= taps. Filter loads
  // and bucket stores are coalesced.
  const auto [w, w_pad] =
      signal::flat_filter_sizes(g.params.n, B, g.params.filter);
  const double taps = static_cast<double>(w_pad) * static_cast<double>(L);
  EXPECT_GT(c.random_transactions, 0.80 * taps);
  EXPECT_LT(c.random_transactions, 1.05 * taps);
  // Useful bytes: signal load + filter load per tap, bucket store per
  // thread. (16 bytes per complex double.)
  const double expect_bytes = taps * 32.0 + static_cast<double>(L * B) * 16.0;
  EXPECT_NEAR(c.bytes_useful, expect_bytes, expect_bytes * 0.01);
}

TEST(GoldenCounters, ScoreClearIsPerfectlyCoalesced) {
  Golden g{Options::baseline()};
  const auto& c = g.dev.report().at("score_clear").counters;
  // n u32 stores = n*4 bytes = n*4/128 transactions exactly.
  EXPECT_DOUBLE_EQ(c.random_transactions, 0.0);
  EXPECT_NEAR(c.coalesced_transactions, (1 << 12) * 4.0 / 128.0, 1.0);
}

TEST(GoldenCounters, AsyncPathMovesSameSignalBytes) {
  Golden base{Options::baseline()};
  Options async;
  async.binning = Binning::kAsyncTransform;
  Golden opt{async};
  // The remap kernels collectively perform exactly the scattered loads the
  // monolithic kernel performed.
  const auto& pb = base.dev.report().at("pf_partition").counters;
  const auto& pr = opt.dev.report().at("pf_remap").counters;
  EXPECT_NEAR(pr.random_transactions, pb.random_transactions,
              pb.random_transactions * 0.02);
  // And the execute kernels are fully coalesced.
  const auto& pe = opt.dev.report().at("pf_execute").counters;
  EXPECT_DOUBLE_EQ(pe.random_transactions, 0.0);
}

TEST(GoldenCounters, LocRecoverAtomicsMatchVoteCount) {
  Golden g{Options::baseline()};
  const auto& c = g.dev.report().at("loc_recover").counters;
  // Each selected bucket votes exactly n/B locations; cutoff = 2k buckets
  // per location loop (library default cutoff_mult = 2), loops_loc = 6.
  const std::size_t B = g.plan->buckets();
  const double expected = static_cast<double>(g.params.loops_loc) *
                          static_cast<double>(g.params.cutoff()) *
                          static_cast<double>(g.params.n / B);
  // num_hits bookkeeping adds a few extra atomics.
  EXPECT_GE(c.atomic_ops, expected);
  EXPECT_LT(c.atomic_ops, expected * 1.2);
}

TEST(GoldenCounters, EstimateLaunchOncePerExecute) {
  Golden g{Options::baseline()};
  EXPECT_EQ(g.dev.report().at("estimate").launches, 1u);
  const auto& c = g.dev.report().at("estimate").counters;
  // Each candidate reads L buckets + L filter coefficients (scattered).
  EXPECT_GT(c.bytes_useful, 0.0);
}

TEST(GoldenCounters, BatchedFftStageGeometry) {
  Golden g{Options::baseline()};
  const auto& rep = g.dev.report().at("cufft_stage");
  // B = 256 = 8*8*4: 3 passes, launched once each thanks to batching.
  EXPECT_EQ(rep.launches, 3u);
  // Threads per pass: L transforms x B/R elements, rounded up to whole
  // 256-thread blocks (radix-8, radix-8, radix-4 for B=256).
  const double L = static_cast<double>(g.params.total_loops());
  auto launched = [L](double per_transform) {
    return std::ceil(L * per_transform / 256.0) * 256.0;
  };
  EXPECT_DOUBLE_EQ(rep.counters.threads,
                   launched(32) + launched(32) + launched(64));
}

// ---------------------------------------------------------------------------
// GoldenTimeline: the exact schedule of a small pipelined two-stream batch,
// asserted event by event. This is the two-signal dependency skeleton of
// GpuPlan's pipelined execute_many: front(1) chains behind front_done(0),
// back(1) behind done(0).
// ---------------------------------------------------------------------------

namespace {

cusim::TimelineItem compute_item(const char* name, cusim::StreamId s,
                                 double compute_s) {
  cusim::TimelineItem it;
  it.name = name;
  it.stream = s;
  it.compute_s = compute_s;
  return it;
}

cusim::TimelineItem mem_item(const char* name, cusim::StreamId s,
                             double mem_s) {
  cusim::TimelineItem it;
  it.name = name;
  it.stream = s;
  it.mem_s = mem_s;
  return it;
}

}  // namespace

TEST(GoldenTimeline, StreamEventDependencyScheduleExact) {
  cusim::Timeline tl(32);
  // Signal 0 on stream 1: front A (1 ms), back B (2 ms).
  tl.submit(compute_item("front0", 1, 1e-3));
  const std::size_t front0 = tl.record_event(1);
  tl.submit(compute_item("back0", 1, 2e-3));
  const std::size_t done0 = tl.record_event(1);
  // Signal 1 on stream 2: its front waits on front0, its back on done0.
  tl.wait_event(2, front0);
  tl.submit(compute_item("front1", 2, 1e-3));
  tl.wait_event(2, done0);
  tl.submit(compute_item("back1", 2, 2e-3));

  EXPECT_DOUBLE_EQ(tl.simulate(), 5e-3);
  const auto& sched = tl.schedule();
  ASSERT_EQ(sched.size(), 4u);
  EXPECT_DOUBLE_EQ(sched[0].start_s, 0.0);     // front0
  EXPECT_DOUBLE_EQ(sched[0].finish_s, 1e-3);
  EXPECT_DOUBLE_EQ(sched[1].start_s, 1e-3);    // back0 (stream FIFO)
  EXPECT_DOUBLE_EQ(sched[1].finish_s, 3e-3);
  EXPECT_DOUBLE_EQ(sched[2].start_s, 1e-3);    // front1 overlaps back0
  EXPECT_DOUBLE_EQ(sched[2].finish_s, 2e-3);
  EXPECT_DOUBLE_EQ(sched[3].start_s, 3e-3);    // back1 waits done0
  EXPECT_DOUBLE_EQ(sched[3].finish_s, 5e-3);
  EXPECT_DOUBLE_EQ(tl.event_time_s(front0), 1e-3);
  EXPECT_DOUBLE_EQ(tl.event_time_s(done0), 3e-3);
}

TEST(GoldenTimeline, BandwidthSharingUnderOverlapExact) {
  cusim::Timeline tl(32);
  // A (1 ms solo) then B (2 ms solo) on stream 1; C (1 ms solo) on stream
  // 2 released by an event after A. B and C co-run from t=1 ms sharing
  // device bandwidth: both dilate 2x until C retires.
  tl.submit(mem_item("A", 1, 1e-3));
  const std::size_t after_a = tl.record_event(1);
  tl.submit(mem_item("B", 1, 2e-3));
  tl.wait_event(2, after_a);
  tl.submit(mem_item("C", 2, 1e-3));

  EXPECT_DOUBLE_EQ(tl.simulate(), 4e-3);
  const auto& sched = tl.schedule();
  ASSERT_EQ(sched.size(), 3u);
  EXPECT_DOUBLE_EQ(sched[0].finish_s, 1e-3);  // A solo
  EXPECT_DOUBLE_EQ(sched[2].start_s, 1e-3);   // C released by the event
  EXPECT_DOUBLE_EQ(sched[2].finish_s, 3e-3);  // 1 ms of work at half rate
  EXPECT_DOUBLE_EQ(sched[1].start_s, 1e-3);
  EXPECT_DOUBLE_EQ(sched[1].finish_s, 4e-3);  // 1 ms shared + 1 ms solo

  // A stream-scoped event on an empty stream reads time 0.
  cusim::Timeline empty(32);
  const std::size_t e = empty.record_event(7);
  empty.simulate();
  EXPECT_DOUBLE_EQ(empty.event_time_s(e), 0.0);
}

TEST(GoldenTimeline, PipelinedBatchScheduleIsDependencyConsistent) {
  // A real pipelined batch: every item must start after its stream
  // predecessor, its barrier window, and each explicit dep — and the
  // schedule must actually overlap work across streams somewhere.
  sfft::Params p;
  p.n = 1 << 12;
  p.k = 8;
  p.seed = 21;
  cusim::Device dev;
  GpuPlan plan(dev, p, Options::optimized());
  std::vector<cvec> signals;
  std::vector<std::span<const cplx>> views;
  Rng rng(654);
  for (int i = 0; i < 4; ++i)
    signals.push_back(signal::make_sparse_signal(p.n, p.k, rng).x);
  for (const cvec& s : signals) views.emplace_back(s);
  plan.execute_many(views, nullptr, BatchMode::kPipelined);
  dev.elapsed_model_ms();  // force simulate()

  const auto& items = dev.timeline().items();
  const auto& sched = dev.timeline().schedule();
  ASSERT_EQ(items.size(), sched.size());
  ASSERT_FALSE(items.empty());

  constexpr double kEps = 1e-12;
  std::map<cusim::StreamId, std::size_t> prev_on_stream;
  bool any_deps = false, any_overlap = false;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (const auto it = prev_on_stream.find(items[i].stream);
        it != prev_on_stream.end())
      EXPECT_GE(sched[i].start_s, sched[it->second].finish_s - kEps)
          << "FIFO violated at item " << i << " (" << items[i].name << ")";
    prev_on_stream[items[i].stream] = i;
    for (const std::size_t d : items[i].deps) {
      any_deps = true;
      ASSERT_LT(d, i);
      EXPECT_GE(sched[i].start_s, sched[d].finish_s - kEps)
          << "dep violated at item " << i << " (" << items[i].name << ")";
    }
    for (std::size_t j = 0; j < items[i].after; ++j)
      EXPECT_GE(sched[i].start_s, sched[j].finish_s - kEps)
          << "barrier violated at item " << i;
    for (std::size_t j = 0; j < i && !any_overlap; ++j)
      if (items[j].stream != items[i].stream &&
          sched[i].start_s < sched[j].finish_s - kEps &&
          sched[j].start_s < sched[i].finish_s - kEps)
        any_overlap = true;
  }
  EXPECT_TRUE(any_deps) << "pipelined batch submitted no wait_event deps";
  EXPECT_TRUE(any_overlap) << "no cross-stream overlap in the schedule";
}

}  // namespace
}  // namespace cusfft::gpu
