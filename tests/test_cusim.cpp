// Tests for the CUDA-like simulator: functional execution, coalescing
// analysis, atomic conflict accounting, warp sampling, streams/timeline
// overlap, and PCIe copies.
#include <gtest/gtest.h>

#include <numeric>

#include "cusim/device.hpp"
#include "cusim/report.hpp"

namespace cusfft::cusim {
namespace {

TEST(LaunchCfg, ForElementsCoversCount) {
  const auto c = LaunchCfg::for_elements("k", 1000, 256);
  EXPECT_EQ(c.blocks, 4u);
  EXPECT_EQ(c.threads_per_block, 256u);
  const auto exact = LaunchCfg::for_elements("k", 1024, 256);
  EXPECT_EQ(exact.blocks, 4u);
}

TEST(DeviceBuffer, HostAccessAndBounds) {
  DeviceBuffer<int> buf(8);
  std::iota(buf.host().begin(), buf.host().end(), 0);
  EXPECT_EQ(buf.size(), 8u);
  EXPECT_EQ(buf.host()[5], 5);
  ThreadCtx t;
  EXPECT_EQ(buf.load(t, 3), 3);
  EXPECT_THROW(buf.load(t, 8), std::out_of_range);
  // Distinct buffers get distinct device address ranges.
  DeviceBuffer<int> other(8);
  EXPECT_NE(buf.device_addr(), other.device_addr());
}

TEST(Device, KernelExecutesEveryThreadOnce) {
  Device dev;
  dev.begin_capture();
  DeviceBuffer<int> counts(1000);
  dev.launch(LaunchCfg::for_elements("inc", 1000), [&](ThreadCtx& t) {
    const u64 i = t.global_id();
    if (i < counts.size()) counts.atomic_add(t, i, 1);
  });
  for (int v : counts.host()) EXPECT_EQ(v, 1);
}

TEST(Device, CoalescedReadCountsMinimalTransactions) {
  Device dev;
  dev.set_max_traced_warps(1 << 20);  // trace everything
  dev.begin_capture();
  DeviceBuffer<double> in(4096), out(4096);
  dev.launch(LaunchCfg::for_elements("copy", 4096), [&](ThreadCtx& t) {
    const u64 i = t.global_id();
    out.store(t, i, in.load(t, i));
  });
  const auto& r = dev.report().at("copy");
  // 4096 doubles = 32 KiB; minimal 128B transactions = 256 per direction.
  EXPECT_NEAR(r.counters.coalesced_transactions, 512, 16);
  EXPECT_NEAR(r.counters.random_transactions, 0, 1e-9);
  EXPECT_NEAR(r.counters.bytes_useful, 2 * 4096 * 8, 1);
}

TEST(Device, StridedReadIsRandomTraffic) {
  Device dev;
  dev.set_max_traced_warps(1 << 20);
  dev.begin_capture();
  DeviceBuffer<double> in(1 << 16);
  DeviceBuffer<double> out(1 << 10);
  const std::size_t stride = 64;  // 512B apart: one transaction per lane
  dev.launch(LaunchCfg::for_elements("strided", 1 << 10), [&](ThreadCtx& t) {
    const u64 i = t.global_id();
    out.store(t, i, in.load(t, i * stride));
  });
  const auto& r = dev.report().at("strided");
  // Reads: 1024 lanes, each its own 128B segment -> 1024 random
  // transactions. Writes are coalesced (1024 doubles -> 64 transactions).
  EXPECT_NEAR(r.counters.random_transactions, 1024, 8);
  EXPECT_NEAR(r.counters.coalesced_transactions, 64, 8);
}

TEST(Device, RandomTrafficCostsMoreModelTime) {
  auto run = [](std::size_t stride) {
    Device dev;
    dev.set_max_traced_warps(1 << 20);
    dev.begin_capture();
    DeviceBuffer<double> in(1 << 20), out(1 << 14);
    dev.launch(LaunchCfg::for_elements("k", 1 << 14), [&](ThreadCtx& t) {
      const u64 i = t.global_id();
      out.store(t, i, in.load(t, (i * stride) % in.size()));
    });
    return dev.elapsed_model_ms();
  };
  EXPECT_GT(run(63), 3.0 * run(1));
}

TEST(Device, AtomicConflictDepthTracked) {
  Device dev;
  dev.set_max_traced_warps(1 << 20);
  dev.begin_capture();
  DeviceBuffer<u64> counter(16);
  dev.launch(LaunchCfg::for_elements("hammer", 4096), [&](ThreadCtx& t) {
    counter.atomic_add(t, 0, u64{1});  // everyone hits address 0
  });
  EXPECT_EQ(counter.host()[0], 4096u);
  const auto& r = dev.report().at("hammer");
  EXPECT_NEAR(r.counters.max_atomic_conflict, 4096, 1);
  EXPECT_NEAR(r.counters.atomic_ops, 4096, 1);
}

TEST(Device, SpreadAtomicsHaveShallowConflicts) {
  Device dev;
  dev.set_max_traced_warps(1 << 20);
  dev.begin_capture();
  DeviceBuffer<u64> counters(4096);
  dev.launch(LaunchCfg::for_elements("spread", 4096), [&](ThreadCtx& t) {
    counters.atomic_add(t, t.global_id(), u64{1});
  });
  const auto& r = dev.report().at("spread");
  EXPECT_NEAR(r.counters.max_atomic_conflict, 1, 1e-9);
}

TEST(Device, WarpSamplingExtrapolatesCounts) {
  // Exact trace vs heavy sampling must agree within a few percent on a
  // uniform kernel.
  auto tx_count = [](u64 max_warps) {
    Device dev;
    dev.set_max_traced_warps(max_warps);
    dev.begin_capture();
    DeviceBuffer<double> in(1 << 18), out(1 << 18);
    dev.launch(LaunchCfg::for_elements("copy", 1 << 18), [&](ThreadCtx& t) {
      const u64 i = t.global_id();
      out.store(t, i, in.load(t, i));
    });
    const auto& c = dev.report().at("copy").counters;
    return c.coalesced_transactions + c.random_transactions;
  };
  const double exact = tx_count(1 << 20);
  const double sampled = tx_count(64);
  EXPECT_NEAR(sampled / exact, 1.0, 0.05);
}

TEST(Device, FlopsAccumulateAcrossThreads) {
  Device dev;
  dev.begin_capture();
  dev.launch(LaunchCfg::for_elements("fma", 1024),
             [&](ThreadCtx& t) { t.add_flops(8); });
  EXPECT_NEAR(dev.report().at("fma").counters.flops, 8.0 * 1024, 1e-6);
}

TEST(Device, UploadDownloadRoundTripAndPcieTime) {
  Device dev;
  dev.begin_capture();
  std::vector<double> host(1 << 16);
  std::iota(host.begin(), host.end(), 0.0);
  DeviceBuffer<double> buf(host.size());
  dev.upload(buf, std::span<const double>(host));
  std::vector<double> back(host.size());
  dev.download(std::span<double>(back), buf);
  EXPECT_EQ(back, host);
  const double ms = dev.elapsed_model_ms();
  // 2 x 512 KiB over 6 GB/s plus 2 x 10us latency.
  const double expect_ms =
      2 * (host.size() * 8.0 / dev.spec().pcie_bandwidth_Bps +
           dev.spec().pcie_latency_s) *
      1e3;
  EXPECT_NEAR(ms, expect_ms, expect_ms * 0.05);
}

TEST(Device, UploadSizeMismatchThrows) {
  Device dev;
  dev.begin_capture();
  DeviceBuffer<int> buf(4);
  std::vector<int> host(5);
  EXPECT_THROW(dev.upload(buf, std::span<const int>(host)),
               std::invalid_argument);
}

TEST(Timeline, SameStreamSerializes) {
  Timeline tl(32);
  TimelineItem a{"a", 0, Resource::kDeviceMemory, 1e-3, 0.0};
  TimelineItem b{"b", 0, Resource::kDeviceMemory, 1e-3, 0.0};
  tl.submit(a);
  tl.submit(b);
  EXPECT_NEAR(tl.simulate(), 2e-3, 1e-9);
  EXPECT_NEAR(tl.schedule()[1].start_s, 1e-3, 1e-9);
}

TEST(Timeline, MemBoundKernelsShareBandwidth) {
  // Two memory-bound kernels on different streams: total time equals the
  // sum (bandwidth is the shared resource) — no magic speedup.
  Timeline tl(32);
  tl.submit({"a", 1, Resource::kDeviceMemory, 1e-3, 0.0});
  tl.submit({"b", 2, Resource::kDeviceMemory, 1e-3, 0.0});
  EXPECT_NEAR(tl.simulate(), 2e-3, 1e-6);
}

TEST(Timeline, ComputeOverlapsMemory) {
  // A compute-bound kernel fully hides behind a memory-bound one.
  Timeline tl(32);
  tl.submit({"mem", 1, Resource::kDeviceMemory, 2e-3, 0.0});
  tl.submit({"cmp", 2, Resource::kDeviceMemory, 0.0, 1e-3});
  EXPECT_NEAR(tl.simulate(), 2e-3, 1e-6);
}

TEST(Timeline, PcieIsSeparateResource) {
  // A PCIe copy overlaps a device-memory kernel completely.
  Timeline tl(32);
  tl.submit({"kernel", 1, Resource::kDeviceMemory, 2e-3, 0.0});
  tl.submit({"h2d", 2, Resource::kPcie, 2e-3, 0.0});
  EXPECT_NEAR(tl.simulate(), 2e-3, 1e-6);
}

TEST(Timeline, ConcurrencyCapQueuesExtras) {
  // Cap 2: three pure-compute kernels of 1ms on distinct streams take 2ms.
  Timeline tl(2);
  tl.submit({"a", 1, Resource::kDeviceMemory, 0.0, 1e-3});
  tl.submit({"b", 2, Resource::kDeviceMemory, 0.0, 1e-3});
  tl.submit({"c", 3, Resource::kDeviceMemory, 0.0, 1e-3});
  EXPECT_NEAR(tl.simulate(), 2e-3, 1e-6);
}

TEST(Timeline, ClearResets) {
  Timeline tl(32);
  tl.submit({"a", 0, Resource::kDeviceMemory, 1e-3, 0.0});
  tl.simulate();
  tl.clear();
  EXPECT_EQ(tl.item_count(), 0u);
  EXPECT_NEAR(tl.simulate(), 0.0, 1e-12);
}

TEST(Timeline, ClearEventsRestartsIdsAndInvalidatesCache) {
  Timeline tl(32);
  tl.submit({"a", 1, Resource::kDeviceMemory, 1e-3, 0.0});
  const std::size_t e_old = tl.record_event();
  EXPECT_NEAR(tl.simulate(), 1e-3, 1e-9);
  EXPECT_NEAR(tl.event_time_s(e_old), 1e-3, 1e-9);

  tl.clear_events();
  // Old ids are invalid after the clear...
  EXPECT_THROW(tl.event_time_s(e_old), std::out_of_range);
  // ...and a new event that happens to reuse the same numeric id must read
  // the current timeline state — simulate() may not serve the makespan it
  // cached for the pre-clear event set (the stale-makespan hazard).
  tl.submit({"b", 1, Resource::kDeviceMemory, 1e-3, 0.0});
  const std::size_t e_new = tl.record_event();
  EXPECT_EQ(e_new, e_old);
  EXPECT_NEAR(tl.simulate(), 2e-3, 1e-9);
  EXPECT_NEAR(tl.event_time_s(e_new), 2e-3, 1e-9);
}

TEST(Timeline, ClearEventsAloneForcesRecompute) {
  // clear_events() with no new submissions: the next simulate() recomputes
  // (items unchanged, so the value matches) and freshly recorded events
  // resolve against that schedule.
  Timeline tl(32);
  tl.submit({"a", 1, Resource::kDeviceMemory, 1e-3, 0.0});
  const double first = tl.simulate();
  tl.clear_events();
  const std::size_t e = tl.record_event();
  EXPECT_DOUBLE_EQ(tl.simulate(), first);
  EXPECT_NEAR(tl.event_time_s(e), first, 1e-12);
}

TEST(Device, CaptureRegionsIndependent) {
  Device dev;
  dev.begin_capture();
  DeviceBuffer<double> buf(1 << 12);
  dev.launch(LaunchCfg::for_elements("k1", 1 << 12), [&](ThreadCtx& t) {
    buf.store(t, t.global_id(), 1.0);
  });
  const double first = dev.elapsed_model_ms();
  EXPECT_GT(first, 0.0);
  dev.begin_capture();
  EXPECT_NEAR(dev.elapsed_model_ms(), 0.0, 1e-12);
  EXPECT_TRUE(dev.report().empty());
}


TEST(Device, PartialWarpAtGridTail) {
  // 70 threads = 2 full warps + a 6-lane tail; every thread must run and
  // tracing must not crash or double-count.
  Device dev;
  dev.set_max_traced_warps(1 << 20);
  dev.begin_capture();
  DeviceBuffer<u64> sum(1);
  dev.launch(LaunchCfg::for_elements("tail", 70, 64), [&](ThreadCtx& t) {
    if (t.global_id() < 70) sum.atomic_add(t, 0, t.global_id());
  });
  EXPECT_EQ(sum.host()[0], 70u * 69u / 2);
}

TEST(Device, StagedStoreCountsSharedAndCoalesced) {
  Device dev;
  dev.set_max_traced_warps(1 << 20);
  dev.begin_capture();
  DeviceBuffer<double> out(1 << 12);
  const std::size_t stride = 61;  // scattered without staging
  dev.launch(LaunchCfg::for_elements("staged", 1 << 12), [&](ThreadCtx& t) {
    const u64 i = t.global_id();
    if (i >= out.size()) return;
    out.store_staged(t, (i * stride) % out.size(), i, 1.0 * i);
  });
  const auto& c = dev.report().at("staged").counters;
  EXPECT_GT(c.shared_accesses, 0.0);
  // The recorded global traffic is the dense burst: minimal transactions.
  EXPECT_NEAR(c.coalesced_transactions, (1 << 12) * 8.0 / 128.0, 16);
  EXPECT_NEAR(c.random_transactions, 0.0, 1.0);
  // And the values really landed at the scattered addresses.
  EXPECT_DOUBLE_EQ(out.host()[stride % out.size()], 1.0);
}

TEST(Device, SyncPointOrdersAcrossStreams) {
  // Without the barrier two equal kernels on different streams overlap
  // fully on compute; with it they serialize.
  auto run = [](bool barrier) {
    Device dev;
    dev.begin_capture();
    const LaunchCfg a{"a", 1, 32, 1};
    const LaunchCfg b{"b", 1, 32, 2};
    DeviceBuffer<double> buf(32);
    auto body = [&](ThreadCtx& t) {
      t.add_flops(1e9);  // ~1.4 ms of DP work: dwarfs launch overhead
      if (t.global_id() < buf.size()) buf.store(t, t.global_id(), 1.0);
    };
    dev.launch(a, body);
    if (barrier) dev.sync_point();
    dev.launch(b, body);
    return dev.elapsed_model_ms();
  };
  const double free_ms = run(false);
  const double ordered_ms = run(true);
  EXPECT_GT(ordered_ms, 1.7 * free_ms);
}

TEST(Device, AtomicScalingUnderSampling) {
  // With warp sampling, the extrapolated atomic-conflict depth must stay
  // within ~2x of the exact count for a uniform conflict pattern.
  auto conflict = [](u64 max_warps) {
    Device dev;
    dev.set_max_traced_warps(max_warps);
    dev.begin_capture();
    DeviceBuffer<u64> c(4);
    dev.launch(LaunchCfg::for_elements("atomics", 1 << 14),
               [&](ThreadCtx& t) { c.atomic_add(t, 0, u64{1}); });
    return dev.report().at("atomics").counters.max_atomic_conflict;
  };
  const double exact = conflict(1 << 20);
  const double sampled = conflict(32);
  EXPECT_NEAR(exact, 1 << 14, 1);
  EXPECT_GT(sampled, exact / 2);
  EXPECT_LT(sampled, exact * 2);
}

TEST(Timeline, BarrierAppliesOnlyToLaterItems) {
  Timeline tl(32);
  tl.submit({"a", 1, Resource::kDeviceMemory, 0.0, 1e-3, 0});
  tl.submit({"b", 2, Resource::kDeviceMemory, 0.0, 1e-3, 0});
  tl.barrier();
  tl.submit({"c", 3, Resource::kDeviceMemory, 0.0, 1e-3, 0});
  EXPECT_NEAR(tl.simulate(), 2e-3, 1e-6);  // a||b then c
  EXPECT_NEAR(tl.schedule()[2].start_s, 1e-3, 1e-6);
}

TEST(Timeline, ChainedBarriersSerializeEverything) {
  Timeline tl(32);
  for (int i = 0; i < 4; ++i) {
    tl.submit({"k", static_cast<StreamId>(i + 1), Resource::kDeviceMemory,
               0.0, 1e-3, 0});
    tl.barrier();
  }
  EXPECT_NEAR(tl.simulate(), 4e-3, 1e-6);
}

TEST(WarpTracerUnit, GroupsBySlotAndClassifies) {
  LaunchArena arena;
  WarpTracer tr;
  tr.reset(128, &arena);
  // Slot 0: 32 lanes reading 16B each, consecutive -> 4 coalesced tx.
  for (u32 lane = 0; lane < 32; ++lane)
    tr.on_access(0, 4096 + lane * 16, 16, false);
  // Slot 1: 32 lanes scattered 512B apart -> 32 random tx.
  for (u32 lane = 0; lane < 32; ++lane)
    tr.on_access(1, 1 << 20 | (lane * 512), 16, false);
  const WarpTotals t = tr.finalize();
  EXPECT_DOUBLE_EQ(t.coalesced_tx, 4);
  EXPECT_DOUBLE_EQ(t.random_tx, 32);
  EXPECT_DOUBLE_EQ(t.useful_bytes, 2 * 32 * 16);
}

TEST(WarpTracerUnit, StraddlingAccessCountsBothSegments) {
  LaunchArena arena;
  WarpTracer tr;
  tr.reset(128, &arena);
  tr.on_access(0, 120, 16, false);  // crosses the 128B boundary
  const WarpTotals t = tr.finalize();
  EXPECT_DOUBLE_EQ(t.coalesced_tx + t.random_tx, 2);
}


TEST(Timeline, EventTimesTrackCompletion) {
  Timeline tl(32);
  const std::size_t e0 = tl.record_event();  // before anything
  tl.submit({"a", 0, Resource::kDeviceMemory, 0.0, 1e-3, 0});
  const std::size_t e1 = tl.record_event();
  tl.submit({"b", 0, Resource::kDeviceMemory, 0.0, 2e-3, 0});
  const std::size_t e2 = tl.record_event();
  tl.simulate();
  EXPECT_NEAR(tl.event_time_s(e0), 0.0, 1e-12);
  EXPECT_NEAR(tl.event_time_s(e1), 1e-3, 1e-9);
  EXPECT_NEAR(tl.event_time_s(e2), 3e-3, 1e-9);
  EXPECT_THROW(tl.event_time_s(99), std::out_of_range);
}

TEST(Device, EventApiMeasuresSpans) {
  Device dev;
  dev.begin_capture();
  DeviceBuffer<double> buf(1 << 14);
  const auto e0 = dev.record_event();
  dev.launch(LaunchCfg::for_elements("w", buf.size()), [&](ThreadCtx& t) {
    const u64 i = t.global_id();
    if (i < buf.size()) buf.store(t, i, 1.0);
  });
  const auto e1 = dev.record_event();
  const double span = dev.event_time_ms(e1) - dev.event_time_ms(e0);
  EXPECT_GT(span, 0.0);
  EXPECT_NEAR(span, dev.elapsed_model_ms(), 1e-9);
}


TEST(Device, CustomSpecScalesModeledTime) {
  perfmodel::GpuSpec slow = perfmodel::GpuSpec::k20x();
  slow.mem_bandwidth_Bps /= 4;
  auto run = [](perfmodel::GpuSpec spec) {
    Device dev(spec);
    dev.begin_capture();
    DeviceBuffer<double> in(1 << 16), out(1 << 16);
    dev.launch(LaunchCfg::for_elements("copy", 1 << 16), [&](ThreadCtx& t) {
      const u64 i = t.global_id();
      out.store(t, i, in.load(t, i));
    });
    return dev.elapsed_model_ms();
  };
  const double fast_ms = run(perfmodel::GpuSpec::k20x());
  const double slow_ms = run(slow);
  EXPECT_NEAR(slow_ms / fast_ms, 4.0, 0.5);
}


TEST(Report, TableListsKernels) {
  Device dev;
  dev.begin_capture();
  DeviceBuffer<double> buf(256);
  dev.launch(LaunchCfg::for_elements("alpha", 256), [&](ThreadCtx& t) {
    if (t.global_id() < 256) buf.store(t, t.global_id(), 1.0);
  });
  const ResultTable t = report_table(dev);
  EXPECT_EQ(t.rows(), 5u);  // one kernel row + four [pool ...] rows
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  EXPECT_NE(ascii.find("[pool allocations]"), std::string::npos);
}

TEST(Timeline, EventBeforeAnyItemIsZero) {
  Timeline tl(32);
  const std::size_t e = tl.record_event();
  tl.simulate();  // empty timeline: event still resolvable
  EXPECT_DOUBLE_EQ(tl.event_time_s(e), 0.0);

  tl.clear();
  const std::size_t e2 = tl.record_event();
  tl.submit({"later", 0, Resource::kDeviceMemory, 1e-3, 0.0, 0});
  tl.simulate();
  // The event predates every item, so completing work can't move it.
  EXPECT_DOUBLE_EQ(tl.event_time_s(e2), 0.0);
}

TEST(Timeline, EventAfterBarrierSeesAllPriorWork) {
  Timeline tl(32);
  tl.submit({"s0", 0, Resource::kDeviceMemory, 0.0, 1e-3, 0});
  tl.submit({"s1", 1, Resource::kDeviceMemory, 0.0, 4e-3, 0});
  tl.barrier();
  const std::size_t e = tl.record_event();
  tl.submit({"tail", 2, Resource::kDeviceMemory, 0.0, 1e-3, 0});
  const double makespan = tl.simulate();
  // The event covers both pre-barrier streams (slowest: 4 ms), and the
  // post-barrier item starts no earlier than that.
  EXPECT_NEAR(tl.event_time_s(e), 4e-3, 1e-9);
  EXPECT_NEAR(makespan, 5e-3, 1e-9);
  EXPECT_GE(tl.schedule().back().start_s, 4e-3 - 1e-12);
}

TEST(Timeline, RepeatedSimulateIsIdempotent) {
  Timeline tl(4);
  for (int i = 0; i < 8; ++i)
    tl.submit({"k" + std::to_string(i), static_cast<StreamId>(i % 3),
               Resource::kDeviceMemory, 1e-3, 5e-4, 0});
  const std::size_t e = tl.record_event();
  const double first = tl.simulate();
  const auto sched = tl.schedule();
  const double t_first = tl.event_time_s(e);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_DOUBLE_EQ(tl.simulate(), first);
    EXPECT_DOUBLE_EQ(tl.event_time_s(e), t_first);
    ASSERT_EQ(tl.schedule().size(), sched.size());
    for (std::size_t i = 0; i < sched.size(); ++i) {
      EXPECT_DOUBLE_EQ(tl.schedule()[i].start_s, sched[i].start_s);
      EXPECT_DOUBLE_EQ(tl.schedule()[i].finish_s, sched[i].finish_s);
    }
  }
}

}  // namespace
}  // namespace cusfft::cusim
