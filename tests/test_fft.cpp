// Unit + property tests for src/fft: plan correctness against the naive DFT
// oracle, round trips, linearity, shift theorem, batching, parallel paths,
// Bluestein sizes.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "fft/dft.hpp"
#include "fft/fft.hpp"

namespace cusfft {
namespace {

cvec random_signal(std::size_t n, u64 seed) {
  Rng rng(seed);
  cvec x(n);
  for (auto& v : x) v = cplx{rng.next_normal(), rng.next_normal()};
  return x;
}

double max_abs_diff(const cvec& a, const cvec& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(NaiveDft, MatchesClosedFormImpulse) {
  cvec x(8, cplx{});
  x[0] = {1.0, 0.0};
  cvec X = fft::dft_naive(x);
  for (const auto& v : X) EXPECT_NEAR(std::abs(v - cplx{1.0, 0.0}), 0.0, 1e-12);
}

TEST(NaiveDft, SingleToneLandsAtItsBin) {
  const std::size_t n = 16;
  cvec x(n);
  const std::size_t f = 3;
  for (std::size_t t = 0; t < n; ++t) {
    const double ang = kTwoPi * f * t / n;
    x[t] = cplx{std::cos(ang), std::sin(ang)};
  }
  cvec X = fft::dft_naive(x);
  EXPECT_NEAR(std::abs(X[f]), static_cast<double>(n), 1e-9);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != f) {
      EXPECT_NEAR(std::abs(X[i]), 0.0, 1e-9);
    }
  }
}

TEST(NaiveDft, InverseRoundTrip) {
  cvec x = random_signal(12, 5);
  EXPECT_LT(max_abs_diff(fft::idft_naive(fft::dft_naive(x)), x), 1e-10);
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  cvec x = random_signal(n, 100 + n);
  cvec expect = fft::dft_naive(x);
  cvec got = fft::fft(x);
  EXPECT_LT(max_abs_diff(got, expect), 1e-8 * std::sqrt(double(n)))
      << "n=" << n;
}

TEST_P(FftSizes, InverseRoundTrip) {
  const std::size_t n = GetParam();
  cvec x = random_signal(n, 200 + n);
  EXPECT_LT(max_abs_diff(fft::ifft(fft::fft(x)), x), 1e-9) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024));
INSTANTIATE_TEST_SUITE_P(Bluestein, FftSizes,
                         ::testing::Values(3, 5, 6, 7, 12, 100, 243, 1000));

TEST(FftPlan, RejectsZeroSize) {
  EXPECT_THROW(fft::Plan(0, fft::Direction::kForward), std::invalid_argument);
}

TEST(FftPlan, RejectsSizeMismatch) {
  fft::Plan p(8, fft::Direction::kForward);
  cvec x(4);
  EXPECT_THROW(p.execute(x), std::invalid_argument);
}

TEST(FftPlan, OutOfPlaceLeavesInputIntact) {
  cvec x = random_signal(64, 7);
  cvec keep = x;
  cvec out(64);
  fft::Plan p(64, fft::Direction::kForward);
  p.execute(x, out);
  EXPECT_EQ(x, keep);
  EXPECT_LT(max_abs_diff(out, fft::dft_naive(keep)), 1e-8);
}

TEST(FftPlan, PlanIsReusable) {
  fft::Plan p(128, fft::Direction::kForward);
  for (int rep = 0; rep < 3; ++rep) {
    cvec x = random_signal(128, 300 + rep);
    cvec out(128);
    p.execute(x, out);
    EXPECT_LT(max_abs_diff(out, fft::dft_naive(x)), 1e-8) << rep;
  }
}

TEST(FftProperties, Linearity) {
  const std::size_t n = 256;
  cvec a = random_signal(n, 1), b = random_signal(n, 2);
  const cplx alpha{1.5, -0.5};
  cvec mix(n);
  for (std::size_t i = 0; i < n; ++i) mix[i] = alpha * a[i] + b[i];
  cvec fa = fft::fft(a), fb = fft::fft(b), fmix = fft::fft(mix);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(fmix[i] - (alpha * fa[i] + fb[i])), 0.0, 1e-8);
}

TEST(FftProperties, ParsevalEnergyPreserved) {
  const std::size_t n = 512;
  cvec x = random_signal(n, 3);
  cvec X = fft::fft(x);
  double et = 0, ef = 0;
  for (const auto& v : x) et += std::norm(v);
  for (const auto& v : X) ef += std::norm(v);
  EXPECT_NEAR(ef, et * n, et * n * 1e-12);
}

TEST(FftProperties, TimeShiftIsLinearPhase) {
  const std::size_t n = 128, s = 5;
  cvec x = random_signal(n, 4);
  cvec xs(n);
  for (std::size_t t = 0; t < n; ++t) xs[t] = x[(t + s) % n];
  cvec X = fft::fft(x), Xs = fft::fft(xs);
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = kTwoPi * static_cast<double>(k * s) / n;
    const cplx phase{std::cos(ang), std::sin(ang)};
    EXPECT_NEAR(std::abs(Xs[k] - X[k] * phase), 0.0, 1e-8) << k;
  }
}

TEST(FftBatch, MatchesPerTransform) {
  const std::size_t n = 64, batch = 5;
  cvec data = random_signal(n * batch, 6);
  cvec expect = data;
  fft::Plan p(n, fft::Direction::kForward);
  for (std::size_t b = 0; b < batch; ++b)
    p.execute(std::span<cplx>(expect).subspan(b * n, n));
  p.execute_batch(data, batch);
  EXPECT_LT(max_abs_diff(data, expect), 0.0 + 1e-12);
}

TEST(FftBatch, ParallelMatchesSerial) {
  const std::size_t n = 64, batch = 9;
  cvec a = random_signal(n * batch, 8);
  cvec b = a;
  fft::Plan p(n, fft::Direction::kForward);
  p.execute_batch(a, batch);
  ThreadPool pool(4);
  p.execute_batch(b, batch, pool);
  EXPECT_LT(max_abs_diff(a, b), 1e-12);
}

TEST(FftParallel, LargeTransformMatchesSerial) {
  const std::size_t n = 1 << 12;
  cvec a = random_signal(n, 9);
  cvec b = a;
  fft::Plan p(n, fft::Direction::kForward);
  p.execute(a);
  ThreadPool pool(4);
  p.execute_parallel(b, pool);
  EXPECT_LT(max_abs_diff(a, b), 1e-12);
}

TEST(FftParallel, InverseParallelRoundTrip) {
  const std::size_t n = 1 << 10;
  cvec x = random_signal(n, 10);
  cvec y = x;
  ThreadPool pool(3);
  fft::Plan fwd(n, fft::Direction::kForward);
  fft::Plan inv(n, fft::Direction::kInverse);
  fwd.execute_parallel(y, pool);
  inv.execute_parallel(y, pool);
  EXPECT_LT(max_abs_diff(x, y), 1e-9);
}

TEST(FftCost, GrowsNLogN) {
  fft::Plan small(1 << 10, fft::Direction::kForward);
  fft::Plan big(1 << 20, fft::Direction::kForward);
  const auto cs = small.cost(), cb = big.cost();
  EXPECT_GT(cs.flops, 0.0);
  EXPECT_NEAR(cb.flops / cs.flops, (20.0 * (1 << 20)) / (10.0 * (1 << 10)),
              1e-9);
  EXPECT_GT(cb.bytes, cs.bytes);
}


TEST(FftCost, BluesteinCostsMoreThanPow2) {
  fft::Plan pow2(1024, fft::Direction::kForward);
  fft::Plan blue(1000, fft::Direction::kForward);
  EXPECT_GT(blue.cost().flops, pow2.cost().flops);
  EXPECT_GT(blue.cost().bytes, pow2.cost().bytes);
}

TEST(FftPlan, MoveTransfersOwnership) {
  fft::Plan a(64, fft::Direction::kForward);
  fft::Plan b = std::move(a);
  cvec x = random_signal(64, 11);
  cvec out(64);
  b.execute(x, out);
  EXPECT_LT(max_abs_diff(out, fft::dft_naive(x)), 1e-8);
}

TEST(FftProperties, ImpulseAndDcPairs) {
  // FFT of a constant is an impulse at bin 0 and vice versa.
  const std::size_t n = 128;
  cvec ones(n, cplx{1.0, 0.0});
  cvec F = fft::fft(ones);
  EXPECT_NEAR(std::abs(F[0] - cplx{double(n), 0.0}), 0.0, 1e-9);
  for (std::size_t i = 1; i < n; ++i)
    ASSERT_NEAR(std::abs(F[i]), 0.0, 1e-9) << i;
  cvec impulse(n, cplx{});
  impulse[0] = {1.0, 0.0};
  cvec G = fft::fft(impulse);
  for (const auto& v : G)
    ASSERT_NEAR(std::abs(v - cplx{1.0, 0.0}), 0.0, 1e-12);
}

TEST(FftProperties, ConjugateSymmetryForRealInput) {
  const std::size_t n = 256;
  Rng rng(12);
  cvec x(n);
  for (auto& v : x) v = cplx{rng.next_normal(), 0.0};
  cvec X = fft::fft(x);
  for (std::size_t k = 1; k < n; ++k)
    ASSERT_NEAR(std::abs(X[k] - std::conj(X[n - k])), 0.0, 1e-8) << k;
}

}  // namespace
}  // namespace cusfft
