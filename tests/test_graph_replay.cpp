// Captured-graph replay (cusim::LaunchGraph): repeat launches of a
// cacheable (shape, graph_key) tuple skip warp tracing and reuse the
// recorded traffic counters. The contract under test:
//   1. replay produces bit-identical functional outputs AND bit-identical
//      modeled times to a fully traced run (CUSFFT_GRAPH=0 equivalent);
//   2. records are namespaced by the device's graph domain (one plan's
//      records never serve another's launches);
//   3. GraphMode::kVerify traces anyway, cross-checks against the record,
//      and throws when the traffic genuinely diverges;
//   4. the plan/batch/fleet paths (kSerialized, kPipelined, 1/2/4-device
//      DeviceGroup) all hold property 1 while actually replaying.
#include <gtest/gtest.h>

#include <span>
#include <stdexcept>
#include <vector>

#include "core/rng.hpp"
#include "cusfft/multi_plan.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "cusim/device_group.hpp"
#include "signal/generate.hpp"

namespace cusfft {
namespace {

using cusim::Device;
using cusim::DeviceBuffer;
using cusim::DeviceGroup;
using cusim::GraphMode;
using cusim::LaunchCfg;
using cusim::ThreadCtx;

TEST(GraphReplay, DeviceRecordsThenReplays) {
  Device dev;
  dev.set_graph_mode(GraphMode::kOn);
  dev.begin_capture();
  DeviceBuffer<double> buf(1 << 12);
  auto run = [&](double scale) {
    dev.launch(LaunchCfg::for_elements("gr_fill", buf.size()).cache(1),
               [&, scale](ThreadCtx& t) {
                 const u64 i = t.global_id();
                 if (i < buf.size())
                   buf.store(t, i, scale * static_cast<double>(i));
               });
  };
  run(1.0);
  EXPECT_EQ(dev.graph_stats().records, 1u);
  EXPECT_EQ(dev.graph_stats().replays, 0u);
  const double first_ms = dev.elapsed_model_ms();
  EXPECT_GT(first_ms, 0.0);

  // Same tuple, different captured value: the replay still executes the
  // body (functional effects are live), only the tracer is skipped.
  run(2.0);
  EXPECT_EQ(dev.graph_stats().records, 1u);
  EXPECT_EQ(dev.graph_stats().replays, 1u);
  // Identical modeled cost: the replayed item reuses the recorded traffic.
  EXPECT_DOUBLE_EQ(dev.elapsed_model_ms(), 2.0 * first_ms);
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_EQ(buf.host()[i], 2.0 * static_cast<double>(i)) << i;
}

TEST(GraphReplay, UncacheableLaunchesNeverReplay) {
  Device dev;
  dev.set_graph_mode(GraphMode::kOn);
  dev.begin_capture();
  DeviceBuffer<double> buf(256);
  for (int rep = 0; rep < 3; ++rep)
    dev.launch(LaunchCfg::for_elements("gr_plain", buf.size()),
               [&](ThreadCtx& t) {
                 const u64 i = t.global_id();
                 if (i < buf.size()) buf.store(t, i, 1.0);
               });
  EXPECT_EQ(dev.graph_stats().records, 0u);
  EXPECT_EQ(dev.graph_stats().replays, 0u);
}

TEST(GraphReplay, DomainSaltNamespacesRecords) {
  Device dev;
  dev.set_graph_mode(GraphMode::kOn);
  dev.begin_capture();
  DeviceBuffer<double> buf(1 << 10);
  auto run = [&] {
    dev.launch(LaunchCfg::for_elements("gr_domain", buf.size()).cache(9),
               [&](ThreadCtx& t) {
                 const u64 i = t.global_id();
                 if (i < buf.size()) buf.store(t, i, 1.0);
               });
  };
  dev.set_graph_domain(111);
  run();
  dev.set_graph_domain(222);
  run();  // same (name, key, shape), different domain: must re-record
  EXPECT_EQ(dev.graph_stats().records, 2u);
  EXPECT_EQ(dev.graph_stats().replays, 0u);
  dev.set_graph_domain(111);
  run();  // back on the first domain: replays its record
  EXPECT_EQ(dev.graph_stats().replays, 1u);
}

TEST(GraphReplay, OffModeNeverRecords) {
  Device dev;
  dev.set_graph_mode(GraphMode::kOff);
  dev.begin_capture();
  DeviceBuffer<double> buf(256);
  for (int rep = 0; rep < 2; ++rep)
    dev.launch(LaunchCfg::for_elements("gr_off", buf.size()).cache(3),
               [&](ThreadCtx& t) {
                 const u64 i = t.global_id();
                 if (i < buf.size()) buf.store(t, i, 2.0);
               });
  EXPECT_EQ(dev.graph_stats().records, 0u);
  EXPECT_EQ(dev.graph_stats().replays, 0u);
}

TEST(GraphReplay, ClearGraphCacheForcesReRecord) {
  Device dev;
  dev.set_graph_mode(GraphMode::kOn);
  dev.begin_capture();
  DeviceBuffer<double> buf(256);
  auto run = [&] {
    dev.launch(LaunchCfg::for_elements("gr_clear", buf.size()).cache(5),
               [&](ThreadCtx& t) {
                 const u64 i = t.global_id();
                 if (i < buf.size()) buf.store(t, i, 3.0);
               });
  };
  run();
  dev.clear_graph_cache();
  run();
  EXPECT_EQ(dev.graph_stats().records, 2u);
  EXPECT_EQ(dev.graph_stats().replays, 0u);
}

TEST(GraphReplay, VerifyModeCrossChecksAndThrowsOnDivergence) {
  Device dev;
  dev.set_graph_mode(GraphMode::kVerify);
  dev.begin_capture();
  DeviceBuffer<double> buf(1 << 13);
  std::size_t stride = 1;
  auto run = [&] {
    dev.launch(LaunchCfg::for_elements("gr_stride", 128).cache(7),
               [&](ThreadCtx& t) {
                 const u64 i = t.global_id();
                 if (i < 128) buf.store(t, i * stride, 1.0);
               });
  };
  run();  // records under full tracing
  run();  // same traffic: cross-check passes
  EXPECT_EQ(dev.graph_stats().records, 1u);
  EXPECT_EQ(dev.graph_stats().verified, 1u);
  EXPECT_EQ(dev.graph_stats().replays, 0u);  // verify never skips tracing

  // Scatter the stores without changing the key: the recorded counters no
  // longer match the traced traffic and the cross-check must throw.
  stride = 37;
  EXPECT_THROW(run(), std::runtime_error);
}

// ---- End-to-end: plan, batch modes, fleets --------------------------------

sfft::Params make_params(std::size_t n, std::size_t k, u64 seed) {
  sfft::Params p;
  p.n = n;
  p.k = k;
  p.seed = seed;
  return p;
}

void expect_identical(const std::vector<SparseSpectrum>& a,
                      const std::vector<SparseSpectrum>& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << what << " signal " << i;
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j].loc, b[i][j].loc) << what << " signal " << i;
      EXPECT_EQ(a[i][j].val, b[i][j].val) << what << " signal " << i;
    }
  }
}

struct Batch {
  std::vector<cvec> signals;
  std::vector<std::span<const cplx>> views;
  Batch(std::size_t count, std::size_t n, std::size_t k, u64 seed0) {
    for (std::size_t i = 0; i < count; ++i) {
      Rng rng(seed0 + i);
      signals.push_back(signal::make_sparse_signal(n, k, rng).x);
    }
    for (const cvec& s : signals) views.emplace_back(s);
  }
};

TEST(GraphReplay, PlanReplayBitIdenticalToUntraced) {
  const std::size_t n = 1 << 13, k = 8;
  Rng rng(99);
  const cvec x = signal::make_sparse_signal(n, k, rng).x;
  const sfft::Params params = make_params(n, k, 4242);
  const gpu::Options opts = gpu::Options::optimized();

  Device dev_off;
  dev_off.set_graph_mode(GraphMode::kOff);
  gpu::GpuPlan plan_off(dev_off, params, opts);
  gpu::GpuExecStats st_off;
  const auto ref = plan_off.execute(x, &st_off);

  Device dev_on;
  dev_on.set_graph_mode(GraphMode::kOn);
  gpu::GpuPlan plan_on(dev_on, params, opts);
  const auto warm = plan_on.execute(x);  // records
  gpu::GpuExecStats st_hot;
  const auto hot = plan_on.execute(x, &st_hot);  // replays
  EXPECT_GT(dev_on.graph_stats().replays, 0u);

  expect_identical({ref}, {warm}, "record vs untraced");
  expect_identical({ref}, {hot}, "replay vs untraced");
  // Replay reuses recorded counters, so the modeled time is bit-identical
  // to the fully traced run.
  EXPECT_DOUBLE_EQ(st_hot.model_ms, st_off.model_ms);
}

TEST(GraphReplay, BatchModesBitIdenticalToUntraced) {
  const std::size_t n = 1 << 11, k = 8, count = 5;
  const sfft::Params params = make_params(n, k, 777);
  const gpu::Options opts = gpu::Options::optimized();
  Batch batch(count, n, k, 555);

  for (const gpu::BatchMode mode :
       {gpu::BatchMode::kSerialized, gpu::BatchMode::kPipelined}) {
    Device dev_off;
    dev_off.set_graph_mode(GraphMode::kOff);
    gpu::GpuPlan plan_off(dev_off, params, opts);
    gpu::GpuBatchStats st_off;
    const auto ref = plan_off.execute_many(batch.views, &st_off, mode);

    Device dev_on;
    dev_on.set_graph_mode(GraphMode::kOn);
    gpu::GpuPlan plan_on(dev_on, params, opts);
    gpu::GpuBatchStats st_hot;
    const auto hot = plan_on.execute_many(batch.views, &st_hot, mode);
    EXPECT_GT(dev_on.graph_stats().replays, 0u);  // later signals replay

    expect_identical(ref, hot, "batch replay vs untraced");
    EXPECT_DOUBLE_EQ(st_hot.model_ms, st_off.model_ms);
  }
}

TEST(GraphReplay, FleetsBitIdenticalToUntracedAcrossSizes) {
  const std::size_t n = 1 << 11, k = 8, count = 6;
  const sfft::Params params = make_params(n, k, 888);
  const gpu::Options opts = gpu::Options::optimized();
  Batch batch(count, n, k, 666);

  Device dev_off;
  dev_off.set_graph_mode(GraphMode::kOff);
  gpu::GpuPlan plan_off(dev_off, params, opts);
  const auto ref = plan_off.execute_many(batch.views);

  for (const std::size_t ndev : {1u, 2u, 4u}) {
    DeviceGroup group(ndev);
    for (std::size_t d = 0; d < group.size(); ++d)
      group.device(d).set_graph_mode(GraphMode::kOn);
    gpu::MultiGpuPlan mplan(group, params, opts);
    const auto got = mplan.execute_many(batch.views);
    expect_identical(ref, got, "fleet replay vs untraced");

    u64 replays = 0;
    for (std::size_t d = 0; d < group.size(); ++d)
      replays += group.device(d).graph_stats().replays;
    EXPECT_GT(replays, 0u) << ndev << " devices";
  }
}

}  // namespace
}  // namespace cusfft
