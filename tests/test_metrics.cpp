// Tests for the always-on telemetry registry (cusim/metrics.hpp): sharded
// counter/histogram exactness under concurrency, log-bucket geometry and
// percentile accuracy against a sorted reference, exposition formats
// (validated with the same tools/metrics_check_lib CI uses), collector
// re-baselining, and the GpuPlan/MultiGpuPlan to_metrics adapters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "cusfft/multi_plan.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "cusim/device_group.hpp"
#include "cusim/metrics.hpp"
#include "metrics_check_lib.hpp"
#include "signal/generate.hpp"

namespace cusfft {
namespace {

// Pin the pool width before anything touches ThreadPool::global() so the
// block-parallel paths stay multi-threaded on single-core CI runners.
const int kEnvGuard = [] {
  setenv("CUSFFT_THREADS", "4", /*overwrite=*/0);
  return 0;
}();

using cusim::Counter;
using cusim::Gauge;
using cusim::Histogram;
using cusim::HistogramSnapshot;
using cusim::MetricsRegistry;

TEST(MetricsCounter, AddsAndSumsAcrossShards) {
  Counter c;
  c.add(3);
  c.inc();
  EXPECT_EQ(c.value(), 4u);
}

TEST(MetricsCounter, HammerLosesNoIncrements) {
  // More threads than shards, every thread hot-looping add(1): the final
  // sum must be exact whatever the shard assignment.
  Counter c;
  constexpr std::size_t kThreads = 12;
  constexpr u64 kIters = 20000;
  std::vector<std::thread> ts;
  for (std::size_t t = 0; t < kThreads; ++t)
    ts.emplace_back([&c] {
      for (u64 i = 0; i < kIters; ++i) c.inc();
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), kThreads * kIters);
}

TEST(MetricsGauge, SetAddMax) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.set_max(3.0);  // below current: no-op
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.set_max(7.25);
  EXPECT_DOUBLE_EQ(g.value(), 7.25);
}

TEST(MetricsHistogram, BucketGeometryRoundTrips) {
  // Buckets are lower-inclusive [lower, upper): every value lands in a
  // bucket whose upper bound exceeds it and whose predecessor's upper
  // bound (the bucket's own lower bound) is <= the value.
  const double lo = std::ldexp(1.0, Histogram::kMinExp);
  const double hi = std::ldexp(1.0, Histogram::kMaxExp);
  const std::vector<double> vals = {
      0.0,       lo / 2,  lo,       lo * 1.01, 1e-4, 0.37, 0.5,
      0.9999999, 1.0,     1.000001, 1.5,       2.0,  3.7,  1024.0,
      1e6,       hi / 2,  hi * 0.999};
  for (double v : vals) {
    const std::size_t idx = Histogram::bucket_index(v);
    ASSERT_LT(idx, Histogram::kBuckets) << "v=" << v;
    EXPECT_LE(v, Histogram::bucket_upper(idx)) << "v=" << v;
    if (idx > 0) {
      EXPECT_GE(v, Histogram::bucket_upper(idx - 1)) << "v=" << v;
    }
  }
  // Underflow and overflow land in the sentinel buckets.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-1.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(hi), Histogram::kBuckets - 1);
  EXPECT_TRUE(std::isinf(Histogram::bucket_upper(Histogram::kBuckets - 1)));
  // Upper bounds are strictly ascending across the whole grid.
  for (std::size_t i = 1; i < Histogram::kBuckets; ++i)
    EXPECT_GT(Histogram::bucket_upper(i), Histogram::bucket_upper(i - 1));
}

TEST(MetricsHistogram, PercentilesTrackSortedReference) {
  // The percentile contract: within one bucket width (12.5% relative)
  // above the true order statistic, never below it, and p100 == exact max.
  Histogram h;
  Rng rng(42);
  std::vector<double> vals;
  for (int i = 0; i < 5000; ++i) {
    const double v = 0.05 + 40.0 * rng.next_double();
    vals.push_back(v);
    h.observe(v);
  }
  std::sort(vals.begin(), vals.end());
  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.count, vals.size());
  EXPECT_DOUBLE_EQ(s.min, vals.front());
  EXPECT_DOUBLE_EQ(s.max, vals.back());
  EXPECT_DOUBLE_EQ(s.percentile(1.0), vals.back());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(vals.size())));
    const double truth = vals[rank - 1];
    const double est = s.percentile(q);
    EXPECT_GE(est, truth) << "q=" << q;
    EXPECT_LE(est, truth * (1.0 + 1.0 / Histogram::kSubBuckets) + 1e-12)
        << "q=" << q;
  }
  // Empty histogram: percentiles are 0.
  EXPECT_DOUBLE_EQ(Histogram().snapshot().percentile(0.5), 0.0);
}

TEST(MetricsHistogram, MergeOfShardsMatchesSingleThreaded) {
  // The same observations fed from many threads (spread across shards)
  // must aggregate to the same snapshot a single thread produces.
  const std::size_t kThreads = 8;
  std::vector<std::vector<double>> per_thread(kThreads);
  Rng rng(7);
  for (std::size_t t = 0; t < kThreads; ++t)
    for (int i = 0; i < 2000; ++i)
      per_thread[t].push_back(0.01 + 10.0 * rng.next_double());

  Histogram solo;
  for (const auto& vs : per_thread)
    for (double v : vs) solo.observe(v);

  Histogram sharded;
  std::vector<std::thread> ts;
  for (std::size_t t = 0; t < kThreads; ++t)
    ts.emplace_back([&sharded, &per_thread, t] {
      for (double v : per_thread[t]) sharded.observe(v);
    });
  for (auto& t : ts) t.join();

  const HistogramSnapshot a = solo.snapshot();
  const HistogramSnapshot b = sharded.snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  EXPECT_NEAR(a.sum, b.sum, 1e-9 * std::abs(a.sum));
  ASSERT_EQ(a.buckets.size(), b.buckets.size());
  for (std::size_t i = 0; i < a.buckets.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.buckets[i].first, b.buckets[i].first);
    EXPECT_EQ(a.buckets[i].second, b.buckets[i].second);
  }
}

TEST(MetricsHistogram, HammerLosesNoObservations) {
  Histogram h;
  constexpr std::size_t kThreads = 10;
  constexpr u64 kIters = 5000;
  std::vector<std::thread> ts;
  for (std::size_t t = 0; t < kThreads; ++t)
    ts.emplace_back([&h, t] {
      for (u64 i = 0; i < kIters; ++i)
        h.observe(0.1 + static_cast<double>((t * kIters + i) % 97));
    });
  for (auto& t : ts) t.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kIters);
  u64 bucket_total = 0;
  for (const auto& [le, n] : s.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(MetricsRegistry, HandlesAreStableAndKindChecked) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("cusfft_test_total");
  Counter& c2 = reg.counter("cusfft_test_total");
  EXPECT_EQ(&c1, &c2);
  c1.add(5);
  EXPECT_EQ(c2.value(), 5u);
  EXPECT_THROW(reg.gauge("cusfft_test_total"), std::logic_error);
  EXPECT_THROW(reg.histogram("cusfft_test_total"), std::logic_error);
}

TEST(MetricsRegistry, LabelMergesIntoExistingSet) {
  EXPECT_EQ(MetricsRegistry::label("m", "device", "3"), "m{device=\"3\"}");
  EXPECT_EQ(MetricsRegistry::label("m{device=\"3\"}", "phase", "fft"),
            "m{device=\"3\",phase=\"fft\"}");
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandles) {
  MetricsRegistry reg;
  Counter& c = reg.counter("cusfft_reset_total");
  Gauge& g = reg.gauge("cusfft_reset_gauge");
  Histogram& h = reg.histogram("cusfft_reset_ms");
  c.add(9);
  g.set(4.5);
  h.observe(1.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().count, 0u);
  c.inc();  // the handle survives the reset
  EXPECT_EQ(reg.snapshot().counters.at("cusfft_reset_total"), 1u);
}

TEST(MetricsRegistry, CollectorCountersRebaselineOnReset) {
  // A pull collector reporting an ever-growing external total must expose
  // deltas relative to the last reset().
  MetricsRegistry reg;
  u64 external = 100;
  reg.add_collector([&external](MetricsRegistry::Snapshot& s) {
    s.counters["cusfft_external_total"] = external;
  });
  EXPECT_EQ(reg.snapshot().counters.at("cusfft_external_total"), 100u);
  reg.reset();
  EXPECT_EQ(reg.snapshot().counters.at("cusfft_external_total"), 0u);
  external += 7;
  EXPECT_EQ(reg.snapshot().counters.at("cusfft_external_total"), 7u);
}

TEST(MetricsExposition, JsonAndPrometheusPassMetricsCheck) {
  // Validate both formats with the exact checker CI runs on bench
  // artifacts — one snapshot, both renderings, so they must agree.
  MetricsRegistry reg;
  reg.counter("cusfft_a_total").add(3);
  reg.counter(MetricsRegistry::label("cusfft_b_total", "device", "0"))
      .add(11);
  reg.gauge("cusfft_util").set(0.75);
  Histogram& h = reg.histogram(
      MetricsRegistry::label("cusfft_lat_ms", "device", "0"));
  for (int i = 1; i <= 200; ++i) h.observe(0.01 * i);
  reg.histogram("cusfft_empty_ms");  // zero-count histogram must be valid

  const MetricsRegistry::Snapshot snap = reg.snapshot();
  const std::string js = snap.to_json();
  const std::string prom = snap.to_prometheus();

  const auto jr = tools::check_metrics_json(js);
  EXPECT_TRUE(jr.ok) << (jr.errors.empty() ? "" : jr.errors.front());
  EXPECT_EQ(jr.counters, 2u);
  EXPECT_EQ(jr.gauges, 1u);
  EXPECT_EQ(jr.histograms, 2u);

  const auto pr = tools::check_metrics_prometheus(js, prom);
  EXPECT_TRUE(pr.ok) << (pr.errors.empty() ? "" : pr.errors.front());

  // Identical state renders byte-identically (determinism contract).
  EXPECT_EQ(js, reg.expose_json());
  EXPECT_EQ(prom, reg.expose_text());

  // A later snapshot is monotonic vs the earlier one.
  reg.counter("cusfft_a_total").add(2);
  h.observe(5.0);
  const auto mr = tools::check_metrics_monotonic(js, reg.expose_json());
  EXPECT_TRUE(mr.ok) << (mr.errors.empty() ? "" : mr.errors.front());
  // And the reverse direction must fail (counters went backwards).
  EXPECT_FALSE(tools::check_metrics_monotonic(reg.expose_json(), js).ok);
}

cvec metrics_signal(std::size_t n, std::size_t k, u64 seed) {
  Rng rng(seed);
  return signal::make_sparse_signal(n, k, rng).x;
}

TEST(MetricsAdapters, ExecuteAdvancesGlobalCounters) {
  // execute() publishes even when the caller passes no stats out-param.
  sfft::Params p;
  p.n = 1 << 12;
  p.k = 8;
  p.seed = 3;
  const cvec x = metrics_signal(p.n, p.k, 5);

  auto& reg = MetricsRegistry::global();
  const auto before = reg.snapshot();
  const auto cnt = [](const MetricsRegistry::Snapshot& s,
                      const std::string& name) {
    const auto it = s.counters.find(name);
    return it == s.counters.end() ? u64{0} : it->second;
  };
  {
    cusim::Device dev;
    gpu::GpuPlan plan(dev, p, gpu::Options::optimized());
    plan.execute(x);
  }
  const auto after = reg.snapshot();
  EXPECT_EQ(cnt(after, "cusfft_executes_total"),
            cnt(before, "cusfft_executes_total") + 1);
  EXPECT_GE(cnt(after, "cusfft_graph_records_total"),
            cnt(before, "cusfft_graph_records_total"));
  const auto& hists = after.histograms;
  ASSERT_TRUE(hists.count("cusfft_execute_model_ms"));
  EXPECT_GT(hists.at("cusfft_execute_model_ms").count, 0u);
  ASSERT_TRUE(hists.count("cusfft_signal_latency_ms{device=\"0\"}"));
}

TEST(MetricsAdapters, FleetPublishesPerDeviceOnce) {
  // execute_mixed publishes exactly one latency observation per signal,
  // attributed to the assigned device — no double count from the
  // shard-level run_batch.
  sfft::Params p;
  p.n = 1 << 12;
  p.k = 8;
  p.seed = 9;
  constexpr std::size_t kBatch = 6;
  std::vector<cvec> xs;
  std::vector<gpu::MixedSignal> sig;
  for (std::size_t i = 0; i < kBatch; ++i)
    xs.push_back(metrics_signal(p.n, p.k, 50 + i));
  for (const cvec& x : xs) sig.push_back({std::span<const cplx>(x), p});

  auto& reg = MetricsRegistry::global();
  const auto before = reg.snapshot();
  cusim::DeviceGroup group(2);
  gpu::MultiGpuPlan mplan(group, p, gpu::Options::optimized());
  gpu::GpuFleetStats fs;
  mplan.execute_mixed(sig, &fs);
  const auto after = reg.snapshot();

  const auto cnt = [](const MetricsRegistry::Snapshot& s,
                      const std::string& name) {
    const auto it = s.counters.find(name);
    return it == s.counters.end() ? u64{0} : it->second;
  };
  EXPECT_EQ(cnt(after, "cusfft_fleet_batches_total"),
            cnt(before, "cusfft_fleet_batches_total") + 1);
  u64 latency_delta = 0;
  for (std::size_t d = 0; d < 2; ++d) {
    const std::string name =
        MetricsRegistry::label("cusfft_signal_latency_ms", "device",
                               std::to_string(d));
    const u64 b = before.histograms.count(name)
                      ? before.histograms.at(name).count
                      : 0;
    ASSERT_TRUE(after.histograms.count(name)) << name;
    latency_delta += after.histograms.at(name).count - b;
    EXPECT_GE(after.gauges.count(MetricsRegistry::label(
                  "cusfft_device_utilization", "device", std::to_string(d))),
              1u);
  }
  EXPECT_EQ(latency_delta, kBatch);
  // The full global exposition stays checker-clean after real traffic.
  const auto jr = tools::check_metrics_json(reg.expose_json());
  EXPECT_TRUE(jr.ok) << (jr.errors.empty() ? "" : jr.errors.front());
  const auto pr = tools::check_metrics_prometheus(reg.expose_json(),
                                                  reg.expose_text());
  EXPECT_TRUE(pr.ok) << (pr.errors.empty() ? "" : pr.errors.front());
}

TEST(MetricsCheckLib, RejectsCorruptDocuments) {
  EXPECT_FALSE(tools::check_metrics_json("not json").ok);
  EXPECT_FALSE(tools::check_metrics_json("{\"schema\": \"wrong\"}").ok);
  // A histogram whose buckets disagree with its count must fail.
  const std::string bad =
      "{\"schema\": \"cusfft-metrics-v1\", \"counters\": {}, \"gauges\": "
      "{}, \"histograms\": {\"h\": {\"count\": 5, \"sum\": 1, \"min\": 1, "
      "\"max\": 1, \"p50\": 1, \"p95\": 1, \"p99\": 1, \"buckets\": "
      "[{\"le\": 2, \"count\": 2}]}}}";
  const auto r = tools::check_metrics_json(bad);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.errors.front().find("sum to 2"), std::string::npos);
}

}  // namespace
}  // namespace cusfft
