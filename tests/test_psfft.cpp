// Tests for the multicore CPU comparators: PsFFT (agreement with the serial
// reference, model stats) and the parallel dense-FFT baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "fft/fft.hpp"
#include "psfft/fftw_baseline.hpp"
#include "psfft/psfft.hpp"
#include "sfft/serial.hpp"
#include "signal/generate.hpp"

namespace cusfft::psfft {
namespace {

sfft::Params make_params(std::size_t n, std::size_t k) {
  sfft::Params p;
  p.n = n;
  p.k = k;
  p.seed = 555;
  return p;
}

TEST(Psfft, MatchesSerialReferenceExactly) {
  const std::size_t n = 1 << 14, k = 16;
  Rng rng(1);
  auto sig = signal::make_sparse_signal(n, k, rng);
  const auto p = make_params(n, k);

  sfft::SerialPlan serial(p);
  const auto a = serial.execute(sig.x);

  ThreadPool pool(4);
  PsfftPlan parallel(p, pool);
  const auto b = parallel.execute(sig.x);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].loc, b[i].loc) << i;
    // Binning accumulates per bucket in the same order -> values match to
    // rounding of the identical FFT plan.
    EXPECT_NEAR(std::abs(a[i].val - b[i].val), 0.0, 1e-12) << i;
  }
}

TEST(Psfft, RecoversSparseSignal) {
  const std::size_t n = 1 << 15, k = 32;
  Rng rng(2);
  auto sig = signal::make_sparse_signal(n, k, rng);
  ThreadPool pool(4);
  PsfftPlan plan(make_params(n, k), pool);
  const auto got = plan.execute(sig.x);
  cvec oracle = densify(sig.truth, n);
  EXPECT_DOUBLE_EQ(location_recall(got, oracle, k), 1.0);
  EXPECT_LT(l1_error_per_coeff(got, oracle, k), 1e-2);
}

TEST(Psfft, StatsModelAllPhases) {
  const std::size_t n = 1 << 13, k = 8;
  Rng rng(3);
  auto sig = signal::make_sparse_signal(n, k, rng);
  ThreadPool pool(2);
  PsfftPlan plan(make_params(n, k), pool);
  CpuExecStats stats;
  plan.execute(sig.x, &stats);
  EXPECT_GT(stats.model_ms, 0.0);
  EXPECT_GT(stats.host_ms, 0.0);
  EXPECT_EQ(stats.step_model_ms.size(), 5u);
  double sum = 0;
  for (const auto& [k2, v] : stats.step_model_ms) sum += v;
  EXPECT_NEAR(sum, stats.model_ms, 1e-9);
}

TEST(Psfft, RejectsWrongSize) {
  ThreadPool pool(2);
  PsfftPlan plan(make_params(1 << 13, 8), pool);
  cvec wrong(1 << 12);
  EXPECT_THROW(plan.execute(wrong), std::invalid_argument);
}

TEST(Psfft, SingleWorkerPoolStillCorrect) {
  const std::size_t n = 1 << 13, k = 8;
  Rng rng(5);
  auto sig = signal::make_sparse_signal(n, k, rng);
  ThreadPool pool(1);
  PsfftPlan plan(make_params(n, k), pool);
  const auto got = plan.execute(sig.x);
  cvec oracle = densify(sig.truth, n);
  EXPECT_DOUBLE_EQ(location_recall(got, oracle, k), 1.0);
}

TEST(Psfft, PoolSizeDoesNotChangeResults) {
  const std::size_t n = 1 << 14, k = 12;
  Rng rng(6);
  auto sig = signal::make_sparse_signal(n, k, rng);
  const auto p = make_params(n, k);
  ThreadPool p1(1), p4(4);
  const auto a = PsfftPlan(p, p1).execute(sig.x);
  const auto b = PsfftPlan(p, p4).execute(sig.x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].loc, b[i].loc);
    EXPECT_EQ(a[i].val, b[i].val);  // per-bucket order identical
  }
}

TEST(Psfft, CustomCpuSpecChangesModelOnly) {
  const std::size_t n = 1 << 13, k = 8;
  Rng rng(7);
  auto sig = signal::make_sparse_signal(n, k, rng);
  ThreadPool pool(2);
  perfmodel::CpuSpec fast = perfmodel::CpuSpec::e5_2640();
  fast.cores = 12;
  fast.mem_bandwidth_Bps *= 2;
  PsfftPlan slow_plan(make_params(n, k), pool);
  PsfftPlan fast_plan(make_params(n, k), pool, fast);
  CpuExecStats ss, sf;
  const auto a = slow_plan.execute(sig.x, &ss);
  const auto b = fast_plan.execute(sig.x, &sf);
  EXPECT_LT(sf.model_ms, ss.model_ms);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].loc, b[i].loc);
}


TEST(DenseFftBaseline, MatchesPlanOutput) {
  const std::size_t n = 1 << 12;
  Rng rng(4);
  cvec x(n);
  for (auto& v : x) v = cplx{rng.next_normal(), rng.next_normal()};
  cvec out(n);
  ThreadPool pool(4);
  const auto r = dense_fft_parallel(x, out, pool);
  cvec expect = fft::fft(x);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_NEAR(std::abs(out[i] - expect[i]), 0.0, 1e-9) << i;
  EXPECT_GT(r.model_ms, 0.0);
  EXPECT_GT(r.host_ms, 0.0);
}

TEST(DenseFftBaseline, ModelScalesRoughlyNLogN) {
  // Compare sizes where data movement dominates the fixed parallel-region
  // overhead; a 64x size step must cost well over 32x.
  ThreadPool pool(1);
  cvec a(1 << 16), b(1 << 22);
  cvec oa(1 << 16), ob(1 << 22);
  const auto ra = dense_fft_parallel(a, oa, pool);
  const auto rb = dense_fft_parallel(b, ob, pool);
  EXPECT_GT(rb.model_ms, 32.0 * ra.model_ms);
}

}  // namespace
}  // namespace cusfft::psfft
