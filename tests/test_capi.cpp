// Tests for the C API façade: plan lifecycle, every backend, error paths,
// capacity truncation, and seed control — all through the extern "C"
// surface only.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "capi/cusfft.h"
#include "core/json_lite.hpp"
#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "signal/generate.hpp"

namespace {

using cusfft::cplx;
using cusfft::cvec;

struct CWorkload {
  cvec x;
  cvec oracle;
  std::size_t n, k;
};

CWorkload make_workload(std::size_t n, std::size_t k, cusfft::u64 seed) {
  cusfft::Rng rng(seed);
  auto sig = cusfft::signal::make_sparse_signal(n, k, rng);
  return {sig.x, cusfft::densify(sig.truth, n), n, k};
}

class CApiBackends : public ::testing::TestWithParam<cusfft_backend> {};

TEST_P(CApiBackends, PlanExecuteDestroyRecovers) {
  const auto w = make_workload(1 << 14, 12, 321);
  cusfft_handle h = nullptr;
  ASSERT_EQ(cusfft_plan(&h, w.n, w.k, GetParam()), CUSFFT_SUCCESS);
  ASSERT_NE(h, nullptr);

  std::size_t n = 0, k = 0;
  EXPECT_EQ(cusfft_get_size(h, &n, &k), CUSFFT_SUCCESS);
  EXPECT_EQ(n, w.n);
  EXPECT_EQ(k, w.k);

  std::vector<uint64_t> locs(4 * w.k);
  std::vector<double> vals(2 * 4 * w.k);
  std::size_t count = locs.size();
  ASSERT_EQ(cusfft_execute(h, reinterpret_cast<const double*>(w.x.data()),
                           locs.data(), vals.data(), &count),
            CUSFFT_SUCCESS);
  EXPECT_GE(count, w.k);

  cusfft::SparseSpectrum got;
  for (std::size_t i = 0; i < count; ++i)
    got.push_back({locs[i], cplx{vals[2 * i], vals[2 * i + 1]}});
  EXPECT_DOUBLE_EQ(cusfft::location_recall(got, w.oracle, w.k), 1.0);
  EXPECT_LT(cusfft::l1_error_per_coeff(got, w.oracle, w.k), 1e-2);

  EXPECT_EQ(cusfft_destroy(h), CUSFFT_SUCCESS);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, CApiBackends,
    ::testing::Values(CUSFFT_BACKEND_SERIAL, CUSFFT_BACKEND_PSFFT,
                      CUSFFT_BACKEND_GPU_BASELINE,
                      CUSFFT_BACKEND_GPU_OPTIMIZED),
    [](const auto& info) {
      switch (info.param) {
        case CUSFFT_BACKEND_SERIAL: return "serial";
        case CUSFFT_BACKEND_PSFFT: return "psfft";
        case CUSFFT_BACKEND_GPU_BASELINE: return "gpu_base";
        default: return "gpu_opt";
      }
    });

TEST(CApi, ExecuteManyMatchesExecutePerSignal) {
  constexpr std::size_t kBatch = 3;
  constexpr std::size_t kCap = 64;
  const std::size_t n = 1 << 13, k = 10;
  std::vector<double> inputs;  // back-to-back interleaved signals
  std::vector<CWorkload> ws;
  for (std::size_t i = 0; i < kBatch; ++i) {
    ws.push_back(make_workload(n, k, 900 + i));
    const double* d = reinterpret_cast<const double*>(ws[i].x.data());
    inputs.insert(inputs.end(), d, d + 2 * n);
  }

  cusfft_handle h = nullptr;
  ASSERT_EQ(cusfft_plan(&h, n, k, CUSFFT_BACKEND_GPU_OPTIMIZED),
            CUSFFT_SUCCESS);

  std::vector<uint64_t> locs(kBatch * kCap);
  std::vector<double> vals(2 * kBatch * kCap);
  std::size_t counts[kBatch] = {};
  ASSERT_EQ(cusfft_execute_many(h, inputs.data(), kBatch, kCap, locs.data(),
                                vals.data(), counts),
            CUSFFT_SUCCESS);

  for (std::size_t i = 0; i < kBatch; ++i) {
    std::vector<uint64_t> one_locs(kCap);
    std::vector<double> one_vals(2 * kCap);
    std::size_t count = kCap;
    ASSERT_EQ(cusfft_execute(h,
                             reinterpret_cast<const double*>(ws[i].x.data()),
                             one_locs.data(), one_vals.data(), &count),
              CUSFFT_SUCCESS);
    ASSERT_EQ(counts[i], count) << "signal " << i;
    for (std::size_t j = 0; j < count; ++j) {
      EXPECT_EQ(locs[i * kCap + j], one_locs[j]);
      EXPECT_EQ(vals[2 * (i * kCap + j)], one_vals[2 * j]);
      EXPECT_EQ(vals[2 * (i * kCap + j) + 1], one_vals[2 * j + 1]);
    }
  }
  EXPECT_EQ(cusfft_destroy(h), CUSFFT_SUCCESS);
}

TEST(CApi, BatchPipelineToggleKeepsResultsIdentical) {
  constexpr std::size_t kBatch = 4;
  constexpr std::size_t kCap = 64;
  const std::size_t n = 1 << 12, k = 8;
  std::vector<double> inputs;
  for (std::size_t i = 0; i < kBatch; ++i) {
    const CWorkload w = make_workload(n, k, 700 + i);
    const double* d = reinterpret_cast<const double*>(w.x.data());
    inputs.insert(inputs.end(), d, d + 2 * n);
  }

  cusfft_handle h = nullptr;
  ASSERT_EQ(cusfft_plan(&h, n, k, CUSFFT_BACKEND_GPU_OPTIMIZED),
            CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_set_batch_pipeline(nullptr, 1), CUSFFT_INVALID_ARGUMENT);

  auto run = [&](int pipeline, std::vector<uint64_t>& locs,
                 std::vector<double>& vals, std::size_t* counts) {
    ASSERT_EQ(cusfft_set_batch_pipeline(h, pipeline), CUSFFT_SUCCESS);
    ASSERT_EQ(cusfft_execute_many(h, inputs.data(), kBatch, kCap, locs.data(),
                                  vals.data(), counts),
              CUSFFT_SUCCESS);
  };

  std::vector<uint64_t> locs_on(kBatch * kCap), locs_off(kBatch * kCap);
  std::vector<double> vals_on(2 * kBatch * kCap), vals_off(2 * kBatch * kCap);
  std::size_t counts_on[kBatch] = {}, counts_off[kBatch] = {};
  run(1, locs_on, vals_on, counts_on);
  run(0, locs_off, vals_off, counts_off);

  // The toggle only changes the modeled batch schedule; recovered spectra
  // are bit-identical.
  for (std::size_t i = 0; i < kBatch; ++i) {
    ASSERT_EQ(counts_on[i], counts_off[i]) << "signal " << i;
    for (std::size_t j = 0; j < counts_on[i]; ++j) {
      EXPECT_EQ(locs_on[i * kCap + j], locs_off[i * kCap + j]);
      EXPECT_EQ(vals_on[2 * (i * kCap + j)], vals_off[2 * (i * kCap + j)]);
      EXPECT_EQ(vals_on[2 * (i * kCap + j) + 1],
                vals_off[2 * (i * kCap + j) + 1]);
    }
  }
  // CPU backends accept and ignore the call.
  cusfft_handle hs = nullptr;
  ASSERT_EQ(cusfft_plan(&hs, n, k, CUSFFT_BACKEND_SERIAL), CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_set_batch_pipeline(hs, 0), CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_destroy(hs), CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_destroy(h), CUSFFT_SUCCESS);
}

TEST(CApi, PipelineEnvRereadEachBatch) {
  // CUSFFT_PIPELINE must be consulted on every batch. The old resolver
  // latched the first value in a function-local static, so flipping the
  // environment between runs silently did nothing. The modeled makespan
  // (profile "model_ms") is the observable: serialized batches are
  // strictly slower than pipelined ones, bit-identical results aside.
  constexpr std::size_t kBatch = 4;
  constexpr std::size_t kCap = 64;
  const std::size_t n = 1 << 12, k = 8;
  std::vector<double> inputs;
  for (std::size_t i = 0; i < kBatch; ++i) {
    const CWorkload w = make_workload(n, k, 600 + i);
    const double* d = reinterpret_cast<const double*>(w.x.data());
    inputs.insert(inputs.end(), d, d + 2 * n);
  }
  cusfft_handle h = nullptr;
  ASSERT_EQ(cusfft_plan(&h, n, k, CUSFFT_BACKEND_GPU_OPTIMIZED),
            CUSFFT_SUCCESS);

  auto run_model_ms = [&]() {
    std::vector<uint64_t> locs(kBatch * kCap);
    std::vector<double> vals(2 * kBatch * kCap);
    std::size_t counts[kBatch] = {};
    EXPECT_EQ(cusfft_execute_many(h, inputs.data(), kBatch, kCap,
                                  locs.data(), vals.data(), counts),
              CUSFFT_SUCCESS);
    std::size_t len = 0;
    EXPECT_EQ(cusfft_profile_json(h, nullptr, 0, &len), CUSFFT_SUCCESS);
    std::vector<char> buf(len);
    EXPECT_EQ(cusfft_profile_json(h, buf.data(), buf.size(), &len),
              CUSFFT_SUCCESS);
    cusfft::json::Value doc;
    std::string err;
    EXPECT_TRUE(cusfft::json::parse(buf.data(), doc, &err)) << err;
    const cusfft::json::Value* profile = doc.find("profile");
    return profile != nullptr ? profile->number_or("model_ms", -1.0) : -1.0;
  };

  ::setenv("CUSFFT_PIPELINE", "1", 1);
  run_model_ms();  // warm-up: pool and pipeline buffers allocate once
  const double pipelined = run_model_ms();
  ::setenv("CUSFFT_PIPELINE", "0", 1);
  const double serialized = run_model_ms();
  ::setenv("CUSFFT_PIPELINE", "1", 1);
  const double pipelined_again = run_model_ms();
  ::unsetenv("CUSFFT_PIPELINE");

  EXPECT_GT(pipelined, 0.0);
  EXPECT_GT(serialized, pipelined) << "env flip must reach the scheduler";
  EXPECT_DOUBLE_EQ(pipelined_again, pipelined);
  EXPECT_EQ(cusfft_destroy(h), CUSFFT_SUCCESS);
}

TEST(CApi, PcieStagingAndShardPolicyControls) {
  constexpr std::size_t kBatch = 4;
  constexpr std::size_t kCap = 64;
  const std::size_t n = 1 << 12, k = 8;
  std::vector<double> inputs;
  for (std::size_t i = 0; i < kBatch; ++i) {
    const CWorkload w = make_workload(n, k, 850 + i);
    const double* d = reinterpret_cast<const double*>(w.x.data());
    inputs.insert(inputs.end(), d, d + 2 * n);
  }
  cusfft_handle h = nullptr;
  ASSERT_EQ(cusfft_plan(&h, n, k, CUSFFT_BACKEND_GPU_OPTIMIZED),
            CUSFFT_SUCCESS);

  // Argument validation.
  EXPECT_EQ(cusfft_set_pcie_staging(nullptr, CUSFFT_STAGING_UNLIMITED, 0),
            CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_set_pcie_staging(h, CUSFFT_STAGING_MAX_INFLIGHT, 0),
            CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_set_pcie_staging(h, static_cast<cusfft_pcie_staging>(99),
                                    1),
            CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_set_shard_policy(nullptr, CUSFFT_SHARD_COST_LPT),
            CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_set_shard_policy(h, static_cast<cusfft_shard_policy>(99)),
            CUSFFT_INVALID_ARGUMENT);

  ASSERT_EQ(cusfft_set_device_count(h, 2), CUSFFT_SUCCESS);
  auto run = [&](std::vector<uint64_t>& locs, std::vector<double>& vals,
                 std::size_t* counts) {
    ASSERT_EQ(cusfft_execute_many(h, inputs.data(), kBatch, kCap,
                                  locs.data(), vals.data(), counts),
              CUSFFT_SUCCESS);
  };
  std::vector<uint64_t> locs1(kBatch * kCap), locs2(kBatch * kCap);
  std::vector<double> vals1(2 * kBatch * kCap), vals2(2 * kBatch * kCap);
  std::size_t counts1[kBatch] = {}, counts2[kBatch] = {};
  run(locs1, vals1, counts1);
  cusfft_fleet_stats fs;
  ASSERT_EQ(cusfft_get_fleet_stats(h, &fs), CUSFFT_SUCCESS);
  EXPECT_EQ(fs.pcie_queue_ms, 0.0);  // unlimited never queues

  // Staged + legacy sharding: scheduling knobs only, results identical.
  ASSERT_EQ(cusfft_set_pcie_staging(h, CUSFFT_STAGING_ROUND_ROBIN, 0),
            CUSFFT_SUCCESS);
  ASSERT_EQ(cusfft_set_shard_policy(h, CUSFFT_SHARD_UNIT_GREEDY),
            CUSFFT_SUCCESS);
  run(locs2, vals2, counts2);
  for (std::size_t i = 0; i < kBatch; ++i) {
    ASSERT_EQ(counts1[i], counts2[i]) << "signal " << i;
    for (std::size_t j = 0; j < counts1[i]; ++j) {
      EXPECT_EQ(locs1[i * kCap + j], locs2[i * kCap + j]);
      EXPECT_EQ(vals1[2 * (i * kCap + j)], vals2[2 * (i * kCap + j)]);
      EXPECT_EQ(vals1[2 * (i * kCap + j) + 1],
                vals2[2 * (i * kCap + j) + 1]);
    }
  }
  ASSERT_EQ(cusfft_get_fleet_stats(h, &fs), CUSFFT_SUCCESS);
  EXPECT_GE(fs.pcie_queue_ms, 0.0);
  EXPECT_EQ(cusfft_destroy(h), CUSFFT_SUCCESS);

  // CPU backends accept and ignore both knobs.
  cusfft_handle cpu = nullptr;
  ASSERT_EQ(cusfft_plan(&cpu, n, k, CUSFFT_BACKEND_SERIAL), CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_set_pcie_staging(cpu, CUSFFT_STAGING_MAX_INFLIGHT, 2),
            CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_set_shard_policy(cpu, CUSFFT_SHARD_UNIT_GREEDY),
            CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_destroy(cpu), CUSFFT_SUCCESS);
}

TEST(CApi, MultiDeviceShardingMatchesSingleDevice) {
  constexpr std::size_t kBatch = 6;
  constexpr std::size_t kCap = 64;
  const std::size_t n = 1 << 12, k = 8;
  std::vector<double> inputs;
  for (std::size_t i = 0; i < kBatch; ++i) {
    const CWorkload w = make_workload(n, k, 800 + i);
    const double* d = reinterpret_cast<const double*>(w.x.data());
    inputs.insert(inputs.end(), d, d + 2 * n);
  }

  cusfft_handle h = nullptr;
  ASSERT_EQ(cusfft_plan(&h, n, k, CUSFFT_BACKEND_GPU_OPTIMIZED),
            CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_set_device_count(nullptr, 2), CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_set_device_count(h, 0), CUSFFT_INVALID_ARGUMENT);

  // No batch has run yet: no fleet stats.
  cusfft_fleet_stats fs;
  EXPECT_EQ(cusfft_get_fleet_stats(h, &fs), CUSFFT_INVALID_ARGUMENT);

  auto run = [&](std::vector<uint64_t>& locs, std::vector<double>& vals,
                 std::size_t* counts) {
    ASSERT_EQ(cusfft_execute_many(h, inputs.data(), kBatch, kCap,
                                  locs.data(), vals.data(), counts),
              CUSFFT_SUCCESS);
  };
  std::vector<uint64_t> locs1(kBatch * kCap), locs2(kBatch * kCap);
  std::vector<double> vals1(2 * kBatch * kCap), vals2(2 * kBatch * kCap);
  std::size_t counts1[kBatch] = {}, counts2[kBatch] = {};
  run(locs1, vals1, counts1);

  ASSERT_EQ(cusfft_set_device_count(h, 2), CUSFFT_SUCCESS);
  run(locs2, vals2, counts2);

  // Sharding only changes the modeled timeline: recovered spectra stay
  // bit-identical and in input order.
  for (std::size_t i = 0; i < kBatch; ++i) {
    ASSERT_EQ(counts1[i], counts2[i]) << "signal " << i;
    for (std::size_t j = 0; j < counts1[i]; ++j) {
      EXPECT_EQ(locs1[i * kCap + j], locs2[i * kCap + j]);
      EXPECT_EQ(vals1[2 * (i * kCap + j)], vals2[2 * (i * kCap + j)]);
      EXPECT_EQ(vals1[2 * (i * kCap + j) + 1],
                vals2[2 * (i * kCap + j) + 1]);
    }
  }

  ASSERT_EQ(cusfft_get_fleet_stats(h, &fs), CUSFFT_SUCCESS);
  EXPECT_EQ(fs.devices, 2u);
  EXPECT_EQ(fs.signals, kBatch);
  EXPECT_GT(fs.model_ms, 0);
  EXPECT_GE(fs.imbalance, 1.0);

  double util = -1;
  ASSERT_EQ(cusfft_get_device_utilization(h, 0, &util), CUSFFT_SUCCESS);
  EXPECT_GT(util, 0);
  EXPECT_LE(util, 1.0);
  EXPECT_EQ(cusfft_get_device_utilization(h, 2, &util),
            CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_get_device_utilization(h, 0, nullptr),
            CUSFFT_INVALID_ARGUMENT);

  // The retained capture is the merged fleet profile.
  std::size_t len = 0;
  ASSERT_EQ(cusfft_profile_json(h, nullptr, 0, &len), CUSFFT_SUCCESS);
  std::vector<char> buf(len);
  ASSERT_EQ(cusfft_profile_json(h, buf.data(), buf.size(), &len),
            CUSFFT_SUCCESS);
  cusfft::json::Value doc;
  std::string err;
  ASSERT_TRUE(cusfft::json::parse(buf.data(), doc, &err)) << err;
  const cusfft::json::Value* profile = doc.find("profile");
  ASSERT_NE(profile, nullptr);
  const cusfft::json::Value* devices = profile->find("devices");
  ASSERT_NE(devices, nullptr);
  EXPECT_EQ(devices->array.size(), 2u);

  // Back to one device: fleet stats reset until the next run.
  ASSERT_EQ(cusfft_set_device_count(h, 1), CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_get_fleet_stats(h, &fs), CUSFFT_INVALID_ARGUMENT);

  // CPU backends accept and ignore the setting.
  cusfft_handle cpu = nullptr;
  ASSERT_EQ(cusfft_plan(&cpu, n, k, CUSFFT_BACKEND_SERIAL), CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_set_device_count(cpu, 4), CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_destroy(cpu), CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_destroy(h), CUSFFT_SUCCESS);
}

TEST(CApi, NodeCountRoutesThroughClusterBitIdentically) {
  constexpr std::size_t kBatch = 6;
  constexpr std::size_t kCap = 64;
  const std::size_t n = 1 << 12, k = 8;
  std::vector<double> inputs;
  for (std::size_t i = 0; i < kBatch; ++i) {
    const CWorkload w = make_workload(n, k, 860 + i);
    const double* d = reinterpret_cast<const double*>(w.x.data());
    inputs.insert(inputs.end(), d, d + 2 * n);
  }

  cusfft_handle h = nullptr;
  ASSERT_EQ(cusfft_plan(&h, n, k, CUSFFT_BACKEND_GPU_OPTIMIZED),
            CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_set_node_count(nullptr, 2), CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_set_node_count(h, 0), CUSFFT_INVALID_ARGUMENT);

  // No batch has run yet: no cluster stats.
  cusfft_cluster_stats cs;
  EXPECT_EQ(cusfft_get_cluster_stats(h, &cs), CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_get_cluster_stats(h, nullptr), CUSFFT_INVALID_ARGUMENT);

  auto run = [&](std::vector<uint64_t>& locs, std::vector<double>& vals,
                 std::size_t* counts) {
    ASSERT_EQ(cusfft_execute_many(h, inputs.data(), kBatch, kCap,
                                  locs.data(), vals.data(), counts),
              CUSFFT_SUCCESS);
  };
  std::vector<uint64_t> locs1(kBatch * kCap), locs2(kBatch * kCap);
  std::vector<double> vals1(2 * kBatch * kCap), vals2(2 * kBatch * kCap);
  std::size_t counts1[kBatch] = {}, counts2[kBatch] = {};
  run(locs1, vals1, counts1);

  // One node, one device: the cluster view degrades to the fleet's.
  ASSERT_EQ(cusfft_get_cluster_stats(h, &cs), CUSFFT_SUCCESS);
  EXPECT_EQ(cs.nodes, 1u);
  EXPECT_EQ(cs.nic_transfers, 0u);
  EXPECT_EQ(cs.nic_bytes, 0);

  ASSERT_EQ(cusfft_set_device_count(h, 2), CUSFFT_SUCCESS);
  ASSERT_EQ(cusfft_set_node_count(h, 2), CUSFFT_SUCCESS);
  run(locs2, vals2, counts2);

  // Node sharding only changes the modeled timeline: recovered spectra
  // stay bit-identical and in input order.
  for (std::size_t i = 0; i < kBatch; ++i) {
    ASSERT_EQ(counts1[i], counts2[i]) << "signal " << i;
    for (std::size_t j = 0; j < counts1[i]; ++j) {
      EXPECT_EQ(locs1[i * kCap + j], locs2[i * kCap + j]);
      EXPECT_EQ(vals1[2 * (i * kCap + j)], vals2[2 * (i * kCap + j)]);
      EXPECT_EQ(vals1[2 * (i * kCap + j) + 1],
                vals2[2 * (i * kCap + j) + 1]);
    }
  }

  ASSERT_EQ(cusfft_get_cluster_stats(h, &cs), CUSFFT_SUCCESS);
  EXPECT_EQ(cs.nodes, 2u);
  EXPECT_EQ(cs.devices, 4u);
  EXPECT_EQ(cs.signals, kBatch);
  EXPECT_GT(cs.model_ms, 0);
  EXPECT_GE(cs.imbalance, 1.0);
  // The remote node's shard staged over the NIC.
  EXPECT_GT(cs.nic_transfers, 0u);
  EXPECT_GT(cs.nic_bytes, 0);

  // The retained capture is the merged cluster profile: one track group
  // per device across both nodes, NIC spans present.
  std::size_t len = 0;
  ASSERT_EQ(cusfft_profile_json(h, nullptr, 0, &len), CUSFFT_SUCCESS);
  std::vector<char> buf(len);
  ASSERT_EQ(cusfft_profile_json(h, buf.data(), buf.size(), &len),
            CUSFFT_SUCCESS);
  const std::string trace(buf.data());
  EXPECT_NE(trace.find("\"nodes\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"nic\""), std::string::npos);

  // Back to one node: stats reset until the next run.
  ASSERT_EQ(cusfft_set_node_count(h, 1), CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_get_cluster_stats(h, &cs), CUSFFT_INVALID_ARGUMENT);

  // CPU backends accept and ignore the setting; they never have cluster
  // stats.
  cusfft_handle cpu = nullptr;
  ASSERT_EQ(cusfft_plan(&cpu, n, k, CUSFFT_BACKEND_SERIAL), CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_set_node_count(cpu, 4), CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_get_cluster_stats(cpu, &cs), CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_destroy(cpu), CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_destroy(h), CUSFFT_SUCCESS);
}

TEST(CApi, ExecuteManyErrorPaths) {
  cusfft_handle h = nullptr;
  ASSERT_EQ(cusfft_plan(&h, 1 << 10, 4, CUSFFT_BACKEND_SERIAL),
            CUSFFT_SUCCESS);
  uint64_t locs[4];
  double vals[8];
  std::size_t counts[1];
  std::vector<double> in(2 << 10, 0.0);
  EXPECT_EQ(cusfft_execute_many(nullptr, in.data(), 1, 4, locs, vals, counts),
            CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_execute_many(h, nullptr, 1, 4, locs, vals, counts),
            CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_execute_many(h, in.data(), 1, 4, locs, vals, nullptr),
            CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_destroy(h), CUSFFT_SUCCESS);
}

TEST(CApi, CapacityTruncationKeepsLargest) {
  const auto w = make_workload(1 << 13, 10, 654);
  cusfft_handle h = nullptr;
  ASSERT_EQ(cusfft_plan(&h, w.n, w.k, CUSFFT_BACKEND_SERIAL),
            CUSFFT_SUCCESS);
  std::vector<uint64_t> locs(4);
  std::vector<double> vals(8);
  std::size_t count = 4;  // smaller than k: truncate to the 4 largest
  ASSERT_EQ(cusfft_execute(h, reinterpret_cast<const double*>(w.x.data()),
                           locs.data(), vals.data(), &count),
            CUSFFT_SUCCESS);
  EXPECT_EQ(count, 4u);
  for (std::size_t i = 0; i < count; ++i) {
    const cplx v{vals[2 * i], vals[2 * i + 1]};
    EXPECT_GT(std::abs(v), 0.5);  // real tones, not noise candidates
  }
  cusfft_destroy(h);
}

TEST(CApi, SeedControlIsDeterministic) {
  const auto w = make_workload(1 << 13, 8, 777);
  auto run = [&](uint64_t seed) {
    cusfft_handle h = nullptr;
    EXPECT_EQ(cusfft_plan(&h, w.n, w.k, CUSFFT_BACKEND_SERIAL),
              CUSFFT_SUCCESS);
    EXPECT_EQ(cusfft_set_seed(h, seed), CUSFFT_SUCCESS);
    std::vector<uint64_t> locs(64);
    std::vector<double> vals(128);
    std::size_t count = 64;
    EXPECT_EQ(cusfft_execute(h, reinterpret_cast<const double*>(w.x.data()),
                             locs.data(), vals.data(), &count),
              CUSFFT_SUCCESS);
    cusfft_destroy(h);
    locs.resize(count);
    return locs;
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(CApi, ErrorPaths) {
  cusfft_handle h = nullptr;
  EXPECT_EQ(cusfft_plan(nullptr, 1 << 14, 8, CUSFFT_BACKEND_SERIAL),
            CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_plan(&h, 1000, 8, CUSFFT_BACKEND_SERIAL),
            CUSFFT_INVALID_ARGUMENT);  // n not a power of two
  EXPECT_EQ(h, nullptr);
  EXPECT_EQ(cusfft_plan(&h, 1 << 14, 8, static_cast<cusfft_backend>(99)),
            CUSFFT_INVALID_ARGUMENT);
  // Device-memory budget failure surfaces as ALLOC_FAILED.
  EXPECT_EQ(cusfft_plan(&h, 1ULL << 28, 1000, CUSFFT_BACKEND_GPU_OPTIMIZED),
            CUSFFT_ALLOC_FAILED);

  ASSERT_EQ(cusfft_plan(&h, 1 << 14, 8, CUSFFT_BACKEND_SERIAL),
            CUSFFT_SUCCESS);
  std::size_t count = 8;
  EXPECT_EQ(cusfft_execute(h, nullptr, nullptr, nullptr, &count),
            CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_get_size(nullptr, &count, &count),
            CUSFFT_INVALID_ARGUMENT);
  cusfft_destroy(h);
  EXPECT_EQ(cusfft_destroy(nullptr), CUSFFT_SUCCESS);  // free(NULL) style
}

TEST(CApi, ProfileJsonSizeQueryThenFetch) {
  const auto w = make_workload(1 << 12, 8, 654);
  cusfft_handle h = nullptr;
  ASSERT_EQ(cusfft_plan(&h, w.n, w.k, CUSFFT_BACKEND_GPU_OPTIMIZED),
            CUSFFT_SUCCESS);

  // Before the first execute there is no capture to profile.
  std::size_t len = 0;
  EXPECT_EQ(cusfft_profile_json(h, nullptr, 0, &len),
            CUSFFT_INVALID_ARGUMENT);

  std::vector<uint64_t> locs(4 * w.k);
  std::vector<double> vals(2 * locs.size());
  std::size_t count = locs.size();
  ASSERT_EQ(cusfft_execute(h, reinterpret_cast<const double*>(w.x.data()),
                           locs.data(), vals.data(), &count),
            CUSFFT_SUCCESS);

  // Size query, then an undersized buffer, then the real fetch.
  ASSERT_EQ(cusfft_profile_json(h, nullptr, 0, &len), CUSFFT_SUCCESS);
  ASSERT_GT(len, 2u);
  std::vector<char> small(len / 2);
  std::size_t need = small.size();
  EXPECT_EQ(cusfft_profile_json(h, small.data(), small.size(), &need),
            CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(need, len);  // the required capacity is always reported
  std::vector<char> buf(len);
  ASSERT_EQ(cusfft_profile_json(h, buf.data(), buf.size(), &len),
            CUSFFT_SUCCESS);
  EXPECT_EQ(buf[len - 1], '\0');

  cusfft::json::Value doc;
  std::string err;
  ASSERT_TRUE(cusfft::json::parse(buf.data(), doc, &err)) << err;
  const cusfft::json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
  EXPECT_FALSE(events->array.empty());
  EXPECT_NE(doc.find("profile"), nullptr);

  cusfft_destroy(h);
}

TEST(CApi, ProfileWriteAndCpuBackendHasNone) {
  const auto w = make_workload(1 << 12, 8, 655);
  cusfft_handle h = nullptr;
  ASSERT_EQ(cusfft_plan(&h, w.n, w.k, CUSFFT_BACKEND_GPU_OPTIMIZED),
            CUSFFT_SUCCESS);
  std::vector<uint64_t> locs(4 * w.k);
  std::vector<double> vals(2 * locs.size());
  std::size_t count = locs.size();
  ASSERT_EQ(cusfft_execute(h, reinterpret_cast<const double*>(w.x.data()),
                           locs.data(), vals.data(), &count),
            CUSFFT_SUCCESS);

  const std::string path =
      ::testing::TempDir() + "cusfft_capi_profile.json";
  ASSERT_EQ(cusfft_profile_write(h, path.c_str()), CUSFFT_SUCCESS);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  cusfft::json::Value doc;
  EXPECT_TRUE(cusfft::json::parse(ss.str(), doc));
  std::remove(path.c_str());
  EXPECT_EQ(cusfft_profile_write(h, nullptr), CUSFFT_INVALID_ARGUMENT);
  cusfft_destroy(h);

  // CPU backends run no simulated device, so no profile exists.
  cusfft_handle cpu = nullptr;
  ASSERT_EQ(cusfft_plan(&cpu, w.n, w.k, CUSFFT_BACKEND_SERIAL),
            CUSFFT_SUCCESS);
  count = locs.size();
  ASSERT_EQ(cusfft_execute(cpu, reinterpret_cast<const double*>(w.x.data()),
                           locs.data(), vals.data(), &count),
            CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_profile_write(cpu, path.c_str()),
            CUSFFT_INVALID_ARGUMENT);
  cusfft_destroy(cpu);
}

TEST(CApi, MetricsJsonSizeQueryThenFetch) {
  // Drive some traffic through the GPU backend so the registry is
  // non-empty, then exercise the buf/cap/len protocol.
  const auto w = make_workload(1 << 12, 8, 77);
  cusfft_handle h = nullptr;
  ASSERT_EQ(cusfft_plan(&h, w.n, w.k, CUSFFT_BACKEND_GPU_OPTIMIZED), CUSFFT_SUCCESS);
  std::vector<size_t> locs(w.k);
  std::vector<double> vals(2 * w.k);
  size_t count = locs.size();
  ASSERT_EQ(cusfft_execute(h, reinterpret_cast<const double*>(w.x.data()),
                           locs.data(), vals.data(), &count),
            CUSFFT_SUCCESS);
  cusfft_destroy(h);

  size_t len = 0;
  ASSERT_EQ(cusfft_metrics_json(nullptr, 0, &len), CUSFFT_SUCCESS);
  ASSERT_GT(len, 1u);  // includes the NUL terminator
  std::string doc(len, '\0');
  // A too-small buffer must be rejected without writing past it.
  EXPECT_EQ(cusfft_metrics_json(doc.data(), len - 1, &len),
            CUSFFT_INVALID_ARGUMENT);
  ASSERT_EQ(cusfft_metrics_json(doc.data(), doc.size(), &len),
            CUSFFT_SUCCESS);
  doc.resize(len - 1);  // drop the NUL
  EXPECT_NE(doc.find("\"schema\": \"cusfft-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("cusfft_executes_total"), std::string::npos);

  // The Prometheus exposition goes through the same protocol.
  size_t tlen = 0;
  ASSERT_EQ(cusfft_metrics_text(nullptr, 0, &tlen), CUSFFT_SUCCESS);
  std::string text(tlen, '\0');
  ASSERT_EQ(cusfft_metrics_text(text.data(), text.size(), &tlen),
            CUSFFT_SUCCESS);
  EXPECT_NE(text.find("# TYPE cusfft_executes_total counter"),
            std::string::npos);

  EXPECT_EQ(cusfft_metrics_json(nullptr, 0, nullptr),
            CUSFFT_INVALID_ARGUMENT);
}

TEST(CApi, MetricsWriteAndReset) {
  const std::string path = "/tmp/cusfft_capi_metrics.json";
  ASSERT_EQ(cusfft_metrics_write(path.c_str(), CUSFFT_METRICS_JSON),
            CUSFFT_SUCCESS);
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_NE(ss.str().find("cusfft-metrics-v1"), std::string::npos);
  std::remove(path.c_str());

  EXPECT_EQ(cusfft_metrics_write(nullptr, CUSFFT_METRICS_JSON),
            CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_metrics_write(path.c_str(),
                                 static_cast<cusfft_metrics_format>(42)),
            CUSFFT_INVALID_ARGUMENT);

  // reset() zeroes counters; the exposition survives and stays valid.
  ASSERT_EQ(cusfft_metrics_reset(), CUSFFT_SUCCESS);
  size_t len = 0;
  ASSERT_EQ(cusfft_metrics_json(nullptr, 0, &len), CUSFFT_SUCCESS);
  std::string doc(len, '\0');
  ASSERT_EQ(cusfft_metrics_json(doc.data(), doc.size(), &len),
            CUSFFT_SUCCESS);
  if (doc.find("cusfft_executes_total") != std::string::npos) {
    EXPECT_NE(doc.find("\"cusfft_executes_total\": 0"), std::string::npos)
        << "after reset, a registered counter must read 0";
  }
}

// Reads cusfft_algo_executes_total{algo="<name>"} from the global metrics
// snapshot — the observable that proves which backend actually ran.
double algo_execs(const char* algo_name) {
  size_t len = 0;
  EXPECT_EQ(cusfft_metrics_json(nullptr, 0, &len), CUSFFT_SUCCESS);
  std::string doc(len, '\0');
  EXPECT_EQ(cusfft_metrics_json(doc.data(), doc.size(), &len),
            CUSFFT_SUCCESS);
  cusfft::json::Value v;
  std::string err;
  EXPECT_TRUE(cusfft::json::parse(doc.c_str(), v, &err)) << err;
  const cusfft::json::Value* counters = v.find("counters");
  if (counters == nullptr) return 0.0;
  return counters->number_or(
      std::string("cusfft_algo_executes_total{algo=\"") + algo_name + "\"}",
      0.0);
}

cusfft::SparseSpectrum capi_execute(cusfft_handle h, const CWorkload& w) {
  std::vector<uint64_t> locs(4 * w.k);
  std::vector<double> vals(2 * 4 * w.k);
  std::size_t count = locs.size();
  EXPECT_EQ(cusfft_execute(h, reinterpret_cast<const double*>(w.x.data()),
                           locs.data(), vals.data(), &count),
            CUSFFT_SUCCESS);
  cusfft::SparseSpectrum got;
  for (std::size_t i = 0; i < count; ++i)
    got.push_back({locs[i], cplx{vals[2 * i], vals[2 * i + 1]}});
  return got;
}

TEST(CApi, SetAlgorithmRoundTripsOnEveryBackend) {
  ::unsetenv("CUSFFT_ALGO");
  const auto w = make_workload(1 << 12, 8, 424);
  for (const cusfft_backend be :
       {CUSFFT_BACKEND_SERIAL, CUSFFT_BACKEND_PSFFT,
        CUSFFT_BACKEND_GPU_OPTIMIZED}) {
    cusfft_handle h = nullptr;
    ASSERT_EQ(cusfft_plan(&h, w.n, w.k, be), CUSFFT_SUCCESS);
    ASSERT_EQ(cusfft_set_algorithm(h, CUSFFT_ALGO_FFAST), CUSFFT_SUCCESS);
    EXPECT_DOUBLE_EQ(
        cusfft::location_recall(capi_execute(h, w), w.oracle, w.k), 1.0)
        << "ffast on backend " << be;
    ASSERT_EQ(cusfft_set_algorithm(h, CUSFFT_ALGO_CUSFFT), CUSFFT_SUCCESS);
    EXPECT_DOUBLE_EQ(
        cusfft::location_recall(capi_execute(h, w), w.oracle, w.k), 1.0)
        << "cusfft on backend " << be;
    EXPECT_EQ(cusfft_set_algorithm(h, static_cast<cusfft_algorithm>(42)),
              CUSFFT_INVALID_ARGUMENT);
    cusfft_destroy(h);
  }

  // AUTO resolves through the crossover picker on the GPU backend (CPU
  // backends have no device spec to price against and fall back to the
  // default bucket hashing).
  cusfft_handle h = nullptr;
  ASSERT_EQ(cusfft_plan(&h, w.n, w.k, CUSFFT_BACKEND_GPU_OPTIMIZED),
            CUSFFT_SUCCESS);
  ASSERT_EQ(cusfft_set_algorithm(h, CUSFFT_ALGO_AUTO), CUSFFT_SUCCESS);
  EXPECT_DOUBLE_EQ(
      cusfft::location_recall(capi_execute(h, w), w.oracle, w.k), 1.0);
  cusfft_destroy(h);
}

TEST(CApi, AlgoEnvMalformedIsInvalidArgumentNeverLatched) {
  ::setenv("CUSFFT_ALGO", "fastest", 1);
  cusfft_handle h = nullptr;
  EXPECT_EQ(cusfft_plan(&h, 1 << 12, 8, CUSFFT_BACKEND_GPU_OPTIMIZED),
            CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(h, nullptr);
  EXPECT_EQ(cusfft_plan(&h, 1 << 12, 8, CUSFFT_BACKEND_SERIAL),
            CUSFFT_INVALID_ARGUMENT);

  // The environment is re-read on every rebuild, never latched: clearing
  // it makes the identical call succeed, and re-poisoning it fails the
  // next rebuild on a live handle.
  ::unsetenv("CUSFFT_ALGO");
  ASSERT_EQ(cusfft_plan(&h, 1 << 12, 8, CUSFFT_BACKEND_GPU_OPTIMIZED),
            CUSFFT_SUCCESS);
  ::setenv("CUSFFT_ALGO", "fastest", 1);
  EXPECT_EQ(cusfft_set_seed(h, 7), CUSFFT_INVALID_ARGUMENT);
  ::unsetenv("CUSFFT_ALGO");
  EXPECT_EQ(cusfft_set_seed(h, 7), CUSFFT_SUCCESS);

  // CUSFFT_AUTOPICK is parsed strictly too, but only consulted when the
  // algorithm resolves to AUTO.
  ::setenv("CUSFFT_AUTOPICK", "guess", 1);
  EXPECT_EQ(cusfft_set_algorithm(h, CUSFFT_ALGO_CUSFFT), CUSFFT_SUCCESS);
  EXPECT_EQ(cusfft_set_algorithm(h, CUSFFT_ALGO_AUTO),
            CUSFFT_INVALID_ARGUMENT);
  ::unsetenv("CUSFFT_AUTOPICK");
  EXPECT_EQ(cusfft_set_algorithm(h, CUSFFT_ALGO_AUTO), CUSFFT_SUCCESS);
  cusfft_destroy(h);
}

TEST(CApi, AlgoEnvOverridesPlannedAlgorithm) {
  const auto w = make_workload(1 << 12, 8, 929);
  ::setenv("CUSFFT_ALGO", "ffast", 1);
  cusfft_handle h = nullptr;
  ASSERT_EQ(cusfft_plan(&h, w.n, w.k, CUSFFT_BACKEND_GPU_OPTIMIZED),
            CUSFFT_SUCCESS);
  const double ffast_before = algo_execs("ffast");
  capi_execute(h, w);
  EXPECT_DOUBLE_EQ(algo_execs("ffast"), ffast_before + 1)
      << "CUSFFT_ALGO=ffast must reach the GPU plan";

  ::unsetenv("CUSFFT_ALGO");
  ASSERT_EQ(cusfft_set_seed(h, 3), CUSFFT_SUCCESS);  // rebuild re-reads env
  const double cusfft_before = algo_execs("cusfft");
  capi_execute(h, w);
  EXPECT_DOUBLE_EQ(algo_execs("cusfft"), cusfft_before + 1)
      << "clearing the override must restore the planned algorithm";
  cusfft_destroy(h);
}

TEST(CApi, ServerRoundTripMatchesPlanExecute) {
  // Virtual-clock serving through the C surface: batched results must be
  // bit-identical to cusfft_execute on a standalone GPU_OPTIMIZED plan of
  // the same shape (both sides use the default permutation seed).
  constexpr std::size_t kN = 1 << 10, kK = 8, kCap = 64;
  cusfft_server_config cfg;
  ASSERT_EQ(cusfft_server_config_default(&cfg), CUSFFT_SUCCESS);
  EXPECT_GE(cfg.max_batch, 1u);
  cfg.devices = 1;
  cfg.max_batch = 4;
  cfg.tenant_queue_depth = 8;

  cusfft_server s = nullptr;
  ASSERT_EQ(cusfft_server_create(&s, &cfg), CUSFFT_SUCCESS);
  ASSERT_NE(s, nullptr);

  std::vector<cvec> signals;
  std::vector<uint64_t> ids(3);
  for (std::size_t i = 0; i < 3; ++i)
    signals.push_back(make_workload(kN, kK, 500 + i).x);
  for (std::size_t i = 0; i < 3; ++i)
    ASSERT_EQ(cusfft_server_submit(
                  s, i % 2 ? "tenant_a" : "tenant_b", 0.1 * double(i), kN,
                  kK, CUSFFT_SLO_THROUGHPUT, /*deadline_ms=*/0,
                  reinterpret_cast<const double*>(signals[i].data()),
                  &ids[i]),
              CUSFFT_SUCCESS);

  // Still pending: no batch has closed, so results are not available yet.
  cusfft_request_outcome oc = CUSFFT_REQUEST_COMPLETED;
  ASSERT_EQ(cusfft_server_outcome(s, ids[0], &oc), CUSFFT_SUCCESS);
  EXPECT_EQ(oc, CUSFFT_REQUEST_PENDING);

  ASSERT_EQ(cusfft_server_drain(s), CUSFFT_SUCCESS);

  cusfft_handle h = nullptr;
  ASSERT_EQ(cusfft_plan(&h, kN, kK, CUSFFT_BACKEND_GPU_OPTIMIZED),
            CUSFFT_SUCCESS);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(cusfft_server_outcome(s, ids[i], &oc), CUSFFT_SUCCESS);
    ASSERT_EQ(oc, CUSFFT_REQUEST_COMPLETED) << "request " << i;

    std::vector<uint64_t> got_locs(kCap), want_locs(kCap);
    std::vector<double> got_vals(2 * kCap), want_vals(2 * kCap);
    std::size_t got_n = kCap, want_n = kCap;
    double latency = -1;
    ASSERT_EQ(cusfft_server_result(s, ids[i], got_locs.data(),
                                   got_vals.data(), &got_n, &latency),
              CUSFFT_SUCCESS);
    EXPECT_GT(latency, 0.0);
    ASSERT_EQ(cusfft_execute(
                  h, reinterpret_cast<const double*>(signals[i].data()),
                  want_locs.data(), want_vals.data(), &want_n),
              CUSFFT_SUCCESS);
    ASSERT_EQ(got_n, want_n) << "request " << i;
    for (std::size_t j = 0; j < got_n; ++j) {
      EXPECT_EQ(got_locs[j], want_locs[j]) << "request " << i;
      EXPECT_DOUBLE_EQ(got_vals[2 * j], want_vals[2 * j]) << "request " << i;
      EXPECT_DOUBLE_EQ(got_vals[2 * j + 1], want_vals[2 * j + 1])
          << "request " << i;
    }
  }
  EXPECT_EQ(cusfft_destroy(h), CUSFFT_SUCCESS);

  cusfft_serve_stats st;
  ASSERT_EQ(cusfft_server_stats(s, &st), CUSFFT_SUCCESS);
  EXPECT_EQ(st.submitted, 3u);
  EXPECT_EQ(st.completed, 3u);
  EXPECT_EQ(st.completed + st.shed + st.rejected, st.submitted);
  EXPECT_GT(st.sustained_qps, 0.0);
  EXPECT_GT(st.throughput_p99_ms, 0.0);

  EXPECT_EQ(cusfft_server_destroy(s), CUSFFT_SUCCESS);
}

TEST(CApi, ServerBackpressureAndErrorPaths) {
  cusfft_server_config cfg;
  ASSERT_EQ(cusfft_server_config_default(&cfg), CUSFFT_SUCCESS);
  cfg.tenant_queue_depth = 1;
  cusfft_server s = nullptr;
  ASSERT_EQ(cusfft_server_create(&s, &cfg), CUSFFT_SUCCESS);

  constexpr std::size_t kN = 256, kK = 4;
  const cvec x = make_workload(kN, kK, 9).x;
  const auto* in = reinterpret_cast<const double*>(x.data());
  uint64_t id1 = 0, id2 = 0;
  ASSERT_EQ(cusfft_server_submit(s, "a", 0.0, kN, kK,
                                 CUSFFT_SLO_THROUGHPUT, 0, in, &id1),
            CUSFFT_SUCCESS);
  ASSERT_EQ(cusfft_server_submit(s, "a", 0.0, kN, kK,
                                 CUSFFT_SLO_THROUGHPUT, 0, in, &id2),
            CUSFFT_SUCCESS);
  cusfft_request_outcome oc = CUSFFT_REQUEST_PENDING;
  ASSERT_EQ(cusfft_server_outcome(s, id2, &oc), CUSFFT_SUCCESS);
  EXPECT_EQ(oc, CUSFFT_REQUEST_REJECTED);  // over the tenant quota

  // A rejected request has no spectrum to fetch.
  std::vector<uint64_t> locs(8);
  std::vector<double> vals(16);
  std::size_t count = 8;
  EXPECT_EQ(cusfft_server_result(s, id2, locs.data(), vals.data(), &count,
                                 nullptr),
            CUSFFT_INVALID_ARGUMENT);

  EXPECT_EQ(cusfft_server_submit(s, nullptr, 0.0, kN, kK,
                                 CUSFFT_SLO_THROUGHPUT, 0, in, &id1),
            CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_server_submit(s, "a", 0.0, kN, kK,
                                 static_cast<cusfft_slo_class>(42), 0, in,
                                 &id1),
            CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_server_advance(nullptr, 1.0), CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_server_drain(nullptr), CUSFFT_INVALID_ARGUMENT);
  EXPECT_EQ(cusfft_server_stats(s, nullptr), CUSFFT_INVALID_ARGUMENT);
  // Like cusfft_destroy, destroying NULL is a no-op success.
  EXPECT_EQ(cusfft_server_destroy(nullptr), CUSFFT_SUCCESS);

  ASSERT_EQ(cusfft_server_drain(s), CUSFFT_SUCCESS);
  ASSERT_EQ(cusfft_server_outcome(s, id1, &oc), CUSFFT_SUCCESS);
  EXPECT_EQ(oc, CUSFFT_REQUEST_COMPLETED);
  EXPECT_EQ(cusfft_server_destroy(s), CUSFFT_SUCCESS);
}

TEST(CApi, ServerConfigDefaultReadsEnvStrictly) {
  ::setenv("CUSFFT_SERVE_MAX_BATCH", "5", 1);
  cusfft_server_config cfg;
  ASSERT_EQ(cusfft_server_config_default(&cfg), CUSFFT_SUCCESS);
  EXPECT_EQ(cfg.max_batch, 5u);
  ::setenv("CUSFFT_SERVE_MAX_BATCH", "junk", 1);
  EXPECT_EQ(cusfft_server_config_default(&cfg), CUSFFT_INVALID_ARGUMENT);
  ::unsetenv("CUSFFT_SERVE_MAX_BATCH");
  ASSERT_EQ(cusfft_server_config_default(&cfg), CUSFFT_SUCCESS);
  EXPECT_EQ(cfg.max_batch, 8u);  // library default, not the latched 5
}

TEST(CApi, StatusStrings) {
  EXPECT_STREQ(cusfft_status_string(CUSFFT_SUCCESS), "success");
  EXPECT_STREQ(cusfft_status_string(CUSFFT_INVALID_ARGUMENT),
               "invalid argument");
  EXPECT_STREQ(cusfft_status_string(CUSFFT_ALLOC_FAILED),
               "allocation failed");
  EXPECT_STREQ(cusfft_status_string(static_cast<cusfft_status>(-99)),
               "unknown status");
}

}  // namespace
