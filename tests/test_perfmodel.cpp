// Tests for the GPU kernel cost model and the CPU roofline model.
#include <gtest/gtest.h>

#include "perfmodel/cpu_model.hpp"
#include "perfmodel/gpu_model.hpp"

namespace cusfft::perfmodel {
namespace {

TEST(GpuSpec, TableIValues) {
  const GpuSpec s = GpuSpec::k20x();
  EXPECT_EQ(s.name, "Tesla K20x");
  EXPECT_EQ(s.sm_count * s.cores_per_sm, 2688u);  // Table I: 2688 cores
  EXPECT_DOUBLE_EQ(s.clock_hz, 732e6);
  EXPECT_DOUBLE_EQ(s.mem_bandwidth_Bps, 250e9);
  EXPECT_EQ(s.global_mem_bytes, 6ULL << 30);
  EXPECT_GT(s.dp_peak_flops(), 1e12);  // K20x ~1.31 DP TFLOPs
  EXPECT_LT(s.dp_peak_flops(), 1.5e12);
}

TEST(CpuSpec, TableIIValues) {
  const CpuSpec s = CpuSpec::e5_2640();
  EXPECT_EQ(s.cores, 6u);
  EXPECT_DOUBLE_EQ(s.clock_hz, 2.5e9);
  EXPECT_EQ(s.l3_bytes, 15u * 1024 * 1024);
}

TEST(GpuModel, MemoryBoundKernelScalesWithTransactions) {
  GpuModel m;
  KernelCounters c;
  c.warps = 1e6;  // plenty of occupancy
  c.coalesced_transactions = 1e6;
  const double t1 = m.kernel_cost(c).total_s;
  c.coalesced_transactions = 2e6;
  const double t2 = m.kernel_cost(c).total_s;
  EXPECT_NEAR(t2 / t1, 2.0, 0.05);
}

TEST(GpuModel, RandomTrafficSlowerThanCoalesced) {
  GpuModel m;
  KernelCounters coal, rand;
  coal.warps = rand.warps = 1e6;
  coal.coalesced_transactions = 1e6;
  rand.random_transactions = 1e6;
  EXPECT_GT(m.kernel_cost(rand).mem_s, m.kernel_cost(coal).mem_s);
}

TEST(GpuModel, UnderOccupiedKernelIsLatencyBound) {
  GpuModel m;
  KernelCounters c;
  c.coalesced_transactions = 1e6;
  c.warps = 4;  // almost no latency hiding
  const double starved = m.kernel_cost(c).mem_s;
  c.warps = 1e6;
  const double occupied = m.kernel_cost(c).mem_s;
  EXPECT_GT(starved, 10 * occupied);
}

TEST(GpuModel, ComputeBoundKernelUsesDpPeak) {
  GpuModel m;
  KernelCounters c;
  c.warps = 1e6;
  c.flops = m.spec().dp_peak_flops();  // exactly one second of DP work
  const KernelCost k = m.kernel_cost(c);
  EXPECT_NEAR(k.compute_s, 1.0, 1e-9);
  EXPECT_NEAR(k.total_s, 1.0 + m.spec().kernel_launch_overhead_s, 1e-9);
}

TEST(GpuModel, AtomicConflictSerializes) {
  GpuModel m;
  KernelCounters c;
  c.warps = 1e3;
  c.max_atomic_conflict = 1e6;  // a million threads hammering one address
  const KernelCost k = m.kernel_cost(c);
  EXPECT_NEAR(k.atomic_s, 1e6 * m.spec().atomic_latency_s, 1e-12);
  EXPECT_GE(k.total_s, k.atomic_s);
}

TEST(GpuModel, LaunchOverheadFloorsSmallKernels) {
  GpuModel m;
  KernelCounters c;
  c.warps = 1;
  c.coalesced_transactions = 1;
  EXPECT_GE(m.kernel_cost(c).total_s, m.spec().kernel_launch_overhead_s);
}

TEST(GpuModel, TransferCostLatencyPlusBandwidth) {
  GpuModel m;
  const double small = m.transfer_cost_s(16);
  EXPECT_NEAR(small, m.spec().pcie_latency_s, 1e-6);
  const double big = m.transfer_cost_s(6e9);
  EXPECT_NEAR(big, 1.0 + m.spec().pcie_latency_s, 1e-3);
}

TEST(CpuModel, BandwidthRoof) {
  CpuModel m;
  CpuWork w;
  w.streamed_bytes = m.spec().mem_bandwidth_Bps;  // one second of streaming
  w.threads = 6;
  EXPECT_NEAR(m.phase_cost_s(w), 1.0 + m.spec().parallel_overhead_s, 1e-9);
}

TEST(CpuModel, LatencyRoofScalesDownWithThreads) {
  CpuModel m;
  CpuWork w;
  w.random_accesses = 1e7;
  w.threads = 1;
  const double t1 = m.phase_cost_s(w);
  w.threads = 6;
  const double t6 = m.phase_cost_s(w);
  EXPECT_NEAR(t1 / t6, 6.0, 0.1);
}

TEST(CpuModel, ThreadsClampedToCores) {
  CpuModel m;
  CpuWork w;
  w.flops = 1e9;
  w.threads = 64;  // more than the 6 cores
  CpuWork w6 = w;
  w6.threads = 6;
  EXPECT_NEAR(m.phase_cost_s(w), m.phase_cost_s(w6), 1e-12);
}

TEST(CpuModel, FlopRoof) {
  CpuModel m;
  CpuWork w;
  w.flops = m.spec().peak_flops();
  w.threads = m.spec().cores;
  EXPECT_NEAR(m.phase_cost_s(w), 1.0 + m.spec().parallel_overhead_s, 1e-9);
}

}  // namespace
}  // namespace cusfft::perfmodel
