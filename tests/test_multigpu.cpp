// Multi-device sharding: MultiGpuPlan splits one execute_many batch
// across a cusim::DeviceGroup and merges the per-device timelines on one
// clock. The contract under test:
//   1. outputs are bit-identical to the single-device batch path for any
//      shape, seed, and fleet size (including N > batch);
//   2. results and GpuFleetStats::per_signal stay in input order whatever
//      the shard assignment;
//   3. cost-weighted assignment sends proportionally fewer signals to a
//      slower device in a heterogeneous fleet;
//   4. a 2-device fleet beats the 1-device pipelined makespan by >= 1.6x
//      at the bench shape (n = 2^13, batch 8, transfers on) while paying
//      nonzero PCIe root-complex contention;
//   5. the merged chrome trace passes the CI artifact checks (per-stream
//      FIFO and the concurrency window per device) and carries one track
//      group per device.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "cusfft/multi_plan.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "cusim/device_group.hpp"
#include "cusim/profiler.hpp"
#include "profile_check_lib.hpp"
#include "signal/generate.hpp"

namespace cusfft {
namespace {

using cusim::DeviceGroup;

cvec test_signal(std::size_t n, std::size_t k, u64 seed) {
  Rng rng(seed);
  return signal::make_sparse_signal(n, k, rng).x;
}

struct Batch {
  std::vector<cvec> signals;
  std::vector<std::span<const cplx>> views;

  Batch(std::size_t count, std::size_t n, std::size_t k, u64 seed0) {
    for (std::size_t i = 0; i < count; ++i)
      signals.push_back(test_signal(n, k, seed0 + i));
    for (const cvec& s : signals) views.emplace_back(s);
  }
};

void expect_identical(const std::vector<SparseSpectrum>& a,
                      const std::vector<SparseSpectrum>& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << what << " signal " << i;
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j].loc, b[i][j].loc) << what << " signal " << i;
      EXPECT_EQ(a[i][j].val, b[i][j].val) << what << " signal " << i;
    }
  }
}

perfmodel::GpuSpec half_rate_k20x() {
  perfmodel::GpuSpec slow = perfmodel::GpuSpec::k20x();
  slow.name = "K20x/2";
  slow.mem_bandwidth_Bps /= 2;
  return slow;
}

TEST(MultiGpu, ShardedBitIdenticalToSingleDevice) {
  struct Shape {
    std::size_t n, k, batch;
    u64 seed;
  };
  const Shape shapes[] = {
      {1 << 10, 4, 5, 101}, {1 << 11, 8, 8, 202}, {1 << 12, 16, 6, 303}};
  for (const Shape& sh : shapes) {
    Batch batch(sh.batch, sh.n, sh.k, sh.seed);
    const sfft::Params params = [&] {
      sfft::Params p;
      p.n = sh.n;
      p.k = sh.k;
      p.seed = sh.seed;
      return p;
    }();
    const gpu::Options opts = gpu::Options::optimized();

    cusim::Device solo;
    gpu::GpuPlan plan(solo, params, opts);
    const auto expected = plan.execute_many(batch.views);

    for (std::size_t ndev : {1u, 2u, 4u}) {
      DeviceGroup group(ndev);
      gpu::MultiGpuPlan mplan(group, params, opts);
      gpu::GpuFleetStats fs;
      const auto got = mplan.execute_many(batch.views, &fs);
      expect_identical(expected, got, "sharded vs single-device");
      EXPECT_EQ(fs.devices, ndev);
      EXPECT_EQ(fs.signals, sh.batch);
      EXPECT_GT(fs.model_ms, 0);
    }
  }
}

TEST(MultiGpu, HomogeneousAssignmentIsRoundRobin) {
  DeviceGroup group(3);
  sfft::Params params;
  params.n = 1 << 10;
  params.k = 4;
  gpu::MultiGpuPlan mplan(group, params, gpu::Options::optimized());
  const auto assign = mplan.shard_assignment(7);
  const std::vector<std::size_t> expected = {0, 1, 2, 0, 1, 2, 0};
  EXPECT_EQ(assign, expected);
}

TEST(MultiGpu, HeterogeneousFleetWeightsShards) {
  // Full-rate + half-rate device: greedy cost weighting should hand the
  // slow device half as many signals (batch 6 -> 4/2), and the outputs
  // stay bit-identical to the single-device path regardless.
  DeviceGroup group({perfmodel::GpuSpec::k20x(), half_rate_k20x()});
  const std::size_t n = 1 << 11, k = 8, batch_n = 6;
  Batch batch(batch_n, n, k, 404);
  sfft::Params params;
  params.n = n;
  params.k = k;
  params.seed = 404;
  const gpu::Options opts = gpu::Options::optimized();

  gpu::MultiGpuPlan mplan(group, params, opts);
  const auto assign = mplan.shard_assignment(batch_n);
  EXPECT_EQ(std::count(assign.begin(), assign.end(), 0u), 4);
  EXPECT_EQ(std::count(assign.begin(), assign.end(), 1u), 2);

  cusim::Device solo;
  gpu::GpuPlan plan(solo, params, opts);
  const auto expected = plan.execute_many(batch.views);
  gpu::GpuFleetStats fs;
  const auto got = mplan.execute_many(batch.views, &fs);
  expect_identical(expected, got, "heterogeneous fleet");
  ASSERT_EQ(fs.per_device.size(), 2u);
  EXPECT_EQ(fs.per_device[0].signals, 4u);
  EXPECT_EQ(fs.per_device[1].signals, 2u);
  EXPECT_EQ(fs.per_device[1].device, "K20x/2");
  // Both devices busy: nobody straggles to 2x the mean.
  EXPECT_GE(fs.imbalance, 1.0);
  EXPECT_LT(fs.imbalance, 1.5);
}

TEST(MultiGpu, MoreDevicesThanSignals) {
  DeviceGroup group(4);
  const std::size_t n = 1 << 10, k = 4, batch_n = 2;
  Batch batch(batch_n, n, k, 505);
  sfft::Params params;
  params.n = n;
  params.k = k;
  params.seed = 505;
  const gpu::Options opts = gpu::Options::optimized();

  cusim::Device solo;
  gpu::GpuPlan plan(solo, params, opts);
  const auto expected = plan.execute_many(batch.views);

  gpu::MultiGpuPlan mplan(group, params, opts);
  gpu::GpuFleetStats fs;
  const auto got = mplan.execute_many(batch.views, &fs);
  expect_identical(expected, got, "N > batch");
  ASSERT_EQ(fs.per_device.size(), 4u);
  EXPECT_EQ(fs.per_device[0].signals, 1u);
  EXPECT_EQ(fs.per_device[1].signals, 1u);
  EXPECT_EQ(fs.per_device[2].signals, 0u);
  EXPECT_EQ(fs.per_device[3].signals, 0u);
  // Idle devices report zero utilization and don't poison the imbalance
  // (computed over busy devices only).
  EXPECT_EQ(fs.per_device[2].utilization, 0);
  EXPECT_EQ(fs.per_device[3].utilization, 0);
  EXPECT_GE(fs.imbalance, 1.0);
  EXPECT_LT(fs.imbalance, 1.1);
}

TEST(MultiGpu, ResultsAndPerSignalStayInInputOrder) {
  DeviceGroup group(2);
  const std::size_t n = 1 << 11, k = 8, batch_n = 6;
  Batch batch(batch_n, n, k, 606);
  sfft::Params params;
  params.n = n;
  params.k = k;
  params.seed = 606;
  gpu::MultiGpuPlan mplan(group, params, gpu::Options::optimized());

  gpu::GpuFleetStats fs;
  const auto out = mplan.execute_many(batch.views, &fs);
  ASSERT_EQ(out.size(), batch_n);
  ASSERT_EQ(fs.per_signal.size(), batch_n);
  ASSERT_EQ(fs.device_of.size(), batch_n);
  // Round-robin on a homogeneous pair: input order interleaves devices, so
  // any shard-order leak would misalign these.
  for (std::size_t i = 0; i < batch_n; ++i)
    EXPECT_EQ(fs.device_of[i], i % 2) << "signal " << i;
  for (std::size_t i = 0; i < batch_n; ++i) {
    EXPECT_EQ(fs.per_signal[i].candidates, out[i].size()) << "signal " << i;
    EXPECT_GT(fs.per_signal[i].end_ms, fs.per_signal[i].start_ms)
        << "signal " << i;
  }
  const std::size_t summed_candidates = [&] {
    std::size_t c = 0;
    for (const auto& s : fs.per_signal) c += s.candidates;
    return c;
  }();
  EXPECT_EQ(fs.candidates, summed_candidates);
}

TEST(MultiGpu, TwoDeviceFleetBeatsPipelinedWithContention) {
  // The bench shape (ROADMAP acceptance): n = 2^13, batch 8, transfers
  // included so the H2D copies exercise the shared host link. Explicit
  // kPipelined on both sides — the fleet win must come from sharding, not
  // from one side losing its pipeline to a CUSFFT_PIPELINE env override.
  const std::size_t n = 1 << 13, k = 8, batch_n = 8;
  Batch batch(batch_n, n, k, 9000);
  sfft::Params params;
  params.n = n;
  params.k = k;
  params.seed = 9000;
  gpu::Options opts = gpu::Options::optimized();
  opts.include_transfer = true;

  cusim::Device solo;
  gpu::GpuPlan plan(solo, params, opts);
  gpu::GpuBatchStats bst;
  const auto expected =
      plan.execute_many(batch.views, &bst, gpu::BatchMode::kPipelined);

  DeviceGroup group(2);
  gpu::MultiGpuPlan mplan(group, params, opts);
  gpu::GpuFleetStats fs;
  const auto got =
      mplan.execute_many(batch.views, &fs, gpu::BatchMode::kPipelined);

  expect_identical(expected, got, "fleet vs pipelined");
  EXPECT_TRUE(fs.pipelined);
  ASSERT_GT(fs.model_ms, 0);
  EXPECT_GE(bst.model_ms / fs.model_ms, 1.6)
      << "2-device makespan " << fs.model_ms << " ms vs 1-device pipelined "
      << bst.model_ms << " ms";
  // Transfers to the two devices overlap in wall time, so the shared root
  // complex must have split bandwidth somewhere.
  EXPECT_GT(fs.pcie_stall_ms, 0);
  ASSERT_EQ(fs.per_device.size(), 2u);
  for (const auto& d : fs.per_device) {
    EXPECT_EQ(d.signals, 4u);
    EXPECT_GT(d.utilization, 0.8);
    // busy/makespan semantics: with transfers modeled the device idles
    // during H2D, so utilization is strictly inside (0, 1) — the old
    // finish/makespan ratio pinned the straggler at exactly 1.0.
    EXPECT_LT(d.utilization, 1.0);
    EXPECT_GE(d.model_ms, d.solo_ms);  // contention only ever delays
  }
}

TEST(MultiGpu, SingleDeviceGroupHasNoContention) {
  // N = 1 merged schedule must be bit-identical to Timeline::simulate():
  // zero stalls, fleet makespan == the device's own makespan.
  const std::size_t n = 1 << 11, k = 8, batch_n = 4;
  Batch batch(batch_n, n, k, 707);
  sfft::Params params;
  params.n = n;
  params.k = k;
  params.seed = 707;
  gpu::Options opts = gpu::Options::optimized();
  opts.include_transfer = true;

  DeviceGroup group(1);
  gpu::MultiGpuPlan mplan(group, params, opts);
  gpu::GpuFleetStats fs;
  mplan.execute_many(batch.views, &fs);
  EXPECT_EQ(fs.pcie_stall_ms, 0);
  EXPECT_EQ(fs.imbalance, 1.0);
  EXPECT_DOUBLE_EQ(fs.model_ms, group.device(0).elapsed_model_ms());
}

TEST(MultiGpu, MergedTracePassesArtifactChecks) {
  const std::size_t n = 1 << 11, k = 8, batch_n = 6;
  Batch batch(batch_n, n, k, 808);
  sfft::Params params;
  params.n = n;
  params.k = k;
  params.seed = 808;
  gpu::Options opts = gpu::Options::optimized();
  opts.include_transfer = true;

  DeviceGroup group(2);
  gpu::MultiGpuPlan mplan(group, params, opts);
  mplan.execute_many(batch.views);
  const cusim::CaptureProfile p = group.end_capture();
  ASSERT_EQ(p.lanes.size(), 2u);
  EXPECT_GT(p.lanes[0].model_ms, 0);
  EXPECT_GT(p.lanes[1].model_ms, 0);
  // Fleet profiles carry the staging policy (embedded in the chrome
  // trace's "profile" object too).
  EXPECT_EQ(p.staging, "unlimited");
  EXPECT_NE(p.to_json().find("\"staging\":\"unlimited\""),
            std::string::npos);

  const auto r = tools::check_profile_json(p.chrome_trace_json());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.device_groups, 2u);
  EXPECT_GT(r.kernel_events, 0u);
  EXPECT_GT(r.copy_events, 0u);
}

TEST(MultiGpu, PlanCacheKeysOnAlgorithm) {
  // Regression: ShapeKey once omitted the algorithm, so two same-shape
  // submissions differing only in backend aliased to one cached plan and
  // the second silently ran the first one's algorithm. The per-signal
  // stats expose which backend actually executed.
  const std::size_t n = 1 << 11, k = 8;
  sfft::Params pc;
  pc.n = n;
  pc.k = k;
  pc.seed = 31;
  sfft::Params pf = pc;
  pf.algo = sfft::Algorithm::kFfast;
  const cvec x = test_signal(n, k, 41);
  const std::vector<gpu::MixedSignal> batch = {
      {x, pc}, {x, pf}, {x, pc}, {x, pf}};

  DeviceGroup group(2);
  gpu::MultiGpuPlan mplan(group, pc, gpu::Options::optimized());
  gpu::GpuFleetStats fs;
  const auto got = mplan.execute_mixed(batch, &fs);
  ASSERT_EQ(got.size(), 4u);
  ASSERT_EQ(fs.per_signal.size(), 4u);
  EXPECT_EQ(fs.per_signal[0].algo, sfft::Algorithm::kCusfft);
  EXPECT_EQ(fs.per_signal[1].algo, sfft::Algorithm::kFfast);
  EXPECT_EQ(fs.per_signal[2].algo, sfft::Algorithm::kCusfft);
  EXPECT_EQ(fs.per_signal[3].algo, sfft::Algorithm::kFfast);

  // Same algorithm -> bit-identical spectra (same input, same plan);
  // different algorithms -> identical support on the exactly-k-sparse
  // input (values agree only to estimation tolerance, not bitwise).
  expect_identical({got[0]}, {got[2]}, "cusfft repeat");
  expect_identical({got[1]}, {got[3]}, "ffast repeat");
  ASSERT_EQ(got[0].size(), got[1].size());
  for (std::size_t j = 0; j < got[0].size(); ++j)
    EXPECT_EQ(got[0][j].loc, got[1][j].loc) << "support mismatch at " << j;
}

TEST(MultiGpu, DeterministicAcrossHostLaunchPaths) {
  // Forcing sequential functional execution on every device must not
  // change outputs or the modeled fleet makespan — the host thread count
  // is an execution detail, never a model input.
  const std::size_t n = 1 << 11, k = 8, batch_n = 5;
  Batch batch(batch_n, n, k, 909);
  sfft::Params params;
  params.n = n;
  params.k = k;
  params.seed = 909;
  const gpu::Options opts = gpu::Options::optimized();

  auto run = [&](bool parallel) {
    DeviceGroup group(2);
    for (std::size_t d = 0; d < group.size(); ++d)
      group.device(d).set_parallel(parallel);
    gpu::MultiGpuPlan mplan(group, params, opts);
    gpu::GpuFleetStats fs;
    auto out = mplan.execute_many(batch.views, &fs);
    return std::pair{std::move(out), fs.model_ms};
  };
  const auto [out_par, ms_par] = run(true);
  const auto [out_seq, ms_seq] = run(false);
  expect_identical(out_par, out_seq, "parallel vs sequential launch");
  EXPECT_DOUBLE_EQ(ms_par, ms_seq);
}

}  // namespace
}  // namespace cusfft
