// Tests for the host execution/throughput layer: BufferPool recycling, the
// flat-filter cache, block-parallel vs sequential launch determinism, and
// the execute_many batch path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "cusim/pool.hpp"
#include "signal/filter.hpp"
#include "signal/generate.hpp"

namespace cusfft {
namespace {

// Pin the pool width before anything touches ThreadPool::global() so the
// block-parallel launch path is exercised even on single-core CI runners.
// Runs at static-init time, before gtest_main.
const int kEnvGuard = [] {
  setenv("CUSFFT_THREADS", "4", /*overwrite=*/0);
  return 0;
}();

using cusim::BufferPool;

TEST(BufferPool, ReuseKeepsDeviceAddressAndZeroes) {
  BufferPool pool;
  BufferPool::Block a = pool.acquire(1000);
  ASSERT_GE(a.cap, 1000u);
  EXPECT_EQ(a.cap % 256, 0u);
  const u64 base = a.base;
  a.bytes[5] = std::byte{0xAB};
  pool.release(std::move(a));

  BufferPool::Block b = pool.acquire(900);  // fits in the parked 1024-cap
  EXPECT_EQ(b.base, base);
  EXPECT_EQ(b.bytes[5], std::byte{0});  // reused blocks come back zeroed

  const auto s = pool.stats();
  EXPECT_EQ(s.allocations, 1u);
  EXPECT_EQ(s.reuses, 1u);
  EXPECT_EQ(s.bytes_pooled, 0u);
  pool.release(std::move(b));
  EXPECT_GT(pool.stats().bytes_pooled, 0u);
}

TEST(BufferPool, OversizedBlocksAreNotReused) {
  BufferPool pool;
  BufferPool::Block big = pool.acquire(1 << 20);
  pool.release(std::move(big));
  // A tiny request must not be served from a 1 MiB block (2x fit rule).
  BufferPool::Block small = pool.acquire(64);
  EXPECT_LT(small.cap, 1u << 20);
  EXPECT_EQ(pool.stats().reuses, 0u);
  EXPECT_EQ(pool.stats().allocations, 2u);
}

TEST(BufferPool, TrimAndDisable) {
  BufferPool pool;
  pool.release(pool.acquire(4096));
  EXPECT_GT(pool.stats().bytes_pooled, 0u);
  pool.trim();
  EXPECT_EQ(pool.stats().bytes_pooled, 0u);

  pool.set_enabled(false);
  pool.release(pool.acquire(4096));
  EXPECT_EQ(pool.stats().bytes_pooled, 0u);  // freed, not parked
}

TEST(BufferPool, BudgetBoundsParkedBytes) {
  BufferPool pool;
  pool.set_max_pooled_bytes(1 << 10);
  pool.release(pool.acquire(1 << 10));  // fits the budget exactly
  const u64 pooled = pool.stats().bytes_pooled;
  EXPECT_GT(pooled, 0u);
  pool.release(pool.acquire(1 << 12));  // would exceed: freed instead
  EXPECT_EQ(pool.stats().bytes_pooled, pooled);
}

TEST(FilterCache, RepeatedPlansShareOneFilter) {
  signal::flat_filter_cache_clear();
  const auto before = signal::flat_filter_cache_stats();
  auto f1 = signal::get_flat_filter(1 << 12, 64);
  auto f2 = signal::get_flat_filter(1 << 12, 64);
  EXPECT_EQ(f1.get(), f2.get());  // same immutable filter object
  const auto after = signal::flat_filter_cache_stats();
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.hits, before.hits + 1);

  // A different shape is a different entry.
  auto f3 = signal::get_flat_filter(1 << 12, 32);
  EXPECT_NE(f1.get(), f3.get());
}

TEST(ThreadPoolEnv, GlobalRespectsCusfftThreads) {
  // kEnvGuard set CUSFFT_THREADS=4 before any global() call (unless the
  // environment already pinned it — honor that value then). Mirror
  // global()'s parse: non-positive or unparseable values fall back to
  // hardware concurrency, and the width is capped at 512.
  const char* v = std::getenv("CUSFFT_THREADS");
  ASSERT_NE(v, nullptr);
  const long parsed = std::strtol(v, nullptr, 10);
  if (parsed > 0) {
    EXPECT_EQ(ThreadPool::global().size(),
              static_cast<std::size_t>(std::min(parsed, 512L)));
  } else {
    EXPECT_GE(ThreadPool::global().size(), 1u);
  }
}

sfft::Params small_params() {
  sfft::Params p;
  p.n = 1 << 12;
  p.k = 8;
  p.seed = 7;
  return p;
}

cvec test_signal(std::size_t n, std::size_t k, u64 seed) {
  Rng rng(seed);
  return signal::make_sparse_signal(n, k, rng).x;
}

TEST(GpuPlanPool, WarmRebuildAllocatesNothing) {
  const sfft::Params p = small_params();
  const auto opts = gpu::Options::optimized();
  const cvec x = test_signal(p.n, p.k, 11);

  cusim::Device dev;
  {  // warm-up: populates the pool and the filter cache
    gpu::GpuPlan plan(dev, p, opts);
    plan.execute(x);
  }
  const auto s0 = BufferPool::global().stats();
  {
    gpu::GpuPlan plan(dev, p, opts);
    plan.execute(x);
  }
  const auto s1 = BufferPool::global().stats();
  EXPECT_EQ(s1.allocations, s0.allocations)
      << "an identical plan rebuild must be served from the pool";
  EXPECT_GT(s1.reuses, s0.reuses);
}

TEST(GpuPlanBatch, ExecuteManyMatchesRepeatedExecute) {
  const sfft::Params p = small_params();
  const auto opts = gpu::Options::optimized();
  constexpr std::size_t kBatch = 3;

  std::vector<cvec> signals;
  std::vector<std::span<const cplx>> views;
  for (std::size_t i = 0; i < kBatch; ++i)
    signals.push_back(test_signal(p.n, p.k, 100 + i));
  for (const cvec& s : signals) views.emplace_back(s);

  cusim::Device dev;
  gpu::GpuPlan plan(dev, p, opts);
  std::vector<SparseSpectrum> one_by_one;
  double model_sum = 0;
  for (std::size_t i = 0; i < kBatch; ++i) {
    gpu::GpuExecStats st;
    one_by_one.push_back(plan.execute(views[i], &st));
    model_sum += st.model_ms;
  }

  gpu::GpuBatchStats bst;
  const auto batched =
      plan.execute_many(views, &bst, gpu::BatchMode::kSerialized);

  ASSERT_EQ(batched.size(), kBatch);
  EXPECT_EQ(bst.signals, kBatch);
  EXPECT_FALSE(bst.pipelined);
  for (std::size_t i = 0; i < kBatch; ++i) {
    ASSERT_EQ(batched[i].size(), one_by_one[i].size()) << "signal " << i;
    for (std::size_t j = 0; j < batched[i].size(); ++j) {
      EXPECT_EQ(batched[i][j].loc, one_by_one[i][j].loc);
      EXPECT_EQ(batched[i][j].val, one_by_one[i][j].val);
    }
  }
  // Per-signal device timelines are serialized, so the batch makespan is
  // the sum of the individual ones.
  EXPECT_NEAR(bst.model_ms, model_sum, 1e-6 * model_sum);
  EXPECT_GT(bst.candidates, 0u);
}

TEST(GpuPlanBatch, RejectsWrongLength) {
  const sfft::Params p = small_params();
  cusim::Device dev;
  gpu::GpuPlan plan(dev, p, gpu::Options::optimized());
  const cvec bad(p.n / 2);
  const std::span<const cplx> view(bad);
  EXPECT_THROW(plan.execute_many({&view, 1}), std::invalid_argument);
}

TEST(Determinism, ParallelAndSequentialLaunchesAreBitIdentical) {
  const sfft::Params p = small_params();
  const auto opts = gpu::Options::optimized();
  const cvec x = test_signal(p.n, p.k, 42);

  cusim::Device par_dev;
  par_dev.set_min_parallel_threads(1);  // parallelize every eligible launch
  gpu::GpuPlan par_plan(par_dev, p, opts);
  gpu::GpuExecStats par_st;
  const auto par = par_plan.execute(x, &par_st);

  cusim::Device seq_dev;
  seq_dev.set_parallel(false);
  gpu::GpuPlan seq_plan(seq_dev, p, opts);
  gpu::GpuExecStats seq_st;
  const auto seq = seq_plan.execute(x, &seq_st);

  // Spectra: bit-identical.
  ASSERT_EQ(par.size(), seq.size());
  for (std::size_t i = 0; i < par.size(); ++i) {
    EXPECT_EQ(par[i].loc, seq[i].loc);
    EXPECT_EQ(par[i].val, seq[i].val);
  }

  // Modeled time and every traced counter: bit-identical (the parallel
  // merge folds warps in the sequential order).
  EXPECT_EQ(par_st.model_ms, seq_st.model_ms);
  const auto& pr = par_dev.report();
  const auto& sr = seq_dev.report();
  ASSERT_EQ(pr.size(), sr.size());
  for (const auto& [name, rep] : pr) {
    ASSERT_TRUE(sr.count(name)) << name;
    const auto& other = sr.at(name);
    EXPECT_EQ(rep.launches, other.launches) << name;
    EXPECT_EQ(rep.solo_s, other.solo_s) << name;
    const auto& a = rep.counters;
    const auto& b = other.counters;
    EXPECT_EQ(a.blocks, b.blocks) << name;
    EXPECT_EQ(a.threads, b.threads) << name;
    EXPECT_EQ(a.warps, b.warps) << name;
    EXPECT_EQ(a.coalesced_transactions, b.coalesced_transactions) << name;
    EXPECT_EQ(a.random_transactions, b.random_transactions) << name;
    EXPECT_EQ(a.bytes_useful, b.bytes_useful) << name;
    EXPECT_EQ(a.flops, b.flops) << name;
    EXPECT_EQ(a.atomic_ops, b.atomic_ops) << name;
    EXPECT_EQ(a.max_atomic_conflict, b.max_atomic_conflict) << name;
    EXPECT_EQ(a.shared_accesses, b.shared_accesses) << name;
  }
}

TEST(Determinism, AtomicAddIsAtomicUnderParallelBlocks) {
  cusim::Device dev;
  dev.set_min_parallel_threads(1);
  dev.begin_capture();
  cusim::DeviceBuffer<u32> counter(1);
  const std::size_t kThreads = 64 * 256;
  dev.launch(cusim::LaunchCfg::for_elements("contended_inc", kThreads),
             [&](cusim::ThreadCtx& t) { counter.atomic_add(t, 0, u32{1}); });
  EXPECT_EQ(counter.host()[0], kThreads);
}

}  // namespace
}  // namespace cusfft
