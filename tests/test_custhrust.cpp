// Tests for the device primitives: scan, reductions, both sorts, selection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "core/rng.hpp"
#include "custhrust/reduce.hpp"
#include "custhrust/scan.hpp"
#include "custhrust/select.hpp"
#include "custhrust/sort.hpp"
#include "custhrust/transform.hpp"

namespace cusfft::custhrust {
namespace {

using cusim::Device;
using cusim::DeviceBuffer;

class ScanSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanSizes, MatchesStdExclusiveScan) {
  const std::size_t n = GetParam();
  Device dev;
  dev.begin_capture();
  DeviceBuffer<u64> data(n);
  Rng rng(n);
  for (auto& v : data.host()) v = rng.next_below(100);
  std::vector<u64> expect(data.host().begin(), data.host().end());
  std::exclusive_scan(expect.begin(), expect.end(), expect.begin(), u64{0});
  exclusive_scan(dev, data);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(data.host()[i], expect[i]) << "i=" << i << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes,
                         ::testing::Values(1, 2, 3, 7, 8, 100, 256, 1000,
                                           4096));

TEST(Reduce, Norm2AndMaxAbs) {
  Device dev;
  dev.begin_capture();
  DeviceBuffer<cplx> data(1000);
  Rng rng(3);
  double expect_norm2 = 0, expect_max = 0;
  for (auto& v : data.host()) {
    v = cplx{rng.next_normal(), rng.next_normal()};
    expect_norm2 += std::norm(v);
    expect_max = std::max(expect_max, std::abs(v));
  }
  EXPECT_NEAR(reduce_norm2(dev, data), expect_norm2, 1e-9 * expect_norm2);
  EXPECT_NEAR(reduce_max_abs(dev, data), expect_max, 1e-12);
}

TEST(Reduce, EmptyAndSingleton) {
  Device dev;
  dev.begin_capture();
  DeviceBuffer<cplx> empty(0);
  EXPECT_DOUBLE_EQ(reduce_norm2(dev, empty), 0.0);
  DeviceBuffer<cplx> one(1);
  one.host()[0] = {3.0, 4.0};
  EXPECT_NEAR(reduce_norm2(dev, one), 25.0, 1e-12);
  EXPECT_NEAR(reduce_max_abs(dev, one), 5.0, 1e-12);
}

TEST(Sort, OrderedMappingIsMonotone) {
  const double vals[] = {-1e300, -2.5, -0.0, 0.0, 1e-10, 1.0, 2.5, 1e300};
  for (std::size_t i = 1; i < std::size(vals); ++i)
    EXPECT_LE(double_to_ordered_u64(vals[i - 1]),
              double_to_ordered_u64(vals[i]))
        << vals[i - 1] << " vs " << vals[i];
}

class SortAlgos : public ::testing::TestWithParam<SortAlgo> {};

TEST_P(SortAlgos, SortsDescendingWithValues) {
  Device dev;
  dev.begin_capture();
  const std::size_t n = 1000;  // deliberately not a power of two
  DeviceBuffer<double> keys(n);
  DeviceBuffer<u32> vals(n);
  Rng rng(7);
  std::vector<double> ref(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.host()[i] = ref[i] = rng.next_normal() * 100.0;
    vals.host()[i] = static_cast<u32>(i);
  }
  const std::vector<double> orig = ref;
  sort_pairs_desc(dev, keys, vals, GetParam());
  std::sort(ref.begin(), ref.end(), std::greater<>());
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_DOUBLE_EQ(keys.host()[i], ref[i]) << i;
  // Values carried consistently: the original key at vals[i] is keys[i].
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_DOUBLE_EQ(orig[vals.host()[i]], keys.host()[i]) << i;
}

TEST_P(SortAlgos, HandlesDuplicatesAndNegatives) {
  Device dev;
  dev.begin_capture();
  std::vector<double> input = {3.0, -1.0, 3.0, 0.0, -1.0, 7.5, 0.0, 3.0};
  DeviceBuffer<double> keys(input.size());
  DeviceBuffer<u32> vals(input.size());
  std::copy(input.begin(), input.end(), keys.host().begin());
  std::iota(vals.host().begin(), vals.host().end(), 0u);
  sort_pairs_desc(dev, keys, vals, GetParam());
  std::vector<double> expect = input;
  std::sort(expect.begin(), expect.end(), std::greater<>());
  for (std::size_t i = 0; i < input.size(); ++i)
    EXPECT_DOUBLE_EQ(keys.host()[i], expect[i]) << i;
}

TEST_P(SortAlgos, TrivialSizes) {
  Device dev;
  dev.begin_capture();
  DeviceBuffer<double> one(1);
  DeviceBuffer<u32> oneval(1);
  one.host()[0] = 42.0;
  sort_pairs_desc(dev, one, oneval, GetParam());
  EXPECT_DOUBLE_EQ(one.host()[0], 42.0);
}

INSTANTIATE_TEST_SUITE_P(Algos, SortAlgos,
                         ::testing::Values(SortAlgo::kRadix,
                                           SortAlgo::kBitonic),
                         [](const auto& info) {
                           return info.param == SortAlgo::kRadix ? "Radix"
                                                                 : "Bitonic";
                         });

TEST(Sort, RadixIsStable) {
  Device dev;
  dev.begin_capture();
  const std::size_t n = 512;
  DeviceBuffer<double> keys(n);
  DeviceBuffer<u32> vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.host()[i] = static_cast<double>(i % 4);  // many duplicates
    vals.host()[i] = static_cast<u32>(i);
  }
  sort_pairs_desc(dev, keys, vals, SortAlgo::kRadix);
  // Within each equal-key run, original order must be preserved.
  for (std::size_t i = 1; i < n; ++i) {
    if (keys.host()[i] == keys.host()[i - 1]) {
      EXPECT_LT(vals.host()[i - 1], vals.host()[i]) << i;
    }
  }
}

TEST(Sort, MismatchedSizesThrow) {
  Device dev;
  dev.begin_capture();
  DeviceBuffer<double> keys(4);
  DeviceBuffer<u32> vals(5);
  EXPECT_THROW(sort_pairs_desc(dev, keys, vals), std::invalid_argument);
}

TEST(Select, FindsLargeBucketsOnly) {
  Device dev;
  dev.begin_capture();
  const std::size_t B = 1024;
  DeviceBuffer<cplx> buckets(B);
  Rng rng(9);
  for (auto& v : buckets.host())
    v = cplx{1e-6 * rng.next_normal(), 1e-6 * rng.next_normal()};
  const std::set<u32> planted = {5, 77, 500, 1023};
  for (u32 i : planted) buckets.host()[i] = cplx{1.0, -0.5};
  const SelectResult r = threshold_select(dev, buckets);
  std::set<u32> got(r.indices.begin(), r.indices.end());
  EXPECT_EQ(got, planted);
  EXPECT_GT(r.threshold, 1e-6);
  EXPECT_LT(r.threshold, 1.0);
}

TEST(Select, BetaScalesThreshold) {
  Device dev;
  dev.begin_capture();
  DeviceBuffer<cplx> buckets(64);
  for (auto& v : buckets.host()) v = cplx{1.0, 0.0};
  const auto lo = threshold_select(dev, buckets, 0.5);
  const auto hi = threshold_select(dev, buckets, 2.0);
  EXPECT_NEAR(hi.threshold / lo.threshold, 4.0, 1e-9);
  // beta=0.5: every bucket clears; beta=2: none does.
  EXPECT_EQ(lo.indices.size(), 64u);
  EXPECT_TRUE(hi.indices.empty());
}

TEST(Select, MaxOutCaps) {
  Device dev;
  dev.begin_capture();
  DeviceBuffer<cplx> buckets(128);
  for (auto& v : buckets.host()) v = cplx{1.0, 0.0};
  const auto r = threshold_select(dev, buckets, 0.5, 10);
  EXPECT_EQ(r.indices.size(), 10u);
}

TEST(Select, EmptyBuffer) {
  Device dev;
  dev.begin_capture();
  DeviceBuffer<cplx> buckets(0);
  EXPECT_TRUE(threshold_select(dev, buckets).indices.empty());
}


TEST(Transform, AppliesFunctor) {
  Device dev;
  dev.begin_capture();
  DeviceBuffer<double> in(100), out(100);
  for (std::size_t i = 0; i < 100; ++i) in.host()[i] = double(i);
  transform(dev, in, out, [](double v) { return 2.0 * v + 1.0; });
  for (std::size_t i = 0; i < 100; ++i)
    ASSERT_DOUBLE_EQ(out.host()[i], 2.0 * double(i) + 1.0);
}

TEST(Transform, InPlaceAndTypeChange) {
  Device dev;
  dev.begin_capture();
  DeviceBuffer<double> data(8);
  for (auto& v : data.host()) v = 3.0;
  transform(dev, data, data, [](double v) { return v * v; });
  EXPECT_DOUBLE_EQ(data.host()[0], 9.0);
  DeviceBuffer<u32> flags(8);
  transform(dev, data, flags,
            [](double v) { return v > 5.0 ? u32{1} : u32{0}; });
  EXPECT_EQ(flags.host()[3], 1u);
  DeviceBuffer<double> wrong(4);
  EXPECT_THROW(transform(dev, data, wrong, [](double v) { return v; }),
               std::invalid_argument);
}

TEST(Gather, PermutesThroughIndices) {
  Device dev;
  dev.begin_capture();
  DeviceBuffer<double> data(16);
  for (std::size_t i = 0; i < 16; ++i) data.host()[i] = 100.0 + double(i);
  DeviceBuffer<u32> idx(4);
  idx.host()[0] = 7;
  idx.host()[1] = 0;
  idx.host()[2] = 15;
  idx.host()[3] = 7;
  DeviceBuffer<double> out(4);
  gather(dev, idx, data, out);
  EXPECT_DOUBLE_EQ(out.host()[0], 107.0);
  EXPECT_DOUBLE_EQ(out.host()[1], 100.0);
  EXPECT_DOUBLE_EQ(out.host()[2], 115.0);
  EXPECT_DOUBLE_EQ(out.host()[3], 107.0);
}

TEST(CountIf, CountsMatches) {
  Device dev;
  dev.begin_capture();
  DeviceBuffer<double> data(1000);
  Rng rng(42);
  std::size_t expect = 0;
  for (auto& v : data.host()) {
    v = rng.next_double();
    if (v > 0.75) ++expect;
  }
  EXPECT_EQ(count_if(dev, data, [](double v) { return v > 0.75; }), expect);
}

TEST(InclusiveScan, MatchesStdInclusiveScan) {
  Device dev;
  dev.begin_capture();
  for (std::size_t n : {1u, 5u, 64u, 777u}) {
    DeviceBuffer<u64> data(n);
    Rng rng(n);
    for (auto& v : data.host()) v = rng.next_below(50);
    std::vector<u64> expect(data.host().begin(), data.host().end());
    std::inclusive_scan(expect.begin(), expect.end(), expect.begin());
    inclusive_scan(dev, data);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(data.host()[i], expect[i]) << "n=" << n << " i=" << i;
  }
}

}  // namespace
}  // namespace cusfft::custhrust
