// Tests for the sFFT 2.0 Comb aliasing prefilter: the aliasing identity,
// residue approval, end-to-end recovery in comb mode, and cross-backend
// agreement.
#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "cusfft/plan.hpp"
#include "fft/fft.hpp"
#include "psfft/psfft.hpp"
#include "sfft/comb.hpp"
#include "sfft/serial.hpp"
#include "signal/generate.hpp"

namespace cusfft {
namespace {

TEST(CombWidth, DerivationClampsAndRoundsUp) {
  EXPECT_EQ(sfft::comb_width(1 << 20, 100, 8.0), 1024u);  // next_pow2(800)
  EXPECT_EQ(sfft::comb_width(1 << 20, 1, 8.0), 16u);      // floor clamp
  EXPECT_EQ(sfft::comb_width(64, 1000, 8.0), 32u);        // <= n/2 clamp
}

// Time subsampling with stride n/W aliases frequency f onto bin f mod W.
TEST(CombFilter, AliasingIdentity) {
  const std::size_t n = 1 << 12, W = 64;
  const u64 f = 777;  // 777 mod 64 = 9
  SparseSpectrum truth{{f, cplx{1.0, 0.0}}};
  const cvec x = signal::synthesize(truth, n);
  const u64 taus[] = {0};
  const auto comb = sfft::run_comb_filter(x, W, 1, taus);
  ASSERT_EQ(comb.W, W);
  EXPECT_EQ(comb.approved[f % W], 1);
  std::size_t approved = 0;
  for (auto a : comb.approved) approved += a;
  EXPECT_EQ(approved, 1u);  // only the planted residue passes keep=1
}

TEST(CombFilter, UnionOverRounds) {
  const std::size_t n = 1 << 12, W = 64;
  Rng rng(5);
  auto sig = signal::make_sparse_signal(n, 4, rng);
  const u64 taus[] = {3, 917};
  const auto comb = sfft::run_comb_filter(sig.x, W, 8, taus);
  // Every planted residue must be approved (keep=8 >> 4 tones).
  for (const auto& c : sig.truth)
    EXPECT_EQ(comb.approved[c.loc % W], 1) << c.loc;
}

TEST(CombFilter, RejectsBadArgs) {
  cvec x(1 << 10);
  const u64 taus[] = {0};
  EXPECT_THROW(sfft::run_comb_filter(x, 48, 4, taus), std::invalid_argument);
  EXPECT_THROW(sfft::run_comb_filter(x, 2048, 4, taus),
               std::invalid_argument);
  EXPECT_THROW(sfft::run_comb_filter(x, 64, 4, {}), std::invalid_argument);
}

sfft::Params comb_params(std::size_t n, std::size_t k) {
  sfft::Params p;
  p.n = n;
  p.k = k;
  p.comb = true;
  p.seed = 777;
  return p;
}

TEST(CombMode, SerialRecoversSparseSignal) {
  const std::size_t n = 1 << 15, k = 16;
  Rng rng(9);
  auto sig = signal::make_sparse_signal(n, k, rng);
  sfft::SerialPlan plan(comb_params(n, k));
  const auto got = plan.execute(sig.x);
  const cvec oracle = densify(sig.truth, n);
  EXPECT_DOUBLE_EQ(location_recall(got, oracle, k), 1.0);
  EXPECT_LT(l1_error_per_coeff(got, oracle, k), 1e-2);
}

TEST(CombMode, PrunesCandidatesInDenseRegime) {
  // With k large relative to B, plain voting admits many false candidates;
  // the comb filter must shrink the output set.
  const std::size_t n = 1 << 15, k = 128;
  Rng rng(10);
  auto sig = signal::make_sparse_signal(n, k, rng);

  sfft::Params plain = comb_params(n, k);
  plain.comb = false;
  plain.bcst = 1.0;
  sfft::Params withcomb = comb_params(n, k);
  withcomb.bcst = 1.0;

  const auto got_plain = sfft::SerialPlan(plain).execute(sig.x);
  const auto got_comb = sfft::SerialPlan(withcomb).execute(sig.x);
  EXPECT_LT(got_comb.size(), got_plain.size());
  const cvec oracle = densify(sig.truth, n);
  EXPECT_GE(location_recall(got_comb, oracle, k), 0.97);
}

TEST(CombMode, TimersIncludeCombStep) {
  const std::size_t n = 1 << 13, k = 8;
  Rng rng(11);
  auto sig = signal::make_sparse_signal(n, k, rng);
  sfft::SerialPlan plan(comb_params(n, k));
  StepTimers timers;
  plan.execute(sig.x, &timers);
  EXPECT_GT(timers.get(sfft::step::kComb), 0.0);
}

TEST(CombMode, PsfftMatchesSerial) {
  const std::size_t n = 1 << 14, k = 16;
  Rng rng(12);
  auto sig = signal::make_sparse_signal(n, k, rng);
  const auto p = comb_params(n, k);
  const auto a = sfft::SerialPlan(p).execute(sig.x);
  ThreadPool pool(3);
  const auto b = psfft::PsfftPlan(p, pool).execute(sig.x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].loc, b[i].loc);
    EXPECT_NEAR(std::abs(a[i].val - b[i].val), 0.0, 1e-12);
  }
}

TEST(CombMode, GpuMatchesSerial) {
  const std::size_t n = 1 << 13, k = 8;
  Rng rng(13);
  auto sig = signal::make_sparse_signal(n, k, rng);
  const auto p = comb_params(n, k);
  const auto cpu = sfft::SerialPlan(p).execute(sig.x);
  cusim::Device dev;
  gpu::GpuPlan plan(dev, p, gpu::Options::optimized());
  const auto gpu_out = plan.execute(sig.x);
  ASSERT_EQ(gpu_out.size(), cpu.size());
  for (std::size_t i = 0; i < gpu_out.size(); ++i) {
    EXPECT_EQ(gpu_out[i].loc, cpu[i].loc) << i;
    EXPECT_NEAR(std::abs(gpu_out[i].val - cpu[i].val), 0.0, 1e-6) << i;
  }
}

TEST(CombMode, GpuReportsCombStep) {
  const std::size_t n = 1 << 13, k = 8;
  Rng rng(14);
  auto sig = signal::make_sparse_signal(n, k, rng);
  cusim::Device dev;
  gpu::GpuPlan plan(dev, comb_params(n, k), gpu::Options::baseline());
  gpu::GpuExecStats stats;
  plan.execute(sig.x, &stats);
  EXPECT_GT(stats.step_model_ms.at(sfft::step::kComb), 0.0);
}

TEST(CombMode, ValidationRejectsBadCombConfig) {
  sfft::Params p = comb_params(1 << 13, 8);
  p.comb_rounds = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = comb_params(1 << 13, 8);
  p.comb_cst = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}


TEST(CombMode, CombWidthScalesWithK) {
  sfft::Params a = comb_params(1 << 16, 8);
  sfft::Params b = comb_params(1 << 16, 64);
  EXPECT_LT(a.comb_w(), b.comb_w());
  EXPECT_TRUE(is_pow2(a.comb_w()));
  // Off-mode reports zero width.
  a.comb = false;
  EXPECT_EQ(a.comb_w(), 0u);
}

TEST(CombMode, KeepCountFollowsMultiplier) {
  sfft::Params p = comb_params(1 << 14, 10);
  p.comb_keep_mult = 3.0;
  EXPECT_EQ(p.comb_keep(), 30u);
}

TEST(CombMode, GpuCombKernelsCounted) {
  const std::size_t n = 1 << 13, k = 8;
  Rng rng(15);
  auto sig = signal::make_sparse_signal(n, k, rng);
  cusim::Device dev;
  gpu::GpuPlan plan(dev, comb_params(n, k), gpu::Options::baseline());
  plan.execute(sig.x);
  EXPECT_GT(dev.report().count("comb_subsample"), 0u);
  EXPECT_GT(dev.report().count("comb_mark"), 0u);
  // Rounds determine subsample launches.
  EXPECT_EQ(dev.report().at("comb_subsample").launches,
            comb_params(n, k).comb_rounds);
}

}  // namespace
}  // namespace cusfft
