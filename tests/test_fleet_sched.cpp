// Fleet scheduler regression sweep: per-device dependency scoping,
// deadlock detection, PCIe staging admission policies, interval-union
// busy accounting, the per-signal cost model, and mixed-shape fleet
// execution. The raw-timeline tests inject TimelineItems directly
// (Device::timeline() mutable access) to reach schedules the kernel API
// cannot produce — dangling deps, cycles, bare concurrent copies.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "cusfft/multi_plan.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "cusim/device_group.hpp"
#include "cusim/timeline.hpp"
#include "signal/generate.hpp"

namespace cusfft {
namespace {

using cusim::DeviceGroup;
using cusim::PcieStaging;
using cusim::Resource;
using cusim::TimelineItem;

TimelineItem kernel_item(const char* name, cusim::StreamId s,
                         double compute_s,
                         std::vector<std::size_t> deps = {}) {
  // TimelineItem::deps is a non-owning view; park the list in static
  // storage so it outlives the returned temporary long enough for submit()
  // to copy it onto the timeline's arena. Each call recycles the previous
  // list, which is fine here: every item is submitted before the next one
  // is built.
  static thread_local std::vector<std::size_t> storage;
  storage = std::move(deps);
  TimelineItem it;
  it.name = name;
  it.stream = s;
  it.resource = Resource::kDeviceMemory;
  it.compute_s = compute_s;
  it.deps = {storage.data(), storage.size()};
  return it;
}

TimelineItem copy_item(const char* name, cusim::StreamId s, double mem_s) {
  TimelineItem it;
  it.name = name;
  it.stream = s;
  it.resource = Resource::kPcie;
  it.mem_s = mem_s;
  return it;
}

cvec test_signal(std::size_t n, std::size_t k, u64 seed) {
  Rng rng(seed);
  return signal::make_sparse_signal(n, k, rng).x;
}

sfft::Params make_params(std::size_t n, std::size_t k, u64 seed) {
  sfft::Params p;
  p.n = n;
  p.k = k;
  p.seed = seed;
  return p;
}

perfmodel::GpuSpec half_rate_k20x() {
  perfmodel::GpuSpec slow = perfmodel::GpuSpec::k20x();
  slow.name = "K20x/2";
  slow.mem_bandwidth_Bps /= 2;
  return slow;
}

void expect_identical(const std::vector<SparseSpectrum>& a,
                      const std::vector<SparseSpectrum>& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << what << " signal " << i;
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j].loc, b[i][j].loc) << what << " signal " << i;
      EXPECT_EQ(a[i][j].val, b[i][j].val) << what << " signal " << i;
    }
  }
}

// ---- bugfix: deps must stay scoped to the owning device --------------

TEST(FleetSched, DepsStayScopedToTheOwningDevice) {
  // Device 0 owns three items; item 2 carries a dangling dep (5). In the
  // merged node array index 5 lands inside device 1's range, and the old
  // `base + dep < total` guard made the item wait for a foreign device's
  // work. Deps are local to their timeline: out-of-range for the OWNING
  // device means ignored, exactly as Timeline::simulate treats them.
  DeviceGroup group(2);
  auto& t0 = group.device(0).timeline();
  t0.submit(kernel_item("a", 0, 1e-3));
  t0.submit(kernel_item("b", 1, 1e-3, {0}));  // in range: still honored
  t0.submit(kernel_item("c", 2, 1e-3, {5}));  // dangling: ignored
  auto& t1 = group.device(1).timeline();
  for (int i = 0; i < 8; ++i) t1.submit(kernel_item("w", 0, 1e-3));

  const auto fs = group.simulate();
  EXPECT_DOUBLE_EQ(fs.items[0][0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(fs.items[0][1].start_s, 1e-3);  // waited for item 0
  // Aliased into device 1, the dangling dep would hold "c" until 3 ms
  // (device 1's third item); scoped correctly it starts immediately.
  EXPECT_DOUBLE_EQ(fs.items[0][2].start_s, 0.0);
  EXPECT_DOUBLE_EQ(fs.makespan_s, 8e-3);
  // Busy time is the union of kernel intervals: "a" and "c" overlap on
  // [0, 1ms], "b" covers [1ms, 2ms] — 2 ms total, not 3 ms of summed
  // spans.
  EXPECT_DOUBLE_EQ(fs.busy_s[0], 2e-3);
}

// ---- bugfix: busy_s is interval coverage, not last-finish ------------

TEST(FleetSched, BusyTimeExcludesPcieIdleGaps) {
  // kernel -> copy -> kernel on one stream: the device idles during the
  // copy, so busy is 2 ms of a 3 ms makespan. The old finish/makespan
  // utilization reported 1.0 for exactly this schedule.
  DeviceGroup group(1);
  auto& tl = group.device(0).timeline();
  tl.submit(kernel_item("k1", 0, 1e-3));
  tl.submit(copy_item("h2d", 0, 1e-3));
  tl.submit(kernel_item("k2", 0, 1e-3));

  const auto fs = group.simulate();
  EXPECT_DOUBLE_EQ(fs.makespan_s, 3e-3);
  EXPECT_DOUBLE_EQ(fs.finish_s[0], 3e-3);
  EXPECT_DOUBLE_EQ(fs.busy_s[0], 2e-3);
}

// ---- bugfix: deadlock throws instead of under-reporting --------------

TEST(FleetSched, DeadlockedTimelineThrows) {
  // An item depending on itself can never start. The old loop broke out
  // silently, reporting a makespan that ignored the stuck item.
  DeviceGroup group(2);
  group.device(0).timeline().submit(kernel_item("ok", 0, 1e-3));
  group.device(1).timeline().submit(kernel_item("self", 0, 1e-3, {0}));
  try {
    group.simulate();
    FAIL() << "expected DeviceGroup::simulate to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos)
        << e.what();
  }
}

TEST(FleetSched, DependencyCycleThrows) {
  DeviceGroup group(1);
  auto& tl = group.device(0).timeline();
  tl.submit(kernel_item("x", 0, 1e-3, {1}));
  tl.submit(kernel_item("y", 1, 1e-3, {0}));
  EXPECT_THROW(group.simulate(), std::runtime_error);
}

// ---- PCIe staging admission ------------------------------------------

TEST(FleetSched, UnlimitedStagingSharesTheLink) {
  DeviceGroup group(2);
  group.device(0).timeline().submit(copy_item("h2d0", 1, 1e-3));
  group.device(1).timeline().submit(copy_item("h2d1", 1, 1e-3));

  const auto fs = group.simulate();
  EXPECT_STREQ(group.staging().name(), "unlimited");
  // Both copies run at half bandwidth for the full window.
  EXPECT_DOUBLE_EQ(fs.makespan_s, 2e-3);
  EXPECT_NEAR(fs.pcie_stall_s[0], 1e-3, 1e-12);
  EXPECT_NEAR(fs.pcie_stall_s[1], 1e-3, 1e-12);
  EXPECT_DOUBLE_EQ(fs.pcie_queue_s[0], 0.0);
  EXPECT_DOUBLE_EQ(fs.pcie_queue_s[1], 0.0);
}

TEST(FleetSched, RoundRobinStagingConvertsStallIntoQueue) {
  DeviceGroup group(2);
  group.set_staging(PcieStaging::RoundRobin());
  group.device(0).timeline().submit(copy_item("h2d0", 1, 1e-3));
  group.device(1).timeline().submit(copy_item("h2d1", 1, 1e-3));

  const auto fs = group.simulate();
  EXPECT_STREQ(group.staging().name(), "round-robin");
  // Serialized copies move the same bytes in the same total time, but
  // each runs at full link rate: contention stall becomes admission
  // queueing on the second device.
  EXPECT_DOUBLE_EQ(fs.makespan_s, 2e-3);
  EXPECT_DOUBLE_EQ(fs.items[0][0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(fs.items[1][0].start_s, 1e-3);
  EXPECT_DOUBLE_EQ(fs.pcie_stall_s[0], 0.0);
  EXPECT_DOUBLE_EQ(fs.pcie_stall_s[1], 0.0);
  EXPECT_DOUBLE_EQ(fs.pcie_queue_s[0], 0.0);
  EXPECT_DOUBLE_EQ(fs.pcie_queue_s[1], 1e-3);
}

TEST(FleetSched, RoundRobinRotatesAcrossDevices) {
  // Device 0 has two ready copies, device 1 one. Strict per-copy rotation
  // would starve nobody: dev0, dev1, dev0 — not dev0 twice first.
  DeviceGroup group(2);
  group.set_staging(PcieStaging::RoundRobin());
  auto& t0 = group.device(0).timeline();
  t0.submit(copy_item("a", 1, 1e-3));
  t0.submit(copy_item("b", 2, 1e-3));
  group.device(1).timeline().submit(copy_item("c", 1, 1e-3));

  const auto fs = group.simulate();
  EXPECT_DOUBLE_EQ(fs.items[0][0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(fs.items[1][0].start_s, 1e-3);
  EXPECT_DOUBLE_EQ(fs.items[0][1].start_s, 2e-3);
  EXPECT_DOUBLE_EQ(fs.makespan_s, 3e-3);
}

TEST(FleetSched, MaxInflightBoundsConcurrentCopies) {
  auto run = [](unsigned limit) {
    DeviceGroup group(2);
    group.set_staging(PcieStaging::MaxInflight(limit));
    group.device(0).timeline().submit(copy_item("h2d0", 1, 1e-3));
    group.device(1).timeline().submit(copy_item("h2d1", 1, 1e-3));
    return group.simulate();
  };
  const auto capped = run(1);
  // One at a time: second copy queues, nobody shares bandwidth.
  EXPECT_DOUBLE_EQ(capped.items[0][0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(capped.items[1][0].start_s, 1e-3);
  EXPECT_DOUBLE_EQ(capped.pcie_queue_s[1], 1e-3);
  EXPECT_DOUBLE_EQ(capped.pcie_stall_s[0] + capped.pcie_stall_s[1], 0.0);

  // A limit covering every copy reproduces kUnlimited exactly.
  const auto open = run(2);
  EXPECT_DOUBLE_EQ(open.items[1][0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(open.pcie_queue_s[0] + open.pcie_queue_s[1], 0.0);
  EXPECT_NEAR(open.pcie_stall_s[0], 1e-3, 1e-12);

  DeviceGroup named(1);
  named.set_staging(PcieStaging::MaxInflight(3));
  EXPECT_STREQ(named.staging().name(), "max-inflight");
}

// ---- per-signal cost model -------------------------------------------

TEST(FleetSched, CostModelTracksShapeAndDeviceSpeed) {
  const gpu::Options opts = gpu::Options::optimized();
  const sfft::Params small = make_params(1 << 12, 8, 1);
  const sfft::Params big = make_params(1 << 14, 8, 1);
  const auto spec = perfmodel::GpuSpec::k20x();

  EXPECT_GT(gpu::modeled_signal_cost_s(small, spec, opts), 0.0);
  // Bigger transforms cost more.
  EXPECT_GT(gpu::modeled_signal_cost_s(big, spec, opts),
            gpu::modeled_signal_cost_s(small, spec, opts));
  // A half-bandwidth device prices the same signal higher.
  EXPECT_GT(gpu::modeled_signal_cost_s(small, half_rate_k20x(), opts),
            gpu::modeled_signal_cost_s(small, spec, opts));
  // Modeled transfers add the H2D term.
  gpu::Options xfer = opts;
  xfer.include_transfer = true;
  EXPECT_GT(gpu::modeled_signal_cost_s(small, spec, xfer),
            gpu::modeled_signal_cost_s(small, spec, opts));
}

// ---- mixed-shape fleet execution -------------------------------------

TEST(FleetSched, MixedShapeBitIdenticalToPerSignalSingleDevice) {
  struct Shape {
    std::size_t n, k;
    u64 seed;
  };
  const Shape shapes[] = {{1 << 10, 4, 11}, {1 << 11, 8, 22},
                          {1 << 12, 16, 33}};
  // Two deterministic shuffles of the shape set — order must not matter.
  const std::size_t mixes[][8] = {{0, 1, 2, 2, 0, 1, 0, 2},
                                  {2, 2, 1, 0, 1, 2, 0, 0}};
  const gpu::Options opts = gpu::Options::optimized();

  for (const auto& mix : mixes) {
    std::vector<cvec> sigs;
    for (std::size_t i = 0; i < 8; ++i)
      sigs.push_back(
          test_signal(shapes[mix[i]].n, shapes[mix[i]].k, 1000 + i));
    std::vector<gpu::MixedSignal> batch;
    for (std::size_t i = 0; i < 8; ++i)
      batch.push_back({sigs[i], make_params(shapes[mix[i]].n,
                                            shapes[mix[i]].k,
                                            shapes[mix[i]].seed)});

    // Reference: every signal through a single-device plan of its shape.
    cusim::Device solo;
    std::map<std::size_t, std::unique_ptr<gpu::GpuPlan>> ref;
    std::vector<SparseSpectrum> expected;
    for (std::size_t i = 0; i < 8; ++i) {
      auto& plan = ref[mix[i]];
      if (!plan)
        plan = std::make_unique<gpu::GpuPlan>(solo, batch[i].params, opts);
      expected.push_back(plan->execute(sigs[i]));
    }

    auto check_fleet = [&](DeviceGroup& group, const char* what) {
      gpu::MultiGpuPlan mplan(group, batch[0].params, opts);
      gpu::GpuFleetStats fs;
      const auto got = mplan.execute_mixed(batch, &fs);
      expect_identical(expected, got, what);
      EXPECT_EQ(fs.signals, 8u);
      ASSERT_EQ(fs.per_signal.size(), 8u);
      ASSERT_EQ(fs.device_of.size(), 8u);
      for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(fs.per_signal[i].candidates, got[i].size())
            << what << " signal " << i;
    };
    DeviceGroup pair(2);
    check_fleet(pair, "homogeneous pair");
    DeviceGroup skewed({perfmodel::GpuSpec::k20x(), half_rate_k20x()});
    check_fleet(skewed, "heterogeneous fleet");
  }
}

TEST(FleetSched, LptSplitsSkewedBatchBetterThanUnitGreedy) {
  // [big, small, big, small x5]: counting signals balances 4/4 but piles
  // both expensive transforms onto device 0 (greedy ties go low). LPT
  // prices the bigs and separates them.
  const sfft::Params big = make_params(1 << 13, 16, 77);
  const sfft::Params small = make_params(1 << 10, 4, 78);
  std::vector<sfft::Params> shapes = {big,   small, big,   small,
                                      small, small, small, small};
  gpu::Options opts = gpu::Options::optimized();
  opts.include_transfer = true;

  std::vector<cvec> sigs;
  for (std::size_t i = 0; i < shapes.size(); ++i)
    sigs.push_back(test_signal(shapes[i].n, shapes[i].k, 3000 + i));
  std::vector<gpu::MixedSignal> batch;
  for (std::size_t i = 0; i < shapes.size(); ++i)
    batch.push_back({sigs[i], shapes[i]});

  DeviceGroup g_lpt(2);
  gpu::MultiGpuPlan lpt(g_lpt, big, opts);
  ASSERT_EQ(lpt.shard_policy(), gpu::ShardPolicy::kCostLpt);
  const auto a_lpt = lpt.shard_assignment(std::span<const sfft::Params>(shapes));
  EXPECT_NE(a_lpt[0], a_lpt[2]) << "LPT must separate the two bigs";

  DeviceGroup g_greedy(2);
  gpu::MultiGpuPlan greedy(g_greedy, big, opts);
  greedy.set_shard_policy(gpu::ShardPolicy::kUnitGreedy);
  const auto a_greedy =
      greedy.shard_assignment(std::span<const sfft::Params>(shapes));
  EXPECT_EQ(a_greedy[0], a_greedy[2]) << "unit weights pile the bigs up";

  gpu::GpuFleetStats fs_lpt, fs_greedy;
  const auto out_lpt =
      lpt.execute_mixed(batch, &fs_lpt, gpu::BatchMode::kPipelined);
  const auto out_greedy =
      greedy.execute_mixed(batch, &fs_greedy, gpu::BatchMode::kPipelined);
  expect_identical(out_lpt, out_greedy, "lpt vs unit-greedy");
  EXPECT_LT(fs_lpt.model_ms, fs_greedy.model_ms)
      << "LPT " << fs_lpt.model_ms << " ms vs unit-greedy "
      << fs_greedy.model_ms << " ms";
}

TEST(FleetSched, FleetStatsReportStagingPolicy) {
  const std::size_t n = 1 << 11, k = 8, batch_n = 6;
  const sfft::Params params = make_params(n, k, 550);
  gpu::Options opts = gpu::Options::optimized();
  opts.include_transfer = true;
  std::vector<cvec> sigs;
  for (std::size_t i = 0; i < batch_n; ++i)
    sigs.push_back(test_signal(n, k, 5000 + i));
  std::vector<std::span<const cplx>> views(sigs.begin(), sigs.end());

  auto run = [&](PcieStaging staging, gpu::GpuFleetStats& fs) {
    DeviceGroup group(2);
    group.set_staging(staging);
    gpu::MultiGpuPlan mplan(group, params, opts);
    return mplan.execute_many(views, &fs);
  };
  gpu::GpuFleetStats unlimited, staged;
  const auto out_u = run(PcieStaging::Unlimited(), unlimited);
  const auto out_s = run(PcieStaging::RoundRobin(), staged);
  expect_identical(out_u, out_s, "staging policies");

  EXPECT_EQ(unlimited.staging, "unlimited");
  EXPECT_EQ(unlimited.pcie_queue_ms, 0.0);
  EXPECT_GT(unlimited.pcie_stall_ms, 0.0);

  EXPECT_EQ(staged.staging, "round-robin");
  // One copy in flight at a time: admission waits replace bandwidth
  // sharing entirely.
  EXPECT_GT(staged.pcie_queue_ms, 0.0);
  EXPECT_NEAR(staged.pcie_stall_ms, 0.0, 1e-9);  // rounding residue only
}

}  // namespace
}  // namespace cusfft
