// Unit tests for src/core: modular math, RNG, thread pool, metrics, tables.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>

#include "core/json_lite.hpp"
#include "core/metrics.hpp"
#include "core/modmath.hpp"
#include "core/rng.hpp"
#include "core/spectrum.hpp"
#include "core/table.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"

namespace cusfft {
namespace {

TEST(ModMath, Gcd) {
  EXPECT_EQ(gcd_u64(12, 18), 6u);
  EXPECT_EQ(gcd_u64(17, 5), 1u);
  EXPECT_EQ(gcd_u64(0, 7), 7u);
  EXPECT_EQ(gcd_u64(7, 0), 7u);
  EXPECT_EQ(gcd_u64(1u << 20, 1u << 12), 1u << 12);
}

TEST(ModMath, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(1023), 9u);
  EXPECT_EQ(log2_floor(1024), 10u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(prev_pow2(5), 4u);
  EXPECT_EQ(prev_pow2(1024), 1024u);
}

TEST(ModMath, ModMulLarge) {
  const u64 m = (1ULL << 62) - 57;
  const u64 a = m - 1, b = m - 2;
  // (m-1)(m-2) mod m == 2
  EXPECT_EQ(mod_mul(a, b, m), 2u);
}

TEST(ModMath, ModPow) {
  EXPECT_EQ(mod_pow(2, 10, 1000), 24u);
  EXPECT_EQ(mod_pow(3, 0, 7), 1u);
  EXPECT_EQ(mod_pow(5, 117, 19), mod_pow(5, 117 % 18, 19));  // Fermat
}

TEST(ModMath, ModInverseRoundTrip) {
  const u64 n = 1ULL << 20;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const u64 a = rng.next_odd_below(n);
    const u64 ai = mod_inverse(a, n);
    EXPECT_EQ(mod_mul(a, ai, n), 1u) << "a=" << a;
  }
}

TEST(ModMath, ModInverseRejectsNonCoprime) {
  EXPECT_THROW(mod_inverse(4, 16), std::invalid_argument);
  EXPECT_THROW(mod_inverse(0, 16), std::invalid_argument);
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, OddBelowIsOddAndInvertible) {
  Rng rng(2);
  const u64 n = 1ULL << 16;
  for (int i = 0; i < 500; ++i) {
    const u64 v = rng.next_odd_below(n);
    EXPECT_EQ(v % 2, 1u);
    EXPECT_LT(v, n);
    EXPECT_EQ(gcd_u64(v, n), 1u);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(3);
  double sum = 0, sum2 = 0;
  const int N = 20000;
  for (int i = 0; i < N; ++i) {
    const double v = rng.next_normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / N, 0.0, 0.05);
  EXPECT_NEAR(sum2 / N, 1.0, 0.05);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) counts[i].fetch_add(1);
  });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, EmptyAndSingleton) {
  ThreadPool pool(3);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> sum{0};
  pool.parallel_for(1, [&](std::size_t b, std::size_t e) {
    sum += static_cast<int>(e - b);
  });
  EXPECT_EQ(sum.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> total{0};
    pool.parallel_for(97, [&](std::size_t b, std::size_t e) {
      total += e - b;
    });
    ASSERT_EQ(total.load(), 97u);
  }
}

TEST(StepTimers, AccumulatesScopes) {
  StepTimers t;
  t.add("a", 1.5);
  t.add("a", 2.5);
  t.add("b", 1.0);
  EXPECT_DOUBLE_EQ(t.get("a"), 4.0);
  EXPECT_DOUBLE_EQ(t.get("b"), 1.0);
  EXPECT_DOUBLE_EQ(t.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(t.total(), 5.0);
  t.clear();
  EXPECT_DOUBLE_EQ(t.total(), 0.0);
}

TEST(Metrics, DensifyPlacesCoefficients) {
  SparseSpectrum s{{3, {1.0, 2.0}}, {5, {0.5, 0.0}}};
  cvec d = densify(s, 8);
  EXPECT_EQ(d[3], cplx(1.0, 2.0));
  EXPECT_EQ(d[5], cplx(0.5, 0.0));
  EXPECT_EQ(d[0], cplx(0.0, 0.0));
}

TEST(Metrics, L1ErrorZeroOnExactMatch) {
  cvec oracle(16, cplx{});
  oracle[4] = {2.0, 0.0};
  SparseSpectrum s{{4, {2.0, 0.0}}};
  EXPECT_DOUBLE_EQ(l1_error_per_coeff(s, oracle, 1), 0.0);
}

TEST(Metrics, L1ErrorCountsMissesAndGhosts) {
  cvec oracle(16, cplx{});
  oracle[4] = {2.0, 0.0};
  SparseSpectrum ghost{{9, {1.0, 0.0}}};  // misses loc 4, adds ghost at 9
  EXPECT_DOUBLE_EQ(l1_error_per_coeff(ghost, oracle, 1), 3.0);
}

TEST(Metrics, LocationRecall) {
  cvec oracle(16, cplx{});
  oracle[2] = {5.0, 0.0};
  oracle[7] = {4.0, 0.0};
  oracle[11] = {3.0, 0.0};
  SparseSpectrum s{{2, {5.0, 0.0}}, {11, {3.0, 0.0}}};
  EXPECT_DOUBLE_EQ(location_recall(s, oracle, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(location_recall(s, oracle, 1), 1.0);
}

TEST(ResultTable, AsciiAndCsvRoundTrip) {
  ResultTable t({"n", "time_ms"});
  t.add_row({"1024", ResultTable::num(1.25)});
  t.add_row({"2048", ResultTable::num(2.5)});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("n"), std::string::npos);
  EXPECT_NE(ascii.find("1024"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("n,time_ms"), std::string::npos);
  EXPECT_NE(csv.find("2048,2.5"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one-cell"}), std::invalid_argument);
}

TEST(ResultTable, CsvEscaping) {
  ResultTable t({"name"});
  t.add_row({"a,b\"c"});
  EXPECT_EQ(t.to_csv(), "name\n\"a,b\"\"c\"\n");
}


TEST(Metrics, MaxErrorIgnoresOutOfRangeLocations) {
  cvec oracle(8, cplx{});
  oracle[2] = {1.0, 0.0};
  SparseSpectrum s{{2, {1.0, 0.0}}, {100, {9.0, 9.0}}};  // loc 100 > n
  EXPECT_DOUBLE_EQ(max_error_at_locs(s, oracle), 0.0);
}

TEST(ResultTable, WriteCsvFailsGracefully) {
  ResultTable t({"a"});
  t.add_row({"1"});
  EXPECT_FALSE(t.write_csv("/nonexistent_dir_xyz/out.csv"));
}


TEST(Spectrum, TrimTopKKeepsLargest) {
  SparseSpectrum s{{1, {0.1, 0.0}}, {2, {5.0, 0.0}}, {3, {0.2, 0.0}},
                   {4, {0.0, 3.0}}};
  const auto t = trim_top_k(s, 2);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].loc, 2u);  // sorted by location after trimming
  EXPECT_EQ(t[1].loc, 4u);
  // k >= size: unchanged content.
  EXPECT_EQ(trim_top_k(s, 10).size(), 4u);
  EXPECT_TRUE(trim_top_k({}, 3).empty());
}

TEST(JsonLite, ParsesScalarsAndContainers) {
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(
      R"({"a":1.5,"b":[true,false,null],"c":{"d":"x"},"e":-2e3})", v, &err))
      << err;
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.number_or("a", 0), 1.5);
  EXPECT_DOUBLE_EQ(v.number_or("e", 0), -2000.0);
  const json::Value* b = v.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].is_bool() && b->array[0].boolean);
  EXPECT_TRUE(b->array[2].is_null());
  const json::Value* c = v.find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->string_or("d", ""), "x");
  // Convenience accessors fall back on absence or type mismatch.
  EXPECT_DOUBLE_EQ(v.number_or("missing", 7), 7.0);
  EXPECT_EQ(v.string_or("a", "def"), "def");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonLite, DecodesStringEscapes) {
  json::Value v;
  ASSERT_TRUE(json::parse(R"(["a\"b\\c\/\n\t", "Aé"])", v));
  ASSERT_EQ(v.array.size(), 2u);
  EXPECT_EQ(v.array[0].string, "a\"b\\c/\n\t");
  EXPECT_EQ(v.array[1].string, "A\xc3\xa9");  // UTF-8 encoded
}

TEST(JsonLite, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",            // empty
      "{",           // unterminated object
      "[1,]",        // trailing comma
      "{\"a\":1} x",  // trailing content
      "\"unterminated",
      "[\"bad\\q\"]",  // unknown escape
      "01",            // leading zero
      "nul",           // truncated literal
      "1e999",         // overflows to non-finite
  };
  for (const char* doc : bad) {
    json::Value v;
    std::string err;
    EXPECT_FALSE(json::parse(doc, v, &err)) << doc;
    EXPECT_FALSE(err.empty()) << doc;
  }
}

TEST(Spectrum, MergeDuplicatesSums) {
  SparseSpectrum s{{7, {1.0, 0.0}}, {3, {0.5, 0.5}}, {7, {2.0, -1.0}}};
  const auto m = merge_duplicates(s);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].loc, 3u);
  EXPECT_EQ(m[1].loc, 7u);
  EXPECT_EQ(m[1].val, cplx(3.0, -1.0));
}

TEST(Spectrum, SortByMagnitudeAndEnergy) {
  SparseSpectrum s{{1, {1.0, 0.0}}, {2, {0.0, 2.0}}, {3, {0.5, 0.0}}};
  sort_by_magnitude(s);
  EXPECT_EQ(s[0].loc, 2u);
  EXPECT_EQ(s[2].loc, 3u);
  EXPECT_DOUBLE_EQ(spectrum_energy(s), 1.0 + 4.0 + 0.25);
  EXPECT_DOUBLE_EQ(spectrum_energy({}), 0.0);
}

}  // namespace
}  // namespace cusfft
