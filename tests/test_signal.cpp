// Tests for src/signal: window shapes, flat-filter frequency contract
// (flat passband, exponentially small tail), generators.
#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "fft/fft.hpp"
#include "signal/filter.hpp"
#include "signal/generate.hpp"
#include "signal/window.hpp"

namespace cusfft {
namespace {

using signal::FlatFilter;
using signal::FlatFilterParams;
using signal::WindowKind;

TEST(ChebPoly, MatchesCosineDefinitionInside) {
  for (double x : {-0.9, -0.3, 0.0, 0.4, 1.0}) {
    EXPECT_NEAR(signal::cheb_poly(3, x), 4 * x * x * x - 3 * x, 1e-12);
    EXPECT_NEAR(signal::cheb_poly(2, x), 2 * x * x - 1, 1e-12);
  }
}

TEST(ChebPoly, GrowsOutside) {
  EXPECT_GT(signal::cheb_poly(8, 1.5), 1.0);
  // parity: T_m(-x) = (-1)^m T_m(x)
  EXPECT_NEAR(signal::cheb_poly(5, -1.5), -signal::cheb_poly(5, 1.5), 1e-9);
  EXPECT_NEAR(signal::cheb_poly(6, -1.5), signal::cheb_poly(6, 1.5), 1e-9);
}

class WindowTest : public ::testing::TestWithParam<WindowKind> {};

TEST_P(WindowTest, SymmetricRealPeakCentered) {
  const auto w = signal::make_window(GetParam(), 0.02, 1e-6);
  ASSERT_GE(w.size(), 3u);
  const std::size_t c = w.size() / 2;
  EXPECT_NEAR(w[c], 1.0, 0.05);  // unit peak at the center
  for (std::size_t i = 0; i < w.size() / 2; ++i)
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-6) << i;
}

TEST_P(WindowTest, FrequencySidelobesBelowTolerance) {
  const double lobefrac = 0.05, tol = 1e-6;
  const auto w = signal::make_window(GetParam(), lobefrac, tol);
  const std::size_t n = 4096;
  ASSERT_LT(w.size(), n);
  // Center taps at t=0 and inspect the response outside the main lobe.
  cvec g(n, cplx{});
  for (std::size_t j = 0; j < w.size(); ++j)
    g[(j + n - w.size() / 2) % n] = cplx{w[j], 0.0};
  cvec G = fft::fft(g);
  const double peak = std::abs(G[0]);
  EXPECT_GT(peak, 0.0);
  const auto lobe = static_cast<std::size_t>(lobefrac * n);
  for (std::size_t f = lobe + 1; f <= n / 2; ++f) {
    EXPECT_LT(std::abs(G[f]) / peak, 20 * tol) << "f=" << f;
    EXPECT_LT(std::abs(G[n - f]) / peak, 20 * tol) << "-f=" << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, WindowTest,
                         ::testing::Values(WindowKind::kDolphChebyshev,
                                           WindowKind::kGaussian,
                                           WindowKind::kKaiser));

TEST(FlatFilter, RejectsBadArgs) {
  EXPECT_THROW(signal::make_flat_filter(1000, 16), std::invalid_argument);
  EXPECT_THROW(signal::make_flat_filter(1024, 24), std::invalid_argument);
  EXPECT_THROW(signal::make_flat_filter(1024, 2048), std::invalid_argument);
}

TEST(FlatFilter, ShapesAndInvariants) {
  const std::size_t n = 1 << 14, B = 64;
  FlatFilter f = signal::make_flat_filter(n, B);
  EXPECT_EQ(f.freq.size(), n);
  EXPECT_TRUE(is_pow2(f.time.size()));
  EXPECT_GE(f.time.size(), B);
  EXPECT_LE(f.time.size(), n);
  EXPECT_EQ(f.time.size() % B, 0u);  // integral rounds for the GPU kernel
  // Peak-normalized frequency response.
  double peak = 0;
  for (const auto& v : f.freq) peak = std::max(peak, std::abs(v));
  EXPECT_NEAR(peak, 1.0, 1e-9);
}

TEST(FlatFilter, PassbandFlatAndTailSmall) {
  const std::size_t n = 1 << 14, B = 64;
  FlatFilter f = signal::make_flat_filter(n, B);
  const std::size_t half_bucket = n / (2 * B);
  // Inside the bucket (the offsets estimation divides by): response must be
  // well above the tail so the division is stable.
  for (std::size_t d = 0; d <= half_bucket; ++d) {
    EXPECT_GT(std::abs(f.freq[d]), 0.3) << d;
    EXPECT_GT(std::abs(f.freq[n - 1 - d]), 0.2) << d;
  }
  // Far outside (more than 2 buckets away): exponentially small.
  for (std::size_t ff = 4 * half_bucket; ff <= n / 2; ff += half_bucket)
    EXPECT_LT(std::abs(f.freq[ff]), 1e-5) << ff;
}

TEST(FlatFilter, FreqIsDftOfAppliedTaps) {
  const std::size_t n = 1 << 12, B = 32;
  FlatFilter f = signal::make_flat_filter(n, B);
  cvec padded(n, cplx{});
  std::copy(f.time.begin(), f.time.end(), padded.begin());
  cvec G = fft::fft(padded);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_NEAR(std::abs(G[i] - f.freq[i]), 0.0, 1e-9) << i;
}

TEST(FlatFilter, GaussianKindAlsoUsable) {
  FlatFilterParams p;
  p.kind = WindowKind::kGaussian;
  FlatFilter f = signal::make_flat_filter(1 << 13, 32, p);
  double peak = 0;
  for (const auto& v : f.freq) peak = std::max(peak, std::abs(v));
  EXPECT_NEAR(peak, 1.0, 1e-9);
  EXPECT_GT(std::abs(f.freq[0]), 0.5);
}

TEST(Generate, ExactSparseMatchesOracle) {
  Rng rng(11);
  const std::size_t n = 1 << 10, k = 8;
  auto sig = signal::make_sparse_signal(n, k, rng);
  ASSERT_EQ(sig.truth.size(), k);
  cvec oracle = fft::fft(sig.x);
  cvec dense = densify(sig.truth, n);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_NEAR(std::abs(oracle[i] - dense[i]), 0.0, 1e-8) << i;
}

TEST(Generate, DistinctLocationsAndUnitMags) {
  Rng rng(12);
  auto sig = signal::make_sparse_signal(1 << 12, 64, rng);
  std::set<u64> locs;
  for (const auto& c : sig.truth) {
    locs.insert(c.loc);
    EXPECT_NEAR(std::abs(c.val), 1.0, 1e-12);
  }
  EXPECT_EQ(locs.size(), 64u);
}

TEST(Generate, UniformMagnitudeRange) {
  Rng rng(13);
  signal::SparseSignalParams p;
  p.mags = signal::MagnitudeDist::kUniform1to10;
  auto sig = signal::make_sparse_signal(1 << 12, 128, rng, p);
  for (const auto& c : sig.truth) {
    EXPECT_GE(std::abs(c.val), 1.0 - 1e-9);
    EXPECT_LE(std::abs(c.val), 10.0 + 1e-9);
  }
}

TEST(Generate, NoiseRaisesTimeDomainEnergy) {
  Rng a(14), b(14);
  auto clean = signal::make_sparse_signal(1 << 10, 4, a);
  signal::SparseSignalParams p;
  p.noise_sigma = 0.1;
  auto noisy = signal::make_sparse_signal(1 << 10, 4, b, p);
  double ec = 0, en = 0;
  for (const auto& v : clean.x) ec += std::norm(v);
  for (const auto& v : noisy.x) en += std::norm(v);
  EXPECT_GT(en, ec);
}

TEST(Generate, ClusteredRunsAreContiguous) {
  Rng rng(15);
  auto sig = signal::make_clustered_signal(1 << 12, 12, 3, rng);
  EXPECT_EQ(sig.truth.size(), 12u);
  cvec oracle = fft::fft(sig.x);
  cvec dense = densify(sig.truth, 1 << 12);
  for (std::size_t i = 0; i < oracle.size(); ++i)
    ASSERT_NEAR(std::abs(oracle[i] - dense[i]), 0.0, 1e-8);
}

TEST(Generate, RejectsBadArgs) {
  Rng rng(16);
  EXPECT_THROW(signal::make_sparse_signal(1000, 4, rng),
               std::invalid_argument);
  EXPECT_THROW(signal::make_clustered_signal(1 << 10, 4, 0, rng),
               std::invalid_argument);
  EXPECT_THROW(signal::make_clustered_signal(1 << 10, 4, 9, rng),
               std::invalid_argument);
}


TEST(WindowLength, MatchesBuiltWindows) {
  for (auto kind : {WindowKind::kDolphChebyshev, WindowKind::kGaussian,
                    WindowKind::kKaiser}) {
    for (double lobefrac : {0.01, 0.05, 0.2}) {
      for (double tol : {1e-4, 1e-8}) {
        EXPECT_EQ(signal::window_length(kind, lobefrac, tol),
                  signal::make_window(kind, lobefrac, tol).size())
            << lobefrac << " " << tol;
      }
    }
  }
  EXPECT_THROW(signal::window_length(WindowKind::kGaussian, 0.7, 1e-6),
               std::invalid_argument);
}

TEST(FlatFilterSizes, MatchesBuiltFilter) {
  for (std::size_t B : {16u, 64u, 512u}) {
    const std::size_t n = 1 << 14;
    const auto [w, w_pad] = signal::flat_filter_sizes(n, B);
    const auto f = signal::make_flat_filter(n, B);
    EXPECT_EQ(w, f.w_active) << B;
    EXPECT_EQ(w_pad, f.time.size()) << B;
  }
}


TEST(BesselI0, MatchesKnownValues) {
  EXPECT_NEAR(signal::bessel_i0(0.0), 1.0, 1e-15);
  EXPECT_NEAR(signal::bessel_i0(1.0), 1.2660658777520084, 1e-12);
  EXPECT_NEAR(signal::bessel_i0(5.0), 27.239871823604442, 1e-9);
  // Even function.
  EXPECT_DOUBLE_EQ(signal::bessel_i0(-3.0), signal::bessel_i0(3.0));
}

TEST(KaiserWindow, FlatFilterWorksEndToEnd) {
  FlatFilterParams p;
  p.kind = WindowKind::kKaiser;
  FlatFilter f = signal::make_flat_filter(1 << 13, 32, p);
  double peak = 0;
  for (const auto& v : f.freq) peak = std::max(peak, std::abs(v));
  EXPECT_NEAR(peak, 1.0, 1e-9);
  EXPECT_GT(std::abs(f.freq[0]), 0.5);
}

}  // namespace
}  // namespace cusfft
