// Tests for the bench_micro regression gate (tools/bench_gate_lib): parsing
// google-benchmark JSON exports, matching by name, the noise floor, and the
// synthetic-regression negative test the CI gate depends on.
#include <gtest/gtest.h>

#include <string>

#include "bench_gate_lib.hpp"

namespace cusfft::tools {
namespace {

/// Builds a minimal --benchmark_out document from (name, cpu_time_ns) pairs.
std::string bench_json(
    const std::vector<std::pair<std::string, double>>& entries,
    const std::string& time_unit = "ns") {
  std::string s = R"({"context": {"date": "x"}, "benchmarks": [)";
  bool first = true;
  for (const auto& [name, cpu] : entries) {
    if (!first) s += ",";
    first = false;
    s += R"({"name": ")" + name + R"(", "run_type": "iteration",)" +
         R"( "iterations": 100, "real_time": )" + std::to_string(cpu) +
         R"(, "cpu_time": )" + std::to_string(cpu) + R"(, "time_unit": ")" +
         time_unit + R"("})";
  }
  s += "]}";
  return s;
}

TEST(BenchGate, ParsesBenchmarkOutDocument) {
  const auto s = summarize_benchmark_json(
      bench_json({{"BM_A", 1000.0}, {"BM_B", 2000.0}}));
  ASSERT_TRUE(s.ok) << s.error;
  ASSERT_EQ(s.entries.size(), 2u);
  EXPECT_EQ(s.entries[0].name, "BM_A");
  EXPECT_DOUBLE_EQ(s.entries[0].cpu_time_ns, 1000.0);
  EXPECT_EQ(s.entries[0].iterations, 100u);
}

TEST(BenchGate, NormalizesTimeUnits) {
  const auto s =
      summarize_benchmark_json(bench_json({{"BM_A", 1.5}}, "ms"));
  ASSERT_TRUE(s.ok) << s.error;
  EXPECT_DOUBLE_EQ(s.entries[0].cpu_time_ns, 1.5e6);
}

TEST(BenchGate, KeepsMedianAggregatesOnly) {
  const std::string doc = R"({"benchmarks": [
    {"name": "BM_A", "run_type": "iteration", "cpu_time": 999.0,
     "real_time": 999.0, "iterations": 10, "time_unit": "ns"},
    {"name": "BM_A_mean", "run_type": "aggregate", "aggregate_name": "mean",
     "cpu_time": 1100.0, "real_time": 1100.0, "iterations": 3,
     "time_unit": "ns"},
    {"name": "BM_A_median", "run_type": "aggregate",
     "aggregate_name": "median", "cpu_time": 1000.0, "real_time": 1000.0,
     "iterations": 3, "time_unit": "ns"}]})";
  const auto s = summarize_benchmark_json(doc);
  ASSERT_TRUE(s.ok) << s.error;
  // With aggregates present, only the median survives — renamed to the
  // plain benchmark name so repeated and single runs compare directly.
  ASSERT_EQ(s.entries.size(), 1u);
  EXPECT_EQ(s.entries[0].name, "BM_A");
  EXPECT_DOUBLE_EQ(s.entries[0].cpu_time_ns, 1000.0);
}

TEST(BenchGate, RejectsNonBenchmarkDocuments) {
  EXPECT_FALSE(summarize_benchmark_json("not json").ok);
  EXPECT_FALSE(summarize_benchmark_json(R"({"foo": 1})").ok);
  EXPECT_FALSE(summarize_benchmark_json(R"({"benchmarks": []})").ok);
}

TEST(BenchGate, SyntheticRegressionIsFlagged) {
  // The CI negative test in library form: a 4x slowdown on one benchmark
  // must push worst_regression_frac past any sane threshold.
  const auto base = summarize_benchmark_json(
      bench_json({{"BM_A", 1000.0}, {"BM_B", 2000.0}}));
  const auto next = summarize_benchmark_json(
      bench_json({{"BM_A", 4000.0}, {"BM_B", 2000.0}}));
  ASSERT_TRUE(base.ok && next.ok);
  const auto r = gate_benchmarks(base, next, /*noise_floor_ns=*/500.0);
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].name, "BM_A");  // sorted worst-first
  EXPECT_NEAR(r.rows[0].frac, 3.0, 1e-12);
  EXPECT_NEAR(r.worst_regression_frac, 3.0, 1e-12);
  EXPECT_GT(r.worst_regression_frac, 2.5);  // CI threshold
}

TEST(BenchGate, ImprovementsNeverRaiseWorstRegression) {
  const auto base = summarize_benchmark_json(
      bench_json({{"BM_A", 8000.0}, {"BM_B", 2000.0}}));
  const auto next = summarize_benchmark_json(
      bench_json({{"BM_A", 1000.0}, {"BM_B", 2100.0}}));
  const auto r = gate_benchmarks(base, next, 500.0);
  // BM_A improved 8x; BM_B regressed 5%. Worst regression is the 5%.
  EXPECT_NEAR(r.worst_regression_frac, 0.05, 1e-12);
}

TEST(BenchGate, NoiseFloorExemptsFastBenchmarks) {
  // A 10x slip on a 2 ns benchmark is timer noise, not a regression.
  const auto base = summarize_benchmark_json(
      bench_json({{"BM_Tiny", 2.0}, {"BM_Big", 10000.0}}));
  const auto next = summarize_benchmark_json(
      bench_json({{"BM_Tiny", 20.0}, {"BM_Big", 10500.0}}));
  const auto r = gate_benchmarks(base, next, 500.0);
  EXPECT_NEAR(r.worst_regression_frac, 0.05, 1e-12);
  for (const auto& row : r.rows)
    if (row.name == "BM_Tiny") EXPECT_FALSE(row.gated);
}

TEST(BenchGate, TracksMissingAndNewBenchmarks) {
  const auto base = summarize_benchmark_json(
      bench_json({{"BM_A", 1000.0}, {"BM_Gone", 1000.0}}));
  const auto next = summarize_benchmark_json(
      bench_json({{"BM_A", 1000.0}, {"BM_Fresh", 1000.0}}));
  const auto r = gate_benchmarks(base, next, 500.0);
  ASSERT_EQ(r.only_base.size(), 1u);
  EXPECT_EQ(r.only_base[0], "BM_Gone");
  ASSERT_EQ(r.only_new.size(), 1u);
  EXPECT_EQ(r.only_new[0], "BM_Fresh");
  EXPECT_NEAR(r.worst_regression_frac, 0.0, 1e-12);
}

}  // namespace
}  // namespace cusfft::tools
