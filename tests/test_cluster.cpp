// Cluster tier: cusim::Cluster joins M DeviceGroup nodes over a modeled
// NIC fabric and gpu::ClusterPlan shards batches (and slab-decomposes
// oversized signals) across them. The contract under test:
//   1. the M = 1 cluster is the fleet: spectra, GpuFleetStats, and every
//      serialized artifact (chrome trace, structured profile) are
//      byte-identical to the DeviceGroup/MultiGpuPlan path;
//   2. spectra stay bit-identical to the single-device batch path at any
//      node count — node sharding only moves modeled time around;
//   3. a 2-node cluster beats the 1-node fleet makespan by >= 1.5x at the
//      bench shape while the NIC accounting (bytes/queue/stall, head node
//      free) holds together;
//   4. the merged cluster trace passes the CI artifact checks and the
//      cluster metrics pass the metrics_check --cluster coverage gate;
//   5. execute_slab refuses an oversized signal at M = 1 and recovers the
//      SerialPlan support on a cluster whose per-slab footprint fits.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/rng.hpp"
#include "cusfft/cluster_plan.hpp"
#include "cusfft/multi_plan.hpp"
#include "cusfft/plan.hpp"
#include "cusim/cluster.hpp"
#include "cusim/device.hpp"
#include "cusim/device_group.hpp"
#include "cusim/metrics.hpp"
#include "cusim/profiler.hpp"
#include "metrics_check_lib.hpp"
#include "profile_check_lib.hpp"
#include "sfft/serial.hpp"
#include "signal/generate.hpp"

namespace cusfft {
namespace {

using cusim::Cluster;
using cusim::DeviceGroup;

cvec test_signal(std::size_t n, std::size_t k, u64 seed) {
  Rng rng(seed);
  return signal::make_sparse_signal(n, k, rng).x;
}

struct Batch {
  std::vector<cvec> signals;
  std::vector<std::span<const cplx>> views;

  Batch(std::size_t count, std::size_t n, std::size_t k, u64 seed0) {
    for (std::size_t i = 0; i < count; ++i)
      signals.push_back(test_signal(n, k, seed0 + i));
    for (const cvec& s : signals) views.emplace_back(s);
  }
};

void expect_identical(const std::vector<SparseSpectrum>& a,
                      const std::vector<SparseSpectrum>& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << what << " signal " << i;
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j].loc, b[i][j].loc) << what << " signal " << i;
      EXPECT_EQ(a[i][j].val, b[i][j].val) << what << " signal " << i;
    }
  }
}

sfft::Params make_params(std::size_t n, std::size_t k, u64 seed) {
  sfft::Params p;
  p.n = n;
  p.k = k;
  p.seed = seed;
  return p;
}

TEST(Cluster, SingleNodeByteIdenticalToFleet) {
  // The degenerate cluster must not merely agree with the fleet — its
  // artifacts must be the fleet's, byte for byte, so every downstream
  // consumer (profile_check, profile_diff baselines, dashboards) sees no
  // seam when --nodes 1 routes through the cluster path.
  const std::size_t n = 1 << 11, k = 8, batch_n = 6;
  Batch batch(batch_n, n, k, 1101);
  const sfft::Params params = make_params(n, k, 1101);
  gpu::Options opts = gpu::Options::optimized();
  opts.include_transfer = true;

  DeviceGroup group(2);
  gpu::MultiGpuPlan mplan(group, params, opts);
  Cluster cluster(1, 2);
  gpu::ClusterPlan cplan(cluster, params, opts);

  // Warm the process-global buffer pool and filter cache on both paths so
  // the captures below see identical pool deltas (the profile serializes
  // the delta).
  mplan.execute_many(batch.views);
  cplan.execute_many(batch.views);

  gpu::GpuFleetStats fleet_fs;
  const auto expected = mplan.execute_many(batch.views, &fleet_fs);
  const cusim::CaptureProfile fleet_profile = group.end_capture();

  gpu::GpuFleetStats cluster_fs;
  const auto got = cplan.execute_many(batch.views, &cluster_fs);
  const cusim::CaptureProfile cluster_profile = cluster.end_capture();

  expect_identical(expected, got, "M=1 cluster vs fleet");

  // Stats: the delegation is wholesale, so every field matches and the
  // cluster-only extensions stay at their fleet defaults.
  EXPECT_EQ(cluster_fs.devices, fleet_fs.devices);
  EXPECT_EQ(cluster_fs.signals, fleet_fs.signals);
  EXPECT_DOUBLE_EQ(cluster_fs.model_ms, fleet_fs.model_ms);
  EXPECT_DOUBLE_EQ(cluster_fs.pcie_stall_ms, fleet_fs.pcie_stall_ms);
  EXPECT_DOUBLE_EQ(cluster_fs.imbalance, fleet_fs.imbalance);
  EXPECT_EQ(cluster_fs.device_of, fleet_fs.device_of);
  EXPECT_EQ(cluster_fs.nodes, 1u);
  EXPECT_EQ(cluster_fs.nic_transfers, 0u);
  EXPECT_EQ(cluster_fs.nic_bytes, 0);
  EXPECT_TRUE(cluster_fs.per_node.empty());
  EXPECT_TRUE(cluster_fs.node_of.empty());
  ASSERT_EQ(cluster_fs.per_device.size(), fleet_fs.per_device.size());
  for (std::size_t d = 0; d < fleet_fs.per_device.size(); ++d) {
    EXPECT_EQ(cluster_fs.per_device[d].signals,
              fleet_fs.per_device[d].signals);
    EXPECT_DOUBLE_EQ(cluster_fs.per_device[d].model_ms,
                     fleet_fs.per_device[d].model_ms);
  }

  // Artifacts: the degenerate capture has no node lanes, so both
  // serializations stay in the fleet format — byte-identical documents.
  EXPECT_TRUE(cluster_profile.nodes.empty());
  EXPECT_EQ(cluster_profile.to_json(), fleet_profile.to_json());
  EXPECT_EQ(cluster_profile.chrome_trace_json(),
            fleet_profile.chrome_trace_json());
}

TEST(Cluster, ShardedBitIdenticalAcrossNodeCounts) {
  const std::size_t n = 1 << 11, k = 8, batch_n = 8;
  Batch batch(batch_n, n, k, 2202);
  const sfft::Params params = make_params(n, k, 2202);
  const gpu::Options opts = gpu::Options::optimized();

  cusim::Device solo;
  gpu::GpuPlan plan(solo, params, opts);
  const auto expected = plan.execute_many(batch.views);

  for (std::size_t nodes : {1u, 2u, 4u}) {
    Cluster cluster(nodes, 2);
    gpu::ClusterPlan cplan(cluster, params, opts);
    gpu::GpuFleetStats fs;
    const auto got = cplan.execute_many(batch.views, &fs);
    expect_identical(expected, got, "cluster vs single-device");
    EXPECT_EQ(fs.signals, batch_n);
    EXPECT_EQ(fs.devices, nodes * 2);
    EXPECT_EQ(fs.nodes, nodes);
    EXPECT_GT(fs.model_ms, 0);
    if (nodes > 1) {
      // Results and stats stay in input order; the node split conserves
      // the batch.
      ASSERT_EQ(fs.node_of.size(), batch_n);
      ASSERT_EQ(fs.per_node.size(), nodes);
      std::size_t summed = 0;
      for (const auto& ns : fs.per_node) summed += ns.signals;
      EXPECT_EQ(summed, batch_n);
      for (std::size_t i = 0; i < batch_n; ++i) {
        EXPECT_LT(fs.node_of[i], nodes) << "signal " << i;
        EXPECT_EQ(fs.per_signal[i].candidates, got[i].size())
            << "signal " << i;
      }
    }
  }
}

TEST(Cluster, NodeAssignmentBalancesUniformBatch) {
  Cluster cluster(2, 2);
  gpu::ClusterPlan cplan(cluster, make_params(1 << 12, 8, 3303),
                         gpu::Options::optimized());
  const std::vector<sfft::Params> shapes(8, make_params(1 << 12, 8, 3303));
  const auto assign = cplan.node_assignment(shapes);
  ASSERT_EQ(assign.size(), shapes.size());
  // The head node is free (no NIC), so it opens first; after the one-time
  // staging charge the remote node fills to an even 4/4 split.
  EXPECT_EQ(assign[0], 0u);
  EXPECT_EQ(std::count(assign.begin(), assign.end(), 0u), 4);
  EXPECT_EQ(std::count(assign.begin(), assign.end(), 1u), 4);
}

TEST(Cluster, TwoNodesBeatOneNodeWithNicAccounting) {
  // The ROADMAP acceptance shape (n = 2^13, batch 8, transfers on):
  // doubling the node count at equal devices per node must buy >= 1.5x
  // modeled throughput even though every remote signal is staged over the
  // NIC, and the staging must be visible in the accounting — bytes only
  // on remote nodes, the head node free.
  const std::size_t n = 1 << 13, k = 8, batch_n = 8;
  Batch batch(batch_n, n, k, 4404);
  const sfft::Params params = make_params(n, k, 4404);
  gpu::Options opts = gpu::Options::optimized();
  opts.include_transfer = true;

  Cluster one(1, 2);
  gpu::ClusterPlan cplan1(one, params, opts);
  gpu::GpuFleetStats fs1;
  const auto out1 =
      cplan1.execute_many(batch.views, &fs1, gpu::BatchMode::kPipelined);

  Cluster two(2, 2);
  gpu::ClusterPlan cplan2(two, params, opts);
  gpu::GpuFleetStats fs2;
  const auto out2 =
      cplan2.execute_many(batch.views, &fs2, gpu::BatchMode::kPipelined);

  expect_identical(out1, out2, "2-node vs 1-node");
  ASSERT_GT(fs2.model_ms, 0);
  EXPECT_GE(fs1.model_ms / fs2.model_ms, 1.5)
      << "2-node makespan " << fs2.model_ms << " ms vs 1-node "
      << fs1.model_ms << " ms";

  EXPECT_EQ(fs2.nodes, 2u);
  ASSERT_EQ(fs2.per_node.size(), 2u);
  // One ingress per remote signal, n complex samples each.
  EXPECT_EQ(fs2.nic_transfers, fs2.per_node[1].signals);
  EXPECT_DOUBLE_EQ(fs2.nic_bytes,
                   static_cast<double>(fs2.per_node[1].signals) * n *
                       sizeof(cplx));
  EXPECT_EQ(fs2.per_node[0].nic_bytes, 0);
  EXPECT_GT(fs2.per_node[1].nic_bytes, 0);
  EXPECT_GT(fs2.nic_transfer_ms, 0);
  // Consecutive ingress to the same port queues behind the head transfer.
  EXPECT_GT(fs2.nic_queue_ms, 0);
  // The remote node starts after its first payload lands.
  EXPECT_GT(fs2.per_node[1].offset_ms, 0);
  EXPECT_EQ(fs2.per_node[0].offset_ms, 0);
}

TEST(Cluster, MergedTracePassesArtifactChecks) {
  const std::size_t n = 1 << 11, k = 8, batch_n = 6;
  Batch batch(batch_n, n, k, 5505);
  const sfft::Params params = make_params(n, k, 5505);
  gpu::Options opts = gpu::Options::optimized();
  opts.include_transfer = true;

  Cluster cluster(2, 2);
  gpu::ClusterPlan cplan(cluster, params, opts);
  cplan.execute_many(batch.views);
  const cusim::CaptureProfile p = cluster.end_capture();

  ASSERT_EQ(p.nodes.size(), 2u);
  ASSERT_EQ(p.lanes.size(), 4u);
  EXPECT_EQ(p.nodes[0].first_lane, 0u);
  EXPECT_EQ(p.nodes[1].first_lane, 2u);
  EXPECT_GT(p.nic_bw_Bps, 0);
  // The NIC staging renders as dedicated spans on the remote node.
  const auto nic_spans = std::count_if(
      p.spans.begin(), p.spans.end(),
      [](const cusim::TraceSpan& s) { return s.nic; });
  EXPECT_GT(nic_spans, 0);
  EXPECT_NE(p.chrome_trace_json().find("\"cat\":\"nic\""),
            std::string::npos);

  const auto r = tools::check_profile_json(p.chrome_trace_json());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.device_groups, 4u);
  EXPECT_GT(r.kernel_events, 0u);
}

TEST(Cluster, MetricsPassClusterCoverageCheck) {
  const std::size_t n = 1 << 11, k = 8, batch_n = 6;
  Batch batch(batch_n, n, k, 6606);
  Cluster cluster(2, 2);
  gpu::ClusterPlan cplan(cluster, make_params(n, k, 6606),
                         gpu::Options::optimized());
  gpu::GpuFleetStats fs;
  cplan.execute_many(batch.views, &fs);

  // Publish into a private registry: the exposition must pass the same
  // cross-node conservation sweep CI runs via metrics_check --cluster.
  cusim::MetricsRegistry reg;
  fs.to_cluster_metrics(reg);
  const auto r = tools::check_cluster_metrics(reg.expose_json(), 2);
  EXPECT_TRUE(r.ok);
  for (const auto& e : r.errors) ADD_FAILURE() << e;

  // The sweep itself must catch a broken split: claim more nodes than
  // were published.
  EXPECT_FALSE(tools::check_cluster_metrics(reg.expose_json(), 3).ok);
}

TEST(Cluster, SlabRefusesAtOneNodeAndMatchesSerial) {
  // Pick a shape whose full working set exceeds the (shrunken) modeled
  // device memory while one slab of it fits — the run that is impossible
  // at M = 1 and possible on the cluster.
  std::size_t n = 1 << 14;
  const std::size_t k = 8;
  sfft::Params p = make_params(n, k, 7707);
  while (n < (1ULL << 18) &&
         gpu::ClusterPlan::slab_node_working_set_bytes(p, 2) >=
             gpu::ClusterPlan::slab_working_set_bytes(p)) {
    n <<= 1;
    p = make_params(n, k, 7707);
  }
  const std::size_t ws = gpu::ClusterPlan::slab_working_set_bytes(p);
  ASSERT_LT(gpu::ClusterPlan::slab_node_working_set_bytes(p, 2), ws);

  perfmodel::GpuSpec tiny = perfmodel::GpuSpec::k20x();
  tiny.global_mem_bytes = ws - 1;
  const cvec x = test_signal(n, k, 7707);

  Cluster one(1, 1, tiny);
  gpu::ClusterPlan cp1(one, p, gpu::Options::optimized());
  EXPECT_THROW(cp1.execute_slab(x), std::runtime_error);

  Cluster two(2, 1, tiny);
  gpu::ClusterPlan cp2(two, p, gpu::Options::optimized());
  gpu::GpuFleetStats fs;
  const SparseSpectrum got = cp2.execute_slab(x, &fs);

  // Summing per-node partials regroups the FP accumulation, so the slab
  // spectrum is compared by recovered support, not bit-identical values.
  const SparseSpectrum ref = sfft::SerialPlan(p).execute(x);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_EQ(got[i].loc, ref[i].loc) << "coefficient " << i;

  // One slice ingress + one partial-bin exchange crossed the NIC.
  EXPECT_EQ(fs.nodes, 2u);
  EXPECT_EQ(fs.signals, 1u);
  EXPECT_EQ(fs.nic_transfers, 2u);
  EXPECT_GT(fs.nic_bytes, 0);
  ASSERT_EQ(fs.per_node.size(), 2u);
  EXPECT_GT(fs.per_node[0].nic_bytes, 0);  // the gathered partials
  EXPECT_GT(fs.per_node[1].nic_bytes, 0);  // the staged slice

  // The slab publication also satisfies the cluster metrics sweep.
  cusim::MetricsRegistry reg;
  fs.to_cluster_metrics(reg);
  const auto r = tools::check_cluster_metrics(reg.expose_json(), 2);
  EXPECT_TRUE(r.ok);
  for (const auto& e : r.errors) ADD_FAILURE() << e;
}

TEST(Cluster, DeterministicAcrossHostLaunchPaths) {
  // Forcing sequential functional execution on every device of every
  // node must not change outputs or the modeled cluster makespan.
  const std::size_t n = 1 << 11, k = 8, batch_n = 5;
  Batch batch(batch_n, n, k, 8808);
  const sfft::Params params = make_params(n, k, 8808);
  const gpu::Options opts = gpu::Options::optimized();

  auto run = [&](bool parallel) {
    Cluster cluster(2, 2);
    for (std::size_t m = 0; m < cluster.nodes(); ++m)
      for (std::size_t d = 0; d < cluster.node(m).size(); ++d)
        cluster.node(m).device(d).set_parallel(parallel);
    gpu::ClusterPlan cplan(cluster, params, opts);
    gpu::GpuFleetStats fs;
    auto out = cplan.execute_many(batch.views, &fs);
    return std::pair{std::move(out), fs.model_ms};
  };
  const auto [out_par, ms_par] = run(true);
  const auto [out_seq, ms_seq] = run(false);
  expect_identical(out_par, out_seq, "parallel vs sequential launch");
  EXPECT_DOUBLE_EQ(ms_par, ms_seq);
}

}  // namespace
}  // namespace cusfft
