// Tests for the capture observability subsystem (cusim/profiler.hpp):
// chrome-trace export well-formedness, per-stream track invariants, phase
// spans vs GpuExecStats agreement, allocation telemetry in profiles and in
// report_table(), and serialization determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "core/json_lite.hpp"
#include "core/rng.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "cusim/pool.hpp"
#include "cusim/profiler.hpp"
#include "cusim/report.hpp"
#include "signal/generate.hpp"

namespace cusfft {
namespace {

using cusim::CaptureProfile;
using cusim::Device;
using cusim::PhaseSpan;
using cusim::StreamId;

sfft::Params small_params() {
  sfft::Params p;
  p.n = 1 << 12;
  p.k = 8;
  p.seed = 7;
  return p;
}

cvec test_signal(std::size_t n, std::size_t k, u64 seed) {
  Rng rng(seed);
  return signal::make_sparse_signal(n, k, rng).x;
}

/// One optimized-backend execute; returns the device's capture profile and
/// (optionally) the exec stats.
CaptureProfile profiled_execute(Device& dev, gpu::GpuPlan& plan,
                                const cvec& x,
                                gpu::GpuExecStats* stats = nullptr) {
  gpu::GpuExecStats local;
  plan.execute(x, stats != nullptr ? stats : &local);
  return dev.end_capture();
}

TEST(CaptureProfile, BasicShape) {
  const auto p = small_params();
  Device dev;
  gpu::GpuPlan plan(dev, p, gpu::Options::optimized());
  const CaptureProfile prof =
      profiled_execute(dev, plan, test_signal(p.n, p.k, 3));

  EXPECT_EQ(prof.device, dev.spec().name);
  EXPECT_GT(prof.model_ms, 0.0);
  EXPECT_EQ(prof.max_concurrent_kernels, dev.spec().max_concurrent_kernels);
  EXPECT_GT(prof.occupancy_frac, 0.0);
  EXPECT_LE(prof.occupancy_frac, 1.0);
  EXPECT_FALSE(prof.spans.empty());
  ASSERT_EQ(prof.phases.size(), 4u);  // one execute = four phases
  EXPECT_FALSE(prof.kernels.empty());
  EXPECT_TRUE(std::is_sorted(prof.kernels.begin(), prof.kernels.end(),
                             [](const auto& a, const auto& b) {
                               return a.name < b.name;
                             }));
  for (const auto& k : prof.kernels) {
    EXPECT_GE(k.coalesced_frac, 0.0);
    EXPECT_LE(k.coalesced_frac, 1.0);
    EXPECT_GE(k.achieved_bw_frac, 0.0);
  }
  // Every span lies inside the makespan and has non-negative duration.
  for (const auto& s : prof.spans) {
    EXPECT_GE(s.start_ms, 0.0);
    EXPECT_LE(s.end_ms, prof.model_ms * (1 + 1e-12));
    EXPECT_LE(s.start_ms, s.end_ms);
  }
}

TEST(CaptureProfile, PhaseSpansMatchExecStats) {
  const auto p = small_params();
  Device dev;
  gpu::GpuPlan plan(dev, p, gpu::Options::optimized());
  gpu::GpuExecStats stats;
  const CaptureProfile prof =
      profiled_execute(dev, plan, test_signal(p.n, p.k, 3), &stats);

  ASSERT_EQ(prof.phases.size(), stats.phase_span_ms.size());
  double total = 0;
  for (const auto& ph : prof.phases) {
    ASSERT_TRUE(stats.phase_span_ms.count(ph.name)) << ph.name;
    EXPECT_NEAR(ph.span_ms(), stats.phase_span_ms.at(ph.name),
                1e-9 * std::max(1.0, prof.model_ms))
        << ph.name;
    total += ph.span_ms();
  }
  // Phases tile the capture: first starts at 0, spans sum to the makespan.
  EXPECT_NEAR(prof.phases.front().start_ms, 0.0, 1e-12);
  EXPECT_NEAR(total, prof.model_ms, 1e-9 * std::max(1.0, prof.model_ms));
}

TEST(CaptureProfile, ChromeTraceParsesAndTracksAreSane) {
  const auto p = small_params();
  Device dev;
  gpu::GpuPlan plan(dev, p, gpu::Options::optimized());
  const CaptureProfile prof =
      profiled_execute(dev, plan, test_signal(p.n, p.k, 5));

  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(prof.chrome_trace_json(), doc, &err)) << err;
  ASSERT_TRUE(doc.is_object());

  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Collect duration events per track; kernels on one stream are FIFO, so
  // a stream's track must never self-overlap, and the number of kernels in
  // flight at any instant stays within the modeled 32-kernel window.
  struct Ev {
    double ts, dur;
  };
  std::map<double, std::vector<Ev>> kernel_tracks;
  std::vector<std::pair<double, int>> edges;
  std::size_t phase_events = 0;
  for (const json::Value& e : events->array) {
    ASSERT_TRUE(e.is_object());
    const std::string ph = e.string_or("ph", "");
    if (ph == "M") continue;
    ASSERT_EQ(ph, "X");
    const double ts = e.number_or("ts", -1);
    const double dur = e.number_or("dur", -1);
    ASSERT_GE(ts, 0.0);
    ASSERT_GE(dur, 0.0);
    const std::string cat = e.string_or("cat", "");
    if (cat == "phase") ++phase_events;
    if (cat == "kernel") {
      kernel_tracks[e.number_or("tid", -1)].push_back({ts, dur});
      // 1 ns grid: %.12g serializes ts and dur separately, so a handoff
      // end (ts+dur) can land ~1e-5 us past its successor's start.
      edges.emplace_back(std::round(ts * 1e3) / 1e3, +1);
      edges.emplace_back(std::round((ts + dur) * 1e3) / 1e3, -1);
    }
  }
  EXPECT_EQ(phase_events, prof.phases.size());
  ASSERT_FALSE(kernel_tracks.empty());
  for (auto& [tid, evs] : kernel_tracks) {
    std::sort(evs.begin(), evs.end(),
              [](const Ev& a, const Ev& b) { return a.ts < b.ts; });
    for (std::size_t i = 1; i < evs.size(); ++i)
      EXPECT_GE(evs[i].ts, evs[i - 1].ts + evs[i - 1].dur - 1e-3)
          << "overlap on track " << tid;
  }
  std::sort(edges.begin(), edges.end());
  int running = 0, peak = 0;
  for (const auto& [t, d] : edges) {
    running += d;
    peak = std::max(peak, running);
  }
  EXPECT_LE(peak, static_cast<int>(prof.max_concurrent_kernels));
  EXPECT_GT(peak, 0);

  // The structured profile rides along under the "profile" key and its
  // phase spans agree with the trace's.
  const json::Value* sp = doc.find("profile");
  ASSERT_NE(sp, nullptr);
  ASSERT_TRUE(sp->is_object());
  EXPECT_NEAR(sp->number_or("model_ms", -1), prof.model_ms, 1e-9);
  const json::Value* phases = sp->find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->array.size(), prof.phases.size());
  for (std::size_t i = 0; i < prof.phases.size(); ++i) {
    EXPECT_EQ(phases->array[i].string_or("name", ""), prof.phases[i].name);
    EXPECT_NEAR(phases->array[i].number_or("span_ms", -1),
                prof.phases[i].span_ms(), 1e-9);
  }
}

TEST(CaptureProfile, WarmRepeatedExecuteAllocatesNothing) {
  const auto p = small_params();
  const cvec x = test_signal(p.n, p.k, 11);
  Device dev;
  gpu::GpuPlan plan(dev, p, gpu::Options::optimized());
  plan.execute(x);  // warm-up: buffers and filter cache populated

  const CaptureProfile prof = profiled_execute(dev, plan, x);
  const cusim::BufferPool::Stats d = prof.pool_delta();
  EXPECT_EQ(d.allocations, 0u)
      << "a warm repeated execute must be served entirely from the pool";
  EXPECT_EQ(d.bytes_allocated, 0u);
}

TEST(CaptureProfile, JsonAndTableAreDeterministic) {
  const auto p = small_params();
  const cvec x = test_signal(p.n, p.k, 13);
  auto run = [&] {
    Device dev;
    gpu::GpuPlan plan(dev, p, gpu::Options::optimized());
    plan.execute(x);  // warm-up so pool deltas match between runs
    return profiled_execute(dev, plan, x);
  };
  const CaptureProfile a = run();
  const CaptureProfile b = run();
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.chrome_trace_json(), b.chrome_trace_json());
  EXPECT_EQ(a.to_table().to_csv(), b.to_table().to_csv());
}

TEST(CaptureProfile, WriteProducesParseableFile) {
  const auto p = small_params();
  Device dev;
  gpu::GpuPlan plan(dev, p, gpu::Options::optimized());
  const CaptureProfile prof =
      profiled_execute(dev, plan, test_signal(p.n, p.k, 17));

  const std::string path =
      ::testing::TempDir() + "cusfft_profile_test.json";
  ASSERT_TRUE(prof.write(path));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  json::Value doc;
  std::string err;
  EXPECT_TRUE(json::parse(ss.str(), doc, &err)) << err;
  std::remove(path.c_str());
}

TEST(ReportTable, CarriesPoolDeltaRows) {
  const auto p = small_params();
  const cvec x = test_signal(p.n, p.k, 19);
  Device dev;
  gpu::GpuPlan plan(dev, p, gpu::Options::optimized());
  plan.execute(x);  // warm-up
  plan.execute(x);  // measured capture: everything recycled

  const std::string csv = cusim::report_table(dev).to_csv();
  // "no allocations after warm-up" straight from the report.
  EXPECT_NE(csv.find("[pool allocations],0,"), std::string::npos) << csv;
  EXPECT_NE(csv.find("[pool reuses],"), std::string::npos);
  EXPECT_NE(csv.find("[pool fresh_MB],0,"), std::string::npos);
  EXPECT_NE(csv.find("[pool pooled_MB],"), std::string::npos);
  // Kernel rows precede the pool rows and stay lexicographically sorted.
  std::vector<std::string> kernel_names;
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);  // header
  while (std::getline(lines, line)) {
    const std::string name = line.substr(0, line.find(','));
    if (name.rfind("[pool", 0) == 0) break;
    kernel_names.push_back(name);
  }
  EXPECT_FALSE(kernel_names.empty());
  EXPECT_TRUE(std::is_sorted(kernel_names.begin(), kernel_names.end()));
}

TEST(CaptureProfile, ExecuteManyRepeatsPhasesPerSignal) {
  const auto p = small_params();
  constexpr std::size_t kBatch = 2;
  std::vector<cvec> signals;
  std::vector<std::span<const cplx>> views;
  for (std::size_t i = 0; i < kBatch; ++i)
    signals.push_back(test_signal(p.n, p.k, 23 + i));
  for (const cvec& s : signals) views.emplace_back(s);

  Device dev;
  gpu::GpuPlan plan(dev, p, gpu::Options::optimized());
  plan.execute_many(views, nullptr, gpu::BatchMode::kSerialized);
  const CaptureProfile prof = dev.end_capture();
  EXPECT_EQ(prof.phases.size(), 4u * kBatch);
  // Phase list remains contiguous and ordered.
  for (std::size_t i = 1; i < prof.phases.size(); ++i)
    EXPECT_NEAR(prof.phases[i].start_ms, prof.phases[i - 1].end_ms, 1e-9);
}

TEST(CaptureProfile, PipelinedBatchScopesPhasesPerStream) {
  const auto p = small_params();
  constexpr std::size_t kBatch = 3;
  std::vector<cvec> signals;
  std::vector<std::span<const cplx>> views;
  for (std::size_t i = 0; i < kBatch; ++i)
    signals.push_back(test_signal(p.n, p.k, 23 + i));
  for (const cvec& s : signals) views.emplace_back(s);

  Device dev;
  gpu::GpuPlan plan(dev, p, gpu::Options::optimized());
  plan.execute_many(views, nullptr, gpu::BatchMode::kPipelined);
  const CaptureProfile prof = dev.end_capture();
  ASSERT_EQ(prof.phases.size(), 4u * kBatch);

  // Every phase is stream-scoped, and exactly two home streams are used
  // (signals alternate parity).
  std::set<StreamId> streams;
  for (const PhaseSpan& ph : prof.phases) {
    EXPECT_TRUE(ph.scoped);
    streams.insert(ph.stream);
  }
  EXPECT_EQ(streams.size(), 2u);

  // Within one stream, that stream's phases are contiguous and ordered —
  // the per-stream analogue of the serialized contiguity invariant.
  for (const StreamId s : streams) {
    const PhaseSpan* prev = nullptr;
    for (const PhaseSpan& ph : prof.phases) {
      if (ph.stream != s) continue;
      if (prev != nullptr) EXPECT_GE(ph.start_ms, prev->end_ms - 1e-9);
      prev = &ph;
    }
  }

  // The chrome trace names one phase track per home stream.
  const std::string trace = prof.chrome_trace_json();
  EXPECT_NE(trace.find("\"phases s"), std::string::npos);
}

}  // namespace
}  // namespace cusfft
