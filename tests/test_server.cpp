// Serving-tier contract (cusfft/server.hpp) under the deterministic
// harness (serve_harness.hpp):
//   1. config: CUSFFT_SERVE_* knobs are strict (malformed values throw a
//      typed error naming the variable) and unlatched (re-read on every
//      from_env call); validate() rejects degenerate configs;
//   2. batching never changes results: every completed request's spectrum
//      is bit-identical to a single-device GpuPlan::execute of the same
//      params and samples;
//   3. batch-close policy: size trigger, SLO wait windows with
//      latency-class preemption, deadline sheds at batch formation, and
//      per-tenant admission rejection — each pinned by a hand-computed
//      golden decision trace;
//   4. determinism: the same (trace, config, seed) reproduces the
//      schedule and decision traces and all stats bit-identically;
//   5. batched serving sustains higher QPS than per-request execution on
//      the same trace;
//   6. the cusfft_serve_* metrics stay monotonic and internally
//      consistent (validated with the same metrics_check_lib CI uses);
//   7. threaded drive: submit/wait/cancel/stop with conservation — every
//      request terminal exactly once — including a producer-thread soak.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "cusim/metrics.hpp"
#include "metrics_check_lib.hpp"
#include "serve_harness.hpp"

namespace cusfft {
namespace {

using serve::Outcome;
using serve::ServerConfig;
using serve::SloClass;
using serve::Trace;
using serve_test::ev;
using serve_test::run_trace;
using serve_test::scripted_trace;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Pin the pool width before anything touches ThreadPool::global() so the
// block-parallel paths stay multi-threaded on single-core CI runners.
const int kEnvGuard = [] {
  setenv("CUSFFT_THREADS", "4", /*overwrite=*/0);
  return 0;
}();

/// Restores a CUSFFT_SERVE_* variable to unset on scope exit.
struct EnvVar {
  const char* name;
  explicit EnvVar(const char* n) : name(n) {}
  void set(const char* v) { setenv(name, v, /*overwrite=*/1); }
  ~EnvVar() { unsetenv(name); }
};

ServerConfig small_config() {
  ServerConfig cfg;
  cfg.devices = 1;
  cfg.max_batch = 8;
  return cfg;
}

// ---- configuration ----------------------------------------------------

TEST(ServeConfig, FromEnvIsUnlatched) {
  EnvVar batch("CUSFFT_SERVE_MAX_BATCH");
  EXPECT_EQ(ServerConfig::from_env().max_batch, ServerConfig{}.max_batch);
  batch.set("5");
  EXPECT_EQ(ServerConfig::from_env().max_batch, 5u);
  batch.set("6");  // re-read, not latched by the previous call
  EXPECT_EQ(ServerConfig::from_env().max_batch, 6u);
}

TEST(ServeConfig, FromEnvReadsEveryKnob) {
  EnvVar dev("CUSFFT_SERVE_DEVICES"), batch("CUSFFT_SERVE_MAX_BATCH"),
      wait("CUSFFT_SERVE_MAX_WAIT_MS"), lat("CUSFFT_SERVE_MAX_WAIT_LAT_MS"),
      depth("CUSFFT_SERVE_QUEUE_DEPTH");
  dev.set("3");
  batch.set("4");
  wait.set("2.5");
  lat.set("0.25");
  depth.set("7");
  const ServerConfig cfg = ServerConfig::from_env();
  EXPECT_EQ(cfg.devices, 3u);
  EXPECT_EQ(cfg.max_batch, 4u);
  EXPECT_DOUBLE_EQ(cfg.max_wait_throughput_ms, 2.5);
  EXPECT_DOUBLE_EQ(cfg.max_wait_latency_ms, 0.25);
  EXPECT_EQ(cfg.tenant_queue_depth, 7u);
}

TEST(ServeConfig, MalformedEnvThrowsNamingTheVariable) {
  const char* size_knobs[] = {"CUSFFT_SERVE_DEVICES",
                              "CUSFFT_SERVE_MAX_BATCH",
                              "CUSFFT_SERVE_QUEUE_DEPTH"};
  for (const char* name : size_knobs) {
    EnvVar v(name);
    v.set("");  // empty keeps the default, like unset
    EXPECT_NO_THROW(ServerConfig::from_env());
    for (const char* bad : {"abc", "-3", "1.5"}) {
      v.set(bad);
      try {
        ServerConfig::from_env();
        FAIL() << name << "=" << bad << " accepted";
      } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find(name), std::string::npos);
      }
    }
  }
  const char* ms_knobs[] = {"CUSFFT_SERVE_MAX_WAIT_MS",
                            "CUSFFT_SERVE_MAX_WAIT_LAT_MS"};
  for (const char* name : ms_knobs) {
    EnvVar v(name);
    for (const char* bad : {"junk", "-1", "inf", "1ms"}) {
      v.set(bad);
      try {
        ServerConfig::from_env();
        FAIL() << name << "=" << bad << " accepted";
      } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find(name), std::string::npos);
      }
    }
  }
}

TEST(ServeConfig, ValidateRejectsDegenerateConfigs) {
  ServerConfig cfg;
  cfg.devices = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ServerConfig{};
  cfg.max_batch = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ServerConfig{};
  cfg.tenant_queue_depth = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ServerConfig{};
  cfg.max_wait_throughput_ms = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ServerConfig{};
  cfg.max_wait_latency_ms = kInf;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_THROW({ serve::Server s(cfg); }, std::invalid_argument);
}

TEST(ServeConfig, ZeroEnvValueFailsValidation) {
  EnvVar batch("CUSFFT_SERVE_MAX_BATCH");
  batch.set("0");
  EXPECT_THROW(ServerConfig::from_env(), std::invalid_argument);
}

// ---- batching preserves results ---------------------------------------

void expect_spectrum_matches_single_plan(const serve::Response& r,
                                         const serve::TraceEvent& e,
                                         std::size_t index, u64 seed,
                                         const ServerConfig& cfg) {
  cusim::Device dev;
  gpu::GpuPlan plan(dev, serve::trace_params(e, seed), cfg.opts);
  const SparseSpectrum want = plan.execute(serve::trace_signal(e, seed, index));
  ASSERT_EQ(r.spectrum.size(), want.size()) << "request " << r.id;
  for (std::size_t j = 0; j < want.size(); ++j) {
    EXPECT_EQ(r.spectrum[j].loc, want[j].loc) << "request " << r.id;
    EXPECT_EQ(r.spectrum[j].val, want[j].val) << "request " << r.id;
  }
}

TEST(ServeCorrectness, SingleRequestMatchesSinglePlanExecute) {
  Trace tr;
  tr.events.push_back(ev(0.0, "a", 1 << 10, 8, SloClass::kThroughput));
  const ServerConfig cfg = small_config();
  const auto r = run_trace(cfg, tr, /*seed=*/77);
  ASSERT_EQ(r.ids.size(), 1u);
  const serve::Response& resp = r.responses.at(r.ids[0]);
  ASSERT_EQ(resp.outcome, Outcome::kCompleted);
  EXPECT_EQ(resp.batch_seq, 0u);
  expect_spectrum_matches_single_plan(resp, tr.events[0], 0, 77, cfg);
}

TEST(ServeCorrectness, BatchedSpectraMatchSinglePlanAcrossShapes) {
  // Mixed shapes and tenants through shared batches: whatever batch a
  // request lands in, its spectrum must equal the standalone execute.
  const Trace tr = scripted_trace(/*events=*/24, /*tenants=*/3,
                                  /*n=*/1 << 9, /*k=*/8, /*seed=*/1234);
  ServerConfig cfg = small_config();
  cfg.devices = 2;
  cfg.max_batch = 4;
  const auto r = run_trace(cfg, tr, /*seed=*/1234);
  std::size_t completed = 0;
  for (std::size_t i = 0; i < r.ids.size(); ++i) {
    const serve::Response& resp = r.responses.at(r.ids[i]);
    if (resp.outcome != Outcome::kCompleted) continue;
    ++completed;
    expect_spectrum_matches_single_plan(resp, tr.events[i], i, 1234, cfg);
  }
  EXPECT_GT(completed, 0u);
  EXPECT_EQ(completed, r.stats.completed);
}

// ---- batch-close policy (golden decision traces) ----------------------

TEST(ServePolicy, SizeTriggerClosesAtMaxBatch) {
  ServerConfig cfg = small_config();
  cfg.max_batch = 3;
  cfg.max_wait_latency_ms = 1.0;
  cfg.max_wait_throughput_ms = 10.0;
  Trace tr;
  tr.events.push_back(ev(0.0, "a", 256, 4, SloClass::kThroughput));
  tr.events.push_back(ev(0.2, "a", 256, 4, SloClass::kThroughput));
  tr.events.push_back(ev(0.5, "b", 256, 4, SloClass::kLatency));
  tr.events.push_back(ev(5.0, "b", 256, 4, SloClass::kThroughput));
  const auto r = run_trace(cfg, tr, 1);
  EXPECT_EQ(r.decisions,
            "close reason=size ids=[1,2,3] shed=[]\n"
            "close reason=drain ids=[4] shed=[]\n");
  EXPECT_EQ(r.stats.batches, 2u);
  EXPECT_EQ(r.stats.completed, 4u);
}

TEST(ServePolicy, LatencyClassPreemptsThroughputWaitWindow) {
  ServerConfig cfg = small_config();
  cfg.max_wait_latency_ms = 1.0;
  cfg.max_wait_throughput_ms = 10.0;
  serve::Server s(cfg);
  serve::Request thr;
  thr.tenant = "a";
  thr.params = serve::trace_params(ev(0, "a", 256, 4, SloClass::kThroughput), 1);
  thr.x = serve::trace_signal(ev(0, "a", 256, 4, SloClass::kThroughput), 1, 0);
  const u64 id1 = s.submit_at(0.0, thr);
  serve::Request lat = thr;
  lat.slo = SloClass::kLatency;
  const u64 id2 = s.submit_at(0.3, std::move(lat));
  // Alone, the throughput request would wait until t=10; the latency
  // arrival at t=0.3 caps the close at 0.3 + 1.0 = 1.3.
  s.advance(1.2);
  EXPECT_FALSE(s.done(id1));
  EXPECT_FALSE(s.done(id2));
  s.advance(1.35);
  EXPECT_TRUE(s.done(id1));
  EXPECT_TRUE(s.done(id2));
  EXPECT_EQ(s.decision_trace(), "close reason=wait ids=[1,2] shed=[]\n");
  EXPECT_EQ(s.response(id2).outcome, Outcome::kCompleted);
  // Both rode the same batch: the latency request preempted, not queued
  // behind, the throughput window.
  EXPECT_EQ(s.response(id1).batch_seq, s.response(id2).batch_seq);
}

TEST(ServePolicy, ExpiredDeadlineShedsAtBatchFormation) {
  ServerConfig cfg = small_config();
  cfg.max_wait_throughput_ms = 5.0;
  serve::Server s(cfg);
  auto req = [&](double deadline) {
    serve::Request r;
    r.tenant = "a";
    r.params = serve::trace_params(ev(0, "a", 256, 4, SloClass::kThroughput), 1);
    r.x = serve::trace_signal(ev(0, "a", 256, 4, SloClass::kThroughput), 1, 0);
    r.deadline_ms = deadline;
    return r;
  };
  const u64 id1 = s.submit_at(0.0, req(kInf));
  const u64 id2 = s.submit_at(0.1, req(0.5));  // expires at t=0.6 < close t=5
  s.advance(6.0);  // wait window elapses; the batch forms after expiry
  EXPECT_EQ(s.decision_trace(), "close reason=wait ids=[1] shed=[2]\n");
  const serve::Response shed = s.response(id2);
  EXPECT_EQ(shed.outcome, Outcome::kShed);
  EXPECT_EQ(shed.batch_seq, static_cast<std::size_t>(-1));
  EXPECT_TRUE(shed.spectrum.empty());
  EXPECT_EQ(s.response(id1).outcome, Outcome::kCompleted);
  EXPECT_EQ(s.stats().completed, 1u);
  EXPECT_EQ(s.stats().shed, 1u);
}

TEST(ServePolicy, TenantQuotaRejectsAndReleases) {
  ServerConfig cfg = small_config();
  cfg.tenant_queue_depth = 1;
  serve::Server s(cfg);
  auto req = [&] {
    serve::Request r;
    r.tenant = "a";
    r.params = serve::trace_params(ev(0, "a", 256, 4, SloClass::kThroughput), 1);
    r.x = serve::trace_signal(ev(0, "a", 256, 4, SloClass::kThroughput), 1, 0);
    return r;
  };
  const u64 id1 = s.submit_at(0.0, req());
  const u64 id2 = s.submit_at(0.0, req());  // over quota: typed rejection
  EXPECT_EQ(s.response(id2).outcome, Outcome::kRejected);
  EXPECT_FALSE(s.done(id1));  // the admitted request is unaffected
  s.drain();
  EXPECT_EQ(s.response(id1).outcome, Outcome::kCompleted);
  // The launch released the quota: the tenant can submit again.
  const u64 id3 = s.submit_at(1.0, req());
  s.drain();
  EXPECT_EQ(s.response(id3).outcome, Outcome::kCompleted);
  EXPECT_EQ(s.decision_trace(),
            "reject id=2 tenant=a\n"
            "close reason=drain ids=[1] shed=[]\n"
            "close reason=drain ids=[3] shed=[]\n");
}

TEST(ServePolicy, MalformedRequestThrowsInsteadOfRejecting) {
  serve::Server s(small_config());
  serve::Request r;
  r.tenant = "a";
  r.params = serve::trace_params(ev(0, "a", 256, 4, SloClass::kThroughput), 1);
  r.x.resize(100);  // != params.n
  EXPECT_THROW(s.submit_at(0.0, std::move(r)), std::invalid_argument);
  EXPECT_EQ(s.stats().submitted, 0u);
}

// ---- determinism -------------------------------------------------------

TEST(ServeDeterminism, ReplayIsBitReproducible) {
  const Trace tr = scripted_trace(/*events=*/40, /*tenants=*/4,
                                  /*n=*/256, /*k=*/4, /*seed=*/99);
  ServerConfig cfg = small_config();
  cfg.devices = 2;
  cfg.max_batch = 4;
  cfg.tenant_queue_depth = 2;
  const auto a = run_trace(cfg, tr, 99);
  const auto b = run_trace(cfg, tr, 99);
  // Identical batch composition, shed/reject decisions, and modeled
  // per-request latencies — the schedule trace embeds all of them.
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.stats.completed, b.stats.completed);
  EXPECT_EQ(a.stats.shed, b.stats.shed);
  EXPECT_EQ(a.stats.rejected, b.stats.rejected);
  EXPECT_EQ(a.stats.batches, b.stats.batches);
  EXPECT_EQ(a.stats.sustained_qps, b.stats.sustained_qps);
  EXPECT_EQ(a.stats.latency.p99_ms, b.stats.latency.p99_ms);
  EXPECT_EQ(a.stats.throughput.p99_ms, b.stats.throughput.p99_ms);
  // The trace exercised more than the happy path.
  EXPECT_GT(a.stats.batches, 1u);
  EXPECT_GT(a.stats.completed, 0u);
}

TEST(ServeDeterminism, CannedTraceCoversAllThreeOutcomes) {
  ServerConfig cfg = small_config();
  cfg.tenant_queue_depth = 4;  // the bench's quota: charlie bursts overflow
  const Trace tr = serve::canned_trace(1 << 10, 16, /*seed=*/20160523);
  const auto r = run_trace(cfg, tr, 20160523);
  EXPECT_EQ(r.stats.submitted, tr.events.size());
  EXPECT_GT(r.stats.completed, 0u);
  EXPECT_GT(r.stats.shed, 0u);
  EXPECT_GT(r.stats.rejected, 0u);
  EXPECT_EQ(r.stats.completed + r.stats.shed + r.stats.rejected,
            r.stats.submitted);
}

TEST(ServeDeterminism, TraceTextRoundTrips) {
  const Trace tr = serve::canned_trace(1 << 10, 16, 7);
  const Trace back = Trace::parse(tr.to_text());
  ASSERT_EQ(back.events.size(), tr.events.size());
  EXPECT_EQ(back.to_text(), tr.to_text());
  EXPECT_THROW(Trace::parse("0.0,a,256,4,latency\n"), std::invalid_argument);
  EXPECT_THROW(Trace::parse("1.0,a,256,4,latency,inf\n"
                            "0.5,a,256,4,latency,inf\n"),
               std::invalid_argument);  // out-of-order arrivals
  EXPECT_THROW(Trace::parse("0.0,a,256,4,express,inf\n"),
               std::invalid_argument);  // unknown SLO class
}

// ---- throughput --------------------------------------------------------

TEST(ServeThroughput, BatchedBeatsPerRequestQps) {
  const Trace tr = serve::canned_trace(1 << 10, 16, /*seed=*/42);
  ServerConfig cfg = small_config();
  cfg.devices = 2;
  const auto batched = run_trace(cfg, tr, 42);
  ServerConfig single = cfg;
  single.max_batch = 1;
  single.max_wait_latency_ms = 0;
  single.max_wait_throughput_ms = 0;
  const auto solo = run_trace(single, tr, 42);
  EXPECT_GT(batched.stats.sustained_qps, solo.stats.sustained_qps);
  EXPECT_LT(batched.stats.batches, solo.stats.batches);
}

// ---- metrics -----------------------------------------------------------

TEST(ServeMetrics, PublishesConsistentMonotonicInstruments) {
  auto& reg = cusim::MetricsRegistry::global();
  reg.reset();
  ServerConfig cfg = small_config();
  cfg.tenant_queue_depth = 4;
  const Trace tr = serve::canned_trace(1 << 10, 16, 5);
  const auto r1 = run_trace(cfg, tr, 5);
  const std::string snap1 = reg.expose_json();
  const auto r2 = run_trace(cfg, tr, 5);
  r2.stats.to_metrics(reg);
  const std::string snap2 = reg.expose_json();

  const auto serve_ok = tools::check_serve_metrics(snap2);
  EXPECT_TRUE(serve_ok.ok) << (serve_ok.errors.empty()
                                   ? ""
                                   : serve_ok.errors.front());
  const auto mono = tools::check_metrics_monotonic(snap1, snap2);
  EXPECT_TRUE(mono.ok) << (mono.errors.empty() ? "" : mono.errors.front());
  // Gauges published by to_metrics.
  const auto snap = reg.snapshot();
  EXPECT_GT(snap.gauges.at("cusfft_serve_qps"), 0.0);
  EXPECT_GT(snap.gauges.at("cusfft_serve_queue_depth_max"), 0.0);
  // Counters reflect both drained replays.
  EXPECT_EQ(snap.counters.at("cusfft_serve_completed_total"),
            r1.stats.completed + r2.stats.completed);
}

// ---- threaded drive ----------------------------------------------------

TEST(ServeThreaded, SubmitWaitCompletesAndModesAreExclusive) {
  ServerConfig cfg = small_config();
  cfg.max_batch = 4;
  cfg.max_wait_latency_ms = 0.5;
  cfg.max_wait_throughput_ms = 2.0;
  serve::Server s(cfg);
  EXPECT_THROW(s.submit(serve::Request{}), std::logic_error);
  s.start();
  EXPECT_THROW(s.submit_at(0.0, serve::Request{}), std::logic_error);
  EXPECT_THROW(s.advance(1.0), std::logic_error);
  std::vector<u64> ids;
  for (int i = 0; i < 6; ++i) {
    serve::Request r;
    r.tenant = i % 2 ? "a" : "b";
    r.params = serve::trace_params(ev(0, "", 256, 4, SloClass::kThroughput), 9);
    r.x = serve::trace_signal(ev(0, "", 256, 4, SloClass::kThroughput), 9, i);
    ids.push_back(s.submit(std::move(r)));
  }
  for (u64 id : ids) {
    const serve::Response resp = s.wait(id);
    EXPECT_EQ(resp.outcome, Outcome::kCompleted);
    EXPECT_FALSE(resp.spectrum.empty());
  }
  s.stop();
  const auto st = s.stats();
  EXPECT_EQ(st.submitted, ids.size());
  EXPECT_EQ(st.completed + st.shed + st.rejected, st.submitted);
}

TEST(ServeThreaded, CancelResolvesPendingAsShed) {
  ServerConfig cfg = small_config();
  cfg.max_batch = 64;                      // size trigger unreachable
  cfg.max_wait_throughput_ms = 10'000.0;   // wait trigger far away
  serve::Server s(cfg);
  s.start();
  serve::Request r;
  r.tenant = "a";
  r.params = serve::trace_params(ev(0, "", 256, 4, SloClass::kThroughput), 9);
  r.x = serve::trace_signal(ev(0, "", 256, 4, SloClass::kThroughput), 9, 0);
  const u64 id = s.submit(std::move(r));
  const bool cancelled = s.cancel(id);
  const serve::Response resp = s.wait(id);
  // cancel() raced the batcher: its return value and the terminal outcome
  // must agree either way.
  EXPECT_EQ(resp.outcome, cancelled ? Outcome::kShed : Outcome::kCompleted);
  EXPECT_FALSE(s.cancel(id));  // already terminal
  s.stop();
}

// ---- soak (satellite: producers x tenants, conservation) ---------------

TEST(ServeSoak, ProducersNeverLoseOrDuplicateResponses) {
  // Short by default; CUSFFT_SOAK scales it up for a long run.
  const std::size_t per_thread =
      std::getenv("CUSFFT_SOAK") ? 5000u : 500u;
  constexpr std::size_t kThreads = 4;
  auto& reg = cusim::MetricsRegistry::global();
  reg.reset();
  const std::string snap_before = reg.expose_json();

  ServerConfig cfg = small_config();
  cfg.devices = 2;
  cfg.max_batch = 8;
  cfg.max_wait_latency_ms = 0.2;
  cfg.max_wait_throughput_ms = 1.0;
  cfg.tenant_queue_depth = 64;
  serve::Server s(cfg);
  s.start();

  std::vector<std::vector<u64>> ids(kThreads);
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(7000 + t);
      for (std::size_t i = 0; i < per_thread; ++i) {
        serve::Request r;
        r.tenant = "tenant" + std::to_string(rng.next_below(3));
        const std::size_t n = rng.next_below(2) ? 512 : 256;
        r.params = serve::trace_params(
            ev(0, "", n, 4, SloClass::kThroughput), 11);
        r.x = serve::trace_signal(ev(0, "", n, 4, SloClass::kThroughput), 11,
                                  t * per_thread + i);
        r.slo = rng.next_below(4) == 0 ? SloClass::kLatency
                                       : SloClass::kThroughput;
        ids[t].push_back(s.submit(std::move(r)));
      }
    });
  }
  for (auto& p : producers) p.join();
  s.stop();

  // Every id terminal exactly once, no duplicates across producers.
  std::set<u64> seen;
  for (const auto& batch : ids)
    for (u64 id : batch) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
      const serve::Response resp = s.response(id);
      EXPECT_NE(resp.outcome, Outcome::kPending) << "lost request " << id;
    }
  const auto st = s.stats();
  EXPECT_EQ(st.submitted, kThreads * per_thread);
  EXPECT_EQ(st.completed + st.shed + st.rejected, st.submitted);
  EXPECT_GT(st.completed, 0u);

  const auto mono =
      tools::check_metrics_monotonic(snap_before, reg.expose_json());
  EXPECT_TRUE(mono.ok) << (mono.errors.empty() ? "" : mono.errors.front());
}

}  // namespace
}  // namespace cusfft
