// GPS-style code acquisition (the application of the paper's reference
// [19], "Faster GPS via the sparse Fourier transform"): the receiver
// correlates the incoming signal against a satellite's PRN code; the
// correlation is computed spectrally and is *sparse in time* — one sharp
// peak at the code phase. The final inverse transform is therefore a
// sparse-FFT problem: we recover the peak with the sparse FFT instead of a
// full inverse FFT, using the conjugation identity
//   IFFT(y)[t] = conj( FFT( conj(y) ) )[t] / n.
//
//   ./gps_acquisition [log2_n] [true_phase]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/rng.hpp"
#include "fft/fft.hpp"
#include "sfft/serial.hpp"

using namespace cusfft;

int main(int argc, char** argv) {
  const std::size_t logn = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const std::size_t n = 1ULL << logn;
  Rng rng(1575);  // L1 band
  const std::size_t true_phase =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : rng.next_below(n);

  // PRN code: pseudo-random +-1 chips.
  cvec code(n);
  for (auto& c : code) c = cplx{rng.next_below(2) ? 1.0 : -1.0, 0.0};

  // Received signal: the code circularly delayed by the unknown phase,
  // attenuated, plus light noise.
  cvec rx(n);
  for (std::size_t t = 0; t < n; ++t) {
    rx[t] = 0.5 * code[(t + n - true_phase) % n] +
            cplx{0.002 * rng.next_normal(), 0.002 * rng.next_normal()};
  }

  // Spectral correlation: Y = FFT(rx) .* conj(FFT(code)).
  cvec Y = fft::fft(rx);
  const cvec C = fft::fft(code);
  for (std::size_t i = 0; i < n; ++i) Y[i] *= std::conj(C[i]);

  // The correlation IFFT(Y) has one dominant peak -> sparse inverse FFT.
  // Apply the conjugation identity so the forward sparse FFT recovers it.
  for (auto& v : Y) v = std::conj(v);
  sfft::Params p;
  p.n = n;
  p.k = 1;
  sfft::SerialPlan plan(p);
  WallTimer t;
  const SparseSpectrum peaks = plan.execute(Y);
  const double sparse_ms = t.ms();

  u64 best_loc = 0;
  double best_mag = -1.0;
  for (const auto& c : peaks) {
    const double mag = std::abs(c.val);
    if (mag > best_mag) {
      best_mag = mag;
      best_loc = c.loc;
    }
  }
  // Undo the conjugation (magnitude unaffected) and the 1/n.
  const double corr_peak = best_mag / static_cast<double>(n);

  // Cross-check against the dense inverse FFT.
  for (auto& v : Y) v = std::conj(v);  // restore
  WallTimer td;
  const cvec corr = fft::ifft(Y);
  const double dense_ms = td.ms();
  u64 dense_loc = 0;
  double dense_mag = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(corr[i]) > dense_mag) {
      dense_mag = std::abs(corr[i]);
      dense_loc = i;
    }
  }

  std::printf("n = 2^%zu, true code phase = %zu\n", logn, true_phase);
  std::printf("sparse acquisition:  phase %llu, peak %.3f (%.2f ms)\n",
              static_cast<unsigned long long>(best_loc), corr_peak,
              sparse_ms);
  std::printf("dense cross-check:   phase %llu, peak %.3f (%.2f ms)\n",
              static_cast<unsigned long long>(dense_loc), dense_mag,
              dense_ms);
  const bool ok = best_loc == true_phase && dense_loc == true_phase;
  std::printf("%s\n", ok ? "ACQUIRED" : "acquisition FAILED");
  return ok ? 0 : 1;
}
