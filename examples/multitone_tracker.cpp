// Multi-tone tracking: a stream of frames each carrying a few drifting
// tones (think instrument tuning or telemetry carriers). One PsfftPlan is
// planned once and reused across every frame — the plan/execute split that
// makes the sparse FFT practical in streaming settings.
//
//   ./multitone_tracker [log2_n] [tones] [frames]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "psfft/psfft.hpp"
#include "signal/generate.hpp"

using namespace cusfft;

int main(int argc, char** argv) {
  const std::size_t logn = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const std::size_t tones = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 6;
  const std::size_t frames =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 8;
  const std::size_t n = 1ULL << logn;

  sfft::Params params;
  params.n = n;
  params.k = tones;
  ThreadPool pool;
  psfft::PsfftPlan plan(params, pool);  // plan once ...

  Rng rng(31337);
  std::vector<u64> freqs(tones);
  for (auto& f : freqs) f = rng.next_below(n);

  std::printf("tracking %zu tones over %zu frames, n = 2^%zu\n\n", tones,
              frames, logn);
  double total_host_ms = 0;
  std::size_t tracked = 0;
  for (std::size_t frame = 0; frame < frames; ++frame) {
    // Tones drift a little every frame.
    SparseSpectrum truth;
    for (auto& f : freqs) {
      f = (f + rng.next_below(5)) % n;
      const double phase = rng.next_double() * kTwoPi;
      truth.push_back({f, cplx{std::cos(phase), std::sin(phase)}});
    }
    const cvec x = signal::synthesize(truth, n);

    psfft::CpuExecStats stats;
    const SparseSpectrum got = plan.execute(x, &stats);  // ... run per frame
    total_host_ms += stats.host_ms;

    std::printf("frame %zu:", frame);
    for (const auto& f : freqs) {
      bool found = false;
      for (const auto& c : got)
        if (c.loc == f && std::abs(c.val) > 0.5) found = true;
      std::printf(" %llu%s", static_cast<unsigned long long>(f),
                  found ? "" : "(missed)");
      if (found) ++tracked;
    }
    std::printf("\n");
  }
  std::printf("\ntracked %zu / %zu tone-frames, %.1f ms total on this "
              "host\n",
              tracked, tones * frames, total_host_ms);
  return tracked == tones * frames ? 0 : 1;
}
