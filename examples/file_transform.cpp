// File-based sparse transform: reads interleaved float64 (re, im) samples
// from a raw binary file (length must be a power of two), recovers the k
// largest Fourier coefficients, and writes them as CSV. With no input file
// it writes and processes a demo capture first, so it runs out of the box.
//
//   ./file_transform [input.bin] [k] [output.csv]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/modmath.hpp"
#include "core/rng.hpp"
#include "sfft/serial.hpp"
#include "signal/generate.hpp"

using namespace cusfft;

namespace {

bool read_samples(const std::string& path, cvec& out) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) return false;
  const auto bytes = static_cast<std::size_t>(f.tellg());
  if (bytes == 0 || bytes % sizeof(cplx) != 0) return false;
  out.resize(bytes / sizeof(cplx));
  f.seekg(0);
  f.read(reinterpret_cast<char*>(out.data()),
         static_cast<std::streamsize>(bytes));
  return static_cast<bool>(f);
}

void write_demo(const std::string& path, std::size_t n, std::size_t k) {
  Rng rng(19);
  const auto sig = signal::make_sparse_signal(n, k, rng);
  std::ofstream f(path, std::ios::binary);
  f.write(reinterpret_cast<const char*>(sig.x.data()),
          static_cast<std::streamsize>(sig.x.size() * sizeof(cplx)));
  std::printf("wrote demo capture (%zu samples, %zu tones) to %s\n", n, k,
              path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string input = argc > 1 ? argv[1] : "demo_capture.bin";
  const std::size_t k = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 16;
  const std::string output = argc > 3 ? argv[3] : "sparse_spectrum.csv";

  cvec x;
  if (!read_samples(input, x)) {
    if (argc > 1) {
      std::fprintf(stderr, "error: cannot read %s\n", input.c_str());
      return 1;
    }
    write_demo(input, 1 << 16, k);
    if (!read_samples(input, x)) return 1;
  }
  if (!is_pow2(x.size()) || x.size() < 16) {
    std::fprintf(stderr,
                 "error: need a power-of-two sample count >= 16, got %zu\n",
                 x.size());
    return 1;
  }

  sfft::Params p;
  p.n = x.size();
  p.k = k;
  sfft::SerialPlan plan(p);
  WallTimer t;
  const SparseSpectrum got = plan.execute(x);
  const double ms = t.ms();

  std::ofstream csv(output);
  csv << "location,frequency_fraction,re,im,magnitude\n";
  for (const auto& c : got) {
    csv << c.loc << ','
        << static_cast<double>(c.loc) / static_cast<double>(p.n) << ','
        << c.val.real() << ',' << c.val.imag() << ',' << std::abs(c.val)
        << '\n';
  }
  std::printf("%zu samples -> %zu coefficients in %.2f ms; wrote %s\n",
              x.size(), got.size(), ms, output.c_str());
  return 0;
}
