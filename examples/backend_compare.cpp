// Backend comparison: runs the same workload through every implementation
// in the repository — serial reference, multicore PsFFT, GPU cusFFT
// (baseline and optimized) — and checks them against the dense-FFT oracle.
// A compact tour of the whole public API.
//
//   ./backend_compare [log2_n] [k]
#include <cstdio>
#include <cstdlib>

#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "fft/fft.hpp"
#include "psfft/psfft.hpp"
#include "sfft/serial.hpp"
#include "signal/generate.hpp"

using namespace cusfft;

int main(int argc, char** argv) {
  const std::size_t logn = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 17;
  const std::size_t k = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 24;
  const std::size_t n = 1ULL << logn;

  Rng rng(90210);
  const auto sig = signal::make_sparse_signal(n, k, rng);
  const cvec oracle = densify(sig.truth, n);

  sfft::Params params;
  params.n = n;
  params.k = k;

  std::printf("n = 2^%zu, k = %zu\n\n", logn, k);
  std::printf("%-26s %10s %12s %12s %10s\n", "backend", "coeffs", "recall",
              "L1/coeff", "time(ms)");

  auto report = [&](const char* name, const SparseSpectrum& got,
                    double time_ms) {
    std::printf("%-26s %10zu %12.4f %12.3e %10.2f\n", name, got.size(),
                location_recall(got, oracle, k),
                l1_error_per_coeff(got, oracle, k), time_ms);
  };

  {
    sfft::SerialPlan plan(params);
    WallTimer t;
    const auto got = plan.execute(sig.x);
    report("serial sFFT (host ms)", got, t.ms());
  }
  {
    ThreadPool pool;
    psfft::PsfftPlan plan(params, pool);
    psfft::CpuExecStats stats;
    const auto got = plan.execute(sig.x, &stats);
    report("PsFFT (modeled E5-2640)", got, stats.model_ms);
  }
  {
    cusim::Device dev;
    gpu::GpuPlan plan(dev, params, gpu::Options::baseline());
    gpu::GpuExecStats stats;
    const auto got = plan.execute(sig.x, &stats);
    report("cusFFT base (modeled K20x)", got, stats.model_ms);
  }
  {
    cusim::Device dev;
    gpu::GpuPlan plan(dev, params, gpu::Options::optimized());
    gpu::GpuExecStats stats;
    const auto got = plan.execute(sig.x, &stats);
    report("cusFFT opt (modeled K20x)", got, stats.model_ms);
  }
  return 0;
}
