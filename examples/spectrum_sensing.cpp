// Spectrum sensing (cognitive radio — one of the paper's motivating
// applications): a wideband capture in which only a few channels carry
// transmissions. The sparse FFT finds the occupied channels without
// computing the full spectrum; we run it on the simulated GPU and report
// both the detection result and the modeled K20x timing.
//
//   ./spectrum_sensing [log2_n] [channels] [occupied]
#include <cstdio>
#include <cstdlib>
#include <set>

#include "core/rng.hpp"
#include "cusfft/plan.hpp"
#include "cusim/device.hpp"
#include "signal/generate.hpp"

using namespace cusfft;

int main(int argc, char** argv) {
  const std::size_t logn = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 18;
  const std::size_t channels =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64;
  const std::size_t occupied =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 5;
  const std::size_t n = 1ULL << logn;
  const std::size_t chan_width = n / channels;

  // Build the capture: each occupied channel carries a handful of tones.
  Rng rng(777);
  const std::size_t tones_per_channel = 4;
  SparseSpectrum truth;
  std::set<std::size_t> truth_channels;
  while (truth_channels.size() < occupied)
    truth_channels.insert(rng.next_below(channels));
  for (std::size_t ch : truth_channels) {
    for (std::size_t t = 0; t < tones_per_channel; ++t) {
      const u64 f = ch * chan_width + rng.next_below(chan_width);
      const double phase = rng.next_double() * kTwoPi;
      truth.push_back({f, cplx{std::cos(phase), std::sin(phase)}});
    }
  }
  const cvec x = signal::synthesize(truth, n);
  const std::size_t k = truth.size();

  // Sense with the GPU sparse FFT.
  sfft::Params params;
  params.n = n;
  params.k = k;
  cusim::Device dev;  // the simulated Tesla K20x
  gpu::GpuPlan plan(dev, params, gpu::Options::optimized());
  gpu::GpuExecStats stats;
  const SparseSpectrum got = plan.execute(x, &stats);

  // Aggregate recovered energy per channel.
  std::vector<double> energy(channels, 0.0);
  for (const auto& c : got)
    energy[static_cast<std::size_t>(c.loc) / chan_width] += std::norm(c.val);

  std::printf("wideband capture: n = 2^%zu, %zu channels, %zu occupied, "
              "k = %zu tones\n\n",
              logn, channels, occupied, k);
  std::printf("%8s %12s %10s %8s\n", "channel", "energy", "detected",
              "truth");
  std::size_t correct = 0;
  const double floor = 1e-6;
  for (std::size_t ch = 0; ch < channels; ++ch) {
    const bool det = energy[ch] > floor;
    const bool tru = truth_channels.count(ch) > 0;
    if (det == tru) ++correct;
    if (det || tru)
      std::printf("%8zu %12.4f %10s %8s\n", ch, energy[ch],
                  det ? "BUSY" : "idle", tru ? "BUSY" : "idle");
  }
  std::printf("\nchannel decisions correct: %zu / %zu\n", correct, channels);
  std::printf("modeled K20x time: %.3f ms  (functional sim on host: %.1f "
              "ms)\n",
              stats.model_ms, stats.host_ms);
  std::printf("candidate coefficients examined: %zu\n", stats.candidates);
  return correct == channels ? 0 : 1;
}
