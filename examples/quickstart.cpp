// Quickstart: recover the k dominant Fourier coefficients of a signal with
// the serial sparse FFT — the smallest end-to-end use of the library.
//
//   ./quickstart [log2_n] [k]
#include <cstdio>
#include <cstdlib>

#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "sfft/serial.hpp"
#include "signal/generate.hpp"

using namespace cusfft;

int main(int argc, char** argv) {
  const std::size_t logn = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const std::size_t k = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 12;
  const std::size_t n = 1ULL << logn;

  // 1. A test signal whose spectrum has exactly k large coefficients.
  Rng rng(2016);
  const signal::SparseSignal sig = signal::make_sparse_signal(n, k, rng);

  // 2. Plan once (builds the flat filter and the B-point FFT plan) ...
  sfft::Params params;
  params.n = n;
  params.k = k;
  sfft::SerialPlan plan(params);
  std::printf("n = 2^%zu, k = %zu, buckets B = %zu, filter taps = %zu\n",
              logn, k, plan.buckets(), plan.filter().time.size());

  // 3. ... execute many times.
  StepTimers timers;
  const SparseSpectrum got = plan.execute(sig.x, &timers);

  // 4. Inspect the result.
  std::printf("\nrecovered %zu coefficients (planted %zu):\n", got.size(),
              k);
  std::printf("%12s %14s %14s\n", "location", "re", "im");
  for (const auto& c : got)
    std::printf("%12llu %14.6f %14.6f\n",
                static_cast<unsigned long long>(c.loc), c.val.real(),
                c.val.imag());

  const cvec oracle = densify(sig.truth, n);
  std::printf("\nlocation recall:  %.3f\n", location_recall(got, oracle, k));
  std::printf("L1 error / coeff: %.3e\n", l1_error_per_coeff(got, oracle, k));
  std::printf("\nper-step wall time (ms):\n");
  for (const auto& [step, ms] : timers.all())
    std::printf("  %-22s %8.3f\n", step.c_str(), ms);
  return 0;
}
