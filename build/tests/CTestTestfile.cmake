# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_signal[1]_include.cmake")
include("/root/repo/build/tests/test_sfft[1]_include.cmake")
include("/root/repo/build/tests/test_perfmodel[1]_include.cmake")
include("/root/repo/build/tests/test_cusim[1]_include.cmake")
include("/root/repo/build/tests/test_custhrust[1]_include.cmake")
include("/root/repo/build/tests/test_cufftsim[1]_include.cmake")
include("/root/repo/build/tests/test_cusfft[1]_include.cmake")
include("/root/repo/build/tests/test_psfft[1]_include.cmake")
include("/root/repo/build/tests/test_comb[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_capi[1]_include.cmake")
include("/root/repo/build/tests/test_model_golden[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_benchopts[1]_include.cmake")
