# Empty dependencies file for test_benchopts.
# This may be replaced when dependencies are built.
