file(REMOVE_RECURSE
  "CMakeFiles/test_benchopts.dir/test_benchopts.cpp.o"
  "CMakeFiles/test_benchopts.dir/test_benchopts.cpp.o.d"
  "test_benchopts"
  "test_benchopts.pdb"
  "test_benchopts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchopts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
