# Empty dependencies file for test_sfft.
# This may be replaced when dependencies are built.
