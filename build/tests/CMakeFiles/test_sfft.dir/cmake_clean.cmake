file(REMOVE_RECURSE
  "CMakeFiles/test_sfft.dir/test_sfft.cpp.o"
  "CMakeFiles/test_sfft.dir/test_sfft.cpp.o.d"
  "test_sfft"
  "test_sfft.pdb"
  "test_sfft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
