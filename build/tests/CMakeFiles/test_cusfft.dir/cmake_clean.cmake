file(REMOVE_RECURSE
  "CMakeFiles/test_cusfft.dir/test_cusfft.cpp.o"
  "CMakeFiles/test_cusfft.dir/test_cusfft.cpp.o.d"
  "test_cusfft"
  "test_cusfft.pdb"
  "test_cusfft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cusfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
