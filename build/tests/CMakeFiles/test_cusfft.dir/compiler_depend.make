# Empty compiler generated dependencies file for test_cusfft.
# This may be replaced when dependencies are built.
