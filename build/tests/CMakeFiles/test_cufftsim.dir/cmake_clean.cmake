file(REMOVE_RECURSE
  "CMakeFiles/test_cufftsim.dir/test_cufftsim.cpp.o"
  "CMakeFiles/test_cufftsim.dir/test_cufftsim.cpp.o.d"
  "test_cufftsim"
  "test_cufftsim.pdb"
  "test_cufftsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cufftsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
