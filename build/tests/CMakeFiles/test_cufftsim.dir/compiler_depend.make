# Empty compiler generated dependencies file for test_cufftsim.
# This may be replaced when dependencies are built.
