# Empty compiler generated dependencies file for test_psfft.
# This may be replaced when dependencies are built.
