file(REMOVE_RECURSE
  "CMakeFiles/test_psfft.dir/test_psfft.cpp.o"
  "CMakeFiles/test_psfft.dir/test_psfft.cpp.o.d"
  "test_psfft"
  "test_psfft.pdb"
  "test_psfft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_psfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
