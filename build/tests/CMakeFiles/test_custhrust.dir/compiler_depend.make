# Empty compiler generated dependencies file for test_custhrust.
# This may be replaced when dependencies are built.
