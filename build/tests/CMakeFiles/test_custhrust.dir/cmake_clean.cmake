file(REMOVE_RECURSE
  "CMakeFiles/test_custhrust.dir/test_custhrust.cpp.o"
  "CMakeFiles/test_custhrust.dir/test_custhrust.cpp.o.d"
  "test_custhrust"
  "test_custhrust.pdb"
  "test_custhrust[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_custhrust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
