file(REMOVE_RECURSE
  "CMakeFiles/test_comb.dir/test_comb.cpp.o"
  "CMakeFiles/test_comb.dir/test_comb.cpp.o.d"
  "test_comb"
  "test_comb.pdb"
  "test_comb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
