# Empty dependencies file for test_comb.
# This may be replaced when dependencies are built.
