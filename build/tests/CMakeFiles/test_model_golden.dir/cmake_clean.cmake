file(REMOVE_RECURSE
  "CMakeFiles/test_model_golden.dir/test_model_golden.cpp.o"
  "CMakeFiles/test_model_golden.dir/test_model_golden.cpp.o.d"
  "test_model_golden"
  "test_model_golden.pdb"
  "test_model_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
