# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "13" "6")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spectrum_sensing "/root/repo/build/examples/spectrum_sensing" "14" "16" "3")
set_tests_properties(example_spectrum_sensing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multitone_tracker "/root/repo/build/examples/multitone_tracker" "13" "3" "3")
set_tests_properties(example_multitone_tracker PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_backend_compare "/root/repo/build/examples/backend_compare" "13" "6")
set_tests_properties(example_backend_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gps_acquisition "/root/repo/build/examples/gps_acquisition" "14" "1234")
set_tests_properties(example_gps_acquisition PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_file_transform "/root/repo/build/examples/file_transform")
set_tests_properties(example_file_transform PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
