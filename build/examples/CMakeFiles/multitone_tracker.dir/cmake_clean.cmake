file(REMOVE_RECURSE
  "CMakeFiles/multitone_tracker.dir/multitone_tracker.cpp.o"
  "CMakeFiles/multitone_tracker.dir/multitone_tracker.cpp.o.d"
  "multitone_tracker"
  "multitone_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multitone_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
