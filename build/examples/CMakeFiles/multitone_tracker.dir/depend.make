# Empty dependencies file for multitone_tracker.
# This may be replaced when dependencies are built.
