file(REMOVE_RECURSE
  "CMakeFiles/file_transform.dir/file_transform.cpp.o"
  "CMakeFiles/file_transform.dir/file_transform.cpp.o.d"
  "file_transform"
  "file_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
