# Empty compiler generated dependencies file for file_transform.
# This may be replaced when dependencies are built.
