file(REMOVE_RECURSE
  "CMakeFiles/gps_acquisition.dir/gps_acquisition.cpp.o"
  "CMakeFiles/gps_acquisition.dir/gps_acquisition.cpp.o.d"
  "gps_acquisition"
  "gps_acquisition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gps_acquisition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
