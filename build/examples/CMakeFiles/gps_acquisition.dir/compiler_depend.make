# Empty compiler generated dependencies file for gps_acquisition.
# This may be replaced when dependencies are built.
