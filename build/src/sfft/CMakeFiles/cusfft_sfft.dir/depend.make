# Empty dependencies file for cusfft_sfft.
# This may be replaced when dependencies are built.
