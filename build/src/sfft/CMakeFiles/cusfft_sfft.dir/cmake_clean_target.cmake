file(REMOVE_RECURSE
  "libcusfft_sfft.a"
)
