file(REMOVE_RECURSE
  "CMakeFiles/cusfft_sfft.dir/comb.cpp.o"
  "CMakeFiles/cusfft_sfft.dir/comb.cpp.o.d"
  "CMakeFiles/cusfft_sfft.dir/inverse.cpp.o"
  "CMakeFiles/cusfft_sfft.dir/inverse.cpp.o.d"
  "CMakeFiles/cusfft_sfft.dir/params.cpp.o"
  "CMakeFiles/cusfft_sfft.dir/params.cpp.o.d"
  "CMakeFiles/cusfft_sfft.dir/serial.cpp.o"
  "CMakeFiles/cusfft_sfft.dir/serial.cpp.o.d"
  "CMakeFiles/cusfft_sfft.dir/steps.cpp.o"
  "CMakeFiles/cusfft_sfft.dir/steps.cpp.o.d"
  "libcusfft_sfft.a"
  "libcusfft_sfft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusfft_sfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
