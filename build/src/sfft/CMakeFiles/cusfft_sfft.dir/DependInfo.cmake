
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfft/comb.cpp" "src/sfft/CMakeFiles/cusfft_sfft.dir/comb.cpp.o" "gcc" "src/sfft/CMakeFiles/cusfft_sfft.dir/comb.cpp.o.d"
  "/root/repo/src/sfft/inverse.cpp" "src/sfft/CMakeFiles/cusfft_sfft.dir/inverse.cpp.o" "gcc" "src/sfft/CMakeFiles/cusfft_sfft.dir/inverse.cpp.o.d"
  "/root/repo/src/sfft/params.cpp" "src/sfft/CMakeFiles/cusfft_sfft.dir/params.cpp.o" "gcc" "src/sfft/CMakeFiles/cusfft_sfft.dir/params.cpp.o.d"
  "/root/repo/src/sfft/serial.cpp" "src/sfft/CMakeFiles/cusfft_sfft.dir/serial.cpp.o" "gcc" "src/sfft/CMakeFiles/cusfft_sfft.dir/serial.cpp.o.d"
  "/root/repo/src/sfft/steps.cpp" "src/sfft/CMakeFiles/cusfft_sfft.dir/steps.cpp.o" "gcc" "src/sfft/CMakeFiles/cusfft_sfft.dir/steps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cusfft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/cusfft_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/cusfft_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
