# Empty dependencies file for cusfft_perfmodel.
# This may be replaced when dependencies are built.
