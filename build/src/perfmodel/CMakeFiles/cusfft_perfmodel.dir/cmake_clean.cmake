file(REMOVE_RECURSE
  "CMakeFiles/cusfft_perfmodel.dir/cpu_model.cpp.o"
  "CMakeFiles/cusfft_perfmodel.dir/cpu_model.cpp.o.d"
  "CMakeFiles/cusfft_perfmodel.dir/gpu_model.cpp.o"
  "CMakeFiles/cusfft_perfmodel.dir/gpu_model.cpp.o.d"
  "libcusfft_perfmodel.a"
  "libcusfft_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusfft_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
