file(REMOVE_RECURSE
  "libcusfft_perfmodel.a"
)
