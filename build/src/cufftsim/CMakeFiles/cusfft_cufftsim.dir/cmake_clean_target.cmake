file(REMOVE_RECURSE
  "libcusfft_cufftsim.a"
)
