# Empty dependencies file for cusfft_cufftsim.
# This may be replaced when dependencies are built.
