file(REMOVE_RECURSE
  "CMakeFiles/cusfft_cufftsim.dir/cufftsim.cpp.o"
  "CMakeFiles/cusfft_cufftsim.dir/cufftsim.cpp.o.d"
  "libcusfft_cufftsim.a"
  "libcusfft_cufftsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusfft_cufftsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
