file(REMOVE_RECURSE
  "libcusfft_psfft.a"
)
