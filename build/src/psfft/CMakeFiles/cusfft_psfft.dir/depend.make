# Empty dependencies file for cusfft_psfft.
# This may be replaced when dependencies are built.
