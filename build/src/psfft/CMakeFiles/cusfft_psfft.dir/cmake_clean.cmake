file(REMOVE_RECURSE
  "CMakeFiles/cusfft_psfft.dir/fftw_baseline.cpp.o"
  "CMakeFiles/cusfft_psfft.dir/fftw_baseline.cpp.o.d"
  "CMakeFiles/cusfft_psfft.dir/psfft.cpp.o"
  "CMakeFiles/cusfft_psfft.dir/psfft.cpp.o.d"
  "libcusfft_psfft.a"
  "libcusfft_psfft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusfft_psfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
