file(REMOVE_RECURSE
  "libcusfft_core.a"
)
