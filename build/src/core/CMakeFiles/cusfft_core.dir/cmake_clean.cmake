file(REMOVE_RECURSE
  "CMakeFiles/cusfft_core.dir/metrics.cpp.o"
  "CMakeFiles/cusfft_core.dir/metrics.cpp.o.d"
  "CMakeFiles/cusfft_core.dir/modmath.cpp.o"
  "CMakeFiles/cusfft_core.dir/modmath.cpp.o.d"
  "CMakeFiles/cusfft_core.dir/spectrum.cpp.o"
  "CMakeFiles/cusfft_core.dir/spectrum.cpp.o.d"
  "CMakeFiles/cusfft_core.dir/table.cpp.o"
  "CMakeFiles/cusfft_core.dir/table.cpp.o.d"
  "CMakeFiles/cusfft_core.dir/thread_pool.cpp.o"
  "CMakeFiles/cusfft_core.dir/thread_pool.cpp.o.d"
  "libcusfft_core.a"
  "libcusfft_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusfft_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
