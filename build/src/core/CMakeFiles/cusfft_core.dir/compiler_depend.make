# Empty compiler generated dependencies file for cusfft_core.
# This may be replaced when dependencies are built.
