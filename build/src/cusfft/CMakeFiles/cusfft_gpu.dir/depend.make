# Empty dependencies file for cusfft_gpu.
# This may be replaced when dependencies are built.
