file(REMOVE_RECURSE
  "CMakeFiles/cusfft_gpu.dir/plan.cpp.o"
  "CMakeFiles/cusfft_gpu.dir/plan.cpp.o.d"
  "libcusfft_gpu.a"
  "libcusfft_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusfft_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
