file(REMOVE_RECURSE
  "libcusfft_gpu.a"
)
