
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/custhrust/reduce.cpp" "src/custhrust/CMakeFiles/cusfft_custhrust.dir/reduce.cpp.o" "gcc" "src/custhrust/CMakeFiles/cusfft_custhrust.dir/reduce.cpp.o.d"
  "/root/repo/src/custhrust/scan.cpp" "src/custhrust/CMakeFiles/cusfft_custhrust.dir/scan.cpp.o" "gcc" "src/custhrust/CMakeFiles/cusfft_custhrust.dir/scan.cpp.o.d"
  "/root/repo/src/custhrust/select.cpp" "src/custhrust/CMakeFiles/cusfft_custhrust.dir/select.cpp.o" "gcc" "src/custhrust/CMakeFiles/cusfft_custhrust.dir/select.cpp.o.d"
  "/root/repo/src/custhrust/sort.cpp" "src/custhrust/CMakeFiles/cusfft_custhrust.dir/sort.cpp.o" "gcc" "src/custhrust/CMakeFiles/cusfft_custhrust.dir/sort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cusim/CMakeFiles/cusfft_cusim.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/cusfft_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cusfft_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
