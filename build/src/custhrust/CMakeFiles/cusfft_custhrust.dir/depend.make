# Empty dependencies file for cusfft_custhrust.
# This may be replaced when dependencies are built.
