file(REMOVE_RECURSE
  "libcusfft_custhrust.a"
)
