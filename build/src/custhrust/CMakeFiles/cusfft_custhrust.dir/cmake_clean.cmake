file(REMOVE_RECURSE
  "CMakeFiles/cusfft_custhrust.dir/reduce.cpp.o"
  "CMakeFiles/cusfft_custhrust.dir/reduce.cpp.o.d"
  "CMakeFiles/cusfft_custhrust.dir/scan.cpp.o"
  "CMakeFiles/cusfft_custhrust.dir/scan.cpp.o.d"
  "CMakeFiles/cusfft_custhrust.dir/select.cpp.o"
  "CMakeFiles/cusfft_custhrust.dir/select.cpp.o.d"
  "CMakeFiles/cusfft_custhrust.dir/sort.cpp.o"
  "CMakeFiles/cusfft_custhrust.dir/sort.cpp.o.d"
  "libcusfft_custhrust.a"
  "libcusfft_custhrust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusfft_custhrust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
