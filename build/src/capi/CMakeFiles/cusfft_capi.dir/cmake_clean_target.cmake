file(REMOVE_RECURSE
  "libcusfft_capi.a"
)
