file(REMOVE_RECURSE
  "CMakeFiles/cusfft_capi.dir/cusfft_c.cpp.o"
  "CMakeFiles/cusfft_capi.dir/cusfft_c.cpp.o.d"
  "libcusfft_capi.a"
  "libcusfft_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusfft_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
