# Empty dependencies file for cusfft_capi.
# This may be replaced when dependencies are built.
