file(REMOVE_RECURSE
  "CMakeFiles/cusfft_fft.dir/dft.cpp.o"
  "CMakeFiles/cusfft_fft.dir/dft.cpp.o.d"
  "CMakeFiles/cusfft_fft.dir/fft.cpp.o"
  "CMakeFiles/cusfft_fft.dir/fft.cpp.o.d"
  "libcusfft_fft.a"
  "libcusfft_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusfft_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
