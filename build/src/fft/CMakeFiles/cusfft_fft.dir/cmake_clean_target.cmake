file(REMOVE_RECURSE
  "libcusfft_fft.a"
)
