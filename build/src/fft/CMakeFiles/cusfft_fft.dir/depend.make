# Empty dependencies file for cusfft_fft.
# This may be replaced when dependencies are built.
