file(REMOVE_RECURSE
  "CMakeFiles/cusfft_cusim.dir/device.cpp.o"
  "CMakeFiles/cusfft_cusim.dir/device.cpp.o.d"
  "CMakeFiles/cusfft_cusim.dir/report.cpp.o"
  "CMakeFiles/cusfft_cusim.dir/report.cpp.o.d"
  "CMakeFiles/cusfft_cusim.dir/timeline.cpp.o"
  "CMakeFiles/cusfft_cusim.dir/timeline.cpp.o.d"
  "CMakeFiles/cusfft_cusim.dir/trace.cpp.o"
  "CMakeFiles/cusfft_cusim.dir/trace.cpp.o.d"
  "libcusfft_cusim.a"
  "libcusfft_cusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusfft_cusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
