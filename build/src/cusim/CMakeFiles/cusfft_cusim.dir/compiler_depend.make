# Empty compiler generated dependencies file for cusfft_cusim.
# This may be replaced when dependencies are built.
