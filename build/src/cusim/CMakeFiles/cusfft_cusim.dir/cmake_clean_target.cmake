file(REMOVE_RECURSE
  "libcusfft_cusim.a"
)
