
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cusim/device.cpp" "src/cusim/CMakeFiles/cusfft_cusim.dir/device.cpp.o" "gcc" "src/cusim/CMakeFiles/cusfft_cusim.dir/device.cpp.o.d"
  "/root/repo/src/cusim/report.cpp" "src/cusim/CMakeFiles/cusfft_cusim.dir/report.cpp.o" "gcc" "src/cusim/CMakeFiles/cusfft_cusim.dir/report.cpp.o.d"
  "/root/repo/src/cusim/timeline.cpp" "src/cusim/CMakeFiles/cusfft_cusim.dir/timeline.cpp.o" "gcc" "src/cusim/CMakeFiles/cusfft_cusim.dir/timeline.cpp.o.d"
  "/root/repo/src/cusim/trace.cpp" "src/cusim/CMakeFiles/cusfft_cusim.dir/trace.cpp.o" "gcc" "src/cusim/CMakeFiles/cusfft_cusim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cusfft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/cusfft_perfmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
