file(REMOVE_RECURSE
  "libcusfft_signal.a"
)
