file(REMOVE_RECURSE
  "CMakeFiles/cusfft_signal.dir/filter.cpp.o"
  "CMakeFiles/cusfft_signal.dir/filter.cpp.o.d"
  "CMakeFiles/cusfft_signal.dir/generate.cpp.o"
  "CMakeFiles/cusfft_signal.dir/generate.cpp.o.d"
  "CMakeFiles/cusfft_signal.dir/window.cpp.o"
  "CMakeFiles/cusfft_signal.dir/window.cpp.o.d"
  "libcusfft_signal.a"
  "libcusfft_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusfft_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
