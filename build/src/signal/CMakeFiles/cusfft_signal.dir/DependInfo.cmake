
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/filter.cpp" "src/signal/CMakeFiles/cusfft_signal.dir/filter.cpp.o" "gcc" "src/signal/CMakeFiles/cusfft_signal.dir/filter.cpp.o.d"
  "/root/repo/src/signal/generate.cpp" "src/signal/CMakeFiles/cusfft_signal.dir/generate.cpp.o" "gcc" "src/signal/CMakeFiles/cusfft_signal.dir/generate.cpp.o.d"
  "/root/repo/src/signal/window.cpp" "src/signal/CMakeFiles/cusfft_signal.dir/window.cpp.o" "gcc" "src/signal/CMakeFiles/cusfft_signal.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cusfft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/cusfft_fft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
