# Empty dependencies file for cusfft_signal.
# This may be replaced when dependencies are built.
