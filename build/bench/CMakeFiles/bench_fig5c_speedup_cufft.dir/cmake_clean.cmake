file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5c_speedup_cufft.dir/bench_fig5c_speedup_cufft.cpp.o"
  "CMakeFiles/bench_fig5c_speedup_cufft.dir/bench_fig5c_speedup_cufft.cpp.o.d"
  "bench_fig5c_speedup_cufft"
  "bench_fig5c_speedup_cufft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_speedup_cufft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
