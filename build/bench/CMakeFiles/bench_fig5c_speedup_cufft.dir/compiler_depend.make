# Empty compiler generated dependencies file for bench_fig5c_speedup_cufft.
# This may be replaced when dependencies are built.
