# Empty dependencies file for bench_gpu_profile.
# This may be replaced when dependencies are built.
