file(REMOVE_RECURSE
  "CMakeFiles/bench_gpu_profile.dir/bench_gpu_profile.cpp.o"
  "CMakeFiles/bench_gpu_profile.dir/bench_gpu_profile.cpp.o.d"
  "bench_gpu_profile"
  "bench_gpu_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gpu_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
