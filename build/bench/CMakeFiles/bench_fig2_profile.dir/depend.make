# Empty dependencies file for bench_fig2_profile.
# This may be replaced when dependencies are built.
