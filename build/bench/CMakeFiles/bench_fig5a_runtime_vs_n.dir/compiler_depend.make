# Empty compiler generated dependencies file for bench_fig5a_runtime_vs_n.
# This may be replaced when dependencies are built.
