# Empty dependencies file for bench_fig5f_accuracy.
# This may be replaced when dependencies are built.
