file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5e_speedup_psfft.dir/bench_fig5e_speedup_psfft.cpp.o"
  "CMakeFiles/bench_fig5e_speedup_psfft.dir/bench_fig5e_speedup_psfft.cpp.o.d"
  "bench_fig5e_speedup_psfft"
  "bench_fig5e_speedup_psfft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5e_speedup_psfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
