# Empty compiler generated dependencies file for bench_fig5e_speedup_psfft.
# This may be replaced when dependencies are built.
