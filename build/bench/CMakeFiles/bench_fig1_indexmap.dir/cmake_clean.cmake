file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_indexmap.dir/bench_fig1_indexmap.cpp.o"
  "CMakeFiles/bench_fig1_indexmap.dir/bench_fig1_indexmap.cpp.o.d"
  "bench_fig1_indexmap"
  "bench_fig1_indexmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_indexmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
