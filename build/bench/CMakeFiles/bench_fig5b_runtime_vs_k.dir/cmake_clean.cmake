file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_runtime_vs_k.dir/bench_fig5b_runtime_vs_k.cpp.o"
  "CMakeFiles/bench_fig5b_runtime_vs_k.dir/bench_fig5b_runtime_vs_k.cpp.o.d"
  "bench_fig5b_runtime_vs_k"
  "bench_fig5b_runtime_vs_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_runtime_vs_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
