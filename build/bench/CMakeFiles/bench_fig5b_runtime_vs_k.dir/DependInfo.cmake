
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5b_runtime_vs_k.cpp" "bench/CMakeFiles/bench_fig5b_runtime_vs_k.dir/bench_fig5b_runtime_vs_k.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5b_runtime_vs_k.dir/bench_fig5b_runtime_vs_k.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cusfft/CMakeFiles/cusfft_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/custhrust/CMakeFiles/cusfft_custhrust.dir/DependInfo.cmake"
  "/root/repo/build/src/psfft/CMakeFiles/cusfft_psfft.dir/DependInfo.cmake"
  "/root/repo/build/src/cufftsim/CMakeFiles/cusfft_cufftsim.dir/DependInfo.cmake"
  "/root/repo/build/src/cusim/CMakeFiles/cusfft_cusim.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/cusfft_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sfft/CMakeFiles/cusfft_sfft.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/cusfft_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/cusfft_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cusfft_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
