# Empty dependencies file for bench_fig5d_speedup_fftw.
# This may be replaced when dependencies are built.
