file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5d_speedup_fftw.dir/bench_fig5d_speedup_fftw.cpp.o"
  "CMakeFiles/bench_fig5d_speedup_fftw.dir/bench_fig5d_speedup_fftw.cpp.o.d"
  "bench_fig5d_speedup_fftw"
  "bench_fig5d_speedup_fftw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5d_speedup_fftw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
