// The serial sparse FFT (paper Section III; MIT SODA'12 sFFT 1.0 style).
// This is the reference implementation every parallel backend is tested
// against, and the subject of the Figure 2 per-step profile.
#pragma once

#include <memory>
#include <span>

#include "core/timer.hpp"
#include "core/types.hpp"
#include "fft/fft.hpp"
#include "sfft/params.hpp"
#include "sfft/steps.hpp"
#include "signal/filter.hpp"

namespace cusfft::sfft {

/// StepTimers keys used by every backend — one per paper step group, the
/// exact breakdown Figure 2 plots.
namespace step {
inline constexpr const char* kComb = "0 comb prefilter";
inline constexpr const char* kPermFilter = "1-2 perm+filter";
inline constexpr const char* kSubFft = "3 subsampled fft";
inline constexpr const char* kCutoff = "4 cutoff";
inline constexpr const char* kLocRecover = "5 reverse hash";
inline constexpr const char* kEstimate = "6 estimate";
}  // namespace step

class SerialPlan {
 public:
  /// Builds the flat filter and the B-point FFT plan. O(n log n) once.
  explicit SerialPlan(Params p);

  const Params& params() const { return p_; }
  std::size_t buckets() const { return B_; }
  const signal::FlatFilter& filter() const { return *filter_; }

  /// Runs the full algorithm on x (length n). Deterministic for a fixed
  /// Params::seed. Optionally accumulates per-step wall time into `timers`.
  SparseSpectrum execute(std::span<const cplx> x,
                         StepTimers* timers = nullptr) const;

 private:
  Params p_;
  std::size_t B_ = 0;
  std::shared_ptr<const signal::FlatFilter> filter_;
  fft::Plan bfft_;
};

}  // namespace cusfft::sfft
