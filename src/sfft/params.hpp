// Shared parameter derivation for every sparse-FFT implementation in the
// repo (serial, PsFFT, cusFFT). Keeping it in one place guarantees the CPU
// and GPU algorithms run identical configurations, so the paper's
// cross-implementation speedup comparisons are apples-to-apples.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "core/types.hpp"
#include "signal/filter.hpp"

namespace cusfft::sfft {

/// Which sparse-FFT backend a plan runs. kCusfft is the paper's
/// bucket-hashing sFFT (the default); kFfast is the FFAST-style
/// aliasing/peeling backend (sfft/ffast.hpp), which wins at low k; kAuto
/// defers the choice to the crossover picker (cusfft/autopick.hpp) and is
/// resolved per signal inside MultiGpuPlan::execute_mixed — GpuPlan itself
/// only accepts a resolved algorithm.
enum class Algorithm { kCusfft = 0, kFfast = 1, kAuto = 2 };

/// Stable lowercase name ("cusfft" / "ffast" / "auto") — the spelling used
/// by CUSFFT_ALGO, --algo, metrics labels, and crossover.csv.
const char* to_string(Algorithm a);

/// Inverse of to_string; nullopt for anything else (callers own the
/// error convention: usage-exit in the benches, typed throw in the
/// library, CUSFFT_INVALID_ARGUMENT in the C API).
std::optional<Algorithm> parse_algorithm(std::string_view name);

struct Params {
  std::size_t n = 0;  // signal size, power of two
  std::size_t k = 0;  // target sparsity (number of large coefficients)

  /// Bucket constant: B = pow2(round(bcst * sqrt(n*k / log2 n))) — the
  /// paper's B = O(sqrt(nk/log n)) with a tunable constant.
  double bcst = 4.0;

  /// Number of location loops L (steps 1-5 repeat L times; Section III).
  std::size_t loops_loc = 6;

  /// Additional estimation-only loops; their buckets join the median in
  /// step 6 but cast no location votes. Total loops = loops_loc + loops_est.
  std::size_t loops_est = 8;

  /// Votes required before a location is accepted (0 = derive as
  /// max(2, loops_loc/2 + 1), the paper's "at least twice / majority" rule).
  std::size_t loc_threshold = 0;

  /// Location loops keep the d*k largest buckets ("slightly more than k" —
  /// Section V.B); d = cutoff_mult.
  double cutoff_mult = 2.0;

  signal::FlatFilterParams filter;

  /// sFFT 2.0 mode: run the Comb aliasing prefilter and let the location
  /// loops vote only on frequencies whose residue (mod comb width) was
  /// approved (see sfft/comb.hpp). Off = plain sFFT 1.0 (the paper's
  /// Algorithms 1-6).
  bool comb = false;
  double comb_cst = 8.0;        // aliasing width W = next_pow2(comb_cst * k)
  std::size_t comb_rounds = 2;  // independent tau rounds unioned
  double comb_keep_mult = 2.0;  // approve keep = mult*k bins per round

  u64 seed = 0xC0FFEE;  // seeds the per-execution permutation draws

  /// Backend selection. Part of every plan-cache shape key: two configs
  /// that differ only here must never share a plan.
  Algorithm algo = Algorithm::kCusfft;

  /// FFAST backend: number of aliasing stages d (geometric bin-doubling
  /// chain F, 2F, 4F, ...; see sfft/ffast.hpp).
  std::size_t ffast_stages = 3;

  /// FFAST backend: per-stage bin constant — each stage subsamples to
  /// F = next_pow2(ffast_bin_mult * k) bins, clamped to [8, n].
  double ffast_bin_mult = 4.0;

  /// Derived bucket count B (power of two, clamped to [4, n]).
  std::size_t buckets() const;

  /// Derived vote threshold.
  std::size_t threshold() const;

  /// Derived per-loop cutoff count, clamped to [1, B].
  std::size_t cutoff() const;

  std::size_t total_loops() const { return loops_loc + loops_est; }

  /// Derived comb aliasing width (0 when comb mode is off).
  std::size_t comb_w() const;

  /// Bins approved per comb round.
  std::size_t comb_keep() const;

  /// Derived FFAST per-stage bin count F (power of two in [8, n]).
  std::size_t ffast_bins() const;

  /// Throws std::invalid_argument unless the configuration is usable.
  void validate() const;
};

/// Permutation parameters of one inner loop: time-domain stride `ai`
/// (Algorithm 1), its modular inverse `a` (the frequency-domain stride used
/// by Algorithms 4-5), and the offset tau.
struct LoopPerm {
  u64 ai = 1;
  u64 a = 1;
  u64 tau = 0;
};

}  // namespace cusfft::sfft
