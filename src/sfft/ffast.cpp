#include "sfft/ffast.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/modmath.hpp"

namespace cusfft::sfft {

std::vector<FfastStage> ffast_stage_chain(std::size_t n,
                                          std::size_t base_bins,
                                          std::size_t stages) {
  std::vector<FfastStage> out;
  std::size_t offset = 0;
  for (std::size_t s = 0; s < stages; ++s) {
    const std::size_t bins =
        std::min<std::size_t>(n, base_bins << std::min<std::size_t>(s, 62));
    // Once the doubling chain hits n, further stages would be copies of
    // the same full-resolution FFT — drop them.
    if (!out.empty() && out.back().bins == bins) break;
    out.push_back({bins, offset});
    offset += kFfastShifts * bins;
  }
  return out;
}

namespace {

struct Exponential {
  u64 freq = 0;
  cplx amp{0.0, 0.0};  // bucket-plane amplitude (F_s/n scaling included)
};

/// Solves the T x T complex linear system a * x = b in place by Gaussian
/// elimination with partial pivoting. Returns false when (numerically)
/// singular. a is row-major T x T.
bool solve_dense(std::vector<cplx>& a, std::vector<cplx>& b, std::size_t T) {
  for (std::size_t col = 0; col < T; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < T; ++r)
      if (std::abs(a[r * T + col]) > std::abs(a[piv * T + col])) piv = r;
    if (std::abs(a[piv * T + col]) < 1e-30) return false;
    if (piv != col) {
      for (std::size_t c = 0; c < T; ++c)
        std::swap(a[col * T + c], a[piv * T + c]);
      std::swap(b[col], b[piv]);
    }
    const cplx inv = 1.0 / a[col * T + col];
    for (std::size_t r = col + 1; r < T; ++r) {
      const cplx m = a[r * T + col] * inv;
      if (m == cplx{}) continue;
      for (std::size_t c = col; c < T; ++c) a[r * T + c] -= m * a[col * T + c];
      b[r] -= m * b[col];
    }
  }
  for (std::size_t r = T; r-- > 0;) {
    cplx acc = b[r];
    for (std::size_t c = r + 1; c < T; ++c) acc -= a[r * T + c] * b[c];
    b[r] = acc / a[r * T + r];
  }
  return true;
}

/// Roots of the monic polynomial x^T - p[0]*x^(T-1) - ... - p[T-1] by
/// Durand-Kerner (deterministic start; degree <= 3 converges in a handful
/// of sweeps). Roots we care about lie on the unit circle, so the fixed
/// iteration budget is ample; bad fits are rejected by verification later.
std::vector<cplx> poly_roots(std::span<const cplx> p) {
  const std::size_t T = p.size();
  auto eval = [&](cplx x) {
    cplx v = 1.0;
    for (std::size_t i = 0; i < T; ++i) v = v * x - p[i];
    return v;
  };
  std::vector<cplx> r(T);
  const cplx g(0.4, 0.9);  // the customary non-real seed point
  cplx acc = 1.0;
  for (auto& ri : r) ri = (acc *= g);
  for (int it = 0; it < 80; ++it) {
    double moved = 0.0;
    for (std::size_t i = 0; i < T; ++i) {
      cplx denom = 1.0;
      for (std::size_t j = 0; j < T; ++j)
        if (j != i) denom *= r[i] - r[j];
      if (std::abs(denom) < 1e-30) denom = 1e-30;
      const cplx delta = eval(r[i]) / denom;
      r[i] -= delta;
      moved = std::max(moved, std::abs(delta));
    }
    if (moved < 1e-14) break;
  }
  return r;
}

/// Attempts to explain one bucket's kFfastShifts plane values as exactly T
/// complex exponentials at integer frequencies congruent to j mod bins.
/// Verified against every plane before acceptance.
std::optional<std::vector<Exponential>> try_solve_ton(
    std::span<const cplx> z, std::size_t T, std::size_t j, std::size_t n,
    std::size_t bins, double scale) {
  const double tol = 1e-6 * scale;
  // Prony recurrence: z[i+T] = sum_t p[t] * z[i+T-1-t] for T rows.
  std::vector<cplx> A(T * T), rhs(T);
  for (std::size_t row = 0; row < T; ++row) {
    for (std::size_t t = 0; t < T; ++t) A[row * T + t] = z[row + T - 1 - t];
    rhs[row] = z[row + T];
  }
  std::vector<cplx> p = rhs;
  if (T == 1) {
    if (std::abs(A[0]) < 1e-30) return std::nullopt;
    p[0] = rhs[0] / A[0];
  } else if (!solve_dense(A, p, T)) {
    return std::nullopt;
  }
  const std::vector<cplx> roots = poly_roots(p);

  std::vector<Exponential> out;
  for (const cplx& w : roots) {
    // Alias-code roots are unit-modulus; snap the phase to the nearest
    // integer frequency and require it to hash into this bucket.
    if (std::abs(std::abs(w) - 1.0) > 0.1) return std::nullopt;
    double frac = std::arg(w) / kTwoPi * static_cast<double>(n);
    if (frac < 0) frac += static_cast<double>(n);
    const u64 f = static_cast<u64>(std::llround(frac)) % n;
    if (f % bins != j) return std::nullopt;
    for (const auto& e : out)
      if (e.freq == f) return std::nullopt;  // repeated root: wrong T
    out.push_back({f, cplx{}});
  }
  // Amplitudes from the first T planes with the snapped (exact) roots.
  std::vector<cplx> V(T * T), b(z.begin(), z.begin() + T);
  for (std::size_t c = 0; c < T; ++c)
    for (std::size_t t = 0; t < T; ++t)
      V[c * T + t] = std::polar(
          1.0, kTwoPi * static_cast<double>(out[t].freq) * c / n);
  if (T == 1) {
    b[0] = z[0];
  } else if (!solve_dense(V, b, T)) {
    return std::nullopt;
  }
  for (std::size_t t = 0; t < T; ++t) {
    if (std::abs(b[t]) < 1e-8 * scale) return std::nullopt;
    out[t].amp = b[t];
  }
  // Full verification: every plane must be reproduced.
  for (std::size_t c = 0; c < kFfastShifts; ++c) {
    cplx pred{};
    for (const auto& e : out)
      pred += e.amp * std::polar(1.0, kTwoPi * static_cast<double>(e.freq) *
                                          c / n);
    if (std::abs(pred - z[c]) > tol) return std::nullopt;
  }
  return out;
}

}  // namespace

SparseSpectrum ffast_peel(std::span<cplx> buckets,
                          std::span<const FfastStage> stages, std::size_t n) {
  double scale = 0.0;
  for (const cplx& z : buckets) scale = std::max(scale, std::abs(z));
  if (scale == 0.0) return {};
  const double floor = 1e-9 * scale;

  // Dirty tracking: a bucket is only (re)tried after something was peeled
  // out of it — failed multi-ton fits are not retried until they change.
  std::vector<std::vector<std::uint8_t>> dirty;
  dirty.reserve(stages.size());
  for (const auto& st : stages) dirty.emplace_back(st.bins, 1);

  std::vector<std::uint8_t> seen(n, 0);
  std::vector<cplx> z(kFfastShifts);
  SparseSpectrum out;
  for (bool progress = true; progress;) {
    progress = false;
    for (std::size_t s = 0; s < stages.size(); ++s) {
      const FfastStage& st = stages[s];
      for (std::size_t j = 0; j < st.bins; ++j) {
        if (!dirty[s][j]) continue;
        dirty[s][j] = 0;
        bool empty = true;
        for (std::size_t c = 0; c < kFfastShifts; ++c) {
          z[c] = buckets[st.offset + c * st.bins + j];
          empty = empty && std::abs(z[c]) <= floor;
        }
        if (empty) continue;
        std::optional<std::vector<Exponential>> hit;
        for (std::size_t T = 1; T <= kFfastMaxTon && !hit; ++T)
          hit = try_solve_ton(z, T, j, n, st.bins, scale);
        if (!hit) continue;
        for (const auto& e : *hit) {
          if (seen[e.freq]) continue;  // float echo of a peeled line
          seen[e.freq] = 1;
          const double bin_scale =
              static_cast<double>(st.bins) / static_cast<double>(n);
          out.push_back({e.freq, e.amp / bin_scale});
          // Peel it from every stage (including this one).
          for (std::size_t t = 0; t < stages.size(); ++t) {
            const FfastStage& tt = stages[t];
            const std::size_t jt = static_cast<std::size_t>(e.freq % tt.bins);
            const cplx base =
                e.amp * (static_cast<double>(tt.bins) / st.bins);
            const cplx rot = std::polar(
                1.0, kTwoPi * static_cast<double>(e.freq) / n);
            cplx term = base;
            for (std::size_t c = 0; c < kFfastShifts; ++c) {
              buckets[tt.offset + c * tt.bins + jt] -= term;
              term *= rot;
            }
            dirty[t][jt] = 1;
            progress = true;
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SparseCoef& a, const SparseCoef& b) {
              return a.loc < b.loc;
            });
  return out;
}

FfastPlan::FfastPlan(Params p) : p_(std::move(p)) {
  p_.validate();
  stages_ = ffast_stage_chain(p_.n, p_.ffast_bins(), p_.ffast_stages);
  ffts_.reserve(stages_.size());
  for (const auto& st : stages_)
    ffts_.emplace_back(st.bins, fft::Direction::kForward);
}

SparseSpectrum FfastPlan::execute(std::span<const cplx> x,
                                  StepTimers* timers) const {
  const std::size_t n = p_.n;
  auto timed = [&](const char* name) {
    return timers ? std::optional<StepTimers::Scope>(std::in_place, *timers,
                                                     name)
                  : std::nullopt;
  };

  const FfastStage& last = stages_.back();
  cvec buckets(last.offset + kFfastShifts * last.bins);
  {
    auto sc = timed(ffast_step::kSubsample);
    for (const auto& st : stages_) {
      const std::size_t L = n / st.bins;
      for (std::size_t c = 0; c < kFfastShifts; ++c) {
        cplx* z = buckets.data() + st.offset + c * st.bins;
        std::size_t idx = c;  // (L*m + c) mod n; c < kFfastShifts <= n
        for (std::size_t m = 0; m < st.bins; ++m) {
          z[m] = x[idx];
          idx += L;
          if (idx >= n) idx -= n;
        }
      }
    }
  }
  {
    auto sc = timed(ffast_step::kStageFft);
    for (std::size_t s = 0; s < stages_.size(); ++s)
      ffts_[s].execute_batch(
          std::span<cplx>(buckets.data() + stages_[s].offset,
                          kFfastShifts * stages_[s].bins),
          kFfastShifts);
  }
  auto sc = timed(ffast_step::kPeel);
  return ffast_peel(buckets, stages_, n);
}

}  // namespace cusfft::sfft
