#include "sfft/serial.hpp"

#include <algorithm>
#include <optional>

#include "core/rng.hpp"
#include "sfft/comb.hpp"

namespace cusfft::sfft {

SerialPlan::SerialPlan(Params p)
    : p_(std::move(p)),
      B_((p_.validate(), p_.buckets())),
      filter_(signal::get_flat_filter(p_.n, B_, p_.filter)),
      bfft_(B_, fft::Direction::kForward) {}

SparseSpectrum SerialPlan::execute(std::span<const cplx> x,
                                   StepTimers* timers) const {
  const std::size_t n = p_.n;
  const std::size_t L = p_.total_loops();
  Rng rng(p_.seed);
  const std::vector<LoopPerm> perms = draw_loop_perms(n, L, rng);

  auto timed = [&](const char* name) {
    return timers ? std::optional<StepTimers::Scope>(std::in_place, *timers,
                                                     name)
                  : std::nullopt;
  };

  // Optional sFFT 2.0 Comb prefilter (same draw order as the GPU backend so
  // the candidate sets match exactly).
  CombFilter comb;
  if (p_.comb) {
    std::vector<u64> taus(p_.comb_rounds);
    for (auto& t : taus) t = rng.next_below(n);
    auto s = timed(step::kComb);
    comb = run_comb_filter(x, p_.comb_w(), p_.comb_keep(), taus);
  }

  std::vector<cvec> bucket_sets(L);
  std::vector<std::uint8_t> score(n, 0);
  std::vector<u64> hits;
  const auto threshold = static_cast<std::uint8_t>(p_.threshold());
  const std::size_t cutoff = p_.cutoff();

  for (std::size_t r = 0; r < L; ++r) {
    bucket_sets[r].resize(B_);
    {
      auto s = timed(step::kPermFilter);
      bin_permuted(x, filter_->time, perms[r], bucket_sets[r]);
    }
    {
      auto s = timed(step::kSubFft);
      bfft_.execute(bucket_sets[r]);
    }
    if (r < p_.loops_loc) {
      std::vector<u32> selected;
      {
        auto s = timed(step::kCutoff);
        selected = top_buckets(bucket_sets[r], cutoff);
      }
      {
        auto s = timed(step::kLocRecover);
        vote_locations(selected, perms[r], n, B_, threshold, score, hits,
                       comb.approved);
      }
    }
  }

  SparseSpectrum out;
  {
    auto s = timed(step::kEstimate);
    out.reserve(hits.size());
    for (u64 f : hits)
      out.push_back(
          {f, estimate_coef(f, perms, bucket_sets, filter_->freq, n, B_)});
  }
  std::sort(out.begin(), out.end(),
            [](const SparseCoef& a, const SparseCoef& b) {
              return a.loc < b.loc;
            });
  return out;
}

}  // namespace cusfft::sfft
