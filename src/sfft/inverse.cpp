#include "sfft/inverse.hpp"

#include <algorithm>

namespace cusfft::sfft {

SparseSpectrum sparse_inverse(const SerialPlan& plan,
                              std::span<const cplx> freq_signal) {
  cvec conj_y(freq_signal.size());
  std::transform(freq_signal.begin(), freq_signal.end(), conj_y.begin(),
                 [](const cplx& v) { return std::conj(v); });
  SparseSpectrum s = plan.execute(conj_y);
  // FFT(conj(Y))[t] = n * conj(IFFT(Y)[t]) => x_t = conj(val) / n.
  const double inv_n = 1.0 / static_cast<double>(plan.params().n);
  for (auto& c : s) c.val = std::conj(c.val) * inv_n;
  return s;
}

}  // namespace cusfft::sfft
