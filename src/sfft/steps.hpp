// The six algorithm steps of Section III as reusable primitives. The serial
// plan (sfft/serial.*) and the multicore PsFFT (psfft/*) compose exactly
// these; the GPU cusFFT mirrors them as simulator kernels (cusfft/*), so a
// single set of unit tests pins the numerical contract for every backend.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "sfft/params.hpp"

namespace cusfft::sfft {

/// Draws the permutation parameters for every loop: ai odd (invertible mod
/// the power-of-two n), a = ai^{-1} mod n, tau uniform in [0, n).
std::vector<LoopPerm> draw_loop_perms(std::size_t n, std::size_t loops,
                                      Rng& rng);

/// Steps 1-2: permute + filter + bin. Computes, for j in [0, B):
///   z[j] = sum over i == j (mod B), i < w of x[(tau + i*ai) mod n] * g[i]
/// using the index-mapping form index(i) = (tau + i*ai) mod n (Fig. 3).
/// `z` must have size B and is overwritten.
void bin_permuted(std::span<const cplx> x, std::span<const cplx> filter_time,
                  const LoopPerm& perm, std::span<cplx> z);

/// Straight-line scalar form of bin_permuted (one `i % B` and one complex
/// operator* per item). Kept as the numerical reference: the blocked/SoA
/// production loop must stay bit-identical to it (pinned by tests).
void bin_permuted_reference(std::span<const cplx> x,
                            std::span<const cplx> filter_time,
                            const LoopPerm& perm, std::span<cplx> z);

/// Step 4 (baseline cutoff): indices of the `cutoff` largest-magnitude
/// buckets (unordered).
std::vector<u32> top_buckets(std::span<const cplx> buckets,
                             std::size_t cutoff);

/// Step 5: reverse the hash for every selected bucket and cast one vote per
/// candidate original frequency (Algorithm 4). When a score reaches
/// `threshold` the frequency is appended to `hits` (exactly once).
/// `score` must be length n and persists across the location loops.
/// `comb_approved` (optional, power-of-two length W) restricts votes to
/// frequencies whose residue mod W the Comb prefilter approved (sFFT 2.0).
void vote_locations(std::span<const u32> selected, const LoopPerm& perm,
                    std::size_t n, std::size_t B, std::uint8_t threshold,
                    std::span<std::uint8_t> score, std::vector<u64>& hits,
                    std::span<const std::uint8_t> comb_approved = {});

/// Step 6 helper: the bucket a frequency hashes to under `perm` and the
/// filter-frequency index correcting the in-bucket offset (Algorithm 5
/// lines 8-15).
struct HashedLoc {
  std::size_t bucket = 0;
  std::size_t freq_index = 0;  // index into the length-n filter response
};
HashedLoc hash_location(u64 freq, const LoopPerm& perm, std::size_t n,
                        std::size_t B);

/// Step 6: estimate one coefficient as the per-component median over loops
/// of bucket / filter corrections (with the tau phase unrolled; see
/// DESIGN.md §6 on why the phase term is required).
cplx estimate_coef(u64 freq, std::span<const LoopPerm> perms,
                   std::span<const cvec> bucket_sets,
                   std::span<const cplx> filter_freq, std::size_t n,
                   std::size_t B);

/// Median of v taken component-wise; v is scrambled in place.
cplx median_complex(std::span<cplx> v);

}  // namespace cusfft::sfft
