#include "sfft/params.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/modmath.hpp"
#include "sfft/comb.hpp"

namespace cusfft::sfft {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kCusfft: return "cusfft";
    case Algorithm::kFfast: return "ffast";
    case Algorithm::kAuto: return "auto";
  }
  return "cusfft";
}

std::optional<Algorithm> parse_algorithm(std::string_view name) {
  if (name == "cusfft") return Algorithm::kCusfft;
  if (name == "ffast") return Algorithm::kFfast;
  if (name == "auto") return Algorithm::kAuto;
  return std::nullopt;
}

std::size_t Params::buckets() const {
  const double logn = std::log2(static_cast<double>(n));
  const double raw =
      bcst * std::sqrt(static_cast<double>(n) * static_cast<double>(k) /
                       std::max(logn, 1.0));
  // Clamp to n while still in the double domain: hostile constants (bcst =
  // 1e300) push raw past 2^63 where the bare u64 cast is UB — it silently
  // produced B = 8 instead of the intended B = n.
  if (!(raw < static_cast<double>(n))) return n;  // n is a power of two
  // Round to the nearest power of two (both the subsampled FFT and the
  // GPU loop partition require B = 2^m).
  const u64 lo = prev_pow2(std::max<u64>(4, static_cast<u64>(raw)));
  const u64 hi = lo << 1;
  u64 B = (static_cast<double>(hi) / raw < raw / static_cast<double>(lo))
              ? hi
              : lo;
  B = std::min<u64>(B, n);
  return static_cast<std::size_t>(B);
}

std::size_t Params::threshold() const {
  if (loc_threshold != 0) return loc_threshold;
  return std::max<std::size_t>(2, loops_loc / 2 + 1);
}

std::size_t Params::cutoff() const {
  // Selecting more than half the buckets would make the reverse-hash vote
  // regions cover most of [0, n) — cap in the dense regime. The cap is
  // applied before the u64 cast: past 2^63 that cast is UB, and
  // cutoff_mult = 1e300 came back as cutoff() == 0 (a silently empty
  // spectrum) instead of the cap.
  const std::size_t cap = std::max<std::size_t>(1, buckets() / 2);
  const double want = std::max(1.0, cutoff_mult * static_cast<double>(k));
  if (!(want < static_cast<double>(cap))) return cap;
  return static_cast<std::size_t>(want);
}

std::size_t Params::comb_w() const {
  return comb ? comb_width(n, k, comb_cst) : 0;
}

std::size_t Params::comb_keep() const {
  // keep > comb_w() is legal (the comb filter clamps to its bin count);
  // capping at n here just keeps the u64 cast defined for huge multipliers.
  const double want = std::max(1.0, comb_keep_mult * static_cast<double>(k));
  if (!(want < static_cast<double>(n))) return n;
  return static_cast<std::size_t>(want);
}

std::size_t Params::ffast_bins() const {
  const double want = ffast_bin_mult * static_cast<double>(k);
  if (!(want < static_cast<double>(n))) return n;  // n is a power of two
  const u64 raw = next_pow2(std::max<u64>(8, static_cast<u64>(want)));
  return static_cast<std::size_t>(std::min<u64>(raw, n));
}

void Params::validate() const {
  if (!is_pow2(n) || n < 16)
    throw std::invalid_argument("sfft::Params: n must be a power of two >= 16");
  if (k == 0 || k > n / 2)
    throw std::invalid_argument("sfft::Params: need 0 < k <= n/2");
  if (loops_loc < 1)
    throw std::invalid_argument("sfft::Params: need at least 1 location loop");
  if (loops_loc > 255)
    throw std::invalid_argument(
        "sfft::Params: more than 255 location loops would overflow the "
        "8-bit score counters");
  if (threshold() > loops_loc)
    throw std::invalid_argument(
        "sfft::Params: vote threshold exceeds location loops");
  // !(x > 0) rather than x <= 0: NaN fails every ordered comparison, so
  // the old spelling waved NaN constants straight through validate().
  if (!(bcst > 0.0) || !(cutoff_mult > 0.0))
    throw std::invalid_argument("sfft::Params: constants must be positive");
  if (comb &&
      (!(comb_cst > 0.0) || comb_rounds == 0 || !(comb_keep_mult > 0.0)))
    throw std::invalid_argument("sfft::Params: bad comb configuration");
  if (algo != Algorithm::kCusfft && algo != Algorithm::kFfast &&
      algo != Algorithm::kAuto)
    throw std::invalid_argument("sfft::Params: unknown algorithm");
  if (ffast_stages == 0 || ffast_stages > 8)
    throw std::invalid_argument("sfft::Params: need 1..8 FFAST stages");
  if (!(ffast_bin_mult > 0.0))
    throw std::invalid_argument("sfft::Params: constants must be positive");
}

}  // namespace cusfft::sfft
