#include "sfft/params.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/modmath.hpp"
#include "sfft/comb.hpp"

namespace cusfft::sfft {

std::size_t Params::buckets() const {
  const double logn = std::log2(static_cast<double>(n));
  const double raw =
      bcst * std::sqrt(static_cast<double>(n) * static_cast<double>(k) /
                       std::max(logn, 1.0));
  // Round to the nearest power of two (both the subsampled FFT and the
  // GPU loop partition require B = 2^m).
  const u64 lo = prev_pow2(std::max<u64>(4, static_cast<u64>(raw)));
  const u64 hi = lo << 1;
  u64 B = (static_cast<double>(hi) / raw < raw / static_cast<double>(lo))
              ? hi
              : lo;
  B = std::min<u64>(B, n);
  return static_cast<std::size_t>(B);
}

std::size_t Params::threshold() const {
  if (loc_threshold != 0) return loc_threshold;
  return std::max<std::size_t>(2, loops_loc / 2 + 1);
}

std::size_t Params::cutoff() const {
  const auto B = buckets();
  const auto c = static_cast<std::size_t>(
      std::max(1.0, cutoff_mult * static_cast<double>(k)));
  // Selecting more than half the buckets would make the reverse-hash vote
  // regions cover most of [0, n) — cap in the dense regime.
  return std::min(c, std::max<std::size_t>(1, B / 2));
}

std::size_t Params::comb_w() const {
  return comb ? comb_width(n, k, comb_cst) : 0;
}

std::size_t Params::comb_keep() const {
  return static_cast<std::size_t>(
      std::max(1.0, comb_keep_mult * static_cast<double>(k)));
}

void Params::validate() const {
  if (!is_pow2(n) || n < 16)
    throw std::invalid_argument("sfft::Params: n must be a power of two >= 16");
  if (k == 0 || k > n / 2)
    throw std::invalid_argument("sfft::Params: need 0 < k <= n/2");
  if (loops_loc < 1)
    throw std::invalid_argument("sfft::Params: need at least 1 location loop");
  if (loops_loc > 255)
    throw std::invalid_argument(
        "sfft::Params: more than 255 location loops would overflow the "
        "8-bit score counters");
  if (threshold() > loops_loc)
    throw std::invalid_argument(
        "sfft::Params: vote threshold exceeds location loops");
  if (bcst <= 0.0 || cutoff_mult <= 0.0)
    throw std::invalid_argument("sfft::Params: constants must be positive");
  if (comb && (comb_cst <= 0.0 || comb_rounds == 0 || comb_keep_mult <= 0.0))
    throw std::invalid_argument("sfft::Params: bad comb configuration");
}

}  // namespace cusfft::sfft
