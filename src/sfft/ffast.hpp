// FFAST-style sparse FFT (Pawar & Ramchandran: sparse-graph alias codes —
// subsample, alias, peel). The classic construction needs n to be a product
// of pairwise-coprime subsampling factors; our n is always a power of two,
// where every affine spectral permutation preserves the residue classes
// mod F, so coprime-style stage decorrelation is impossible. This
// power-of-two adaptation gets its decoding redundancy from two other
// levers instead:
//
//   * a geometric chain of per-stage bin counts F_s = F * 2^s (frequencies
//     colliding mod F split apart mod 2F or 4F), and
//   * kFfastShifts = 6 shift taps per stage: plane c subsamples at offset c,
//     so bucket j of stage s holds
//       z_c[j] = (F_s/n) * sum_{f : f mod F_s == j} X[f] * e^(2*pi*i*f*c/n)
//     — a sum of at most a few complex exponentials in c. A singleton
//     reveals f through the ratio z_1/z_0 = e^(2*pi*i*f/n); buckets holding
//     up to kFfastMaxTon = 3 colliding frequencies are solved directly by a
//     small Prony system (linear recurrence -> root polynomial -> integer
//     frequency snap -> amplitude solve), each verified against all six
//     planes before acceptance.
//
// The peeling decoder subtracts every accepted coefficient from all stages'
// buckets, cascading until the residual is empty. Recovery on
// exactly-k-sparse signals is exact unless >= 4 planted frequencies agree
// mod the largest stage (probability ~ k^4 / (24 * (4F)^3), negligible at
// the sizes we run); the all-plane verification makes the decoder fail soft
// — stop peeling — rather than hallucinate. Cost: 6 subsampled FFTs per
// stage, O(sum_s F_s log F_s) total, versus cusFFT's O(B log B + loops *
// n/B) — the backend the auto-picker prefers at low k (cusfft/autopick.hpp).
#pragma once

#include <span>
#include <vector>

#include "core/timer.hpp"
#include "core/types.hpp"
#include "fft/fft.hpp"
#include "sfft/params.hpp"

namespace cusfft::sfft {

/// StepTimers keys for the FFAST pipeline (the Figure-2-style breakdown of
/// this backend).
namespace ffast_step {
inline constexpr const char* kSubsample = "1 stage subsample";
inline constexpr const char* kStageFft = "2 stage fft";
inline constexpr const char* kPeel = "3 peel decode";
}  // namespace ffast_step

/// Shift taps per stage. 2T planes let the Prony solver resolve buckets of
/// up to T colliding frequencies; 6 planes -> 3-ton resolution.
inline constexpr std::size_t kFfastShifts = 6;
inline constexpr std::size_t kFfastMaxTon = kFfastShifts / 2;

/// One aliasing stage: bin count (power of two dividing n) and the offset
/// of its first plane in the flattened bucket buffer (kFfastShifts planes
/// of `bins` entries each, shift-major).
struct FfastStage {
  std::size_t bins = 0;
  std::size_t offset = 0;
};

/// The stage chain FfastPlan uses: bins_s = min(base_bins * 2^s, n),
/// deduplicated once the clamp collapses neighbours. Exposed so the GPU
/// backend builds the identical layout (tests pin identical support and
/// values to FFT rounding — the GPU stage FFTs run through cufftsim).
/// Returns at least one stage; total buffer size is
/// stages.back().offset + kFfastShifts * stages.back().bins.
std::vector<FfastStage> ffast_stage_chain(std::size_t n,
                                          std::size_t base_bins,
                                          std::size_t stages);

/// Decodes stage buckets into a sparse spectrum by peeling; `buckets` is
/// the flattened plane layout described on FfastStage and is consumed
/// (peeled in place). Shared by the CPU plan and the GPU backend's
/// host-side decode.
SparseSpectrum ffast_peel(std::span<cplx> buckets,
                          std::span<const FfastStage> stages, std::size_t n);

class FfastPlan {
 public:
  /// Validates p and builds the per-stage FFT plans. Fully deterministic —
  /// the stage chain is derived, not drawn, so Params::seed is unused.
  explicit FfastPlan(Params p);

  const Params& params() const { return p_; }
  const std::vector<FfastStage>& stages() const { return stages_; }

  /// Runs subsample + stage FFTs + peeling on x (length n). Optionally
  /// accumulates per-step wall time into `timers`.
  SparseSpectrum execute(std::span<const cplx> x,
                         StepTimers* timers = nullptr) const;

 private:
  Params p_;
  std::vector<FfastStage> stages_;
  std::vector<fft::Plan> ffts_;  // one per stage (sizes differ)
};

}  // namespace cusfft::sfft
