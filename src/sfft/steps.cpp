#include "sfft/steps.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/modmath.hpp"

namespace cusfft::sfft {

std::vector<LoopPerm> draw_loop_perms(std::size_t n, std::size_t loops,
                                      Rng& rng) {
  std::vector<LoopPerm> out(loops);
  for (auto& p : out) {
    p.ai = rng.next_odd_below(n);
    p.a = mod_inverse(p.ai, n);
    p.tau = rng.next_below(n);
  }
  return out;
}

void bin_permuted(std::span<const cplx> x, std::span<const cplx> filter_time,
                  const LoopPerm& perm, std::span<cplx> z) {
  const std::size_t n = x.size();
  const std::size_t B = z.size();
  const std::size_t w = filter_time.size();
  std::fill(z.begin(), z.end(), cplx{});
  // Blocked form of the reference below: the filter window is walked in
  // B-sized chunks so the bucket is the chunk-local counter itself and the
  // per-item `i % B` division disappears. Each z[j] still accumulates its
  // terms in ascending i, and the multiply is the same naive complex
  // product the reference's operator* lowers to for finite values, so the
  // buckets are bit-identical to bin_permuted_reference.
  std::size_t index = perm.tau % n;
  const std::size_t ai = perm.ai % n;
  // std::complex guarantees array-oriented access: element k is the
  // (re, im) pair at doubles 2k, 2k+1. Split planes let the inner loop be
  // plain double arithmetic with no libm complex-multiply call.
  double* zp = reinterpret_cast<double*>(z.data());
  const double* xp = reinterpret_cast<const double*>(x.data());
  const double* fp = reinterpret_cast<const double*>(filter_time.data());
  for (std::size_t i0 = 0; i0 < w; i0 += B) {
    const std::size_t m = std::min(B, w - i0);
    const double* f = fp + 2 * i0;
    for (std::size_t j = 0; j < m; ++j) {
      const double xr = xp[2 * index];
      const double xi = xp[2 * index + 1];
      const double fr = f[2 * j];
      const double fi = f[2 * j + 1];
      zp[2 * j] += xr * fr - xi * fi;
      zp[2 * j + 1] += xr * fi + xi * fr;
      index += ai;
      if (index >= n) index -= n;
    }
  }
}

void bin_permuted_reference(std::span<const cplx> x,
                            std::span<const cplx> filter_time,
                            const LoopPerm& perm, std::span<cplx> z) {
  const std::size_t n = x.size();
  const std::size_t B = z.size();
  const std::size_t w = filter_time.size();
  std::fill(z.begin(), z.end(), cplx{});
  // Index mapping (Fig. 3): index(i) = (tau + i*ai) mod n, computed
  // incrementally here (serial) — the GPU kernel computes it directly.
  std::size_t index = perm.tau % n;
  const std::size_t ai = perm.ai % n;
  for (std::size_t i = 0; i < w; ++i) {
    z[i % B] += x[index] * filter_time[i];
    index += ai;
    if (index >= n) index -= n;
  }
}

std::vector<u32> top_buckets(std::span<const cplx> buckets,
                             std::size_t cutoff) {
  const std::size_t B = buckets.size();
  cutoff = std::min(cutoff, B);
  // Selection reads each bucket's energy O(log B) times; computing the
  // norms once turns every comparator call into two array loads. The
  // comparator sees the exact same values, so the selected set (and
  // nth_element's deterministic ordering of it) is unchanged.
  std::vector<double> energy(B);
  for (std::size_t j = 0; j < B; ++j) energy[j] = std::norm(buckets[j]);
  std::vector<u32> idx(B);
  std::iota(idx.begin(), idx.end(), 0u);
  std::nth_element(idx.begin(), idx.begin() + (cutoff - 1), idx.end(),
                   [&](u32 a, u32 b) { return energy[a] > energy[b]; });
  idx.resize(cutoff);
  return idx;
}

void vote_locations(std::span<const u32> selected, const LoopPerm& perm,
                    std::size_t n, std::size_t B, std::uint8_t threshold,
                    std::span<std::uint8_t> score, std::vector<u64>& hits,
                    std::span<const std::uint8_t> comb_approved) {
  const double nd = static_cast<double>(n);
  const double Bd = static_cast<double>(B);
  const u64 comb_mask =
      comb_approved.empty() ? 0 : static_cast<u64>(comb_approved.size()) - 1;
  for (u32 j : selected) {
    // Permuted positions hashed to bucket j: [ (j-0.5)n/B, (j+0.5)n/B ).
    const u64 low = static_cast<u64>(
        std::ceil((static_cast<double>(j) - 0.5) * nd / Bd) + nd) % n;
    const u64 width = n / B;
    u64 loc = mod_mul(low, perm.a, n);
    for (u64 s = 0; s < width; ++s) {
      if (comb_approved.empty() || comb_approved[loc & comb_mask]) {
        if (++score[loc] == threshold) hits.push_back(loc);
      }
      loc += perm.a;
      if (loc >= n) loc -= n;
    }
  }
}

HashedLoc hash_location(u64 freq, const LoopPerm& perm, std::size_t n,
                        std::size_t B) {
  const u64 n_div_B = n / B;
  const u64 permuted = mod_mul(perm.ai, freq, n);
  u64 bucket = permuted / n_div_B;
  i64 dist = static_cast<i64>(permuted % n_div_B);
  if (static_cast<u64>(dist) > n_div_B / 2) {  // round to nearest bucket
    bucket = (bucket + 1) % B;
    dist -= static_cast<i64>(n_div_B);
  }
  const u64 fi = static_cast<u64>(
      (static_cast<i64>(n) - dist) % static_cast<i64>(n));
  return HashedLoc{static_cast<std::size_t>(bucket),
                   static_cast<std::size_t>(fi)};
}

cplx median_complex(std::span<cplx> v) {
  if (v.empty()) return cplx{};
  const std::size_t mid = (v.size() - 1) / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end(),
                   [](const cplx& a, const cplx& b) {
                     return a.real() < b.real();
                   });
  const double re = v[mid].real();
  std::nth_element(v.begin(), v.begin() + mid, v.end(),
                   [](const cplx& a, const cplx& b) {
                     return a.imag() < b.imag();
                   });
  return cplx{re, v[mid].imag()};
}

cplx estimate_coef(u64 freq, std::span<const LoopPerm> perms,
                   std::span<const cvec> bucket_sets,
                   std::span<const cplx> filter_freq, std::size_t n,
                   std::size_t B) {
  if (perms.size() != bucket_sets.size())
    throw std::invalid_argument("estimate_coef: loop count mismatch");
  cvec vals(perms.size());
  for (std::size_t r = 0; r < perms.size(); ++r) {
    const HashedLoc h = hash_location(freq, perms[r], n, B);
    // bucket = (1/n) * xhat_f * exp(+2*pi*i*f*tau/n) * G(offset); invert all
    // three factors. The tau phase is mandatory for a correct median (the
    // paper's Algorithm 5 omits it; see DESIGN.md §6).
    const double ang = -kTwoPi *
                       static_cast<double>(mod_mul(freq, perms[r].tau, n)) /
                       static_cast<double>(n);
    const cplx phase{std::cos(ang), std::sin(ang)};
    vals[r] = bucket_sets[r][h.bucket] * static_cast<double>(n) * phase /
              filter_freq[h.freq_index];
  }
  return median_complex(vals);
}

}  // namespace cusfft::sfft
