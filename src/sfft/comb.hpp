// The sFFT 2.0 aliasing prefilter ("Comb filter", Hassanieh et al.
// SODA'12 — the variant whose O(log n * sqrt(nk log n)) bound the paper
// quotes). Subsampling the signal in time with stride n/W aliases the
// spectrum onto W bins:
//
//   y_i = x_{(i*(n/W) + tau) mod n}  =>  yhat_j ∝ sum over f ≡ j (mod W)
//                                        of xhat_f * e^{2*pi*i*f*tau/n}
//
// so the residues (mod W) of the large coefficients concentrate in a few
// large bins of one cheap W-point FFT. The location loops then vote only
// on frequencies whose residue was approved, which slashes false
// candidates in the dense regime. Several rounds with independent random
// tau are unioned so an unlucky phase cancellation cannot hide a tone.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"

namespace cusfft::sfft {

struct CombFilter {
  std::size_t W = 0;                   // aliasing width (power of two)
  std::vector<std::uint8_t> approved;  // size W; 1 = residue may hold a tone
};

/// Residues approved by one or more subsampling rounds. `taus` holds one
/// random offset per round; `keep` bins are approved per round.
CombFilter run_comb_filter(std::span<const cplx> x, std::size_t W,
                           std::size_t keep, std::span<const u64> taus);

/// Derives the aliasing width for (n, k): next_pow2(comb_cst * k), clamped
/// to [16, n/2].
std::size_t comb_width(std::size_t n, std::size_t k, double comb_cst);

}  // namespace cusfft::sfft
