#include "sfft/comb.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/modmath.hpp"
#include "fft/fft.hpp"
#include "sfft/steps.hpp"

namespace cusfft::sfft {

std::size_t comb_width(std::size_t n, std::size_t k, double comb_cst) {
  const u64 cap = n / 2;  // a power of two whenever n is
  const double want = comb_cst * static_cast<double>(k);
  // Clamp before the u64 cast — past 2^63 the cast is UB (comb_cst =
  // 1e300 wrapped instead of saturating at n/2).
  if (!(want < static_cast<double>(cap)))
    return static_cast<std::size_t>(cap);
  const u64 raw = next_pow2(std::max<u64>(16, static_cast<u64>(want)));
  return static_cast<std::size_t>(std::min<u64>(raw, cap));
}

CombFilter run_comb_filter(std::span<const cplx> x, std::size_t W,
                           std::size_t keep, std::span<const u64> taus) {
  const std::size_t n = x.size();
  if (!is_pow2(n) || !is_pow2(W) || W == 0 || W > n)
    throw std::invalid_argument("run_comb_filter: need pow2 W <= pow2 n");
  if (taus.empty())
    throw std::invalid_argument("run_comb_filter: need at least one round");
  keep = std::min(keep, W);

  CombFilter out;
  out.W = W;
  out.approved.assign(W, 0);
  const std::size_t stride = n / W;
  fft::Plan plan(W, fft::Direction::kForward);
  cvec y(W);
  for (const u64 tau : taus) {
    for (std::size_t i = 0; i < W; ++i)
      y[i] = x[(i * stride + tau) % n];
    plan.execute(y);
    for (const u32 j : top_buckets(y, keep)) out.approved[j] = 1;
  }
  return out;
}

}  // namespace cusfft::sfft
