// Sparse *inverse* FFT: recover the few dominant time-domain components of
// a dense frequency-domain signal (correlation peaks, pulse arrival times —
// the "Faster GPS" application of the paper's reference [19]). Uses the
// conjugation identity IFFT(Y)[t] = conj(FFT(conj(Y))[t]) / n so the
// forward sparse machinery applies unchanged.
#pragma once

#include <span>

#include "core/types.hpp"
#include "sfft/serial.hpp"

namespace cusfft::sfft {

/// Runs the plan on conj(Y) and converts the recovered "spectrum" back to
/// time-domain components: result[i].loc is a time index t, result[i].val
/// is x_t = IFFT(Y)[t].
SparseSpectrum sparse_inverse(const SerialPlan& plan,
                              std::span<const cplx> freq_signal);

/// Same transform through any executor with SparseSpectrum
/// execute(span<const cplx>) semantics (PsfftPlan, gpu::GpuPlan, ...).
template <typename Plan>
SparseSpectrum sparse_inverse_with(Plan& plan, std::size_t n,
                                   std::span<const cplx> freq_signal) {
  cvec conj_y(freq_signal.size());
  for (std::size_t i = 0; i < conj_y.size(); ++i)
    conj_y[i] = std::conj(freq_signal[i]);
  SparseSpectrum s = plan.execute(conj_y);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (auto& c : s) c.val = std::conj(c.val) * inv_n;
  return s;
}

}  // namespace cusfft::sfft
