// Planned fast Fourier transforms — the from-scratch stand-in for FFTW on
// the CPU side and the computational core reused by the simulated cuFFT
// (src/cufftsim). Plan once, execute many times (FFTW/cuFFT idiom): twiddle
// factors and the bit-reversal permutation are precomputed at plan time.
//
// Supported sizes: any n >= 1. Powers of two use the iterative radix-2
// decimation-in-time kernel; other sizes go through Bluestein's chirp-z
// algorithm on a padded power-of-two plan.
//
// Conventions match fft/dft.hpp: forward unnormalized, inverse carries 1/n.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/thread_pool.hpp"
#include "core/types.hpp"

namespace cusfft::fft {

enum class Direction { kForward, kInverse };

/// Analytic work estimate for one execution of a plan; feeds the CPU roofline
/// model (perfmodel) so modeled FFTW times use the real operation counts.
struct PlanCost {
  double flops = 0.0;   // floating-point operations per transform
  double bytes = 0.0;   // global (DRAM-level) bytes moved per transform
};

/// A reusable transform descriptor for fixed (n, direction).
class Plan {
 public:
  Plan(std::size_t n, Direction dir);
  ~Plan();
  Plan(Plan&&) noexcept;
  Plan& operator=(Plan&&) noexcept;
  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;

  std::size_t size() const;
  Direction direction() const;

  /// Out-of-place execute. in.size() == out.size() == n. in may alias out.
  void execute(std::span<const cplx> in, std::span<cplx> out) const;

  /// In-place execute.
  void execute(std::span<cplx> data) const { execute(data, data); }

  /// Batched execute over `batch` contiguous transforms laid out
  /// back-to-back (data.size() == batch * n). This mirrors cuFFT's batched
  /// mode that the paper exploits in Step 3 (twiddles shared across a batch).
  void execute_batch(std::span<cplx> data, std::size_t batch) const;

  /// Batched execute parallelized over `pool` (one transform per task chunk);
  /// the "parallel FFTW" configuration.
  void execute_batch(std::span<cplx> data, std::size_t batch,
                     ThreadPool& pool) const;

  /// Single large transform with the stage butterflies split across `pool`.
  void execute_parallel(std::span<cplx> data, ThreadPool& pool) const;

  /// Work estimate per single transform (see PlanCost).
  PlanCost cost() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot conveniences (plan + execute); prefer Plan on hot paths.
cvec fft(std::span<const cplx> x);
cvec ifft(std::span<const cplx> x);

}  // namespace cusfft::fft
