// Naive O(n^2) discrete Fourier transform. Used only as a correctness oracle
// in tests — never on a hot path.
//
// Convention (used across the whole library):
//   forward:  xhat[k] = sum_t x[t] * exp(-2*pi*i*k*t/n)
//   inverse:  x[t]    = (1/n) * sum_k xhat[k] * exp(+2*pi*i*k*t/n)
#pragma once

#include <span>

#include "core/types.hpp"

namespace cusfft::fft {

/// Forward DFT, O(n^2).
cvec dft_naive(std::span<const cplx> x);

/// Inverse DFT (with 1/n normalization), O(n^2).
cvec idft_naive(std::span<const cplx> x);

}  // namespace cusfft::fft
