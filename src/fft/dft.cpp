#include "fft/dft.hpp"

#include <cmath>

namespace cusfft::fft {

namespace {
cvec dft_impl(std::span<const cplx> x, double sign, bool normalize) {
  const std::size_t n = x.size();
  cvec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = sign * kTwoPi * static_cast<double>(k) *
                         static_cast<double>(t) / static_cast<double>(n);
      acc += x[t] * cplx{std::cos(ang), std::sin(ang)};
    }
    out[k] = normalize ? acc / static_cast<double>(n) : acc;
  }
  return out;
}
}  // namespace

cvec dft_naive(std::span<const cplx> x) { return dft_impl(x, -1.0, false); }

cvec idft_naive(std::span<const cplx> x) { return dft_impl(x, +1.0, true); }

}  // namespace cusfft::fft
