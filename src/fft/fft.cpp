#include "fft/fft.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/modmath.hpp"

namespace cusfft::fft {

namespace {

/// Bit-reversal permutation table for size n = 2^logn.
std::vector<u32> make_bitrev(std::size_t n) {
  std::vector<u32> rev(n);
  const unsigned logn = log2_floor(n);
  for (std::size_t i = 0; i < n; ++i) {
    u32 r = 0;
    for (unsigned b = 0; b < logn; ++b)
      if (i >> b & 1) r |= 1u << (logn - 1 - b);
    rev[i] = r;
  }
  return rev;
}

/// Twiddle table tw[j] = exp(sign * 2*pi*i * j / n), j in [0, n/2).
cvec make_twiddles(std::size_t n, double sign) {
  cvec tw(std::max<std::size_t>(n / 2, 1));
  for (std::size_t j = 0; j < tw.size(); ++j) {
    const double ang = sign * kTwoPi * static_cast<double>(j) /
                       static_cast<double>(n);
    tw[j] = cplx{std::cos(ang), std::sin(ang)};
  }
  return tw;
}

}  // namespace

struct Plan::Impl {
  std::size_t n = 0;
  Direction dir = Direction::kForward;
  bool pow2 = false;

  // --- power-of-two path ---
  std::vector<u32> bitrev;
  cvec twiddles;  // n/2 roots with the plan's sign

  // --- Bluestein path (arbitrary n) ---
  std::size_t m = 0;            // padded power-of-two size >= 2n-1
  cvec chirp;                   // c[t] = exp(sign*pi*i*t^2/n), length n
  cvec bfreq;                   // FFT_m of the chirp-conjugate kernel
  std::unique_ptr<Plan> fwd_m;  // forward plan of size m
  std::unique_ptr<Plan> inv_m;  // inverse plan of size m

  double sign() const { return dir == Direction::kForward ? -1.0 : 1.0; }

  void radix2_inplace(std::span<cplx> a) const {
    // Decimation-in-time with precomputed bit-reversal + twiddles.
    for (std::size_t i = 0; i < n; ++i) {
      const u32 r = bitrev[i];
      if (i < r) std::swap(a[i], a[r]);
    }
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t half = len >> 1;
      const std::size_t step = n / len;
      for (std::size_t i = 0; i < n; i += len) {
        for (std::size_t j = 0; j < half; ++j) {
          const cplx w = twiddles[j * step];
          const cplx u = a[i + j];
          const cplx v = a[i + j + half] * w;
          a[i + j] = u + v;
          a[i + j + half] = u - v;
        }
      }
    }
    if (dir == Direction::kInverse) {
      const double inv_n = 1.0 / static_cast<double>(n);
      for (auto& x : a) x *= inv_n;
    }
  }

  void radix2_parallel(std::span<cplx> a, ThreadPool& pool) const {
    pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        const u32 r = bitrev[i];
        if (i < r) std::swap(a[i], a[r]);
      }
    });
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t half = len >> 1;
      const std::size_t step = n / len;
      // Flatten all n/2 butterflies of this stage; each worker takes a
      // contiguous range (no two butterflies share elements within a stage).
      pool.parallel_for(n / 2, [&](std::size_t b, std::size_t e) {
        for (std::size_t f = b; f < e; ++f) {
          const std::size_t i = (f / half) * len;
          const std::size_t j = f % half;
          const cplx w = twiddles[j * step];
          const cplx u = a[i + j];
          const cplx v = a[i + j + half] * w;
          a[i + j] = u + v;
          a[i + j + half] = u - v;
        }
      });
    }
    if (dir == Direction::kInverse) {
      const double inv_n = 1.0 / static_cast<double>(n);
      pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) a[i] *= inv_n;
      });
    }
  }

  void bluestein(std::span<cplx> a) const {
    // y[k] = conj(c[k]) * sum_t x[t] c[t] * conj(c[k-t]) ... expressed as a
    // circular convolution of length m computed with power-of-two FFTs.
    cvec av(m, cplx{});
    for (std::size_t t = 0; t < n; ++t) av[t] = a[t] * chirp[t];
    fwd_m->execute(av);
    for (std::size_t t = 0; t < m; ++t) av[t] *= bfreq[t];
    inv_m->execute(av);
    const double scale =
        dir == Direction::kInverse ? 1.0 / static_cast<double>(n) : 1.0;
    for (std::size_t k = 0; k < n; ++k) a[k] = av[k] * chirp[k] * scale;
  }
};

Plan::Plan(std::size_t n, Direction dir) : impl_(std::make_unique<Impl>()) {
  if (n == 0) throw std::invalid_argument("fft::Plan: n must be >= 1");
  impl_->n = n;
  impl_->dir = dir;
  impl_->pow2 = is_pow2(n);
  if (impl_->pow2) {
    if (n > 1) {
      impl_->bitrev = make_bitrev(n);
      impl_->twiddles = make_twiddles(n, impl_->sign());
    }
    return;
  }
  // Bluestein setup. chirp[t] = exp(sign*pi*i*t^2/n); t^2 taken mod 2n keeps
  // the angle argument small (exp is 2n-periodic in t^2/n * pi).
  impl_->m = next_pow2(2 * n - 1);
  impl_->chirp.resize(n);
  const double sign = impl_->sign();
  for (std::size_t t = 0; t < n; ++t) {
    const u64 t2 = mod_mul(t, t, 2 * n);
    const double ang = sign * kPi * static_cast<double>(t2) /
                       static_cast<double>(n);
    impl_->chirp[t] = cplx{std::cos(ang), std::sin(ang)};
  }
  impl_->fwd_m = std::make_unique<Plan>(impl_->m, Direction::kForward);
  impl_->inv_m = std::make_unique<Plan>(impl_->m, Direction::kInverse);
  cvec b(impl_->m, cplx{});
  b[0] = std::conj(impl_->chirp[0]);
  for (std::size_t t = 1; t < n; ++t) {
    b[t] = std::conj(impl_->chirp[t]);
    b[impl_->m - t] = std::conj(impl_->chirp[t]);
  }
  impl_->fwd_m->execute(b);
  impl_->bfreq = std::move(b);
}

Plan::~Plan() = default;
Plan::Plan(Plan&&) noexcept = default;
Plan& Plan::operator=(Plan&&) noexcept = default;

std::size_t Plan::size() const { return impl_->n; }
Direction Plan::direction() const { return impl_->dir; }

void Plan::execute(std::span<const cplx> in, std::span<cplx> out) const {
  if (in.size() != impl_->n || out.size() != impl_->n)
    throw std::invalid_argument("fft::Plan::execute: size mismatch");
  if (in.data() != out.data()) std::copy(in.begin(), in.end(), out.begin());
  if (impl_->n == 1) return;
  if (impl_->pow2)
    impl_->radix2_inplace(out);
  else
    impl_->bluestein(out);
}

void Plan::execute_batch(std::span<cplx> data, std::size_t batch) const {
  if (data.size() != batch * impl_->n)
    throw std::invalid_argument("fft::Plan::execute_batch: size mismatch");
  for (std::size_t b = 0; b < batch; ++b)
    execute(data.subspan(b * impl_->n, impl_->n));
}

void Plan::execute_batch(std::span<cplx> data, std::size_t batch,
                         ThreadPool& pool) const {
  if (data.size() != batch * impl_->n)
    throw std::invalid_argument("fft::Plan::execute_batch: size mismatch");
  pool.parallel_for(batch, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      execute(data.subspan(i * impl_->n, impl_->n));
  });
}

void Plan::execute_parallel(std::span<cplx> data, ThreadPool& pool) const {
  if (data.size() != impl_->n)
    throw std::invalid_argument("fft::Plan::execute_parallel: size mismatch");
  if (impl_->n == 1) return;
  if (impl_->pow2)
    impl_->radix2_parallel(data, pool);
  else
    impl_->bluestein(data);  // Bluestein recurses into pow2 plans; keep serial
}

PlanCost Plan::cost() const {
  const double n = static_cast<double>(impl_->pow2 ? impl_->n : impl_->m);
  const double stages = n > 1 ? static_cast<double>(log2_floor(
                                    static_cast<u64>(n)))
                              : 0.0;
  PlanCost c;
  // Classic radix-2 count: 5 n log2 n flops; one read+write sweep of the
  // 16-byte complex array per stage plus the permutation pass.
  c.flops = 5.0 * n * stages;
  c.bytes = 32.0 * n * (stages + 1.0);
  if (!impl_->pow2) {
    c.flops *= 3.0;  // two forward + one inverse FFT of size m
    c.bytes *= 3.0;
  }
  return c;
}

cvec fft(std::span<const cplx> x) {
  cvec out(x.size());
  Plan(x.size(), Direction::kForward).execute(x, out);
  return out;
}

cvec ifft(std::span<const cplx> x) {
  cvec out(x.size());
  Plan(x.size(), Direction::kInverse).execute(x, out);
  return out;
}

}  // namespace cusfft::fft
