// Deterministic PRNG (xoshiro256**). The sFFT is a randomized algorithm —
// every permutation parameter sigma/tau comes from here, so experiments are
// reproducible by seed.
#pragma once

#include <cmath>
#include <cstdint>

#include "core/modmath.hpp"
#include "core/types.hpp"

namespace cusfft {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    u64 x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  u64 next_u64() {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound > 0. Debiased via rejection.
  u64 next_below(u64 bound) {
    const u64 threshold = (0 - bound) % bound;
    for (;;) {
      const u64 r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() { return (next_u64() >> 11) * 0x1.0p-53; }

  /// Standard normal via Box-Muller.
  double next_normal() {
    double u1 = next_double();
    double u2 = next_double();
    while (u1 <= 1e-300) u1 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }

  /// Random odd sigma in [1, n) — odd values are exactly the residues
  /// invertible mod a power-of-two n (Algorithm 1's co-prime loop).
  u64 next_odd_below(u64 n) {
    u64 v = next_below(n) | 1ULL;
    return v % n == 0 ? 1 : v % n;
  }

 private:
  static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 s_[4];
};

}  // namespace cusfft
