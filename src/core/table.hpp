// ASCII table / CSV emitters used by every bench binary so figure data comes
// out in one consistent, greppable format.
#pragma once

#include <string>
#include <vector>

namespace cusfft {

/// Column-oriented result table. Add a header once, then rows of cells; print
/// as aligned ASCII and/or CSV.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `prec` significant digits (printf
  /// %g — deterministic: a given (value, prec) always yields the same
  /// string, so tables diff cleanly across runs).
  static std::string num(double v, int prec = 4);

  /// Aligned, pipe-separated ASCII rendering.
  std::string to_ascii() const;

  /// RFC-4180-ish CSV rendering.
  std::string to_csv() const;

  /// Writes CSV to `path` (creating parent-less path as-is); returns success.
  bool write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cusfft
