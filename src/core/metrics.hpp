// Accuracy metrics. The paper (Section VI.B, Fig. 5(f)) reports the L1 error
// per large coefficient: (1/k) * sum_i |xhat_i - yhat_i| between the sparse
// transform's output and the dense-FFT oracle.
#pragma once

#include <cstddef>
#include <span>

#include "core/types.hpp"

namespace cusfft {

/// Expands a sparse spectrum into a dense length-n vector (zeros elsewhere).
cvec densify(const SparseSpectrum& s, std::size_t n);

/// (1/k) * sum over all i of |xhat_i - yhat_i|, where xhat is the sparse
/// result densified to length n and yhat the oracle spectrum. `k` is the
/// nominal sparsity used for normalization (paper's definition).
double l1_error_per_coeff(const SparseSpectrum& sparse,
                          std::span<const cplx> oracle, std::size_t k);

/// Largest absolute difference restricted to the recovered locations.
double max_error_at_locs(const SparseSpectrum& sparse,
                         std::span<const cplx> oracle);

/// Fraction of the `k` largest oracle coefficients whose location appears in
/// the sparse output (candidate-recall; 1.0 = all found).
double location_recall(const SparseSpectrum& sparse,
                       std::span<const cplx> oracle, std::size_t k);

}  // namespace cusfft
