// Modular arithmetic helpers used by the spectrum-permutation machinery
// (Section III step 1: sigma must be invertible mod n; Algorithm 1 computes
// ai = mod_inverse(a)).
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace cusfft {

/// Greatest common divisor (non-recursive Euclid).
u64 gcd_u64(u64 a, u64 b);

/// True iff v is a power of two (v > 0).
constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)) for v >= 1.
constexpr unsigned log2_floor(u64 v) {
  unsigned r = 0;
  while (v >>= 1) ++r;
  return r;
}

/// Smallest power of two >= v (v >= 1).
constexpr u64 next_pow2(u64 v) {
  u64 p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Largest power of two <= v (v >= 1).
constexpr u64 prev_pow2(u64 v) {
  u64 p = 1;
  while ((p << 1) <= v) p <<= 1;
  return p;
}

/// (a * b) mod m without overflow for m < 2^63 (uses 128-bit intermediate).
u64 mod_mul(u64 a, u64 b, u64 m);

/// a^e mod m.
u64 mod_pow(u64 a, u64 e, u64 m);

/// Modular inverse of a mod m via extended Euclid. Requires gcd(a, m) == 1;
/// throws std::invalid_argument otherwise.
u64 mod_inverse(u64 a, u64 m);

}  // namespace cusfft
