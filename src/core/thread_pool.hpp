// Minimal work-sharing thread pool with a blocking parallel_for. Stands in
// for OpenMP worksharing in the CPU comparators (parallel FFTW / PsFFT) and
// drives the block-parallel functional execution of cusim::Device::launch:
// the decomposition is the same static chunking `#pragma omp parallel for`
// uses.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cusfft {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of logical workers (including the calling thread).
  std::size_t size() const { return tasks_.size(); }

  /// Runs fn(begin, end) over [0, count) split into one contiguous chunk per
  /// worker (static schedule), blocking until every chunk completes. The
  /// calling thread executes chunk 0 itself. The first exception thrown by
  /// any chunk is rethrown on the calling thread after all chunks finish.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Same decomposition, but fn also receives the chunk slot in
  /// [0, size()) so callers can keep per-worker state without sharing.
  void parallel_for_indexed(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Process-wide pool (created on first use). Sized from the CUSFFT_THREADS
  /// environment variable when set (clamped to [1, 512]); otherwise to the
  /// hardware. CUSFFT_THREADS=1 forces fully serial execution everywhere the
  /// global pool is used — the reproducibility knob for 1-core CI runners.
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* fn =
        nullptr;
    std::size_t begin = 0, end = 0;
  };

  void worker_loop(std::size_t idx);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<Task> tasks_;     // one slot per worker
  std::size_t pending_ = 0;     // tasks not yet finished in this batch
  std::size_t generation_ = 0;  // bumped per parallel_for call
  std::exception_ptr error_;    // first failure in the current batch
  bool stop_ = false;
};

}  // namespace cusfft
