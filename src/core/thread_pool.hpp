// Minimal work-sharing thread pool with a blocking parallel_for. Stands in
// for OpenMP worksharing in the CPU comparators (parallel FFTW / PsFFT): the
// decomposition is the same static chunking `#pragma omp parallel for` uses.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cusfft {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of logical workers (including the calling thread).
  std::size_t size() const { return tasks_.size(); }

  /// Runs fn(begin, end) over [0, count) split into one contiguous chunk per
  /// worker (static schedule), blocking until every chunk completes. The
  /// calling thread executes chunk 0 itself.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide pool sized to the hardware (created on first use).
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t begin = 0, end = 0;
  };

  void worker_loop(std::size_t idx);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<Task> tasks_;     // one slot per worker
  std::size_t pending_ = 0;     // tasks not yet finished in this batch
  std::size_t generation_ = 0;  // bumped per parallel_for call
  bool stop_ = false;
};

}  // namespace cusfft
