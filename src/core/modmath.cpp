#include "core/modmath.hpp"

#include <stdexcept>

namespace cusfft {

u64 gcd_u64(u64 a, u64 b) {
  while (b != 0) {
    u64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

u64 mod_mul(u64 a, u64 b, u64 m) {
  return static_cast<u64>((static_cast<unsigned __int128>(a) * b) % m);
}

u64 mod_pow(u64 a, u64 e, u64 m) {
  u64 r = 1 % m;
  a %= m;
  while (e != 0) {
    if (e & 1) r = mod_mul(r, a, m);
    a = mod_mul(a, a, m);
    e >>= 1;
  }
  return r;
}

u64 mod_inverse(u64 a, u64 m) {
  if (m == 0) throw std::invalid_argument("mod_inverse: modulus is zero");
  a %= m;
  if (gcd_u64(a, m) != 1)
    throw std::invalid_argument("mod_inverse: a not coprime with m");
  // Extended Euclid on signed 128-bit to avoid overflow.
  __int128 t = 0, new_t = 1;
  __int128 r = static_cast<__int128>(m), new_r = static_cast<__int128>(a);
  while (new_r != 0) {
    __int128 q = r / new_r;
    __int128 tmp = t - q * new_t;
    t = new_t;
    new_t = tmp;
    tmp = r - q * new_r;
    r = new_r;
    new_r = tmp;
  }
  if (t < 0) t += static_cast<__int128>(m);
  return static_cast<u64>(t);
}

}  // namespace cusfft
