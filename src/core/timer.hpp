// Wall-clock timing plus a named step accumulator used to reproduce the
// paper's Figure 2 per-step profile (perm+filter / cuFFT / cutoff /
// reverse-hash / estimation).
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace cusfft {

/// Monotonic wall timer; ms() returns elapsed milliseconds since start/reset.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates wall-clock milliseconds under named steps. One instance per
/// transform execution; merged across repetitions by the bench harness.
class StepTimers {
 public:
  /// RAII scope: accumulates elapsed time into `name` on destruction.
  class Scope {
   public:
    Scope(StepTimers& owner, std::string name)
        : owner_(owner), name_(std::move(name)) {}
    ~Scope() { owner_.add(name_, t_.ms()); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    StepTimers& owner_;
    std::string name_;
    WallTimer t_;
  };

  void add(const std::string& name, double ms) { ms_[name] += ms; }
  double get(const std::string& name) const {
    auto it = ms_.find(name);
    return it == ms_.end() ? 0.0 : it->second;
  }
  const std::map<std::string, double>& all() const { return ms_; }
  double total() const {
    double s = 0;
    for (const auto& [k, v] : ms_) s += v;
    return s;
  }
  void clear() { ms_.clear(); }

 private:
  std::map<std::string, double> ms_;
};

}  // namespace cusfft
