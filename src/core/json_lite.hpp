// Minimal JSON reader for validating the profiler's exported artifacts
// (chrome-trace documents and structured capture profiles) without an
// external dependency. Full RFC-8259 value grammar, DOM representation;
// no streaming, no writer (the profiler formats its own output).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cusfft::json {

/// One parsed JSON value. Arrays/objects own their children; object keys
/// keep insertion order irrelevant (lookup by name only).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member access; returns nullptr when absent or not an object.
  const Value* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }

  /// Convenience: the member's number, or `def` when absent / wrong type.
  double number_or(const std::string& key, double def) const {
    const Value* v = find(key);
    return (v != nullptr && v->is_number()) ? v->number : def;
  }

  /// Convenience: the member's string, or `def` when absent / wrong type.
  std::string string_or(const std::string& key,
                        const std::string& def) const {
    const Value* v = find(key);
    return (v != nullptr && v->is_string()) ? v->string : def;
  }
};

/// Parses `text` as one JSON document (trailing whitespace allowed, any
/// other trailing content is an error). Returns true on success; on
/// failure fills `error` (when non-null) with a position-annotated message.
bool parse(const std::string& text, Value& out, std::string* error = nullptr);

}  // namespace cusfft::json
