#include "core/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cusfft {

void ResultTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("ResultTable: row width != header width");
  rows_.push_back(std::move(cells));
}

std::string ResultTable::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", prec, v);
  return buf;
}

std::string ResultTable::to_ascii() const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      w[c] = std::max(w[c], r[c].size());
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << (c ? " | " : "");
      os << r[c];
      os << std::string(w[c] - r[c].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto x : w) total += x;
  os << std::string(total + 3 * (w.size() - 1), '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string ResultTable::to_csv() const {
  auto esc = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c)
      os << (c ? "," : "") << esc(r[c]);
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

bool ResultTable::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

}  // namespace cusfft
