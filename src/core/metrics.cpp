#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>
#include <vector>

namespace cusfft {

cvec densify(const SparseSpectrum& s, std::size_t n) {
  cvec out(n, cplx{0.0, 0.0});
  for (const auto& c : s)
    if (c.loc < n) out[c.loc] += c.val;
  return out;
}

double l1_error_per_coeff(const SparseSpectrum& sparse,
                          std::span<const cplx> oracle, std::size_t k) {
  if (k == 0) return 0.0;
  const std::size_t n = oracle.size();
  cvec dense = densify(sparse, n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += std::abs(dense[i] - oracle[i]);
  return sum / static_cast<double>(k);
}

double max_error_at_locs(const SparseSpectrum& sparse,
                         std::span<const cplx> oracle) {
  double m = 0.0;
  for (const auto& c : sparse)
    if (c.loc < oracle.size())
      m = std::max(m, std::abs(c.val - oracle[c.loc]));
  return m;
}

double location_recall(const SparseSpectrum& sparse,
                       std::span<const cplx> oracle, std::size_t k) {
  if (k == 0) return 1.0;
  const std::size_t n = oracle.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const std::size_t kk = std::min(k, n);
  std::partial_sort(order.begin(), order.begin() + kk, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      return std::abs(oracle[a]) > std::abs(oracle[b]);
                    });
  std::unordered_set<u64> found;
  found.reserve(sparse.size() * 2);
  for (const auto& c : sparse) found.insert(c.loc);
  std::size_t hit = 0;
  for (std::size_t i = 0; i < kk; ++i)
    if (found.count(order[i])) ++hit;
  return static_cast<double>(hit) / static_cast<double>(kk);
}

}  // namespace cusfft
