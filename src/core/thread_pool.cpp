#include "core/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace cusfft {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  // Worker 0 is the calling thread; spawn the rest.
  tasks_.resize(threads);
  for (std::size_t i = 1; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t idx) {
  std::size_t seen_generation = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock lk(mu_);
      cv_work_.wait(lk, [&] {
        return stop_ || (generation_ != seen_generation &&
                         tasks_[idx].fn != nullptr);
      });
      if (stop_) return;
      seen_generation = generation_;
      task = tasks_[idx];
      tasks_[idx].fn = nullptr;
    }
    if (task.fn && task.begin < task.end) {
      try {
        (*task.fn)(idx, task.begin, task.end);
      } catch (...) {
        std::lock_guard lk(mu_);
        if (!error_) error_ = std::current_exception();
      }
    }
    {
      std::lock_guard lk(mu_);
      --pending_;
    }
    cv_done_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_for_indexed(
      count, [&fn](std::size_t, std::size_t b, std::size_t e) { fn(b, e); });
}

void ThreadPool::parallel_for_indexed(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const std::size_t nthreads = tasks_.size();
  if (count == 0) return;
  if (nthreads <= 1 || count == 1) {
    fn(0, 0, count);
    return;
  }
  const std::size_t chunk = (count + nthreads - 1) / nthreads;
  std::size_t my_end = std::min(chunk, count);
  {
    std::lock_guard lk(mu_);
    pending_ = 0;
    error_ = nullptr;
    for (std::size_t i = 1; i < nthreads; ++i) {
      const std::size_t b = std::min(i * chunk, count);
      const std::size_t e = std::min(b + chunk, count);
      if (b >= e) {
        tasks_[i].fn = nullptr;
        continue;
      }
      tasks_[i] = Task{&fn, b, e};
      ++pending_;
    }
    ++generation_;
  }
  cv_work_.notify_all();
  try {
    fn(0, 0, my_end);  // chunk 0 on the calling thread
  } catch (...) {
    std::lock_guard lk(mu_);
    if (!error_) error_ = std::current_exception();
  }
  std::unique_lock lk(mu_);
  cv_done_.wait(lk, [&] { return pending_ == 0; });
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("CUSFFT_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(std::min(v, 512L));
    }
    return std::size_t{0};  // hardware concurrency
  }());
  return pool;
}

}  // namespace cusfft
