#include "core/json_lite.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace cusfft::json {

namespace {

/// Recursive-descent parser over the whole document string.
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : s_(text), error_(error) {}

  bool run(Value& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing content after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& msg) {
    if (error_ != nullptr)
      *error_ = msg + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(const char* word, std::size_t len) {
    if (s_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= s_.size()) return fail("unexpected end of document");
    switch (s_[pos_]) {
      case 'n':
        out.kind = Value::Kind::kNull;
        return literal("null", 4);
      case 't':
        out.kind = Value::Kind::kBool;
        out.boolean = true;
        return literal("true", 4);
      case 'f':
        out.kind = Value::Kind::kBool;
        out.boolean = false;
        return literal("false", 5);
      case '"':
        out.kind = Value::Kind::kString;
        return parse_string(out.string);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_])))
      return fail("invalid number");
    // RFC 8259: the integer part is "0" or a nonzero digit followed by
    // digits — "01" is not a number.
    if (s_[pos_] == '0') {
      ++pos_;
      if (pos_ < s_.size() &&
          std::isdigit(static_cast<unsigned char>(s_[pos_])))
        return fail("leading zero in number");
    }
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_])))
        return fail("digit expected after decimal point");
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_])))
        return fail("digit expected in exponent");
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    out.kind = Value::Kind::kNumber;
    out.number = std::strtod(s_.c_str() + start, nullptr);
    if (!std::isfinite(out.number)) return fail("number out of range");
    return true;
  }

  bool parse_string(std::string& out) {
    out.clear();
    ++pos_;  // opening quote
    while (pos_ < s_.size() && s_[pos_] != '"') {
      const char c = s_[pos_];
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      if (++pos_ >= s_.size()) return fail("unfinished escape");
      switch (s_[pos_]) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 >= s_.size()) return fail("unfinished \\u escape");
          unsigned code = 0;
          for (int i = 1; i <= 4; ++i) {
            const char h = s_[pos_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad hex digit in \\u escape");
          }
          pos_ += 4;
          // UTF-8 encode (surrogate pairs unsupported: the profiler only
          // emits ASCII, so a lone surrogate is simply passed through).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool parse_array(Value& out, int depth) {
    out.kind = Value::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Value elem;
      skip_ws();
      if (!parse_value(elem, depth + 1)) return false;
      out.array.push_back(std::move(elem));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(Value& out, int depth) {
    out.kind = Value::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"')
        return fail("expected string key in object");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':')
        return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      Value val;
      if (!parse_value(val, depth + 1)) return false;
      out.object[std::move(key)] = std::move(val);
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  const std::string& s_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse(const std::string& text, Value& out, std::string* error) {
  out = Value{};
  return Parser(text, error).run(out);
}

}  // namespace cusfft::json
