// Post-processing utilities for sparse spectra: the transforms return every
// candidate that survived voting ("slightly more than k", Section V.B);
// applications typically trim, dedup, or rank them.
#pragma once

#include <cstddef>

#include "core/types.hpp"

namespace cusfft {

/// Keeps the k largest-magnitude coefficients (ties broken by location),
/// result sorted by location.
SparseSpectrum trim_top_k(SparseSpectrum s, std::size_t k);

/// Sums coefficients sharing a location; result sorted by location.
SparseSpectrum merge_duplicates(SparseSpectrum s);

/// Sorts by descending |value| (ties by location).
void sort_by_magnitude(SparseSpectrum& s);

/// Total energy sum |v|^2.
double spectrum_energy(const SparseSpectrum& s);

}  // namespace cusfft
