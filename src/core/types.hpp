// Core scalar and container aliases shared by every module.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace cusfft {

/// Complex sample type used throughout the library. The paper's data type is
/// "complex double" (16 bytes per element, see Section IV.C).
using cplx = std::complex<double>;

/// Dense complex signal / spectrum.
using cvec = std::vector<cplx>;

using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

inline constexpr double kPi = 3.141592653589793238462643383279502884;
inline constexpr double kTwoPi = 2.0 * kPi;

/// A recovered sparse Fourier coefficient: location in [0, n) and value.
struct SparseCoef {
  u64 loc = 0;
  cplx val{0.0, 0.0};
};

/// Sparse spectrum: the k large coefficients the transform recovers.
using SparseSpectrum = std::vector<SparseCoef>;

}  // namespace cusfft
