#include "core/spectrum.hpp"

#include <algorithm>
#include <cmath>

namespace cusfft {

namespace {
void sort_by_loc(SparseSpectrum& s) {
  std::sort(s.begin(), s.end(), [](const SparseCoef& a, const SparseCoef& b) {
    return a.loc < b.loc;
  });
}
}  // namespace

SparseSpectrum trim_top_k(SparseSpectrum s, std::size_t k) {
  if (s.size() > k) {
    std::nth_element(s.begin(), s.begin() + (k - (k ? 1 : 0)), s.end(),
                     [](const SparseCoef& a, const SparseCoef& b) {
                       const double na = std::norm(a.val);
                       const double nb = std::norm(b.val);
                       return na != nb ? na > nb : a.loc < b.loc;
                     });
    s.resize(k);
  }
  sort_by_loc(s);
  return s;
}

SparseSpectrum merge_duplicates(SparseSpectrum s) {
  sort_by_loc(s);
  SparseSpectrum out;
  out.reserve(s.size());
  for (const auto& c : s) {
    if (!out.empty() && out.back().loc == c.loc)
      out.back().val += c.val;
    else
      out.push_back(c);
  }
  return out;
}

void sort_by_magnitude(SparseSpectrum& s) {
  std::sort(s.begin(), s.end(), [](const SparseCoef& a, const SparseCoef& b) {
    const double na = std::norm(a.val);
    const double nb = std::norm(b.val);
    return na != nb ? na > nb : a.loc < b.loc;
  });
}

double spectrum_energy(const SparseSpectrum& s) {
  double e = 0;
  for (const auto& c : s) e += std::norm(c.val);
  return e;
}

}  // namespace cusfft
