#include "custhrust/reduce.hpp"

#include <algorithm>
#include <complex>

namespace cusfft::custhrust {

namespace {

/// Tree-reduces `vals` (double) in place with `combine`; returns the root.
template <typename Combine>
double tree_reduce(cusim::Device& dev, cusim::DeviceBuffer<double>& vals,
                   cusim::StreamId stream, Combine combine) {
  using cusim::LaunchCfg;
  using cusim::ThreadCtx;
  std::size_t active = vals.size();
  while (active > 1) {
    const std::size_t half = (active + 1) / 2;
    dev.launch(LaunchCfg::for_elements("reduce_pass", half, 256, stream)
                   .cache(active),
               [&, active, half](ThreadCtx& t) {
                 const u64 i = t.global_id();
                 if (i >= half) return;
                 const std::size_t j = i + half;
                 if (j >= active) return;  // odd tail carries through
                 const double a = vals.load(t, i);
                 const double b = vals.load(t, j);
                 t.add_flops(1);
                 vals.store(t, i, combine(a, b));
               });
    active = half;
  }
  return vals.host()[0];
}

template <typename Map>
cusim::DeviceBuffer<double> map_to_double(cusim::Device& dev,
                                          const cusim::DeviceBuffer<cplx>& in,
                                          cusim::StreamId stream, Map map) {
  using cusim::LaunchCfg;
  using cusim::ThreadCtx;
  cusim::DeviceBuffer<double> out(in.size());
  dev.launch(LaunchCfg::for_elements("reduce_map", in.size(), 256, stream)
                 .cache(in.size()),
             [&](ThreadCtx& t) {
               const u64 i = t.global_id();
               if (i >= in.size()) return;
               t.add_flops(3);
               out.store(t, i, map(in.load(t, i)));
             });
  return out;
}

}  // namespace

double reduce_norm2(cusim::Device& dev, const cusim::DeviceBuffer<cplx>& data,
                    cusim::StreamId stream) {
  if (data.empty()) return 0.0;
  auto vals = map_to_double(dev, data, stream,
                            [](const cplx& v) { return std::norm(v); });
  return tree_reduce(dev, vals, stream,
                     [](double a, double b) { return a + b; });
}

double reduce_max_abs(cusim::Device& dev,
                      const cusim::DeviceBuffer<cplx>& data,
                      cusim::StreamId stream) {
  if (data.empty()) return 0.0;
  auto vals = map_to_double(dev, data, stream,
                            [](const cplx& v) { return std::abs(v); });
  return tree_reduce(dev, vals, stream,
                     [](double a, double b) { return std::max(a, b); });
}

}  // namespace cusfft::custhrust
