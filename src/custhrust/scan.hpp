// Device-level exclusive prefix sum (Blelloch work-efficient scan): the
// Thrust-style building block the radix sort's digit offsets use. Runs as
// 2*log2(n) kernel launches of one-thread-per-active-pair.
#pragma once

#include "cusim/device.hpp"

namespace cusfft::custhrust {

/// In-place exclusive scan of `data` (sum). Size may be any value >= 1; the
/// scan pads virtually to the next power of two.
void exclusive_scan(cusim::Device& dev, cusim::DeviceBuffer<u64>& data,
                    cusim::StreamId stream = 0);

/// In-place inclusive prefix sum (exclusive scan + an add-back pass).
void inclusive_scan(cusim::Device& dev, cusim::DeviceBuffer<u64>& data,
                    cusim::StreamId stream = 0);

}  // namespace cusfft::custhrust
