// Device-level sort_by_key — the Thrust primitive behind the paper's
// baseline "sort & select" cutoff (Algorithm 3). Two algorithms:
//
//  * kRadix   — LSD radix sort over a monotone u64 mapping of the double
//               keys (8-bit digits, per-block histograms + Blelloch scan +
//               stable scatter). This is what Thrust actually runs for
//               arithmetic keys, so the baseline's modeled cost matches the
//               paper's baseline.
//  * kBitonic — classic bitonic network (Satish et al., the paper's
//               reference [26]); O(n log^2 n) global passes. Kept for
//               cross-checking and the sort ablation bench.
#pragma once

#include "core/types.hpp"
#include "cusim/device.hpp"

namespace cusfft::custhrust {

enum class SortAlgo { kRadix, kBitonic };

/// Sorts `keys` descending, permuting `vals` alongside. keys/vals must be
/// the same length. Stable for kRadix.
void sort_pairs_desc(cusim::Device& dev, cusim::DeviceBuffer<double>& keys,
                     cusim::DeviceBuffer<u32>& vals,
                     SortAlgo algo = SortAlgo::kRadix,
                     cusim::StreamId stream = 0);

/// Monotone (order-preserving) mapping double -> u64 used by the radix sort;
/// exposed for tests.
u64 double_to_ordered_u64(double d);

}  // namespace cusfft::custhrust
