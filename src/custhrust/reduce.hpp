// Device-level reductions (Thrust `reduce` equivalents) as pairwise-tree
// kernel passes.
#pragma once

#include "core/types.hpp"
#include "cusim/device.hpp"

namespace cusfft::custhrust {

/// Sum of |x|^2 over a complex buffer (used to derive the fast-selection
/// threshold from the bucket RMS; Section V.B).
double reduce_norm2(cusim::Device& dev,
                    const cusim::DeviceBuffer<cplx>& data,
                    cusim::StreamId stream = 0);

/// Max |x| over a complex buffer.
double reduce_max_abs(cusim::Device& dev,
                      const cusim::DeviceBuffer<cplx>& data,
                      cusim::StreamId stream = 0);

}  // namespace cusfft::custhrust
