#include "custhrust/sort.hpp"

#include <bit>
#include <limits>
#include <stdexcept>

#include "core/modmath.hpp"
#include "custhrust/scan.hpp"

namespace cusfft::custhrust {

using cusim::Device;
using cusim::DeviceBuffer;
using cusim::LaunchCfg;
using cusim::StreamId;
using cusim::ThreadCtx;

u64 double_to_ordered_u64(double d) {
  u64 bits = std::bit_cast<u64>(d);
  // Flip so that the full double range orders as unsigned integers.
  bits = (bits & 0x8000000000000000ULL) ? ~bits
                                        : bits | 0x8000000000000000ULL;
  return bits;
}

namespace {

constexpr unsigned kDigitBits = 8;
constexpr unsigned kDigits = 1u << kDigitBits;
constexpr unsigned kPasses = 64 / kDigitBits;
constexpr std::size_t kBlock = 256;

void radix_sort(Device& dev, DeviceBuffer<double>& keys,
                DeviceBuffer<u32>& vals, StreamId stream) {
  const std::size_t n = keys.size();
  const std::size_t nb = (n + kBlock - 1) / kBlock;

  // Descending sort == ascending on the inverted ordered mapping.
  DeviceBuffer<u64> mapped(n), mapped_tmp(n);
  DeviceBuffer<double> keys_tmp(n);
  DeviceBuffer<u32> vals_tmp(n);
  dev.launch(LaunchCfg::for_elements("radix_map", n, kBlock, stream).cache(n),
             [&](ThreadCtx& t) {
               const u64 i = t.global_id();
               if (i >= n) return;
               mapped.store(t, i, ~double_to_ordered_u64(keys.load(t, i)));
             });

  DeviceBuffer<u64> hist(kDigits * nb);
  auto* src_m = &mapped;
  auto* dst_m = &mapped_tmp;
  auto* src_k = &keys;
  auto* dst_k = &keys_tmp;
  auto* src_v = &vals;
  auto* dst_v = &vals_tmp;

  for (unsigned pass = 0; pass < kPasses; ++pass) {
    const unsigned shift = pass * kDigitBits;

    dev.launch(LaunchCfg::for_elements("radix_clear", hist.size(), kBlock,
                                       stream)
                   .cache(hist.size()),
               [&](ThreadCtx& t) {
                 const u64 i = t.global_id();
                 if (i < hist.size()) hist.store(t, i, 0);
               });

    // Per-block digit histograms, digit-major layout so one exclusive scan
    // yields the (digit, block) scatter bases directly.
    dev.launch(LaunchCfg::for_elements("radix_histogram", n, kBlock, stream),
               [&, shift](ThreadCtx& t) {
                 const u64 i = t.global_id();
                 if (i >= n) return;
                 const u64 digit = (src_m->load(t, i) >> shift) &
                                   (kDigits - 1);
                 hist.atomic_add(t, digit * nb + t.block_idx, u64{1});
               });

    exclusive_scan(dev, hist, stream);

    // Stable scatter: the simulator executes threads in order, so the
    // running atomic counter reproduces the stable intra-block rank a real
    // implementation derives from a per-block scan of equivalent cost.
    dev.launch(LaunchCfg::for_elements("radix_scatter", n, kBlock, stream),
               [&, shift](ThreadCtx& t) {
                 const u64 i = t.global_id();
                 if (i >= n) return;
                 const u64 m = src_m->load(t, i);
                 const u64 digit = (m >> shift) & (kDigits - 1);
                 const u64 pos =
                     hist.atomic_add(t, digit * nb + t.block_idx, u64{1});
                 dst_m->store(t, pos, m);
                 dst_k->store(t, pos, src_k->load(t, i));
                 dst_v->store(t, pos, src_v->load(t, i));
               });

    std::swap(src_m, dst_m);
    std::swap(src_k, dst_k);
    std::swap(src_v, dst_v);
  }
  // kPasses is even, so the final data sits back in the caller's buffers.
  static_assert(kPasses % 2 == 0);
}

void bitonic_sort(Device& dev, DeviceBuffer<double>& keys,
                  DeviceBuffer<u32>& vals, StreamId stream) {
  const std::size_t n = keys.size();
  const std::size_t m = next_pow2(n);

  // Pad with -inf so padding sinks to the tail of a descending sort.
  DeviceBuffer<double> k(m);
  DeviceBuffer<u32> v(m);
  dev.launch(
      LaunchCfg::for_elements("bitonic_pad", m, kBlock, stream).cache(n),
             [&](ThreadCtx& t) {
               const u64 i = t.global_id();
               if (i >= m) return;
               k.store(t, i,
                       i < n ? keys.load(t, i)
                             : -std::numeric_limits<double>::infinity());
               v.store(t, i, i < n ? vals.load(t, i) : u32{0});
             });

  for (std::size_t kk = 2; kk <= m; kk <<= 1) {
    for (std::size_t j = kk >> 1; j >= 1; j >>= 1) {
      dev.launch(LaunchCfg::for_elements("bitonic_step", m, kBlock, stream),
                 [&, kk, j](ThreadCtx& t) {
                   const u64 i = t.global_id();
                   if (i >= m) return;
                   const u64 partner = i ^ j;
                   if (partner <= i) return;
                   const bool descending = (i & kk) == 0;
                   const double a = k.load(t, i);
                   const double b = k.load(t, partner);
                   const bool swap_needed = descending ? (a < b) : (a > b);
                   if (swap_needed) {
                     k.store(t, i, b);
                     k.store(t, partner, a);
                     const u32 va = v.load(t, i);
                     const u32 vb = v.load(t, partner);
                     v.store(t, i, vb);
                     v.store(t, partner, va);
                   }
                 });
    }
  }

  dev.launch(
      LaunchCfg::for_elements("bitonic_unpad", n, kBlock, stream).cache(n),
             [&](ThreadCtx& t) {
               const u64 i = t.global_id();
               if (i >= n) return;
               keys.store(t, i, k.load(t, i));
               vals.store(t, i, v.load(t, i));
             });
}

}  // namespace

void sort_pairs_desc(Device& dev, DeviceBuffer<double>& keys,
                     DeviceBuffer<u32>& vals, SortAlgo algo,
                     StreamId stream) {
  if (keys.size() != vals.size())
    throw std::invalid_argument("sort_pairs_desc: size mismatch");
  if (keys.size() <= 1) return;
  if (algo == SortAlgo::kRadix)
    radix_sort(dev, keys, vals, stream);
  else
    bitonic_sort(dev, keys, vals, stream);
}

}  // namespace cusfft::custhrust
