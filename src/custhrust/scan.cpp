#include "custhrust/scan.hpp"

#include "core/modmath.hpp"

namespace cusfft::custhrust {

void exclusive_scan(cusim::Device& dev, cusim::DeviceBuffer<u64>& data,
                    cusim::StreamId stream) {
  using cusim::DeviceBuffer;
  using cusim::LaunchCfg;
  using cusim::ThreadCtx;
  const std::size_t n = data.size();
  if (n <= 1) {
    if (n == 1) data.host()[0] = 0;
    return;
  }

  // Pad to a power of two with explicit zeros so the Blelloch tree needs no
  // boundary cases (real implementations either pad or special-case; the
  // pad copy is honest, counted work).
  const std::size_t m = next_pow2(n);
  DeviceBuffer<u64> work(m);
  dev.launch(LaunchCfg::for_elements("scan_pad", m, 256, stream).cache(n),
             [&](ThreadCtx& t) {
               const u64 i = t.global_id();
               if (i >= m) return;
               work.store(t, i, i < n ? data.load(t, i) : u64{0});
             });

  // Upsweep: combine pairs (stride d) into the right node.
  for (std::size_t d = 1; d < m; d <<= 1) {
    const std::size_t pairs = m / (2 * d);
    dev.launch(LaunchCfg::for_elements("scan_upsweep", pairs, 256, stream)
                   .cache((static_cast<u64>(d) << 32) | pairs),
               [&, d, pairs](ThreadCtx& t) {
                 const u64 p = t.global_id();
                 if (p >= pairs) return;
                 const std::size_t left = 2 * d * p + d - 1;
                 const std::size_t right = 2 * d * p + 2 * d - 1;
                 const u64 sum = work.load(t, left) + work.load(t, right);
                 work.store(t, right, sum);
               });
  }

  dev.launch(
      LaunchCfg::for_elements("scan_setroot", 1, 1, stream).cache(m),
             [&](ThreadCtx& t) { work.store(t, m - 1, 0); });

  // Downsweep: push prefixes back down the tree.
  for (std::size_t d = m / 2; d >= 1; d >>= 1) {
    const std::size_t pairs = m / (2 * d);
    dev.launch(LaunchCfg::for_elements("scan_downsweep", pairs, 256, stream)
                   .cache((static_cast<u64>(d) << 32) | pairs),
               [&, d, pairs](ThreadCtx& t) {
                 const u64 p = t.global_id();
                 if (p >= pairs) return;
                 const std::size_t left = 2 * d * p + d - 1;
                 const std::size_t right = 2 * d * p + 2 * d - 1;
                 const u64 l = work.load(t, left);
                 const u64 r = work.load(t, right);
                 work.store(t, left, r);
                 work.store(t, right, l + r);
               });
  }

  dev.launch(LaunchCfg::for_elements("scan_unpad", n, 256, stream).cache(n),
             [&](ThreadCtx& t) {
               const u64 i = t.global_id();
               if (i < n) data.store(t, i, work.load(t, i));
             });
}

}  // namespace cusfft::custhrust

namespace cusfft::custhrust {

void inclusive_scan(cusim::Device& dev, cusim::DeviceBuffer<u64>& data,
                    cusim::StreamId stream) {
  using cusim::LaunchCfg;
  using cusim::ThreadCtx;
  const std::size_t n = data.size();
  if (n == 0) return;
  // Keep the original values, run the exclusive scan, then add them back.
  cusim::DeviceBuffer<u64> orig(n);
  dev.launch(LaunchCfg::for_elements("scan_keep", n, 256, stream).cache(n),
             [&](ThreadCtx& t) {
               const u64 i = t.global_id();
               if (i < n) orig.store(t, i, data.load(t, i));
             });
  exclusive_scan(dev, data, stream);
  dev.launch(
      LaunchCfg::for_elements("scan_addback", n, 256, stream).cache(n),
             [&](ThreadCtx& t) {
               const u64 i = t.global_id();
               if (i < n)
                 data.store(t, i, data.load(t, i) + orig.load(t, i));
             });
}

}  // namespace cusfft::custhrust
