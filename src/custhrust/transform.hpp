// Elementwise device primitives (Thrust `transform` / `gather` /
// `count_if` equivalents). Header-only: the functor is inlined into the
// simulated kernel exactly like a Thrust template instantiation.
#pragma once

#include "cusim/device.hpp"

namespace cusfft::custhrust {

/// out[i] = fn(in[i]) for i in [0, n). in and out may be the same buffer.
template <typename T, typename U, typename Fn>
void transform(cusim::Device& dev, const cusim::DeviceBuffer<T>& in,
               cusim::DeviceBuffer<U>& out, Fn fn,
               cusim::StreamId stream = 0) {
  if (in.size() != out.size())
    throw std::invalid_argument("custhrust::transform: size mismatch");
  const std::size_t n = in.size();
  dev.launch(cusim::LaunchCfg::for_elements("transform", n, 256, stream),
             [&, fn](cusim::ThreadCtx& t) {
               const u64 i = t.global_id();
               if (i >= n) return;
               out.store(t, i, fn(in.load(t, i)));
             });
}

/// out[i] = data[indices[i]] — the scattered read pattern whose cost the
/// coalescing tracer quantifies.
template <typename T>
void gather(cusim::Device& dev, const cusim::DeviceBuffer<u32>& indices,
            const cusim::DeviceBuffer<T>& data, cusim::DeviceBuffer<T>& out,
            cusim::StreamId stream = 0) {
  if (indices.size() != out.size())
    throw std::invalid_argument("custhrust::gather: size mismatch");
  const std::size_t n = indices.size();
  dev.launch(cusim::LaunchCfg::for_elements("gather", n, 256, stream),
             [&](cusim::ThreadCtx& t) {
               const u64 i = t.global_id();
               if (i >= n) return;
               out.store(t, i, data.load(t, indices.load(t, i)));
             });
}

/// Number of elements satisfying pred (single atomic counter).
template <typename T, typename Pred>
std::size_t count_if(cusim::Device& dev, const cusim::DeviceBuffer<T>& in,
                     Pred pred, cusim::StreamId stream = 0) {
  cusim::DeviceBuffer<u64> counter(1);
  const std::size_t n = in.size();
  dev.launch(cusim::LaunchCfg::for_elements("count_if", n, 256, stream),
             [&, pred](cusim::ThreadCtx& t) {
               const u64 i = t.global_id();
               if (i >= n) return;
               if (pred(in.load(t, i))) counter.atomic_add(t, 0, u64{1});
             });
  return static_cast<std::size_t>(counter.host()[0]);
}

}  // namespace cusfft::custhrust
