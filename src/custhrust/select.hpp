// The paper's fast k-selection (Section V.B, Algorithm 6): one pass, one
// thread per bucket, keep indices whose magnitude clears a threshold chosen
// "in the same order as the small noise coefficients". We derive that
// threshold on-device as beta x RMS of the bucket magnitudes (linear-time,
// like the selection itself).
#pragma once

#include <vector>

#include "core/types.hpp"
#include "cusim/device.hpp"

namespace cusfft::custhrust {

struct SelectResult {
  std::vector<u32> indices;  // bucket indices that cleared the threshold
  double threshold = 0.0;    // the derived magnitude threshold
};

/// Algorithm 6. `beta` scales the RMS-derived threshold (default 1.0);
/// returns at most `max_out` indices (0 = unlimited). The result order is
/// the simulator's thread order — like the GPU original, no order guarantee.
SelectResult threshold_select(cusim::Device& dev,
                              const cusim::DeviceBuffer<cplx>& buckets,
                              double beta = 1.0, std::size_t max_out = 0,
                              cusim::StreamId stream = 0);

}  // namespace cusfft::custhrust
