#include "custhrust/select.hpp"

#include <cmath>

#include "custhrust/reduce.hpp"

namespace cusfft::custhrust {

using cusim::DeviceBuffer;
using cusim::LaunchCfg;
using cusim::ThreadCtx;

SelectResult threshold_select(cusim::Device& dev,
                              const DeviceBuffer<cplx>& buckets, double beta,
                              std::size_t max_out, cusim::StreamId stream) {
  SelectResult out;
  const std::size_t B = buckets.size();
  if (B == 0) return out;
  if (max_out == 0) max_out = B;

  const double rms = std::sqrt(reduce_norm2(dev, buckets, stream) /
                               static_cast<double>(B));
  out.threshold = beta * rms;
  const double thresh2 = out.threshold * out.threshold;

  DeviceBuffer<u32> count(1);
  DeviceBuffer<u32> selected(B);
  dev.launch(LaunchCfg::for_elements("fast_select", B, 256, stream),
             [&, thresh2](ThreadCtx& t) {
               const u64 tid = t.global_id();
               if (tid >= B) return;
               const cplx v = buckets.load(t, tid);
               t.add_flops(3);
               if (std::norm(v) >= thresh2) {
                 const u32 slot = count.atomic_add(t, 0, u32{1});
                 if (slot < selected.size())
                   selected.store(t, slot, static_cast<u32>(tid));
               }
             });

  const std::size_t found =
      std::min<std::size_t>(count.host()[0], std::min(B, max_out));
  out.indices.assign(selected.host().begin(),
                     selected.host().begin() + found);
  return out;
}

}  // namespace cusfft::custhrust
