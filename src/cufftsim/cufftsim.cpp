#include "cufftsim/cufftsim.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/modmath.hpp"

namespace cusfft::cufftsim {

using cusim::DeviceBuffer;
using cusim::LaunchCfg;
using cusim::StreamId;
using cusim::ThreadCtx;

namespace {

/// Greedy pass plan: radix 8 while 3 stages remain, then 4, then 2.
std::vector<unsigned> pass_radices(unsigned logn) {
  std::vector<unsigned> r;
  while (logn >= 3) {
    r.push_back(8);
    logn -= 3;
  }
  if (logn == 2) r.push_back(4);
  if (logn == 1) r.push_back(2);
  return r;
}

}  // namespace

struct Plan::Impl {
  cusim::Device* dev = nullptr;
  std::size_t n = 0;
  std::size_t batch = 1;
  std::vector<unsigned> radices;
  DeviceBuffer<cplx> work;

  void stage(DeviceBuffer<cplx>& src, DeviceBuffer<cplx>& dst,
             std::size_t Ns, unsigned R, double sign, StreamId stream) {
    const std::size_t per = n / R;          // threads per transform
    const std::size_t total = batch * per;  // batched into one launch
    // Small-radix DFT matrix exp(sign*2*pi*i*q*r/R), computed once per pass.
    std::array<cplx, 64> dftm{};
    for (unsigned q = 0; q < R; ++q)
      for (unsigned r = 0; r < R; ++r) {
        const double ang = sign * kTwoPi * q * r / R;
        dftm[q * R + r] = cplx{std::cos(ang), std::sin(ang)};
      }

    auto cfg = LaunchCfg::for_elements("cufft_stage", total, 256, stream);
    // Addresses depend on the stage geometry only: Ns (stride layout), R
    // (loads per thread), per (transform width; batch follows from the
    // launch shape). The twiddle/DFT values never touch the trace.
    cfg.cache((static_cast<u64>(Ns) << 34) |
              (static_cast<u64>(per) << 4) | R);
    dev->launch(cfg, [&, Ns, R, sign, per, total, dftm](ThreadCtx& t) {
      const u64 tid = t.global_id();
      if (tid >= total) return;
      const std::size_t b = tid / per;
      const std::size_t t0 = tid % per;
      const std::size_t k = t0 % Ns;
      const std::size_t j = (t0 / Ns) * (Ns * R) + k;
      const std::size_t base = b * n;

      // Load the R strided inputs and apply the stage twiddle w^r,
      // w = exp(sign*2*pi*i*k/(Ns*R)); sincos computed in-kernel as cuFFT
      // does for large sizes.
      const double ang = sign * kTwoPi * static_cast<double>(k) /
                         static_cast<double>(Ns * R);
      const cplx w{std::cos(ang), std::sin(ang)};
      t.add_flops(20);
      cplx a[8];
      cplx wr{1.0, 0.0};
      for (unsigned r = 0; r < R; ++r) {
        a[r] = src.load(t, base + t0 + r * per) * wr;
        wr *= w;
        t.add_flops(12);
      }
      // Direct R-point DFT (register-resident on a real GPU).
      // When Ns is smaller than a warp the natural output stride scatters
      // across segments; real GPU FFTs stage such stages through shared
      // memory and emit a dense burst — model exactly that.
      const bool staged = Ns < 32;
      // The staged warp's burst: for store slot q, the 32 lanes emit
      // consecutive addresses starting at the warp's output window.
      const std::size_t lane = tid % 32;
      const std::size_t warp_out = (t0 - std::min(lane, t0)) * R;
      for (unsigned q = 0; q < R; ++q) {
        cplx acc{0.0, 0.0};
        for (unsigned r = 0; r < R; ++r) acc += a[r] * dftm[q * R + r];
        t.add_flops(8.0 * R);
        if (staged) {
          const std::size_t slot =
              std::min(base + warp_out + q * 32 + lane, dst.size() - 1);
          dst.store_staged(t, base + j + q * Ns, slot, acc);
        } else {
          dst.store(t, base + j + q * Ns, acc);
        }
      }
    });
  }
};

Plan::Plan(cusim::Device& dev, std::size_t n, std::size_t batch)
    : impl_(std::make_unique<Impl>()) {
  if (!is_pow2(n)) throw std::invalid_argument("cufftsim: n must be 2^m");
  if (batch == 0) throw std::invalid_argument("cufftsim: batch must be >= 1");
  impl_->dev = &dev;
  impl_->n = n;
  impl_->batch = batch;
  impl_->radices = pass_radices(log2_floor(n));
  impl_->work = DeviceBuffer<cplx>(batch * n);
}

Plan::~Plan() = default;
Plan::Plan(Plan&&) noexcept = default;
Plan& Plan::operator=(Plan&&) noexcept = default;

std::size_t Plan::size() const { return impl_->n; }
std::size_t Plan::batch() const { return impl_->batch; }
std::size_t Plan::passes() const { return impl_->radices.size(); }

void Plan::execute(DeviceBuffer<cplx>& data, Direction dir,
                   StreamId stream) {
  if (data.size() != impl_->batch * impl_->n)
    throw std::invalid_argument("cufftsim::execute: size mismatch");
  if (impl_->n == 1) return;
  const double sign = dir == Direction::kForward ? -1.0 : 1.0;

  DeviceBuffer<cplx>* bufs[2] = {&data, &impl_->work};
  unsigned cur = 0;
  std::size_t Ns = 1;
  for (unsigned R : impl_->radices) {
    impl_->stage(*bufs[cur], *bufs[1 - cur], Ns, R, sign, stream);
    cur = 1 - cur;
    Ns *= R;
  }
  if (cur != 0) {
    // Result landed in the work buffer; one coalesced copy back (cuFFT
    // also pays an extra pass when the pass count is odd).
    const std::size_t total = data.size();
    impl_->dev->launch(
        LaunchCfg::for_elements("cufft_copyback", total, 256, stream)
            .cache(total),
        [&](ThreadCtx& t) {
          const u64 i = t.global_id();
          if (i < total) data.store(t, i, impl_->work.load(t, i));
        });
  }
}

}  // namespace cusfft::cufftsim
