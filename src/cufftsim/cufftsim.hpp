// cuFFT stand-in: a planned, batched Stockham autosort FFT executing as
// simulator kernels (DESIGN.md §1). Mirrors the cuFFT API surface the paper
// uses: plan once for (n, batch), execute many times, batched mode shares
// twiddle factors across the batch (the Step-3 optimization). Like cuFFT,
// transforms are unnormalized in both directions.
//
// Each pass combines radix-8 (falling back to radix-4/2 for the remaining
// stages), so pass count — and therefore modeled DRAM traffic — matches the
// multi-pass structure of a real large-size cuFFT rather than a naive
// radix-2 sweep.
#pragma once

#include <cstddef>
#include <memory>

#include "core/types.hpp"
#include "cusim/device.hpp"

namespace cusfft::cufftsim {

enum class Direction { kForward, kInverse };

class Plan {
 public:
  /// Plans `batch` transforms of length n (power of two) on `dev`.
  /// Allocates one ping-pong work buffer of batch*n complex values and the
  /// shared twiddle table.
  Plan(cusim::Device& dev, std::size_t n, std::size_t batch = 1);
  ~Plan();
  Plan(Plan&&) noexcept;
  Plan& operator=(Plan&&) noexcept;
  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;

  std::size_t size() const;
  std::size_t batch() const;

  /// In-place batched transform of `data` (size batch*n, transforms laid
  /// out back to back), queued on `stream`.
  void execute(cusim::DeviceBuffer<cplx>& data, Direction dir,
               cusim::StreamId stream = 0);

  /// Number of device passes one execute() performs (for tests/benches).
  std::size_t passes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cusfft::cufftsim
