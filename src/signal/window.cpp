#include "signal/window.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fft/fft.hpp"

namespace cusfft::signal {

double cheb_poly(unsigned m, double x) {
  if (std::abs(x) <= 1.0) return std::cos(m * std::acos(x));
  // |x| > 1: T_m(x) = cosh(m*acosh(|x|)) with sign for negative x, odd m.
  const double v = std::cosh(m * std::acosh(std::abs(x)));
  return (x < 0.0 && (m & 1)) ? -v : v;
}

namespace {

void check_window_args(double lobefrac, double tolerance, const char* who) {
  if (lobefrac <= 0.0 || lobefrac >= 0.5)
    throw std::invalid_argument(std::string(who) + ": lobefrac in (0,0.5)");
  if (tolerance <= 0.0 || tolerance >= 1.0)
    throw std::invalid_argument(std::string(who) + ": tolerance in (0,1)");
}

std::size_t cheb_length(double lobefrac, double tolerance) {
  std::size_t w = static_cast<std::size_t>(
      (1.0 / kPi) * (1.0 / lobefrac) * std::acosh(1.0 / tolerance));
  if (w < 3) w = 3;
  if (!(w % 2)) --w;  // odd length keeps the window symmetric about a tap
  return w;
}

std::size_t gauss_length(double lobefrac, double tolerance) {
  const double root = std::sqrt(2.0 * std::log(1.0 / tolerance));
  const double sigma_t = root / (kTwoPi * lobefrac);
  std::size_t w = 2 * static_cast<std::size_t>(std::ceil(sigma_t * root)) + 1;
  if (w < 3) w = 3;
  return w;
}

/// Kaiser design: attenuation A = -20 log10(tolerance); the empirical
/// length formula N = (A - 8) / (2.285 * transition width in radians).
double kaiser_attenuation(double tolerance) {
  return -20.0 * std::log10(tolerance);
}

std::size_t kaiser_length(double lobefrac, double tolerance) {
  const double A = kaiser_attenuation(tolerance);
  const double dw = kTwoPi * lobefrac;
  std::size_t w =
      static_cast<std::size_t>(std::ceil((A - 8.0) / (2.285 * dw))) + 1;
  if (w < 3) w = 3;
  if (!(w % 2)) ++w;
  return w;
}

}  // namespace

std::size_t window_length(WindowKind kind, double lobefrac,
                          double tolerance) {
  check_window_args(lobefrac, tolerance, "window_length");
  switch (kind) {
    case WindowKind::kDolphChebyshev:
      return cheb_length(lobefrac, tolerance);
    case WindowKind::kGaussian:
      return gauss_length(lobefrac, tolerance);
    case WindowKind::kKaiser:
      return kaiser_length(lobefrac, tolerance);
  }
  throw std::invalid_argument("window_length: bad kind");
}

double bessel_i0(double x) {
  // Power series sum_m (x/2)^{2m} / (m!)^2 — converges fast for the
  // argument range Kaiser design uses.
  const double half2 = 0.25 * x * x;
  double term = 1.0, sum = 1.0;
  for (int m = 1; m < 64; ++m) {
    term *= half2 / (static_cast<double>(m) * static_cast<double>(m));
    sum += term;
    if (term < sum * 1e-18) break;
  }
  return sum;
}

std::vector<double> kaiser_window(double lobefrac, double tolerance) {
  check_window_args(lobefrac, tolerance, "kaiser_window");
  const double A = kaiser_attenuation(tolerance);
  double beta = 0.0;
  if (A > 50.0)
    beta = 0.1102 * (A - 8.7);
  else if (A > 21.0)
    beta = 0.5842 * std::pow(A - 21.0, 0.4) + 0.07886 * (A - 21.0);
  const std::size_t w = kaiser_length(lobefrac, tolerance);
  std::vector<double> out(w);
  const double denom = bessel_i0(beta);
  const double half = static_cast<double>(w - 1) / 2.0;
  for (std::size_t i = 0; i < w; ++i) {
    const double r = (static_cast<double>(i) - half) / half;
    out[i] = bessel_i0(beta * std::sqrt(std::max(0.0, 1.0 - r * r))) / denom;
  }
  return out;
}

std::vector<double> dolph_chebyshev_window(double lobefrac, double tolerance) {
  check_window_args(lobefrac, tolerance, "dolph_chebyshev_window");
  const std::size_t w = cheb_length(lobefrac, tolerance);
  // Frequency samples of the Dolph-Chebyshev window (real, even in m).
  const double t0 = std::cosh(std::acosh(1.0 / tolerance) /
                              static_cast<double>(w - 1));
  cvec freq(w);
  for (std::size_t m = 0; m < w; ++m) {
    freq[m] = cheb_poly(static_cast<unsigned>(w - 1),
                        t0 * std::cos(kPi * static_cast<double>(m) /
                                      static_cast<double>(w))) *
              tolerance;
  }
  // Inverse transform -> time taps (real, centered at 0 with wraparound);
  // rotate by w/2 to put the peak mid-array.
  cvec time = fft::ifft(freq);
  std::vector<double> out(w);
  for (std::size_t i = 0; i < w; ++i)
    out[i] = time[(i + w - w / 2) % w].real();
  const double peak = *std::max_element(out.begin(), out.end());
  if (peak > 0.0)
    for (auto& v : out) v /= peak;
  return out;
}

std::vector<double> gaussian_window(double lobefrac, double tolerance) {
  check_window_args(lobefrac, tolerance, "gaussian_window");
  // Frequency response exp(-xi^2/(2 sigma_f^2)) reaches `tolerance` at
  // xi = lobefrac (as a fraction of n); the dual time std follows from the
  // Fourier pair of Gaussians.
  const double root = std::sqrt(2.0 * std::log(1.0 / tolerance));
  const double sigma_t = root / (kTwoPi * lobefrac);
  const std::size_t w = gauss_length(lobefrac, tolerance);
  std::vector<double> out(w);
  const double c = static_cast<double>(w / 2);
  for (std::size_t i = 0; i < w; ++i) {
    const double d = (static_cast<double>(i) - c) / sigma_t;
    out[i] = std::exp(-0.5 * d * d);
  }
  return out;
}

std::vector<double> make_window(WindowKind kind, double lobefrac,
                                double tolerance) {
  switch (kind) {
    case WindowKind::kDolphChebyshev:
      return dolph_chebyshev_window(lobefrac, tolerance);
    case WindowKind::kGaussian:
      return gaussian_window(lobefrac, tolerance);
    case WindowKind::kKaiser:
      return kaiser_window(lobefrac, tolerance);
  }
  throw std::invalid_argument("make_window: bad kind");
}

}  // namespace cusfft::signal
