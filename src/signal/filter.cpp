#include "signal/filter.hpp"

#include <algorithm>
#include <cmath>
#include <compare>
#include <map>
#include <mutex>
#include <stdexcept>

#include "core/modmath.hpp"
#include "fft/fft.hpp"

namespace cusfft::signal {

namespace {
void check_filter_args(std::size_t n, std::size_t B) {
  if (!is_pow2(n)) throw std::invalid_argument("make_flat_filter: n not 2^m");
  if (!is_pow2(B) || B == 0 || B > n)
    throw std::invalid_argument("make_flat_filter: B must be 2^m, <= n");
}
}  // namespace

std::pair<std::size_t, std::size_t> flat_filter_sizes(
    std::size_t n, std::size_t B, const FlatFilterParams& p) {
  check_filter_args(n, B);
  const double lobefrac = p.lobefrac_scale / static_cast<double>(B);
  std::size_t w = window_length(p.kind, lobefrac, p.tolerance);
  if (w > n) w = n;
  std::size_t w_pad = std::min(next_pow2(w), n);
  if (w_pad < B) w_pad = B;
  return {w, w_pad};
}

FlatFilter make_flat_filter(std::size_t n, std::size_t B,
                            const FlatFilterParams& p) {
  check_filter_args(n, B);

  const double lobefrac = p.lobefrac_scale / static_cast<double>(B);
  std::vector<double> win = make_window(p.kind, lobefrac, p.tolerance);
  std::size_t w = win.size();
  if (w > n) {  // degenerate tiny-n case: fall back to the whole signal
    win.resize(n);
    w = n;
  }

  // Memory note: length-n complex temporaries are reused aggressively so
  // at most two of them are live at any moment (a 2^27 plan would otherwise
  // need six 2 GB arrays at once).

  // Place the window centered at t=0 (mod n) so its spectrum is ~real and
  // the boxcar sum below adds in phase.
  cvec G(n, cplx{});
  for (std::size_t j = 0; j < w; ++j)
    G[(j + n - w / 2) % n] = cplx{win[j], 0.0};
  fft::Plan fwd(n, fft::Direction::kForward);
  fft::Plan inv(n, fft::Direction::kInverse);
  fwd.execute(G);  // in place: G now holds the window spectrum

  // Flatten: H[f] = sum over the width-b boxcar centered on f of G.
  std::size_t b = static_cast<std::size_t>(
      std::llround(p.boxcar_scale * static_cast<double>(n) /
                   static_cast<double>(B)));
  b = std::clamp<std::size_t>(b, 1, n);
  cvec H(n);
  cplx s{};
  for (std::size_t i = 0; i < b; ++i) s += G[i];
  // After the loop below, H[f] = sum_{j=f-b/2}^{f+b-1-b/2} G[j mod n].
  const std::size_t offset = b / 2;
  for (std::size_t i = 0; i < n; ++i) {
    H[(i + offset) % n] = s;
    s += G[(i + b) % n] - G[i];
  }

  inv.execute(H);  // in place: H now holds the flattened time response

  // Truncate back to w_pad taps around t=0 and store them in "applied"
  // order: tap j multiplies the sample at time offset j.
  std::size_t w_pad = std::min(next_pow2(w), n);
  if (w_pad < B) w_pad = B;  // guarantee rounds = w_pad / B >= 1
  FlatFilter out;
  out.w_active = w;
  out.b = b;
  out.time.assign(w_pad, cplx{});
  for (std::size_t j = 0; j < w_pad; ++j)
    out.time[j] = H[(j + n - w_pad / 2) % n];

  // Final frequency response of exactly the taps applied, peak-normalized.
  // Reuse G as the padded tap buffer, transforming into H's storage.
  std::fill(G.begin(), G.end(), cplx{});
  std::copy(out.time.begin(), out.time.end(), G.begin());
  fwd.execute(G, H);
  out.freq = std::move(H);
  double peak = 0.0;
  for (const auto& v : out.freq) peak = std::max(peak, std::abs(v));
  if (peak <= 0.0) throw std::runtime_error("make_flat_filter: zero filter");
  const double inv_peak = 1.0 / peak;
  for (auto& v : out.time) v *= inv_peak;
  for (auto& v : out.freq) v *= inv_peak;
  return out;
}

namespace {

struct FilterKey {
  std::size_t n, B;
  WindowKind kind;
  double tolerance, lobefrac_scale, boxcar_scale;
  auto operator<=>(const FilterKey&) const = default;
};

struct FilterCache {
  std::mutex mu;
  // value: (filter, last-use tick) — a tiny LRU; entries hold a length-n
  // frequency response each, so keep few.
  std::map<FilterKey, std::pair<std::shared_ptr<const FlatFilter>, u64>>
      entries;
  u64 tick = 0;
  std::size_t hits = 0, misses = 0;
  static constexpr std::size_t kCapacity = 8;
};

FilterCache& filter_cache() {
  static FilterCache* c = new FilterCache();  // leaked: exit-order safe
  return *c;
}

}  // namespace

std::shared_ptr<const FlatFilter> get_flat_filter(std::size_t n,
                                                  std::size_t B,
                                                  const FlatFilterParams& p) {
  check_filter_args(n, B);
  const FilterKey key{n, B, p.kind, p.tolerance, p.lobefrac_scale,
                      p.boxcar_scale};
  FilterCache& c = filter_cache();
  {
    std::lock_guard lk(c.mu);
    auto it = c.entries.find(key);
    if (it != c.entries.end()) {
      ++c.hits;
      it->second.second = ++c.tick;
      return it->second.first;
    }
    ++c.misses;
  }
  // Build outside the lock (seconds at large n); a racing duplicate build
  // is harmless — last writer wins, both results are identical.
  auto filter = std::make_shared<const FlatFilter>(make_flat_filter(n, B, p));
  std::lock_guard lk(c.mu);
  if (c.entries.size() >= FilterCache::kCapacity &&
      c.entries.find(key) == c.entries.end()) {
    auto lru = c.entries.begin();
    for (auto it = c.entries.begin(); it != c.entries.end(); ++it)
      if (it->second.second < lru->second.second) lru = it;
    c.entries.erase(lru);
  }
  c.entries[key] = {filter, ++c.tick};
  return filter;
}

FilterCacheStats flat_filter_cache_stats() {
  FilterCache& c = filter_cache();
  std::lock_guard lk(c.mu);
  return {c.hits, c.misses, c.entries.size()};
}

void flat_filter_cache_clear() {
  FilterCache& c = filter_cache();
  std::lock_guard lk(c.mu);
  c.entries.clear();
}

}  // namespace cusfft::signal
