#include "signal/generate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "core/metrics.hpp"
#include "core/modmath.hpp"
#include "fft/fft.hpp"

namespace cusfft::signal {

namespace {

cplx random_coef(MagnitudeDist d, Rng& rng) {
  const double phase = rng.next_double() * kTwoPi;
  double mag = 1.0;
  if (d == MagnitudeDist::kUniform1to10) mag = 1.0 + 9.0 * rng.next_double();
  return cplx{mag * std::cos(phase), mag * std::sin(phase)};
}

std::vector<u64> distinct_locs(std::size_t n, std::size_t k, Rng& rng) {
  if (k > n) throw std::invalid_argument("sparse signal: k > n");
  std::unordered_set<u64> seen;
  seen.reserve(k * 2);
  std::vector<u64> locs;
  locs.reserve(k);
  while (locs.size() < k) {
    const u64 f = rng.next_below(n);
    if (seen.insert(f).second) locs.push_back(f);
  }
  return locs;
}

}  // namespace

cvec synthesize(const SparseSpectrum& truth, std::size_t n) {
  cvec dense = densify(truth, n);
  return fft::ifft(dense);
}

SparseSignal make_sparse_signal(std::size_t n, std::size_t k, Rng& rng,
                                const SparseSignalParams& p) {
  if (!is_pow2(n) || n < 4)
    throw std::invalid_argument("make_sparse_signal: n must be 2^m >= 4");
  SparseSignal out;
  out.truth.reserve(k);
  for (u64 f : distinct_locs(n, k, rng))
    out.truth.push_back({f, random_coef(p.mags, rng)});
  out.x = synthesize(out.truth, n);
  if (p.noise_sigma > 0.0) {
    for (auto& v : out.x)
      v += cplx{p.noise_sigma * rng.next_normal(),
                p.noise_sigma * rng.next_normal()};
  }
  return out;
}

SparseSignal make_clustered_signal(std::size_t n, std::size_t k,
                                   std::size_t clusters, Rng& rng) {
  if (!is_pow2(n) || n < 4)
    throw std::invalid_argument("make_clustered_signal: n must be 2^m >= 4");
  if (clusters == 0 || clusters > k)
    throw std::invalid_argument("make_clustered_signal: bad cluster count");
  SparseSignal out;
  out.truth.reserve(k);
  std::unordered_set<u64> seen;
  const std::size_t per = (k + clusters - 1) / clusters;
  while (out.truth.size() < k) {
    const u64 start = rng.next_below(n);
    for (std::size_t j = 0; j < per && out.truth.size() < k; ++j) {
      const u64 f = (start + j) % n;
      if (!seen.insert(f).second) continue;
      out.truth.push_back({f, random_coef(MagnitudeDist::kUnit, rng)});
    }
  }
  out.x = synthesize(out.truth, n);
  return out;
}

}  // namespace cusfft::signal
