// The flat window function (paper Section III, step 2): a Dolph-Chebyshev
// (or Gaussian) window whose spectrum is convolved with a width-b boxcar so
// the response is nearly flat across one bucket (n/B bins) and decays
// exponentially outside. Both representations the algorithm needs are kept
// consistent by construction:
//   * `time` — the w_pad taps actually applied in the binning loop
//     (bucket[i % B] += x[index(i)] * time[i]), zero-padded to a power of
//     two >= B so the GPU loop-partition kernel gets an integral number of
//     rounds (the paper notes filter_size and B are both powers of two);
//   * `freq` — the full length-n DFT of exactly those taps, used by the
//     estimation step's complex division (Algorithm 5, filter_freq[dist]).
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "core/types.hpp"
#include "signal/window.hpp"

namespace cusfft::signal {

struct FlatFilter {
  cvec time;            // length w_pad; taps applied at offsets 0..w_pad-1
  cvec freq;            // length n; DFT of the padded taps, peak-normalized
  std::size_t w_active = 0;  // taps before zero padding
  std::size_t b = 0;         // boxcar (flattening) width in bins
};

struct FlatFilterParams {
  WindowKind kind = WindowKind::kDolphChebyshev;
  double tolerance = 1e-8;   // sidelobe level
  double lobefrac_scale = 0.5;  // transition half-width = scale / B
  double boxcar_scale = 1.3;    // b = round(scale * n / B)
};

/// Builds the flat filter for signal size n (power of two) and B buckets.
/// Plan-time cost is O(n log n) (two length-n FFTs), mirroring the reference
/// implementation; execution-time cost of using the filter is O(w_pad).
FlatFilter make_flat_filter(std::size_t n, std::size_t B,
                            const FlatFilterParams& p = {});

/// Cached variant: repeated plans with the same (n, B, window) share one
/// immutable filter and skip the two plan-time length-n FFTs entirely. An
/// LRU of a few entries bounds host memory (one length-n response per
/// entry); cache hits cost a map lookup. Thread-safe.
std::shared_ptr<const FlatFilter> get_flat_filter(
    std::size_t n, std::size_t B, const FlatFilterParams& p = {});

struct FilterCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t entries = 0;
};
FilterCacheStats flat_filter_cache_stats();
void flat_filter_cache_clear();

/// The {w_active, w_pad} the filter for (n, B, p) will have, without
/// building it — used for device-memory planning before any allocation.
std::pair<std::size_t, std::size_t> flat_filter_sizes(
    std::size_t n, std::size_t B, const FlatFilterParams& p = {});

}  // namespace cusfft::signal
