// Workload generators: exactly-k-sparse spectra (the paper's evaluation
// signals), optional additive noise, and structured adversarial layouts for
// property tests.
#pragma once

#include <cstddef>

#include "core/rng.hpp"
#include "core/types.hpp"

namespace cusfft::signal {

/// A generated test signal: time-domain samples plus the ground-truth
/// spectrum it was synthesized from.
struct SparseSignal {
  cvec x;                // length n, time domain
  SparseSpectrum truth;  // the k planted coefficients (unique locations)
};

enum class MagnitudeDist {
  kUnit,        // |c| = 1, random phase (the reference benchmarks' choice)
  kUniform1to10 // |c| uniform in [1, 10], random phase
};

struct SparseSignalParams {
  MagnitudeDist mags = MagnitudeDist::kUnit;
  double noise_sigma = 0.0;  // std of complex Gaussian noise added in time
                             // domain (per real component)
};

/// k distinct frequencies chosen uniformly at random in [0, n).
/// n must be a power of two >= 4. Costs one length-n inverse FFT.
SparseSignal make_sparse_signal(std::size_t n, std::size_t k, Rng& rng,
                                const SparseSignalParams& p = {});

/// Adversarial layout: frequencies packed into `clusters` contiguous runs —
/// stresses the permutation's coefficient-separation property.
SparseSignal make_clustered_signal(std::size_t n, std::size_t k,
                                   std::size_t clusters, Rng& rng);

/// Synthesizes the time-domain signal for an explicit spectrum.
cvec synthesize(const SparseSpectrum& truth, std::size_t n);

}  // namespace cusfft::signal
