// Window functions concentrated in both time and frequency (Section III
// step 2). The sFFT uses a Dolph-Chebyshev (default) or Gaussian window as
// the basis of the flat filter built in signal/filter.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace cusfft::signal {

enum class WindowKind { kDolphChebyshev, kGaussian, kKaiser };

/// Chebyshev polynomial T_m(x), extended with cosh outside [-1, 1].
double cheb_poly(unsigned m, double x);

/// Dolph-Chebyshev window whose frequency main lobe occupies `lobefrac` of
/// the spectrum (half-width as a fraction of n) with sidelobes below
/// `tolerance`. Returns real time-domain taps, centered (peak at w/2),
/// normalized to unit peak. The length w is derived from (lobefrac,
/// tolerance) via w = (1/pi) * (1/lobefrac) * acosh(1/tolerance).
std::vector<double> dolph_chebyshev_window(double lobefrac, double tolerance);

/// Gaussian window with the same contract: frequency response decays below
/// `tolerance` outside +-lobefrac*n.
std::vector<double> gaussian_window(double lobefrac, double tolerance);

/// Kaiser window with the same contract (shape parameter derived from the
/// required sidelobe attenuation via the standard Kaiser design formulas).
std::vector<double> kaiser_window(double lobefrac, double tolerance);

/// Modified Bessel function of the first kind, order zero (power series).
double bessel_i0(double x);

/// Dispatch on kind.
std::vector<double> make_window(WindowKind kind, double lobefrac,
                                double tolerance);

/// Length the window of make_window(kind, lobefrac, tolerance) will have,
/// without building it (used for memory planning).
std::size_t window_length(WindowKind kind, double lobefrac,
                          double tolerance);

}  // namespace cusfft::signal
