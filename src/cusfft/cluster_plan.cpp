#include "cusfft/cluster_plan.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "core/rng.hpp"
#include "core/timer.hpp"
#include "cusim/metrics.hpp"
#include "fft/fft.hpp"
#include "sfft/steps.hpp"
#include "signal/filter.hpp"

namespace cusfft::gpu {

namespace {

/// NIC staging cost of moving one length-n signal onto a non-head node.
double nic_stage_cost_s(std::size_t n, const cusim::NicModel& nic) {
  const double bw = nic.bandwidth_Bps > 0 ? nic.bandwidth_Bps : 1.0;
  return nic.latency_s + static_cast<double>(n * sizeof(cplx)) / bw;
}

/// Node-level per-signal cost. modeled_signal_cost_s deliberately
/// excludes kernel-launch overhead — it is identical on every device of
/// a group, so it would only flatten *relative* costs there. Here the
/// compute estimate is weighed against wall-clock NIC seconds, so the
/// absolute scale matters: without the launch floor the staging term
/// dominates the estimate and LPT starves the non-head nodes. The launch
/// count approximates the plan's kernel chain (per-loop binning + FFT
/// passes, the selection/vote kernels per location loop, estimation).
double node_signal_cost_s(const sfft::Params& p,
                          const perfmodel::GpuSpec& spec,
                          const Options& opts) {
  const double L = static_cast<double>(p.total_loops());
  const double passes =
      std::log2(std::max(2.0, static_cast<double>(p.buckets())));
  const double launches =
      L * (1.0 + passes) + 3.0 * static_cast<double>(p.loops_loc) + 4.0;
  return modeled_signal_cost_s(p, spec, opts) +
         launches * spec.kernel_launch_overhead_s;
}

}  // namespace

struct ClusterPlan::Impl {
  cusim::Cluster* cluster = nullptr;
  sfft::Params params;
  Options opts;
  ShardPolicy policy = ShardPolicy::kCostLpt;
  // One MultiGpuPlan per node, built on the first batch execution — the
  // slab path drives the devices directly and must stay usable when the
  // full batch plan would not fit device memory (the oversized demo).
  std::vector<std::unique_ptr<MultiGpuPlan>> node_plans;
  std::vector<std::size_t> base;  // node -> first global device index

  void ensure_node_plans() {
    if (!node_plans.empty()) return;
    for (std::size_t m = 0; m < cluster->nodes(); ++m) {
      node_plans.push_back(
          std::make_unique<MultiGpuPlan>(cluster->node(m), params, opts));
      node_plans.back()->set_shard_policy(policy);
    }
  }
};

ClusterPlan::ClusterPlan(cusim::Cluster& cluster, sfft::Params params,
                         Options opts)
    : impl_(std::make_unique<Impl>()) {
  impl_->cluster = &cluster;
  impl_->params = params;
  impl_->opts = opts;
  std::size_t base = 0;
  for (std::size_t m = 0; m < cluster.nodes(); ++m) {
    impl_->base.push_back(base);
    base += cluster.node(m).size();
  }
}

ClusterPlan::~ClusterPlan() = default;
ClusterPlan::ClusterPlan(ClusterPlan&&) noexcept = default;
ClusterPlan& ClusterPlan::operator=(ClusterPlan&&) noexcept = default;

std::size_t ClusterPlan::nodes() const { return impl_->cluster->nodes(); }
std::size_t ClusterPlan::devices() const { return impl_->cluster->devices(); }
cusim::Cluster& ClusterPlan::cluster() { return *impl_->cluster; }
const sfft::Params& ClusterPlan::params() const { return impl_->params; }

void ClusterPlan::set_shard_policy(ShardPolicy p) {
  impl_->policy = p;
  for (auto& np : impl_->node_plans) np->set_shard_policy(p);
}
ShardPolicy ClusterPlan::shard_policy() const { return impl_->policy; }

std::vector<std::size_t> ClusterPlan::node_assignment(
    std::span<const sfft::Params> shapes) const {
  const std::size_t M = impl_->cluster->nodes();
  const std::size_t batch = shapes.size();
  std::vector<std::size_t> out(batch, 0);
  if (M <= 1) return out;

  // Per-node signal cost: the PR 5 per-device analytic cost divided by
  // the node's device count (its MultiGpuPlan spreads the shard). The
  // NIC staging term applies everywhere but the head node (node 0 is
  // co-located with the data) — and only to a node's *first* signal:
  // the simulation starts a node's compute at its first ingress's
  // arrival, every later ingress overlaps compute.
  std::vector<std::vector<double>> cost(batch, std::vector<double>(M));
  for (std::size_t i = 0; i < batch; ++i)
    for (std::size_t m = 0; m < M; ++m) {
      const cusim::DeviceGroup& g = impl_->cluster->node(m);
      cost[i][m] = node_signal_cost_s(
                       shapes[i], g.device(0).spec(), impl_->opts) /
                   static_cast<double>(g.size());
    }
  // LPT, same discipline as the device-level pass: most expensive first
  // by the head-node reference cost (stable, so uniform batches keep
  // input order), placed onto the node with the smallest projected
  // finish, strict ties to the lowest node.
  std::vector<std::size_t> order(batch);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return cost[a][0] > cost[b][0];
                   });
  std::vector<double> load(M, 0.0);
  std::vector<bool> opened(M, false);
  for (const std::size_t i : order) {
    auto projected = [&](std::size_t m) {
      double c = load[m] + cost[i][m];
      if (m > 0 && !opened[m])
        c += nic_stage_cost_s(shapes[i].n, impl_->cluster->nic());
      return c;
    };
    std::size_t best = 0;
    for (std::size_t m = 1; m < M; ++m)
      if (projected(m) < projected(best)) best = m;
    out[i] = best;
    load[best] = projected(best);
    opened[best] = true;
  }
  return out;
}

std::vector<SparseSpectrum> ClusterPlan::execute_many(
    std::span<const std::span<const cplx>> xs, GpuFleetStats* stats,
    BatchMode mode) {
  std::vector<MixedSignal> signals;
  signals.reserve(xs.size());
  for (const auto& x : xs) signals.push_back({x, impl_->params});
  return execute_mixed(signals, stats, mode);
}

std::vector<SparseSpectrum> ClusterPlan::execute_mixed(
    std::span<const MixedSignal> signals, GpuFleetStats* stats,
    BatchMode mode) {
  const std::size_t M = impl_->cluster->nodes();
  impl_->ensure_node_plans();
  // Degenerate cluster: the batch IS a fleet batch. Delegating wholesale
  // keeps every artifact bit-identical to MultiGpuPlan (tests pin this).
  if (M == 1) return impl_->node_plans[0]->execute_mixed(signals, stats, mode);

  cusim::Cluster& cluster = *impl_->cluster;
  const std::size_t batch = signals.size();
  std::vector<sfft::Params> shapes;
  shapes.reserve(batch);
  for (const auto& s : signals) shapes.push_back(s.params);
  const std::vector<std::size_t> assign = node_assignment(shapes);

  std::vector<std::vector<std::size_t>> node_sigs(M);  // input order
  for (std::size_t i = 0; i < batch; ++i) node_sigs[assign[i]].push_back(i);

  // Shared t = 0 on every node; then the NIC ingress in input order
  // (node 0's shard is host-co-located and pays nothing).
  cluster.begin_capture();
  for (std::size_t i = 0; i < batch; ++i)
    if (assign[i] > 0)
      cluster.add_ingress(static_cast<unsigned>(assign[i]), "nic_stage",
                          static_cast<double>(shapes[i].n * sizeof(cplx)));

  // Run each node's shard through its MultiGpuPlan — sequentially on the
  // host: the flat-filter cache and BufferPool are process-global, and
  // the node plans must not race on them. Each call opens a fresh (still
  // empty) capture region on its own group and publishes its own fleet
  // metrics — the single fleet-level publication per node batch; the
  // merged stats below add only the cusfft_cluster_*/cusfft_node_*
  // layer on top.
  std::vector<SparseSpectrum> out(batch);
  std::vector<GpuFleetStats> node_fs(M);
  WallTimer wall;
  for (std::size_t m = 0; m < M; ++m) {
    if (node_sigs[m].empty()) continue;
    std::vector<MixedSignal> shard;
    shard.reserve(node_sigs[m].size());
    for (const std::size_t i : node_sigs[m]) shard.push_back(signals[i]);
    auto outs = impl_->node_plans[m]->execute_mixed(shard, &node_fs[m], mode);
    for (std::size_t j = 0; j < node_sigs[m].size(); ++j)
      out[node_sigs[m][j]] = std::move(outs[j]);
  }
  const double host_ms = wall.ms();

  cusim::ClusterSchedule cs = cluster.simulate();

  GpuFleetStats st;
  st.model_ms = cs.makespan_s * 1e3;
  st.host_ms = host_ms;
  st.signals = batch;
  st.devices = cluster.devices();
  st.nodes = M;
  st.staging = cluster.staging().name();
  st.node_of = assign;
  st.device_of.assign(batch, 0);
  st.per_signal.resize(batch);
  st.nic_transfers = cs.nic.size();
  st.nic_bytes = cs.nic_bytes;
  for (const cusim::NicSpan& s : cs.nic)
    st.nic_transfer_ms += (s.finish_s - s.start_s) * 1e3;

  double finish_sum = 0, finish_max = 0;
  std::size_t busy_nodes = 0;
  for (std::size_t m = 0; m < M; ++m) {
    const cusim::DeviceGroup& g = cluster.node(m);
    const cusim::FleetSchedule& f = cs.node_fleet[m];
    const GpuFleetStats& fs = node_fs[m];
    const bool ran = !node_sigs[m].empty();
    for (std::size_t j = 0; j < node_sigs[m].size(); ++j) {
      const std::size_t i = node_sigs[m][j];
      st.device_of[i] = impl_->base[m] + fs.device_of[j];
      st.per_signal[i] = fs.per_signal[j];
      st.candidates += st.per_signal[i].candidates;
    }
    st.pipelined = st.pipelined || (ran && fs.pipelined);
    double busy_sum = 0;
    for (std::size_t d = 0; d < g.size(); ++d) {
      GpuDeviceShardStats ds;
      ds.device = g.device(d).spec().name;
      ds.signals = ran ? fs.per_device[d].signals : 0;
      ds.model_ms = f.finish_s[d] * 1e3;
      ds.solo_ms = ran ? fs.per_device[d].solo_ms : 0.0;
      ds.pcie_stall_ms = f.pcie_stall_s[d] * 1e3;
      ds.pcie_queue_ms = f.pcie_queue_s[d] * 1e3;
      if (st.model_ms > 0) ds.utilization = f.busy_s[d] * 1e3 / st.model_ms;
      busy_sum += ds.utilization;
      st.pcie_stall_ms += ds.pcie_stall_ms;
      st.pcie_queue_ms += ds.pcie_queue_ms;
      st.per_device.push_back(std::move(ds));
    }
    GpuNodeShardStats ns;
    ns.devices = g.size();
    ns.signals = node_sigs[m].size();
    ns.model_ms = cs.node_finish_s[m] * 1e3;
    ns.offset_ms = cs.node_offset_s[m] * 1e3;
    ns.nic_stall_ms = cs.nic_stall_s[m] * 1e3;
    ns.nic_queue_ms = cs.nic_queue_s[m] * 1e3;
    for (const cusim::NicSpan& s : cs.nic)
      if (s.node == m) ns.nic_bytes += s.bytes;
    ns.utilization = g.size() > 0 ? busy_sum / g.size() : 0.0;
    st.nic_stall_ms += ns.nic_stall_ms;
    st.nic_queue_ms += ns.nic_queue_ms;
    if (ran) {
      finish_sum += ns.model_ms;
      finish_max = std::max(finish_max, ns.model_ms);
      ++busy_nodes;
    }
    st.per_node.push_back(std::move(ns));
  }
  // Node-level imbalance: the device split inside each node is already
  // reported by that node's own fleet stats.
  if (busy_nodes > 0 && finish_sum > 0)
    st.imbalance = finish_max / (finish_sum / busy_nodes);

  st.to_cluster_metrics(cusim::MetricsRegistry::global());
  if (stats != nullptr) *stats = std::move(st);
  return out;
}

std::size_t ClusterPlan::slab_working_set_bytes(const sfft::Params& p) {
  const std::size_t B = p.buckets();
  const std::size_t L = p.total_loops();
  const std::size_t w_pad = signal::flat_filter_sizes(p.n, B, p.filter).second;
  // Mirrors GpuPlan's resident buffers: signal + vote scores + filter
  // taps + per-loop buckets + one bucket scratch.
  return p.n * sizeof(cplx) + p.n * sizeof(u32) + w_pad * sizeof(cplx) +
         L * B * sizeof(cplx) + B * sizeof(cplx);
}

std::size_t ClusterPlan::slab_node_working_set_bytes(const sfft::Params& p,
                                                     std::size_t nodes) {
  const std::size_t B = p.buckets();
  const std::size_t L = p.total_loops();
  const std::size_t w_pad = signal::flat_filter_sizes(p.n, B, p.filter).second;
  const std::size_t M = nodes > 0 ? nodes : 1;
  // One slab's residency: its input slice, the filter taps, its own
  // partial bins plus the gather scratch on the head node.
  return (p.n / M) * sizeof(cplx) + w_pad * sizeof(cplx) +
         2 * L * B * sizeof(cplx);
}

SparseSpectrum ClusterPlan::execute_slab(std::span<const cplx> x,
                                         GpuFleetStats* stats) {
  using cusim::DeviceBuffer;
  using cusim::LaunchCfg;
  const sfft::Params& p = impl_->params;
  p.validate();
  if (p.comb)
    throw std::invalid_argument(
        "cusfft: slab decomposition requires comb == false (the Comb "
        "prefilter needs the whole signal resident)");
  if (x.size() != p.n)
    throw std::invalid_argument("cusfft: slab signal length != params.n");

  cusim::Cluster& cluster = *impl_->cluster;
  const std::size_t M = cluster.nodes();
  const std::size_t n = p.n;
  const std::size_t B = p.buckets();
  const std::size_t L = p.total_loops();
  const u64 mask = n - 1;
  const auto filter = signal::get_flat_filter(n, B, p.filter);
  const std::size_t w_pad = filter->time.size();
  const std::size_t rounds = w_pad / B;
  const double cx = static_cast<double>(sizeof(cplx));

  const std::size_t mem =
      cluster.node(0).device(0).spec().global_mem_bytes;
  if (M == 1 && slab_working_set_bytes(p) > mem)
    throw std::runtime_error(
        "cusfft: slab working set (" +
        std::to_string(slab_working_set_bytes(p)) +
        " bytes) exceeds device memory at nodes == 1; run on a cluster");
  const std::size_t per_node_bytes = slab_node_working_set_bytes(p, M);
  if (per_node_bytes > mem)
    throw std::runtime_error(
        "cusfft: slab slice still exceeds device memory; add nodes");

  // Same draw order as SerialPlan (comb is off, so the perm stream is
  // the whole of it) — the slab candidates reverse the same hashes.
  Rng rng(p.seed);
  const std::vector<sfft::LoopPerm> perms = sfft::draw_loop_perms(n, L, rng);

  cluster.begin_capture();
  WallTimer wall;

  // --- comb/bin phase, one slab per node -------------------------------
  // Node m owns the input slice [lo, hi). Its binning kernel walks the
  // full tap sequence of every loop (the index mapping is global) but
  // loads and accumulates only taps whose permuted index lands in its
  // slice, so the per-node partial is the exact sum of its taps and
  // sum-over-nodes covers each tap exactly once (regrouped FP order).
  std::vector<DeviceBuffer<cplx>> slices, partials;
  std::vector<std::vector<cplx>> gathered(M);  // host copies for exchange
  slices.reserve(M);
  partials.reserve(M);
  for (std::size_t m = 0; m < M; ++m) {
    const std::size_t lo = m * n / M;
    const std::size_t hi = (m + 1) * n / M;
    if (m > 0)
      cluster.add_ingress(static_cast<unsigned>(m), "slab_slice",
                          static_cast<double>(hi - lo) * cx);
    cusim::Device& dev = cluster.node(m).device(0);
    dev.annotate_phase("slab bin");
    slices.emplace_back(hi - lo);
    partials.emplace_back(L * B);
    DeviceBuffer<cplx>& slice = slices.back();
    DeviceBuffer<cplx>& partial = partials.back();
    dev.upload(slice, x.subspan(lo, hi - lo));
    DeviceBuffer<cplx> filt(w_pad);
    dev.upload(filt, std::span<const cplx>(filter->time));
    for (std::size_t r = 0; r < L; ++r) {
      const u64 ai = perms[r].ai, tau = perms[r].tau;
      const u64 step = (B * ai) & mask;
      dev.launch(
          LaunchCfg::for_elements("slab_partition", B, 256).cache(r),
          [&, ai, tau, step, r, lo, hi](cusim::ThreadCtx& t) {
            const u64 tid = t.global_id();
            if (tid >= B) return;
            double mr = 0.0, mi = 0.0;
            u64 index = (tau + tid * ai) & mask;
            for (std::size_t j = 0; j < rounds; ++j) {
              if (index >= lo && index < hi) {
                const cplx xv = slice.load(t, index - lo);
                const cplx fv = filt.load(t, tid + B * j);
                mr += xv.real() * fv.real() - xv.imag() * fv.imag();
                mi += xv.real() * fv.imag() + xv.imag() * fv.real();
                t.add_flops(10);
              }
              index = (index + step) & mask;
            }
            partial.store(t, r * B + tid, cplx{mr, mi});
          });
    }
    if (m > 0) {
      gathered[m].resize(L * B);
      dev.download(std::span<cplx>(gathered[m]), partial);
      cluster.add_exchange(static_cast<unsigned>(m), 0, "slab_exchange",
                           static_cast<double>(L * B) * cx);
    }
  }

  // --- exchange + reduce on the head node ------------------------------
  cluster.mark_exchange_barrier(0);
  cusim::Device& head = cluster.node(0).device(0);
  head.sync_point();
  head.annotate_phase("slab reduce");
  DeviceBuffer<cplx>& acc = partials[0];
  {
    DeviceBuffer<cplx> remote(L * B);
    for (std::size_t m = 1; m < M; ++m) {
      head.upload(remote, std::span<const cplx>(gathered[m]));
      head.launch(LaunchCfg::for_elements("slab_reduce", L * B, 256).cache(m),
                  [&](cusim::ThreadCtx& t) {
                    const u64 i = t.global_id();
                    if (i >= L * B) return;
                    const cplx a = acc.load(t, i);
                    const cplx b = remote.load(t, i);
                    t.add_flops(2);
                    acc.store(t, i, a + b);
                  });
    }
  }

  // --- estimation phase on the head node -------------------------------
  // The sub-FFT / cutoff / vote / estimate steps run functionally through
  // the sfft primitives on the host (the score array is host-side in
  // this path) with representative modeled kernels on the head device,
  // so the trace and the cluster clock still carry the phase.
  head.annotate_phase("slab estimate");
  const double fft_flops = 5.0 * std::log2(std::max<double>(2.0, B));
  head.launch(LaunchCfg::for_elements("slab_subfft", L * B, 256),
              [&](cusim::ThreadCtx& t) {
                const u64 i = t.global_id();
                if (i >= L * B) return;
                acc.store(t, i, acc.load(t, i));
                t.add_flops(fft_flops);
              });
  head.launch(LaunchCfg::for_elements("slab_cutoff", p.loops_loc * B, 256),
              [&](cusim::ThreadCtx& t) {
                const u64 i = t.global_id();
                if (i >= p.loops_loc * B) return;
                acc.load(t, i % (L * B));
                t.add_flops(3);
              });

  std::vector<cplx> reduced(L * B);
  head.download(std::span<cplx>(reduced), acc);

  std::vector<cvec> bucket_sets(L);
  fft::Plan bfft(B, fft::Direction::kForward);
  for (std::size_t r = 0; r < L; ++r) {
    bucket_sets[r].assign(reduced.begin() + r * B,
                          reduced.begin() + (r + 1) * B);
    bfft.execute(bucket_sets[r]);
  }
  std::vector<std::uint8_t> score(n, 0);
  std::vector<u64> hits;
  const auto threshold = static_cast<std::uint8_t>(p.threshold());
  for (std::size_t r = 0; r < p.loops_loc; ++r) {
    const std::vector<u32> selected =
        sfft::top_buckets(bucket_sets[r], p.cutoff());
    sfft::vote_locations(selected, perms[r], n, B, threshold, score, hits);
  }
  SparseSpectrum out;
  out.reserve(hits.size());
  for (u64 f : hits)
    out.push_back({f, sfft::estimate_coef(f, perms, bucket_sets,
                                          filter->freq, n, B)});
  std::sort(out.begin(), out.end(),
            [](const SparseCoef& a, const SparseCoef& b) {
              return a.loc < b.loc;
            });

  const double vote_flops = 4.0 * static_cast<double>(n) / B;
  head.launch(LaunchCfg::for_elements("slab_vote", p.loops_loc * p.cutoff(),
                                      256),
              [&](cusim::ThreadCtx& t) {
                const u64 i = t.global_id();
                if (i >= p.loops_loc * p.cutoff()) return;
                acc.load(t, i % (L * B));
                t.add_flops(vote_flops);
              });
  if (!hits.empty())
    head.launch(LaunchCfg::for_elements("slab_estimate", hits.size(), 256),
                [&](cusim::ThreadCtx& t) {
                  const u64 i = t.global_id();
                  if (i >= hits.size()) return;
                  acc.load(t, i % (L * B));
                  t.add_flops(40.0 + 8.0 * L);
                });
  const double host_ms = wall.ms();

  cusim::ClusterSchedule cs = cluster.simulate();

  GpuFleetStats st;
  st.model_ms = cs.makespan_s * 1e3;
  st.host_ms = host_ms;
  st.signals = 1;
  st.candidates = out.size();
  st.devices = cluster.devices();
  st.nodes = M;
  st.staging = cluster.staging().name();
  st.node_of = {0};  // the spectrum materializes on the head node
  st.device_of = {impl_->base[0]};
  st.per_signal.resize(1);
  st.per_signal[0].start_ms = 0;
  st.per_signal[0].end_ms = st.model_ms;
  st.per_signal[0].candidates = out.size();
  st.nic_transfers = cs.nic.size();
  st.nic_bytes = cs.nic_bytes;
  for (const cusim::NicSpan& s : cs.nic)
    st.nic_transfer_ms += (s.finish_s - s.start_s) * 1e3;
  double finish_sum = 0, finish_max = 0;
  for (std::size_t m = 0; m < M; ++m) {
    const cusim::DeviceGroup& g = cluster.node(m);
    const cusim::FleetSchedule& f = cs.node_fleet[m];
    double busy_sum = 0;
    for (std::size_t d = 0; d < g.size(); ++d) {
      GpuDeviceShardStats ds;
      ds.device = g.device(d).spec().name;
      ds.signals = (m == 0 && d == 0) ? 1 : 0;
      ds.model_ms = f.finish_s[d] * 1e3;
      ds.pcie_stall_ms = f.pcie_stall_s[d] * 1e3;
      ds.pcie_queue_ms = f.pcie_queue_s[d] * 1e3;
      if (st.model_ms > 0) ds.utilization = f.busy_s[d] * 1e3 / st.model_ms;
      busy_sum += ds.utilization;
      st.pcie_stall_ms += ds.pcie_stall_ms;
      st.pcie_queue_ms += ds.pcie_queue_ms;
      st.per_device.push_back(std::move(ds));
    }
    GpuNodeShardStats ns;
    ns.devices = g.size();
    ns.signals = m == 0 ? 1 : 0;
    ns.model_ms = cs.node_finish_s[m] * 1e3;
    ns.offset_ms = cs.node_offset_s[m] * 1e3;
    ns.nic_stall_ms = cs.nic_stall_s[m] * 1e3;
    ns.nic_queue_ms = cs.nic_queue_s[m] * 1e3;
    for (const cusim::NicSpan& s : cs.nic)
      if (s.node == m) ns.nic_bytes += s.bytes;
    ns.utilization = g.size() > 0 ? busy_sum / g.size() : 0.0;
    st.nic_stall_ms += ns.nic_stall_ms;
    st.nic_queue_ms += ns.nic_queue_ms;
    finish_sum += ns.model_ms;
    finish_max = std::max(finish_max, ns.model_ms);
    st.per_node.push_back(std::move(ns));
  }
  if (finish_sum > 0) st.imbalance = finish_max / (finish_sum / M);
  st.to_cluster_metrics(cusim::MetricsRegistry::global());
  if (stats != nullptr) *stats = std::move(st);
  return out;
}

}  // namespace cusfft::gpu
