// Fleet execution: one execute_many() batch sharded across a
// cusim::DeviceGroup. Each device owns a full GpuPlan (its own buffers,
// filter upload, stream pool) and runs its shard on a dedicated host
// thread with PR 1's block-parallel functional execution confined to the
// device's private ThreadPool; the two-stream pipeline stays live inside
// every shard. The per-device timelines are then merged on one clock
// (shared t=0 at the group capture) with PCIe root-complex contention —
// see cusim/device_group.hpp.
//
// Shard assignment is cost-weighted greedy: signals are homogeneous (same
// n/k/filter), so a device's per-signal cost is proportional to
// 1/mem_bandwidth_Bps (the algorithm is bandwidth-bound on the modeled
// device); each signal goes to the device with the smallest projected
// finish, ties to the lowest index. Homogeneous fleets degrade to
// round-robin; a half-rate device in a heterogeneous fleet receives
// proportionally fewer signals instead of straggling the makespan. The
// assignment is a pure function of (batch size, specs) — deterministic.
//
// Ordering contract: the returned spectra and GpuFleetStats::per_signal
// are ALWAYS in input order, whatever the shard assignment (tests pin
// bit-identical equality with the single-device path).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cusfft/plan.hpp"
#include "cusim/device_group.hpp"

namespace cusfft::gpu {

/// One device's share of a fleet batch.
struct GpuDeviceShardStats {
  std::string device;      // GpuSpec name
  std::size_t signals = 0;
  double model_ms = 0;     // device finish on the merged fleet clock
  double solo_ms = 0;      // the same shard free of PCIe contention
  double pcie_stall_ms = 0;  // host-link contention dilation
  double utilization = 0;    // model_ms / fleet makespan (0 for idle)
};

/// GpuBatchStats analogue for a sharded batch: fleet makespan plus the
/// imbalance/contention story across devices.
struct GpuFleetStats {
  double model_ms = 0;  // merged fleet makespan (shared t=0)
  double host_ms = 0;   // wall time of the functional simulation
  std::size_t signals = 0;
  std::size_t candidates = 0;  // summed over the batch
  std::size_t devices = 0;
  bool pipelined = false;  // any shard ran the two-stream pipeline
  /// max/mean device finish over devices that received signals: 1.0 is a
  /// perfectly balanced fleet, 2.0 means the slowest device ran twice as
  /// long as the average.
  double imbalance = 1.0;
  double pcie_stall_ms = 0;  // summed over devices
  std::vector<GpuDeviceShardStats> per_device;  // device order
  /// Input order (per_signal[i] describes xs[i]); each signal's window is
  /// on its own device's contention-free clock — cross-device spans are
  /// not directly comparable, use per_device/model_ms for fleet timing.
  std::vector<GpuSignalStats> per_signal;
  std::vector<std::size_t> device_of;  // input order: shard assignment
};

class MultiGpuPlan {
 public:
  /// One GpuPlan per group device (plans build serially — the flat-filter
  /// cache and BufferPool warm up exactly once per shape).
  MultiGpuPlan(cusim::DeviceGroup& group, sfft::Params params, Options opts);
  ~MultiGpuPlan();
  MultiGpuPlan(MultiGpuPlan&&) noexcept;
  MultiGpuPlan& operator=(MultiGpuPlan&&) noexcept;
  MultiGpuPlan(const MultiGpuPlan&) = delete;
  MultiGpuPlan& operator=(const MultiGpuPlan&) = delete;

  std::size_t devices() const;
  const sfft::Params& params() const;
  cusim::DeviceGroup& group();

  /// Cost-weighted greedy shard assignment (see file comment): element i
  /// is the device index signal i would run on. Pure and deterministic.
  std::vector<std::size_t> shard_assignment(std::size_t batch) const;

  /// Shards the batch across the fleet and executes every shard
  /// concurrently (one host thread per non-empty shard), then merges the
  /// device timelines into one fleet schedule. Results and per-signal
  /// stats come back in input order, bit-identical to single-device
  /// execute_many. `mode` applies inside each shard.
  std::vector<SparseSpectrum> execute_many(
      std::span<const std::span<const cplx>> xs,
      GpuFleetStats* stats = nullptr, BatchMode mode = BatchMode::kAuto);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cusfft::gpu
