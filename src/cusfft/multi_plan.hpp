// Fleet execution: one execute_many() batch sharded across a
// cusim::DeviceGroup. Each device owns a full GpuPlan (its own buffers,
// filter upload, stream pool) and runs its shard on a dedicated host
// thread with PR 1's block-parallel functional execution confined to the
// device's private ThreadPool; the two-stream pipeline stays live inside
// every shard. The per-device timelines are then merged on one clock
// (shared t=0 at the group capture) with PCIe root-complex contention —
// see cusim/device_group.hpp.
//
// Shard assignment (ShardPolicy::kCostLpt, the default) prices every
// signal with an analytic per-signal cost derived from the perfmodel —
// bytes streamed by binning + the subsampled FFTs + voting/estimation
// traffic over the device's effective bandwidth, plus a FLOP floor, plus
// the H2D copy when transfers are modeled — and places signals in LPT
// order (longest first) onto the device with the smallest projected
// finish, ties to the lowest index. Homogeneous uniform batches degrade
// to round-robin; a half-rate device receives proportionally fewer
// signals; a skewed mixed-shape batch splits by cost instead of count.
// ShardPolicy::kUnitGreedy keeps the legacy uniform 1/mem_bandwidth
// weighting (every signal costs the same) for A/B comparison. Either
// assignment is a pure function of (signal shapes, specs, policy) —
// deterministic.
//
// Mixed-shape batches: execute_mixed() accepts per-signal sfft::Params.
// Each device shard groups its signals by shape and runs one
// GpuPlan per distinct shape (cached inside the MultiGpuPlan, built
// serially before the shard threads fan out) within a single device
// capture, so the merged fleet schedule still covers the whole shard.
//
// Ordering contract: the returned spectra and GpuFleetStats::per_signal
// are ALWAYS in input order, whatever the shard assignment (tests pin
// bit-identical equality with the single-device path).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cusfft/plan.hpp"
#include "cusim/device_group.hpp"

namespace cusfft::gpu {

/// How MultiGpuPlan assigns signals to devices.
enum class ShardPolicy {
  kCostLpt,     ///< per-signal analytic cost model + LPT (default)
  kUnitGreedy,  ///< legacy: every signal costs the device's uniform
                ///< 1/mem_bandwidth weight, greedy in input order
};

/// One signal of a mixed-shape batch: the samples plus the shape-specific
/// parameters (x.size() must equal params.n).
struct MixedSignal {
  std::span<const cplx> x;
  sfft::Params params;
};

/// Analytic per-signal cost (seconds) of running `p` on a device with
/// `spec` under `opts` — the kCostLpt assignment currency. Counts the
/// bytes the kernel sequence streams through device memory (binning taps,
/// subsampled FFT passes, cutoff/vote/estimate traffic) over the device's
/// effective coalesced bandwidth, a FLOP floor against dp_peak_flops(),
/// and the H2D copy over the PCIe link when Options::include_transfer.
/// Kernel-launch overhead is deliberately excluded: it is identical on
/// every device, so it would only flatten the relative costs the
/// assignment depends on. This is an assignment heuristic — the merged
/// timeline stays the ground truth the stats report.
double modeled_signal_cost_s(const sfft::Params& p,
                             const perfmodel::GpuSpec& spec,
                             const Options& opts);

/// One device's share of a fleet batch.
struct GpuDeviceShardStats {
  std::string device;      // GpuSpec name
  std::size_t signals = 0;
  double model_ms = 0;     // device finish on the merged fleet clock
  double solo_ms = 0;      // the same shard free of PCIe contention
  double pcie_stall_ms = 0;  // host-link contention dilation
  double pcie_queue_ms = 0;  // staging-policy admission wait
  /// Fraction of the fleet makespan this device had >= 1 kernel resident
  /// (busy/makespan, in [0, 1]); a device idling on PCIe reports low
  /// utilization even when its last item finishes near the makespan.
  double utilization = 0;  // 0 for idle devices
};

/// One node's share of a cluster batch (ClusterPlan; see cluster_plan.hpp).
struct GpuNodeShardStats {
  std::size_t devices = 0;
  std::size_t signals = 0;
  double model_ms = 0;   // node finish on the merged cluster clock
  double offset_ms = 0;  // compute start (first NIC ingress arrival)
  double nic_bytes = 0;  // bytes staged to this node over the NIC
  double nic_stall_ms = 0;  // fabric-contention dilation
  double nic_queue_ms = 0;  // port-FIFO wait
  /// busy / cluster makespan over the node's devices, averaged.
  double utilization = 0;
};

/// GpuBatchStats analogue for a sharded batch: fleet makespan plus the
/// imbalance/contention story across devices.
struct GpuFleetStats {
  double model_ms = 0;  // merged fleet makespan (shared t=0)
  double host_ms = 0;   // wall time of the functional simulation
  std::size_t signals = 0;
  std::size_t candidates = 0;  // summed over the batch
  std::size_t devices = 0;
  bool pipelined = false;  // any shard ran the two-stream pipeline
  std::string staging;     // PcieStaging policy name the merge ran under
  /// max/mean device finish over devices that received signals: 1.0 is a
  /// perfectly balanced fleet, 2.0 means the slowest device ran twice as
  /// long as the average.
  double imbalance = 1.0;
  double pcie_stall_ms = 0;  // summed over devices
  double pcie_queue_ms = 0;  // summed staging admission wait
  std::vector<GpuDeviceShardStats> per_device;  // device order
  /// Input order (per_signal[i] describes xs[i]); each signal's window is
  /// on its own device's contention-free clock — cross-device spans are
  /// not directly comparable, use per_device/model_ms for fleet timing.
  std::vector<GpuSignalStats> per_signal;
  std::vector<std::size_t> device_of;  // input order: shard assignment

  /// Cluster fields (ClusterPlan only; defaults describe a fleet batch so
  /// every existing consumer is untouched). device_of stays the *global*
  /// device index (node-major flattened); node_of is the node split.
  std::size_t nodes = 1;
  double nic_stall_ms = 0;     // summed fabric-contention dilation
  double nic_queue_ms = 0;     // summed port-FIFO wait
  double nic_bytes = 0;        // total bytes crossing the fabric
  std::size_t nic_transfers = 0;
  double nic_transfer_ms = 0;  // summed NIC transfer spans
  std::vector<GpuNodeShardStats> per_node;  // node order; empty for fleets
  std::vector<std::size_t> node_of;         // input order; empty for fleets

  /// Folds this fleet batch into the always-on registry: fleet counters
  /// and makespan/PCIe histograms, per-device utilization/finish gauges
  /// and signal counters, and every signal's latency + phase spans
  /// attributed to its assigned device. execute_mixed() publishes
  /// automatically (the shard-level GpuBatchStats stay silent, so fleet
  /// signals are counted exactly once).
  void to_metrics(cusim::MetricsRegistry& reg) const;

  /// Cluster-only series (cusfft_cluster_* / cusfft_node_*). Published by
  /// ClusterPlan on top of the per-node fleet publications — the fleet
  /// series above fire once per node batch, so this layer deliberately
  /// never re-counts signals or per-signal latencies.
  void to_cluster_metrics(cusim::MetricsRegistry& reg) const;
};

class MultiGpuPlan {
 public:
  /// One GpuPlan per group device (plans build serially — the flat-filter
  /// cache and BufferPool warm up exactly once per shape).
  MultiGpuPlan(cusim::DeviceGroup& group, sfft::Params params, Options opts);
  ~MultiGpuPlan();
  MultiGpuPlan(MultiGpuPlan&&) noexcept;
  MultiGpuPlan& operator=(MultiGpuPlan&&) noexcept;
  MultiGpuPlan(const MultiGpuPlan&) = delete;
  MultiGpuPlan& operator=(const MultiGpuPlan&) = delete;

  std::size_t devices() const;
  const sfft::Params& params() const;
  cusim::DeviceGroup& group();

  void set_shard_policy(ShardPolicy p);
  ShardPolicy shard_policy() const;

  /// Shard assignment for a uniform batch of the plan's own shape:
  /// element i is the device index signal i would run on. Pure and
  /// deterministic (see file comment for the policy semantics).
  std::vector<std::size_t> shard_assignment(std::size_t batch) const;

  /// Mixed-shape assignment: one Params per signal. Under kCostLpt the
  /// LPT pass prices each signal on each device; under kUnitGreedy the
  /// shapes are ignored (every signal costs the legacy uniform weight).
  std::vector<std::size_t> shard_assignment(
      std::span<const sfft::Params> shapes) const;

  /// Shards the batch across the fleet and executes every shard
  /// concurrently (one host thread per non-empty shard), then merges the
  /// device timelines into one fleet schedule. Results and per-signal
  /// stats come back in input order, bit-identical to single-device
  /// execute_many. `mode` applies inside each shard.
  std::vector<SparseSpectrum> execute_many(
      std::span<const std::span<const cplx>> xs,
      GpuFleetStats* stats = nullptr, BatchMode mode = BatchMode::kAuto);

  /// Mixed-shape fleet execution: signals may carry different Params
  /// (n, k, filter, ...). Each device runs one cached GpuPlan per
  /// distinct shape inside a single capture; results per signal are
  /// bit-identical to running that signal's shape on a single device.
  std::vector<SparseSpectrum> execute_mixed(
      std::span<const MixedSignal> signals, GpuFleetStats* stats = nullptr,
      BatchMode mode = BatchMode::kAuto);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cusfft::gpu
