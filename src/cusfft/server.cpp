#include "cusfft/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/rng.hpp"
#include "cusfft/cluster_plan.hpp"
#include "cusim/cluster.hpp"
#include "cusim/metrics.hpp"
#include "signal/generate.hpp"

namespace cusfft::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

[[noreturn]] void bad_env(const char* name, const char* raw,
                          const char* want) {
  std::ostringstream os;
  os << name << "=\"" << raw << "\": expected " << want;
  throw std::invalid_argument(os.str());
}

// Strict environment parsers, mirroring bench/common.cpp semantics but as
// typed errors: the whole value must parse, nothing latches. Unset or
// empty keeps the fallback.
std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (errno != 0 || end == raw || *end != '\0' || raw[0] == '-')
    bad_env(name, raw, "a non-negative integer");
  return static_cast<std::size_t>(v);
}

double env_ms(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (errno != 0 || end == raw || *end != '\0' || !std::isfinite(v) || v < 0)
    bad_env(name, raw, "a finite non-negative number of milliseconds");
  return v;
}

std::string fmt_ms(double v) {
  if (std::isinf(v)) return "inf";
  char b[40];
  std::snprintf(b, sizeof b, "%.6f", v);
  return b;
}

std::string fmt_ids(const std::vector<u64>& ids) {
  std::string s = "[";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i) s += ',';
    s += std::to_string(ids[i]);
  }
  s += ']';
  return s;
}

ClassLatency summarize_latencies(std::vector<double> v) {
  ClassLatency c;
  c.count = v.size();
  if (v.empty()) return c;
  std::sort(v.begin(), v.end());
  const auto at = [&](double q) {
    const std::size_t rank =
        static_cast<std::size_t>(std::ceil(q * static_cast<double>(v.size())));
    return v[std::min(v.size() - 1, rank == 0 ? 0 : rank - 1)];
  };
  c.p50_ms = at(0.50);
  c.p99_ms = at(0.99);
  c.max_ms = v.back();
  double sum = 0;
  for (double x : v) sum += x;
  c.mean_ms = sum / static_cast<double>(v.size());
  return c;
}

}  // namespace

const char* slo_name(SloClass c) {
  return c == SloClass::kLatency ? "latency" : "throughput";
}

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kPending:
      return "pending";
    case Outcome::kCompleted:
      return "completed";
    case Outcome::kShed:
      return "shed";
    case Outcome::kRejected:
      return "rejected";
  }
  return "?";
}

ServerConfig ServerConfig::from_env(ServerConfig base) {
  base.devices = env_size("CUSFFT_SERVE_DEVICES", base.devices);
  base.nodes = env_size("CUSFFT_SERVE_NODES", base.nodes);
  base.max_batch = env_size("CUSFFT_SERVE_MAX_BATCH", base.max_batch);
  base.max_wait_throughput_ms =
      env_ms("CUSFFT_SERVE_MAX_WAIT_MS", base.max_wait_throughput_ms);
  base.max_wait_latency_ms =
      env_ms("CUSFFT_SERVE_MAX_WAIT_LAT_MS", base.max_wait_latency_ms);
  base.tenant_queue_depth =
      env_size("CUSFFT_SERVE_QUEUE_DEPTH", base.tenant_queue_depth);
  base.validate();
  return base;
}

void ServerConfig::validate() const {
  if (devices < 1)
    throw std::invalid_argument("ServerConfig: devices must be >= 1");
  if (nodes < 1)
    throw std::invalid_argument("ServerConfig: nodes must be >= 1");
  if (max_batch < 1)
    throw std::invalid_argument("ServerConfig: max_batch must be >= 1");
  if (tenant_queue_depth < 1)
    throw std::invalid_argument(
        "ServerConfig: tenant_queue_depth must be >= 1");
  if (!std::isfinite(max_wait_latency_ms) || max_wait_latency_ms < 0)
    throw std::invalid_argument(
        "ServerConfig: max_wait_latency_ms must be finite and >= 0");
  if (!std::isfinite(max_wait_throughput_ms) || max_wait_throughput_ms < 0)
    throw std::invalid_argument(
        "ServerConfig: max_wait_throughput_ms must be finite and >= 0");
}

void GpuServeStats::to_metrics(cusim::MetricsRegistry& reg) const {
  reg.gauge("cusfft_serve_qps").set(sustained_qps);
  reg.gauge("cusfft_serve_queue_depth_max")
      .set_max(static_cast<double>(max_queue_depth));
  reg.gauge("cusfft_serve_batch_fill").set(mean_batch_fill);
  reg.gauge("cusfft_serve_virtual_ms").set(virtual_ms);
}

struct Server::Impl {
  ServerConfig cfg;

  mutable std::mutex mu;
  std::condition_variable cv_batcher;  // batcher wakeups (threaded mode)
  std::condition_variable cv_done;     // wait(id) wakeups
  bool running = false;
  bool stopping = false;
  std::thread batcher;

  double now = 0;          // virtual clock (ms)
  double device_free = 0;  // fleet free time on the virtual clock
  u64 next_id = 1;
  std::size_t batch_seq = 0;
  std::size_t executed = 0;  // signals launched across all batches

  struct Pend {
    u64 id = 0;
    std::string tenant;
    sfft::Params params;
    cvec x;
    SloClass slo = SloClass::kThroughput;
    double arrival = 0;
    double deadline_abs = kInf;
  };
  std::deque<Pend> pending;                  // global FIFO
  std::map<std::string, std::size_t> depth;  // per-tenant pending count
  std::map<u64, Response> terminal;
  std::size_t max_depth = 0;

  std::string trace;                   // full schedule trace (with times)
  std::vector<std::string> decisions;  // float-free golden lines

  std::vector<double> lat_latency;     // completed modeled latencies
  std::vector<double> lat_throughput;

  std::size_t n_submitted = 0, n_completed = 0, n_shed = 0, n_rejected = 0;

  // Fleet, built lazily at the first batch launch. Only the thread that
  // launches batches touches it (the caller in virtual mode, the batcher
  // thread in threaded mode).
  std::unique_ptr<cusim::DeviceGroup> group;
  std::unique_ptr<gpu::MultiGpuPlan> mplan;
  std::unique_ptr<cusim::Cluster> cluster;  // cfg.nodes > 1
  std::unique_ptr<gpu::ClusterPlan> cplan;  // cfg.nodes > 1

  // Cached handles into the global registry (hot-path contract).
  cusim::Counter& m_req_lat;
  cusim::Counter& m_req_thr;
  cusim::Counter& m_completed;
  cusim::Counter& m_shed;
  cusim::Counter& m_rejected;
  cusim::Counter& m_batches;
  cusim::Histogram& m_batch_size;
  cusim::Histogram& m_lat_lat;
  cusim::Histogram& m_lat_thr;
  cusim::Gauge& m_depth_max;

  explicit Impl(ServerConfig c)
      : cfg(std::move(c)),
        m_req_lat(cusim::MetricsRegistry::global().counter(
            cusim::MetricsRegistry::label("cusfft_serve_requests_total",
                                          "class", "latency"))),
        m_req_thr(cusim::MetricsRegistry::global().counter(
            cusim::MetricsRegistry::label("cusfft_serve_requests_total",
                                          "class", "throughput"))),
        m_completed(cusim::MetricsRegistry::global().counter(
            "cusfft_serve_completed_total")),
        m_shed(cusim::MetricsRegistry::global().counter(
            "cusfft_serve_shed_total")),
        m_rejected(cusim::MetricsRegistry::global().counter(
            "cusfft_serve_rejected_total")),
        m_batches(cusim::MetricsRegistry::global().counter(
            "cusfft_serve_batches_total")),
        m_batch_size(cusim::MetricsRegistry::global().histogram(
            "cusfft_serve_batch_size")),
        m_lat_lat(cusim::MetricsRegistry::global().histogram(
            cusim::MetricsRegistry::label("cusfft_serve_latency_ms", "class",
                                          "latency"))),
        m_lat_thr(cusim::MetricsRegistry::global().histogram(
            cusim::MetricsRegistry::label("cusfft_serve_latency_ms", "class",
                                          "throughput"))),
        m_depth_max(cusim::MetricsRegistry::global().gauge(
            "cusfft_serve_queue_depth_max")) {
    cfg.validate();
  }

  double wait_of(SloClass c) const {
    return c == SloClass::kLatency ? cfg.max_wait_latency_ms
                                   : cfg.max_wait_throughput_ms;
  }

  // ---- admission (lock held) ------------------------------------------

  u64 admit(double arrival, Request&& r) {
    r.params.validate();
    if (r.x.size() != r.params.n)
      throw std::invalid_argument("serve::Request: x.size() != params.n");
    if (std::isnan(r.deadline_ms) || r.deadline_ms < 0)
      throw std::invalid_argument(
          "serve::Request: deadline_ms must be >= 0 (or +inf for none)");
    const u64 id = next_id++;
    ++n_submitted;
    (r.slo == SloClass::kLatency ? m_req_lat : m_req_thr).inc();
    trace += "submit id=" + std::to_string(id) + " tenant=" + r.tenant +
             " class=" + slo_name(r.slo) + " t=" + fmt_ms(arrival) + "\n";
    std::size_t& d = depth[r.tenant];
    if (d >= cfg.tenant_queue_depth) {
      ++n_rejected;
      m_rejected.inc();
      Response resp;
      resp.id = id;
      resp.tenant = r.tenant;
      resp.slo = r.slo;
      resp.outcome = Outcome::kRejected;
      resp.arrival_ms = arrival;
      resp.done_ms = arrival;
      trace += "reject id=" + std::to_string(id) + " tenant=" + r.tenant +
               " t=" + fmt_ms(arrival) + " depth=" + std::to_string(d) + "\n";
      decisions.push_back("reject id=" + std::to_string(id) +
                          " tenant=" + r.tenant);
      terminal.emplace(id, std::move(resp));
      cv_done.notify_all();
      return id;
    }
    ++d;
    Pend p;
    p.id = id;
    p.tenant = std::move(r.tenant);
    p.params = r.params;
    p.x = std::move(r.x);
    p.slo = r.slo;
    p.arrival = arrival;
    p.deadline_abs = arrival + r.deadline_ms;  // inf-safe
    pending.push_back(std::move(p));
    max_depth = std::max(max_depth, pending.size());
    m_depth_max.set_max(static_cast<double>(pending.size()));
    return id;
  }

  // ---- batch close / formation (lock held) ----------------------------

  struct Close {
    double t = kInf;
    const char* reason = "wait";
  };

  // Earliest virtual time the head batch can launch, and why. pending
  // must be non-empty. The wait trigger takes the minimum SLO window over
  // the requests that would ride along — a latency-class arrival preempts
  // the throughput accumulation window.
  Close next_close() const {
    const double start = std::max(device_free, pending.front().arrival);
    Close c;
    if (pending.size() >= cfg.max_batch) {
      c.t = std::max(start, pending[cfg.max_batch - 1].arrival);
      c.reason = "size";
    }
    double w = kInf;
    const std::size_t lim = std::min(pending.size(), cfg.max_batch);
    for (std::size_t i = 0; i < lim; ++i)
      w = std::min(w, pending[i].arrival + wait_of(pending[i].slo));
    w = std::max(start, w);
    if (w < c.t) {
      c.t = w;
      c.reason = "wait";
    }
    return c;
  }

  struct Batch {
    double L = 0;
    const char* reason = "";
    std::vector<Pend> run;
    std::vector<u64> shed_ids;
  };

  void resolve_shed(const Pend& p, double t, const char* why) {
    ++n_shed;
    m_shed.inc();
    Response resp;
    resp.id = p.id;
    resp.tenant = p.tenant;
    resp.slo = p.slo;
    resp.outcome = Outcome::kShed;
    resp.arrival_ms = p.arrival;
    resp.done_ms = t;
    trace += "shed id=" + std::to_string(p.id) + " tenant=" + p.tenant +
             " t=" + fmt_ms(t) + " reason=" + why + "\n";
    terminal.emplace(p.id, std::move(resp));
    cv_done.notify_all();
  }

  // Pops up to max_batch requests for a launch at virtual time L,
  // shedding the ones whose deadline already expired (they do not count
  // toward the batch size — expired work never reaches the device).
  Batch form(double L, const char* reason) {
    Batch b;
    b.L = L;
    b.reason = reason;
    while (!pending.empty() && b.run.size() < cfg.max_batch) {
      Pend p = std::move(pending.front());
      pending.pop_front();
      --depth[p.tenant];
      if (L > p.deadline_abs) {
        resolve_shed(p, L, "deadline");
        b.shed_ids.push_back(p.id);
      } else {
        b.run.push_back(std::move(p));
      }
    }
    return b;
  }

  void note_close(const Batch& b, double model_ms) {
    std::vector<u64> ids;
    ids.reserve(b.run.size());
    for (const Pend& p : b.run) ids.push_back(p.id);
    trace += "close seq=" +
             (b.run.empty() ? std::string("-")
                            : std::to_string(batch_seq - 1)) +
             " t=" + fmt_ms(b.L) + " reason=" + b.reason +
             " n=" + std::to_string(b.run.size()) + " ids=" + fmt_ids(ids) +
             " model_ms=" + fmt_ms(model_ms) + "\n";
    decisions.push_back(std::string("close reason=") + b.reason +
                        " ids=" + fmt_ids(ids) +
                        " shed=" + fmt_ids(b.shed_ids));
  }

  // ---- execution ------------------------------------------------------

  void ensure_fleet(const sfft::Params& shape) {
    if (group || cplan) return;
    if (cfg.nodes > 1) {
      cluster = std::make_unique<cusim::Cluster>(cfg.nodes, cfg.devices);
      cplan = std::make_unique<gpu::ClusterPlan>(*cluster, shape, cfg.opts);
      cplan->set_shard_policy(cfg.shard_policy);
      return;
    }
    group = std::make_unique<cusim::DeviceGroup>(cfg.devices);
    mplan = std::make_unique<gpu::MultiGpuPlan>(*group, shape, cfg.opts);
    mplan->set_shard_policy(cfg.shard_policy);
  }

  // Device-side work only — reads b.run, never queue state, so the
  // threaded path may call it with the lock released.
  gpu::GpuFleetStats run_batch(const Batch& b,
                               std::vector<SparseSpectrum>& out) {
    ensure_fleet(b.run.front().params);
    std::vector<gpu::MixedSignal> mix;
    mix.reserve(b.run.size());
    for (const Pend& p : b.run)
      mix.push_back({std::span<const cplx>(p.x), p.params});
    gpu::GpuFleetStats fs;
    out = cplan != nullptr
              ? cplan->execute_mixed(mix, &fs, gpu::BatchMode::kAuto)
              : mplan->execute_mixed(mix, &fs, gpu::BatchMode::kAuto);
    return fs;
  }

  // (lock held) Accounts a launched batch: per-request completion times
  // from the modeled per-signal windows, fleet clock advance by the
  // merged makespan.
  void resolve_batch(Batch& b, std::vector<SparseSpectrum>& out,
                     const gpu::GpuFleetStats& fs) {
    const std::size_t seq = batch_seq++;
    executed += b.run.size();
    m_batches.inc();
    m_batch_size.observe(static_cast<double>(b.run.size()));
    note_close(b, fs.model_ms);
    for (std::size_t i = 0; i < b.run.size(); ++i) {
      Pend& p = b.run[i];
      const double done_t = b.L + fs.per_signal[i].end_ms;
      const double lat = done_t - p.arrival;
      ++n_completed;
      m_completed.inc();
      (p.slo == SloClass::kLatency ? lat_latency : lat_throughput)
          .push_back(lat);
      (p.slo == SloClass::kLatency ? m_lat_lat : m_lat_thr).observe(lat);
      Response resp;
      resp.id = p.id;
      resp.tenant = std::move(p.tenant);
      resp.slo = p.slo;
      resp.outcome = Outcome::kCompleted;
      resp.spectrum = std::move(out[i]);
      resp.arrival_ms = p.arrival;
      resp.done_ms = done_t;
      resp.latency_ms = lat;
      resp.batch_seq = seq;
      trace += "done id=" + std::to_string(p.id) + " t=" + fmt_ms(done_t) +
               " latency_ms=" + fmt_ms(lat) + " batch=" +
               std::to_string(seq) + "\n";
      terminal.emplace(p.id, std::move(resp));
    }
    device_free = b.L + fs.model_ms;
    now = std::max(now, b.L);
    trace += "free t=" + fmt_ms(device_free) + "\n";
    cv_done.notify_all();
  }

  // (lock held; virtual mode) Launches every batch that closes up to t.
  void advance_to(double t) {
    while (!pending.empty()) {
      const Close c = next_close();
      if (c.t > t) break;
      launch_inline(c.t, c.reason);
    }
    now = std::max(now, t);
  }

  void launch_inline(double L, const char* reason) {
    Batch b = form(L, reason);
    if (b.run.empty()) {
      note_close(b, 0.0);
      now = std::max(now, L);
      return;
    }
    std::vector<SparseSpectrum> out;
    const gpu::GpuFleetStats fs = run_batch(b, out);
    resolve_batch(b, out, fs);
  }

  void drain_all() {
    while (!pending.empty()) {
      const std::size_t lim = std::min(pending.size(), cfg.max_batch);
      const double L = std::max(device_free, pending[lim - 1].arrival);
      const char* reason =
          pending.size() >= cfg.max_batch ? "size" : "drain";
      launch_inline(L, reason);
    }
  }

  // ---- threaded batcher -----------------------------------------------

  void batcher_main() {
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      if (pending.empty()) {
        if (stopping) break;
        cv_batcher.wait(lk, [&] { return stopping || !pending.empty(); });
        continue;
      }
      if (!stopping && pending.size() < cfg.max_batch) {
        // Wall-clock pacing: give the batch its shortest pending SLO
        // window to fill up. New arrivals re-check the predicate and keep
        // waiting the remaining window (they ride along for free —
        // continuous batching); hitting max_batch or stop() closes early.
        double wait_ms = kInf;
        const std::size_t lim = std::min(pending.size(), cfg.max_batch);
        for (std::size_t i = 0; i < lim; ++i)
          wait_ms = std::min(wait_ms, wait_of(pending[i].slo));
        if (wait_ms > 0) {
          cv_batcher.wait_for(
              lk, std::chrono::duration<double, std::milli>(wait_ms), [&] {
                return stopping || pending.size() >= cfg.max_batch;
              });
        }
        if (pending.empty()) continue;  // everything cancelled meanwhile
      }
      // Virtual launch time: the deterministic close bound, except that a
      // stop()-flush prices like drain (launch as soon as the device
      // frees).
      const char* reason;
      double L;
      if (pending.size() >= cfg.max_batch) {
        reason = "size";
        L = std::max(device_free, pending[cfg.max_batch - 1].arrival);
      } else if (stopping) {
        reason = "drain";
        L = std::max(device_free, pending[pending.size() - 1].arrival);
      } else {
        const Close c = next_close();
        reason = c.reason;
        L = c.t;
      }
      Batch b = form(L, reason);
      if (b.run.empty()) {
        note_close(b, 0.0);
        now = std::max(now, L);
        continue;
      }
      lk.unlock();  // submissions stay open while the device runs
      std::vector<SparseSpectrum> out;
      const gpu::GpuFleetStats fs = run_batch(b, out);
      lk.lock();
      resolve_batch(b, out, fs);
    }
  }

  GpuServeStats stats_locked() const {
    GpuServeStats s;
    s.submitted = n_submitted;
    s.completed = n_completed;
    s.shed = n_shed;
    s.rejected = n_rejected;
    s.batches = batch_seq;
    s.max_queue_depth = max_depth;
    s.virtual_ms = std::max(now, device_free);
    s.sustained_qps =
        s.virtual_ms > 0
            ? static_cast<double>(n_completed) / (s.virtual_ms / 1000.0)
            : 0.0;
    s.mean_batch_fill =
        batch_seq > 0 ? static_cast<double>(executed) /
                            static_cast<double>(batch_seq * cfg.max_batch)
                      : 0.0;
    s.latency = summarize_latencies(lat_latency);
    s.throughput = summarize_latencies(lat_throughput);
    return s;
  }

  void require_virtual() const {
    if (running)
      throw std::logic_error(
          "serve::Server: virtual-clock calls (submit_at/advance/drain) are "
          "illegal while the batcher thread runs; stop() first");
  }
};

Server::Server(ServerConfig cfg) : impl_(std::make_unique<Impl>(std::move(cfg))) {}

Server::~Server() {
  if (impl_) stop();
}

const ServerConfig& Server::config() const { return impl_->cfg; }

u64 Server::submit_at(double t_ms, Request r) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->require_virtual();
  const double arrival = std::max(t_ms, impl_->now);
  impl_->advance_to(arrival);
  return impl_->admit(arrival, std::move(r));
}

void Server::advance(double t_ms) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->require_virtual();
  if (t_ms < impl_->now) return;
  impl_->advance_to(t_ms);
}

void Server::drain() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->require_virtual();
  impl_->drain_all();
}

void Server::start() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (impl_->running) return;
  impl_->running = true;
  impl_->stopping = false;
  impl_->batcher = std::thread([this] { impl_->batcher_main(); });
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    if (!impl_->running) return;
    impl_->stopping = true;
    impl_->cv_batcher.notify_all();
  }
  impl_->batcher.join();
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->running = false;
  impl_->stopping = false;
}

u64 Server::submit(Request r) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (!impl_->running)
    throw std::logic_error(
        "serve::Server::submit: batcher not running; start() first (or "
        "drive the virtual clock with submit_at)");
  const u64 id = impl_->admit(impl_->now, std::move(r));
  impl_->cv_batcher.notify_all();
  return id;
}

Response Server::wait(u64 id) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  impl_->cv_done.wait(lk,
                      [&] { return impl_->terminal.count(id) != 0; });
  return impl_->terminal.at(id);
}

bool Server::cancel(u64 id) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (auto it = impl_->pending.begin(); it != impl_->pending.end(); ++it) {
    if (it->id != id) continue;
    Impl::Pend p = std::move(*it);
    impl_->pending.erase(it);
    --impl_->depth[p.tenant];
    impl_->resolve_shed(p, impl_->now, "cancel");
    impl_->decisions.push_back("cancel id=" + std::to_string(id));
    impl_->cv_batcher.notify_all();
    return true;
  }
  return false;
}

bool Server::done(u64 id) const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->terminal.count(id) != 0;
}

Response Server::response(u64 id) const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  const auto it = impl_->terminal.find(id);
  if (it != impl_->terminal.end()) return it->second;
  Response r;
  r.id = id;
  for (const Impl::Pend& p : impl_->pending) {
    if (p.id != id) continue;
    r.tenant = p.tenant;
    r.slo = p.slo;
    r.arrival_ms = p.arrival;
    break;
  }
  return r;  // Outcome::kPending
}

GpuServeStats Server::stats() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->stats_locked();
}

std::string Server::schedule_trace() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->trace;
}

std::string Server::decision_trace() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::string out;
  for (const std::string& d : impl_->decisions) {
    out += d;
    out += '\n';
  }
  return out;
}

// ---- scripted traces ---------------------------------------------------

std::string Trace::to_text() const {
  std::string out = "# arrival_ms,tenant,n,k,class,deadline_ms\n";
  for (const TraceEvent& e : events) {
    out += fmt_ms(e.arrival_ms) + "," + e.tenant + "," +
           std::to_string(e.n) + "," + std::to_string(e.k) + "," +
           slo_name(e.slo) + "," + fmt_ms(e.deadline_ms) + "\n";
  }
  return out;
}

namespace {

[[noreturn]] void bad_line(std::size_t lineno, const std::string& why) {
  throw std::invalid_argument("trace line " + std::to_string(lineno) + ": " +
                              why);
}

double parse_trace_ms(const std::string& field, std::size_t lineno,
                      bool allow_inf) {
  if (allow_inf && field == "inf") return kInf;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (errno != 0 || end == field.c_str() || *end != '\0' ||
      !std::isfinite(v) || v < 0)
    bad_line(lineno, "bad milliseconds value \"" + field + "\"");
  return v;
}

std::size_t parse_trace_size(const std::string& field, std::size_t lineno) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(field.c_str(), &end, 10);
  if (errno != 0 || end == field.c_str() || *end != '\0' || field[0] == '-' ||
      v == 0)
    bad_line(lineno, "bad positive integer \"" + field + "\"");
  return static_cast<std::size_t>(v);
}

}  // namespace

Trace Trace::parse(const std::string& text) {
  Trace t;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  double prev = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields;
    std::size_t pos = 0;
    for (;;) {
      const std::size_t comma = line.find(',', pos);
      fields.push_back(line.substr(pos, comma - pos));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (fields.size() != 6)
      bad_line(lineno, "expected 6 comma-separated fields, got " +
                           std::to_string(fields.size()));
    TraceEvent e;
    e.arrival_ms = parse_trace_ms(fields[0], lineno, /*allow_inf=*/false);
    e.tenant = fields[1];
    if (e.tenant.empty()) bad_line(lineno, "empty tenant");
    e.n = parse_trace_size(fields[2], lineno);
    e.k = parse_trace_size(fields[3], lineno);
    if (fields[4] == "latency")
      e.slo = SloClass::kLatency;
    else if (fields[4] == "throughput")
      e.slo = SloClass::kThroughput;
    else
      bad_line(lineno, "bad class \"" + fields[4] +
                           "\" (want latency|throughput)");
    e.deadline_ms = parse_trace_ms(fields[5], lineno, /*allow_inf=*/true);
    if (e.arrival_ms < prev)
      bad_line(lineno, "arrivals must be nondecreasing");
    prev = e.arrival_ms;
    t.events.push_back(std::move(e));
  }
  return t;
}

Trace canned_trace(std::size_t n_big, std::size_t k_big, u64 seed) {
  Trace t;
  const std::size_t n_small = std::max<std::size_t>(256, n_big / 4);
  const std::size_t k_small =
      std::min(std::max<std::size_t>(4, k_big / 4), n_small / 8);
  Rng rng(seed ^ 0x5e77e5ULL);
  double now = 0;
  const auto push = [&](double at, const char* tenant, std::size_t n,
                        std::size_t k, SloClass slo, double dl) {
    TraceEvent e;
    e.arrival_ms = at;
    e.tenant = tenant;
    e.n = n;
    e.k = k;
    e.slo = slo;
    e.deadline_ms = dl;
    t.events.push_back(std::move(e));
  };
  // Three tenants: "alpha" sends steady latency-class full-size requests,
  // "bravo" trickles throughput-class quarter-size work behind each one,
  // and every fourth step "charlie" bursts six submissions at once — the
  // burst overruns small admission quotas (rejects) and carries two tight
  // deadlines (sheds under queueing).
  for (int step = 0; step < 12; ++step) {
    now += 1.0 + 2.0 * rng.next_double();
    push(now, "alpha", n_big, k_big, SloClass::kLatency, kInf);
    for (int j = 1; j <= 3; ++j)
      push(now + 0.05 * j, "bravo", n_small, k_small, SloClass::kThroughput,
           kInf);
    if (step % 4 == 3) {
      // The deadlines ride on the first two burst members: the tail of
      // the burst is what a depth-4 quota rejects, and a rejected
      // request can never be shed.
      const double burst = now + 0.2;
      for (int j = 0; j < 6; ++j)
        push(burst, "charlie", n_small, k_small, SloClass::kThroughput,
             j < 2 ? 0.25 : kInf);
    }
  }
  return t;
}

sfft::Params trace_params(const TraceEvent& e, u64 signal_seed) {
  sfft::Params p;
  p.n = e.n;
  p.k = e.k;
  p.seed = signal_seed;
  return p;
}

cvec trace_signal(const TraceEvent& e, u64 signal_seed, std::size_t index) {
  Rng rng(signal_seed ^ (0x9E3779B97F4A7C15ULL * (index + 1)) ^
          (static_cast<u64>(e.n) << 20) ^ static_cast<u64>(e.k));
  return signal::make_sparse_signal(e.n, e.k, rng).x;
}

std::vector<u64> replay(Server& s, const Trace& t, u64 signal_seed) {
  std::vector<u64> ids;
  ids.reserve(t.events.size());
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    const TraceEvent& e = t.events[i];
    Request r;
    r.tenant = e.tenant;
    r.params = trace_params(e, signal_seed);
    r.x = trace_signal(e, signal_seed, i);
    r.slo = e.slo;
    r.deadline_ms = e.deadline_ms;
    ids.push_back(s.submit_at(e.arrival_ms, std::move(r)));
  }
  s.drain();
  return ids;
}

}  // namespace cusfft::serve
