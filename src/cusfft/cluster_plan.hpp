// Cluster execution: batches sharded across a cusim::Cluster of nodes
// (each node one DeviceGroup), and AccFFT-style slab decomposition of one
// signal whose working set exceeds a single device's modeled memory.
//
// Two execution shapes:
//
//   execute_many / execute_mixed — node-level sharding. The PR 5 cost
//   model prices each signal per node (per-device analytic cost divided
//   by the node's device count) plus a NIC staging term for every node
//   except the head (node 0 is co-located with the data, so its shard
//   pays no NIC). The LPT pass then reuses the fleet discipline across
//   the node x device hierarchy: signals place onto the node with the
//   smallest projected finish, and each node's MultiGpuPlan re-shards
//   its slice across its own devices. Ingress staging is recorded as
//   modeled NIC transfers overlapped with compute (a node starts after
//   its *first* payload lands). At M = 1 every call delegates verbatim
//   to the node's MultiGpuPlan — stats, artifacts, and spectra are the
//   fleet's, bit for bit.
//
//   execute_slab — one oversized signal, input-slice decomposition. The
//   time-domain input splits into M contiguous slices; node m stages
//   only its slice (n/M samples over the NIC for m > 0), and its
//   binning kernel walks the full filter-tap sequence but accumulates
//   only taps whose permuted index lands in its slice. The per-node
//   partial bucket sums are exact per tap; the head node gathers them
//   (NIC exchange + barrier), reduces, and runs the estimation phase.
//   Summing partials regroups the floating-point accumulation, so the
//   slab spectrum is accuracy-tested against SerialPlan, not memcmp'd.
//
// Ordering contract matches MultiGpuPlan: spectra and per_signal stats
// in input order; device_of carries *global* (node-major) device
// indices; node_of carries the node split.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "cusfft/multi_plan.hpp"
#include "cusim/cluster.hpp"

namespace cusfft::gpu {

class ClusterPlan {
 public:
  /// One MultiGpuPlan per node (built serially, same shape/options).
  ClusterPlan(cusim::Cluster& cluster, sfft::Params params, Options opts);
  ~ClusterPlan();
  ClusterPlan(ClusterPlan&&) noexcept;
  ClusterPlan& operator=(ClusterPlan&&) noexcept;
  ClusterPlan(const ClusterPlan&) = delete;
  ClusterPlan& operator=(const ClusterPlan&) = delete;

  std::size_t nodes() const;
  std::size_t devices() const;  ///< total, across nodes
  cusim::Cluster& cluster();
  const sfft::Params& params() const;

  /// Forwards to every node's MultiGpuPlan (intra-node assignment).
  void set_shard_policy(ShardPolicy p);
  ShardPolicy shard_policy() const;

  /// Node each signal runs on: per-node cost = per-device analytic cost
  /// / node device count + NIC staging term (0 on the head node), LPT
  /// placement, strict ties to the lowest node. Pure and deterministic.
  std::vector<std::size_t> node_assignment(
      std::span<const sfft::Params> shapes) const;

  /// Shards the batch across nodes, records the NIC ingress, runs each
  /// node's shard through its MultiGpuPlan, and merges everything on the
  /// cluster clock. Results in input order; at M = 1 bit-identical to
  /// MultiGpuPlan::execute_many.
  std::vector<SparseSpectrum> execute_many(
      std::span<const std::span<const cplx>> xs,
      GpuFleetStats* stats = nullptr, BatchMode mode = BatchMode::kAuto);

  /// Mixed-shape cluster execution (see execute_many).
  std::vector<SparseSpectrum> execute_mixed(
      std::span<const MixedSignal> signals, GpuFleetStats* stats = nullptr,
      BatchMode mode = BatchMode::kAuto);

  /// Slab decomposition of one signal (see file comment). Requires
  /// params().comb == false (the Comb prefilter needs the whole signal
  /// resident). Throws std::runtime_error when the working set exceeds
  /// one device's memory and nodes() == 1 — the run that is impossible
  /// without the cluster.
  SparseSpectrum execute_slab(std::span<const cplx> x,
                              GpuFleetStats* stats = nullptr);

  /// Modeled single-device working set of shape `p` (signal + score +
  /// filter taps + per-loop buckets), the execute_slab oversize test.
  static std::size_t slab_working_set_bytes(const sfft::Params& p);

  /// One slab's per-device residency when `p` is decomposed across
  /// `nodes` nodes (input slice + filter taps + partial bins + gather
  /// scratch). execute_slab refuses when this still exceeds the node's
  /// device memory; benches/tests use it to size oversized-signal demos
  /// (the modeled memory must sit between this and the full working set).
  static std::size_t slab_node_working_set_bytes(const sfft::Params& p,
                                                 std::size_t nodes);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cusfft::gpu
