#include "cusfft/autopick.hpp"

#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/rng.hpp"
#include "cusfft/plan.hpp"
#include "cusim/metrics.hpp"
#include "signal/generate.hpp"

namespace cusfft::gpu {

const char* to_string(AutopickMode m) {
  switch (m) {
    case AutopickMode::kMeasured: return "measured";
    case AutopickMode::kModeled: return "modeled";
  }
  return "measured";
}

AutopickMode autopick_mode_from_env() {
  // One getenv per resolution — latching the first value in a static made
  // later setenv() calls silently ineffective for embedders and tests
  // (the CUSFFT_PIPELINE lesson; see plan.cpp's resolve_batch_mode).
  const char* e = std::getenv("CUSFFT_AUTOPICK");
  if (e == nullptr || e[0] == '\0') return AutopickMode::kMeasured;
  const std::string_view v(e);
  if (v == "measured") return AutopickMode::kMeasured;
  if (v == "modeled") return AutopickMode::kModeled;
  throw std::invalid_argument(
      "CUSFFT_AUTOPICK: expected 'measured' or 'modeled', got '" +
      std::string(v) + "'");
}

std::optional<sfft::Algorithm> algo_override_from_env() {
  const char* e = std::getenv("CUSFFT_ALGO");
  if (e == nullptr || e[0] == '\0') return std::nullopt;
  const auto a = sfft::parse_algorithm(e);
  if (!a)
    throw std::invalid_argument(
        "CUSFFT_ALGO: expected 'cusfft', 'ffast' or 'auto', got '" +
        std::string(e) + "'");
  return a;
}

namespace {

/// Cache key: every Params field that shapes either backend's kernel
/// sequence, plus the noise level, the device spec, and the transfer
/// toggle. (seed is included — it draws the calibration signal and the
/// cusFFT permutations.)
std::string cell_key(const sfft::Params& p, const perfmodel::GpuSpec& spec,
                     const Options& opts, double noise) {
  std::ostringstream os;
  os << p.n << '/' << p.k << '/' << p.bcst << '/' << p.loops_loc << '/'
     << p.loops_est << '/' << p.loc_threshold << '/' << p.cutoff_mult << '/'
     << p.comb << '/' << p.comb_cst << '/' << p.comb_rounds << '/'
     << p.comb_keep_mult << '/' << p.seed << '/' << p.ffast_stages << '/'
     << p.ffast_bin_mult << '/' << noise << '/' << spec.name << '/'
     << opts.include_transfer;
  return os.str();
}

std::mutex g_table_mu;
std::map<std::string, CrossoverCell>& table() {
  static std::map<std::string, CrossoverCell> t;
  return t;
}

double measure_backend(const sfft::Params& p, sfft::Algorithm algo,
                       const perfmodel::GpuSpec& spec, const Options& opts,
                       std::span<const cplx> x) {
  sfft::Params q = p;
  q.algo = algo;
  cusim::Device dev(spec);
  GpuPlan plan(dev, q, opts);
  GpuExecStats st;
  plan.execute(x, &st);
  return st.model_ms;
}

}  // namespace

CrossoverCell calibrate_cell(const sfft::Params& p,
                             const perfmodel::GpuSpec& spec,
                             const Options& opts, double noise) {
  const std::string key = cell_key(p, spec, opts, noise);
  {
    std::lock_guard<std::mutex> lock(g_table_mu);
    auto it = table().find(key);
    if (it != table().end()) return it->second;
  }
  // Calibrate outside the lock (a cell runs both backends end to end);
  // concurrent first-touch of the same cell just measures twice and
  // inserts the identical deterministic result.
  Rng rng(p.seed);
  const signal::SparseSignal sig = signal::make_sparse_signal(
      p.n, p.k, rng, {signal::MagnitudeDist::kUnit, noise});
  CrossoverCell cell;
  cell.n = p.n;
  cell.k = p.k;
  cell.noise = noise;
  cell.cusfft_ms =
      measure_backend(p, sfft::Algorithm::kCusfft, spec, opts, sig.x);
  cell.ffast_ms =
      measure_backend(p, sfft::Algorithm::kFfast, spec, opts, sig.x);
  cell.winner = cell.ffast_ms < cell.cusfft_ms ? sfft::Algorithm::kFfast
                                               : sfft::Algorithm::kCusfft;
  std::lock_guard<std::mutex> lock(g_table_mu);
  const auto [it, inserted] = table().emplace(key, cell);
  cusim::MetricsRegistry::global()
      .gauge("cusfft_algo_crossover_cells")
      .set(static_cast<double>(table().size()));
  return it->second;
}

sfft::Algorithm resolve_algorithm(const sfft::Params& p,
                                  const perfmodel::GpuSpec& spec,
                                  const Options& opts) {
  sfft::Algorithm algo = p.algo;
  if (const auto ov = algo_override_from_env()) algo = *ov;
  if (algo != sfft::Algorithm::kAuto) return algo;

  sfft::Algorithm picked;
  if (autopick_mode_from_env() == AutopickMode::kModeled) {
    sfft::Params q = p;
    q.algo = sfft::Algorithm::kCusfft;
    const double cus = modeled_signal_cost_s(q, spec, opts);
    q.algo = sfft::Algorithm::kFfast;
    const double ffa = modeled_signal_cost_s(q, spec, opts);
    picked = ffa < cus ? sfft::Algorithm::kFfast : sfft::Algorithm::kCusfft;
  } else {
    picked = calibrate_cell(p, spec, opts).winner;
  }
  cusim::MetricsRegistry::global()
      .counter(cusim::MetricsRegistry::label("cusfft_algo_picks_total",
                                             "algo", sfft::to_string(picked)))
      .inc();
  return picked;
}

}  // namespace cusfft::gpu
