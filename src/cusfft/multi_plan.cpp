#include "cusfft/multi_plan.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <map>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

#include "core/timer.hpp"
#include "cusfft/autopick.hpp"
#include "cusim/metrics.hpp"
#include "sfft/ffast.hpp"
#include "signal/filter.hpp"

namespace cusfft::gpu {

namespace {

/// Everything that makes two Params produce distinct GpuPlans — the
/// mixed-shape plan cache key. The algorithm (and the FFAST shape knobs)
/// are load-bearing members: before they were added, two same-shape
/// submissions differing only in backend aliased to one plan, so the
/// second silently ran the first's algorithm (regression-pinned in
/// test_multigpu.cpp).
using ShapeKey =
    std::tuple<std::size_t, std::size_t, double, std::size_t, std::size_t,
               std::size_t, double, int, double, double, double, bool,
               double, std::size_t, double, u64, int, std::size_t, double>;

ShapeKey shape_key(const sfft::Params& p) {
  return {p.n,
          p.k,
          p.bcst,
          p.loops_loc,
          p.loops_est,
          p.loc_threshold,
          p.cutoff_mult,
          static_cast<int>(p.filter.kind),
          p.filter.tolerance,
          p.filter.lobefrac_scale,
          p.filter.boxcar_scale,
          p.comb,
          p.comb_cst,
          p.comb_rounds,
          p.comb_keep_mult,
          p.seed,
          static_cast<int>(p.algo),
          p.ffast_stages,
          p.ffast_bin_mult};
}

}  // namespace

double modeled_signal_cost_s(const sfft::Params& p,
                             const perfmodel::GpuSpec& spec,
                             const Options& opts) {
  const double cx = static_cast<double>(sizeof(cplx));
  const double n = static_cast<double>(p.n);

  if (p.algo == sfft::Algorithm::kAuto) {
    // Unresolved shapes are priced at the cheaper backend — what the
    // per-signal resolution inside execute_mixed will (modeled-mode) pick.
    sfft::Params q = p;
    q.algo = sfft::Algorithm::kCusfft;
    const double cus = modeled_signal_cost_s(q, spec, opts);
    q.algo = sfft::Algorithm::kFfast;
    return std::min(cus, modeled_signal_cost_s(q, spec, opts));
  }

  if (p.algo == sfft::Algorithm::kFfast) {
    // FFAST: per stage, the subsample gather reads + writes 6*F_s points
    // and the batched stage FFT streams them once per pass; the peeling
    // decode is host-side and costs no device time.
    const double eff_bw =
        spec.mem_bandwidth_Bps * spec.coalesced_bw_efficiency;
    const double peak = spec.dp_peak_flops();
    double bytes = 0.0, flops = 0.0;
    for (const auto& st :
         sfft::ffast_stage_chain(p.n, p.ffast_bins(), p.ffast_stages)) {
      const double planes =
          static_cast<double>(sfft::kFfastShifts * st.bins);
      const double passes =
          std::log2(std::max(2.0, static_cast<double>(st.bins)));
      bytes += 2.0 * planes * cx;            // gather read + plane write
      bytes += 2.0 * planes * cx * passes;   // stage FFT read+write / pass
      bytes += planes * cx;                  // D2H'd planes re-read
      flops += 5.0 * planes * passes;
    }
    double cost = bytes / (eff_bw > 0 ? eff_bw : 1.0);
    cost += flops / (peak > 0 ? peak : 1.0);
    if (opts.include_transfer)
      cost += n * cx /
                  (spec.pcie_bandwidth_Bps > 0 ? spec.pcie_bandwidth_Bps
                                               : 1.0) +
              spec.pcie_latency_s;
    return cost;
  }
  const double B = static_cast<double>(p.buckets());
  const double L = static_cast<double>(p.total_loops());
  const double taps = static_cast<double>(
      signal::flat_filter_sizes(p.n, p.buckets(), p.filter).second);
  const double fft_passes = std::log2(std::max(2.0, B));

  // Binning streams the permuted signal and the filter taps once per loop
  // and writes B buckets; the batched subsampled FFT reads + writes L*B
  // points per pass.
  double bytes = L * (2.0 * taps * cx + B * cx);
  bytes += 2.0 * L * B * cx * fft_passes;
  // Cutoff scans the buckets once per location loop; voting walks
  // cutoff() residue chains of n/B score updates; estimation re-reads L
  // buckets and filter responses per candidate.
  const double cut = static_cast<double>(p.cutoff());
  const double lloc = static_cast<double>(p.loops_loc);
  bytes += lloc * (B * cx + cut * (n / std::max(1.0, B)) * 4.0);
  bytes += lloc * cut * L * 2.0 * cx;

  const double eff_bw =
      spec.mem_bandwidth_Bps * spec.coalesced_bw_efficiency;
  double cost = bytes / (eff_bw > 0 ? eff_bw : 1.0);

  // FLOP floor so compute-limited devices price in (~10 flops per binning
  // tap, ~5 per FFT butterfly point).
  const double flops = L * taps * 10.0 + 5.0 * L * B * fft_passes;
  const double peak = spec.dp_peak_flops();
  cost += flops / (peak > 0 ? peak : 1.0);

  if (opts.include_transfer)
    cost += n * cx /
                (spec.pcie_bandwidth_Bps > 0 ? spec.pcie_bandwidth_Bps
                                             : 1.0) +
            spec.pcie_latency_s;
  // Kernel-launch overhead deliberately excluded: identical on every
  // device, it would only flatten the relative costs (see header).
  return cost;
}

struct MultiGpuPlan::Impl {
  cusim::DeviceGroup* group = nullptr;
  sfft::Params params;      // as submitted (params() contract; may be kAuto)
  sfft::Params plan_shape;  // the eager plans' shape: params with kAuto
                            // defaulted to kCusfft — per-signal resolution
                            // in execute_mixed decides the real backend
  Options opts;
  ShardPolicy policy = ShardPolicy::kCostLpt;
  std::vector<std::unique_ptr<GpuPlan>> plans;  // one per device, ctor shape
  std::vector<double> weight;  // legacy kUnitGreedy per-device cost
  /// Mixed-shape plan cache: per device, one GpuPlan per distinct
  /// RESOLVED shape seen by execute_mixed (the ctor shape reuses
  /// `plans`). Built serially before shard threads fan out; shard
  /// threads only read.
  std::vector<std::map<ShapeKey, std::unique_ptr<GpuPlan>>> cache;

  GpuPlan& plan_for(std::size_t d, const sfft::Params& p) {
    if (shape_key(p) == shape_key(plan_shape)) return *plans[d];
    auto& slot = cache[d][shape_key(p)];
    if (!slot)
      slot = std::make_unique<GpuPlan>(group->device(d), p, opts);
    return *slot;
  }
};

MultiGpuPlan::MultiGpuPlan(cusim::DeviceGroup& group, sfft::Params params,
                           Options opts)
    : impl_(std::make_unique<Impl>()) {
  impl_->group = &group;
  impl_->params = params;
  // GpuPlan refuses unresolved kAuto; the eager per-device plans take the
  // default backend and the picker's per-signal choices go through the
  // shape cache (a kFfast pick never aliases back onto these plans — the
  // algorithm is part of ShapeKey).
  impl_->plan_shape = params;
  if (impl_->plan_shape.algo == sfft::Algorithm::kAuto)
    impl_->plan_shape.algo = sfft::Algorithm::kCusfft;
  impl_->opts = opts;
  impl_->cache.resize(group.size());
  for (std::size_t d = 0; d < group.size(); ++d) {
    impl_->plans.push_back(
        std::make_unique<GpuPlan>(group.device(d), impl_->plan_shape, opts));
    // Legacy kUnitGreedy weight: per-signal time scales with
    // 1/mem_bandwidth, every signal costs the same.
    const double bw = group.device(d).spec().mem_bandwidth_Bps;
    impl_->weight.push_back(bw > 0 ? 1.0 / bw : 1.0);
  }
}

MultiGpuPlan::~MultiGpuPlan() = default;
MultiGpuPlan::MultiGpuPlan(MultiGpuPlan&&) noexcept = default;
MultiGpuPlan& MultiGpuPlan::operator=(MultiGpuPlan&&) noexcept = default;

std::size_t MultiGpuPlan::devices() const { return impl_->plans.size(); }
const sfft::Params& MultiGpuPlan::params() const { return impl_->params; }
cusim::DeviceGroup& MultiGpuPlan::group() { return *impl_->group; }

void MultiGpuPlan::set_shard_policy(ShardPolicy p) { impl_->policy = p; }
ShardPolicy MultiGpuPlan::shard_policy() const { return impl_->policy; }

std::vector<std::size_t> MultiGpuPlan::shard_assignment(
    std::size_t batch) const {
  const std::vector<sfft::Params> shapes(batch, impl_->params);
  return shard_assignment(shapes);
}

std::vector<std::size_t> MultiGpuPlan::shard_assignment(
    std::span<const sfft::Params> shapes) const {
  const std::size_t ndev = impl_->plans.size();
  const std::size_t batch = shapes.size();
  std::vector<std::size_t> out(batch, 0);
  std::vector<double> load(ndev, 0.0);

  if (impl_->policy == ShardPolicy::kUnitGreedy) {
    // Legacy: input order, every signal costs the device's uniform
    // weight whatever its shape.
    for (std::size_t i = 0; i < batch; ++i) {
      std::size_t best = 0;
      for (std::size_t d = 1; d < ndev; ++d)
        if (load[d] + impl_->weight[d] <
            load[best] + impl_->weight[best])  // strict: ties -> lowest
          best = d;
      out[i] = best;
      load[best] += impl_->weight[best];
    }
    return out;
  }

  // kCostLpt: price each signal on each device, then place in LPT order
  // (most expensive first, by the device-0 reference cost; stable, so a
  // uniform batch keeps input order and degrades to round-robin) onto
  // the device with the smallest projected finish.
  std::vector<std::vector<double>> cost(batch, std::vector<double>(ndev));
  for (std::size_t i = 0; i < batch; ++i)
    for (std::size_t d = 0; d < ndev; ++d)
      cost[i][d] = modeled_signal_cost_s(
          shapes[i], impl_->group->device(d).spec(), impl_->opts);
  std::vector<std::size_t> order(batch);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return cost[a][0] > cost[b][0];
                   });
  for (const std::size_t i : order) {
    std::size_t best = 0;
    for (std::size_t d = 1; d < ndev; ++d)
      if (load[d] + cost[i][d] <
          load[best] + cost[i][best])  // strict: ties -> lowest index
        best = d;
    out[i] = best;
    load[best] += cost[i][best];
  }
  return out;
}

std::vector<SparseSpectrum> MultiGpuPlan::execute_many(
    std::span<const std::span<const cplx>> xs, GpuFleetStats* stats,
    BatchMode mode) {
  // Uniform batches are the degenerate mixed case: one shape group per
  // shard, same assignment, same merged schedule.
  std::vector<MixedSignal> signals;
  signals.reserve(xs.size());
  for (const auto& x : xs) signals.push_back({x, impl_->params});
  return execute_mixed(signals, stats, mode);
}

std::vector<SparseSpectrum> MultiGpuPlan::execute_mixed(
    std::span<const MixedSignal> signals, GpuFleetStats* stats,
    BatchMode mode) {
  const std::size_t ndev = impl_->plans.size();
  const std::size_t batch = signals.size();
  cusim::DeviceGroup& group = *impl_->group;

  std::vector<sfft::Params> shapes;
  shapes.reserve(batch);
  for (const auto& s : signals) shapes.push_back(s.params);
  // Per-signal backend resolution — THE kAuto resolution point of the
  // plan API (GpuPlan refuses unresolved kAuto). Applies the CUSFFT_ALGO
  // override and, for kAuto shapes, the CUSFFT_AUTOPICK crossover picker
  // against device 0's spec (resolution must precede shard assignment —
  // the cost model prices the resolved backend, and heterogeneous fleets
  // still need one consistent backend per signal for input-order
  // determinism).
  for (auto& sh : shapes)
    sh.algo = resolve_algorithm(sh, group.device(0).spec(), impl_->opts);
  const std::vector<std::size_t> assign = shard_assignment(shapes);

  // Each device's shard, grouped by shape in first-appearance order: one
  // GpuPlan per distinct shape runs one (pipelined) batch per group.
  struct Group {
    sfft::Params p;
    std::vector<std::size_t> idx;  // input indices, input order
  };
  std::vector<std::vector<Group>> groups(ndev);
  std::vector<std::size_t> shard_size(ndev, 0);
  for (std::size_t i = 0; i < batch; ++i) {
    const std::size_t d = assign[i];
    ++shard_size[d];
    // Group by the RESOLVED shape: two kAuto signals picked onto
    // different backends land in different groups (and different cached
    // plans) even though their submitted Params were identical.
    const ShapeKey key = shape_key(shapes[i]);
    auto it = std::find_if(
        groups[d].begin(), groups[d].end(),
        [&](const Group& g) { return shape_key(g.p) == key; });
    if (it == groups[d].end()) {
      groups[d].push_back(Group{shapes[i], {i}});
    } else {
      it->idx.push_back(i);
    }
  }

  // Build every shape's plan serially before fanning out: plan
  // construction touches shared caches (flat filter, BufferPool) that
  // the concurrent shard threads must not race on.
  for (std::size_t d = 0; d < ndev; ++d)
    for (const Group& g : groups[d]) impl_->plan_for(d, g.p);

  // Shared t=0 for every device + the fleet-level pool snapshot. Shard
  // batches append to this capture (execute_many_in_capture) so one
  // device timeline covers all of its shape groups.
  group.begin_capture();

  std::vector<SparseSpectrum> out(batch);
  std::vector<GpuSignalStats> per_signal(batch);
  std::vector<std::size_t> shard_candidates(ndev, 0);
  std::vector<char> shard_pipelined(ndev, 0);
  std::vector<std::exception_ptr> errors(ndev);
  WallTimer wall;
  auto run_shard = [&](std::size_t d) {
    try {
      bool first = true;
      for (const Group& g : groups[d]) {
        // Serialize shape groups on the device timeline: a real device
        // would drain one plan's work before the next plan's bulk
        // upload anyway, and overlapping unrelated plans would
        // under-report the shard makespan.
        if (!first) group.device(d).sync_point();
        first = false;
        std::vector<std::span<const cplx>> views;
        views.reserve(g.idx.size());
        for (const std::size_t i : g.idx) views.push_back(signals[i].x);
        GpuBatchStats bs;
        auto outs = impl_->plan_for(d, g.p).execute_many_in_capture(
            std::span<const std::span<const cplx>>(views), &bs, mode);
        for (std::size_t j = 0; j < g.idx.size(); ++j) {
          shard_candidates[d] += outs[j].size();
          out[g.idx[j]] = std::move(outs[j]);
          per_signal[g.idx[j]] = std::move(bs.per_signal[j]);
        }
        shard_pipelined[d] |= bs.pipelined ? 1 : 0;
      }
    } catch (...) {
      errors[d] = std::current_exception();
    }
  };
  std::vector<std::size_t> active;
  for (std::size_t d = 0; d < ndev; ++d)
    if (!groups[d].empty()) active.push_back(d);
  if (active.size() <= 1) {
    for (const std::size_t d : active) run_shard(d);
  } else {
    // One host thread per non-empty shard; each device's block-parallel
    // launches stay on its private ThreadPool (DeviceGroup wiring).
    std::vector<std::thread> threads;
    threads.reserve(active.size());
    for (const std::size_t d : active)
      threads.emplace_back([&run_shard, d] { run_shard(d); });
    for (auto& t : threads) t.join();
  }
  const double host_ms = wall.ms();
  for (const std::size_t d : active)
    if (errors[d]) std::rethrow_exception(errors[d]);

  // Merge the device timelines on the shared clock.
  cusim::FleetSchedule fs = group.simulate();

  // The fleet stats are assembled unconditionally: the always-on registry
  // records every fleet batch (this is the single publication point for
  // sharded signals — shard-level GpuBatchStats stay silent in-capture).
  GpuFleetStats st;
  st.model_ms = fs.makespan_s * 1e3;
  st.host_ms = host_ms;
  st.signals = batch;
  st.devices = ndev;
  st.staging = group.staging().name();
  st.device_of = assign;
  st.per_signal = std::move(per_signal);
  double finish_sum = 0, finish_max = 0;
  for (std::size_t d = 0; d < ndev; ++d) {
    GpuDeviceShardStats ds;
    ds.device = group.device(d).spec().name;
    ds.signals = shard_size[d];
    ds.model_ms = fs.finish_s[d] * 1e3;
    ds.solo_ms = groups[d].empty()
                     ? 0.0
                     : group.device(d).elapsed_model_ms();
    ds.pcie_stall_ms = fs.pcie_stall_s[d] * 1e3;
    ds.pcie_queue_ms = fs.pcie_queue_s[d] * 1e3;
    // Busy fraction of the fleet makespan (time >= 1 kernel resident):
    // a device that finishes last but spent the window idling on PCIe
    // reports low utilization, not ~1.0.
    if (st.model_ms > 0) ds.utilization = fs.busy_s[d] * 1e3 / st.model_ms;
    st.pcie_stall_ms += ds.pcie_stall_ms;
    st.pcie_queue_ms += ds.pcie_queue_ms;
    st.candidates += shard_candidates[d];
    st.pipelined = st.pipelined || shard_pipelined[d] != 0;
    if (shard_size[d] > 0) {
      finish_sum += ds.model_ms;
      finish_max = std::max(finish_max, ds.model_ms);
    }
    st.per_device.push_back(std::move(ds));
  }
  if (!active.empty() && finish_sum > 0)
    st.imbalance = finish_max / (finish_sum / active.size());
  st.to_metrics(cusim::MetricsRegistry::global());
  if (stats != nullptr) *stats = std::move(st);
  return out;
}

void GpuFleetStats::to_metrics(cusim::MetricsRegistry& reg) const {
  using cusim::MetricsRegistry;
  reg.counter("cusfft_fleet_batches_total").inc();
  reg.counter("cusfft_signals_total").add(signals);
  reg.counter("cusfft_candidates_total").add(candidates);
  {
    // Per-backend signal counts from the per-signal records — under
    // execute_mixed a single fleet batch can mix backends.
    std::map<sfft::Algorithm, std::size_t> by_algo;
    for (const GpuSignalStats& sig : per_signal) ++by_algo[sig.algo];
    for (const auto& [algo, count] : by_algo)
      reg.counter(MetricsRegistry::label("cusfft_algo_signals_total", "algo",
                                         sfft::to_string(algo)))
          .add(count);
  }
  if (pipelined) reg.counter("cusfft_batches_pipelined_total").inc();
  reg.histogram("cusfft_fleet_model_ms").observe(model_ms);
  reg.histogram("cusfft_fleet_host_ms").observe(host_ms);
  reg.histogram("cusfft_fleet_pcie_stall_ms").observe(pcie_stall_ms);
  reg.histogram("cusfft_fleet_pcie_queue_ms").observe(pcie_queue_ms);
  reg.gauge("cusfft_fleet_imbalance").set(imbalance);
  for (std::size_t d = 0; d < per_device.size(); ++d) {
    const GpuDeviceShardStats& ds = per_device[d];
    const std::string dev = std::to_string(d);
    reg.counter(MetricsRegistry::label("cusfft_device_signals_total",
                                       "device", dev))
        .add(ds.signals);
    reg.gauge(
           MetricsRegistry::label("cusfft_device_utilization", "device", dev))
        .set(ds.utilization);
    reg.gauge(MetricsRegistry::label("cusfft_device_finish_ms", "device", dev))
        .set(ds.model_ms);
  }
  // Per-signal windows land on the device that actually ran the signal —
  // this is where the per-device p50/p99 execute-latency story comes from.
  for (std::size_t i = 0; i < per_signal.size(); ++i)
    observe_signal_metrics(reg, per_signal[i],
                           i < device_of.size() ? device_of[i] : 0);
}

void GpuFleetStats::to_cluster_metrics(cusim::MetricsRegistry& reg) const {
  using cusim::MetricsRegistry;
  reg.counter("cusfft_cluster_batches_total").inc();
  reg.counter("cusfft_cluster_signals_total").add(signals);
  reg.counter("cusfft_cluster_nic_transfers_total").add(nic_transfers);
  reg.counter("cusfft_cluster_nic_bytes_total")
      .add(static_cast<u64>(nic_bytes));
  reg.histogram("cusfft_cluster_model_ms").observe(model_ms);
  reg.histogram("cusfft_cluster_nic_ms").observe(nic_transfer_ms);
  reg.histogram("cusfft_cluster_nic_stall_ms").observe(nic_stall_ms);
  reg.histogram("cusfft_cluster_nic_queue_ms").observe(nic_queue_ms);
  reg.gauge("cusfft_cluster_nodes").set(static_cast<double>(nodes));
  for (std::size_t m = 0; m < per_node.size(); ++m) {
    const GpuNodeShardStats& ns = per_node[m];
    const std::string node = std::to_string(m);
    reg.counter(
           MetricsRegistry::label("cusfft_node_signals_total", "node", node))
        .add(ns.signals);
    reg.gauge(MetricsRegistry::label("cusfft_node_finish_ms", "node", node))
        .set(ns.model_ms);
    reg.gauge(MetricsRegistry::label("cusfft_node_utilization", "node", node))
        .set(ns.utilization);
    reg.counter(
           MetricsRegistry::label("cusfft_node_nic_bytes_total", "node", node))
        .add(static_cast<u64>(ns.nic_bytes));
  }
}

}  // namespace cusfft::gpu
