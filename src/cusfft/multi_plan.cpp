#include "cusfft/multi_plan.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/timer.hpp"

namespace cusfft::gpu {

struct MultiGpuPlan::Impl {
  cusim::DeviceGroup* group = nullptr;
  sfft::Params params;
  Options opts;
  std::vector<std::unique_ptr<GpuPlan>> plans;  // one per device
  std::vector<double> weight;  // per-device per-signal cost (relative)
};

MultiGpuPlan::MultiGpuPlan(cusim::DeviceGroup& group, sfft::Params params,
                           Options opts)
    : impl_(std::make_unique<Impl>()) {
  impl_->group = &group;
  impl_->params = params;
  impl_->opts = opts;
  for (std::size_t d = 0; d < group.size(); ++d) {
    impl_->plans.push_back(
        std::make_unique<GpuPlan>(group.device(d), params, opts));
    // Bandwidth-bound cost model: a device's per-signal time scales with
    // 1/mem_bandwidth. Good enough for assignment; the merged timeline is
    // the ground truth the stats report.
    const double bw = group.device(d).spec().mem_bandwidth_Bps;
    impl_->weight.push_back(bw > 0 ? 1.0 / bw : 1.0);
  }
}

MultiGpuPlan::~MultiGpuPlan() = default;
MultiGpuPlan::MultiGpuPlan(MultiGpuPlan&&) noexcept = default;
MultiGpuPlan& MultiGpuPlan::operator=(MultiGpuPlan&&) noexcept = default;

std::size_t MultiGpuPlan::devices() const { return impl_->plans.size(); }
const sfft::Params& MultiGpuPlan::params() const { return impl_->params; }
cusim::DeviceGroup& MultiGpuPlan::group() { return *impl_->group; }

std::vector<std::size_t> MultiGpuPlan::shard_assignment(
    std::size_t batch) const {
  const std::size_t ndev = impl_->plans.size();
  std::vector<std::size_t> out(batch, 0);
  std::vector<double> load(ndev, 0.0);
  for (std::size_t i = 0; i < batch; ++i) {
    std::size_t best = 0;
    for (std::size_t d = 1; d < ndev; ++d)
      if (load[d] + impl_->weight[d] <
          load[best] + impl_->weight[best])  // strict: ties -> lowest index
        best = d;
    out[i] = best;
    load[best] += impl_->weight[best];
  }
  return out;
}

std::vector<SparseSpectrum> MultiGpuPlan::execute_many(
    std::span<const std::span<const cplx>> xs, GpuFleetStats* stats,
    BatchMode mode) {
  const std::size_t ndev = impl_->plans.size();
  const std::size_t batch = xs.size();
  cusim::DeviceGroup& group = *impl_->group;

  const std::vector<std::size_t> assign = shard_assignment(batch);
  std::vector<std::vector<std::size_t>> shard(ndev);  // input indices
  for (std::size_t i = 0; i < batch; ++i) shard[assign[i]].push_back(i);
  std::vector<std::vector<std::span<const cplx>>> views(ndev);
  for (std::size_t d = 0; d < ndev; ++d)
    for (const std::size_t i : shard[d]) views[d].push_back(xs[i]);

  // Shared t=0 for every device + the fleet-level pool snapshot. Each
  // shard's GpuPlan::execute_many re-opens its own device capture, which
  // is a harmless re-clear of an already-cleared timeline.
  group.begin_capture();

  std::vector<std::vector<SparseSpectrum>> douts(ndev);
  std::vector<GpuBatchStats> dstats(ndev);
  std::vector<std::exception_ptr> errors(ndev);
  WallTimer wall;
  auto run_shard = [&](std::size_t d) {
    try {
      douts[d] = impl_->plans[d]->execute_many(
          std::span<const std::span<const cplx>>(views[d]), &dstats[d],
          mode);
    } catch (...) {
      errors[d] = std::current_exception();
    }
  };
  std::vector<std::size_t> active;
  for (std::size_t d = 0; d < ndev; ++d)
    if (!shard[d].empty()) active.push_back(d);
  if (active.size() <= 1) {
    for (const std::size_t d : active) run_shard(d);
  } else {
    // One host thread per non-empty shard; each device's block-parallel
    // launches stay on its private ThreadPool (DeviceGroup wiring).
    std::vector<std::thread> threads;
    threads.reserve(active.size());
    for (const std::size_t d : active)
      threads.emplace_back([&run_shard, d] { run_shard(d); });
    for (auto& t : threads) t.join();
  }
  const double host_ms = wall.ms();
  for (const std::size_t d : active)
    if (errors[d]) std::rethrow_exception(errors[d]);

  // Merge the device timelines on the shared clock and reorder results
  // back to input order.
  cusim::FleetSchedule fs = group.simulate();
  std::vector<SparseSpectrum> out(batch);
  for (std::size_t d = 0; d < ndev; ++d)
    for (std::size_t j = 0; j < shard[d].size(); ++j)
      out[shard[d][j]] = std::move(douts[d][j]);

  if (stats != nullptr) {
    GpuFleetStats st;
    st.model_ms = fs.makespan_s * 1e3;
    st.host_ms = host_ms;
    st.signals = batch;
    st.devices = ndev;
    st.device_of = assign;
    st.per_signal.resize(batch);
    double finish_sum = 0, finish_max = 0;
    for (std::size_t d = 0; d < ndev; ++d) {
      GpuDeviceShardStats ds;
      ds.device = group.device(d).spec().name;
      ds.signals = shard[d].size();
      ds.model_ms = fs.finish_s[d] * 1e3;
      ds.solo_ms = dstats[d].model_ms;
      ds.pcie_stall_ms = fs.pcie_stall_s[d] * 1e3;
      if (st.model_ms > 0) ds.utilization = ds.model_ms / st.model_ms;
      st.pcie_stall_ms += ds.pcie_stall_ms;
      st.candidates += dstats[d].candidates;
      st.pipelined = st.pipelined || dstats[d].pipelined;
      if (!shard[d].empty()) {
        finish_sum += ds.model_ms;
        finish_max = std::max(finish_max, ds.model_ms);
      }
      for (std::size_t j = 0; j < shard[d].size(); ++j)
        st.per_signal[shard[d][j]] = std::move(dstats[d].per_signal[j]);
      st.per_device.push_back(std::move(ds));
    }
    if (!active.empty() && finish_sum > 0)
      st.imbalance = finish_max / (finish_sum / active.size());
    *stats = std::move(st);
  }
  return out;
}

}  // namespace cusfft::gpu
