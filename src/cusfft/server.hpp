// Multi-tenant serving tier above the fleet: cusfft::serve::Server turns
// the pre-formed-batch MultiGpuPlan API into a service. Tenants submit
// individual requests (per-request sfft::Params, a latency- or
// throughput-class SLO, an optional deadline); a dynamic batcher coalesces
// whatever is in flight into MultiGpuPlan::execute_mixed calls —
// inference-server-style continuous batching with a shape-keyed plan cache
// shared across tenants (the MultiGpuPlan's own per-device cache).
//
// Admission control is per tenant and bounded: a tenant with
// tenant_queue_depth requests already pending has its next submission
// rejected immediately (Outcome::kRejected) instead of blocking forever —
// backpressure is a typed terminal outcome, not a hang. Requests whose
// deadline expires before their batch launches are shed at batch-formation
// time (Outcome::kShed); device time is never spent on expired work. Every
// submitted request therefore terminates in exactly one of {completed,
// shed, rejected}.
//
// Batch-close policy, all on the server's virtual clock (milliseconds):
//   - size:  the batch launches as soon as max_batch requests are pending
//            (and the device is free);
//   - wait:  the batch launches when the oldest pending request has waited
//            its SLO class's max-wait — max_wait_latency_ms for
//            SloClass::kLatency, max_wait_throughput_ms for kThroughput.
//            A latency-class request therefore *preempts* the longer
//            throughput accumulation window: its shorter max-wait caps the
//            close time of the whole batch;
//   - drain: drain()/stop() flush the remaining queue immediately.
//
// Two drive modes share one core (and one code path for admission,
// batching, shedding, and stats):
//   - Virtual (deterministic): the caller owns the clock. submit_at(t, r)
//     admits a request at virtual time t (arrivals must be submitted in
//     nondecreasing t), advance(t) launches every batch that closes up to
//     t, drain() flushes. Single-threaded by construction — batch
//     composition, shed decisions, and modeled latencies are a pure
//     function of (trace, config, modeled device), bit-reproducible
//     across runs and host thread counts. schedule_trace() /
//     decision_trace() expose the decisions for golden assertions.
//   - Threaded: start() spawns the batcher thread; submit() is
//     thread-safe and returns a request id; wait(id) blocks for the
//     terminal Response; cancel(id) resolves a still-pending request as
//     shed; stop() drains and joins. Virtual time still prices latencies
//     (arrivals stamp the current virtual clock; the clock advances by
//     modeled batch makespans), while max-wait pacing uses the wall
//     clock.
//
// The server publishes continuous metrics into
// cusim::MetricsRegistry::global() as events happen (cusfft_serve_*
// counters and histograms; see docs/PROFILING.md); GpuServeStats adds the
// snapshot-style gauges via to_metrics.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cusfft/multi_plan.hpp"
#include "sfft/params.hpp"

namespace cusfft::serve {

/// Service-level objective class of one request. Latency-class requests
/// shorten the batch-close window (see file comment); the two classes are
/// reported separately everywhere (stats, metrics, bench).
enum class SloClass { kLatency, kThroughput };
const char* slo_name(SloClass c);  // "latency" / "throughput"

/// Terminal state of a request. Every submitted request reaches exactly
/// one of kCompleted / kShed / kRejected; kPending is only ever observed
/// through outcome() before the request's batch has launched.
enum class Outcome { kPending, kCompleted, kShed, kRejected };
const char* outcome_name(Outcome o);

/// One tenant submission. x.size() must equal params.n (else submit
/// throws std::invalid_argument — a malformed request is a programming
/// error, not backpressure). deadline_ms is relative to arrival;
/// +infinity (the default) means none.
struct Request {
  std::string tenant;
  sfft::Params params;
  cvec x;
  SloClass slo = SloClass::kThroughput;
  double deadline_ms = std::numeric_limits<double>::infinity();
};

/// Server knobs. All virtual-clock quantities are milliseconds.
struct ServerConfig {
  std::size_t devices = 1;      ///< simulated fleet size (per node)
  std::size_t nodes = 1;        ///< cluster size; > 1 serves on a
                                ///< ClusterPlan (devices per node)
  std::size_t max_batch = 8;    ///< size batch-close trigger
  double max_wait_latency_ms = 1.0;     ///< kLatency close window
  double max_wait_throughput_ms = 8.0;  ///< kThroughput close window
  std::size_t tenant_queue_depth = 16;  ///< per-tenant admission bound
  gpu::Options opts = []() {
    gpu::Options o = gpu::Options::optimized();
    o.include_transfer = true;  // serving pays the H2D copy
    return o;
  }();
  gpu::ShardPolicy shard_policy = gpu::ShardPolicy::kCostLpt;

  /// Applies the CUSFFT_SERVE_* environment knobs on top of `base`:
  /// CUSFFT_SERVE_DEVICES, CUSFFT_SERVE_NODES, CUSFFT_SERVE_MAX_BATCH,
  /// CUSFFT_SERVE_MAX_WAIT_MS (throughput class),
  /// CUSFFT_SERVE_MAX_WAIT_LAT_MS (latency class),
  /// CUSFFT_SERVE_QUEUE_DEPTH. The environment is re-read on every call —
  /// no latching (a later setenv is honored by the next construction;
  /// see resolve_batch_mode's history). Malformed or out-of-range values
  /// throw std::invalid_argument naming the variable; benches translate
  /// that into the usual exit-2 usage error (bench::serve_config_or_exit).
  static ServerConfig from_env(ServerConfig base);
  static ServerConfig from_env() { return from_env(ServerConfig{}); }

  /// Throws std::invalid_argument unless usable (devices/nodes/max_batch/
  /// tenant_queue_depth >= 1, waits finite and >= 0).
  void validate() const;
};

/// Terminal record of one request.
struct Response {
  u64 id = 0;
  std::string tenant;
  SloClass slo = SloClass::kThroughput;
  Outcome outcome = Outcome::kPending;
  SparseSpectrum spectrum;  // kCompleted only
  double arrival_ms = 0;    // virtual admission time
  double done_ms = 0;       // virtual terminal time
  double latency_ms = 0;    // done - arrival (kCompleted only)
  /// Batch the request executed in (launch order, 0-based); SIZE_MAX for
  /// shed/rejected requests.
  std::size_t batch_seq = static_cast<std::size_t>(-1);
};

/// Exact (not bucketed) latency quantiles of one SLO class, computed from
/// every completed request's modeled latency.
struct ClassLatency {
  std::size_t count = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double mean_ms = 0;
  double max_ms = 0;
};

/// Snapshot of the serving tier: request accounting, per-class modeled
/// latency percentiles, sustained throughput, and queueing pressure.
struct GpuServeStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;
  std::size_t rejected = 0;
  std::size_t batches = 0;
  std::size_t max_queue_depth = 0;  // high-water pending count (all tenants)
  double virtual_ms = 0;      ///< serving horizon: device-free time after
                              ///< the last launched batch
  double sustained_qps = 0;   ///< completed / virtual seconds
  double mean_batch_fill = 0; ///< executed signals / (batches * max_batch)
  ClassLatency latency;       ///< SloClass::kLatency completions
  ClassLatency throughput;    ///< SloClass::kThroughput completions

  /// Publishes the snapshot-style gauges (cusfft_serve_qps,
  /// cusfft_serve_queue_depth_max, cusfft_serve_batch_fill). The
  /// counters and latency/batch-size histograms are published
  /// incrementally by the Server as requests terminate, so monotonicity
  /// holds across mid-run snapshots.
  void to_metrics(cusim::MetricsRegistry& reg) const;
};

class Server {
 public:
  /// Validates cfg (throws std::invalid_argument). The fleet
  /// (DeviceGroup + MultiGpuPlan) is built lazily at the first batch
  /// launch, shaped by that batch's first request; later shapes go
  /// through the MultiGpuPlan's shape-keyed plan cache, shared across
  /// tenants.
  explicit Server(ServerConfig cfg);
  ~Server();  // stops the batcher thread if running
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const ServerConfig& config() const;

  // ---- Virtual (deterministic) drive — single caller, manual clock ----

  /// Admits a request at virtual time t (clamped to the current clock;
  /// arrivals must be submitted in nondecreasing t). Batches that close
  /// before t launch first — continuous batching never sees the future.
  /// Returns the request id (also for rejected submissions — the typed
  /// rejection is the terminal Response). Throws std::logic_error while
  /// the batcher thread is running.
  u64 submit_at(double t_ms, Request r);

  /// Launches every batch whose close time is <= t_ms, advancing the
  /// virtual clock. No-op when t_ms is in the past.
  void advance(double t_ms);

  /// Flushes the queue: remaining batches launch back to back (reason
  /// "drain") at the device-free time.
  void drain();

  // ---- Threaded drive ----

  /// Spawns the batcher thread; submit()/wait()/cancel() become legal and
  /// submit_at()/advance()/drain() throw until stop().
  void start();
  /// Drains the queue, stops and joins the batcher. Idempotent.
  void stop();
  /// Thread-safe submission (arrival stamps the current virtual clock).
  u64 submit(Request r);
  /// Blocks until the request is terminal. The id must come from submit.
  Response wait(u64 id);
  /// Resolves a still-pending request as shed ("cancel" in the trace).
  /// Returns false when the request is already terminal (or unknown).
  bool cancel(u64 id);

  // ---- Inspection (either mode) ----

  bool done(u64 id) const;
  /// Terminal response, or a stub with Outcome::kPending.
  Response response(u64 id) const;
  GpuServeStats stats() const;

  /// Full decision log with virtual timestamps and modeled latencies
  /// (submit/reject/close/done/free lines) — byte-identical across
  /// reruns of the same trace on the same build.
  std::string schedule_trace() const;
  /// Composition-only log (reject/close lines, ids and reasons, no
  /// floats) — the golden-diff-stable variant CI pins.
  std::string decision_trace() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ---- Scripted arrival traces (the deterministic replay driver) --------

/// One arrival of a scripted trace. deadline_ms is relative to arrival
/// (+infinity = none).
struct TraceEvent {
  double arrival_ms = 0;
  std::string tenant;
  std::size_t n = 0;
  std::size_t k = 0;
  SloClass slo = SloClass::kThroughput;
  double deadline_ms = std::numeric_limits<double>::infinity();
};

/// A multi-tenant arrival trace (events in nondecreasing arrival_ms).
/// Text format, one event per line ('#' comments and blank lines
/// ignored):  arrival_ms,tenant,n,k,<latency|throughput>,<deadline_ms|inf>
struct Trace {
  std::vector<TraceEvent> events;

  std::string to_text() const;
  /// Throws std::invalid_argument (with the line number) on malformed
  /// input, including out-of-order arrivals.
  static Trace parse(const std::string& text);
};

/// The canned bench/CI trace: three tenants (latency-class "alpha",
/// bulk-throughput "bravo", bursty "charlie" whose bursts overflow small
/// admission quotas), two shapes (n_big/k_big and n_big/4, k_big/4
/// clamped), a few tight deadlines. Deterministic per (n_big, k_big,
/// seed).
Trace canned_trace(std::size_t n_big, std::size_t k_big, u64 seed);

/// Deterministic per-event request derivation shared by replay() and the
/// tests that cross-check completed spectra against single-plan execute:
/// event i of a trace replayed with `signal_seed` uses exactly these
/// Params and samples.
sfft::Params trace_params(const TraceEvent& e, u64 signal_seed);
cvec trace_signal(const TraceEvent& e, u64 signal_seed, std::size_t index);

/// Replays every event through Server::submit_at in arrival order and
/// drains. Returns the request ids in event order.
std::vector<u64> replay(Server& s, const Trace& t, u64 signal_seed);

}  // namespace cusfft::serve
