#include "cusfft/plan.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/modmath.hpp"
#include "core/rng.hpp"
#include "cufftsim/cufftsim.hpp"
#include "cusim/metrics.hpp"
#include "custhrust/reduce.hpp"
#include "custhrust/sort.hpp"
#include "sfft/ffast.hpp"
#include "sfft/serial.hpp"
#include "sfft/steps.hpp"
#include "signal/filter.hpp"

namespace cusfft::gpu {

using cusim::DeviceBuffer;
using cusim::LaunchCfg;
using cusim::StreamId;
using cusim::ThreadCtx;

namespace {
constexpr std::size_t kMaxLoops = 32;  // estimation kernel's register array

/// FNV-1a over a word sequence — the plan's captured-graph domain salt.
/// Everything that shapes a cacheable kernel's access pattern (sizes,
/// permutation draws, comb taus, option toggles) folds in, so two plans
/// share launch records only when their launches are actually identical.
struct SaltHash {
  u64 h = 1469598103934665603ULL;
  void mix(u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
};
}

struct GpuPlan::Impl {
  cusim::Device* dev = nullptr;
  sfft::Params p;
  Options opts;

  std::size_t n = 0, B = 0, L = 0, w_pad = 0, rounds = 0, mask = 0;
  std::size_t hits_cap = 0;
  u64 graph_salt = 0;                    // captured-graph domain (ctor)
  std::vector<sfft::LoopPerm> perms;     // same draw as the serial plan

  // Device-resident state (allocated once per plan, like a real cusFFT
  // plan's cudaMallocs).
  DeviceBuffer<cplx> d_signal;        // n
  DeviceBuffer<cplx> d_filter_time;   // w_pad
  DeviceBuffer<cplx> d_filter_freq;   // n
  DeviceBuffer<u64> d_ai, d_a, d_tau; // L each
  DeviceBuffer<cplx> d_buckets;       // L*B (batched layout)
  DeviceBuffer<cplx> d_chunks;        // rounds*B — remapped A' (Section V.A)
  DeviceBuffer<cplx> d_partial;       // rounds*B — per-chunk products
  DeviceBuffer<u32> d_score;          // n
  DeviceBuffer<u32> d_hits;           // hits_cap
  DeviceBuffer<u32> d_num_hits;       // 1
  DeviceBuffer<cplx> d_est;           // hits_cap
  DeviceBuffer<double> d_keys;        // B (sort&select)
  DeviceBuffer<u32> d_vals;           // B
  DeviceBuffer<u32> d_selected;       // B (fast selection output)
  DeviceBuffer<u32> d_sel_count;      // 1
  std::vector<StreamId> streams;      // GK110: up to 32 concurrent kernels

  std::unique_ptr<cufftsim::Plan> fft_batched;  // (B, L)
  std::unique_ptr<cufftsim::Plan> fft_single;   // (B, 1) when !batched_fft
  DeviceBuffer<cplx> d_z;                       // B staging for !batched_fft

  // FFAST backend state (Params::algo == kFfast): the geometric stage
  // chain, one device buffer of kFfastShifts planes per stage, and one
  // batched cuFFT-sim plan per stage (batch = kFfastShifts, sizes differ
  // per stage). The layout matches sfft::FfastPlan exactly so the
  // downloaded planes feed the shared host-side peeling decoder
  // (sfft::ffast_peel); tests pin identical support vs the CPU plan and
  // values to FFT rounding (the stage FFTs run through cufftsim here).
  std::vector<sfft::FfastStage> ffast_stages;
  std::vector<DeviceBuffer<cplx>> d_ffast;      // per stage: 6 * bins
  std::vector<std::unique_ptr<cufftsim::Plan>> ffast_ffts;

  // sFFT 2.0 Comb prefilter state (Params::comb).
  std::size_t comb_W = 0;
  std::vector<u64> comb_taus;
  DeviceBuffer<u32> d_comb_approved;            // W flags
  DeviceBuffer<cplx> d_comb_y;                  // W aliased samples
  DeviceBuffer<double> d_comb_keys;             // W sort keys
  DeviceBuffer<u32> d_comb_vals;                // W sort values
  std::unique_ptr<cufftsim::Plan> comb_fft;     // (W, 1)

  // Pipelined-batch state (BatchMode::kPipelined): two home streams that
  // alternate by signal parity, plus a parity-1 copy of every buffer that
  // crosses the front/back stage boundary — the front stage (transfer +
  // comb + binning + FFT) of signal i+1 runs while the back stage
  // (cutoff + vote + estimate + d2h) of signal i drains, so both signals'
  // per-signal state must coexist. Back-stage-only buffers (hits, est,
  // selection scratch) stay single: back stages are serialized among
  // themselves by the `done` event chain, as are front stages (they share
  // the chunk/partial/FFT-work scratch) by the `binned` event chain.
  // Allocated lazily (pool-backed) on the first pipelined batch.
  std::vector<StreamId> home_streams;
  DeviceBuffer<cplx> d_signal_alt, d_buckets_alt, d_z_alt;
  DeviceBuffer<u32> d_score_alt, d_num_hits_alt, d_comb_approved_alt;
  std::vector<DeviceBuffer<cplx>> d_ffast_alt;  // FFAST parity-1 planes

  // Active per-signal buffer bindings: kernels address mutable per-signal
  // state through these so the pipelined path can flip whole sets by
  // signal parity. bind_buffers(0) selects the primaries (the serialized
  // and single-execute paths).
  DeviceBuffer<cplx>* sig_ = nullptr;
  DeviceBuffer<cplx>* buck_ = nullptr;
  DeviceBuffer<cplx>* zb_ = nullptr;
  DeviceBuffer<u32>* score_ = nullptr;
  DeviceBuffer<u32>* num_hits_ = nullptr;
  DeviceBuffer<u32>* comb_approved_ = nullptr;
  std::vector<DeviceBuffer<cplx>>* ffast_ = nullptr;

  void bind_buffers(std::size_t parity) {
    const bool alt = parity != 0;
    sig_ = alt ? &d_signal_alt : &d_signal;
    buck_ = alt ? &d_buckets_alt : &d_buckets;
    zb_ = alt ? &d_z_alt : &d_z;
    score_ = alt ? &d_score_alt : &d_score;
    num_hits_ = alt ? &d_num_hits_alt : &d_num_hits;
    comb_approved_ = alt ? &d_comb_approved_alt : &d_comb_approved;
    ffast_ = alt ? &d_ffast_alt : &d_ffast;
  }

  void ensure_pipeline_state() {
    if (home_streams.empty()) {
      home_streams.push_back(dev->create_stream());
      home_streams.push_back(dev->create_stream());
    }
    if (d_signal_alt.size() == 0) {
      d_signal_alt = DeviceBuffer<cplx>(n);
      if (p.algo == sfft::Algorithm::kFfast) {
        // The FFAST front stage only touches the signal and its stage
        // planes; none of the cusFFT scratch exists on this plan.
        for (const auto& st : ffast_stages)
          d_ffast_alt.emplace_back(sfft::kFfastShifts * st.bins);
        return;
      }
      d_buckets_alt = DeviceBuffer<cplx>(L * B);
      d_z_alt = DeviceBuffer<cplx>(B);
      d_score_alt = DeviceBuffer<u32>(n);
      d_num_hits_alt = DeviceBuffer<u32>(1);
      if (comb_W != 0) d_comb_approved_alt = DeviceBuffer<u32>(comb_W);
    }
  }

  // ---------------- kernels ----------------

  /// Steps 1-2, Algorithm 2: loop partition, one thread per bucket.
  void k_perm_filter_partition(std::size_t r, DeviceBuffer<cplx>& dst,
                               std::size_t dst_off, StreamId s) {
    const u64 ai = perms[r].ai, tau = perms[r].tau;
    // Index mapping (Fig. 3): index(off) = (tau + off*ai) mod n. Per round
    // off advances by B, so the index advances by the constant B*ai — mod
    // 2^k arithmetic under the mask is exact, turning the per-round 64-bit
    // multiply into an add+mask. Accumulating the re/im planes as plain
    // doubles is the same naive product complex operator* lowers to for
    // finite values: buckets stay bit-identical.
    const u64 step = (B * ai) & mask;
    dev->launch(LaunchCfg::for_elements("pf_partition", B, 256, s).cache(r),
                [&, ai, tau, step, dst_off](ThreadCtx& t) {
                  const u64 tid = t.global_id();
                  if (tid >= B) return;
                  double mr = 0.0, mi = 0.0;
                  u64 index = (tau + tid * ai) & mask;
                  for (std::size_t j = 0; j < rounds; ++j) {
                    const u64 off = tid + B * j;
                    const cplx xv = sig_->load(t, index);
                    const cplx fv = d_filter_time.load(t, off);
                    mr += xv.real() * fv.real() - xv.imag() * fv.imag();
                    mi += xv.real() * fv.imag() + xv.imag() * fv.real();
                    index = (index + step) & mask;
                    t.add_flops(10);
                  }
                  dst.store(t, dst_off + tid, cplx{mr, mi});
                });
  }

  /// Section V.A: remap chunk c into coalesced order on its own stream.
  void k_remap(std::size_t r, std::size_t c, StreamId s) {
    const u64 ai = perms[r].ai, tau = perms[r].tau;
    dev->launch(LaunchCfg::for_elements("pf_remap", B, 256, s)
                    .cache((static_cast<u64>(r) << 32) | c),
                [&, ai, tau, c](ThreadCtx& t) {
                  const u64 i = t.global_id();
                  if (i >= B) return;
                  const u64 off = c * B + i;
                  const u64 index = (tau + off * ai) & mask;
                  d_chunks.store(t, off, sig_->load(t, index));
                });
  }

  /// Section V.A: execute kernel — consumes the reordered chunk, all
  /// accesses coalesced.
  void k_execute_chunk(std::size_t c, StreamId s) {
    dev->launch(LaunchCfg::for_elements("pf_execute", B, 256, s).cache(c),
                [&, c](ThreadCtx& t) {
                  const u64 i = t.global_id();
                  if (i >= B) return;
                  const u64 off = c * B + i;
                  t.add_flops(6);
                  d_partial.store(t, off, d_chunks.load(t, off) *
                                              d_filter_time.load(t, off));
                });
  }

  /// Section V.A: combine per-chunk partials into the loop's buckets.
  void k_combine(DeviceBuffer<cplx>& dst, std::size_t dst_off, StreamId s) {
    dev->launch(
        LaunchCfg::for_elements("pf_combine", B, 256, s).cache(dst_off),
        [&, dst_off](ThreadCtx& t) {
                  const u64 i = t.global_id();
                  if (i >= B) return;
                  cplx acc{0.0, 0.0};
                  for (std::size_t c = 0; c < rounds; ++c) {
                    acc += d_partial.load(t, c * B + i);
                    t.add_flops(2);
                  }
                  dst.store(t, dst_off + i, acc);
                });
  }

  /// Ablation: the conventional histogram kernel — one thread per filter
  /// tap, atomicAdd into the shared bucket array (the approach Section IV.C
  /// argues against).
  void k_atomic_histogram(std::size_t r, DeviceBuffer<cplx>& dst,
                          std::size_t dst_off, StreamId s) {
    const u64 ai = perms[r].ai, tau = perms[r].tau;
    dev->launch(LaunchCfg::for_elements("pf_zero", B, 256, s).cache(dst_off),
                [&, dst_off](ThreadCtx& t) {
                  const u64 i = t.global_id();
                  if (i < B) dst.store(t, dst_off + i, cplx{0.0, 0.0});
                });
    // Complex-double atomics: keep the functional accumulation order fixed
    // so rounding matches the sequential sweep bit for bit.
    auto cfg = LaunchCfg::for_elements("pf_atomic_hist", w_pad, 256, s);
    cfg.sequential = true;
    dev->launch(cfg,
                [&, ai, tau, dst_off](ThreadCtx& t) {
                  const u64 i = t.global_id();
                  if (i >= w_pad) return;
                  const u64 index = (tau + i * ai) & mask;
                  const cplx v = sig_->load(t, index) *
                                 d_filter_time.load(t, i);
                  t.add_flops(8);
                  dst.atomic_add(t, dst_off + (i % B), v);
                });
  }

  /// Section IV.C's shared-memory alternative: per-block sub-histograms in
  /// on-chip memory, merged into the global buckets with atomics. The plan
  /// constructor guarantees B complex doubles fit the 48 KB shared memory
  /// (the configuration the paper shows is usually impossible).
  ///
  /// The simulator executes threads of a block consecutively, so the
  /// per-block sub-histogram lives in a closure-local array that is flushed
  /// (with traced global atomics) whenever the block index advances.
  void k_shared_histogram(std::size_t r, DeviceBuffer<cplx>& dst,
                          std::size_t dst_off, StreamId s) {
    const u64 ai = perms[r].ai, tau = perms[r].tau;
    dev->launch(LaunchCfg::for_elements("pf_zero", B, 256, s).cache(dst_off),
                [&, dst_off](ThreadCtx& t) {
                  const u64 i = t.global_id();
                  if (i < B) dst.store(t, dst_off + i, cplx{0.0, 0.0});
                });
    std::vector<cplx> sub(B, cplx{});
    u32 current_block = 0;
    auto flush = [&](ThreadCtx& t) {
      for (std::size_t b = 0; b < B; ++b) {
        if (sub[b] != cplx{}) {
          dst.atomic_add(t, dst_off + b, sub[b]);
          sub[b] = cplx{};
        }
      }
    };
    // The closure-local sub-histogram emulates per-block shared memory by
    // relying on blocks executing in order — host-sequential by contract.
    auto cfg = LaunchCfg::for_elements("pf_shared_hist", w_pad, 256, s);
    cfg.sequential = true;
    dev->launch(cfg,
                [&, ai, tau](ThreadCtx& t) {
                  if (t.block_idx != current_block) {
                    flush(t);  // previous block's merge stage
                    current_block = t.block_idx;
                  }
                  const u64 i = t.global_id();
                  if (i >= w_pad) return;
                  const u64 index = (tau + i * ai) & mask;
                  const cplx v = sig_->load(t, index) *
                                 d_filter_time.load(t, i);
                  t.add_flops(8);
                  t.record_shared(2);  // shared-memory atomic update
                  sub[i % B] += v;
                });
    // Merge of the final block.
    dev->launch(LaunchCfg::for_elements("pf_shared_merge", B, 256, s),
                [&, dst_off](ThreadCtx& t) {
                  const u64 i = t.global_id();
                  if (i >= B) return;
                  t.record_shared(1);
                  if (sub[i] != cplx{})
                    dst.atomic_add(t, dst_off + i, sub[i]);
                });
  }

  /// Ablation: binning without index mapping — the loop-carried index chain
  /// of Algorithm 1 admits no parallelism, so the whole loop runs on one
  /// thread (the paper's starting point).
  void k_serial_chain(std::size_t r, DeviceBuffer<cplx>& dst,
                      std::size_t dst_off, StreamId s) {
    const u64 ai = perms[r].ai, tau = perms[r].tau;
    dev->launch(LaunchCfg::for_elements("pf_zero", B, 256, s).cache(dst_off),
                [&, dst_off](ThreadCtx& t) {
                  const u64 i = t.global_id();
                  if (i < B) dst.store(t, dst_off + i, cplx{0.0, 0.0});
                });
    LaunchCfg cfg;
    cfg.name = "pf_serial_chain";
    cfg.blocks = 1;
    cfg.threads_per_block = 1;
    cfg.stream = s;
    dev->launch(cfg, [&, ai, tau, dst_off](ThreadCtx& t) {
      u64 index = tau & mask;
      for (std::size_t i = 0; i < w_pad; ++i) {
        const cplx v =
            sig_->load(t, index) * d_filter_time.load(t, i);
        const std::size_t b = dst_off + (i % B);
        dst.store(t, b, dst.load(t, b) + v);
        t.add_flops(10);
        index = (index + ai) & mask;  // the dependent update
      }
    });
  }

  /// Step 4 baseline (Algorithm 3): sort & select on |bucket|^2 keys.
  /// Leaves the selected bucket indices in d_vals[0..cutoff).
  std::size_t cutoff_sort_select(std::size_t r, StreamId s) {
    dev->launch(LaunchCfg::for_elements("cutoff_keys", B, 256, s).cache(r),
                [&, r](ThreadCtx& t) {
                  const u64 i = t.global_id();
                  if (i >= B) return;
                  t.add_flops(3);
                  d_keys.store(t, i, std::norm(buck_->load(t, r * B + i)));
                  d_vals.store(t, i, static_cast<u32>(i));
                });
    custhrust::sort_pairs_desc(*dev, d_keys, d_vals, opts.sort_algo, s);
    return p.cutoff();
  }

  /// Step 4 optimized (Algorithm 6): linear threshold selection. Leaves the
  /// selected indices in d_selected[0..count).
  std::size_t cutoff_fast_select(std::size_t r, StreamId s) {
    // RMS of this loop's buckets -> threshold (Section V.B: "same order as
    // the small noise coefficients").
    double norm2 = 0.0;
    {
      // View of loop r's buckets: reuse d_z as a staging copy to keep the
      // reduction primitive simple (one coalesced copy kernel).
      dev->launch(LaunchCfg::for_elements("cutoff_stage", B, 256, s).cache(r),
                  [&, r](ThreadCtx& t) {
                    const u64 i = t.global_id();
                    if (i < B) zb_->store(t, i, buck_->load(t, r * B + i));
                  });
      norm2 = custhrust::reduce_norm2(*dev, *zb_, s);
    }
    const double thresh2 =
        opts.select_beta * opts.select_beta * norm2 / static_cast<double>(B);

    dev->launch(LaunchCfg::for_elements("select_reset", 1, 1, s).cache(0),
                [&](ThreadCtx& t) { d_sel_count.store(t, 0, 0); });
    // The atomic slot counter defines d_selected's layout; thread order
    // must stay fixed so the selected list is identical (and ascending)
    // under both host execution paths. B threads — negligible cost.
    auto cfg = LaunchCfg::for_elements("fast_select", B, 256, s);
    cfg.sequential = true;
    dev->launch(cfg,
                [&, r, thresh2](ThreadCtx& t) {
                  const u64 i = t.global_id();
                  if (i >= B) return;
                  t.add_flops(3);
                  if (std::norm(buck_->load(t, r * B + i)) >= thresh2) {
                    const u32 slot = d_sel_count.atomic_add(t, 0, u32{1});
                    if (slot < d_selected.size())
                      d_selected.store(t, slot, static_cast<u32>(i));
                  }
                });
    return std::min<std::size_t>(d_sel_count.host()[0], d_selected.size());
  }

  /// sFFT 2.0 Comb prefilter on the device: subsample + W-point FFT +
  /// sort&select per round, union the approved residues. (The embedded
  /// sort's kernels report under the cutoff step — a known attribution
  /// quirk of the per-step profile.)
  void run_comb(StreamId s) {
    const std::size_t W = comb_W;
    const std::size_t stride = n / W;
    const std::size_t keep = std::min(p.comb_keep(), W);
    dev->launch(LaunchCfg::for_elements("comb_clear", W, 256, s).cache(W),
                [&](ThreadCtx& t) {
                  const u64 i = t.global_id();
                  if (i < W) comb_approved_->store(t, i, 0);
                });
    for (const u64 tau : comb_taus) {
      dev->launch(
          LaunchCfg::for_elements("comb_subsample", W, 256, s).cache(tau),
                  [&, tau, stride](ThreadCtx& t) {
                    const u64 i = t.global_id();
                    if (i >= W) return;
                    d_comb_y.store(t, i,
                                   sig_->load(t, (i * stride + tau) &
                                                        mask));
                  });
      comb_fft->execute(d_comb_y, cufftsim::Direction::kForward, s);
      dev->launch(LaunchCfg::for_elements("comb_keys", W, 256, s).cache(W),
                  [&](ThreadCtx& t) {
                    const u64 i = t.global_id();
                    if (i >= W) return;
                    t.add_flops(3);
                    d_comb_keys.store(t, i, std::norm(d_comb_y.load(t, i)));
                    d_comb_vals.store(t, i, static_cast<u32>(i));
                  });
      custhrust::sort_pairs_desc(*dev, d_comb_keys, d_comb_vals,
                                 opts.sort_algo, s);
      dev->launch(LaunchCfg::for_elements("comb_mark", keep, 256, s),
                  [&, keep](ThreadCtx& t) {
                    const u64 i = t.global_id();
                    if (i >= keep) return;
                    comb_approved_->store(t, d_comb_vals.load(t, i), 1);
                  });
    }
  }

  /// Step 5, Algorithm 4: reverse hash + vote, one thread per selected
  /// bucket, atomics on the score array. In comb mode, only residues the
  /// prefilter approved receive votes.
  void k_loc_recover(std::size_t r, const DeviceBuffer<u32>& selected,
                     std::size_t count, StreamId s) {
    const u64 a = perms[r].a;
    const u64 width = n / B;
    const auto threshold = static_cast<u32>(p.threshold());
    const double nd = static_cast<double>(n), Bd = static_cast<double>(B);
    const bool has_comb = comb_W != 0;
    const u64 comb_mask = has_comb ? comb_W - 1 : 0;
    dev->launch(
        LaunchCfg::for_elements("loc_recover", count, 256, s),
        [&, a, width, threshold, nd, Bd, count, has_comb,
         comb_mask](ThreadCtx& t) {
          const u64 tid = t.global_id();
          if (tid >= count) return;
          const u32 j = selected.load(t, tid);
          const u64 low = static_cast<u64>(
              std::ceil((static_cast<double>(j) - 0.5) * nd / Bd) + nd) &
              mask;
          u64 loc = mod_mul(low, a, n);
          t.add_flops(8);
          for (u64 step = 0; step < width; ++step) {
            const bool approved =
                !has_comb ||
                comb_approved_->load(t, loc & comb_mask) != 0;
            if (approved) {
              const u32 old = score_->atomic_add(t, loc, u32{1});
              if (old + 1 == threshold) {
                const u32 slot = num_hits_->atomic_add(t, 0, u32{1});
                if (slot < d_hits.size())
                  d_hits.store(t, slot, static_cast<u32>(loc));
              }
            }
            loc += a;
            if (loc >= n) loc -= n;
          }
        });
  }

  /// Step 6, Algorithm 5 (plus the tau phase correction; DESIGN.md §6):
  /// one thread per candidate, median over the L loops.
  void k_estimate(std::size_t count, StreamId s) {
    const u64 n_div_B = n / B;
    dev->launch(
        LaunchCfg::for_elements("estimate", count, 256, s),
        [&, n_div_B, count](ThreadCtx& t) {
          const u64 tid = t.global_id();
          if (tid >= count) return;
          const u64 f = d_hits.load(t, tid);
          double re[kMaxLoops], im[kMaxLoops];
          for (std::size_t r = 0; r < L; ++r) {
            const u64 ai = d_ai.load(t, r);
            const u64 tau = d_tau.load(t, r);
            const u64 permuted = (ai * f) & mask;
            u64 hashed = permuted / n_div_B;
            i64 dist = static_cast<i64>(permuted % n_div_B);
            if (static_cast<u64>(dist) > n_div_B / 2) {
              hashed = (hashed + 1) % B;
              dist -= static_cast<i64>(n_div_B);
            }
            const u64 fi = static_cast<u64>(
                (static_cast<i64>(n) - dist) & static_cast<i64>(mask));
            const cplx g = d_filter_freq.load(t, fi);
            const cplx bucket = buck_->load(t, r * B + hashed);
            const double ang = -kTwoPi *
                               static_cast<double>((f * tau) & mask) /
                               static_cast<double>(n);
            const cplx v = bucket * static_cast<double>(n) *
                           cplx{std::cos(ang), std::sin(ang)} / g;
            t.add_flops(40);
            re[r] = v.real();
            im[r] = v.imag();
          }
          // Median per component (Algorithm 5 sorts and takes the middle;
          // Section III: real and imaginary parts separately).
          const std::size_t mid = (L - 1) / 2;
          std::nth_element(re, re + mid, re + L);
          std::nth_element(im, im + mid, im + L);
          t.add_flops(static_cast<double>(2 * L * 4));
          d_est.store(t, tid, cplx{re[mid], im[mid]});
        });
  }

  /// Timeline markers of one signal's phase boundaries (for the per-phase
  /// spans of GpuExecStats/GpuSignalStats). Recorded via
  /// Device::annotate_phase so a collected CaptureProfile carries the same
  /// named spans. In pipelined batches these are stream-scoped events on
  /// the signal's home stream, so each signal's spans come from its own
  /// work even when signals overlap.
  struct PhaseEvents {
    std::size_t start = 0, setup = 0, binned = 0, voted = 0, done = 0;
  };

  /// Scheduling context for one signal of a batch. The default is the
  /// serialized path: device-wide annotations and sync points, stream 0,
  /// primary buffers.
  struct SignalCtx {
    StreamId s = 0;          // home stream for this signal's kernels
    bool pipelined = false;  // stream events instead of device-wide syncs
    std::size_t parity = 0;  // which per-signal buffer set (bind_buffers)
    // Previous signal's `done` event: the back stage (cutoff/vote/
    // estimate) shares single-buffered state with the previous signal's
    // back stage and may not start before it drains. -1 = none.
    std::ptrdiff_t back_dep = -1;
  };

  /// Phase labels — shared by GpuExecStats::phase_span_ms keys and the
  /// capture profile's phase track.
  static constexpr const char* kPhaseTransfer = "a transfer+reset";
  static constexpr const char* kPhaseBin = "b comb+bin+fft";
  static constexpr const char* kPhaseVote = "c cutoff+vote";
  static constexpr const char* kPhaseEstimate = "d estimate+d2h";

  /// FFAST backend phase labels (same four boundary events, so the stats
  /// assembly is shape-identical; the names make the backend visible in a
  /// capture profile and in cusfft_phase_ms{phase=...}).
  static constexpr const char* kPhaseFfastBin = "b ffast subsample+fft";
  static constexpr const char* kPhaseFfastD2h = "c ffast d2h";
  static constexpr const char* kPhaseFfastPeel = "d ffast peel";

  /// The four phase-span keys of one signal under `algo`, in boundary
  /// order (start->setup->binned->voted->done).
  static std::array<const char*, 4> phase_labels(sfft::Algorithm algo) {
    if (algo == sfft::Algorithm::kFfast)
      return {kPhaseTransfer, kPhaseFfastBin, kPhaseFfastD2h, kPhaseFfastPeel};
    return {kPhaseTransfer, kPhaseBin, kPhaseVote, kPhaseEstimate};
  }

  /// The full kernel sequence for one signal, inside an open capture.
  /// execute() wraps it with stats; execute_many() calls it per signal,
  /// reusing every piece of device state. Under ctx.pipelined the whole
  /// sequence issues on home stream ctx.s with stream events replacing the
  /// device-wide sync points, so two signals on alternating streams (and
  /// alternating buffer parities) can overlap on the modeled timeline;
  /// functional execution is eager and host-sequential, so outputs are
  /// bit-identical regardless of ctx.
  SparseSpectrum exec_signal(std::span<const cplx> x, PhaseEvents& ev,
                             const SignalCtx& ctx) {
    if (p.algo == sfft::Algorithm::kFfast)
      return exec_signal_ffast(x, ev, ctx);
    cusim::Device& dev = *this->dev;
    if (x.size() != n)
      throw std::invalid_argument("GpuPlan::execute: signal size mismatch");
    // Scope cacheable launches to this plan's parameter draw. A device
    // shared by several plans switches domains here; records persist per
    // domain, so interleaved plans still replay their own captures.
    dev.set_graph_domain(graph_salt);
    bind_buffers(ctx.parity);
    const StreamId hs = ctx.s;
    auto annotate = [&](const char* name) {
      return ctx.pipelined ? dev.annotate_phase(name, hs)
                           : dev.annotate_phase(name);
    };
    ev.start = annotate(kPhaseTransfer);

    // Input transfer (H2D). When excluded from the modeled time
    // (GPU-resident comparisons, Fig. 5a-d) the data still lands in device
    // memory.
    if (opts.include_transfer) {
      dev.upload(*sig_, x, hs);
      // No kernel may consume the signal mid-transfer. On a pipelined home
      // stream FIFO order already guarantees that; serialized keeps the
      // device-wide sync.
      if (!ctx.pipelined) dev.sync_point();
    } else {
      std::copy(x.begin(), x.end(), sig_->host().begin());
    }

    // Reset per-signal state.
    dev.launch(LaunchCfg::for_elements("score_clear", n, 256, hs).cache(n),
               [&](ThreadCtx& t) {
                 const u64 i = t.global_id();
                 if (i < n) score_->store(t, i, 0);
               });
    dev.launch(LaunchCfg::for_elements("hits_reset", 1, 1, hs).cache(0),
               [&](ThreadCtx& t) { num_hits_->store(t, 0, 0); });

    ev.setup = annotate(kPhaseBin);

    // ---- sFFT 2.0 Comb prefilter (optional) ----
    if (comb_W != 0) {
      run_comb(hs);
      if (!ctx.pipelined) dev.sync_point();
    }

    // ---- Steps 1-3: binning + subsampled FFT for all L loops ----
    // Pipelined: `gate` is the event each fan-out onto a chunk stream must
    // wait behind — initially everything this signal has issued so far,
    // advanced past each loop's combine so loop r+1's remaps cannot start
    // before loop r's chunks are consumed (the barrier gave that for free).
    std::size_t gate = ev.setup;
    for (std::size_t r = 0; r < L; ++r) {
      DeviceBuffer<cplx>& dst = opts.batched_fft ? *buck_ : *zb_;
      const std::size_t dst_off = opts.batched_fft ? r * B : 0;

      switch (opts.binning) {
        case Binning::kSerialChain:
          k_serial_chain(r, dst, dst_off, hs);
          break;
        case Binning::kAsyncTransform: {
          // Fig. 4: remap(c) -> execute(c) on stream c%32; chunks pipeline.
          const std::size_t nstreams = std::min(rounds, streams.size());
          for (std::size_t c = 0; c < rounds; ++c) {
            const StreamId s = streams[c % streams.size()];
            if (ctx.pipelined && c < nstreams) dev.wait_event(s, gate);
            k_remap(r, c, s);
            k_execute_chunk(c, s);
          }
          if (ctx.pipelined) {
            // Join the fan-out back onto the home stream (stream events
            // instead of a device-wide sync) before combining.
            for (std::size_t c = 0; c < nstreams; ++c)
              dev.wait_event(hs, dev.record_event(streams[c]));
          } else {
            dev.sync_point();
          }
          k_combine(dst, dst_off, hs);
          if (ctx.pipelined) gate = dev.record_event(hs);
          break;
        }
        case Binning::kLoopPartition:
          k_perm_filter_partition(r, dst, dst_off, hs);
          break;
        case Binning::kGlobalAtomicHist:
          k_atomic_histogram(r, dst, dst_off, hs);
          break;
        case Binning::kSharedHist:
          k_shared_histogram(r, dst, dst_off, hs);
          break;
      }

      if (!opts.batched_fft) {
        fft_single->execute(*zb_, cufftsim::Direction::kForward, hs);
        dev.launch(LaunchCfg::for_elements("bucket_copy", B, 256, hs).cache(r),
                   [&, r](ThreadCtx& t) {
                     const u64 i = t.global_id();
                     if (i < B)
                       buck_->store(t, r * B + i, zb_->load(t, i));
                   });
      }
    }
    if (opts.batched_fft) {
      // All loops binned before the single batched FFT: home-stream FIFO
      // covers it when pipelined.
      if (!ctx.pipelined) dev.sync_point();
      fft_batched->execute(*buck_, cufftsim::Direction::kForward, hs);
    }
    if (!ctx.pipelined) dev.sync_point();
    ev.binned = annotate(kPhaseVote);

    // The back stage (cutoff/vote/estimate) reuses single-buffered state
    // (d_hits, sort/select scratch) that the previous signal's back stage
    // may still be draining — chain behind its `done` event.
    if (ctx.pipelined && ctx.back_dep >= 0)
      dev.wait_event(hs, static_cast<std::size_t>(ctx.back_dep));

    // ---- Steps 4-5 per location loop: cutoff + reverse hash voting ----
    for (std::size_t r = 0; r < p.loops_loc; ++r) {
      if (opts.fast_selection) {
        const std::size_t count = cutoff_fast_select(r, hs);
        k_loc_recover(r, d_selected, count, hs);
      } else {
        const std::size_t count = cutoff_sort_select(r, hs);
        k_loc_recover(r, d_vals, count, hs);
      }
    }
    if (!ctx.pipelined) dev.sync_point();
    ev.voted = annotate(kPhaseEstimate);

    // ---- Step 6: estimation ----
    const std::size_t num_hits =
        std::min<std::size_t>(num_hits_->host()[0], d_hits.size());
    // Canonicalize candidate order: hits arrive in vote-completion order,
    // which under the block-parallel host path is a nondeterministic
    // permutation of the same set. Sorting (host-side, untraced) makes the
    // estimation kernel's functional state and traced access pattern
    // identical whichever launch path ran.
    std::sort(d_hits.host().begin(), d_hits.host().begin() + num_hits);
    if (num_hits > 0) k_estimate(num_hits, hs);

    // ---- D2H of the sparse result ----
    dev.note_transfer("d2h", static_cast<double>(num_hits) * (4 + 16), hs);
    if (ctx.pipelined) {
      ev.done = dev.record_event(hs);
      dev.close_phase(hs, ev.done);
    } else {
      ev.done = dev.record_event();
    }
    SparseSpectrum out;
    out.reserve(num_hits);
    for (std::size_t i = 0; i < num_hits; ++i)
      out.push_back({d_hits.host()[i], d_est.host()[i]});
    std::sort(out.begin(), out.end(),
              [](const SparseCoef& a, const SparseCoef& b) {
                return a.loc < b.loc;
              });
    return out;
  }

  /// The FFAST backend's sequence for one signal: per-stage subsample
  /// kernels + batched stage FFTs on the device, then D2H of the (tiny)
  /// plane buffers and the host-side peeling decode — the decoder is
  /// branch-heavy and data-dependent, exactly the shape Section IV argues
  /// off the GPU, and at O(sum_s F_s) buckets it is not the bottleneck.
  /// Honors the same SignalCtx contract as exec_signal; the back "stage"
  /// (d2h + peel) touches only parity-local state, so pipelined signals
  /// need no back_dep chaining.
  SparseSpectrum exec_signal_ffast(std::span<const cplx> x, PhaseEvents& ev,
                                   const SignalCtx& ctx) {
    cusim::Device& dev = *this->dev;
    if (x.size() != n)
      throw std::invalid_argument("GpuPlan::execute: signal size mismatch");
    dev.set_graph_domain(graph_salt);
    bind_buffers(ctx.parity);
    const StreamId hs = ctx.s;
    auto annotate = [&](const char* name) {
      return ctx.pipelined ? dev.annotate_phase(name, hs)
                           : dev.annotate_phase(name);
    };
    ev.start = annotate(kPhaseTransfer);
    if (opts.include_transfer) {
      dev.upload(*sig_, x, hs);
      if (!ctx.pipelined) dev.sync_point();
    } else {
      std::copy(x.begin(), x.end(), sig_->host().begin());
    }

    ev.setup = annotate(kPhaseFfastBin);
    // Plane c of stage s gathers x[(m * (n/F_s) + c) mod n] — the
    // shift-major layout sfft::FfastPlan uses, one kernel per stage
    // covering all kFfastShifts planes. The gathers are strided, but each
    // stage reads only 6*F_s of the n samples.
    for (std::size_t si = 0; si < ffast_stages.size(); ++si) {
      const std::size_t bins = ffast_stages[si].bins;
      const std::size_t step = n / bins;
      const std::size_t elems = sfft::kFfastShifts * bins;
      dev.launch(
          LaunchCfg::for_elements("ffast_subsample", elems, 256, hs)
              .cache(si),
          [&, si, bins, step, elems](ThreadCtx& t) {
            const u64 i = t.global_id();
            if (i >= elems) return;
            const u64 c = i / bins, m = i % bins;
            (*ffast_)[si].store(t, i,
                                sig_->load(t, (m * step + c) & mask));
          });
      ffast_ffts[si]->execute((*ffast_)[si], cufftsim::Direction::kForward,
                              hs);
    }
    if (!ctx.pipelined) dev.sync_point();
    ev.binned = annotate(kPhaseFfastD2h);

    // ---- D2H of every stage's planes ----
    const sfft::FfastStage& last = ffast_stages.back();
    const std::size_t total = last.offset + sfft::kFfastShifts * last.bins;
    dev.note_transfer("d2h", static_cast<double>(total) * sizeof(cplx), hs);
    std::vector<cplx> planes(total);
    for (std::size_t si = 0; si < ffast_stages.size(); ++si) {
      const auto host = (*ffast_)[si].host();
      std::copy(host.begin(), host.end(),
                planes.begin() +
                    static_cast<std::ptrdiff_t>(ffast_stages[si].offset));
    }
    ev.voted = annotate(kPhaseFfastPeel);

    // ---- Host-side peeling decode (no device work: the phase span is
    // ~0 on the modeled timeline; the decode cost shows up in host_ms) ----
    SparseSpectrum out = sfft::ffast_peel(planes, ffast_stages, n);
    if (ctx.pipelined) {
      ev.done = dev.record_event(hs);
      dev.close_phase(hs, ev.done);
    } else {
      ev.done = dev.record_event();
    }
    return out;
  }
};

GpuPlan::GpuPlan(cusim::Device& dev, sfft::Params params, Options opts)
    : impl_(std::make_unique<Impl>()) {
  params.validate();
  if (params.algo == sfft::Algorithm::kAuto)
    throw std::invalid_argument(
        "GpuPlan: Algorithm::kAuto must be resolved before plan "
        "construction (MultiGpuPlan::execute_mixed resolves it per signal; "
        "see cusfft/autopick.hpp)");
  Impl& im = *impl_;
  im.dev = &dev;
  im.p = params;
  im.opts = opts;
  im.n = params.n;
  im.mask = im.n - 1;

  if (params.algo == sfft::Algorithm::kFfast) {
    // FFAST plan: the stage chain, one plane buffer + batched FFT plan per
    // stage, and the signal buffer. None of the cusFFT filter /
    // permutation / vote state exists on this plan — the backends share
    // only the Params and the device.
    im.ffast_stages = sfft::ffast_stage_chain(im.n, params.ffast_bins(),
                                              params.ffast_stages);
    im.B = im.ffast_stages.front().bins;
    {
      const double cxb = sizeof(cplx);
      double bytes = im.n * cxb;  // signal
      for (const auto& st : im.ffast_stages)
        bytes += 2.0 * sfft::kFfastShifts * st.bins * cxb;  // planes + FFT
      if (bytes > static_cast<double>(dev.spec().global_mem_bytes))
        throw std::runtime_error(
            "GpuPlan: plan needs " + std::to_string(bytes / 1e9) +
            " GB device memory, exceeding the device's " +
            std::to_string(dev.spec().global_mem_bytes / 1e9) + " GB");
    }
    // The FFAST graph domain: the algorithm tag plus everything that
    // shapes a cacheable kernel (n and the stage chain). Deterministic —
    // no permutation draws to fold in.
    SaltHash sh;
    sh.mix(static_cast<u64>(params.algo));
    sh.mix(im.n);
    for (const auto& st : im.ffast_stages) sh.mix(st.bins);
    im.graph_salt = sh.h;

    im.d_signal = DeviceBuffer<cplx>(im.n);
    for (const auto& st : im.ffast_stages) {
      im.d_ffast.emplace_back(sfft::kFfastShifts * st.bins);
      im.ffast_ffts.push_back(std::make_unique<cufftsim::Plan>(
          dev, st.bins, sfft::kFfastShifts));
    }
    im.bind_buffers(0);
    return;
  }

  im.B = params.buckets();
  im.L = params.total_loops();
  if (im.L > kMaxLoops)
    throw std::invalid_argument("GpuPlan: at most 32 total loops supported");

  // Section IV.C: a per-block shared-memory sub-histogram needs B complex
  // doubles of the 48 KB usable shared memory — refuse when it cannot fit
  // (the paper's argument for the loop-partition kernel).
  if (opts.binning == Binning::kSharedHist &&
      im.B * sizeof(cplx) > dev.spec().shared_mem_per_sm - 16 * 1024)
    throw std::invalid_argument(
        "GpuPlan: B complex-double sub-histogram does not fit shared memory "
        "(Section IV.C) — use loop partition instead");

  // Device-memory budget (cudaMalloc would fail past the Table-I 6 GB).
  const auto [w_est, w_pad_est] =
      signal::flat_filter_sizes(im.n, im.B, params.filter);
  {
    const double cxb = sizeof(cplx);
    double bytes = im.n * cxb;            // signal
    bytes += im.n * cxb;                  // filter frequency response
    bytes += w_pad_est * cxb;             // filter taps
    bytes += im.L * im.B * cxb;           // bucket sets
    bytes += im.n * 4.0;                  // score
    bytes += (opts.batched_fft ? im.L : 1) * im.B * cxb;  // FFT work
    if (opts.binning == Binning::kAsyncTransform)
      bytes += 2.0 * w_pad_est * cxb;     // chunks + partials
    if (bytes > static_cast<double>(dev.spec().global_mem_bytes))
      throw std::runtime_error(
          "GpuPlan: plan needs " + std::to_string(bytes / 1e9) +
          " GB device memory, exceeding the device's " +
          std::to_string(dev.spec().global_mem_bytes / 1e9) + " GB");
  }

  // Shared immutable filter from the plan cache: repeated plans with the
  // same (n, B, window) skip the two plan-time length-n FFTs.
  const std::shared_ptr<const signal::FlatFilter> filter =
      signal::get_flat_filter(im.n, im.B, params.filter);
  im.w_pad = filter->time.size();
  im.rounds = im.w_pad / im.B;
  {
    Rng rng(params.seed);
    im.perms = sfft::draw_loop_perms(im.n, im.L, rng);
    if (params.comb) {
      im.comb_taus.resize(params.comb_rounds);
      for (auto& t : im.comb_taus) t = rng.next_below(im.n);
    }
  }
  {
    // Captured-graph domain salt: every input that shapes a cacheable
    // kernel's access pattern. Two plans replay each other's records only
    // when all of it matches (kernel shapes, permutation draws, option
    // toggles); anything else is namespaced apart.
    SaltHash sh;
    sh.mix(static_cast<u64>(params.algo));
    sh.mix(im.n);
    sh.mix(im.B);
    sh.mix(im.L);
    sh.mix(im.w_pad);
    sh.mix(static_cast<u64>(opts.binning));
    sh.mix(static_cast<u64>(opts.sort_algo));
    sh.mix(opts.batched_fft ? 1 : 0);
    sh.mix(opts.fast_selection ? 1 : 0);
    for (const auto& perm : im.perms) {
      sh.mix(perm.ai);
      sh.mix(perm.tau);
    }
    for (const u64 t : im.comb_taus) sh.mix(t);
    sh.mix(params.comb ? params.comb_w() : 0);
    im.graph_salt = sh.h;
  }
  im.hits_cap = std::min<std::size_t>(
      im.n, std::max<std::size_t>(1, params.loops_loc * params.cutoff() *
                                         (im.n / im.B)));

  // Device allocations + one-time uploads (plan setup, outside captures).
  im.d_signal = DeviceBuffer<cplx>(im.n);
  im.d_filter_time = DeviceBuffer<cplx>(im.w_pad);
  im.d_filter_freq = DeviceBuffer<cplx>(im.n);
  std::copy(filter->time.begin(), filter->time.end(),
            im.d_filter_time.host().begin());
  std::copy(filter->freq.begin(), filter->freq.end(),
            im.d_filter_freq.host().begin());
  // Once device-resident the plan needs no host copy; the cache keeps one
  // shared host instance per (n, B, window) for later plans.
  im.d_ai = DeviceBuffer<u64>(im.L);
  im.d_a = DeviceBuffer<u64>(im.L);
  im.d_tau = DeviceBuffer<u64>(im.L);
  for (std::size_t r = 0; r < im.L; ++r) {
    im.d_ai.host()[r] = im.perms[r].ai;
    im.d_a.host()[r] = im.perms[r].a;
    im.d_tau.host()[r] = im.perms[r].tau;
  }
  im.d_buckets = DeviceBuffer<cplx>(im.L * im.B);
  if (opts.binning == Binning::kAsyncTransform) {
    im.d_chunks = DeviceBuffer<cplx>(im.rounds * im.B);
    im.d_partial = DeviceBuffer<cplx>(im.rounds * im.B);
  }
  im.d_score = DeviceBuffer<u32>(im.n);
  im.d_hits = DeviceBuffer<u32>(im.hits_cap);
  im.d_num_hits = DeviceBuffer<u32>(1);
  im.d_est = DeviceBuffer<cplx>(im.hits_cap);
  if (opts.fast_selection) {
    im.d_selected = DeviceBuffer<u32>(im.B);
    im.d_sel_count = DeviceBuffer<u32>(1);
  } else {
    im.d_keys = DeviceBuffer<double>(im.B);
    im.d_vals = DeviceBuffer<u32>(im.B);
  }
  for (unsigned i = 0; i < dev.spec().max_concurrent_kernels; ++i)
    im.streams.push_back(dev.create_stream());
  if (opts.batched_fft) {
    im.fft_batched = std::make_unique<cufftsim::Plan>(dev, im.B, im.L);
  } else {
    im.fft_single = std::make_unique<cufftsim::Plan>(dev, im.B, 1);
  }
  im.d_z = DeviceBuffer<cplx>(im.B);
  if (params.comb) {
    im.comb_W = params.comb_w();
    im.d_comb_approved = DeviceBuffer<u32>(im.comb_W);
    im.d_comb_y = DeviceBuffer<cplx>(im.comb_W);
    im.d_comb_keys = DeviceBuffer<double>(im.comb_W);
    im.d_comb_vals = DeviceBuffer<u32>(im.comb_W);
    im.comb_fft = std::make_unique<cufftsim::Plan>(dev, im.comb_W, 1);
  }
  im.bind_buffers(0);
}

GpuPlan::~GpuPlan() = default;
GpuPlan::GpuPlan(GpuPlan&&) noexcept = default;
GpuPlan& GpuPlan::operator=(GpuPlan&&) noexcept = default;

const sfft::Params& GpuPlan::params() const { return impl_->p; }
const Options& GpuPlan::options() const { return impl_->opts; }
std::size_t GpuPlan::buckets() const { return impl_->B; }

SparseSpectrum GpuPlan::execute(std::span<const cplx> x,
                                GpuExecStats* stats) {
  Impl& im = *impl_;
  cusim::Device& dev = *im.dev;

  WallTimer wall;
  dev.begin_capture();
  Impl::PhaseEvents ev;
  SparseSpectrum out = im.exec_signal(x, ev, Impl::SignalCtx{});

  // Stats are assembled whether or not the caller asked for them: the
  // always-on registry records every execute. The event queries hit the
  // cached simulate() the makespan already ran, so the overhead is a few
  // map folds per execute, not a re-simulation.
  GpuExecStats local;
  GpuExecStats& st = stats != nullptr ? *stats : local;
  st.model_ms = dev.elapsed_model_ms();
  st.host_ms = wall.ms();
  st.candidates = out.size();
  st.algo = im.p.algo;
  st.step_model_ms.clear();
  for (const auto& [name, rep] : dev.report())
    st.step_model_ms[step_of_kernel(name)] += rep.solo_s * 1e3;
  // Overlap-aware phase spans from the timeline events.
  const auto labels = Impl::phase_labels(im.p.algo);
  const double t0 = dev.event_time_ms(ev.start);
  const double t1 = dev.event_time_ms(ev.setup);
  const double t2 = dev.event_time_ms(ev.binned);
  const double t3 = dev.event_time_ms(ev.voted);
  st.phase_span_ms.clear();
  st.phase_span_ms[labels[0]] = t1 - t0;
  st.phase_span_ms[labels[1]] = t2 - t1;
  st.phase_span_ms[labels[2]] = t3 - t2;
  st.phase_span_ms[labels[3]] = st.model_ms - t3;
  st.to_metrics(cusim::MetricsRegistry::global());
  return out;
}

namespace {

/// kAuto resolution: pipelined for real batches unless the environment
/// forces serialization (CUSFFT_PIPELINE=0 — CI's determinism matrix and
/// A/B baselines use it).
BatchMode resolve_batch_mode(BatchMode mode, std::size_t batch) {
  if (mode != BatchMode::kAuto) return mode;
  // Re-read per resolution (one getenv): latching the first value in a
  // function-local static made later setenv("CUSFFT_PIPELINE", ...) calls
  // silently ineffective for embedders and tests.
  const char* e = std::getenv("CUSFFT_PIPELINE");
  const bool env_off = e != nullptr && e[0] == '0' && e[1] == '\0';
  return (batch >= 2 && !env_off) ? BatchMode::kPipelined
                                  : BatchMode::kSerialized;
}

}  // namespace

std::vector<SparseSpectrum> GpuPlan::execute_many(
    std::span<const std::span<const cplx>> xs, GpuBatchStats* stats,
    BatchMode mode) {
  return run_batch(xs, stats, mode, /*fresh_capture=*/true);
}

std::vector<SparseSpectrum> GpuPlan::execute_many_in_capture(
    std::span<const std::span<const cplx>> xs, GpuBatchStats* stats,
    BatchMode mode) {
  return run_batch(xs, stats, mode, /*fresh_capture=*/false);
}

std::vector<SparseSpectrum> GpuPlan::run_batch(
    std::span<const std::span<const cplx>> xs, GpuBatchStats* stats,
    BatchMode mode, bool fresh_capture) {
  Impl& im = *impl_;
  cusim::Device& dev = *im.dev;
  const bool pipelined =
      resolve_batch_mode(mode, xs.size()) == BatchMode::kPipelined;

  WallTimer wall;
  // Alt-parity buffers and home streams are plan state: allocate them
  // before the capture opens so a warm plan's capture still shows a zero
  // pool delta.
  if (pipelined) im.ensure_pipeline_state();
  // One capture for the whole batch: every device buffer, the uploaded
  // filter, the cuFFT-sim plans and the stream pool are reused across
  // signals, so per-signal cost is purely the kernel sequence. The
  // in-capture variant appends to an already-open capture instead —
  // mixed-shape shards run several plans' batches in one capture, so
  // opening a fresh one here would erase the earlier shape groups.
  if (fresh_capture) dev.begin_capture();
  std::vector<SparseSpectrum> out;
  out.reserve(xs.size());
  std::size_t candidates = 0;
  std::vector<Impl::PhaseEvents> evs(xs.size());
  if (pipelined) {
    // Two-stage software pipeline over two home streams: signal i+1's
    // transfer + reset + binning (the front stage, on the other stream and
    // buffer parity) overlaps signal i's cutoff/vote/estimate (the back
    // stage). Fronts chain on the previous front's `binned` event (they
    // share the chunk/FFT scratch); backs chain on the previous back's
    // `done` event (they share the hits/sort scratch). See DESIGN.md for
    // the dependency graph.
    std::ptrdiff_t front_done = -1, prev_done = -1;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      Impl::SignalCtx ctx;
      ctx.pipelined = true;
      ctx.parity = i & 1;
      ctx.s = im.home_streams[i & 1];
      ctx.back_dep = prev_done;
      if (front_done >= 0)
        dev.wait_event(ctx.s, static_cast<std::size_t>(front_done));
      out.push_back(im.exec_signal(xs[i], evs[i], ctx));
      candidates += out.back().size();
      front_done = static_cast<std::ptrdiff_t>(evs[i].binned);
      prev_done = static_cast<std::ptrdiff_t>(evs[i].done);
    }
    im.bind_buffers(0);  // leave the plan on the primary (serialized) set
  } else {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      out.push_back(im.exec_signal(xs[i], evs[i], Impl::SignalCtx{}));
      candidates += out.back().size();
      // Signals are serialized on the device timeline.
      dev.sync_point();
    }
  }

  // Stats are assembled even when the caller passes nullptr so the
  // always-on registry sees every batch. Publication happens only for
  // fresh captures: an in-capture batch is one shard of a fleet batch,
  // and the fleet publishes once through GpuFleetStats::to_metrics with
  // the correct per-device attribution — recording here too would count
  // every fleet signal twice.
  GpuBatchStats local;
  GpuBatchStats& st = stats != nullptr ? *stats : local;
  st.model_ms = dev.elapsed_model_ms();
  st.host_ms = wall.ms();
  st.signals = xs.size();
  st.candidates = candidates;
  st.pipelined = pipelined;
  st.algo = im.p.algo;
  st.per_signal.clear();
  st.per_signal.reserve(xs.size());
  const auto labels = Impl::phase_labels(im.p.algo);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    // Each signal's window from its own events — coherent under overlap.
    const double t0 = dev.event_time_ms(evs[i].start);
    const double t1 = dev.event_time_ms(evs[i].setup);
    const double t2 = dev.event_time_ms(evs[i].binned);
    const double t3 = dev.event_time_ms(evs[i].voted);
    const double t4 = dev.event_time_ms(evs[i].done);
    GpuSignalStats sig;
    sig.start_ms = t0;
    sig.end_ms = t4;
    sig.candidates = out[i].size();
    sig.algo = im.p.algo;
    sig.phase_span_ms[labels[0]] = t1 - t0;
    sig.phase_span_ms[labels[1]] = t2 - t1;
    sig.phase_span_ms[labels[2]] = t3 - t2;
    sig.phase_span_ms[labels[3]] = t4 - t3;
    st.per_signal.push_back(std::move(sig));
  }
  if (fresh_capture) st.to_metrics(cusim::MetricsRegistry::global());
  return out;
}

void observe_signal_metrics(cusim::MetricsRegistry& reg,
                            const GpuSignalStats& sig, std::size_t device) {
  using cusim::MetricsRegistry;
  reg.histogram(MetricsRegistry::label("cusfft_signal_latency_ms", "device",
                                       std::to_string(device)))
      .observe(sig.end_ms - sig.start_ms);
  for (const auto& [phase, span_ms] : sig.phase_span_ms)
    reg.histogram(MetricsRegistry::label("cusfft_phase_ms", "phase", phase))
        .observe(span_ms);
}

void GpuExecStats::to_metrics(cusim::MetricsRegistry& reg) const {
  using cusim::MetricsRegistry;
  reg.counter("cusfft_executes_total").inc();
  reg.counter(MetricsRegistry::label("cusfft_algo_executes_total", "algo",
                                     sfft::to_string(algo)))
      .inc();
  reg.counter("cusfft_candidates_total").add(candidates);
  reg.histogram("cusfft_execute_model_ms").observe(model_ms);
  reg.histogram("cusfft_execute_host_ms").observe(host_ms);
  // A solo execute is one signal on (implicit) device 0, so it feeds the
  // same per-device latency family the fleet paths populate.
  reg.histogram(
         MetricsRegistry::label("cusfft_signal_latency_ms", "device", "0"))
      .observe(model_ms);
  for (const auto& [phase, span_ms] : phase_span_ms)
    reg.histogram(MetricsRegistry::label("cusfft_phase_ms", "phase", phase))
        .observe(span_ms);
}

void GpuBatchStats::to_metrics(cusim::MetricsRegistry& reg,
                               std::size_t device) const {
  reg.counter("cusfft_batches_total").inc();
  if (pipelined) reg.counter("cusfft_batches_pipelined_total").inc();
  reg.counter("cusfft_signals_total").add(signals);
  reg.counter(cusim::MetricsRegistry::label("cusfft_algo_signals_total",
                                            "algo", sfft::to_string(algo)))
      .add(signals);
  reg.counter("cusfft_candidates_total").add(candidates);
  reg.histogram("cusfft_batch_model_ms").observe(model_ms);
  reg.histogram("cusfft_batch_host_ms").observe(host_ms);
  for (const GpuSignalStats& sig : per_signal)
    observe_signal_metrics(reg, sig, device);
}

const char* step_of_kernel(const std::string& k) {
  auto starts = [&](const char* pre) { return k.rfind(pre, 0) == 0; };
  if (starts("ffast_")) return sfft::ffast_step::kSubsample;
  if (starts("comb_")) return sfft::step::kComb;
  if (starts("pf_")) return sfft::step::kPermFilter;
  if (starts("cufft_") || starts("bucket_copy")) return sfft::step::kSubFft;
  if (starts("cutoff_") || starts("radix_") || starts("bitonic_") ||
      starts("scan_") || starts("reduce_") || starts("fast_select") ||
      starts("select_reset"))
    return sfft::step::kCutoff;
  if (starts("loc_recover") || starts("score_clear") || starts("hits_reset"))
    return sfft::step::kLocRecover;
  if (starts("estimate")) return sfft::step::kEstimate;
  if (starts("h2d") || starts("d2h")) return "0 transfer";
  return "other";
}

}  // namespace cusfft::gpu
