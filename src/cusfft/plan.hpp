// cusFFT — the paper's contribution: the sparse FFT running as simulator
// kernels on the (simulated) GPU. One GpuPlan owns all device state: the
// uploaded flat filter (time taps + length-n frequency response), the
// permutation parameters, the stream pool, and every working buffer, so an
// execute() is exactly the kernel sequence of Sections IV-V.
//
// Numerical contract: identical Params (and seed) produce the same
// permutations as sfft::SerialPlan, so GPU and CPU outputs agree to FFT
// rounding — tests pin this.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/timer.hpp"
#include "core/types.hpp"
#include "cusfft/options.hpp"
#include "cusim/device.hpp"
#include "sfft/params.hpp"

namespace cusfft::gpu {

/// Modeled timing and wall time for one execute_many() batch.
struct GpuBatchStats {
  double model_ms = 0;  // modeled makespan of the whole batch
  double host_ms = 0;   // wall time of the functional simulation
  std::size_t signals = 0;
  std::size_t candidates = 0;  // summed over the batch
};

/// Modeled timing and counters for one execute().
struct GpuExecStats {
  double model_ms = 0;  // modeled makespan on the GpuSpec (incl. transfer
                        // when Options::include_transfer)
  double host_ms = 0;   // wall time of the functional simulation (for
                        // transparency; not a GPU time)
  std::map<std::string, double> step_model_ms;  // per paper step, summed
                                                // solo kernel durations
  std::map<std::string, double> phase_span_ms;  // true timeline spans
                                                // between phase boundaries
                                                // (overlap-aware)
  std::size_t candidates = 0;  // locations that survived voting
};

class GpuPlan {
 public:
  GpuPlan(cusim::Device& dev, sfft::Params params, Options opts);
  ~GpuPlan();
  GpuPlan(GpuPlan&&) noexcept;
  GpuPlan& operator=(GpuPlan&&) noexcept;
  GpuPlan(const GpuPlan&) = delete;
  GpuPlan& operator=(const GpuPlan&) = delete;

  const sfft::Params& params() const;
  const Options& options() const;
  std::size_t buckets() const;

  /// Runs the full GPU algorithm on x (length n). Returns the recovered
  /// sparse spectrum sorted by location.
  SparseSpectrum execute(std::span<const cplx> x,
                         GpuExecStats* stats = nullptr);

  /// Throughput path: runs the algorithm on every signal of the batch in
  /// one capture, reusing all of the plan's device state (no per-signal
  /// setup, pooled buffers stay warm). Modeled time is the sum of the
  /// per-signal device timelines — cross-signal stream overlap is a
  /// planned refinement (see ROADMAP). Each signal must have length n.
  std::vector<SparseSpectrum> execute_many(
      std::span<const std::span<const cplx>> xs,
      GpuBatchStats* stats = nullptr);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Maps a kernel name to the paper step it belongs to (the keys of
/// sfft::step::*); used for the per-step GPU profile and by tests.
const char* step_of_kernel(const std::string& kernel_name);

}  // namespace cusfft::gpu
