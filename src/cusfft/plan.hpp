// cusFFT — the paper's contribution: the sparse FFT running as simulator
// kernels on the (simulated) GPU. One GpuPlan owns all device state: the
// uploaded flat filter (time taps + length-n frequency response), the
// permutation parameters, the stream pool, and every working buffer, so an
// execute() is exactly the kernel sequence of Sections IV-V.
//
// Numerical contract: identical Params (and seed) produce the same
// permutations as sfft::SerialPlan, so GPU and CPU outputs agree to FFT
// rounding — tests pin this.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/timer.hpp"
#include "core/types.hpp"
#include "cusfft/options.hpp"
#include "cusim/device.hpp"
#include "sfft/params.hpp"

namespace cusfft::cusim {
class MetricsRegistry;  // cusim/metrics.hpp
}

namespace cusfft::gpu {

/// How execute_many() schedules the batch on the modeled device.
enum class BatchMode {
  kAuto,        ///< pipelined for batches of >= 2 signals, unless the
                ///< CUSFFT_PIPELINE=0 environment override forces the
                ///< serialized schedule
  kSerialized,  ///< one signal at a time (device-wide sync between signals)
  kPipelined,   ///< stream-pipelined: signal i+1's transfer and binning
                ///< kernels overlap signal i's cutoff/vote/estimate on the
                ///< modeled timeline (double-buffered per-signal state,
                ///< stream events instead of device-wide syncs). Outputs
                ///< are bit-identical to the serialized schedule.
};

/// One signal's window of a batch, computed from that signal's own stream
/// events — the numbers stay coherent when signals overlap.
struct GpuSignalStats {
  double start_ms = 0;  // capture-relative [start, end) of this signal
  double end_ms = 0;
  std::map<std::string, double> phase_span_ms;  // same keys as GpuExecStats;
                                                // spans tile [start, end)
  std::size_t candidates = 0;
  /// Backend that ran this signal (resolved — never kAuto). Under
  /// MultiGpuPlan::execute_mixed each signal records its own pick.
  sfft::Algorithm algo = sfft::Algorithm::kCusfft;
};

/// Publishes one signal's window into the always-on registry: its
/// end-to-end latency into `cusfft_signal_latency_ms{device="<device>"}`
/// and each phase span into `cusfft_phase_ms{phase="..."}`. Shared by the
/// single-device batch path and the fleet adapter so the two can never
/// drift apart.
void observe_signal_metrics(cusim::MetricsRegistry& reg,
                            const GpuSignalStats& sig, std::size_t device);

/// Modeled timing and wall time for one execute_many() batch.
struct GpuBatchStats {
  double model_ms = 0;  // modeled makespan of the whole batch
  double host_ms = 0;   // wall time of the functional simulation
  std::size_t signals = 0;
  std::size_t candidates = 0;  // summed over the batch
  bool pipelined = false;      // schedule the batch actually ran under
  /// Backend this plan's batch ran (resolved — never kAuto).
  sfft::Algorithm algo = sfft::Algorithm::kCusfft;
  /// Always index-aligned with the input batch: per_signal[i] (like the
  /// returned spectra vector) describes xs[i] regardless of the schedule
  /// — serialized, pipelined, or sharded across a device fleet
  /// (MultiGpuPlan reorders shard results back to input order; tests pin
  /// this).
  std::vector<GpuSignalStats> per_signal;

  /// Folds this batch into the always-on registry (batch counters,
  /// model/host latency histograms, per-signal latencies + phase spans on
  /// `device`). execute_many() publishes automatically; the fleet path
  /// publishes once through GpuFleetStats::to_metrics instead.
  void to_metrics(cusim::MetricsRegistry& reg, std::size_t device = 0) const;
};

/// Modeled timing and counters for one execute().
struct GpuExecStats {
  double model_ms = 0;  // modeled makespan on the GpuSpec (incl. transfer
                        // when Options::include_transfer)
  double host_ms = 0;   // wall time of the functional simulation (for
                        // transparency; not a GPU time)
  std::map<std::string, double> step_model_ms;  // per paper step, summed
                                                // solo kernel durations
  std::map<std::string, double> phase_span_ms;  // true timeline spans
                                                // between phase boundaries
                                                // (overlap-aware)
  std::size_t candidates = 0;  // locations that survived voting
  /// Backend this execute ran (resolved — never kAuto). Also keys the
  /// cusfft_algo_executes_total{algo=...} counter in to_metrics.
  sfft::Algorithm algo = sfft::Algorithm::kCusfft;

  /// Folds this execute into the always-on registry (execute counter,
  /// model/host latency histograms, phase-span histograms). execute()
  /// publishes automatically.
  void to_metrics(cusim::MetricsRegistry& reg) const;
};

class GpuPlan {
 public:
  GpuPlan(cusim::Device& dev, sfft::Params params, Options opts);
  ~GpuPlan();
  GpuPlan(GpuPlan&&) noexcept;
  GpuPlan& operator=(GpuPlan&&) noexcept;
  GpuPlan(const GpuPlan&) = delete;
  GpuPlan& operator=(const GpuPlan&) = delete;

  const sfft::Params& params() const;
  const Options& options() const;
  std::size_t buckets() const;

  /// Runs the full GPU algorithm on x (length n). Returns the recovered
  /// sparse spectrum sorted by location.
  SparseSpectrum execute(std::span<const cplx> x,
                         GpuExecStats* stats = nullptr);

  /// Throughput path: runs the algorithm on every signal of the batch in
  /// one capture, reusing all of the plan's device state (no per-signal
  /// setup, pooled buffers stay warm). Under BatchMode::kPipelined (the
  /// kAuto default for >= 2 signals) signals alternate between two home
  /// streams with double-buffered per-signal device state, so signal
  /// i+1's H2D transfer and binning kernels overlap signal i's
  /// cutoff/vote/estimate kernels on the modeled timeline; outputs are
  /// bit-identical to the serialized schedule either way (functional
  /// execution is eager and host-sequential). Each signal must have
  /// length n.
  std::vector<SparseSpectrum> execute_many(
      std::span<const std::span<const cplx>> xs,
      GpuBatchStats* stats = nullptr, BatchMode mode = BatchMode::kAuto);

  /// execute_many() without opening a fresh capture: appends this batch to
  /// the capture already open on the device. Mixed-shape shards run one
  /// batch per shape-specific plan inside a single device capture (with a
  /// sync point between shape groups) so the shard's timeline covers all
  /// of them; execute_many() would reset the capture and erase the earlier
  /// groups. The caller owns begin_capture()/end_capture().
  std::vector<SparseSpectrum> execute_many_in_capture(
      std::span<const std::span<const cplx>> xs,
      GpuBatchStats* stats = nullptr, BatchMode mode = BatchMode::kAuto);

 private:
  std::vector<SparseSpectrum> run_batch(
      std::span<const std::span<const cplx>> xs, GpuBatchStats* stats,
      BatchMode mode, bool fresh_capture);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Maps a kernel name to the paper step it belongs to (the keys of
/// sfft::step::*); used for the per-step GPU profile and by tests.
const char* step_of_kernel(const std::string& kernel_name);

}  // namespace cusfft::gpu
