// Backend auto-picker: resolves sfft::Algorithm::kAuto to a concrete
// backend (kCusfft or kFfast) per signal, following the crossover
// methodology of the empirical sparse-FFT comparisons in PAPERS.md — the
// winner flips with (n, k): cusFFT's bucket hashing amortizes at large k,
// FFAST's O(sum_s F_s log F_s) stage chain wins at low k.
//
// Two modes, chosen by CUSFFT_AUTOPICK (re-read on every resolution, never
// latched; malformed values throw std::invalid_argument naming the
// variable):
//
//   * measured (the default): a one-shot calibration per table cell — run
//     BOTH backends once on a deterministic synthetic signal of the
//     requested shape and cache the argmin of the modeled execute time in
//     a process-wide table. Picks are consistent with an oracle that runs
//     both backends by construction (same quantity, same determinism).
//   * modeled: no execution — compare the analytic per-signal costs from
//     modeled_signal_cost_s (free, but only as good as the cost model).
//
// CUSFFT_ALGO (same unlatched convention) overrides the Params field
// entirely: "cusfft" / "ffast" force that backend, "auto" forces the
// picker even for plans that asked for a fixed backend.
#pragma once

#include <cstddef>
#include <optional>

#include "cusfft/multi_plan.hpp"
#include "sfft/params.hpp"

namespace cusfft::gpu {

enum class AutopickMode {
  kMeasured = 0,  ///< calibrate cells by running both backends once
  kModeled = 1,   ///< compare modeled_signal_cost_s, never execute
};

/// Stable lowercase name ("measured" / "modeled") — the CUSFFT_AUTOPICK
/// spelling.
const char* to_string(AutopickMode m);

/// Reads CUSFFT_AUTOPICK. Unset -> kMeasured. Re-read per call; malformed
/// values throw std::invalid_argument naming the variable (bench frontends
/// convert that to a usage exit).
AutopickMode autopick_mode_from_env();

/// Reads CUSFFT_ALGO. Unset -> nullopt (no override). Re-read per call;
/// malformed values throw std::invalid_argument naming the variable.
std::optional<sfft::Algorithm> algo_override_from_env();

/// One crossover-table cell: both backends' measured modeled time for one
/// shape on one device spec, and the winner.
struct CrossoverCell {
  std::size_t n = 0;
  std::size_t k = 0;
  double noise = 0.0;
  double cusfft_ms = 0.0;
  double ffast_ms = 0.0;
  sfft::Algorithm winner = sfft::Algorithm::kCusfft;
};

/// Measured calibration for p's shape at `noise` on a scratch device with
/// `spec`: runs both backends once on the same deterministic synthetic
/// signal (seeded from p.seed) and caches the cell process-wide (keyed by
/// every Params field that shapes the kernel sequence, the noise level,
/// the spec name, and Options::include_transfer). Thread-safe.
CrossoverCell calibrate_cell(const sfft::Params& p,
                             const perfmodel::GpuSpec& spec,
                             const Options& opts, double noise = 0.0);

/// Resolves the backend for one signal of shape p on `spec`: applies the
/// CUSFFT_ALGO override first, returns fixed backends as-is, and sends
/// kAuto through the CUSFFT_AUTOPICK-selected picker. Never returns
/// kAuto. Each picker decision is recorded in
/// cusfft_algo_picks_total{algo=...} (overrides and fixed backends are
/// not "picks" and stay uncounted).
sfft::Algorithm resolve_algorithm(const sfft::Params& p,
                                  const perfmodel::GpuSpec& spec,
                                  const Options& opts);

}  // namespace cusfft::gpu
