// Feature flags selecting between the paper's baseline GPU algorithm
// (Section IV) and the optimized one (Section V), plus the alternative
// kernels Section IV.C argues against — all individually selectable for
// the ablation benches.
#pragma once

#include "custhrust/sort.hpp"

namespace cusfft::gpu {

/// How steps 1-2 (permute + filter + bin) run on the device.
enum class Binning {
  /// Algorithm 2: one thread per bucket, collision-free rounds — the
  /// paper's baseline kernel (requires the Fig. 3 index mapping).
  kLoopPartition,

  /// Section V.A: remap + execute kernel pairs pipelined across CUDA
  /// streams (32-deep on GK110) — the optimized kernel.
  kAsyncTransform,

  /// The conventional histogram: one thread per filter tap, atomicAdd into
  /// the shared bucket array in global memory.
  kGlobalAtomicHist,

  /// Per-block sub-histograms in on-chip shared memory, merged with global
  /// atomics — the approach Section IV.C rules out because B complex
  /// doubles rarely fit the 48 KB of shared memory (GpuPlan refuses the
  /// configuration when they don't).
  kSharedHist,

  /// No index mapping: the loop-carried index chain of Algorithm 1, which
  /// admits no parallelism and runs as one dependent thread.
  kSerialChain,
};

struct Options {
  Binning binning = Binning::kLoopPartition;

  /// Section V.B: threshold-based linear k-selection instead of the
  /// Thrust-style sort & select cutoff (Algorithm 6 vs Algorithm 3).
  bool fast_selection = false;

  /// Step 3: single batched B-dimensional FFT across all loops (shared
  /// twiddles) instead of one FFT launch per loop.
  bool batched_fft = true;

  /// Sort used by the sort&select cutoff when fast_selection is off.
  custhrust::SortAlgo sort_algo = custhrust::SortAlgo::kRadix;

  /// Threshold scale for fast selection (beta x bucket RMS).
  double select_beta = 1.0;

  /// Include the host-to-device transfer of the input signal in the modeled
  /// time (the paper includes it when comparing against CPU PsFFT, Fig. 5e,
  /// and excludes it for the GPU-resident cuFFT comparisons).
  bool include_transfer = false;

  /// The paper's baseline configuration (Section IV).
  static Options baseline() { return Options{}; }

  /// The paper's optimized configuration (Section V).
  static Options optimized() {
    Options o;
    o.binning = Binning::kAsyncTransform;
    o.fast_selection = true;
    return o;
  }
};

}  // namespace cusfft::gpu
