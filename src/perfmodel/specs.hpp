// Hardware descriptions for the performance models. The defaults reproduce
// the paper's test benches: Table I (NVIDIA Tesla K20x, Kepler GK110) and
// Table II (Intel Xeon E5-2640, Sandy Bridge).
#pragma once

#include <cstddef>
#include <string>

#include "core/types.hpp"

namespace cusfft::perfmodel {

/// GPU hardware model parameters (Table I plus microarchitectural constants
/// needed by the kernel cost model; sources noted inline).
struct GpuSpec {
  std::string name = "Tesla K20x";
  double cuda_capability = 3.5;
  unsigned sm_count = 14;
  unsigned cores_per_sm = 192;        // single-precision CUDA cores
  unsigned dp_units_per_sm = 64;      // double-precision units (GK110)
  double clock_hz = 732e6;            // processor clock (Table I)
  std::size_t shared_mem_per_sm = 64 * 1024;  // bytes (Table I)
  std::size_t global_mem_bytes = 6ULL << 30;  // 6 GB (Table I)
  double mem_bandwidth_Bps = 250e9;   // peak (Table I)

  // Microarchitectural constants (GK110 whitepaper / measured literature).
  unsigned warp_size = 32;
  unsigned max_resident_warps = 64 * 14;  // 64 warps/SM * 14 SMs
  unsigned max_concurrent_kernels = 32;   // Hyper-Q depth (Section V.A)
  std::size_t mem_transaction_bytes = 128;
  double dram_latency_s = 500e-9;         // global load round trip
  double outstanding_loads_per_warp = 8;  // memory-level parallelism
  double coalesced_bw_efficiency = 0.80;  // fraction of peak for streaming
  double random_bw_efficiency = 0.55;     // fraction of peak for scattered
                                          // 128B transactions (row misses)
  double atomic_latency_s = 30e-9;        // serialized conflicting atomic
  double kernel_launch_overhead_s = 5e-6;
  double pcie_bandwidth_Bps = 6e9;        // Gen2 x16 effective
  double pcie_latency_s = 10e-6;

  /// Peak double-precision throughput in FLOP/s (FMA counts as 2).
  double dp_peak_flops() const {
    return static_cast<double>(sm_count) * dp_units_per_sm * clock_hz * 2.0;
  }

  static GpuSpec k20x() { return GpuSpec{}; }
};

/// CPU hardware model parameters (Table II).
struct CpuSpec {
  std::string name = "Intel Xeon E5-2640";
  std::string arch = "Sandy Bridge";
  unsigned cores = 6;
  double clock_hz = 2.5e9;
  std::size_t l1_data_bytes = 32 * 1024;   // per core
  std::size_t l2_bytes = 256 * 1024;       // per core
  std::size_t l3_bytes = 15 * 1024 * 1024; // shared (Table II)
  std::size_t dram_bytes = 64ULL << 30;    // 64 GB (Table II)

  // Model constants.
  double mem_bandwidth_Bps = 42.6e9;  // 3-channel DDR3-1333
  double dram_latency_s = 100e-9;  // random access incl. TLB pressure on a
                                   // multi-hundred-MB working set
  double l3_latency_s = 15e-9;     // random access within the shared L3
  double flops_per_cycle_per_core = 8.0;  // AVX: 4-wide DP add + mul
  double mlp_per_thread = 1.0;  // the reference sFFT walks the permuted
                                // signal with a dependent index update
                                // (index = (index+ai) mod n), so each thread
                                // sustains ~1 outstanding miss
  double parallel_overhead_s = 10e-6;  // per parallel region (OpenMP fork)

  double peak_flops() const {
    return cores * clock_hz * flops_per_cycle_per_core;
  }

  static CpuSpec e5_2640() { return CpuSpec{}; }
};

}  // namespace cusfft::perfmodel
