// Transaction-level GPU kernel cost model (DESIGN.md §3). Converts the
// counters the simulator gathers while functionally executing a kernel into
// a modeled duration on the configured GpuSpec.
#pragma once

#include <string>

#include "perfmodel/specs.hpp"

namespace cusfft::perfmodel {

/// Counters measured for one kernel launch (gathered by cusim's warp
/// tracer; counts are whole-kernel, extrapolated when warps were sampled).
struct KernelCounters {
  std::string name;
  double blocks = 0;
  double threads = 0;            // total threads launched
  double warps = 0;
  double coalesced_transactions = 0;  // 128B segments from dense warp access
  double random_transactions = 0;     // 128B segments from scattered access
  double bytes_useful = 0;       // bytes the program actually asked for
  double flops = 0;              // self-reported floating-point work
  double atomic_ops = 0;
  double max_atomic_conflict = 0;  // deepest same-address conflict chain
  double shared_accesses = 0;      // on-chip shared-memory accesses
};

/// Duration decomposition for one kernel (seconds).
struct KernelCost {
  double mem_s = 0;       // DRAM transaction time at effective bandwidth
  double compute_s = 0;   // FLOP time at DP peak
  double atomic_s = 0;    // serialization from conflicting atomics
  double overhead_s = 0;  // launch overhead
  double total_s = 0;     // overhead + max(mem, compute, atomic)

  /// Bytes that must cross DRAM (used by the timeline's bandwidth sharing).
  double mem_bytes = 0;
};

class GpuModel {
 public:
  explicit GpuModel(GpuSpec spec = GpuSpec::k20x()) : spec_(spec) {}

  const GpuSpec& spec() const { return spec_; }

  /// Cost of one kernel in isolation.
  ///
  /// mem_s      = transaction_bytes / effective_bandwidth, where the
  ///              effective bandwidth blends the coalesced and random
  ///              efficiencies by traffic mix and is additionally capped by
  ///              Little's law (resident warps x outstanding loads x 128B /
  ///              latency) so under-occupied kernels are latency-bound.
  /// compute_s  = flops / DP peak.
  /// atomic_s   = max conflict depth x atomic latency (the serialized chain
  ///              on the hottest address).
  KernelCost kernel_cost(const KernelCounters& c) const;

  /// PCIe transfer duration for `bytes` (one direction).
  double transfer_cost_s(double bytes) const {
    return spec_.pcie_latency_s + bytes / spec_.pcie_bandwidth_Bps;
  }

 private:
  GpuSpec spec_;
};

}  // namespace cusfft::perfmodel
