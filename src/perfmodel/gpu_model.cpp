#include "perfmodel/gpu_model.hpp"

#include <algorithm>
#include <cmath>

namespace cusfft::perfmodel {

KernelCost GpuModel::kernel_cost(const KernelCounters& c) const {
  KernelCost out;
  const double tb = static_cast<double>(spec_.mem_transaction_bytes);
  const double coal_bytes = c.coalesced_transactions * tb;
  const double rand_bytes = c.random_transactions * tb;
  out.mem_bytes = coal_bytes + rand_bytes;

  if (out.mem_bytes > 0) {
    // Blend efficiencies by traffic mix, then cap with Little's law.
    const double blended_eff =
        (coal_bytes * spec_.coalesced_bw_efficiency +
         rand_bytes * spec_.random_bw_efficiency) /
        out.mem_bytes;
    const double bw_eff = spec_.mem_bandwidth_Bps * blended_eff;
    const double resident =
        std::min(c.warps, static_cast<double>(spec_.max_resident_warps));
    const double bw_cap = resident * spec_.outstanding_loads_per_warp * tb /
                          spec_.dram_latency_s;
    out.mem_s = out.mem_bytes / std::max(1.0, std::min(bw_eff, bw_cap));
  }

  out.compute_s = c.flops / spec_.dp_peak_flops();
  out.atomic_s = c.max_atomic_conflict * spec_.atomic_latency_s;
  out.overhead_s = spec_.kernel_launch_overhead_s;
  out.total_s =
      out.overhead_s + std::max({out.mem_s, out.compute_s, out.atomic_s});
  return out;
}

}  // namespace cusfft::perfmodel
