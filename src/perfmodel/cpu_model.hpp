// Roofline-style CPU cost model for the paper's CPU comparators (parallel
// FFTW in Fig. 5(d), OpenMP PsFFT in Fig. 5(e)). Fed by operation counts
// from the instrumented CPU code paths; see DESIGN.md §3.
#pragma once

#include <string>

#include "perfmodel/specs.hpp"

namespace cusfft::perfmodel {

/// Work performed by one CPU phase.
struct CpuWork {
  std::string name;
  double streamed_bytes = 0;   // sequential DRAM traffic (bandwidth-bound)
  double random_accesses = 0;  // scattered loads (DRAM-latency-bound); each
                               // access costs one latency slot divided by
                               // per-thread memory-level parallelism
  double random_working_set_bytes = 0;  // footprint the scattered accesses
                                        // land in; when it fits L3 the
                                        // latency drops to the L3 latency
                                        // (0 = assume DRAM-resident)
  double flops = 0;
  double threads = 1;          // worker threads the phase runs on
};

class CpuModel {
 public:
  explicit CpuModel(CpuSpec spec = CpuSpec::e5_2640()) : spec_(spec) {}

  const CpuSpec& spec() const { return spec_; }

  /// Phase duration: max of the three rooflines plus the parallel-region
  /// fork/join overhead.
  ///
  ///   bw roof      = streamed_bytes / mem_bandwidth
  ///   latency roof = random_accesses * eff_latency / (threads * MLP),
  ///                  where eff_latency blends the L3 and DRAM latencies by
  ///                  the fraction of the working set that fits in L3
  ///   flop roof    = flops / (threads_clamped * clock * flops_per_cycle)
  double phase_cost_s(const CpuWork& w) const;

  /// The blended random-access latency for a given working set.
  double effective_latency_s(double working_set_bytes) const;

 private:
  CpuSpec spec_;
};

}  // namespace cusfft::perfmodel
