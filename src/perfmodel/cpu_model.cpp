#include "perfmodel/cpu_model.hpp"

#include <algorithm>

namespace cusfft::perfmodel {

double CpuModel::effective_latency_s(double working_set_bytes) const {
  if (working_set_bytes <= 0) return spec_.dram_latency_s;
  const double hit =
      std::min(1.0, static_cast<double>(spec_.l3_bytes) / working_set_bytes);
  return hit * spec_.l3_latency_s + (1.0 - hit) * spec_.dram_latency_s;
}

double CpuModel::phase_cost_s(const CpuWork& w) const {
  const double threads =
      std::clamp(w.threads, 1.0, static_cast<double>(spec_.cores));
  const double bw_roof = w.streamed_bytes / spec_.mem_bandwidth_Bps;
  const double lat_roof = w.random_accesses *
                          effective_latency_s(w.random_working_set_bytes) /
                          (threads * spec_.mlp_per_thread);
  const double flop_roof =
      w.flops / (threads * spec_.clock_hz * spec_.flops_per_cycle_per_core);
  const double overhead = w.threads > 1 ? spec_.parallel_overhead_s : 0.0;
  return overhead + std::max({bw_roof, lat_roof, flop_roof});
}

}  // namespace cusfft::perfmodel
