#include "cusim/report.hpp"

#include "cusim/pool.hpp"

namespace cusfft::cusim {

ResultTable report_table(const Device& dev) {
  ResultTable t({"kernel", "launches", "coalesced_tx", "random_tx",
                 "useful_MB", "Mflops", "atomics", "max_conflict",
                 "solo_ms"});
  // dev.report() is a std::map: rows come out in lexicographic kernel-name
  // order, run after run.
  for (const auto& [name, r] : dev.report()) {
    t.add_row({name, std::to_string(r.launches),
               ResultTable::num(r.counters.coalesced_transactions),
               ResultTable::num(r.counters.random_transactions),
               ResultTable::num(r.counters.bytes_useful / 1e6),
               ResultTable::num(r.counters.flops / 1e6),
               ResultTable::num(r.counters.atomic_ops),
               ResultTable::num(r.counters.max_atomic_conflict),
               ResultTable::num(r.solo_s * 1e3)});
  }
  // Allocation telemetry for the capture (value in the launches column).
  const BufferPool::Stats d =
      BufferPool::global().stats().since(dev.pool_stats_at_capture());
  const std::string na = "-";
  auto pool_row = [&](const char* what, double v) {
    t.add_row({std::string("[pool ") + what + "]", ResultTable::num(v), na,
               na, na, na, na, na, na});
  };
  pool_row("allocations", static_cast<double>(d.allocations));
  pool_row("reuses", static_cast<double>(d.reuses));
  pool_row("fresh_MB", static_cast<double>(d.bytes_allocated) / 1e6);
  pool_row("pooled_MB", static_cast<double>(d.bytes_pooled) / 1e6);
  return t;
}

}  // namespace cusfft::cusim
