#include "cusim/report.hpp"

namespace cusfft::cusim {

ResultTable report_table(const Device& dev) {
  ResultTable t({"kernel", "launches", "coalesced_tx", "random_tx",
                 "useful_MB", "Mflops", "atomics", "max_conflict",
                 "solo_ms"});
  for (const auto& [name, r] : dev.report()) {
    t.add_row({name, std::to_string(r.launches),
               ResultTable::num(r.counters.coalesced_transactions),
               ResultTable::num(r.counters.random_transactions),
               ResultTable::num(r.counters.bytes_useful / 1e6),
               ResultTable::num(r.counters.flops / 1e6),
               ResultTable::num(r.counters.atomic_ops),
               ResultTable::num(r.counters.max_atomic_conflict),
               ResultTable::num(r.solo_s * 1e3)});
  }
  return t;
}

}  // namespace cusfft::cusim
