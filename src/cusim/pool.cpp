#include "cusim/pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

namespace cusfft::cusim {

namespace {
/// Process-wide simulated device address space; allocations are 256-byte
/// aligned like cudaMalloc's guarantees, with a 256-byte guard gap so
/// distinct ranges never share a 128-byte coalescing segment.
u64 allocate_device_range(u64 bytes) {
  static std::atomic<u64> next{1u << 20};
  const u64 aligned = (bytes + 255) & ~u64{255};
  return next.fetch_add(aligned + 256);
}
}  // namespace

BufferPool::Block BufferPool::acquire(std::size_t bytes) {
  const u64 cap = std::max<u64>(256, (static_cast<u64>(bytes) + 255) &
                                         ~u64{255});
  {
    std::lock_guard lk(mu_);
    auto it = free_.lower_bound(cap);
    if (enabled_ && it != free_.end() && it->first <= 2 * cap) {
      Block b = std::move(it->second);
      free_.erase(it);
      ++stats_.reuses;
      stats_.bytes_pooled -= b.cap;
      std::memset(b.bytes.data(), 0, b.bytes.size());
      return b;
    }
    ++stats_.allocations;
    stats_.bytes_allocated += cap;
  }
  Block b;
  b.cap = cap;
  b.bytes.assign(cap, std::byte{0});
  b.base = allocate_device_range(cap);
  return b;
}

void BufferPool::release(Block&& b) {
  if (b.cap == 0) return;
  std::lock_guard lk(mu_);
  if (!enabled_ || stats_.bytes_pooled + b.cap > max_pooled_bytes_) return;
  stats_.bytes_pooled += b.cap;
  free_.emplace(b.cap, std::move(b));
}

void BufferPool::trim() {
  std::lock_guard lk(mu_);
  free_.clear();
  stats_.bytes_pooled = 0;
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

void BufferPool::set_enabled(bool on) {
  std::lock_guard lk(mu_);
  enabled_ = on;
}

void BufferPool::set_max_pooled_bytes(u64 bytes) {
  std::lock_guard lk(mu_);
  max_pooled_bytes_ = bytes;
}

BufferPool& BufferPool::global() {
  static BufferPool* pool = [] {
    auto* p = new BufferPool();
    if (const char* env = std::getenv("CUSFFT_POOL");
        env != nullptr && env[0] == '0')
      p->set_enabled(false);
    if (const char* env = std::getenv("CUSFFT_POOL_MAX_MB")) {
      const long mb = std::strtol(env, nullptr, 10);
      if (mb >= 0) p->set_max_pooled_bytes(static_cast<u64>(mb) << 20);
    }
    return p;
  }();
  return *pool;
}

}  // namespace cusfft::cusim
