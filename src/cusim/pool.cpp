#include "cusim/pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace cusfft::cusim {

namespace {
/// Process-wide simulated device address space; allocations are 256-byte
/// aligned like cudaMalloc's guarantees, with a 256-byte guard gap so
/// distinct ranges never share a 128-byte coalescing segment.
u64 allocate_device_range(u64 bytes) {
  static std::atomic<u64> next{1u << 20};
  const u64 aligned = (bytes + 255) & ~u64{255};
  return next.fetch_add(aligned + 256);
}
}  // namespace

BufferPool::Block BufferPool::acquire(std::size_t bytes) {
  const u64 cap = std::max<u64>(256, (static_cast<u64>(bytes) + 255) &
                                         ~u64{255});
  if (enabled_.load(std::memory_order_relaxed)) {
    Block b;
    bool hit = false;
    {
      std::lock_guard lk(mu_);
      auto it = free_.lower_bound(cap);
      if (it != free_.end() && it->first <= 2 * cap) {
        b = std::move(it->second.back());
        it->second.pop_back();
        if (it->second.empty()) free_.erase(it);
        hit = true;
      }
    }
    if (hit) {
      reuses_.fetch_add(1, std::memory_order_relaxed);
      bytes_reused_.fetch_add(b.cap, std::memory_order_relaxed);
      bytes_pooled_.fetch_sub(b.cap, std::memory_order_relaxed);
      // Zero outside the lock: for MB-sized scratch this memset dominates
      // acquire cost and must not serialize concurrent captures.
      std::memset(b.bytes.data(), 0, b.bytes.size());
      return b;
    }
  }
  allocations_.fetch_add(1, std::memory_order_relaxed);
  bytes_allocated_.fetch_add(cap, std::memory_order_relaxed);
  Block b;
  b.cap = cap;
  b.bytes.assign(cap, std::byte{0});
  b.base = allocate_device_range(cap);
  return b;
}

void BufferPool::release(Block&& b) {
  if (b.cap == 0) return;
  if (!enabled_.load(std::memory_order_relaxed)) return;  // frees b
  // Reserve the budget before touching the list; roll back and free the
  // block if the reservation overshoots. The parked total therefore never
  // exceeds the budget even with releases racing each other.
  const u64 prev = bytes_pooled_.fetch_add(b.cap, std::memory_order_relaxed);
  if (prev + b.cap > max_pooled_bytes_.load(std::memory_order_relaxed)) {
    bytes_pooled_.fetch_sub(b.cap, std::memory_order_relaxed);
    return;  // frees b
  }
  std::lock_guard lk(mu_);
  free_[b.cap].push_back(std::move(b));
}

void BufferPool::trim() {
  std::map<u64, std::vector<Block>> doomed;
  {
    std::lock_guard lk(mu_);
    doomed.swap(free_);
    u64 parked = 0;
    for (const auto& [cap, blocks] : doomed)
      parked += cap * blocks.size();
    bytes_pooled_.fetch_sub(parked, std::memory_order_relaxed);
  }
  // Destructors (the actual frees) run after the lock is dropped.
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  s.allocations = allocations_.load(std::memory_order_relaxed);
  s.reuses = reuses_.load(std::memory_order_relaxed);
  s.bytes_allocated = bytes_allocated_.load(std::memory_order_relaxed);
  s.bytes_reused = bytes_reused_.load(std::memory_order_relaxed);
  s.bytes_pooled = bytes_pooled_.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

void BufferPool::set_max_pooled_bytes(u64 bytes) {
  max_pooled_bytes_.store(bytes, std::memory_order_relaxed);
}

BufferPool& BufferPool::global() {
  static BufferPool* pool = [] {
    auto* p = new BufferPool();
    if (const char* env = std::getenv("CUSFFT_POOL");
        env != nullptr && env[0] == '0')
      p->set_enabled(false);
    if (const char* env = std::getenv("CUSFFT_POOL_MAX_MB")) {
      const long mb = std::strtol(env, nullptr, 10);
      if (mb >= 0) p->set_max_pooled_bytes(static_cast<u64>(mb) << 20);
    }
    return p;
  }();
  return *pool;
}

}  // namespace cusfft::cusim
