#include "cusim/arena.hpp"

#include <algorithm>

namespace cusfft::cusim {

void* LaunchArena::allocate_slow(std::size_t bytes, std::size_t align) {
  // Advance through recycled chunks first; they are already allocated.
  while (active_ + 1 < chunks_.size()) {
    ++active_;
    Chunk& c = chunks_[active_];
    const std::size_t at = (c.used + (align - 1)) & ~(align - 1);
    if (at + bytes <= c.cap) {
      c.used = at + bytes;
      bytes_used_ += bytes;
      return c.data.get() + at;
    }
  }
  // Fresh chunk: double the largest so far, and always fit the request.
  std::size_t cap = first_chunk_bytes_;
  if (!chunks_.empty()) cap = chunks_.back().cap * 2;
  cap = std::max(cap, bytes + align);
  Chunk c;
  c.data = std::make_unique<std::byte[]>(cap);
  c.cap = cap;
  chunks_.push_back(std::move(c));
  active_ = chunks_.size() - 1;
  Chunk& fresh = chunks_.back();
  const std::size_t base =
      reinterpret_cast<std::uintptr_t>(fresh.data.get()) & (align - 1);
  const std::size_t at = base == 0 ? 0 : align - base;
  fresh.used = at + bytes;
  bytes_used_ += bytes;
  return fresh.data.get() + at;
}

}  // namespace cusfft::cusim
