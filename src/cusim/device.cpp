#include "cusim/device.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "cusim/metrics.hpp"
#include "cusim/profiler.hpp"

namespace cusfft::cusim {

namespace {
bool sequential_env() {
  const char* env = std::getenv("CUSIM_SEQUENTIAL");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

GraphMode graph_mode_env() {
  const char* env = std::getenv("CUSFFT_GRAPH");
  if (env == nullptr || env[0] == '\0') return GraphMode::kOn;
  if (std::strcmp(env, "0") == 0) return GraphMode::kOff;
  if (std::strcmp(env, "verify") == 0) return GraphMode::kVerify;
  return GraphMode::kOn;
}
}  // namespace

Device::Device(perfmodel::GpuSpec spec)
    : model_(spec), timeline_(spec.max_concurrent_kernels) {
  parallel_ = !sequential_env();
  graph_mode_ = graph_mode_env();
  pool_at_capture_ = BufferPool::global().stats();
}

Device::~Device() { publish_metrics(); }

void Device::publish_metrics() {
  MetricsRegistry& reg = MetricsRegistry::global();
  // Graph-replay counters are kept in graph_.stats for cheap per-launch
  // updates; the registry sees the delta since the last push, so totals
  // across transient devices accumulate without per-launch lookups.
  const LaunchGraph::Stats& s = graph_.stats;
  if (s.records > graph_pushed_.records)
    reg.counter("cusfft_graph_records_total")
        .add(s.records - graph_pushed_.records);
  if (s.replays > graph_pushed_.replays)
    reg.counter("cusfft_graph_replays_total")
        .add(s.replays - graph_pushed_.replays);
  if (s.verified > graph_pushed_.verified)
    reg.counter("cusfft_graph_verified_total")
        .add(s.verified - graph_pushed_.verified);
  graph_pushed_ = s;

  // Launch-arena footprint: high-water marks across every device so far.
  LaunchArena::Stats a = accum_.arena().stats();
  const LaunchArena::Stats deps = timeline_.arena_stats();
  a.chunks += deps.chunks;
  a.bytes_reserved += deps.bytes_reserved;
  reg.gauge("cusfft_arena_chunks").set_max(static_cast<double>(a.chunks));
  reg.gauge("cusfft_arena_reserved_bytes")
      .set_max(static_cast<double>(a.bytes_reserved));
}

ThreadPool* Device::launch_pool(const LaunchCfg& cfg) const {
  if (!parallel_ || cfg.sequential || cfg.blocks < 2) return nullptr;
  if (cfg.blocks * cfg.threads_per_block < min_parallel_threads_)
    return nullptr;
  ThreadPool* pool = own_pool_only_ ? pool_ : &ThreadPool::global();
  return pool != nullptr && pool->size() > 1 ? pool : nullptr;
}

void Device::begin_capture() {
  publish_metrics();
  timeline_.clear();
  report_.clear();
  phases_.clear();
  pool_at_capture_ = BufferPool::global().stats();
}

CaptureProfile Device::end_capture() {
  publish_metrics();
  return collect_profile(*this);
}

double Device::elapsed_model_ms() { return timeline_.simulate() * 1e3; }

void Device::finish_launch(const LaunchCfg& cfg, double flops) {
  submit_kernel_item(cfg, flops, accum_.scaled_totals(),
                     accum_.max_atomic_conflict());
}

void Device::finish_replay(const LaunchCfg& cfg, double flops,
                           const LaunchRecord& rec) {
  submit_kernel_item(cfg, flops, rec.totals, rec.max_atomic_conflict);
}

LaunchRecord Device::record_from_accum() {
  LaunchRecord rec;
  rec.totals = accum_.scaled_totals();
  rec.max_atomic_conflict = accum_.max_atomic_conflict();
  return rec;
}

void Device::verify_replay_record(const LaunchCfg& cfg,
                                  const LaunchRecord& rec) {
  const WarpTotals t = accum_.scaled_totals();
  const bool ok = t.coalesced_tx == rec.totals.coalesced_tx &&
                  t.random_tx == rec.totals.random_tx &&
                  t.useful_bytes == rec.totals.useful_bytes &&
                  t.atomic_ops == rec.totals.atomic_ops &&
                  t.shared_accesses == rec.totals.shared_accesses &&
                  accum_.max_atomic_conflict() == rec.max_atomic_conflict;
  if (!ok)
    throw std::runtime_error(
        std::string("cusim graph verify: counters diverged from captured "
                    "record for kernel '") +
        cfg.name +
        "' — the launch was marked cacheable but its access pattern is not "
        "determined by (name, graph_key, shape)");
}

void Device::submit_kernel_item(const LaunchCfg& cfg, double flops,
                                const WarpTotals& t, double max_conflict) {
  perfmodel::KernelCounters c;
  c.name = cfg.name;
  c.blocks = static_cast<double>(cfg.blocks);
  c.threads = static_cast<double>(cfg.blocks) * cfg.threads_per_block;
  c.warps = c.blocks * std::ceil(static_cast<double>(cfg.threads_per_block) /
                                 spec().warp_size);
  c.coalesced_transactions = t.coalesced_tx;
  c.random_transactions = t.random_tx;
  c.bytes_useful = t.useful_bytes;
  c.flops = flops;
  c.atomic_ops = t.atomic_ops;
  c.max_atomic_conflict = max_conflict;
  c.shared_accesses = t.shared_accesses;

  const perfmodel::KernelCost cost = model_.kernel_cost(c);
  TimelineItem item;
  item.name = cfg.name;
  item.stream = cfg.stream;
  item.resource = Resource::kDeviceMemory;
  item.mem_s = cost.mem_s;
  item.compute_s = cost.compute_s + cost.atomic_s + cost.overhead_s;
  item.mem_bytes = cost.mem_bytes;
  item.useful_bytes = c.bytes_useful;
  item.transactions = c.coalesced_transactions + c.random_transactions;
  item.atomic_conflict = c.max_atomic_conflict;
  timeline_.submit(std::move(item));

  KernelReport& r = report_[cfg.name];
  ++r.launches;
  r.counters.name = cfg.name;
  r.counters.blocks += c.blocks;
  r.counters.threads += c.threads;
  r.counters.warps += c.warps;
  r.counters.coalesced_transactions += c.coalesced_transactions;
  r.counters.random_transactions += c.random_transactions;
  r.counters.bytes_useful += c.bytes_useful;
  r.counters.flops += c.flops;
  r.counters.atomic_ops += c.atomic_ops;
  r.counters.max_atomic_conflict =
      std::max(r.counters.max_atomic_conflict, c.max_atomic_conflict);
  r.counters.shared_accesses += c.shared_accesses;
  r.solo_s += cost.total_s;
}

void Device::submit_copy(const char* name, double bytes, StreamId s) {
  TimelineItem item;
  item.name = name;
  item.stream = s;
  item.resource = Resource::kPcie;
  // Latency is part of the wire time: duration = latency + bytes/bw.
  item.mem_s = spec().pcie_latency_s + bytes / spec().pcie_bandwidth_Bps;
  item.compute_s = 0.0;
  item.mem_bytes = bytes;
  item.useful_bytes = bytes;
  timeline_.submit(std::move(item));

  KernelReport& r = report_[name];
  ++r.launches;
  r.counters.bytes_useful += bytes;
  r.solo_s += item.mem_s;
}

}  // namespace cusfft::cusim
