// Structured capture observability: turns one measured region of a Device
// (everything between begin_capture() and end_capture()) into a
// machine-readable CaptureProfile — the evidence behind every figure the
// benches regenerate (Fig. 2 profile breakdown, Fig. 4 stream overlap,
// Table II counters), exportable instead of trapped in printed tables.
//
// Three serializations, all deterministic (identical captures produce
// byte-identical output):
//   chrome_trace_json() — a chrome://tracing / Perfetto document: one track
//       per stream plus a PCIe track, every kernel/copy as a duration
//       event carrying transactions, useful bytes, achieved-bandwidth %,
//       and atomic-conflict depth in its args; phase annotations as a
//       separate track; the structured profile embedded under the
//       top-level "profile" key (trace viewers ignore unknown keys).
//   to_json()           — just the structured profile object.
//   to_table()          — ResultTable for the existing CSV path. Row order:
//       one `capture` row, `phase` rows in annotation order, `kernel` rows
//       in lexicographic name order, `pool` rows in a fixed order. Cells
//       that do not apply hold "-".
//
// See docs/PROFILING.md for the schema and a worked chrome://tracing
// example.
#pragma once

#include <string>
#include <vector>

#include "core/table.hpp"
#include "cusim/device.hpp"
#include "cusim/pool.hpp"

namespace cusfft::cusim {

/// One named phase of the capture (from Device::annotate_phase): spans
/// from its annotation's event time to the next annotation in the same
/// scope — device-wide, or the same stream for scoped annotations — or to
/// its explicit close event / the makespan. Scoped phases (pipelined
/// batches) render on one trace track per stream so overlapping signals
/// stay readable.
struct PhaseSpan {
  std::string name;
  StreamId stream = 0;
  unsigned device = 0;  // lane index for fleet captures (0 single-device)
  bool scoped = false;
  double start_ms = 0;
  double end_ms = 0;
  double span_ms() const { return end_ms - start_ms; }
};

/// One scheduled timeline item (kernel launch or PCIe copy) with its
/// schedule and the telemetry the trace export renders as event args.
struct TraceSpan {
  std::string name;
  StreamId stream = 0;
  unsigned device = 0;  // lane index for fleet captures (0 single-device)
  bool pcie = false;  // PCIe copy (its own track) vs device kernel
  /// Modeled NIC transfer (cluster captures only): renders on the
  /// destination node's "NIC" track with cat "nic"; never set for
  /// single-node captures, so their serialization is unchanged.
  bool nic = false;
  double start_ms = 0;
  double end_ms = 0;
  double mem_bytes = 0;        // bytes that crossed this item's resource
  double useful_bytes = 0;     // bytes the program asked for
  double transactions = 0;     // 128B segments (coalesced + random)
  double atomic_conflict = 0;  // deepest same-address atomic chain
  double achieved_bw_frac = 0;  // (mem_bytes/duration) / resource peak
};

/// Per-kernel-name aggregation with derived metrics.
struct KernelProfile {
  std::string name;
  std::size_t launches = 0;
  perfmodel::KernelCounters counters;  // summed over launches
  double solo_ms = 0;                  // summed isolated durations
  double coalesced_frac = 0;   // coalesced_tx / (coalesced_tx + random_tx)
  double achieved_bw_frac = 0;  // transaction bytes / solo time / peak BW
};

/// One device of a fleet capture (DeviceGroup::end_capture). Lane index
/// == chrome-trace pid == TraceSpan/PhaseSpan::device.
struct DeviceLane {
  std::string name;        // GpuSpec name
  double model_ms = 0;     // this device's finish on the shared clock
  double busy_ms = 0;      // summed kernel spans (merged schedule)
  double utilization = 0;  // model_ms / fleet makespan
  double occupancy_frac = 0;   // busy / model_ms / kernel window
  double pcie_stall_ms = 0;    // host-link contention dilation
  unsigned max_concurrent_kernels = 0;
};

/// One node of a cluster capture (Cluster::end_capture). Device lanes
/// flatten node-major, so a node owns the contiguous pid range
/// [first_lane, first_lane + lane_count).
struct NodeLane {
  std::string name;         // "n<m>"
  unsigned first_lane = 0;  // chrome-trace pid of the node's first device
  unsigned lane_count = 0;  // devices on this node
  double model_ms = 0;      // node finish on the cluster clock
  double offset_ms = 0;     // compute start (first ingress arrival)
  double nic_bytes = 0;     // bytes destined to this node over the NIC
  double nic_ms = 0;        // summed NIC transfer spans destined here
  double nic_stall_ms = 0;  // fabric-contention dilation
  double nic_queue_ms = 0;  // port-FIFO wait
};

/// Everything observable about one capture region.
struct CaptureProfile {
  std::string device;  // GpuSpec name
  double model_ms = 0;  // makespan
  double mem_bw_Bps = 0;   // spec peaks, for de-normalizing the fractions
  double pcie_bw_Bps = 0;
  unsigned max_concurrent_kernels = 0;
  /// Time-averaged number of in-flight device kernels over the makespan,
  /// divided by the concurrent-kernel window (32 on GK110) — the modeled
  /// occupancy of the Hyper-Q window.
  double occupancy_frac = 0;

  std::vector<TraceSpan> spans;       // submission order (grouped by device)
  std::vector<PhaseSpan> phases;      // annotation order (grouped by device)
  std::vector<KernelProfile> kernels; // lexicographic by name (fleet-summed)

  /// Fleet captures only: one lane per device, in device order. Empty for
  /// a single-Device capture — every serialization stays byte-identical
  /// to the pre-fleet format when this is empty. When non-empty the
  /// chrome trace renders one track group (pid) per lane on a shared
  /// time origin, and to_json() gains a "devices" array.
  std::vector<DeviceLane> lanes;

  /// Cluster captures only (M > 1): one lane per node, in node order.
  /// Empty for single-node and single-device captures — every
  /// serialization stays byte-identical to the fleet format when this is
  /// empty. When non-empty, to_json() gains "nic" + "nodes" entries and
  /// the chrome trace names its pids "cusim n<m> dev<local> <spec>" with
  /// a per-node NIC track.
  std::vector<NodeLane> nodes;
  double nic_bw_Bps = 0;    // cluster captures only
  double nic_latency_s = 0;  // cluster captures only

  /// PcieStaging policy name the merged schedule ran under (fleet
  /// captures only; empty — and never serialized — for a single-Device
  /// capture). Serialized next to "devices", and thereby visible in the
  /// chrome trace's embedded "profile" object.
  std::string staging;

  /// BufferPool::global() stats at begin_capture() and at collection;
  /// pool_delta() is what "no allocations after warm-up" asserts on.
  /// Serialization (to_json/to_table) carries only the delta — the
  /// absolute snapshots are process-lifetime counters and would break
  /// byte-identical output for identical captures.
  BufferPool::Stats pool_begin, pool_end;
  BufferPool::Stats pool_delta() const { return pool_end.since(pool_begin); }

  std::string to_json() const;
  std::string chrome_trace_json() const;
  ResultTable to_table() const;

  /// Writes chrome_trace_json() to `path`; returns success.
  bool write(const std::string& path) const;
};

/// Simulates the device's current capture region and assembles its profile
/// (also available as Device::end_capture()).
CaptureProfile collect_profile(Device& dev);

class DeviceGroup;  // device_group.hpp

/// Merged fleet profile: replays all device timelines on the shared clock
/// (DeviceGroup::simulate) and assembles one profile with a lane per
/// device (also available as DeviceGroup::end_capture()).
CaptureProfile collect_profile(DeviceGroup& group);

class Cluster;  // cluster.hpp

/// Merged cluster profile: node-major flattened device lanes on the
/// cluster clock plus per-node NodeLanes and NIC transfer spans. At
/// M == 1 this delegates to collect_profile(DeviceGroup&), so the
/// degenerate cluster's artifacts are byte-identical to the fleet's
/// (also available as Cluster::end_capture()).
CaptureProfile collect_profile(Cluster& cluster);

}  // namespace cusfft::cusim
