// A cluster of simulated hosts. Each node wraps one DeviceGroup (its own
// devices behind its own PCIe root complex); the nodes are joined by a
// modeled NIC fabric with bandwidth, per-message latency, and contention
// that are distinct from PCIe — a copy crossing the cluster pays the NIC
// first and the destination node's PCIe second.
//
// The NIC model is deliberately simple and fully deterministic:
//   - every node owns one full-duplex NIC port; transfers destined to a
//     node drain through that port in record (FIFO) order, one at a time —
//     time a ready transfer spends parked behind the port is "queue";
//   - transfers active on different ports at the same instant split the
//     shared fabric bandwidth equally — the dilation versus an uncontended
//     transfer (latency_s + bytes/bandwidth_Bps) is "stall";
//   - per-message latency is paid serially at the head of each transfer
//     and does not contend.
//
// Cluster::simulate() composes the per-node merged schedules
// (DeviceGroup::simulate) with the NIC schedule on one cluster clock:
// a node's compute is offset by the arrival of its *first* ingress
// transfer (later ingress overlaps compute — the staging pipeline is
// assumed deep enough), and an exchange barrier (slab gathers) can hold a
// node's tail items until every exchange destined to it has landed. At
// M = 1 there are no NIC transfers and the cluster schedule is
// bit-identical to DeviceGroup::simulate(), so single-node numbers — and
// every serialized artifact — degrade exactly to the fleet ones.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "cusim/device_group.hpp"

namespace cusfft::cusim {

struct CaptureProfile;  // profiler.hpp

/// Modeled NIC fabric parameters. Defaults are a ~100 Gbit/s link with a
/// few microseconds of per-message overhead — an order of magnitude below
/// the K20x's PCIe gen2 link in latency cost, above it in bandwidth, so
/// node sharding pays a visible but not absurd staging tax.
struct NicModel {
  double bandwidth_Bps = 12.5e9;  // ~100 Gbit/s Ethernet/IB
  double latency_s = 5e-6;        // per-message, paid serially per transfer

  static NicModel FromGbps(double gbps) {
    NicModel m;
    m.bandwidth_Bps = gbps * 1e9 / 8.0;
    return m;
  }
};

/// One modeled NIC transfer on the cluster clock.
struct NicSpan {
  std::string name;
  unsigned node = 0;   ///< destination node (owns the port FIFO)
  int src_node = -1;   ///< source node; -1 = host/frontend ingress
  double bytes = 0;
  double ready_s = 0;  ///< when the payload exists (0 for ingress)
  double start_s = 0;  ///< admission through the destination port
  double finish_s = 0;
  double solo_s = 0;   ///< latency_s + bytes/bandwidth, uncontended
};

/// Everything simulate() derives, on one shared cluster clock (t = 0 at
/// begin_capture). Index-aligned with the cluster's nodes.
struct ClusterSchedule {
  double makespan_s = 0;  ///< cluster finish: max node finish / NIC finish

  /// Per node: that node's merged device schedule *shifted onto the
  /// cluster clock* (ingress offset + any exchange-barrier hold applied).
  /// Item vectors stay index-aligned with each device's timeline items,
  /// so event lookups against them still work. At M = 1 this is exactly
  /// the node's FleetSchedule.
  std::vector<FleetSchedule> node_fleet;
  std::vector<double> node_offset_s;  ///< compute start (first ingress)
  std::vector<double> node_finish_s;  ///< last device finish, cluster clock

  std::vector<NicSpan> nic;           ///< record order
  std::vector<double> nic_stall_s;    ///< per node: fabric-contention dilation
  std::vector<double> nic_queue_s;    ///< per node: port-FIFO wait
  double nic_bytes = 0;               ///< total bytes crossing the fabric
};

class Cluster {
 public:
  /// M homogeneous nodes of `devices_per_node` devices each.
  Cluster(std::size_t nodes, std::size_t devices_per_node,
          perfmodel::GpuSpec spec = perfmodel::GpuSpec::k20x());
  /// Heterogeneous: one DeviceGroup per spec list.
  explicit Cluster(std::vector<std::vector<perfmodel::GpuSpec>> specs);

  std::size_t nodes() const { return groups_.size(); }
  /// Total devices across all nodes.
  std::size_t devices() const;
  DeviceGroup& node(std::size_t m) { return *groups_[m]; }
  const DeviceGroup& node(std::size_t m) const { return *groups_[m]; }

  const NicModel& nic() const { return nic_; }
  void set_nic(NicModel m) { nic_ = m; }

  /// Forwards the PCIe admission policy to every node's root complex.
  void set_staging(PcieStaging s);
  const PcieStaging& staging() const { return groups_.front()->staging(); }

  /// Fresh measured region on every node (shared t = 0); clears recorded
  /// NIC transfers and barriers.
  void begin_capture();

  /// Records a host -> `node` ingress transfer (batch staging). Ready at
  /// t = 0; the node's compute offset is its *first* ingress's arrival.
  void add_ingress(unsigned node, std::string name, double bytes);

  /// Records a `src_node` -> `dst_node` exchange (slab gather). Ready when
  /// the source node's compute finishes on the cluster clock.
  void add_exchange(unsigned src_node, unsigned dst_node, std::string name,
                    double bytes);

  /// Marks the exchange barrier on `node`: device items submitted after
  /// this call may not start before every exchange destined to `node` has
  /// arrived. Call between the producer submissions and the consumer
  /// submissions (with a device sync_point in between on that node).
  void mark_exchange_barrier(unsigned node);

  /// Merged cluster schedule (see file comment). Recomputes each call;
  /// rethrows DeviceGroup::simulate's deadlock error.
  ClusterSchedule simulate();

  /// Merged observability record. At nodes() == 1 this is byte-identical
  /// to DeviceGroup::end_capture() — same lanes, same serializations. For
  /// M > 1 lanes flatten node-major (lane == chrome-trace pid) and the
  /// profile gains node track groups plus NIC spans.
  CaptureProfile end_capture();

  /// BufferPool::global() stats at the last begin_capture().
  const BufferPool::Stats& pool_stats_at_capture() const {
    return groups_.front()->pool_stats_at_capture();
  }

 private:
  friend CaptureProfile collect_profile(Cluster& cluster);

  struct Transfer {
    std::string name;
    unsigned dst = 0;
    int src = -1;  // -1 = host ingress
    double bytes = 0;
  };
  struct Barrier {
    unsigned node = 0;
    // Per device of `node`: timeline item count when the barrier was
    // marked — items at index >= count are held for the exchanges.
    std::vector<std::size_t> item_count;
  };

  std::vector<std::unique_ptr<DeviceGroup>> groups_;
  NicModel nic_;
  std::vector<Transfer> transfers_;
  std::vector<Barrier> barriers_;
};

}  // namespace cusfft::cusim
