// Warp-level memory tracing. While a kernel executes functionally, sampled
// warps record every global access; finalize() groups the accesses of the
// 32 lanes by instruction slot and counts 128-byte segment transactions —
// the coalescing rule of Section IV.B ("the k-th thread accesses the k-th
// word in a cache line").
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "cusim/arena.hpp"

namespace cusfft::cusim {

/// Totals extracted from one traced warp.
struct WarpTotals {
  double coalesced_tx = 0;  // transactions from dense (near-minimal) slots
  double random_tx = 0;     // transactions from scattered slots
  double useful_bytes = 0;
  double atomic_ops = 0;
  double shared_accesses = 0;
};

class WarpTracer {
 public:
  /// `arena` backs the access records until the next reset; it must outlive
  /// the tracer's use and is recycled by the owning KernelAccum per launch.
  void reset(std::size_t transaction_bytes, LaunchArena* arena);

  /// Empties the record list for the next traced warp, keeping all storage
  /// (same arena generation) — the per-warp cycle allocates nothing once
  /// the capacity high-water mark is reached.
  void clear();

  /// Records one lane's access. `slot` is the lane-local sequence number of
  /// the access; the i-th access of every lane is treated as one warp-wide
  /// instruction (exact for non-divergent kernels).
  void on_access(u32 slot, u64 addr, u32 bytes, bool atomic);

  void on_shared(double count) { shared_ += count; }

  /// Groups slots into transactions and classifies them. A slot whose
  /// transaction count is within 2x of the minimum possible for its byte
  /// volume counts as coalesced; otherwise random. Grouping is a counting
  /// sort by slot (lane order preserved within a slot — the same order a
  /// stable sort of the record list produces), so one warp finalizes in
  /// O(accesses) with no heap traffic.
  WarpTotals finalize();

 private:
  struct Access {
    u32 slot;
    u64 addr;
    u32 bytes;
    bool atomic;
  };
  ArenaVec<Access> accesses_;
  // finalize() scratch, capacity reused across warps (see clear()).
  ArenaVec<Access> sorted_;
  ArenaVec<u32> counts_;
  ArenaVec<u64> segs_;
  u32 max_slot_ = 0;
  double shared_ = 0;
  std::size_t tx_bytes_ = 128;
};

/// Whole-kernel accumulation across traced warps plus the kernel-wide
/// atomic-conflict map (deepest same-address chain).
///
/// Traced warps are kept as per-warp records keyed by their grid-wide warp
/// index instead of a running sum. The block-parallel launch path gives each
/// pool worker its own KernelAccum, absorb()s them after the grid drains,
/// and scaled_totals() folds the records in ascending warp-index order — the
/// exact summation order of a sequential sweep, so parallel and sequential
/// launches produce bit-identical counters.
///
/// All per-launch records (trace accesses, per-warp totals) live on the
/// accumulator's LaunchArena; reset() recycles it, so a warm capture's
/// launches allocate nothing.
class KernelAccum {
 public:
  void reset(std::size_t transaction_bytes, u64 sample_stride);

  WarpTracer& tracer() { return tracer_; }
  u64 sample_stride() const { return stride_; }
  LaunchArena& arena() { return arena_; }

  /// Finalizes the tracer into the record for grid-wide warp `warp_index`.
  void fold_warp(u64 warp_index);

  /// Records an atomic on `addr` from a traced warp (conflict accounting).
  void on_atomic_addr(u64 addr);

  /// Moves another accumulator's traced warps and atomic-conflict counts
  /// into this one (used to merge per-worker accumulators; `other` is left
  /// empty). Per-address conflict counts add, so the merge is independent of
  /// worker interleaving.
  void absorb(KernelAccum& other);

  /// Extrapolated whole-kernel counters (multiplies by the sample stride),
  /// folded in warp-index order.
  WarpTotals scaled_totals();
  double max_atomic_conflict() const;

 private:
  struct WarpRecord {
    u64 index;
    WarpTotals totals;
  };
  LaunchArena arena_;
  WarpTracer tracer_;
  ArenaVec<WarpRecord> warps_;
  std::unordered_map<u64, u32> atomic_conflicts_;
  u64 stride_ = 1;
};

}  // namespace cusfft::cusim
