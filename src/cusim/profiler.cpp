#include "cusim/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "cusim/cluster.hpp"
#include "cusim/device_group.hpp"

namespace cusfft::cusim {

namespace {

/// Deterministic JSON number: fixed %.12g, non-finite values clamp to 0
/// (JSON has no inf/nan; the model never produces them in practice).
std::string jnum(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void append_pool_stats(std::ostringstream& os, const BufferPool::Stats& s) {
  os << "{\"allocations\":" << s.allocations << ",\"reuses\":" << s.reuses
     << ",\"bytes_allocated\":" << s.bytes_allocated
     << ",\"bytes_pooled\":" << s.bytes_pooled << "}";
}

/// The trace's thread ids: one per stream, then one synthetic PCIe track,
/// the device-wide phase track, and one phase track per stream carrying
/// scoped annotations (pipelined batches).
constexpr int kPcieTid = 1000000;
constexpr int kPhaseTid = 1000001;
constexpr int kNicTid = 1000002;

int tid_of(const TraceSpan& s) {
  if (s.nic) return kNicTid;
  return s.pcie ? kPcieTid : static_cast<int>(s.stream);
}

int tid_of(const PhaseSpan& ph) {
  return ph.scoped ? kPhaseTid + 1 + static_cast<int>(ph.stream) : kPhaseTid;
}

/// Appends one device's timeline items as trace spans under the given
/// schedule (the device's own, or its rows of a merged fleet schedule).
/// Returns the device's summed kernel-span milliseconds.
double append_spans(CaptureProfile& p, const Timeline& tl,
                    const std::vector<ItemSchedule>& sched,
                    unsigned dev_index, double mem_bw_Bps,
                    double pcie_bw_Bps) {
  const auto& items = tl.items();
  p.spans.reserve(p.spans.size() + items.size());
  double device_busy_ms = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    TraceSpan s;
    s.name = items[i].name;
    s.stream = items[i].stream;
    s.device = dev_index;
    s.pcie = items[i].resource == Resource::kPcie;
    s.start_ms = sched[i].start_s * 1e3;
    s.end_ms = sched[i].finish_s * 1e3;
    s.mem_bytes = items[i].mem_bytes;
    s.useful_bytes = items[i].useful_bytes;
    s.transactions = items[i].transactions;
    s.atomic_conflict = items[i].atomic_conflict;
    const double dur_s = sched[i].finish_s - sched[i].start_s;
    const double peak = s.pcie ? pcie_bw_Bps : mem_bw_Bps;
    if (dur_s > 0 && peak > 0)
      s.achieved_bw_frac = s.mem_bytes / dur_s / peak;
    if (!s.pcie) device_busy_ms += s.end_ms - s.start_ms;
    p.spans.push_back(std::move(s));
  }
  return device_busy_ms;
}

/// Appends one device's phase spans: each annotation opens a phase that
/// its explicit close event, the next annotation in the same scope
/// (device-wide, or the same stream for scoped annotations), or
/// `end_default_ms` closes — exactly GpuExecStats/GpuSignalStats::
/// phase_span_ms's arithmetic.
void append_phases(CaptureProfile& p, const Device& dev,
                   const std::vector<ItemSchedule>& sched,
                   unsigned dev_index, double end_default_ms) {
  const Timeline& tl = dev.timeline();
  const auto& anns = dev.phase_annotations();
  p.phases.reserve(p.phases.size() + anns.size());
  for (std::size_t i = 0; i < anns.size(); ++i) {
    PhaseSpan ph;
    ph.name = anns[i].name;
    ph.stream = anns[i].stream;
    ph.device = dev_index;
    ph.scoped = anns[i].scoped;
    ph.start_ms = tl.event_time_s(anns[i].event_id, sched) * 1e3;
    ph.end_ms = end_default_ms;
    if (anns[i].end_event >= 0) {
      ph.end_ms = tl.event_time_s(
                      static_cast<std::size_t>(anns[i].end_event), sched) *
                  1e3;
    } else {
      for (std::size_t j = i + 1; j < anns.size(); ++j)
        if (anns[j].scoped == anns[i].scoped &&
            (!anns[i].scoped || anns[j].stream == anns[i].stream)) {
          ph.end_ms = tl.event_time_s(anns[j].event_id, sched) * 1e3;
          break;
        }
    }
    p.phases.push_back(std::move(ph));
  }
}

/// Folds a device's per-kernel report into a (possibly fleet-wide) merge.
void merge_report(std::map<std::string, KernelReport>& into,
                  const Device& dev) {
  for (const auto& [name, r] : dev.report()) {
    KernelReport& m = into[name];
    m.launches += r.launches;
    m.counters.name = name;
    m.counters.blocks += r.counters.blocks;
    m.counters.threads += r.counters.threads;
    m.counters.warps += r.counters.warps;
    m.counters.coalesced_transactions += r.counters.coalesced_transactions;
    m.counters.random_transactions += r.counters.random_transactions;
    m.counters.bytes_useful += r.counters.bytes_useful;
    m.counters.flops += r.counters.flops;
    m.counters.atomic_ops += r.counters.atomic_ops;
    m.counters.max_atomic_conflict = std::max(
        m.counters.max_atomic_conflict, r.counters.max_atomic_conflict);
    m.counters.shared_accesses += r.counters.shared_accesses;
    m.solo_s += r.solo_s;
  }
}

/// Builds the lexicographic kernels[] with derived metrics. Bandwidth
/// fractions normalize against the given peak (lane-0 spec for fleets).
void build_kernels(CaptureProfile& p,
                   const std::map<std::string, KernelReport>& merged,
                   double mem_transaction_bytes) {
  for (const auto& [name, r] : merged) {
    KernelProfile k;
    k.name = name;
    k.launches = r.launches;
    k.counters = r.counters;
    k.solo_ms = r.solo_s * 1e3;
    const double tx =
        r.counters.coalesced_transactions + r.counters.random_transactions;
    if (tx > 0) k.coalesced_frac = r.counters.coalesced_transactions / tx;
    if (r.solo_s > 0 && p.mem_bw_Bps > 0)
      k.achieved_bw_frac =
          tx * mem_transaction_bytes / r.solo_s / p.mem_bw_Bps;
    p.kernels.push_back(std::move(k));
  }
}

}  // namespace

CaptureProfile collect_profile(Device& dev) {
  CaptureProfile p;
  const perfmodel::GpuSpec& spec = dev.spec();
  p.device = spec.name;
  p.model_ms = dev.elapsed_model_ms();  // simulates (idempotent)
  p.mem_bw_Bps = spec.mem_bandwidth_Bps;
  p.pcie_bw_Bps = spec.pcie_bandwidth_Bps;
  p.max_concurrent_kernels = spec.max_concurrent_kernels;

  const Timeline& tl = dev.timeline();
  const double device_busy_ms = append_spans(
      p, tl, tl.schedule(), 0, p.mem_bw_Bps, p.pcie_bw_Bps);
  if (p.model_ms > 0 && p.max_concurrent_kernels > 0)
    p.occupancy_frac =
        device_busy_ms / p.model_ms / p.max_concurrent_kernels;

  append_phases(p, dev, tl.schedule(), 0, p.model_ms);

  std::map<std::string, KernelReport> merged;
  merge_report(merged, dev);
  build_kernels(p, merged,
                static_cast<double>(spec.mem_transaction_bytes));

  p.pool_begin = dev.pool_stats_at_capture();
  p.pool_end = BufferPool::global().stats();
  return p;
}

CaptureProfile collect_profile(DeviceGroup& group) {
  CaptureProfile p;
  const FleetSchedule fs = group.simulate();
  const perfmodel::GpuSpec& spec0 = group.device(0).spec();
  p.device = spec0.name;
  p.staging = group.staging().name();
  p.model_ms = fs.makespan_s * 1e3;
  p.mem_bw_Bps = spec0.mem_bandwidth_Bps;
  p.pcie_bw_Bps = spec0.pcie_bandwidth_Bps;
  p.max_concurrent_kernels = spec0.max_concurrent_kernels;

  std::map<std::string, KernelReport> merged;
  double total_busy_ms = 0, total_window = 0;
  for (std::size_t d = 0; d < group.size(); ++d) {
    Device& dev = group.device(d);
    const perfmodel::GpuSpec& spec = dev.spec();
    const double busy_ms =
        append_spans(p, dev.timeline(), fs.items[d],
                     static_cast<unsigned>(d), spec.mem_bandwidth_Bps,
                     spec.pcie_bandwidth_Bps);
    append_phases(p, dev, fs.items[d], static_cast<unsigned>(d),
                  p.model_ms);
    merge_report(merged, dev);

    DeviceLane lane;
    lane.name = spec.name;
    lane.model_ms = fs.finish_s[d] * 1e3;
    lane.busy_ms = busy_ms;
    lane.utilization = p.model_ms > 0 ? lane.model_ms / p.model_ms : 0.0;
    lane.pcie_stall_ms = fs.pcie_stall_s[d] * 1e3;
    lane.max_concurrent_kernels = spec.max_concurrent_kernels;
    if (lane.model_ms > 0 && lane.max_concurrent_kernels > 0)
      lane.occupancy_frac =
          busy_ms / lane.model_ms / lane.max_concurrent_kernels;
    p.lanes.push_back(std::move(lane));
    total_busy_ms += busy_ms;
    total_window += spec.max_concurrent_kernels;
  }
  if (p.model_ms > 0 && total_window > 0)
    p.occupancy_frac = total_busy_ms / p.model_ms / total_window;
  build_kernels(p, merged,
                static_cast<double>(spec0.mem_transaction_bytes));

  p.pool_begin = group.pool_stats_at_capture();
  p.pool_end = BufferPool::global().stats();
  return p;
}

CaptureProfile collect_profile(Cluster& cluster) {
  // The degenerate cluster is the fleet: same lanes, same serialization,
  // byte for byte.
  if (cluster.nodes() == 1) return collect_profile(cluster.node(0));

  CaptureProfile p;
  const ClusterSchedule cs = cluster.simulate();
  const perfmodel::GpuSpec& spec0 = cluster.node(0).device(0).spec();
  p.device = spec0.name;
  p.staging = cluster.staging().name();
  p.model_ms = cs.makespan_s * 1e3;
  p.mem_bw_Bps = spec0.mem_bandwidth_Bps;
  p.pcie_bw_Bps = spec0.pcie_bandwidth_Bps;
  p.max_concurrent_kernels = spec0.max_concurrent_kernels;
  p.nic_bw_Bps = cluster.nic().bandwidth_Bps;
  p.nic_latency_s = cluster.nic().latency_s;

  std::map<std::string, KernelReport> merged;
  double total_busy_ms = 0, total_window = 0;
  unsigned lane = 0;
  for (std::size_t m = 0; m < cluster.nodes(); ++m) {
    DeviceGroup& g = cluster.node(m);
    const FleetSchedule& f = cs.node_fleet[m];
    NodeLane nl;
    nl.name = "n" + std::to_string(m);
    nl.first_lane = lane;
    nl.lane_count = static_cast<unsigned>(g.size());
    nl.model_ms = cs.node_finish_s[m] * 1e3;
    nl.offset_ms = cs.node_offset_s[m] * 1e3;
    nl.nic_stall_ms = cs.nic_stall_s[m] * 1e3;
    nl.nic_queue_ms = cs.nic_queue_s[m] * 1e3;
    for (std::size_t d = 0; d < g.size(); ++d) {
      Device& dev = g.device(d);
      const perfmodel::GpuSpec& spec = dev.spec();
      const double busy_ms =
          append_spans(p, dev.timeline(), f.items[d], lane,
                       spec.mem_bandwidth_Bps, spec.pcie_bandwidth_Bps);
      append_phases(p, dev, f.items[d], lane, p.model_ms);
      merge_report(merged, dev);

      DeviceLane dl;
      dl.name = spec.name;
      dl.model_ms = f.finish_s[d] * 1e3;
      dl.busy_ms = busy_ms;
      dl.utilization = p.model_ms > 0 ? dl.model_ms / p.model_ms : 0.0;
      dl.pcie_stall_ms = f.pcie_stall_s[d] * 1e3;
      dl.max_concurrent_kernels = spec.max_concurrent_kernels;
      if (dl.model_ms > 0 && dl.max_concurrent_kernels > 0)
        dl.occupancy_frac =
            busy_ms / dl.model_ms / dl.max_concurrent_kernels;
      p.lanes.push_back(std::move(dl));
      total_busy_ms += busy_ms;
      total_window += spec.max_concurrent_kernels;
      ++lane;
    }
    p.nodes.push_back(std::move(nl));
  }
  if (p.model_ms > 0 && total_window > 0)
    p.occupancy_frac = total_busy_ms / p.model_ms / total_window;

  // Modeled NIC transfers render on the destination node's first device
  // lane under the "NIC" track (cat "nic"), so the cross-node staging and
  // gather traffic is visible next to the compute it feeds.
  for (const NicSpan& s : cs.nic) {
    TraceSpan ts;
    ts.name = s.name;
    ts.nic = true;
    ts.device = p.nodes[s.node].first_lane;
    ts.start_ms = s.start_s * 1e3;
    ts.end_ms = s.finish_s * 1e3;
    ts.mem_bytes = s.bytes;
    ts.useful_bytes = s.bytes;
    const double dur_s = s.finish_s - s.start_s;
    if (dur_s > 0 && p.nic_bw_Bps > 0)
      ts.achieved_bw_frac = s.bytes / dur_s / p.nic_bw_Bps;
    p.nodes[s.node].nic_bytes += s.bytes;
    p.nodes[s.node].nic_ms += dur_s * 1e3;
    p.spans.push_back(std::move(ts));
  }

  build_kernels(p, merged,
                static_cast<double>(spec0.mem_transaction_bytes));
  p.pool_begin = cluster.pool_stats_at_capture();
  p.pool_end = BufferPool::global().stats();
  return p;
}

std::string CaptureProfile::to_json() const {
  std::ostringstream os;
  os << "{\"device\":" << jstr(device)
     << ",\"model_ms\":" << jnum(model_ms)
     << ",\"mem_bw_Bps\":" << jnum(mem_bw_Bps)
     << ",\"pcie_bw_Bps\":" << jnum(pcie_bw_Bps)
     << ",\"max_concurrent_kernels\":" << max_concurrent_kernels
     << ",\"occupancy_frac\":" << jnum(occupancy_frac);

  // Fleet captures only: the staging policy the merged schedule ran
  // under, plus one entry per device lane (index == trace pid). Absent
  // for single-device captures so their serialization is unchanged.
  if (!lanes.empty()) {
    os << ",\"staging\":" << jstr(staging);
    os << ",\"devices\":[";
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      const DeviceLane& l = lanes[i];
      os << (i ? "," : "") << "{\"name\":" << jstr(l.name)
         << ",\"model_ms\":" << jnum(l.model_ms)
         << ",\"busy_ms\":" << jnum(l.busy_ms)
         << ",\"utilization\":" << jnum(l.utilization)
         << ",\"occupancy_frac\":" << jnum(l.occupancy_frac)
         << ",\"pcie_stall_ms\":" << jnum(l.pcie_stall_ms)
         << ",\"max_concurrent_kernels\":" << l.max_concurrent_kernels
         << "}";
    }
    os << "]";
  }

  // Cluster captures only (M > 1): the NIC model and one entry per node
  // lane. Absent for fleet/single-device captures so their serialization
  // is unchanged.
  if (!nodes.empty()) {
    os << ",\"nic\":{\"bandwidth_Bps\":" << jnum(nic_bw_Bps)
       << ",\"latency_s\":" << jnum(nic_latency_s) << "}";
    os << ",\"nodes\":[";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const NodeLane& n = nodes[i];
      os << (i ? "," : "") << "{\"name\":" << jstr(n.name)
         << ",\"first_device\":" << n.first_lane
         << ",\"devices\":" << n.lane_count
         << ",\"model_ms\":" << jnum(n.model_ms)
         << ",\"offset_ms\":" << jnum(n.offset_ms)
         << ",\"nic_bytes\":" << jnum(n.nic_bytes)
         << ",\"nic_ms\":" << jnum(n.nic_ms)
         << ",\"nic_stall_ms\":" << jnum(n.nic_stall_ms)
         << ",\"nic_queue_ms\":" << jnum(n.nic_queue_ms) << "}";
    }
    os << "]";
  }

  os << ",\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseSpan& ph = phases[i];
    os << (i ? "," : "") << "{\"name\":" << jstr(ph.name)
       << ",\"start_ms\":" << jnum(ph.start_ms)
       << ",\"end_ms\":" << jnum(ph.end_ms)
       << ",\"span_ms\":" << jnum(ph.span_ms()) << "}";
  }
  os << "]";

  os << ",\"kernels\":[";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelProfile& k = kernels[i];
    os << (i ? "," : "") << "{\"name\":" << jstr(k.name)
       << ",\"launches\":" << k.launches
       << ",\"solo_ms\":" << jnum(k.solo_ms)
       << ",\"coalesced_tx\":" << jnum(k.counters.coalesced_transactions)
       << ",\"random_tx\":" << jnum(k.counters.random_transactions)
       << ",\"useful_bytes\":" << jnum(k.counters.bytes_useful)
       << ",\"flops\":" << jnum(k.counters.flops)
       << ",\"atomics\":" << jnum(k.counters.atomic_ops)
       << ",\"max_conflict\":" << jnum(k.counters.max_atomic_conflict)
       << ",\"shared_accesses\":" << jnum(k.counters.shared_accesses)
       << ",\"coalesced_frac\":" << jnum(k.coalesced_frac)
       << ",\"achieved_bw_frac\":" << jnum(k.achieved_bw_frac) << "}";
  }
  os << "]";

  // Only the capture-scoped delta is serialized: the absolute begin/end
  // snapshots count process-lifetime pool activity, which would make two
  // otherwise-identical captures serialize differently.
  os << ",\"pool\":";
  append_pool_stats(os, pool_delta());
  os << "}";
  return os.str();
}

std::string CaptureProfile::chrome_trace_json() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };

  // Track metadata, one process (pid) per device lane — a single-device
  // capture has no lanes and emits exactly the historical pid-0 layout.
  // Per pid: process name, one thread per stream seen, the PCIe track,
  // then the phase tracks. Streams sorted for determinism.
  const std::size_t npids = lanes.empty() ? 1 : lanes.size();
  // Cluster captures name each pid by its node + node-local device, and
  // the node's first lane additionally carries the NIC track.
  auto node_of = [&](std::size_t pid) -> const NodeLane* {
    for (const NodeLane& n : nodes)
      if (pid >= n.first_lane && pid < n.first_lane + n.lane_count)
        return &n;
    return nullptr;
  };
  for (std::size_t pid = 0; pid < npids; ++pid) {
    sep();
    std::string pname;
    if (lanes.empty()) {
      pname = "cusim " + device;
    } else if (const NodeLane* n = node_of(pid)) {
      pname = "cusim " + n->name + " dev" +
              std::to_string(pid - n->first_lane) + " " + lanes[pid].name;
    } else {
      pname = "cusim dev" + std::to_string(pid) + " " + lanes[pid].name;
    }
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":" << jstr(pname) << "}}";
    std::vector<int> tids;
    for (const TraceSpan& s : spans)
      if (!s.pcie && !s.nic && s.device == pid)
        tids.push_back(static_cast<int>(s.stream));
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    for (const int t : tids) {
      sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":" << t
         << ",\"args\":{\"name\":" << jstr("stream " + std::to_string(t))
         << "}}";
    }
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":" << kPcieTid << ",\"args\":{\"name\":\"PCIe\"}}";
    if (const NodeLane* n = node_of(pid); n && n->first_lane == pid) {
      sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":" << kNicTid << ",\"args\":{\"name\":\"NIC\"}}";
    }
    bool any_plain_phase = false;
    std::vector<int> scoped_phase_tids;
    for (const PhaseSpan& ph : phases) {
      if (ph.device != pid) continue;
      if (ph.scoped)
        scoped_phase_tids.push_back(tid_of(ph));
      else
        any_plain_phase = true;
    }
    std::sort(scoped_phase_tids.begin(), scoped_phase_tids.end());
    scoped_phase_tids.erase(
        std::unique(scoped_phase_tids.begin(), scoped_phase_tids.end()),
        scoped_phase_tids.end());
    if (any_plain_phase) {
      sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":" << kPhaseTid << ",\"args\":{\"name\":\"phases\"}}";
    }
    for (const int t : scoped_phase_tids) {
      sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":" << t << ",\"args\":{\"name\":"
         << jstr("phases s" + std::to_string(t - kPhaseTid - 1)) << "}}";
    }
  }

  // Duration events, microsecond timestamps (the trace format's unit);
  // pid is the owning device lane (0 single-device).
  for (const TraceSpan& s : spans) {
    sep();
    os << "{\"name\":" << jstr(s.name) << ",\"cat\":"
       << (s.nic ? "\"nic\"" : s.pcie ? "\"copy\"" : "\"kernel\"")
       << ",\"ph\":\"X\",\"pid\":" << s.device
       << ",\"tid\":" << tid_of(s)
       << ",\"ts\":" << jnum(s.start_ms * 1e3)
       << ",\"dur\":" << jnum((s.end_ms - s.start_ms) * 1e3)
       << ",\"args\":{\"stream\":" << s.stream
       << ",\"transactions\":" << jnum(s.transactions)
       << ",\"useful_bytes\":" << jnum(s.useful_bytes)
       << ",\"mem_bytes\":" << jnum(s.mem_bytes)
       << ",\"achieved_bw_pct\":" << jnum(s.achieved_bw_frac * 100.0)
       << ",\"atomic_conflict\":" << jnum(s.atomic_conflict) << "}}";
  }
  for (const PhaseSpan& ph : phases) {
    sep();
    os << "{\"name\":" << jstr(ph.name)
       << ",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":" << ph.device
       << ",\"tid\":" << tid_of(ph)
       << ",\"ts\":" << jnum(ph.start_ms * 1e3)
       << ",\"dur\":" << jnum(ph.span_ms() * 1e3)
       << ",\"args\":{\"stream\":" << ph.stream << "}}";
  }
  os << "],\"profile\":" << to_json() << "}";
  return os.str();
}

ResultTable CaptureProfile::to_table() const {
  ResultTable t({"kind", "name", "ms", "launches", "coalesced_tx",
                 "random_tx", "useful_MB", "Mflops", "atomics",
                 "max_conflict", "coalesced_frac", "achieved_bw_frac"});
  const std::string na = "-";
  t.add_row({"capture", device, ResultTable::num(model_ms), na, na, na, na,
             na, na, na, na,
             ResultTable::num(occupancy_frac)});
  // Fleet captures: one row per device lane; the trailing column carries
  // the lane's utilization (finish / fleet makespan), mirroring the
  // capture row's occupancy placement.
  // Cluster captures: one row per node lane before the device rows; the
  // trailing column carries the node's NIC stall milliseconds.
  for (const NodeLane& n : nodes)
    t.add_row({"node", n.name, ResultTable::num(n.model_ms), na, na, na, na,
               na, na, na, na, ResultTable::num(n.nic_stall_ms)});
  for (std::size_t i = 0; i < lanes.size(); ++i)
    t.add_row({"device", "dev" + std::to_string(i) + " " + lanes[i].name,
               ResultTable::num(lanes[i].model_ms), na, na, na, na, na, na,
               na, na, ResultTable::num(lanes[i].utilization)});
  for (const PhaseSpan& ph : phases)
    t.add_row({"phase", ph.name, ResultTable::num(ph.span_ms()), na, na, na,
               na, na, na, na, na, na});
  for (const KernelProfile& k : kernels)
    t.add_row({"kernel", k.name, ResultTable::num(k.solo_ms),
               std::to_string(k.launches),
               ResultTable::num(k.counters.coalesced_transactions),
               ResultTable::num(k.counters.random_transactions),
               ResultTable::num(k.counters.bytes_useful / 1e6),
               ResultTable::num(k.counters.flops / 1e6),
               ResultTable::num(k.counters.atomic_ops),
               ResultTable::num(k.counters.max_atomic_conflict),
               ResultTable::num(k.coalesced_frac),
               ResultTable::num(k.achieved_bw_frac)});
  const BufferPool::Stats d = pool_delta();
  t.add_row({"pool", "allocations",
             ResultTable::num(static_cast<double>(d.allocations)), na, na,
             na, na, na, na, na, na, na});
  t.add_row({"pool", "reuses",
             ResultTable::num(static_cast<double>(d.reuses)), na, na, na, na,
             na, na, na, na, na});
  t.add_row({"pool", "fresh_MB",
             ResultTable::num(static_cast<double>(d.bytes_allocated) / 1e6),
             na, na, na, na, na, na, na, na, na});
  t.add_row({"pool", "pooled_MB",
             ResultTable::num(static_cast<double>(d.bytes_pooled) / 1e6),
             na, na, na, na, na, na, na, na, na});
  return t;
}

bool CaptureProfile::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << chrome_trace_json() << "\n";
  return static_cast<bool>(f);
}

}  // namespace cusfft::cusim
