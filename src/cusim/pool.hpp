// Device-memory arena: recycles the host-backed allocations behind
// DeviceBuffer across plan construction and execute() calls. A real cusFFT
// plan pays cudaMalloc/cudaFree per buffer; the functional simulator was
// paying the same cost in page faults and zeroing ~20 times per plan. The
// pool keeps released blocks (host storage + their simulated device address
// range) on size-class free lists, so a warm plan rebuild or a batched
// execute_many() performs no new allocations — asserted by tests via
// stats().
//
// Concurrency: the mutex guards only the free-list structure. The zeroing
// memset on acquire (the expensive part for MB-sized blocks) runs outside
// the lock, and stats are plain atomics so stats() never contends with the
// worker threads that acquire scratch buffers mid-capture.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <vector>

#include "core/types.hpp"

namespace cusfft::cusim {

class BufferPool {
 public:
  /// One allocation: host storage plus its 256-byte-aligned simulated
  /// device address range (stable across reuses, like a recycled
  /// cudaMalloc range).
  struct Block {
    std::vector<std::byte> bytes;
    u64 base = 0;  // simulated device address of bytes[0]
    u64 cap = 0;   // capacity in bytes (256-byte multiple); 0 == empty
  };

  struct Stats {
    u64 allocations = 0;     // fresh device ranges created
    u64 reuses = 0;          // acquires served from the free list
    u64 bytes_allocated = 0; // cumulative fresh bytes
    u64 bytes_reused = 0;    // cumulative bytes served from the free list
    u64 bytes_pooled = 0;    // currently parked on the free list

    /// Delta of the monotonic counters against an earlier snapshot
    /// (bytes_pooled is a level, not a counter, so the delta keeps the
    /// current value). This is what captures report: "allocations since
    /// begin_capture()".
    Stats since(const Stats& earlier) const {
      Stats d;
      d.allocations = allocations - earlier.allocations;
      d.reuses = reuses - earlier.reuses;
      d.bytes_allocated = bytes_allocated - earlier.bytes_allocated;
      d.bytes_reused = bytes_reused - earlier.bytes_reused;
      d.bytes_pooled = bytes_pooled;
      return d;
    }
  };

  /// Returns a zeroed block of at least `bytes` capacity — from the free
  /// list when a fit exists (capacity within 2x of the request), otherwise
  /// freshly allocated.
  Block acquire(std::size_t bytes);

  /// Parks a block for reuse; frees it instead when pooling is disabled or
  /// the pooled-bytes budget would be exceeded.
  void release(Block&& b);

  /// Frees every parked block (the free list only; live buffers are
  /// untouched).
  void trim();

  Stats stats() const;

  /// Pooling toggle and pooled-bytes budget. The process-wide pool reads
  /// CUSFFT_POOL=0 (disable) and CUSFFT_POOL_MAX_MB once at creation.
  void set_enabled(bool on);
  void set_max_pooled_bytes(u64 bytes);

  /// Process-wide pool used by DeviceBuffer (created on first use).
  static BufferPool& global();

 private:
  mutable std::mutex mu_;
  std::map<u64, std::vector<Block>> free_;  // size class (capacity) -> blocks

  // Counters live outside the mutex: bytes_pooled_ is adjusted with a
  // reserve-then-insert protocol in release() so the parked total never
  // exceeds the budget even under concurrent releases.
  std::atomic<u64> allocations_{0};
  std::atomic<u64> reuses_{0};
  std::atomic<u64> bytes_allocated_{0};
  std::atomic<u64> bytes_reused_{0};
  std::atomic<u64> bytes_pooled_{0};
  std::atomic<bool> enabled_{true};
  std::atomic<u64> max_pooled_bytes_{u64{1} << 30};
};

}  // namespace cusfft::cusim
