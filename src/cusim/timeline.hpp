// Event-driven device timeline: streams, concurrent-kernel overlap with
// bandwidth sharing, and PCIe transfers as a separate resource. This is what
// makes the paper's asynchronous data-layout transformation (Fig. 4) — up to
// 32 kernels in flight on GK110 — simulatable.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "cusim/arena.hpp"

namespace cusfft::cusim {

using StreamId = u32;  // 0 is the default stream

enum class Resource { kDeviceMemory, kPcie };

/// One scheduled operation (kernel or copy).
struct TimelineItem {
  std::string name;
  StreamId stream = 0;
  Resource resource = Resource::kDeviceMemory;
  double mem_s = 0;      // solo memory time (seconds) on its resource
  double compute_s = 0;  // non-shareable time (compute + atomics + overhead)
  std::size_t after = 0;  // barrier: may not start before items [0, after)
                          // have all completed (set by Timeline::barrier)

  // Telemetry carried for the profiler's trace export (filled by
  // Device::finish_launch / submit_copy; the scheduler ignores them).
  double mem_bytes = 0;        // bytes crossing this item's resource
  double useful_bytes = 0;     // bytes the program asked for
  double transactions = 0;     // 128B segments (coalesced + random)
  double atomic_conflict = 0;  // deepest same-address atomic chain

  // Explicit cross-stream dependencies (cudaStreamWaitEvent): indices of
  // items that must finish before this one may start. Attached by submit()
  // from the stream's pending wait_event() calls; the storage lives on the
  // owning Timeline's launch arena (valid until that Timeline's clear()).
  // External injectors pass their list through submit(item, deps).
  std::span<const std::size_t> deps;
};

/// Result for one item after simulation.
struct ItemSchedule {
  double start_s = 0;
  double finish_s = 0;
};

class Timeline {
 public:
  explicit Timeline(unsigned max_concurrent_kernels = 32)
      : max_kernels_(max_concurrent_kernels) {}

  void clear();
  std::size_t submit(TimelineItem item);  // returns item index
  /// submit() with an explicit dependency list (raw-item injection: tests,
  /// schedulers). The list is copied onto the timeline's arena and merged
  /// with any pending wait_event() deps for the item's stream.
  std::size_t submit(TimelineItem item, std::span<const std::size_t> deps);
  std::size_t item_count() const { return items_.size(); }

  /// Device-wide synchronization point (cudaDeviceSynchronize semantics):
  /// every item submitted afterwards waits for everything submitted so far.
  void barrier() { barrier_ = items_.size(); }

  /// cudaEvent-style marker: the event's time is when every item submitted
  /// before it has completed. Returns an id for event_time_s().
  std::size_t record_event() {
    events_.push_back(EventMark{items_.size(), -1, false});
    return events_.size() - 1;
  }

  /// Stream-scoped cudaEvent: completes when every item submitted to `s`
  /// so far has finished (reads as time 0 on an empty stream). Shares the
  /// id space of record_event().
  std::size_t record_event(StreamId s);

  /// cudaStreamWaitEvent: the next item submitted to `s` (and, by stream
  /// FIFO, everything after it) may not start before `event_id` completes.
  void wait_event(StreamId s, std::size_t event_id);

  /// Drops every recorded event mark (ids become invalid) while keeping
  /// the submitted items — long-lived captures recycle their event table
  /// between replayed graphs this way. Invalidates the cached simulate()
  /// result: a later simulate() recomputes instead of serving the
  /// makespan cached for the pre-clear event set (the stale-`makespan_s_`
  /// hazard — reuse was previously keyed on new submissions only).
  void clear_events();

  /// Time of a recorded event in the last simulate() run (0 if nothing
  /// preceded it).
  double event_time_s(std::size_t event_id) const;

  /// Same lookup against an external schedule (index-aligned with items()).
  /// Used by DeviceGroup to read event times off a merged fleet schedule,
  /// where contention with other devices shifts this timeline's items.
  double event_time_s(std::size_t event_id,
                      const std::vector<ItemSchedule>& sched) const;

  /// Simulates the whole submission list. Items on the same stream run in
  /// FIFO order; an item additionally waits for its barrier window and its
  /// explicit deps (wait_event). Across streams up to
  /// `max_concurrent_kernels` device kernels run concurrently and share
  /// memory bandwidth equally (an item's memory phase dilates by the number
  /// of co-running items on its resource). Returns the makespan in seconds.
  double simulate();

  /// Per-item schedule from the last simulate() call.
  const std::vector<ItemSchedule>& schedule() const { return schedule_; }
  const std::vector<TimelineItem>& items() const { return items_; }

  /// Usage of the arena backing the dependency spans — feeds the arena
  /// high-water gauges in MetricsRegistry.
  LaunchArena::Stats arena_stats() const { return dep_arena_.stats(); }

 private:
  /// One recorded event: device-wide (all items [0, upto)) or stream-scoped
  /// (the single item that was last on the stream when recorded).
  struct EventMark {
    std::size_t upto = 0;
    std::ptrdiff_t item = -1;
    bool scoped = false;
  };

  unsigned max_kernels_;
  std::size_t barrier_ = 0;
  bool dirty_ = true;        // submissions/event clears since simulate()
  double makespan_s_ = 0;    // cached simulate() result while !dirty_
  LaunchArena dep_arena_;    // backs every TimelineItem::deps span
  std::vector<TimelineItem> items_;
  std::vector<ItemSchedule> schedule_;
  std::vector<EventMark> events_;
  std::map<StreamId, std::size_t> last_on_stream_;
  // wait_event() state consumed by the next submit() on the stream.
  std::map<StreamId, std::vector<std::size_t>> pending_deps_;
  std::map<StreamId, std::size_t> pending_after_;
};

}  // namespace cusfft::cusim
