// Per-thread kernel execution context: the simulator's threadIdx/blockIdx
// plus the tracing hooks DeviceBuffer routes memory accesses through.
#pragma once

#include "core/types.hpp"
#include "cusim/trace.hpp"

namespace cusfft::cusim {

class ThreadCtx {
 public:
  u32 thread_idx = 0;  // within the block
  u32 block_idx = 0;
  u32 block_dim = 1;
  u64 grid_dim = 1;

  /// Flat global thread id (1-D launches, like every kernel in the paper).
  u64 global_id() const {
    return static_cast<u64>(block_idx) * block_dim + thread_idx;
  }

  /// Self-reported floating-point work (counted for every thread, traced or
  /// not; feeds the compute roofline).
  void add_flops(double f) { flops_ += f; }
  double flops() const { return flops_; }

  // ---- hooks used by DeviceBuffer (not by kernel authors) ----
  void record_global(u64 addr, u32 bytes) {
    if (tracer_) tracer_->on_access(slot_, addr, bytes, false);
    ++slot_;
  }
  void record_atomic(u64 addr, u32 bytes) {
    if (tracer_) {
      tracer_->on_access(slot_, addr, bytes, true);
      accum_->on_atomic_addr(addr);
    }
    ++slot_;
  }
  void record_shared(double count) {
    if (tracer_) tracer_->on_shared(count);
  }

  void attach_trace(WarpTracer* t, KernelAccum* a) {
    tracer_ = t;
    accum_ = a;
  }
  /// Clears the flop counter for reuse across launches (Device keeps a pool
  /// of worker contexts instead of constructing fresh ones per launch).
  void reset_flops() { flops_ = 0; }
  void begin_thread(u32 tid) {
    thread_idx = tid;
    slot_ = 0;
  }

 private:
  WarpTracer* tracer_ = nullptr;  // null when this warp is not sampled
  KernelAccum* accum_ = nullptr;
  u32 slot_ = 0;  // lane-local access sequence number
  double flops_ = 0;
};

}  // namespace cusfft::cusim
