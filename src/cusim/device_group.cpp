#include "cusim/device_group.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "cusim/profiler.hpp"

namespace cusfft::cusim {

DeviceGroup::DeviceGroup(std::vector<perfmodel::GpuSpec> specs) {
  if (specs.empty())
    throw std::invalid_argument("DeviceGroup: need at least one GpuSpec");
  const std::size_t n = specs.size();
  const std::size_t team =
      std::max<std::size_t>(1, ThreadPool::global().size() / n);
  for (auto& spec : specs) {
    PerDevice pd;
    pd.dev = std::make_unique<Device>(spec);
    if (n > 1) {
      // Private team per device: the global pool's task slots assume a
      // single submitting thread, and shards submit from N host threads.
      pd.pool = std::make_unique<ThreadPool>(team);
      pd.dev->set_pool(pd.pool.get());
    }
    devices_.push_back(std::move(pd));
  }
  pool_at_capture_ = BufferPool::global().stats();
}

DeviceGroup::DeviceGroup(std::size_t count, perfmodel::GpuSpec spec)
    : DeviceGroup(std::vector<perfmodel::GpuSpec>(
          count > 0 ? count : 1, std::move(spec))) {
  if (count == 0)
    throw std::invalid_argument("DeviceGroup: need at least one device");
}

void DeviceGroup::begin_capture() {
  for (auto& pd : devices_) pd.dev->begin_capture();
  pool_at_capture_ = BufferPool::global().stats();
}

// Merged replay of every device's timeline. The loop is
// Timeline::simulate() generalized: stream FIFO / barriers / deps stay
// within their device (resolved via per-device index bases), the
// concurrent-kernel cap and device-memory bandwidth sharing are
// per-device, and PCIe bandwidth is shared across ALL devices' in-flight
// copies (the host root complex). For one device every arithmetic step
// matches Timeline::simulate() exactly.
FleetSchedule DeviceGroup::simulate() {
  const std::size_t ndev = devices_.size();
  FleetSchedule fs;
  fs.items.resize(ndev);
  fs.finish_s.assign(ndev, 0.0);
  fs.busy_s.assign(ndev, 0.0);
  fs.pcie_stall_s.assign(ndev, 0.0);
  fs.pcie_queue_s.assign(ndev, 0.0);

  struct Node {
    const TimelineItem* it = nullptr;
    unsigned dev = 0;
    std::size_t base = 0;  // global index of this device's item 0
    double mem_left = 0, comp_left = 0;
    std::ptrdiff_t prev = -1;  // global index of stream predecessor
    bool running = false, done = false;
    bool held = false;  // ready this step but queued by the staging policy
  };
  std::vector<Node> nodes;
  std::vector<std::size_t> dev_count(ndev, 0);  // items per device
  for (std::size_t d = 0; d < ndev; ++d) {
    const auto& items = devices_[d].dev->timeline().items();
    const std::size_t base = nodes.size();
    dev_count[d] = items.size();
    fs.items[d].assign(items.size(), ItemSchedule{});
    std::vector<std::pair<StreamId, std::size_t>> last;  // local indices
    for (std::size_t i = 0; i < items.size(); ++i) {
      Node nd;
      nd.it = &items[i];
      nd.dev = static_cast<unsigned>(d);
      nd.base = base;
      nd.mem_left = items[i].mem_s;
      nd.comp_left = items[i].compute_s;
      for (auto& [sid, idx] : last)
        if (sid == items[i].stream) {
          nd.prev = static_cast<std::ptrdiff_t>(base + idx);
          idx = i;
          goto linked;
        }
      last.emplace_back(items[i].stream, i);
    linked:
      nodes.push_back(std::move(nd));
    }
  }

  const std::size_t n = nodes.size();
  constexpr double kEps = 1e-15;
  std::vector<unsigned> cap(ndev, 0);
  for (std::size_t d = 0; d < ndev; ++d)
    cap[d] = devices_[d].dev->spec().max_concurrent_kernels;

  double t = 0.0;
  std::size_t done_count = 0;
  unsigned rr_next = 0;  // round-robin rotation cursor (device index)
  std::vector<unsigned> dev_running(ndev, 0), dev_mem(ndev, 0);
  while (done_count < n) {
    // Start every eligible item, respecting each device's kernel window
    // and the root-complex staging policy for PCIe copies.
    std::fill(dev_running.begin(), dev_running.end(), 0u);
    unsigned pcie_running = 0;
    for (std::size_t i = 0; i < n; ++i) {
      nodes[i].held = false;
      if (!nodes[i].running) continue;
      if (nodes[i].it->resource == Resource::kDeviceMemory)
        ++dev_running[nodes[i].dev];
      else
        ++pcie_running;
    }
    std::ptrdiff_t rr_pick = -1;  // best kRoundRobin candidate this step
    auto rr_dist = [&](unsigned dev) {
      return (dev + static_cast<unsigned>(ndev) - rr_next) %
             static_cast<unsigned>(ndev);
    };
    for (std::size_t i = 0; i < n; ++i) {
      Node& nd = nodes[i];
      if (nd.running || nd.done) continue;
      if (nd.prev >= 0 && !nodes[static_cast<std::size_t>(nd.prev)].done)
        continue;
      bool barrier_clear = true;
      for (std::size_t b = 0; b < nd.it->after && barrier_clear; ++b)
        barrier_clear = nodes[nd.base + b].done;
      if (!barrier_clear) continue;
      bool deps_clear = true;
      // Deps are local to the owning device's timeline: bound them by
      // that device's own item count (mirroring Timeline::simulate's
      // `dep < n` guard) so a dangling local index can never alias into
      // the next device's node range and gate on a foreign item.
      for (const std::size_t dep : nd.it->deps)
        if (dep < dev_count[nd.dev] && !nodes[nd.base + dep].done) {
          deps_clear = false;
          break;
        }
      if (!deps_clear) continue;
      if (nd.it->resource == Resource::kDeviceMemory) {
        if (dev_running[nd.dev] >= cap[nd.dev]) continue;
        ++dev_running[nd.dev];
      } else {
        switch (staging_.kind) {
          case PcieStaging::Kind::kUnlimited:
            break;
          case PcieStaging::Kind::kMaxInflight:
            if (pcie_running >= staging_.limit) {
              nd.held = true;
              continue;
            }
            ++pcie_running;
            break;
          case PcieStaging::Kind::kRoundRobin:
            // One copy at a time; the winner is the ready device closest
            // in rotation after the last admission (earliest-submitted
            // copy within it, by scan order). Decided after the scan.
            nd.held = true;
            if (pcie_running == 0 &&
                (rr_pick < 0 || rr_dist(nd.dev) < rr_dist(nodes[rr_pick].dev)))
              rr_pick = static_cast<std::ptrdiff_t>(i);
            continue;
        }
      }
      nd.running = true;
      fs.items[nd.dev][i - nd.base].start_s = t;
    }
    if (rr_pick >= 0) {
      Node& nd = nodes[static_cast<std::size_t>(rr_pick)];
      nd.held = false;
      nd.running = true;
      fs.items[nd.dev][static_cast<std::size_t>(rr_pick) - nd.base].start_s =
          t;
      rr_next = (nd.dev + 1) % static_cast<unsigned>(ndev);
    }

    // Bandwidth shares: per-device memory, fleet-wide PCIe.
    std::fill(dev_mem.begin(), dev_mem.end(), 0u);
    unsigned pcie_mem = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (nodes[i].running && nodes[i].mem_left > kEps) {
        if (nodes[i].it->resource == Resource::kDeviceMemory)
          ++dev_mem[nodes[i].dev];
        else
          ++pcie_mem;
      }
    auto share_of = [&](const Node& nd) {
      return nd.it->resource == Resource::kDeviceMemory
                 ? static_cast<double>(std::max(1u, dev_mem[nd.dev]))
                 : static_cast<double>(std::max(1u, pcie_mem));
    };

    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (!nodes[i].running) continue;
      const double share = share_of(nodes[i]);
      const double fin =
          std::max(nodes[i].comp_left, nodes[i].mem_left * share);
      dt = std::min(dt, fin);
      if (nodes[i].mem_left > kEps)
        dt = std::min(dt, nodes[i].mem_left * share);
    }
    if (!std::isfinite(dt)) {
      // Nothing is runnable yet items remain: the captured timelines
      // deadlocked (only reachable with hand-injected items, e.g. a
      // cyclic dep). Breaking here used to leave the undone items with
      // finish_s == 0 and silently under-report the makespan.
      throw std::runtime_error(
          "DeviceGroup::simulate: deadlock — " +
          std::to_string(n - done_count) + " of " + std::to_string(n) +
          " items can never start (unsatisfiable dependencies)");
    }
    dt = std::max(dt, 0.0);

    for (std::size_t i = 0; i < n; ++i) {
      if (nodes[i].held)  // admission wait under the staging policy
        fs.pcie_queue_s[nodes[i].dev] += dt;
      if (!nodes[i].running) continue;
      const double share = share_of(nodes[i]);
      nodes[i].comp_left -= dt;
      nodes[i].mem_left -= dt / share;
      if (nodes[i].comp_left <= kEps && nodes[i].mem_left <= kEps) {
        nodes[i].running = false;
        nodes[i].done = true;
        fs.items[nodes[i].dev][i - nodes[i].base].finish_s = t + dt;
        ++done_count;
      }
    }
    t += dt;
  }
  fs.makespan_s = t;

  for (std::size_t d = 0; d < ndev; ++d) {
    Device& dev = *devices_[d].dev;
    const auto& items = dev.timeline().items();
    // Busy time = union of kernel intervals (time with >= 1 kernel
    // resident), so busy_s/makespan is a true [0, 1] utilization —
    // summing spans would double-count concurrent kernels.
    std::vector<std::pair<double, double>> spans;
    for (std::size_t i = 0; i < items.size(); ++i) {
      fs.finish_s[d] = std::max(fs.finish_s[d], fs.items[d][i].finish_s);
      if (items[i].resource == Resource::kDeviceMemory)
        spans.emplace_back(fs.items[d][i].start_s, fs.items[d][i].finish_s);
    }
    std::sort(spans.begin(), spans.end());
    double cover_end = -1.0;
    for (const auto& [s0, s1] : spans) {
      if (s0 > cover_end) {
        fs.busy_s[d] += s1 - s0;
        cover_end = s1;
      } else if (s1 > cover_end) {
        fs.busy_s[d] += s1 - cover_end;
        cover_end = s1;
      }
    }
    // Contention stall: merged copy durations vs the device's own
    // (contention-free) schedule of the same items.
    dev.elapsed_model_ms();  // ensures the solo schedule is computed
    const auto& solo = dev.timeline().schedule();
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (items[i].resource != Resource::kPcie) continue;
      const double merged =
          fs.items[d][i].finish_s - fs.items[d][i].start_s;
      const double alone = solo[i].finish_s - solo[i].start_s;
      fs.pcie_stall_s[d] += std::max(0.0, merged - alone);
    }
  }
  return fs;
}

CaptureProfile DeviceGroup::end_capture() { return collect_profile(*this); }

}  // namespace cusfft::cusim
