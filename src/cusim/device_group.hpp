// A fleet of simulated GPUs behind one host. Each Device keeps its own
// timeline, buffers, and (for N > 1) a private host ThreadPool sized
// global_threads/N, so N shards execute functionally in parallel from N
// host threads without sharing the single-submitter global pool.
//
// The merged simulation replays every device's captured timeline on one
// clock: device-side resources (the Hyper-Q concurrent-kernel window,
// device memory bandwidth) stay per-device, but all PCIe copies contend
// for the shared host root complex — H2D/D2H transfers to different
// devices split host link bandwidth instead of overlapping for free.
// For a single device the merged schedule is bit-identical to
// Timeline::simulate(), so fleet numbers degrade gracefully to the
// single-device ones.
#pragma once

#include <memory>
#include <vector>

#include "core/thread_pool.hpp"
#include "cusim/device.hpp"
#include "cusim/pool.hpp"

namespace cusfft::cusim {

struct CaptureProfile;  // profiler.hpp

/// Admission policy for the shared PCIe root complex. Under kUnlimited
/// (the default, and the only behavior before staging existed) every
/// in-flight copy splits host-link bandwidth; the staged policies instead
/// bound how many copies may be in flight at once, so shards stagger
/// their bulk uploads rather than all contending at t=0 — the total bytes
/// moved are identical, but the first-admitted device's kernels start
/// sooner and overlap the remaining copies.
struct PcieStaging {
  enum class Kind {
    kUnlimited,   ///< all ready copies run, splitting link bandwidth
    kRoundRobin,  ///< one copy at a time, devices admitted in rotation
    kMaxInflight  ///< at most `limit` concurrent copies (admission in
                  ///< device-then-submission order)
  };
  Kind kind = Kind::kUnlimited;
  unsigned limit = 0;  // kMaxInflight only

  static PcieStaging Unlimited() { return {}; }
  static PcieStaging RoundRobin() {
    return {Kind::kRoundRobin, 0};
  }
  static PcieStaging MaxInflight(unsigned n) {
    return {Kind::kMaxInflight, n > 0 ? n : 1};
  }
  const char* name() const {
    switch (kind) {
      case Kind::kRoundRobin: return "round-robin";
      case Kind::kMaxInflight: return "max-inflight";
      case Kind::kUnlimited: break;
    }
    return "unlimited";
  }
};

/// All device timelines replayed on one shared clock (t=0 at the group's
/// begin_capture). Index-aligned with the group's devices.
struct FleetSchedule {
  double makespan_s = 0;  // fleet-level finish (max over devices)
  /// Per-device item schedules, index-aligned with that device's
  /// timeline().items() — same shape Timeline::schedule() has, but with
  /// cross-device PCIe contention applied.
  std::vector<std::vector<ItemSchedule>> items;
  std::vector<double> finish_s;      // per device: last item finish (0 idle)
  /// Per device: time with at least one kernel resident (union of kernel
  /// intervals, NOT summed spans) — busy_s/makespan is a [0, 1]
  /// utilization that correctly drops when the device idles on PCIe.
  std::vector<double> busy_s;
  /// Per device: extra time its PCIe copies spent because other devices'
  /// copies shared the host link (merged duration minus the device's own
  /// contention-free schedule). Zero for a single-device group.
  std::vector<double> pcie_stall_s;
  /// Per device: time its PCIe copies spent *waiting for admission* under
  /// a staging policy (ready but held back by the in-flight limit). Zero
  /// under PcieStaging::kUnlimited — staging converts bandwidth-sharing
  /// stall into queueing, and the two columns make that trade visible.
  std::vector<double> pcie_queue_s;
};

class DeviceGroup {
 public:
  /// One Device per spec, in order. For size() > 1 each device gets a
  /// private ThreadPool of max(1, ThreadPool::global().size()/N) workers.
  explicit DeviceGroup(std::vector<perfmodel::GpuSpec> specs);
  /// N homogeneous devices (default: the paper's K20x).
  explicit DeviceGroup(std::size_t count,
                       perfmodel::GpuSpec spec = perfmodel::GpuSpec::k20x());

  std::size_t size() const { return devices_.size(); }
  Device& device(std::size_t i) { return *devices_[i].dev; }
  const Device& device(std::size_t i) const { return *devices_[i].dev; }

  /// Starts a fresh measured region on every device and snapshots the
  /// global BufferPool for the fleet-level allocation delta. Call before
  /// fanning shards out; every device shares the capture's t=0.
  void begin_capture();

  /// Root-complex admission policy for the merged simulation. Takes
  /// effect on the next simulate(); kUnlimited (the default) reproduces
  /// the historical all-copies-share-the-link behavior exactly.
  void set_staging(PcieStaging s) { staging_ = s; }
  const PcieStaging& staging() const { return staging_; }

  /// Replays all captured timelines on the shared clock (see file
  /// comment). Safe to call repeatedly; recomputes each time. Throws
  /// std::runtime_error if the captured timelines deadlock (an item's
  /// dependencies can never clear — only possible with hand-injected
  /// items); a silent stop here would under-report the makespan.
  FleetSchedule simulate();

  /// Merged observability record: one CaptureProfile whose spans/phases
  /// carry a device index, with one `lanes` entry per device — the
  /// chrome-trace export renders one track group (pid) per device on the
  /// shared time origin.
  CaptureProfile end_capture();

  /// BufferPool::global() stats at the last begin_capture() (group-level;
  /// per-device snapshots are racy while shards run concurrently).
  const BufferPool::Stats& pool_stats_at_capture() const {
    return pool_at_capture_;
  }

 private:
  struct PerDevice {
    std::unique_ptr<Device> dev;
    std::unique_ptr<ThreadPool> pool;  // private team; null for N == 1
  };
  std::vector<PerDevice> devices_;
  BufferPool::Stats pool_at_capture_;
  PcieStaging staging_;
};

}  // namespace cusfft::cusim
